/// Scenario: audit an existing learner as an information channel
/// (Figure 1 of the paper). Given a learning mechanism, construct the
/// channel Z -> theta, then answer the questions a privacy officer asks:
/// how much information does the released predictor carry about the
/// sample (I(Z;theta))? what is the worst-case privacy loss (eps*)? and
/// how do both respond to the temperature knob?

#include <cstdio>

#include "core/learning_channel.h"
#include "core/regularized_objective.h"
#include "infotheory/entropy.h"
#include "learning/generators.h"

int main() {
  using namespace dplearn;

  auto task = BernoulliMeanTask::Create(0.25).value();
  ClippedSquaredLoss loss(1.0);
  auto hclass = FiniteHypothesisClass::ScalarGrid(0.0, 1.0, 17).value();
  const std::size_t n = 16;

  std::printf("auditing the Gibbs learner as a channel: Z (n=%zu draws) -> theta\n\n", n);
  std::printf("%8s %12s %14s %12s %16s\n", "lambda", "eps*", "I(Z;theta)", "capacity",
              "G = risk + I/l");

  for (double lambda : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    auto channel =
        BuildBernoulliGibbsChannel(task, n, loss, hclass, hclass.UniformPrior(), lambda)
            .value();
    const double eps = ChannelPrivacyLevel(channel);
    const double mi = ChannelMutualInformation(channel).value();
    const double capacity = channel.channel.Capacity(1e-8).value();
    const double g = RegularizedObjective(channel.channel.transition(),
                                          channel.input_marginal, channel.risk_matrix,
                                          lambda)
                         .value();
    std::printf("%8.1f %12.4f %14.4f %12.4f %16.4f\n", lambda, eps, mi, capacity, g);
  }

  const double h_input = Entropy(BuildBernoulliGibbsChannel(task, n, loss, hclass,
                                                            hclass.UniformPrior(), 1.0)
                                     .value()
                                     .input_marginal)
                             .value();
  std::printf("\nH(Z) = %.4f nats — no channel can leak more than this about the sample.\n",
              h_input);
  std::printf(
      "Reading the table: lambda tilts the balance of Theorem 4.2 — small lambda\n"
      "(strong privacy) crushes I(Z;theta) toward 0; large lambda buys empirical-risk\n"
      "fit with the sample's information. eps* tracks 2*lambda/n throughout.\n");
  return 0;
}
