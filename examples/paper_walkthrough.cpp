/// A guided tour of the paper, section by section, with every claim
/// executed live. Run it to watch the paper's argument unfold numerically:
///
///   §2.1  differential privacy + the Laplace & exponential mechanisms
///   §2.2  the learning setting and the neighbor relation on samples
///   §3    Catoni's PAC-Bayes bound and the Gibbs posterior (Lemma 3.2)
///   §4    Theorem 4.1 (Gibbs == exponential mechanism, hence DP) and
///         Theorem 4.2 (DP learning == regularized MI minimization)
///   §4.1  Figure 1: the information channel, measured.

#include <cmath>
#include <cstdio>

#include "core/dp_verifier.h"
#include "core/gibbs_estimator.h"
#include "core/learning_channel.h"
#include "core/pac_bayes.h"
#include "core/regularized_objective.h"
#include "learning/generators.h"
#include "learning/risk.h"
#include "mechanisms/laplace.h"
#include "mechanisms/sensitivity.h"
#include "sampling/rng.h"

namespace {

void Banner(const char* section, const char* title) {
  std::printf("\n============================ %s ============================\n%s\n\n",
              section, title);
}

}  // namespace

int main() {
  using namespace dplearn;
  Rng rng(1729);

  // ------------------------------------------------------------------
  Banner("Section 2.1", "Differential privacy and the Laplace mechanism (Thm 2.1)");
  auto task = BernoulliMeanTask::Create(0.35).value();
  const std::size_t n = 40;
  Dataset data = task.Sample(n, &rng).value();

  auto query = BoundedMeanQuery(0.0, 1.0, n).value();
  auto laplace = LaplaceMechanism::Create(query, /*eps=*/1.0).value();
  std::printf("true mean of the sample:  %.4f\n", query.query(data));
  std::printf("one eps=1 Laplace release: %.4f (noise scale %.4f)\n",
              laplace.Release(data, &rng).value(), laplace.noise_scale());
  // Verify Definition 2.1 empirically on this data's neighbors.
  ScalarDensityFn density = [&laplace](const Dataset& d, double out) {
    return laplace.OutputDensity(d, out);
  };
  std::vector<double> probes;
  for (double x = -2.0; x <= 3.0; x += 0.05) probes.push_back(x);
  auto lap_audit =
      AuditScalarDensityMechanism(density, {data}, BernoulliMeanTask::Domain(), probes)
          .value();
  std::printf("Definition 2.1 audited:   max ln-ratio %.4f <= eps 1.0  %s\n",
              lap_audit.max_log_ratio, lap_audit.max_log_ratio <= 1.0 + 1e-9 ? "OK" : "!!");

  // ------------------------------------------------------------------
  Banner("Section 2.2", "The learning problem: samples, losses, empirical risk");
  ClippedSquaredLoss loss(1.0);
  auto hclass = FiniteHypothesisClass::ScalarGrid(0.0, 1.0, 21).value();
  auto risks = EmpiricalRiskProfile(loss, hclass.thetas(), data).value();
  const std::size_t erm = hclass.ArgMin(risks).value();
  std::printf("hypothesis grid:  |Theta| = %zu over [0,1]\n", hclass.size());
  std::printf("ERM predictor:    theta = %.2f with empirical risk %.4f\n",
              hclass.at(erm)[0], risks[erm]);
  std::printf("true risk of ERM: %.4f (closed form; Bayes risk %.4f)\n",
              task.TrueRisk(hclass.at(erm)[0]), task.BayesRisk());

  // ------------------------------------------------------------------
  Banner("Section 3", "PAC-Bayes: Catoni's bound and the Gibbs posterior (Lemma 3.2)");
  const double lambda = 12.0;
  auto gibbs = GibbsEstimator::CreateUniform(&loss, hclass, lambda).value();
  const double emp = gibbs.ExpectedEmpiricalRisk(data).value();
  const double kl = gibbs.KlToPrior(data).value();
  const double bound = CatoniHighProbabilityBound(emp, kl, lambda, n, 0.05).value();
  std::printf("Gibbs posterior at lambda=%.0f: E[R-hat]=%.4f, KL to prior=%.4f\n", lambda,
              emp, kl);
  std::printf("Catoni bound (Thm 3.1):  true risk <= %.4f w.p. 0.95\n", bound);
  const double objective_at_gibbs =
      PacBayesObjective(gibbs.Posterior(data).value(), risks, hclass.UniformPrior(),
                        lambda)
          .value();
  const double objective_minimum =
      PacBayesObjectiveMinimum(risks, hclass.UniformPrior(), lambda).value();
  std::printf("Lemma 3.2: F(gibbs)=%.6f vs closed-form min %.6f  (diff %.1e)\n",
              objective_at_gibbs, objective_minimum,
              std::fabs(objective_at_gibbs - objective_minimum));

  // ------------------------------------------------------------------
  Banner("Section 4", "Theorem 4.1: the Gibbs estimator IS the exponential mechanism");
  const double sensitivity = EmpiricalRiskSensitivityBound(loss, n).value();
  auto as_exp_mech = gibbs.AsExponentialMechanism(sensitivity).value();
  auto p_gibbs = gibbs.Posterior(data).value();
  auto p_mech = as_exp_mech.OutputDistribution(data).value();
  double max_diff = 0.0;
  for (std::size_t i = 0; i < p_gibbs.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(p_gibbs[i] - p_mech[i]));
  }
  std::printf("pointwise |gibbs - exp.mechanism| = %.2e (identical objects)\n", max_diff);
  const double guarantee = gibbs.PrivacyGuaranteeEpsilon(sensitivity).value();
  FiniteOutputMechanism mech = [&gibbs](const Dataset& d) { return gibbs.Posterior(d); };
  auto gibbs_audit =
      AuditFiniteMechanism(mech, {data}, BernoulliMeanTask::Domain()).value();
  std::printf("Thm 4.1 guarantee 2*lambda*D(R) = %.4f; audited eps* = %.4f  %s\n",
              guarantee, gibbs_audit.max_log_ratio,
              gibbs_audit.max_log_ratio <= guarantee + 1e-9 ? "OK" : "!!");

  // ------------------------------------------------------------------
  Banner("Section 4 / 4.1", "Theorem 4.2 and Figure 1: the information channel");
  const std::size_t channel_n = 10;
  auto channel = BuildBernoulliGibbsChannel(task, channel_n, loss, hclass,
                                            hclass.UniformPrior(), lambda)
                     .value();
  const double mi = ChannelMutualInformation(channel).value();
  const double eps_star = ChannelPrivacyLevel(channel);
  std::printf("channel Z -> theta at n=%zu: I(Z;theta) = %.4f nats, eps* = %.4f\n",
              channel_n, mi, eps_star);
  auto optimum = MinimizeRegularizedObjective(channel.input_marginal, channel.risk_matrix,
                                              lambda)
                     .value();
  const double gibbs_value =
      RegularizedObjective(channel.channel.transition(), channel.input_marginal,
                           channel.risk_matrix, lambda)
          .value();
  std::printf("min over ALL channels of E[R-hat] + I/lambda = %.6f (Thm 4.2)\n",
              optimum.objective);
  std::printf("value at the Gibbs channel                  = %.6f\n", gibbs_value);
  std::printf("gap = prior mismatch KL / lambda            = %.6f\n",
              gibbs_value - optimum.objective);
  std::printf(
      "\nThe paper, executed: the bound-minimizing posterior is the exponential\n"
      "mechanism; its privacy parameter is the price of mutual information.\n");
  return 0;
}
