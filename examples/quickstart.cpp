/// Quickstart: learn a differentially-private predictor with the Gibbs
/// estimator (the paper's exponential-mechanism learner) in ~40 lines.
///
///   1. sample training data,
///   2. pick a bounded loss + finite hypothesis grid,
///   3. choose the privacy level and calibrate the inverse temperature,
///   4. sample a private predictor, and
///   5. read off the PAC-Bayes generalization certificate.

#include <cstdio>

#include "core/gibbs_estimator.h"
#include "core/pac_bayes.h"
#include "learning/generators.h"
#include "learning/risk.h"
#include "sampling/rng.h"

int main() {
  using namespace dplearn;

  // 1. A data source: Bernoulli(0.3) responses (e.g. "did the patient
  // experience a side effect?") — the canonical sensitive dataset.
  Rng rng(42);
  auto task = BernoulliMeanTask::Create(0.3).value();
  const std::size_t n = 200;
  Dataset data = task.Sample(n, &rng).value();

  // 2. Squared loss bounded in [0,1]; hypotheses = a grid over [0,1].
  ClippedSquaredLoss loss(1.0);
  auto hypotheses = FiniteHypothesisClass::ScalarGrid(0.0, 1.0, 41).value();

  // 3. Target privacy eps = 1. Theorem 4.1: the Gibbs estimator at inverse
  // temperature lambda is 2*lambda*Delta(R)-DP with Delta(R) <= B/n, so
  // lambda = eps * n / (2 * B) hits the target exactly.
  const double epsilon = 1.0;
  const double lambda = epsilon * static_cast<double>(n) / 2.0;
  auto gibbs = GibbsEstimator::CreateUniform(&loss, hypotheses, lambda).value();

  // 4. Release one differentially-private predictor.
  Vector theta = gibbs.SampleTheta(data, &rng).value();
  const double sensitivity = EmpiricalRiskSensitivityBound(loss, n).value();
  std::printf("private predictor:    theta = %.3f\n", theta[0]);
  std::printf("privacy guarantee:    eps   = %.3f  (Theorem 4.1)\n",
              gibbs.PrivacyGuaranteeEpsilon(sensitivity).value());

  // 5. PAC-Bayes certificate (Theorem 3.1): with prob. >= 95% over the
  // sample, the posterior's true risk is below this bound.
  const double bound = CatoniHighProbabilityBound(
                           gibbs.ExpectedEmpiricalRisk(data).value(),
                           gibbs.KlToPrior(data).value(), lambda, n, /*delta=*/0.05)
                           .value();
  std::printf("risk certificate:     E[R] <= %.4f  w.p. 0.95 (Theorem 3.1)\n", bound);
  std::printf("actual true risk:     E[R]  = %.4f  (known because Q is synthetic)\n",
              task.TrueRisk(theta[0]));
  return 0;
}
