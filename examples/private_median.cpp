/// Scenario: release the median salary band of a small company without
/// exposing any single employee — the exponential mechanism (Theorem 2.2)
/// on a non-numeric-sensitivity statistic where Laplace noise would be
/// inappropriate (the median's global sensitivity is huge; its RANK-based
/// quality function's sensitivity is 1).

#include <cmath>
#include <cstdio>
#include <vector>

#include "learning/dataset.h"
#include "mechanisms/exponential.h"
#include "sampling/rng.h"

int main() {
  using namespace dplearn;

  // Salary bands 0..15 (say, $30k steps); 37 employees, skewed upward.
  const std::size_t kBands = 16;
  Dataset salaries;
  const int counts_per_band[kBands] = {0, 1, 2, 4, 6, 7, 5, 4, 3, 2, 1, 1, 0, 0, 0, 1};
  for (std::size_t band = 0; band < kBands; ++band) {
    for (int c = 0; c < counts_per_band[band]; ++c) {
      salaries.Add(Example{Vector{1.0}, static_cast<double>(band)});
    }
  }
  std::printf("dataset: %zu employees across %zu salary bands\n", salaries.size(), kBands);

  // Quality of candidate band u: negative rank imbalance. Replacing one
  // employee moves each count by at most 1 => sensitivity 1.
  QualityFn quality = [](const Dataset& data, std::size_t u) {
    double below = 0.0;
    double above = 0.0;
    for (const Example& z : data.examples()) {
      if (z.label < static_cast<double>(u)) below += 1.0;
      if (z.label > static_cast<double>(u)) above += 1.0;
    }
    return -std::fabs(below - above);
  };

  Rng rng(7);
  std::printf("\n%8s %14s | output distribution over bands (peak marked)\n", "eps",
              "released band");
  for (double target_eps : {0.1, 0.5, 2.0}) {
    auto mechanism = ExponentialMechanism::CreateWithTargetPrivacy(
                         quality, kBands, std::vector<double>(kBands, 1.0 / kBands),
                         target_eps, /*quality_sensitivity=*/1.0)
                         .value();
    const std::size_t released = mechanism.Sample(salaries, &rng).value();
    auto dist = mechanism.OutputDistribution(salaries).value();
    std::size_t peak = 0;
    for (std::size_t u = 1; u < kBands; ++u) {
      if (dist[u] > dist[peak]) peak = u;
    }
    std::printf("%8.1f %14zu | ", target_eps, released);
    for (std::size_t u = 0; u < kBands; ++u) {
      const int bars = static_cast<int>(dist[u] * 40.0 + 0.5);
      std::printf("%c", bars > 8 ? '#' : (bars > 2 ? '+' : (bars > 0 ? '.' : ' ')));
    }
    std::printf("  (peak=band %zu)\n", peak);
  }
  std::printf(
      "\nAt low eps the distribution is nearly flat (strong privacy, noisy median);\n"
      "at eps=2 it concentrates on the true median band. Privacy guarantee per\n"
      "release: the stated eps, by Theorem 2.2.\n");
  return 0;
}
