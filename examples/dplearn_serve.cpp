// dplearn_serve: runs a DpReleaseServer on an AF_UNIX socket until
// SIGINT/SIGTERM — the deployable front door of the library (DESIGN.md
// §13). Drive it with bench/bench_service or any client speaking the
// length-prefixed protocol of src/service/protocol.h:
//
//   ./dplearn_serve --socket /tmp/dplearn.sock &
//   ./bench_service --socket /tmp/dplearn.sock --smoke --out latency.json
//
// Chaos testing: arm fail points in THIS process's environment, e.g.
//   DPLEARN_FAILPOINTS='service.dispatch=every:17' ./dplearn_serve ...
// and the server degrades to structured UNAVAILABLE responses instead of
// crashing — the service-chaos CI leg drives exactly that.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <memory>
#include <string>

#include "obs/event_sink.h"
#include "service/server.h"
#include "util/status.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  dplearn::service::DpReleaseServer::Options options;
  std::string events_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "dplearn_serve: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      options.socket_path = next();
    } else if (arg == "--seed") {
      options.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--threads") {
      options.worker_threads = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--tenant-epsilon") {
      options.default_tenant_budget.epsilon = std::strtod(next(), nullptr);
    } else if (arg == "--tenant-delta") {
      options.default_tenant_budget.delta = std::strtod(next(), nullptr);
    } else if (arg == "--events") {
      events_path = next();
    } else {
      std::fprintf(stderr,
                   "usage: dplearn_serve --socket PATH [--seed S] [--threads N]\n"
                   "                     [--tenant-epsilon E] [--tenant-delta D]\n"
                   "                     [--events FILE]\n");
      return 2;
    }
  }
  if (options.socket_path.empty()) {
    std::fprintf(stderr, "dplearn_serve: --socket is required\n");
    return 2;
  }

  // Optional JSONL event export (spans, audit entries, near-exhaustion
  // warnings) — and the surface the `sink.write` chaos leg aims at.
  std::unique_ptr<dplearn::obs::JsonlFileSink> sink;
  if (!events_path.empty()) {
    auto opened = dplearn::obs::JsonlFileSink::Open(events_path);
    if (!opened.ok()) {
      std::fprintf(stderr, "dplearn_serve: cannot open events file: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    sink = std::move(*opened);
    dplearn::obs::AddGlobalSink(sink.get());
  }

  auto started = dplearn::service::DpReleaseServer::Start(options);
  if (!started.ok()) {
    std::fprintf(stderr, "dplearn_serve: start failed: %s\n",
                 started.status().ToString().c_str());
    if (sink != nullptr) dplearn::obs::RemoveGlobalSink(sink.get());
    return 1;
  }
  std::unique_ptr<dplearn::service::DpReleaseServer> server = std::move(*started);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  // The readiness line scripts wait for before starting load.
  std::printf("dplearn_serve: listening on %s\n", options.socket_path.c_str());
  std::fflush(stdout);

  while (g_stop == 0) {
    struct timespec sleep_for = {0, 100 * 1000 * 1000};  // 100ms
    nanosleep(&sleep_for, nullptr);
  }

  std::fprintf(stderr, "dplearn_serve: shutting down (%llu protocol errors)\n",
               static_cast<unsigned long long>(server->protocol_errors()));
  server->Stop();
  if (sink != nullptr) dplearn::obs::RemoveGlobalSink(sink.get());
  return 0;
}
