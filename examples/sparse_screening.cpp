/// Scenario: screen many candidate statistics, pay for few — the sparse
/// vector technique. An analyst probes 60 candidate subgroup rates for
/// "is this subgroup's rate above 30%?" and only the (few) hits consume
/// privacy budget; the mechanism's total cost is one fixed ε regardless of
/// how many probes come back below threshold.

#include <cmath>
#include <cstdio>
#include <vector>

#include "learning/dataset.h"
#include "mechanisms/sparse_vector.h"
#include "sampling/distributions.h"
#include "sampling/rng.h"

int main() {
  using namespace dplearn;

  // Synthetic population: each record has a 6-bit attribute vector packed
  // into the label; subgroup g = records whose attribute g is set.
  const std::size_t kAttributes = 6;
  const std::size_t n = 2000;
  Rng rng(31);
  Dataset population;
  // Attribute g is present with probability p_g; attributes 2 and 5 are the
  // "hot" subgroups the analyst should find.
  const double attribute_rates[kAttributes] = {0.10, 0.20, 0.45, 0.15, 0.25, 0.55};
  for (std::size_t i = 0; i < n; ++i) {
    double packed = 0.0;
    double bit_value = 1.0;
    for (std::size_t g = 0; g < kAttributes; ++g) {
      const int bit = SampleBernoulli(&rng, attribute_rates[g]).value();
      packed += bit_value * static_cast<double>(bit);
      bit_value *= 2.0;
    }
    population.Add(Example{Vector{1.0}, packed});
  }

  // 60 probes: each asks about one attribute (cycling). Sensitivity of a
  // rate query is 1/n.
  const double threshold = 0.30;
  auto svt = SparseVectorMechanism::Create(/*epsilon=*/1.0, threshold,
                                           /*max_above=*/3, /*sensitivity=*/1.0 / n)
                 .value();
  std::printf("screening %d probes at threshold %.0f%%, total budget eps = %.1f\n\n", 60,
              100.0 * threshold, svt.Guarantee().epsilon);

  std::vector<int> hits(kAttributes, 0);
  int probes_made = 0;
  for (int probe = 0; probe < 60 && !svt.halted(); ++probe) {
    const std::size_t g = static_cast<std::size_t>(probe) % kAttributes;
    const double mask = std::pow(2.0, static_cast<double>(g));
    ScalarQuery rate = [mask](const Dataset& data) {
      double count = 0.0;
      for (const Example& z : data.examples()) {
        if (static_cast<std::size_t>(z.label / mask) % 2 == 1) count += 1.0;
      }
      return count / static_cast<double>(data.size());
    };
    auto answer = svt.Probe(rate, population, &rng).value();
    ++probes_made;
    if (answer == SparseVectorMechanism::Answer::kAbove) {
      std::printf("probe %2d: subgroup %zu ABOVE threshold (true rate %.0f%%)\n", probe, g,
                  100.0 * attribute_rates[g]);
      ++hits[g];
    }
  }
  std::printf("\n%d probes answered; %zu above-threshold reports paid for;\n", probes_made,
              svt.above_count());
  std::printf("below-threshold answers were free — that is the sparse-vector bargain.\n");
  return 0;
}
