/// Scenario: differentially-private regression / classification — the
/// paper's motivating example ("consider a linear regression problem ...
/// immediately, privacy concerns arise"). Three private learners on the
/// same data, with the privacy-utility ledger printed side by side:
///
///   * the Gibbs estimator over a hypothesis grid (the paper's learner),
///   * output perturbation  (Chaudhuri-Monteleoni),
///   * objective perturbation (Chaudhuri-Monteleoni-Sarwate),
/// against the non-private ERM floor.

#include <cstdio>

#include "core/gibbs_estimator.h"
#include "core/private_erm.h"
#include "learning/erm.h"
#include "learning/generators.h"
#include "learning/risk.h"
#include "sampling/rng.h"

int main() {
  using namespace dplearn;

  // Medical-style data: two features, two classes (condition present or
  // not), overlapping Gaussians.
  auto task = GaussianMixtureTask::Create({0.6, 0.3}, 0.7).value();
  const std::size_t n = 500;
  Rng rng(2024);
  Dataset data = task.Sample(n, &rng).value();
  std::printf("task: 2-feature classification, n=%zu, Bayes risk=%.3f\n\n", n,
              task.BayesRisk());

  LogisticLoss logistic(50.0);
  ZeroOneLoss zero_one;

  // Hypothesis grid for the Gibbs learner.
  std::vector<Vector> thetas;
  for (double a = -2.0; a <= 2.01; a += 0.2) {
    for (double b = -2.0; b <= 2.01; b += 0.2) {
      if (a != 0.0 || b != 0.0) thetas.push_back(Vector{a, b});
    }
  }
  auto hclass = FiniteHypothesisClass::Create(thetas).value();

  // Non-private floor.
  GradientErmOptions solver;
  solver.l2_lambda = 0.05;
  solver.learning_rate = 0.5;
  solver.max_iters = 3000;
  auto non_private = GradientDescentErm(logistic, data, solver, Vector(2, 0.0)).value();
  std::printf("non-private ERM:      theta=(%+.2f, %+.2f)  true 0-1 risk=%.3f\n",
              non_private.theta[0], non_private.theta[1],
              task.TrueZeroOneRisk(non_private.theta));

  std::printf("\n%8s %26s %26s %26s\n", "eps", "gibbs (paper)", "output-pert (CM08)",
              "objective-pert (CMS11)");
  for (double eps : {0.2, 1.0, 5.0}) {
    // Gibbs: 0-1 loss quality, lambda = eps*n/2 so Theorem 4.1 gives eps.
    const double lambda = eps * static_cast<double>(n) / 2.0;
    auto gibbs = GibbsEstimator::CreateUniform(&zero_one, hclass, lambda).value();
    Vector theta_g = gibbs.SampleTheta(data, &rng).value();

    PrivateErmOptions opts;
    opts.epsilon = eps;
    opts.l2_lambda = 0.05;
    opts.lipschitz = 1.0;
    opts.smoothness = 0.25;
    opts.solver = solver;
    auto out = OutputPerturbationErm(logistic, data, opts, &rng).value();
    auto obj = ObjectivePerturbationErm(logistic, data, opts, &rng).value();

    std::printf("%8.1f    (%+.2f,%+.2f) risk=%.3f    (%+.2f,%+.2f) risk=%.3f    "
                "(%+.2f,%+.2f) risk=%.3f\n",
                eps, theta_g[0], theta_g[1], task.TrueZeroOneRisk(theta_g), out.theta[0],
                out.theta[1], task.TrueZeroOneRisk(out.theta), obj.theta[0], obj.theta[1],
                task.TrueZeroOneRisk(obj.theta));
  }
  std::printf(
      "\nEach released theta is eps-DP; risk approaches the non-private floor as eps\n"
      "grows. All three learners trade the SAME currency — Theorem 4.2's regularized\n"
      "mutual information — at different exchange rates.\n");
  return 0;
}
