/// dplearn_cli — a command-line front door to the library, for users who
/// want DP releases from CSV data without writing C++.
///
///   dplearn_cli mean <csv> <eps> [lo hi]       Laplace-mechanism mean of the
///                                              label column (clamped to [lo,hi],
///                                              default [0,1])
///   dplearn_cli gibbs <csv> <eps> [lo hi] [g]  Gibbs/exponential-mechanism
///                                              release of a scalar predictor
///                                              from a g-point grid (default 41)
///                                              with a PAC-Bayes certificate
///   dplearn_cli histogram <csv> <eps> <bins>   Geometric-mechanism histogram of
///                                              integer labels in [0, bins)
///   dplearn_cli audit <csv> <eps> [lo hi]      Empirical DP audit of the Gibbs
///                                              release on this data's domain
///
/// All randomness is seeded from --seed (default 42) for reproducibility.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/dp_verifier.h"
#include "core/gibbs_estimator.h"
#include "core/pac_bayes.h"
#include "core/private_density.h"
#include "learning/csv_io.h"
#include "learning/preprocess.h"
#include "learning/risk.h"
#include "mechanisms/laplace.h"
#include "mechanisms/sensitivity.h"
#include "sampling/rng.h"

namespace {

using namespace dplearn;

[[noreturn]] void Usage() {
  std::fprintf(stderr,
               "usage: dplearn_cli <mean|gibbs|histogram|audit> <csv-path> <eps> [args]\n"
               "       [--seed N]  (default 42)\n");
  std::exit(2);
}

template <typename T>
T Must(StatusOr<T> value, const char* what) {
  if (!value.ok()) {
    std::fprintf(stderr, "error in %s: %s\n", what, value.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(value).value();
}

int RunMean(const Dataset& data, double eps, double lo, double hi, Rng* rng) {
  auto query = Must(BoundedMeanQuery(lo, hi, data.size()), "query");
  auto mechanism = Must(LaplaceMechanism::Create(query, eps), "mechanism");
  const double released = Must(mechanism.Release(data, rng), "release");
  std::printf("released mean: %.6f\n", released);
  std::printf("guarantee:     eps = %.4f (Laplace, Theorem 2.1)\n", eps);
  std::printf("noise scale:   %.6f (expected |error|)\n", mechanism.noise_scale());
  return 0;
}

int RunGibbs(const Dataset& data, double eps, double lo, double hi, std::size_t grid,
             Rng* rng) {
  const double clip = (hi - lo) * (hi - lo);
  ClippedSquaredLoss loss(clip);
  auto clipped = Must(ClipLabels(data, lo, hi), "clip labels");
  auto hclass = Must(FiniteHypothesisClass::ScalarGrid(lo, hi, grid), "grid");
  const double lambda = eps * static_cast<double>(data.size()) / (2.0 * clip);
  auto gibbs = Must(GibbsEstimator::CreateUniform(&loss, hclass, lambda), "gibbs");
  const Vector theta = Must(gibbs.SampleTheta(clipped, rng), "sample");
  const double emp = Must(gibbs.ExpectedEmpiricalRisk(clipped), "risk");
  const double kl = Must(gibbs.KlToPrior(clipped), "kl");
  const double bound = Must(
      CatoniHighProbabilityBound(emp / clip, kl, lambda * clip, data.size(), 0.05),
      "bound");
  std::printf("released predictor: theta = %.6f\n", theta[0]);
  std::printf("guarantee:          eps = %.4f (Gibbs, Theorem 4.1)\n", eps);
  std::printf("risk certificate:   E[R] <= %.6f w.p. 0.95 (Theorem 3.1, loss units)\n",
              bound * clip);
  return 0;
}

int RunHistogram(const Dataset& data, double eps, std::size_t bins, Rng* rng) {
  auto result = Must(GeometricHistogramEstimate(data, bins, eps, rng), "histogram");
  std::printf("released histogram (eps = %.4f, geometric mechanism):\n", eps);
  for (std::size_t b = 0; b < result.density.size(); ++b) {
    std::printf("  bin %2zu: %.4f\n", b, result.density[b]);
  }
  return 0;
}

int RunAudit(const Dataset& data, double eps, double lo, double hi, Rng* rng) {
  (void)rng;
  const double clip = (hi - lo) * (hi - lo);
  ClippedSquaredLoss loss(clip);
  auto clipped = Must(ClipLabels(data, lo, hi), "clip labels");
  auto hclass = Must(FiniteHypothesisClass::ScalarGrid(lo, hi, 21), "grid");
  const double lambda = eps * static_cast<double>(data.size()) / (2.0 * clip);
  auto gibbs = Must(GibbsEstimator::CreateUniform(&loss, hclass, lambda), "gibbs");
  FiniteOutputMechanism mechanism = [&gibbs](const Dataset& d) {
    return gibbs.Posterior(d);
  };
  // Audit domain: the label endpoints (worst-case replacements).
  std::vector<Example> domain = {Example{clipped.at(0).features, lo},
                                 Example{clipped.at(0).features, hi}};
  auto audit = Must(AuditFiniteMechanism(mechanism, {clipped}, domain), "audit");
  std::printf("claimed eps:  %.4f\n", eps);
  std::printf("measured eps: %.4f over %zu neighbors x %zu outputs\n",
              audit.max_log_ratio, clipped.size() * domain.size(), hclass.size());
  std::printf("verdict:      %s\n",
              !audit.unbounded && audit.max_log_ratio <= eps + 1e-9 ? "WITHIN GUARANTEE"
                                                                    : "VIOLATION");
  return audit.max_log_ratio <= eps + 1e-9 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) Usage();
  const std::string command = argv[1];
  const std::string path = argv[2];
  const double eps = std::atof(argv[3]);
  if (!(eps > 0.0)) Usage();

  // Optional trailing --seed N.
  std::uint64_t seed = 42;
  int positional_end = argc;
  for (int i = 4; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[i + 1]));
      positional_end = i;
      break;
    }
  }
  Rng rng(seed);

  Dataset data = Must(LoadCsvFile(path), "load csv");
  std::printf("loaded %zu examples (%zu features) from %s\n", data.size(),
              data.FeatureDim(), path.c_str());

  const double lo = positional_end > 4 ? std::atof(argv[4]) : 0.0;
  const double hi = positional_end > 5 ? std::atof(argv[5]) : 1.0;

  if (command == "mean") return RunMean(data, eps, lo, hi, &rng);
  if (command == "gibbs") {
    const std::size_t grid =
        positional_end > 6 ? static_cast<std::size_t>(std::atoll(argv[6])) : 41;
    return RunGibbs(data, eps, lo, hi, grid, &rng);
  }
  if (command == "histogram") {
    const std::size_t bins =
        positional_end > 4 ? static_cast<std::size_t>(std::atoll(argv[4])) : 4;
    return RunHistogram(data, eps, bins, &rng);
  }
  if (command == "audit") return RunAudit(data, eps, lo, hi, &rng);
  Usage();
}
