#ifndef DPLEARN_SIMD_KERNELS_H_
#define DPLEARN_SIMD_KERNELS_H_

#include <cstddef>

#include "simd/dataset_soa.h"

namespace dplearn {
namespace simd {

/// Vectorized hot-loop kernels (DESIGN.md §14). Every kernel is a pure
/// function of its raw-span inputs and is deterministic within one build:
/// no thread-count, call-order, or cache-state dependence. The numerical
/// contract relative to the legacy scalar code is two-tiered:
///
///   * ELEMENT-WISE kernels (TiltLogWeights, SoftmaxFromLogInto,
///     GumbelMaxIndex) perform the same per-element arithmetic as the
///     scalar formulas and no reduction, so they are reorder-free.
///     GumbelMaxIndex in particular returns bitwise the same index as the
///     scalar Gumbel-max loop for identical inputs — enabling the kernels
///     never changes which hypothesis a sampler draws.
///   * REDUCTION kernels (MeanLossKernel, LogSumExp) accumulate in
///     kReductionLanes independent lanes below a fixed pairwise combine —
///     a reordered but deterministic sum. For n < kBlockedSumMinN the sum
///     is sequential and bitwise-identical to scalar; above it the result
///     is ULP-close (the difference of two summation orders of the same
///     values), bounded by tests/simd_equivalence_test.
///
/// Cross-build bitwise identity is NOT promised: different -march levels
/// legalize different contractions. Anything that promises "same bits in,
/// same bits out" must therefore key on ActiveSimdFlavorId() (the
/// risk-profile cache does).

/// Lanes of the blocked reduction. Element i lands in lane i % 8; lanes
/// combine as ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)).
inline constexpr std::size_t kReductionLanes = 8;

/// Below this length reductions stay sequential (bitwise-identical to the
/// scalar code); blocking a handful of elements buys nothing and would cost
/// hand-written tests their exact expectations.
inline constexpr std::size_t kBlockedSumMinN = 32;

/// The loss kinds with devirtualized kernels — the closed set of
/// learning/LossFunction subclasses whose Loss() is a pure formula of
/// (theta·x, label, clip, delta). A custom loss maps to no kind and the
/// caller keeps the virtual-dispatch loop.
enum class LossKind {
  kZeroOne,
  kClippedSquared,
  kClippedAbsolute,
  kLogistic,
  kHinge,
  kHuber,
};

/// Parameters a kernel needs to evaluate one loss kind: the clip is the
/// declared upper bound B of every clipped loss (unused by kZeroOne), delta
/// is Huber's quadratic/linear knee (unused elsewhere).
struct LossSpec {
  LossKind kind = LossKind::kZeroOne;
  double clip = 1.0;
  double delta = 0.0;
};

/// Mean loss (the empirical risk) of `theta` over `data`:
/// (1/n) Σ_i l_theta(x_i, y_i), evaluated devirtualized over the SoA
/// layout with the blocked reduction. Preconditions (the caller —
/// learning/risk — validates them): data non-empty, dim == data.dim(),
/// all inputs finite. Finite inputs yield a finite result in [0, B] for
/// every kind.
double MeanLossKernel(const LossSpec& spec, const double* theta, std::size_t dim,
                      const DatasetSoA& data);

/// log Σ exp(x_i) with the blocked reduction. Edge cases match
/// util::LogSumExp exactly: n==0 → -inf, any NaN → that NaN (first one),
/// all -inf → -inf, any +inf → +inf, and n < kBlockedSumMinN is bitwise
/// the scalar result.
double LogSumExp(const double* x, std::size_t n);

/// out[i] = scale * values[i] + log_addend[i] — the Gibbs/exponential
/// tilt. Gibbs passes (risks, log-prior, -λ); the exponential mechanism
/// passes (quality, log-prior, ε). One shared instruction sequence keeps
/// the two views of Theorem 4.1 numerically interchangeable. In-place
/// (out == values) is allowed.
void TiltLogWeights(const double* values, const double* log_addend, std::size_t n,
                    double scale, double* out);

/// out[i] = exp(log_w[i] - lse) — softmax row construction given the
/// normalizer. Element-wise, reorder-free. In-place allowed.
void SoftmaxFromLogInto(const double* log_w, std::size_t n, double lse, double* out);

/// Gumbel-max argmax: first index maximizing log_w[i] - log(-log(u_i))
/// over the pre-drawn uniforms u in (0,1). Per-element arithmetic and the
/// first-wins scan are identical to the scalar sampler, so the returned
/// index is bitwise-equal to it. Returns -1 when the running max never
/// leaves -inf (all weights zero). Precondition: log_w free of NaN/+inf
/// (the sampling layer rejects those with a typed Status first).
std::ptrdiff_t GumbelMaxIndex(const double* log_w, const double* uniforms,
                              std::size_t n);

}  // namespace simd
}  // namespace dplearn

#endif  // DPLEARN_SIMD_KERNELS_H_
