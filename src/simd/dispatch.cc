#include "simd/dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace dplearn {
namespace simd {
namespace {

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled = [] {
    const char* env = std::getenv("DPLEARN_SIMD");
    return env == nullptr || std::strcmp(env, "0") != 0;
  }();
  return enabled;
}

}  // namespace

const char* SimdFlavorName(SimdFlavor flavor) {
  switch (flavor) {
    case SimdFlavor::kScalar:
      return "scalar";
    case SimdFlavor::kPortable:
      return "portable";
    case SimdFlavor::kAvx2:
      return "avx2";
    case SimdFlavor::kNeon:
      return "neon";
  }
  return "unknown";
}

bool SimdEnabled() { return EnabledFlag().load(std::memory_order_relaxed); }

void SetSimdEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

}  // namespace simd
}  // namespace dplearn
