#include "simd/kernels.h"

#include <cmath>
#include <limits>
#include <vector>

#include "simd/dispatch.h"
#include "util/math_util.h"

#if defined(DPLEARN_SIMD_AVX2)
#include <immintrin.h>
#elif defined(DPLEARN_SIMD_NEON)
#include <arm_neon.h>
#endif

namespace dplearn {
namespace simd {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Fixed pairwise combine of the kReductionLanes accumulators — part of the
/// reduction's determinism contract, never reassociated.
inline double CombineLanes(const double (&acc)[kReductionLanes]) {
  return ((acc[0] + acc[1]) + (acc[2] + acc[3])) +
         ((acc[4] + acc[5]) + (acc[6] + acc[7]));
}

/// Per-element loss formulas — textually the same arithmetic as the
/// LossFunction::Loss overrides in learning/loss.cc, with the virtual call
/// and the per-example feature-vector pointer chase removed. `dot` is
/// theta·x already reduced over the feature dimension.
template <LossKind K>
struct LossElem;

template <>
struct LossElem<LossKind::kZeroOne> {
  static inline double Eval(double dot, double y, double, double) {
    const double margin = y * dot;
    return margin > 0.0 ? 0.0 : 1.0;
  }
};

template <>
struct LossElem<LossKind::kClippedSquared> {
  static inline double Eval(double dot, double y, double clip, double) {
    const double r = dot - y;
    return Clamp(r * r, 0.0, clip);
  }
};

template <>
struct LossElem<LossKind::kClippedAbsolute> {
  static inline double Eval(double dot, double y, double clip, double) {
    return Clamp(std::fabs(dot - y), 0.0, clip);
  }
};

template <>
struct LossElem<LossKind::kLogistic> {
  static inline double Eval(double dot, double y, double clip, double) {
    const double margin = y * dot;
    const double raw = margin > 0.0 ? std::log1p(std::exp(-margin))
                                    : -margin + std::log1p(std::exp(margin));
    return Clamp(raw, 0.0, clip);
  }
};

template <>
struct LossElem<LossKind::kHinge> {
  static inline double Eval(double dot, double y, double clip, double) {
    const double margin = y * dot;
    return Clamp(std::max(0.0, 1.0 - margin), 0.0, clip);
  }
};

template <>
struct LossElem<LossKind::kHuber> {
  static inline double Eval(double dot, double y, double clip, double delta) {
    const double r = std::fabs(dot - y);
    const double raw = r <= delta ? 0.5 * r * r : delta * (r - 0.5 * delta);
    return Clamp(raw, 0.0, clip);
  }
};

/// Σ_i loss(theta0 * x_i, y_i) for the dim-1 case — the layout every
/// scalar-grid benchmark and the Bernoulli channel hit. The dot product
/// degenerates to one multiply, so the whole evaluation fuses into a
/// single streaming pass the optimizer can vectorize.
template <LossKind K>
double SumLossDim1(double theta0, const double* x, const double* y, std::size_t n,
                   double clip, double delta) {
  if (n < kBlockedSumMinN) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += LossElem<K>::Eval(theta0 * x[i], y[i], clip, delta);
    }
    return sum;
  }
  double acc[kReductionLanes] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + kReductionLanes <= n; i += kReductionLanes) {
    for (std::size_t l = 0; l < kReductionLanes; ++l) {
      acc[l] += LossElem<K>::Eval(theta0 * x[i + l], y[i + l], clip, delta);
    }
  }
  for (std::size_t l = 0; i < n; ++i, ++l) {
    acc[l] += LossElem<K>::Eval(theta0 * x[i], y[i], clip, delta);
  }
  return CombineLanes(acc);
}

/// Σ_i loss(dots_i, y_i) over precomputed dot products (dim > 1).
template <LossKind K>
double SumLossDots(const double* dots, const double* y, std::size_t n, double clip,
                   double delta) {
  if (n < kBlockedSumMinN) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += LossElem<K>::Eval(dots[i], y[i], clip, delta);
    }
    return sum;
  }
  double acc[kReductionLanes] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + kReductionLanes <= n; i += kReductionLanes) {
    for (std::size_t l = 0; l < kReductionLanes; ++l) {
      acc[l] += LossElem<K>::Eval(dots[i + l], y[i + l], clip, delta);
    }
  }
  for (std::size_t l = 0; i < n; ++i, ++l) {
    acc[l] += LossElem<K>::Eval(dots[i], y[i], clip, delta);
  }
  return CombineLanes(acc);
}

#if defined(DPLEARN_SIMD_AVX2)
/// AVX2 specialization of the headline kernel (clipped squared loss,
/// dim 1): explicit 2×4-lane accumulators whose lane assignment (element
/// i → logical lane i % 8) and final pairwise combine mirror the portable
/// blocked loop exactly, so the AVX2 tier keeps the same determinism
/// contract. mul/sub/min/max are IEEE-exact per element; no FMA is used,
/// so the per-element values match the written formula at any -march.
double SumClippedSquaredDim1Avx2(double theta0, const double* x, const double* y,
                                 std::size_t n, double clip) {
  if (n < kBlockedSumMinN) {
    return SumLossDim1<LossKind::kClippedSquared>(theta0, x, y, n, clip, 0.0);
  }
  const __m256d vtheta = _mm256_set1_pd(theta0);
  const __m256d vclip = _mm256_set1_pd(clip);
  const __m256d vzero = _mm256_setzero_pd();
  __m256d acc_lo = _mm256_setzero_pd();  // logical lanes 0..3
  __m256d acc_hi = _mm256_setzero_pd();  // logical lanes 4..7
  std::size_t i = 0;
  for (; i + kReductionLanes <= n; i += kReductionLanes) {
    const __m256d r_lo = _mm256_sub_pd(_mm256_mul_pd(vtheta, _mm256_loadu_pd(x + i)),
                                       _mm256_loadu_pd(y + i));
    const __m256d r_hi =
        _mm256_sub_pd(_mm256_mul_pd(vtheta, _mm256_loadu_pd(x + i + 4)),
                      _mm256_loadu_pd(y + i + 4));
    // Clamp(r*r, 0, clip) = min(clip, max(0, r*r)) with the same operand
    // order as util::Clamp.
    const __m256d l_lo =
        _mm256_min_pd(vclip, _mm256_max_pd(vzero, _mm256_mul_pd(r_lo, r_lo)));
    const __m256d l_hi =
        _mm256_min_pd(vclip, _mm256_max_pd(vzero, _mm256_mul_pd(r_hi, r_hi)));
    acc_lo = _mm256_add_pd(acc_lo, l_lo);
    acc_hi = _mm256_add_pd(acc_hi, l_hi);
  }
  alignas(32) double acc[kReductionLanes];
  _mm256_store_pd(acc, acc_lo);
  _mm256_store_pd(acc + 4, acc_hi);
  for (std::size_t l = 0; i < n; ++i, ++l) {
    acc[l] += LossElem<LossKind::kClippedSquared>::Eval(theta0 * x[i], y[i], clip, 0.0);
  }
  return CombineLanes(acc);
}
#endif  // DPLEARN_SIMD_AVX2

template <LossKind K>
double SumLossDispatchDim1(double theta0, const double* x, const double* y,
                           std::size_t n, double clip, double delta) {
#if defined(DPLEARN_SIMD_AVX2)
  if constexpr (K == LossKind::kClippedSquared) {
    (void)delta;
    return SumClippedSquaredDim1Avx2(theta0, x, y, n, clip);
  }
#endif
  return SumLossDim1<K>(theta0, x, y, n, clip, delta);
}

template <typename F>
double DispatchKind(LossKind kind, F&& f) {
  switch (kind) {
    case LossKind::kZeroOne:
      return f.template operator()<LossKind::kZeroOne>();
    case LossKind::kClippedSquared:
      return f.template operator()<LossKind::kClippedSquared>();
    case LossKind::kClippedAbsolute:
      return f.template operator()<LossKind::kClippedAbsolute>();
    case LossKind::kLogistic:
      return f.template operator()<LossKind::kLogistic>();
    case LossKind::kHinge:
      return f.template operator()<LossKind::kHinge>();
    case LossKind::kHuber:
      return f.template operator()<LossKind::kHuber>();
  }
  return 0.0;  // unreachable: all kinds enumerated
}

/// Max scan that propagates the FIRST NaN (matching util::LogSumExp's
/// explicit scan). Returns the running max otherwise.
double MaxPropagatingNan(const double* x, std::size_t n, bool* has_nan,
                         double* first_nan) {
  *has_nan = false;
#if defined(DPLEARN_SIMD_AVX2)
  if (n >= kBlockedSumMinN) {
    __m256d vmax = _mm256_set1_pd(kNegInf);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const __m256d v = _mm256_loadu_pd(x + i);
      // Unordered compare flags NaN lanes; fall back to the scalar scan so
      // the FIRST NaN (not an arbitrary lane) is the one reported.
      if (_mm256_movemask_pd(_mm256_cmp_pd(v, v, _CMP_UNORD_Q)) != 0) break;
      vmax = _mm256_max_pd(vmax, v);
    }
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, vmax);
    double m = std::max(std::max(lanes[0], lanes[1]), std::max(lanes[2], lanes[3]));
    for (; i < n; ++i) {
      if (std::isnan(x[i])) {
        *has_nan = true;
        *first_nan = x[i];
        return m;
      }
      if (x[i] > m) m = x[i];
    }
    return m;
  }
#elif defined(DPLEARN_SIMD_NEON)
  if (n >= kBlockedSumMinN) {
    float64x2_t vmax = vdupq_n_f64(kNegInf);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
      const float64x2_t v = vld1q_f64(x + i);
      // v == v is false exactly on NaN lanes.
      const uint64x2_t ord = vceqq_f64(v, v);
      if ((vgetq_lane_u64(ord, 0) & vgetq_lane_u64(ord, 1)) == 0) break;
      vmax = vmaxq_f64(vmax, v);
    }
    double m = std::max(vgetq_lane_f64(vmax, 0), vgetq_lane_f64(vmax, 1));
    for (; i < n; ++i) {
      if (std::isnan(x[i])) {
        *has_nan = true;
        *first_nan = x[i];
        return m;
      }
      if (x[i] > m) m = x[i];
    }
    return m;
  }
#endif
  double m = kNegInf;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::isnan(x[i])) {
      *has_nan = true;
      *first_nan = x[i];
      return m;
    }
    if (x[i] > m) m = x[i];
  }
  return m;
}

}  // namespace

double MeanLossKernel(const LossSpec& spec, const double* theta, std::size_t dim,
                      const DatasetSoA& data) {
  const std::size_t n = data.size();
  const double* y = data.labels();
  const double clip = spec.clip;
  const double delta = spec.delta;
  double sum;
  if (dim == 1) {
    const double theta0 = theta[0];
    const double* x = data.column(0);
    sum = DispatchKind(spec.kind, [&]<LossKind K>() {
      return SumLossDispatchDim1<K>(theta0, x, y, n, clip, delta);
    });
  } else {
    // General dim: reduce theta·x_i into a scratch row first (feature-major
    // sweep over the SoA columns keeps every inner loop contiguous), then
    // stream the loss over the dots. Accumulation order over j matches the
    // scalar Dot(), so each dot is the sequential dot product's value.
    thread_local std::vector<double> dots;
    dots.assign(n, 0.0);
    double* d = dots.data();
    for (std::size_t j = 0; j < dim; ++j) {
      const double tj = theta[j];
      const double* col = data.column(j);
      for (std::size_t i = 0; i < n; ++i) d[i] += tj * col[i];
    }
    sum = DispatchKind(spec.kind, [&]<LossKind K>() {
      return SumLossDots<K>(d, y, n, clip, delta);
    });
  }
  return sum / static_cast<double>(n);
}

double LogSumExp(const double* x, std::size_t n) {
  if (n == 0) return kNegInf;
  bool has_nan = false;
  double first_nan = 0.0;
  const double m = MaxPropagatingNan(x, n, &has_nan, &first_nan);
  if (has_nan) return first_nan;
  if (!std::isfinite(m)) return m;
  if (n < kBlockedSumMinN) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) sum += std::exp(x[i] - m);
    return m + std::log(sum);
  }
  double acc[kReductionLanes] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + kReductionLanes <= n; i += kReductionLanes) {
    for (std::size_t l = 0; l < kReductionLanes; ++l) {
      acc[l] += std::exp(x[i + l] - m);
    }
  }
  for (std::size_t l = 0; i < n; ++i, ++l) acc[l] += std::exp(x[i] - m);
  return m + std::log(CombineLanes(acc));
}

void TiltLogWeights(const double* values, const double* log_addend, std::size_t n,
                    double scale, double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = scale * values[i] + log_addend[i];
}

void SoftmaxFromLogInto(const double* log_w, std::size_t n, double lse, double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = std::exp(log_w[i] - lse);
}

std::ptrdiff_t GumbelMaxIndex(const double* log_w, const double* uniforms,
                              std::size_t n) {
  std::size_t best = 0;
  double best_val = kNegInf;
  for (std::size_t i = 0; i < n; ++i) {
    // Textually the scalar sampler's arithmetic: identical bits, identical
    // first-wins tie-breaking.
    const double gumbel = -std::log(-std::log(uniforms[i]));
    const double val = log_w[i] + gumbel;
    if (val > best_val) {
      best_val = val;
      best = i;
    }
  }
  if (best_val == kNegInf) return -1;
  return static_cast<std::ptrdiff_t>(best);
}

}  // namespace simd
}  // namespace dplearn
