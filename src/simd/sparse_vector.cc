#include "simd/sparse_vector.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "simd/kernels.h"

namespace dplearn {
namespace simd {

SparseVector SparseVector::FromDense(const double* x, std::size_t n, double eps) {
  SparseVector out;
  out.dimension_ = n;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::fabs(x[i]) > eps) {
      out.indices_.push_back(static_cast<std::uint32_t>(i));
      out.values_.push_back(x[i]);
    }
  }
  return out;
}

Status SparseVector::ToDense(double* out, std::size_t n) const {
  if (n != dimension_) {
    return InvalidArgumentError("SparseVector::ToDense: buffer dimension mismatch");
  }
  std::memset(out, 0, n * sizeof(double));
  for (std::size_t k = 0; k < indices_.size(); ++k) {
    out[indices_[k]] = values_[k];
  }
  return Status::Ok();
}

StatusOr<double> SparseVector::Dot(const SparseVector& other) const {
  if (dimension_ != other.dimension_) {
    return InvalidArgumentError("SparseVector::Dot: dimension mismatch");
  }
  double sum = 0.0;
  std::size_t a = 0;
  std::size_t b = 0;
  while (a < indices_.size() && b < other.indices_.size()) {
    const std::uint32_t ia = indices_[a];
    const std::uint32_t ib = other.indices_[b];
    if (ia == ib) {
      sum += values_[a] * other.values_[b];
      ++a;
      ++b;
    } else if (ia < ib) {
      ++a;
    } else {
      ++b;
    }
  }
  return sum;
}

StatusOr<double> SparseVector::DotDense(const double* x, std::size_t n) const {
  if (n != dimension_) {
    return InvalidArgumentError("SparseVector::DotDense: dimension mismatch");
  }
  double sum = 0.0;
  for (std::size_t k = 0; k < indices_.size(); ++k) {
    sum += values_[k] * x[indices_[k]];
  }
  return sum;
}

StatusOr<SparseVector> SparseVector::Add(const SparseVector& other) const {
  if (dimension_ != other.dimension_) {
    return InvalidArgumentError("SparseVector::Add: dimension mismatch");
  }
  SparseVector out;
  out.dimension_ = dimension_;
  out.indices_.reserve(indices_.size() + other.indices_.size());
  out.values_.reserve(indices_.size() + other.indices_.size());
  std::size_t a = 0;
  std::size_t b = 0;
  while (a < indices_.size() || b < other.indices_.size()) {
    if (b >= other.indices_.size() ||
        (a < indices_.size() && indices_[a] < other.indices_[b])) {
      out.indices_.push_back(indices_[a]);
      out.values_.push_back(values_[a]);
      ++a;
    } else if (a >= indices_.size() || other.indices_[b] < indices_[a]) {
      out.indices_.push_back(other.indices_[b]);
      out.values_.push_back(other.values_[b]);
      ++b;
    } else {
      out.indices_.push_back(indices_[a]);
      out.values_.push_back(values_[a] + other.values_[b]);
      ++a;
      ++b;
    }
  }
  return out;
}

void SparseVector::Scale(double c) {
  for (double& v : values_) v *= c;
}

double SparseVector::L1Norm() const {
  double sum = 0.0;
  for (double v : values_) sum += std::fabs(v);
  return sum;
}

StatusOr<SparseVector> PruneLogWeights(const double* log_w, std::size_t n,
                                       double rel_eps) {
  if (!(rel_eps > 0.0 && rel_eps < 1.0)) {
    return InvalidArgumentError("PruneLogWeights: rel_eps must be in (0, 1)");
  }
  double max_lw = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    if (std::isnan(log_w[i])) {
      return InvalidArgumentError("PruneLogWeights: NaN log-weight");
    }
    if (log_w[i] > max_lw) max_lw = log_w[i];
  }
  SparseVector result;
  result.dimension_ = n;
  if (n == 0 || max_lw == -std::numeric_limits<double>::infinity()) {
    // Nothing carries mass; keep the empty support (LSE reads back -inf).
    return result;
  }
  // A +inf max would make the threshold +inf + log(rel_eps) = +inf and drop
  // everything including the +inf entries; keep exactly the entries tied
  // with the (+inf) max in that case.
  const bool inf_max = std::isinf(max_lw);
  const double threshold = inf_max ? max_lw : max_lw + std::log(rel_eps);
  for (std::size_t i = 0; i < n; ++i) {
    const bool keep = inf_max ? (log_w[i] == max_lw) : (log_w[i] > threshold);
    if (keep) {
      result.indices_.push_back(static_cast<std::uint32_t>(i));
      result.values_.push_back(log_w[i]);
    }
  }
  return result;
}

double SparseLogSumExp(const SparseVector& log_weights) {
  if (log_weights.empty()) return -std::numeric_limits<double>::infinity();
  return LogSumExp(log_weights.values().data(), log_weights.nnz());
}

}  // namespace simd
}  // namespace dplearn
