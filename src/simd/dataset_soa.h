#ifndef DPLEARN_SIMD_DATASET_SOA_H_
#define DPLEARN_SIMD_DATASET_SOA_H_

#include <cstddef>
#include <vector>

namespace dplearn {
namespace simd {

/// Structure-of-arrays mirror of a learning/Dataset: feature j of every
/// example is contiguous (column-major), labels are contiguous. This is the
/// layout the risk kernels stream over — the array-of-structs Dataset costs
/// one pointer chase per example (each Example owns its feature vector on a
/// separate heap block) exactly in the O(|Θ|·n) loop the profile pays |Θ|
/// times over.
///
/// The container is layout-only: it holds raw doubles and knows nothing of
/// learning/Dataset (the builder lives in learning/risk, keeping simd a
/// leaf library). Reset() reuses capacity, so a thread-local instance
/// rebuilds from a new dataset without touching the heap once warmed.
class DatasetSoA {
 public:
  DatasetSoA() = default;

  /// Re-shapes to n examples of dimension dim; prior contents discarded,
  /// capacity reused. Values are uninitialized until written through
  /// mutable_column()/mutable_labels().
  void Reset(std::size_t n, std::size_t dim) {
    n_ = n;
    dim_ = dim;
    features_.resize(n * dim);
    labels_.resize(n);
  }

  std::size_t size() const { return n_; }
  std::size_t dim() const { return dim_; }
  bool empty() const { return n_ == 0; }

  /// Feature j of examples 0..n-1, contiguous.
  const double* column(std::size_t j) const { return features_.data() + j * n_; }
  double* mutable_column(std::size_t j) { return features_.data() + j * n_; }

  const double* labels() const { return labels_.data(); }
  double* mutable_labels() { return labels_.data(); }

 private:
  std::size_t n_ = 0;
  std::size_t dim_ = 0;
  std::vector<double> features_;  // column-major: [j * n_ + i]
  std::vector<double> labels_;
};

}  // namespace simd
}  // namespace dplearn

#endif  // DPLEARN_SIMD_DATASET_SOA_H_
