#ifndef DPLEARN_SIMD_SPARSE_VECTOR_H_
#define DPLEARN_SIMD_SPARSE_VECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/status.h"

namespace dplearn {
namespace simd {

/// Epsilon-pruned sparse view of a dense double vector: sorted
/// (index, value) pairs over a fixed dense dimension, with absent indices
/// reading back as 0.0. Two uses in this library:
///
///   * high-dimensional feature vectors, where most coordinates are zero
///     and dense dot products waste bandwidth on them, and
///   * near-point-mass Gibbs posteriors (large λ concentrates essentially
///     all mass on the empirical-risk minimizer), where a channel row of
///     |Θ| entries carries a handful of non-negligible probabilities.
///
/// Numerical contract: construction never rounds a KEPT value — kept
/// entries are bit-copies of the dense input, so the dense→sparse→dense
/// round trip is exact on every coordinate whose magnitude exceeds the
/// pruning threshold, and sparse arithmetic over kept entries runs the
/// same per-index operations as the dense reference. Pruning in LOG space
/// (PruneLogWeights) carries the documented LogSumExp bound below.
class SparseVector {
 public:
  SparseVector() = default;

  /// Builds from a dense span, keeping entries with |x_i| > eps (eps = 0
  /// keeps exactly the nonzeros). Kept values are bit-copies.
  static SparseVector FromDense(const double* x, std::size_t n, double eps = 0.0);

  /// Number of stored (non-pruned) entries.
  std::size_t nnz() const { return indices_.size(); }
  /// The dense dimension this vector is a view of.
  std::size_t dimension() const { return dimension_; }
  bool empty() const { return indices_.empty(); }

  const std::vector<std::uint32_t>& indices() const { return indices_; }
  const std::vector<double>& values() const { return values_; }

  /// Scatters into a dense buffer of `n` doubles (must equal dimension());
  /// absent indices become 0.0.
  Status ToDense(double* out, std::size_t n) const;

  /// Sparse·sparse dot product by merge join over the sorted indices —
  /// O(nnz_a + nnz_b), touching only coordinates present in both. Terms
  /// accumulate in increasing index order, the dense reference's order
  /// with the zero terms skipped. Error on dimension mismatch.
  StatusOr<double> Dot(const SparseVector& other) const;

  /// Sparse·dense dot product: Σ values_[k] * x[indices_[k]].
  /// Error if n != dimension().
  StatusOr<double> DotDense(const double* x, std::size_t n) const;

  /// Coordinate-wise sum by merge join; the result keeps every index
  /// present in either operand (no re-pruning — a sum of kept values is
  /// never silently dropped). Error on dimension mismatch.
  StatusOr<SparseVector> Add(const SparseVector& other) const;

  /// Multiplies every stored value by c in place. c == 0 zeroes values but
  /// keeps the support (call FromDense to re-prune if wanted).
  void Scale(double c);

  /// Σ |values_|, over the stored support.
  double L1Norm() const;

 private:
  friend StatusOr<SparseVector> PruneLogWeights(const double* log_w,
                                                std::size_t n, double rel_eps);

  std::size_t dimension_ = 0;
  std::vector<std::uint32_t> indices_;  // sorted ascending, unique
  std::vector<double> values_;
};

/// Prunes a log-weight vector (e.g. unnormalized log-posterior) to the
/// entries within log(1/rel_eps) of the maximum: keeps log_w[i] such that
/// log_w[i] > max_j log_w[j] + log(rel_eps). Requires 0 < rel_eps < 1 and
/// NaN-free input (+inf entries are always kept).
///
/// LogSumExp bound: each dropped entry satisfies exp(log_w[i] - m) <=
/// rel_eps, so with n total entries the dropped mass is at most
/// n·rel_eps·e^m <= n·rel_eps·Σexp(log_w), giving
///
///   0 <= LogSumExp(dense) - LogSumExp(kept) <= -log1p(-n·rel_eps)
///
/// whenever n·rel_eps < 1. tests/proptest_simd_test checks this bound
/// (plus ULP slack for the two reductions) property-wise.
StatusOr<SparseVector> PruneLogWeights(const double* log_w, std::size_t n,
                                       double rel_eps);

/// LogSumExp over the stored entries of a log-space sparse vector (absent
/// indices carry zero probability mass, i.e. log-weight -inf). Empty or
/// fully-pruned input → -inf, matching util::LogSumExp's zero-sum limit.
double SparseLogSumExp(const SparseVector& log_weights);

}  // namespace simd
}  // namespace dplearn

#endif  // DPLEARN_SIMD_SPARSE_VECTOR_H_
