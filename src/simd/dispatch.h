#ifndef DPLEARN_SIMD_DISPATCH_H_
#define DPLEARN_SIMD_DISPATCH_H_

#include <cstdint>

namespace dplearn {
namespace simd {

/// Compile-time SIMD tier selection (DESIGN.md §14). The library ships one
/// set of kernel entry points (kernels.h); which body they run is decided
/// when the translation unit is compiled:
///
///   kAvx2      x86-64 with AVX2 available (-march=x86-64-v3 or better):
///              256-bit double lanes for the arithmetic risk kernels and
///              the max/argmax scans.
///   kNeon      AArch64 with Advanced SIMD: 128-bit double lanes for the
///              same kernels.
///   kPortable  everything else: structure-of-arrays kernels written as
///              fixed-width blocked loops (kReductionLanes independent
///              accumulators) that the optimizer can auto-vectorize, plus
///              devirtualized loss evaluation. This is the fallback tier —
///              it carries most of the win (no virtual call per example, no
///              array-of-structs pointer chasing) even on a machine with no
///              vector units at all.
///
/// Orthogonally, the runtime knob DPLEARN_SIMD (default on; "0" disables)
/// switches the library call sites between the kernel path and the legacy
/// scalar path, so one process can run both for differential testing — the
/// same shape as DPLEARN_RISK_CACHE. The flavor of the *enabled* path is a
/// property of the build; the disabled path is always the legacy scalar
/// code.
#if defined(__AVX2__)
#define DPLEARN_SIMD_AVX2 1
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define DPLEARN_SIMD_NEON 1
#else
#define DPLEARN_SIMD_PORTABLE 1
#endif

enum class SimdFlavor : std::uint8_t {
  /// Legacy scalar path (kernels bypassed; DPLEARN_SIMD=0).
  kScalar = 0,
  kPortable = 1,
  kAvx2 = 2,
  kNeon = 3,
};

/// The tier this binary's kernels were compiled for (never kScalar).
constexpr SimdFlavor CompiledSimdFlavor() {
#if defined(DPLEARN_SIMD_AVX2)
  return SimdFlavor::kAvx2;
#elif defined(DPLEARN_SIMD_NEON)
  return SimdFlavor::kNeon;
#else
  return SimdFlavor::kPortable;
#endif
}

/// Stable lowercase name for reports/metrics ("scalar", "portable", "avx2",
/// "neon").
const char* SimdFlavorName(SimdFlavor flavor);

/// Whether library call sites (risk profiles, log-weight tilts, softmax
/// rows, Gumbel-max) use the vectorized kernels. Defaults to enabled;
/// DPLEARN_SIMD=0 disables it at startup, and tests/benchmarks flip it at
/// runtime to compare the kernel path against the legacy path in-process.
bool SimdEnabled();
void SetSimdEnabled(bool enabled);

/// The flavor of the path a call made right now would take: kScalar when
/// SimdEnabled() is false, else CompiledSimdFlavor().
inline SimdFlavor ActiveSimdFlavor() {
  return SimdEnabled() ? CompiledSimdFlavor() : SimdFlavor::kScalar;
}

/// Numeric id of ActiveSimdFlavor() for content-hash keys: results computed
/// by different tiers are ULP-close but not bitwise equal, so any cache
/// that promises "same bits in, same bits out" must incorporate this id in
/// its key (see perf::RiskProfileCache).
inline std::uint64_t ActiveSimdFlavorId() {
  return static_cast<std::uint64_t>(ActiveSimdFlavor());
}

}  // namespace simd
}  // namespace dplearn

#endif  // DPLEARN_SIMD_DISPATCH_H_
