#include "infotheory/fano.h"

#include <cmath>

#include "util/math_util.h"

namespace dplearn {

StatusOr<double> FanoErrorLowerBound(double mutual_information,
                                     std::size_t num_hypotheses) {
  if (num_hypotheses < 2) {
    return InvalidArgumentError("FanoErrorLowerBound: need at least 2 hypotheses");
  }
  if (mutual_information < 0.0) {
    return InvalidArgumentError("FanoErrorLowerBound: MI must be >= 0");
  }
  const double bound =
      1.0 - (mutual_information + kLn2) / std::log(static_cast<double>(num_hypotheses));
  return Clamp(bound, 0.0, 1.0);
}

StatusOr<double> LeCamErrorLowerBound(double total_variation) {
  if (total_variation < 0.0 || total_variation > 1.0) {
    return InvalidArgumentError("LeCamErrorLowerBound: TV must be in [0,1]");
  }
  return (1.0 - total_variation) / 2.0;
}

StatusOr<double> PinskerTvUpperBound(double kl) {
  if (kl < 0.0) return InvalidArgumentError("PinskerTvUpperBound: KL must be >= 0");
  return std::min(1.0, std::sqrt(kl / 2.0));
}

StatusOr<double> DpPackingErrorLowerBound(double epsilon, std::size_t hamming_radius,
                                          std::size_t num_hypotheses) {
  if (epsilon < 0.0) {
    return InvalidArgumentError("DpPackingErrorLowerBound: epsilon must be >= 0");
  }
  if (num_hypotheses < 2) {
    return InvalidArgumentError("DpPackingErrorLowerBound: need at least 2 hypotheses");
  }
  if (hamming_radius == 0) {
    return InvalidArgumentError("DpPackingErrorLowerBound: radius must be positive");
  }
  // Group privacy: for any event S and any two of the M datasets,
  // P_i(S) <= e^{eps*r} P_j(S). Summing the M disjoint "decide i" events:
  // success <= e^{eps*r} / M.
  const double success_ceiling =
      std::exp(epsilon * static_cast<double>(hamming_radius)) /
      static_cast<double>(num_hypotheses);
  return Clamp(1.0 - success_ceiling, 0.0, 1.0);
}

}  // namespace dplearn
