#ifndef DPLEARN_INFOTHEORY_FANO_H_
#define DPLEARN_INFOTHEORY_FANO_H_

#include <cstddef>

#include "util/status.h"

namespace dplearn {

/// Fano- and Le Cam-style LOWER bounds: the converse direction of the
/// paper's information-theoretic program (and of Zhang 2006, its reference
/// [12]). The forward direction says privacy throttles I(Ẑ;θ); these
/// results say a throttled channel cannot identify the truth — turning the
/// measured MI of the learning channel into a floor on achievable risk.

/// Fano's inequality: for a uniform M-ary hypothesis test (M >= 2) over a
/// channel carrying `mutual_information` nats,
///   P(error) >= 1 - (I + ln 2) / ln M.
/// Returns the bound clamped into [0, 1]. Errors if M < 2 or I < 0.
StatusOr<double> FanoErrorLowerBound(double mutual_information, std::size_t num_hypotheses);

/// Le Cam two-point bound: for any estimator distinguishing two hypotheses
/// whose output-distribution total variation is `tv`,
///   P(error) >= (1 - tv) / 2.
/// Errors if tv outside [0, 1].
StatusOr<double> LeCamErrorLowerBound(double total_variation);

/// Pinsker's inequality: TV <= sqrt(KL/2) — converts a KL (or an ε-DP
/// max-divergence, since KL <= max-div) budget into the TV that feeds
/// Le Cam. Errors if kl < 0.
StatusOr<double> PinskerTvUpperBound(double kl);

/// DP-specific packing floor, by the group-privacy argument: for an ε-DP
/// mechanism and M >= 2 candidate datasets pairwise within Hamming distance
/// `hamming_radius`, every output event has probability within a factor
/// e^{ε·radius} across the M datasets, so any decoder's success probability
/// is at most e^{ε·radius} / M, giving
///   P(error) >= 1 - e^{ε·radius} / M   (clamped to [0,1]).
/// Errors on invalid arguments.
StatusOr<double> DpPackingErrorLowerBound(double epsilon, std::size_t hamming_radius,
                                          std::size_t num_hypotheses);

}  // namespace dplearn

#endif  // DPLEARN_INFOTHEORY_FANO_H_
