#ifndef DPLEARN_INFOTHEORY_ENTROPY_H_
#define DPLEARN_INFOTHEORY_ENTROPY_H_

#include <vector>

#include "util/status.h"

namespace dplearn {

/// Discrete information measures. All quantities are returned in NATS
/// (natural log) because the paper's PAC-Bayes machinery — KL terms in
/// Catoni's bound, the (1/ε)·I(Ẑ;θ) regularizer — is stated in nats.
/// Use NatsToBits for display.

/// Converts nats to bits.
double NatsToBits(double nats);

/// Shannon entropy H(p) of a probability vector. Error if `p` is not a
/// valid distribution.
StatusOr<double> Entropy(const std::vector<double>& p);

/// Cross entropy H(p, q) = -sum p_i log q_i. +infinity if q_i == 0 where
/// p_i > 0. Error on invalid distributions or size mismatch.
StatusOr<double> CrossEntropy(const std::vector<double>& p, const std::vector<double>& q);

/// Kullback–Leibler divergence D(p || q) = sum p_i log(p_i/q_i).
/// +infinity when p is not absolutely continuous w.r.t. q. Error on invalid
/// distributions or size mismatch. This is the D_KL(π̂ ‖ π) term of
/// Theorem 3.1.
StatusOr<double> KlDivergence(const std::vector<double>& p, const std::vector<double>& q);

/// Jensen–Shannon divergence (symmetric, bounded by log 2). Error on invalid
/// input.
StatusOr<double> JensenShannonDivergence(const std::vector<double>& p,
                                         const std::vector<double>& q);

/// Entropy of a Bernoulli(p) bit. Error if p outside [0,1].
StatusOr<double> BinaryEntropy(double p);

/// KL divergence between Bernoulli(p) and Bernoulli(q). Error if outside
/// [0,1].
StatusOr<double> BernoulliKl(double p, double q);

}  // namespace dplearn

#endif  // DPLEARN_INFOTHEORY_ENTROPY_H_
