#ifndef DPLEARN_INFOTHEORY_CHANNEL_H_
#define DPLEARN_INFOTHEORY_CHANNEL_H_

#include <cstddef>
#include <vector>

#include "infotheory/mutual_information.h"
#include "util/status.h"

namespace dplearn {

/// A discrete memoryless channel: a row-stochastic matrix
/// W[x][y] = P(output = y | input = x).
///
/// This is the object of Figure 1 of the paper: differentially-private
/// learning *is* a channel whose input is the training sample Ẑ and whose
/// output is the predictor θ, with transition kernel the Gibbs posterior.
/// core/learning_channel.h constructs such channels from learners; this
/// class provides the information-theoretic analysis.
class DiscreteChannel {
 public:
  /// Validates row-stochasticity and wraps the matrix.
  static StatusOr<DiscreteChannel> Create(std::vector<std::vector<double>> transition);

  std::size_t num_inputs() const { return transition_.size(); }
  std::size_t num_outputs() const { return transition_.empty() ? 0 : transition_[0].size(); }

  /// P(output = y | input = x).
  double TransitionProbability(std::size_t x, std::size_t y) const {
    return transition_[x][y];
  }

  const std::vector<std::vector<double>>& transition() const { return transition_; }

  /// Output distribution induced by input distribution `px`.
  StatusOr<std::vector<double>> OutputDistribution(const std::vector<double>& px) const;

  /// Joint input/output distribution under input distribution `px`.
  StatusOr<JointDistribution> Joint(const std::vector<double>& px) const;

  /// Mutual information I(X;Y) under input distribution `px` (nats).
  StatusOr<double> MutualInformation(const std::vector<double>& px) const;

  /// The max-divergence privacy level of the channel:
  ///   eps* = max_{x,x',y} ln( W[x][y] / W[x'][y] )
  /// restricted to pairs (x,x') in `neighbors`. If `neighbors` is empty,
  /// all ordered pairs are compared (worst case / "free-range" privacy).
  /// A channel is eps-DP w.r.t. the neighbor relation iff eps* <= eps.
  /// Returns +infinity if some neighbor can produce an output the other
  /// cannot.
  double MaxLogRatio(const std::vector<std::pair<std::size_t, std::size_t>>& neighbors) const;

  /// Channel capacity max_px I(X;Y) via Blahut–Arimoto. `tol` is the
  /// convergence threshold on the capacity bound gap; `max_iters` caps the
  /// iteration count. Errors on invalid parameters.
  StatusOr<double> Capacity(double tol = 1e-9, std::size_t max_iters = 10000) const;

 private:
  explicit DiscreteChannel(std::vector<std::vector<double>> transition)
      : transition_(std::move(transition)) {}

  std::vector<std::vector<double>> transition_;
};

}  // namespace dplearn

#endif  // DPLEARN_INFOTHEORY_CHANNEL_H_
