#ifndef DPLEARN_INFOTHEORY_MUTUAL_INFORMATION_H_
#define DPLEARN_INFOTHEORY_MUTUAL_INFORMATION_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "util/status.h"

namespace dplearn {

/// Mutual-information estimators for the channel view of DP learning
/// (Section 4.1 of the paper): I(Ẑ; θ) is the average information the
/// released predictor carries about the training sample. All results are in
/// nats.

/// A joint distribution over a finite product space X x Y, stored row-major:
/// joint[x*num_y + y] = P(X=x, Y=y).
class JointDistribution {
 public:
  /// Validates and wraps `joint` (must be a distribution over num_x*num_y
  /// cells).
  static StatusOr<JointDistribution> Create(std::size_t num_x, std::size_t num_y,
                                            std::vector<double> joint);

  /// Builds the joint P(x,y) = marginal_x[x] * conditional[x][y] from an
  /// input distribution and a row-stochastic conditional (channel) matrix.
  static StatusOr<JointDistribution> FromMarginalAndConditional(
      const std::vector<double>& marginal_x,
      const std::vector<std::vector<double>>& conditional_y_given_x);

  std::size_t num_x() const { return num_x_; }
  std::size_t num_y() const { return num_y_; }
  double P(std::size_t x, std::size_t y) const { return joint_[x * num_y_ + y]; }

  /// Marginal distribution of X.
  std::vector<double> MarginalX() const;
  /// Marginal distribution of Y.
  std::vector<double> MarginalY() const;

  /// Exact mutual information I(X;Y) = sum_{x,y} P(x,y) log(P(x,y)/(P(x)P(y))).
  double MutualInformation() const;

  /// Conditional entropy H(Y|X).
  double ConditionalEntropyYGivenX() const;

 private:
  JointDistribution(std::size_t num_x, std::size_t num_y, std::vector<double> joint)
      : num_x_(num_x), num_y_(num_y), joint_(std::move(joint)) {}

  std::size_t num_x_;
  std::size_t num_y_;
  std::vector<double> joint_;
};

/// Plug-in MI estimate from paired categorical samples: builds the empirical
/// joint over observed symbol pairs and returns its exact MI. Biased upward
/// by ~ (|X||Y|-|X|-|Y|+1)/(2n) (Miller–Madow); callers comparing against
/// theory at small n should apply the correction below. Error if the sample
/// lists are empty or of different lengths.
StatusOr<double> PluginMiFromSamples(const std::vector<std::size_t>& xs,
                                     const std::vector<std::size_t>& ys);

/// Miller–Madow bias correction term for a plug-in MI estimate with the
/// given numbers of *observed* distinct symbols and sample size.
double MillerMadowCorrection(std::size_t support_x, std::size_t support_y,
                             std::size_t support_joint, std::size_t n);

/// Histogram MI estimate for continuous (scalar x, scalar y) samples:
/// equal-width binning over the observed ranges. Error if fewer than 2
/// samples, size mismatch, or bins == 0.
StatusOr<double> HistogramMi(const std::vector<double>& xs, const std::vector<double>& ys,
                             std::size_t bins);

/// Kraskov–Stögbauer–Grassberger (KSG, estimator 1) k-NN MI estimate for
/// continuous scalar pairs. Consistent without binning; the estimator used
/// for MI between a continuous parameter θ and a sample statistic. Error if
/// k == 0 or n <= k.
StatusOr<double> KsgMi(const std::vector<double>& xs, const std::vector<double>& ys,
                       std::size_t k);

}  // namespace dplearn

#endif  // DPLEARN_INFOTHEORY_MUTUAL_INFORMATION_H_
