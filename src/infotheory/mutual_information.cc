#include "infotheory/mutual_information.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <string>

#include "util/math_util.h"

namespace dplearn {
namespace {

/// Digamma (psi) function via upward recurrence + asymptotic series; accurate
/// to ~1e-12 for x > 0, which is all the KSG estimator needs.
double Digamma(double x) {
  double result = 0.0;
  while (x < 6.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0)));
  return result;
}

}  // namespace

StatusOr<JointDistribution> JointDistribution::Create(std::size_t num_x, std::size_t num_y,
                                                      std::vector<double> joint) {
  if (num_x == 0 || num_y == 0) {
    return InvalidArgumentError("JointDistribution: alphabet sizes must be positive");
  }
  if (joint.size() != num_x * num_y) {
    return InvalidArgumentError("JointDistribution: joint size " +
                                std::to_string(joint.size()) + " != " +
                                std::to_string(num_x * num_y));
  }
  DPLEARN_RETURN_IF_ERROR(ValidateDistribution(joint, 1e-6));
  return JointDistribution(num_x, num_y, std::move(joint));
}

StatusOr<JointDistribution> JointDistribution::FromMarginalAndConditional(
    const std::vector<double>& marginal_x,
    const std::vector<std::vector<double>>& conditional_y_given_x) {
  DPLEARN_RETURN_IF_ERROR(ValidateDistribution(marginal_x, 1e-6));
  if (conditional_y_given_x.size() != marginal_x.size()) {
    return InvalidArgumentError(
        "FromMarginalAndConditional: conditional must have one row per input symbol");
  }
  if (conditional_y_given_x.empty() || conditional_y_given_x[0].empty()) {
    return InvalidArgumentError("FromMarginalAndConditional: empty conditional");
  }
  const std::size_t num_x = marginal_x.size();
  const std::size_t num_y = conditional_y_given_x[0].size();
  std::vector<double> joint(num_x * num_y, 0.0);
  for (std::size_t x = 0; x < num_x; ++x) {
    const auto& row = conditional_y_given_x[x];
    if (row.size() != num_y) {
      return InvalidArgumentError("FromMarginalAndConditional: ragged conditional rows");
    }
    // Rows with zero marginal mass may be arbitrary; skip validation there.
    if (marginal_x[x] > 0.0) {
      DPLEARN_RETURN_IF_ERROR(ValidateDistribution(row, 1e-6));
    }
    for (std::size_t y = 0; y < num_y; ++y) {
      joint[x * num_y + y] = marginal_x[x] * row[y];
    }
  }
  return JointDistribution(num_x, num_y, std::move(joint));
}

std::vector<double> JointDistribution::MarginalX() const {
  std::vector<double> m(num_x_, 0.0);
  for (std::size_t x = 0; x < num_x_; ++x) {
    for (std::size_t y = 0; y < num_y_; ++y) m[x] += P(x, y);
  }
  return m;
}

std::vector<double> JointDistribution::MarginalY() const {
  std::vector<double> m(num_y_, 0.0);
  for (std::size_t x = 0; x < num_x_; ++x) {
    for (std::size_t y = 0; y < num_y_; ++y) m[y] += P(x, y);
  }
  return m;
}

double JointDistribution::MutualInformation() const {
  const std::vector<double> px = MarginalX();
  const std::vector<double> py = MarginalY();
  double mi = 0.0;
  for (std::size_t x = 0; x < num_x_; ++x) {
    for (std::size_t y = 0; y < num_y_; ++y) {
      const double pxy = P(x, y);
      // Log-difference form: the product px*py can underflow to zero for
      // subnormal cells even though each factor is positive (px, py >= pxy
      // guarantees each log is finite whenever pxy > 0).
      if (pxy > 0.0) mi += pxy * (std::log(pxy) - std::log(px[x]) - std::log(py[y]));
    }
  }
  return ClampRoundingNegative(mi);
}

double JointDistribution::ConditionalEntropyYGivenX() const {
  const std::vector<double> px = MarginalX();
  double h = 0.0;
  for (std::size_t x = 0; x < num_x_; ++x) {
    if (px[x] == 0.0) continue;
    for (std::size_t y = 0; y < num_y_; ++y) {
      const double pxy = P(x, y);
      if (pxy > 0.0) h -= pxy * (std::log(pxy) - std::log(px[x]));
    }
  }
  return h;
}

StatusOr<double> PluginMiFromSamples(const std::vector<std::size_t>& xs,
                                     const std::vector<std::size_t>& ys) {
  if (xs.empty() || xs.size() != ys.size()) {
    return InvalidArgumentError("PluginMiFromSamples: need equal-length non-empty samples");
  }
  const double n = static_cast<double>(xs.size());
  std::map<std::size_t, double> px;
  std::map<std::size_t, double> py;
  std::map<std::pair<std::size_t, std::size_t>, double> pxy;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    px[xs[i]] += 1.0 / n;
    py[ys[i]] += 1.0 / n;
    pxy[{xs[i], ys[i]}] += 1.0 / n;
  }
  double mi = 0.0;
  for (const auto& [key, p] : pxy) {
    // Zero-cell handling must agree with the dense path
    // (JointDistribution::MutualInformation): cells with no joint mass
    // contribute 0, and the log-difference form never divides by the
    // product px*py, which can underflow to zero even when each marginal
    // is positive.
    if (p <= 0.0) continue;
    const auto mx = px.find(key.first);
    const auto my = py.find(key.second);
    if (mx == px.end() || my == py.end() || mx->second <= 0.0 || my->second <= 0.0) {
      return InternalError(
          "PluginMiFromSamples: joint cell has mass but a marginal is zero");
    }
    mi += p * (std::log(p) - std::log(mx->second) - std::log(my->second));
  }
  return ClampRoundingNegative(mi);
}

double MillerMadowCorrection(std::size_t support_x, std::size_t support_y,
                             std::size_t support_joint, std::size_t n) {
  // Bias of plug-in MI ~= (Kxy - Kx - Ky + 1) / (2n); subtracting this from
  // the plug-in estimate reduces small-sample bias.
  const double kx = static_cast<double>(support_x);
  const double ky = static_cast<double>(support_y);
  const double kxy = static_cast<double>(support_joint);
  return (kxy - kx - ky + 1.0) / (2.0 * static_cast<double>(n));
}

StatusOr<double> HistogramMi(const std::vector<double>& xs, const std::vector<double>& ys,
                             std::size_t bins) {
  if (xs.size() < 2 || xs.size() != ys.size()) {
    return InvalidArgumentError("HistogramMi: need >=2 equal-length samples");
  }
  if (bins == 0) return InvalidArgumentError("HistogramMi: bins must be positive");
  const auto [xmin_it, xmax_it] = std::minmax_element(xs.begin(), xs.end());
  const auto [ymin_it, ymax_it] = std::minmax_element(ys.begin(), ys.end());
  const double xspan = std::max(*xmax_it - *xmin_it, 1e-300);
  const double yspan = std::max(*ymax_it - *ymin_it, 1e-300);
  std::vector<std::size_t> bx(xs.size());
  std::vector<std::size_t> by(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    bx[i] = std::min(bins - 1,
                     static_cast<std::size_t>((xs[i] - *xmin_it) / xspan * static_cast<double>(bins)));
    by[i] = std::min(bins - 1,
                     static_cast<std::size_t>((ys[i] - *ymin_it) / yspan * static_cast<double>(bins)));
  }
  return PluginMiFromSamples(bx, by);
}

StatusOr<double> KsgMi(const std::vector<double>& xs, const std::vector<double>& ys,
                       std::size_t k) {
  const std::size_t n = xs.size();
  if (n != ys.size()) return InvalidArgumentError("KsgMi: size mismatch");
  if (k == 0) return InvalidArgumentError("KsgMi: k must be positive");
  if (n <= k) return InvalidArgumentError("KsgMi: need more samples than k");

  // O(n^2) brute-force neighbor search: the library uses this for n up to a
  // few thousand, where exactness and simplicity beat a k-d tree.
  double psi_sum = 0.0;
  std::vector<double> dists(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      dists[j] = (j == i) ? std::numeric_limits<double>::infinity()
                          : std::max(std::fabs(xs[i] - xs[j]), std::fabs(ys[i] - ys[j]));
    }
    std::vector<double> sorted = dists;
    std::nth_element(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(k - 1),
                     sorted.end());
    const double eps = sorted[k - 1];  // distance to the k-th neighbor
    std::size_t nx = 0;
    std::size_t ny = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      if (std::fabs(xs[i] - xs[j]) < eps) ++nx;
      if (std::fabs(ys[i] - ys[j]) < eps) ++ny;
    }
    psi_sum += Digamma(static_cast<double>(nx) + 1.0) + Digamma(static_cast<double>(ny) + 1.0);
  }
  const double mi = Digamma(static_cast<double>(k)) + Digamma(static_cast<double>(n)) -
                    psi_sum / static_cast<double>(n);
  return ClampRoundingNegative(mi);
}

}  // namespace dplearn
