#include "infotheory/leakage.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "infotheory/entropy.h"
#include "util/math_util.h"

namespace dplearn {

StatusOr<double> MinEntropyLeakage(const DiscreteChannel& channel,
                                   const std::vector<double>& px) {
  if (px.size() != channel.num_inputs()) {
    return InvalidArgumentError("MinEntropyLeakage: prior size mismatch");
  }
  DPLEARN_RETURN_IF_ERROR(ValidateDistribution(px, 1e-6));
  double posterior_vulnerability = 0.0;
  for (std::size_t y = 0; y < channel.num_outputs(); ++y) {
    double best = 0.0;
    for (std::size_t x = 0; x < channel.num_inputs(); ++x) {
      best = std::max(best, px[x] * channel.TransitionProbability(x, y));
    }
    posterior_vulnerability += best;
  }
  const double prior_vulnerability = *std::max_element(px.begin(), px.end());
  if (prior_vulnerability <= 0.0 || posterior_vulnerability <= 0.0) {
    return InvalidArgumentError("MinEntropyLeakage: degenerate prior");
  }
  return ClampRoundingNegative(std::log(posterior_vulnerability / prior_vulnerability));
}

StatusOr<double> MinCapacity(const DiscreteChannel& channel) {
  double sum = 0.0;
  for (std::size_t y = 0; y < channel.num_outputs(); ++y) {
    double best = 0.0;
    for (std::size_t x = 0; x < channel.num_inputs(); ++x) {
      best = std::max(best, channel.TransitionProbability(x, y));
    }
    sum += best;
  }
  return ClampRoundingNegative(std::log(sum));
}

StatusOr<std::size_t> NeighborGraphDiameter(const NeighborGraph& graph,
                                            std::size_t num_nodes) {
  if (num_nodes == 0) {
    return InvalidArgumentError("NeighborGraphDiameter: no nodes");
  }
  if (num_nodes == 1) return std::size_t{0};
  std::vector<std::vector<std::size_t>> adjacency(num_nodes);
  for (const auto& [a, b] : graph) {
    if (a >= num_nodes || b >= num_nodes) {
      return InvalidArgumentError("NeighborGraphDiameter: edge endpoint out of range");
    }
    adjacency[a].push_back(b);
    adjacency[b].push_back(a);
  }
  std::size_t diameter = 0;
  std::vector<std::size_t> dist(num_nodes);
  for (std::size_t start = 0; start < num_nodes; ++start) {
    std::fill(dist.begin(), dist.end(), std::numeric_limits<std::size_t>::max());
    dist[start] = 0;
    std::deque<std::size_t> queue = {start};
    while (!queue.empty()) {
      const std::size_t node = queue.front();
      queue.pop_front();
      for (std::size_t next : adjacency[node]) {
        if (dist[next] == std::numeric_limits<std::size_t>::max()) {
          dist[next] = dist[node] + 1;
          queue.push_back(next);
        }
      }
    }
    for (std::size_t node = 0; node < num_nodes; ++node) {
      if (dist[node] == std::numeric_limits<std::size_t>::max()) {
        return InvalidArgumentError("NeighborGraphDiameter: graph is disconnected");
      }
      diameter = std::max(diameter, dist[node]);
    }
  }
  return diameter;
}

StatusOr<DpMiBounds> ComputeDpMiBounds(const DiscreteChannel& channel,
                                       const std::vector<double>& px,
                                       const NeighborGraph& neighbors) {
  DpMiBounds bounds;
  DPLEARN_ASSIGN_OR_RETURN(bounds.input_entropy, Entropy(px));
  DPLEARN_ASSIGN_OR_RETURN(bounds.shannon_capacity, channel.Capacity(1e-9));
  DPLEARN_ASSIGN_OR_RETURN(bounds.min_capacity, MinCapacity(channel));
  bounds.eps = channel.MaxLogRatio(neighbors);
  DPLEARN_ASSIGN_OR_RETURN(bounds.diameter,
                           NeighborGraphDiameter(neighbors, channel.num_inputs()));
  bounds.diameter_eps = static_cast<double>(bounds.diameter) * bounds.eps;

  // Max pairwise KL between channel rows (all ordered pairs).
  double max_kl = 0.0;
  for (std::size_t a = 0; a < channel.num_inputs(); ++a) {
    for (std::size_t b = 0; b < channel.num_inputs(); ++b) {
      if (a == b) continue;
      double kl = 0.0;
      bool infinite = false;
      for (std::size_t y = 0; y < channel.num_outputs(); ++y) {
        const double pa = channel.TransitionProbability(a, y);
        const double pb = channel.TransitionProbability(b, y);
        const double term = XLogXOverY(pa, pb);
        if (std::isinf(term)) {
          infinite = true;
          break;
        }
        kl += term;
      }
      if (infinite) {
        max_kl = std::numeric_limits<double>::infinity();
      } else {
        max_kl = std::max(max_kl, kl);
      }
    }
  }
  bounds.max_pairwise_kl = max_kl;
  return bounds;
}

StatusOr<double> TwoPointMiLowerBound(const DiscreteChannel& channel) {
  if (channel.num_inputs() < 2) {
    return InvalidArgumentError("TwoPointMiLowerBound: need at least two inputs");
  }
  double best = 0.0;
  for (std::size_t a = 0; a < channel.num_inputs(); ++a) {
    for (std::size_t b = a + 1; b < channel.num_inputs(); ++b) {
      // MI of the two-row channel under a uniform prior: the Jensen-Shannon
      // divergence of the rows.
      DPLEARN_ASSIGN_OR_RETURN(
          double js, JensenShannonDivergence(channel.transition()[a],
                                             channel.transition()[b]));
      best = std::max(best, js);
    }
  }
  return best;
}

}  // namespace dplearn
