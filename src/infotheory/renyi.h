#ifndef DPLEARN_INFOTHEORY_RENYI_H_
#define DPLEARN_INFOTHEORY_RENYI_H_

#include <cstddef>
#include <vector>

#include "util/status.h"

namespace dplearn {

/// Rényi divergences and Rényi differential privacy (RDP) accounting
/// (Mironov 2017). Extension beyond the paper: the modern refinement of
/// the same information-theoretic view of DP the paper pioneered — privacy
/// as a bound on a divergence between output distributions on neighbors,
/// with max-divergence (the paper's Definition 2.1) the α→∞ endpoint of
/// the Rényi family and KL (the PAC-Bayes currency) the α→1 endpoint.

/// Rényi divergence D_α(p ‖ q) of order α over finite alphabets (nats).
/// α must be positive and != 1 (use KlDivergence for α = 1). Returns
/// +infinity when unsupported mass makes it so. Error on invalid input.
StatusOr<double> RenyiDivergence(const std::vector<double>& p, const std::vector<double>& q,
                                 double alpha);

/// Rényi entropy H_α(p) (nats); α > 0, α != 1.
StatusOr<double> RenyiEntropy(const std::vector<double>& p, double alpha);

/// An RDP guarantee: D_α(M(D) ‖ M(D')) <= epsilon for all neighbors.
struct RdpBudget {
  double alpha = 2.0;
  double epsilon = 0.0;
};

/// RDP curve of the Gaussian mechanism with noise sigma and sensitivity Δ:
///   ε(α) = α Δ² / (2 σ²). Error if sigma <= 0, sensitivity <= 0, alpha <= 1.
StatusOr<RdpBudget> GaussianMechanismRdp(double sigma, double sensitivity, double alpha);

/// RDP curve of the Laplace mechanism with scale b and sensitivity Δ
/// (Mironov 2017, Prop. 6), for α > 1:
///   ε(α) = (1/(α-1)) ln( (α/(2α-1)) e^{(α-1)Δ/b} + ((α-1)/(2α-1)) e^{-αΔ/b} ).
StatusOr<RdpBudget> LaplaceMechanismRdp(double scale, double sensitivity, double alpha);

/// RDP composes additively at fixed α: k repetitions of an (α, ε)-RDP
/// mechanism are (α, k·ε)-RDP. Error on invalid input.
StatusOr<RdpBudget> ComposeRdp(const RdpBudget& per_mechanism, std::size_t k);

/// Conversion to approximate DP (Mironov 2017, Prop. 3): (α, ε)-RDP implies
/// ( ε + ln(1/δ)/(α-1), δ )-DP for any δ in (0,1). Error on invalid input.
StatusOr<double> RdpToApproximateDpEpsilon(const RdpBudget& rdp, double delta);

/// Best (smallest) approximate-DP ε obtainable from a family of RDP
/// guarantees at different orders (the standard "optimize over α" step).
/// Error if the list is empty or delta invalid.
StatusOr<double> BestEpsilonFromRdpCurve(const std::vector<RdpBudget>& curve, double delta);

}  // namespace dplearn

#endif  // DPLEARN_INFOTHEORY_RENYI_H_
