#include "infotheory/renyi.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/math_util.h"

namespace dplearn {

StatusOr<double> RenyiDivergence(const std::vector<double>& p, const std::vector<double>& q,
                                 double alpha) {
  DPLEARN_RETURN_IF_ERROR(ValidateDistribution(p, 1e-6));
  DPLEARN_RETURN_IF_ERROR(ValidateDistribution(q, 1e-6));
  if (p.size() != q.size()) {
    return InvalidArgumentError("RenyiDivergence: size mismatch");
  }
  if (!(alpha > 0.0) || alpha == 1.0) {
    return InvalidArgumentError("RenyiDivergence: alpha must be positive and != 1");
  }
  // D_alpha = (1/(alpha-1)) ln sum_i p_i^alpha q_i^{1-alpha}, accumulated in
  // log space: at extreme orders the two pow() factors under/overflow
  // individually (pow(p,64) -> 0 times pow(q,-63) -> inf is NaN) even when
  // the term p^alpha q^{1-alpha} itself is perfectly representable.
  std::vector<double> log_terms;
  log_terms.reserve(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] == 0.0) continue;
    if (q[i] == 0.0) {
      if (alpha > 1.0) return std::numeric_limits<double>::infinity();
      continue;  // alpha < 1: q-zero cells contribute 0
    }
    log_terms.push_back(alpha * std::log(p[i]) + (1.0 - alpha) * std::log(q[i]));
  }
  if (log_terms.empty()) {
    // alpha < 1 with disjoint supports.
    return std::numeric_limits<double>::infinity();
  }
  const double log_sum = LogSumExp(log_terms);
  if (std::isinf(log_sum) && log_sum < 0.0) {
    // Every term underflowed: only possible for alpha < 1 with nearly
    // disjoint supports, where the true divergence diverges too.
    return std::numeric_limits<double>::infinity();
  }
  return ClampRoundingNegative(log_sum / (alpha - 1.0));
}

StatusOr<double> RenyiEntropy(const std::vector<double>& p, double alpha) {
  DPLEARN_RETURN_IF_ERROR(ValidateDistribution(p, 1e-6));
  if (!(alpha > 0.0) || alpha == 1.0) {
    return InvalidArgumentError("RenyiEntropy: alpha must be positive and != 1");
  }
  double sum = 0.0;
  for (double v : p) {
    if (v > 0.0) sum += std::pow(v, alpha);
  }
  // Same clamp policy as RenyiDivergence (ClampRoundingNegative): a
  // point-mass distribution has entropy exactly 0, but pow/log rounding can
  // land a few ulps negative on either side of alpha = 1.
  return ClampRoundingNegative(std::log(sum) / (1.0 - alpha));
}

StatusOr<RdpBudget> GaussianMechanismRdp(double sigma, double sensitivity, double alpha) {
  if (!(sigma > 0.0)) return InvalidArgumentError("GaussianMechanismRdp: sigma must be > 0");
  if (!(sensitivity > 0.0)) {
    return InvalidArgumentError("GaussianMechanismRdp: sensitivity must be > 0");
  }
  if (!(alpha > 1.0)) return InvalidArgumentError("GaussianMechanismRdp: alpha must be > 1");
  RdpBudget budget;
  budget.alpha = alpha;
  budget.epsilon = alpha * sensitivity * sensitivity / (2.0 * sigma * sigma);
  return budget;
}

StatusOr<RdpBudget> LaplaceMechanismRdp(double scale, double sensitivity, double alpha) {
  if (!(scale > 0.0)) return InvalidArgumentError("LaplaceMechanismRdp: scale must be > 0");
  if (!(sensitivity > 0.0)) {
    return InvalidArgumentError("LaplaceMechanismRdp: sensitivity must be > 0");
  }
  if (!(alpha > 1.0)) return InvalidArgumentError("LaplaceMechanismRdp: alpha must be > 1");
  const double t = sensitivity / scale;
  const double log_term =
      LogAddExp(std::log(alpha / (2.0 * alpha - 1.0)) + (alpha - 1.0) * t,
                std::log((alpha - 1.0) / (2.0 * alpha - 1.0)) - alpha * t);
  RdpBudget budget;
  budget.alpha = alpha;
  budget.epsilon = ClampRoundingNegative(log_term / (alpha - 1.0));
  return budget;
}

StatusOr<RdpBudget> ComposeRdp(const RdpBudget& per_mechanism, std::size_t k) {
  if (!(per_mechanism.alpha > 1.0) || !(per_mechanism.epsilon >= 0.0)) {
    return InvalidArgumentError("ComposeRdp: invalid RDP budget");
  }
  if (k == 0) return InvalidArgumentError("ComposeRdp: k must be positive");
  RdpBudget total = per_mechanism;
  total.epsilon *= static_cast<double>(k);
  return total;
}

StatusOr<double> RdpToApproximateDpEpsilon(const RdpBudget& rdp, double delta) {
  if (!(rdp.alpha > 1.0) || !(rdp.epsilon >= 0.0)) {
    return InvalidArgumentError("RdpToApproximateDpEpsilon: invalid RDP budget");
  }
  if (!(delta > 0.0) || delta >= 1.0) {
    return InvalidArgumentError("RdpToApproximateDpEpsilon: delta must be in (0,1)");
  }
  return rdp.epsilon + std::log(1.0 / delta) / (rdp.alpha - 1.0);
}

StatusOr<double> BestEpsilonFromRdpCurve(const std::vector<RdpBudget>& curve,
                                         double delta) {
  if (curve.empty()) return InvalidArgumentError("BestEpsilonFromRdpCurve: empty curve");
  double best = std::numeric_limits<double>::infinity();
  for (const RdpBudget& point : curve) {
    DPLEARN_ASSIGN_OR_RETURN(double eps, RdpToApproximateDpEpsilon(point, delta));
    best = std::min(best, eps);
  }
  return best;
}

}  // namespace dplearn
