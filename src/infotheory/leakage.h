#ifndef DPLEARN_INFOTHEORY_LEAKAGE_H_
#define DPLEARN_INFOTHEORY_LEAKAGE_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "infotheory/channel.h"
#include "util/status.h"

namespace dplearn {

/// Quantitative-information-flow measures and the DP leakage bounds of
/// Alvim, Andrés, Chatzikokolakis & Palamidessi (refs [1,2] of the paper).
/// The paper's stated future work is to "examine the use of upper and
/// lower bounds on the mutual information between the sample and the
/// predictor ... similar to Alvim et al., and compare these bounds" — this
/// module implements that comparison (experiment `exp_mi_bounds`).

/// Min-entropy leakage of a channel under input prior `px` (nats):
///   L = H_inf(X) - H_inf(X|Y)
///     = ln( sum_y max_x px[x] W[x][y] ) - ln( max_x px[x] ).
/// Alvim et al.'s information measure for one-try attacks. Errors on
/// invalid input.
StatusOr<double> MinEntropyLeakage(const DiscreteChannel& channel,
                                   const std::vector<double>& px);

/// Min-capacity: min-entropy leakage maximized over priors, which equals
/// ln( sum_y max_x W[x][y] ) (Braun–Chatzikokolakis–Palamidessi). Upper
/// bounds Shannon capacity as well.
StatusOr<double> MinCapacity(const DiscreteChannel& channel);

/// The neighbor graph on channel inputs: pairs (i, j) declared adjacent
/// (e.g. dataset compositions k and k+1). Used to turn a *local* DP level
/// into *global* bounds via graph distance.
using NeighborGraph = std::vector<std::pair<std::size_t, std::size_t>>;

/// Breadth-first diameter of the neighbor graph over `num_nodes` inputs
/// (the maximum over pairs of the shortest neighbor-path length).
/// Returns an error if the graph is disconnected (some pair unreachable).
StatusOr<std::size_t> NeighborGraphDiameter(const NeighborGraph& graph,
                                            std::size_t num_nodes);

/// Upper bounds on I(X;Y) for a channel whose max log-ratio over declared
/// neighbors is eps (i.e. an eps-DP channel), collected for the
/// bound-comparison experiment. All in nats.
struct DpMiBounds {
  /// I <= H(X): trivial information-theoretic ceiling.
  double input_entropy = 0.0;
  /// I <= C (Shannon capacity, Blahut–Arimoto).
  double shannon_capacity = 0.0;
  /// I <= min-capacity (min-entropy leakage ceiling; also >= C).
  double min_capacity = 0.0;
  /// Group-privacy/pairwise-KL bound:
  ///   I <= max_{x,x'} D( W_x || W_x' ) <= d*eps * (e^{d*eps} - 1) ... we
  /// report the computable middle term max-pairwise-KL directly.
  double max_pairwise_kl = 0.0;
  /// Closed-form eps-based ceiling: group privacy over the graph diameter d
  /// gives every pairwise log-ratio <= d*eps, hence
  /// I <= max_pairwise_KL <= d*eps*(e^{d*eps}-1)/(e^{d*eps}+1) ... the
  /// simple and standard bound reported here is I <= d*eps (from
  /// D(W_x||W_x') <= d*eps when log ratios are bounded by d*eps).
  double diameter_eps = 0.0;
  /// The measured eps (max log ratio over declared neighbors).
  double eps = 0.0;
  /// Graph diameter d.
  std::size_t diameter = 0;
};

/// Computes all of the above for `channel` with input prior `px` and the
/// declared `neighbors`. Errors on invalid input or disconnected graphs.
StatusOr<DpMiBounds> ComputeDpMiBounds(const DiscreteChannel& channel,
                                       const std::vector<double>& px,
                                       const NeighborGraph& neighbors);

/// A computable LOWER bound on I(X;Y): the MI of the channel restricted to
/// the best pair of inputs under a uniform two-point prior, maximized over
/// all input pairs. (Any restriction of the input alphabet lower-bounds
/// capacity-achieving MI; against the actual prior it is a heuristic
/// witness that information genuinely flows.) Errors on invalid input.
StatusOr<double> TwoPointMiLowerBound(const DiscreteChannel& channel);

}  // namespace dplearn

#endif  // DPLEARN_INFOTHEORY_LEAKAGE_H_
