#include "infotheory/entropy.h"

#include <cmath>
#include <limits>

#include "util/math_util.h"

namespace dplearn {

double NatsToBits(double nats) { return nats / kLn2; }

StatusOr<double> Entropy(const std::vector<double>& p) {
  DPLEARN_RETURN_IF_ERROR(ValidateDistribution(p, 1e-6));
  double h = 0.0;
  for (double v : p) h -= XLogX(v);
  return h;
}

StatusOr<double> CrossEntropy(const std::vector<double>& p, const std::vector<double>& q) {
  DPLEARN_RETURN_IF_ERROR(ValidateDistribution(p, 1e-6));
  DPLEARN_RETURN_IF_ERROR(ValidateDistribution(q, 1e-6));
  if (p.size() != q.size()) {
    return InvalidArgumentError("CrossEntropy: size mismatch");
  }
  double h = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] == 0.0) continue;
    if (q[i] == 0.0) return std::numeric_limits<double>::infinity();
    h -= p[i] * std::log(q[i]);
  }
  return h;
}

StatusOr<double> KlDivergence(const std::vector<double>& p, const std::vector<double>& q) {
  DPLEARN_RETURN_IF_ERROR(ValidateDistribution(p, 1e-6));
  DPLEARN_RETURN_IF_ERROR(ValidateDistribution(q, 1e-6));
  if (p.size() != q.size()) {
    return InvalidArgumentError("KlDivergence: size mismatch");
  }
  double d = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double term = XLogXOverY(p[i], q[i]);
    if (std::isinf(term)) return std::numeric_limits<double>::infinity();
    d += term;
  }
  // Library-wide clamp policy (math_util.h): rounding-scale negatives (p ~= q)
  // become exactly 0, larger negatives would be a real bug and pass through.
  return ClampRoundingNegative(d);
}

StatusOr<double> JensenShannonDivergence(const std::vector<double>& p,
                                         const std::vector<double>& q) {
  if (p.size() != q.size()) {
    return InvalidArgumentError("JensenShannonDivergence: size mismatch");
  }
  std::vector<double> m(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) m[i] = 0.5 * (p[i] + q[i]);
  DPLEARN_ASSIGN_OR_RETURN(double dpm, KlDivergence(p, m));
  DPLEARN_ASSIGN_OR_RETURN(double dqm, KlDivergence(q, m));
  return 0.5 * dpm + 0.5 * dqm;
}

StatusOr<double> BinaryEntropy(double p) {
  if (p < 0.0 || p > 1.0) return InvalidArgumentError("BinaryEntropy: p must be in [0,1]");
  return -XLogX(p) - XLogX(1.0 - p);
}

StatusOr<double> BernoulliKl(double p, double q) {
  if (p < 0.0 || p > 1.0 || q < 0.0 || q > 1.0) {
    return InvalidArgumentError("BernoulliKl: arguments must be in [0,1]");
  }
  const double term1 = XLogXOverY(p, q);
  const double term2 = XLogXOverY(1.0 - p, 1.0 - q);
  if (std::isinf(term1) || std::isinf(term2)) {
    return std::numeric_limits<double>::infinity();
  }
  return ClampRoundingNegative(term1 + term2);
}

}  // namespace dplearn
