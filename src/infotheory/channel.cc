#include "infotheory/channel.h"

#include <cmath>
#include <limits>
#include <utility>

#include "util/math_util.h"

namespace dplearn {

StatusOr<DiscreteChannel> DiscreteChannel::Create(
    std::vector<std::vector<double>> transition) {
  if (transition.empty() || transition[0].empty()) {
    return InvalidArgumentError("DiscreteChannel: transition matrix must be non-empty");
  }
  const std::size_t num_outputs = transition[0].size();
  for (const auto& row : transition) {
    if (row.size() != num_outputs) {
      return InvalidArgumentError("DiscreteChannel: ragged transition matrix");
    }
    DPLEARN_RETURN_IF_ERROR(ValidateDistribution(row, 1e-6));
  }
  return DiscreteChannel(std::move(transition));
}

StatusOr<std::vector<double>> DiscreteChannel::OutputDistribution(
    const std::vector<double>& px) const {
  if (px.size() != num_inputs()) {
    return InvalidArgumentError("OutputDistribution: input distribution size mismatch");
  }
  DPLEARN_RETURN_IF_ERROR(ValidateDistribution(px, 1e-6));
  std::vector<double> py(num_outputs(), 0.0);
  for (std::size_t x = 0; x < num_inputs(); ++x) {
    for (std::size_t y = 0; y < num_outputs(); ++y) {
      py[y] += px[x] * transition_[x][y];
    }
  }
  return py;
}

StatusOr<JointDistribution> DiscreteChannel::Joint(const std::vector<double>& px) const {
  return JointDistribution::FromMarginalAndConditional(px, transition_);
}

StatusOr<double> DiscreteChannel::MutualInformation(const std::vector<double>& px) const {
  DPLEARN_ASSIGN_OR_RETURN(JointDistribution joint, Joint(px));
  return joint.MutualInformation();
}

double DiscreteChannel::MaxLogRatio(
    const std::vector<std::pair<std::size_t, std::size_t>>& neighbors) const {
  double max_ratio = 0.0;
  auto consider = [&](std::size_t a, std::size_t b) {
    for (std::size_t y = 0; y < num_outputs(); ++y) {
      const double pa = transition_[a][y];
      const double pb = transition_[b][y];
      if (pa == 0.0) continue;
      if (pb == 0.0) {
        max_ratio = std::numeric_limits<double>::infinity();
        return;
      }
      max_ratio = std::max(max_ratio, std::log(pa / pb));
    }
  };
  if (neighbors.empty()) {
    for (std::size_t a = 0; a < num_inputs(); ++a) {
      for (std::size_t b = 0; b < num_inputs(); ++b) {
        if (a != b) consider(a, b);
      }
    }
  } else {
    for (const auto& [a, b] : neighbors) {
      consider(a, b);
      consider(b, a);
    }
  }
  return max_ratio;
}

StatusOr<double> DiscreteChannel::Capacity(double tol, std::size_t max_iters) const {
  if (tol <= 0.0) return InvalidArgumentError("Capacity: tol must be positive");
  if (max_iters == 0) return InvalidArgumentError("Capacity: max_iters must be positive");

  const std::size_t nx = num_inputs();
  const std::size_t ny = num_outputs();
  std::vector<double> px(nx, 1.0 / static_cast<double>(nx));

  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    // q[y] = sum_x px[x] W[x][y]
    std::vector<double> q(ny, 0.0);
    for (std::size_t x = 0; x < nx; ++x) {
      for (std::size_t y = 0; y < ny; ++y) q[y] += px[x] * transition_[x][y];
    }
    // D[x] = sum_y W[x][y] log(W[x][y]/q[y])
    std::vector<double> d(nx, 0.0);
    for (std::size_t x = 0; x < nx; ++x) {
      for (std::size_t y = 0; y < ny; ++y) {
        const double w = transition_[x][y];
        if (w > 0.0) d[x] += w * std::log(w / q[y]);
      }
    }
    // Capacity sandwich: max_x D[x] >= C >= sum_x px[x] D[x].
    double upper = -std::numeric_limits<double>::infinity();
    double lower = 0.0;
    for (std::size_t x = 0; x < nx; ++x) {
      upper = std::max(upper, d[x]);
      lower += px[x] * d[x];
    }
    if (upper - lower < tol) return std::max(0.0, lower);
    // Blahut–Arimoto update: px[x] <- px[x] exp(D[x]) / normalizer.
    std::vector<double> log_unnorm(nx);
    for (std::size_t x = 0; x < nx; ++x) {
      log_unnorm[x] = (px[x] > 0.0 ? std::log(px[x]) : -std::numeric_limits<double>::infinity()) +
                      d[x];
    }
    DPLEARN_ASSIGN_OR_RETURN(px, SoftmaxFromLog(log_unnorm));
  }
  return InternalError("Capacity: Blahut-Arimoto did not converge");
}

}  // namespace dplearn
