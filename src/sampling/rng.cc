#include "sampling/rng.h"

#include "robustness/failpoint.h"
#include "util/logging.h"

namespace dplearn {
namespace {

/// splitmix64 step: used to expand a single seed into xoshiro state and to
/// derive child seeds. Reference: Steele, Lea & Flood, "Fast Splittable
/// Pseudorandom Number Generators" (OOPSLA 2014).
std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  // xoshiro state must not be all-zero; splitmix64 of any seed cannot produce
  // four zero outputs in a row, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ULL;
}

std::uint64_t Rng::NextUint64() {
  // Chaos hook: `rng.degenerate` forces all-zero output bits so downstream
  // samplers prove they cannot emit NaN/inf on degenerate uniforms. The
  // state still advances, so rejection samplers (e.g. NextBounded) make
  // progress under every:N / prob:p triggers; `always` starves them by
  // design. Disarmed, the hook is one relaxed load.
  const bool degenerate = robustness::ShouldFail("rng.degenerate");
  const std::uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return degenerate ? 0 : result;
}

double Rng::NextDouble() {
  // Top 53 bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDoubleOpen() {
  // (u + 0.5) / 2^53 lies in (0, 1) strictly.
  return (static_cast<double>(NextUint64() >> 11) + 0.5) * 0x1.0p-53;
}

void Rng::NextDoubleBatch(double* out, std::size_t n) {
  // Same arithmetic as NextDouble per element; the win is one call boundary
  // for the block (NextUint64 inlines within this translation unit). The
  // per-draw fail-point check inside NextUint64 is preserved, so chaos
  // configurations fire on the same draw indices as the unbatched path.
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }
}

void Rng::NextDoubleOpenBatch(double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = (static_cast<double>(NextUint64() >> 11) + 0.5) * 0x1.0p-53;
  }
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  DPLEARN_CHECK_GT(bound, 0u);
  // Rejection sampling on the top of the range to avoid modulo bias.
  const std::uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    const std::uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

Rng Rng::Split() { return Rng(NextUint64()); }

}  // namespace dplearn
