#ifndef DPLEARN_SAMPLING_RNG_H_
#define DPLEARN_SAMPLING_RNG_H_

#include <cstddef>
#include <cstdint>

namespace dplearn {

/// Deterministic 64-bit pseudo-random generator (xoshiro256++, seeded via
/// splitmix64). Every randomized component in the library takes an Rng (or a
/// seed) explicitly, so that experiments are reproducible bit-for-bit.
///
/// Not cryptographically secure — adequate for simulation and for the
/// *empirical verification* of DP properties, but a deployment that needs
/// DP against a real adversary must swap in a secure source of randomness.
class Rng {
 public:
  /// Constructs a generator whose stream is fully determined by `seed`.
  explicit Rng(std::uint64_t seed);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  /// Returns the next 64 uniform random bits.
  std::uint64_t NextUint64();

  /// Returns a uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Returns a uniform double in the open interval (0, 1); never 0, so it is
  /// safe as an argument to log() in inverse-CDF samplers.
  double NextDoubleOpen();

  /// Fills out[0..n) with the next n uniform doubles in [0, 1) — bit- and
  /// stream-identical to n NextDouble() calls, but one library call for the
  /// whole block so the generator state stays in registers across the loop.
  /// Batched consumers (alias tables, Gumbel-max draws) use this to amortize
  /// per-call overhead on their hot path.
  void NextDoubleBatch(double* out, std::size_t n);

  /// Blocked NextDoubleOpen(): fills out[0..n) with doubles in (0, 1),
  /// bit- and stream-identical to n NextDoubleOpen() calls.
  void NextDoubleOpenBatch(double* out, std::size_t n);

  /// Returns a uniform integer in [0, bound) without modulo bias.
  /// `bound` must be positive.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Returns an independently-seeded child generator. Splitting is how
  /// experiments give each trial / each mechanism invocation its own stream
  /// without correlation.
  Rng Split();

 private:
  std::uint64_t s_[4];
};

}  // namespace dplearn

#endif  // DPLEARN_SAMPLING_RNG_H_
