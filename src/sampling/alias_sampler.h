#ifndef DPLEARN_SAMPLING_ALIAS_SAMPLER_H_
#define DPLEARN_SAMPLING_ALIAS_SAMPLER_H_

#include <cstddef>
#include <vector>

#include "sampling/rng.h"
#include "util/status.h"

namespace dplearn {

/// Walker's alias method: O(n) preprocessing, O(1) per draw from a fixed
/// discrete distribution. Used wherever a Gibbs posterior / exponential
/// mechanism over a finite range is sampled many times (e.g. the empirical
/// DP verifier draws millions of outputs per neighboring-dataset pair).
class AliasSampler {
 public:
  /// Builds the alias table for probability vector `p` (validated).
  static StatusOr<AliasSampler> Create(const std::vector<double>& p);

  /// Draws an index distributed according to the construction distribution.
  std::size_t Sample(Rng* rng) const;

  /// Draws `k` indices into *out (resized to k), reusing this table for the
  /// whole block — bit- and stream-identical to k Sample() calls, with no
  /// per-draw allocation or call overhead. This is the intended shape for
  /// "millions of draws from one fixed posterior" workloads (the empirical
  /// DP verifier, Monte-Carlo utility sweeps); building the table once and
  /// batching draws is what makes the O(n) construction pay off.
  void SampleBatch(Rng* rng, std::size_t k, std::vector<std::size_t>* out) const;

  /// Number of outcomes.
  std::size_t size() const { return prob_.size(); }

  /// The probability vector the table was built from.
  const std::vector<double>& probabilities() const { return original_; }

 private:
  AliasSampler() = default;

  std::vector<double> original_;
  std::vector<double> prob_;        // acceptance probability per bucket
  std::vector<std::size_t> alias_;  // fallback outcome per bucket
};

}  // namespace dplearn

#endif  // DPLEARN_SAMPLING_ALIAS_SAMPLER_H_
