#include "sampling/metropolis.h"

#include <cmath>
#include <limits>

#include "obs/config.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sampling/distributions.h"

namespace dplearn {

StatusOr<MetropolisResult> RunMetropolis(const LogDensityFn& log_density,
                                         const std::vector<double>& initial_point,
                                         std::size_t num_samples,
                                         const MetropolisOptions& options, Rng* rng) {
  if (initial_point.empty()) {
    return InvalidArgumentError("RunMetropolis: initial point must be non-empty");
  }
  if (num_samples == 0) {
    return InvalidArgumentError("RunMetropolis: num_samples must be positive");
  }
  if (options.proposal_stddev <= 0.0) {
    return InvalidArgumentError("RunMetropolis: proposal_stddev must be positive");
  }
  if (options.thinning == 0) {
    return InvalidArgumentError("RunMetropolis: thinning must be positive");
  }

  obs::TraceSpan span("mcmc.run");

  std::vector<double> current = initial_point;
  double current_log_density = log_density(current);
  if (!std::isfinite(current_log_density)) {
    return InvalidArgumentError("RunMetropolis: initial point has zero density");
  }

  MetropolisResult result;
  result.samples.reserve(num_samples);

  const std::size_t total_steps = options.burn_in + num_samples * options.thinning;
  std::size_t accepted = 0;
  std::vector<double> proposal(current.size());

  for (std::size_t step = 0; step < total_steps; ++step) {
    for (std::size_t i = 0; i < current.size(); ++i) {
      proposal[i] = current[i] + options.proposal_stddev * SampleStandardNormal(rng);
    }
    const double proposal_log_density = log_density(proposal);
    const double log_ratio = proposal_log_density - current_log_density;
    if (log_ratio >= 0.0 || std::log(rng->NextDoubleOpen()) < log_ratio) {
      current = proposal;
      current_log_density = proposal_log_density;
      ++accepted;
    }
    if (step >= options.burn_in && (step - options.burn_in + 1) % options.thinning == 0) {
      result.samples.push_back(current);
    }
  }
  // Thinning arithmetic above retains exactly num_samples points.
  while (result.samples.size() < num_samples) result.samples.push_back(current);

  result.acceptance_rate =
      static_cast<double>(accepted) / static_cast<double>(total_steps);
  // Chain totals recorded once per run: no per-step instrumentation cost.
  if (obs::MetricsEnabled()) {
    static obs::Counter* const proposals = obs::GlobalMetrics().GetCounter("mcmc.proposals");
    static obs::Counter* const accepts = obs::GlobalMetrics().GetCounter("mcmc.accepted");
    static obs::Gauge* const rate =
        obs::GlobalMetrics().GetGauge("mcmc.acceptance_rate");
    proposals->Increment(total_steps);
    accepts->Increment(accepted);
    rate->Set(result.acceptance_rate);
  }
  return result;
}

}  // namespace dplearn
