#ifndef DPLEARN_SAMPLING_DISTRIBUTIONS_H_
#define DPLEARN_SAMPLING_DISTRIBUTIONS_H_

#include <cstddef>
#include <vector>

#include "sampling/rng.h"
#include "util/status.h"

namespace dplearn {

/// Samplers and densities for the distributions the library needs. All
/// samplers are pure functions of the Rng stream (no hidden state), and each
/// sampler has a matching density/log-density so that the empirical DP
/// verifier can compare measured frequencies against exact densities.

/// Draws Uniform(lo, hi). Error if lo >= hi.
StatusOr<double> SampleUniform(Rng* rng, double lo, double hi);

/// Draws a standard normal via the Marsaglia polar method.
double SampleStandardNormal(Rng* rng);

/// Draws Normal(mean, stddev). Error if stddev <= 0.
StatusOr<double> SampleNormal(Rng* rng, double mean, double stddev);

/// Log-density of Normal(mean, stddev) at x.
double NormalLogPdf(double x, double mean, double stddev);

/// CDF of Normal(mean, stddev) at x.
double NormalCdf(double x, double mean, double stddev);

/// Draws Laplace(mean, scale) by inverse CDF. Error if scale <= 0.
/// This is the noise distribution of the Laplace mechanism (Theorem 2.1).
StatusOr<double> SampleLaplace(Rng* rng, double mean, double scale);

/// Density of Laplace(mean, scale) at x: exp(-|x-mean|/scale) / (2*scale).
double LaplacePdf(double x, double mean, double scale);

/// Log-density of Laplace(mean, scale) at x.
double LaplaceLogPdf(double x, double mean, double scale);

/// CDF of Laplace(mean, scale) at x.
double LaplaceCdf(double x, double mean, double scale);

/// Draws Exponential(rate). Error if rate <= 0.
StatusOr<double> SampleExponential(Rng* rng, double rate);

/// Draws Gamma(shape, scale) via Marsaglia–Tsang. Error if shape <= 0 or
/// scale <= 0. Used to sample the norm of the noise vector in
/// Chaudhuri-style output/objective perturbation (the noise direction is
/// uniform on the sphere and the norm is Gamma(d, 2/(n*lambda*eps))-like).
StatusOr<double> SampleGamma(Rng* rng, double shape, double scale);

/// Draws Bernoulli(p) in {0,1}. Error if p outside [0,1].
StatusOr<int> SampleBernoulli(Rng* rng, double p);

/// Draws an index from the distribution `p` by inverse CDF; `p` must be a
/// valid probability vector. For repeated draws from a fixed distribution
/// prefer AliasSampler.
StatusOr<std::size_t> SampleDiscrete(Rng* rng, const std::vector<double>& p);

/// Draws an index proportionally to exp(log_weights[i]) without forming the
/// normalized distribution (Gumbel-max trick): stable when weights span many
/// orders of magnitude, which they do for exponential-mechanism scores at
/// large epsilon. Error if empty.
StatusOr<std::size_t> SampleFromLogWeights(Rng* rng, const std::vector<double>& log_weights);

/// Draws a point uniformly from the surface of the unit sphere in d
/// dimensions. Error if d == 0.
StatusOr<std::vector<double>> SampleUnitSphere(Rng* rng, std::size_t d);

/// Draws a noise vector with density proportional to exp(-rate * ||b||_2)
/// in d dimensions (the "Gamma-norm + uniform direction" construction used
/// by Chaudhuri–Monteleoni–Sarwate for private ERM). Error if rate <= 0 or
/// d == 0.
StatusOr<std::vector<double>> SampleGammaNormVector(Rng* rng, std::size_t d, double rate);

}  // namespace dplearn

#endif  // DPLEARN_SAMPLING_DISTRIBUTIONS_H_
