#ifndef DPLEARN_SAMPLING_DISTRIBUTIONS_H_
#define DPLEARN_SAMPLING_DISTRIBUTIONS_H_

#include <cstddef>
#include <vector>

#include "sampling/rng.h"
#include "util/status.h"

namespace dplearn {

/// Samplers and densities for the distributions the library needs. All
/// samplers are pure functions of the Rng stream (no hidden state), and each
/// sampler has a matching density/log-density so that the empirical DP
/// verifier can compare measured frequencies against exact densities.

/// Draws Uniform(lo, hi). Error if lo >= hi.
StatusOr<double> SampleUniform(Rng* rng, double lo, double hi);

/// Draws a standard normal via the Marsaglia polar method.
double SampleStandardNormal(Rng* rng);

/// Draws Normal(mean, stddev). Error if stddev <= 0.
StatusOr<double> SampleNormal(Rng* rng, double mean, double stddev);

/// Log-density of Normal(mean, stddev) at x.
double NormalLogPdf(double x, double mean, double stddev);

/// CDF of Normal(mean, stddev) at x.
double NormalCdf(double x, double mean, double stddev);

/// Draws Laplace(mean, scale) by inverse CDF. Error if scale <= 0.
/// This is the noise distribution of the Laplace mechanism (Theorem 2.1).
StatusOr<double> SampleLaplace(Rng* rng, double mean, double scale);

/// Density of Laplace(mean, scale) at x: exp(-|x-mean|/scale) / (2*scale).
double LaplacePdf(double x, double mean, double scale);

/// Log-density of Laplace(mean, scale) at x.
double LaplaceLogPdf(double x, double mean, double scale);

/// CDF of Laplace(mean, scale) at x.
double LaplaceCdf(double x, double mean, double scale);

/// Draws Exponential(rate). Error if rate <= 0.
StatusOr<double> SampleExponential(Rng* rng, double rate);

/// Draws Gamma(shape, scale) via Marsaglia–Tsang. Error if shape <= 0 or
/// scale <= 0. Used to sample the norm of the noise vector in
/// Chaudhuri-style output/objective perturbation (the noise direction is
/// uniform on the sphere and the norm is Gamma(d, 2/(n*lambda*eps))-like).
StatusOr<double> SampleGamma(Rng* rng, double shape, double scale);

/// Draws Bernoulli(p) in {0,1}. Error if p outside [0,1].
StatusOr<int> SampleBernoulli(Rng* rng, double p);

/// Draws an index from the distribution `p` by inverse CDF; `p` must be a
/// valid probability vector. For repeated draws from a fixed distribution
/// prefer AliasSampler.
StatusOr<std::size_t> SampleDiscrete(Rng* rng, const std::vector<double>& p);

/// Draws an index proportionally to exp(log_weights[i]) without forming the
/// normalized distribution (Gumbel-max trick): stable when weights span many
/// orders of magnitude, which they do for exponential-mechanism scores at
/// large epsilon. Error if empty; OutOfRangeError if any log-weight is NaN
/// or +inf (a NaN silently loses every Gumbel comparison and a +inf wins
/// every draw — both poison the sample, so they are rejected up front).
/// -inf entries are legal zero-mass atoms.
StatusOr<std::size_t> SampleFromLogWeights(Rng* rng, const std::vector<double>& log_weights);

/// Scratch-buffer overload for hot loops: identical draw, but the block of
/// uniforms feeding the Gumbel perturbations is filled through `scratch`
/// (resized to log_weights.size() once, then reused across calls) instead
/// of being drawn one library call at a time. Bit- and stream-identical to
/// the overload above; MCMC/Gibbs inner loops and the batch samplers pass a
/// long-lived buffer so repeated draws from the same posterior allocate
/// nothing. Error if empty or scratch == nullptr.
StatusOr<std::size_t> SampleFromLogWeights(Rng* rng, const std::vector<double>& log_weights,
                                           std::vector<double>* scratch);

/// Draws `k` i.i.d. indices from the log-weights distribution into *out —
/// bit- and stream-identical to k sequential SampleFromLogWeights calls on
/// the same Rng, but the log-weight vector is walked k times without
/// re-deriving it and with one shared scratch buffer, which is what makes
/// repeated draws from a fixed Gibbs posterior / exponential mechanism
/// cheap. *out is resized to k (its prior contents are discarded). Error if
/// log_weights is empty, out == nullptr, or all weights are zero.
Status SampleFromLogWeightsBatch(Rng* rng, const std::vector<double>& log_weights,
                                 std::size_t k, std::vector<std::size_t>* out);

/// Draws a point uniformly from the surface of the unit sphere in d
/// dimensions. Error if d == 0.
StatusOr<std::vector<double>> SampleUnitSphere(Rng* rng, std::size_t d);

/// Scratch-buffer overload: writes the point into *out (resized to d),
/// drawing the same values as the allocating overload. For per-trial noise
/// loops (private ERM sweeps) that would otherwise allocate a vector per
/// draw. Error if d == 0 or out == nullptr.
Status SampleUnitSphere(Rng* rng, std::size_t d, std::vector<double>* out);

/// Draws a noise vector with density proportional to exp(-rate * ||b||_2)
/// in d dimensions (the "Gamma-norm + uniform direction" construction used
/// by Chaudhuri–Monteleoni–Sarwate for private ERM). Error if rate <= 0 or
/// d == 0.
StatusOr<std::vector<double>> SampleGammaNormVector(Rng* rng, std::size_t d, double rate);

/// Scratch-buffer overload of SampleGammaNormVector: writes into *out
/// (resized to d), bit-identical to the allocating overload. Error if
/// rate <= 0, d == 0, or out == nullptr.
Status SampleGammaNormVector(Rng* rng, std::size_t d, double rate,
                             std::vector<double>* out);

}  // namespace dplearn

#endif  // DPLEARN_SAMPLING_DISTRIBUTIONS_H_
