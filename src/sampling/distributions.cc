#include "sampling/distributions.h"

#include <cmath>
#include <limits>

#include "simd/dispatch.h"
#include "simd/kernels.h"
#include "util/math_util.h"
#include "util/status.h"

namespace dplearn {

namespace {
constexpr double kSqrt2Pi = 2.5066282746310002;

/// Gumbel-max poisoning guard: a NaN log-weight silently LOSES every
/// comparison (NaN + G is NaN; NaN > best is false), so a poisoned score
/// never wins and never errors — the sampler would quietly draw from the
/// wrong distribution. A +inf log-weight is the dual failure: it wins every
/// draw regardless of the Gumbel noise. Both are input bugs, rejected up
/// front with OutOfRange (matching the risk layer's non-finite-input
/// policy). -inf stays legal — it is an honest zero-mass entry.
Status ValidateLogWeights(const char* fn, const std::vector<double>& log_weights) {
  for (std::size_t i = 0; i < log_weights.size(); ++i) {
    const double w = log_weights[i];
    if (std::isnan(w) || w == std::numeric_limits<double>::infinity()) {
      return OutOfRangeError(std::string(fn) + ": non-finite log-weight (NaN or +inf) at index " +
                             std::to_string(i));
    }
  }
  return Status::Ok();
}

/// The validated Gumbel-max core shared by the scratch and batch overloads:
/// fills `scratch` with one blocked uniform draw, then takes the argmax.
/// The simd kernel returns bitwise the same index as the scalar loop for
/// identical inputs, so DPLEARN_SIMD never changes which index is drawn.
StatusOr<std::size_t> GumbelMaxDraw(Rng* rng, const std::vector<double>& log_weights,
                                    std::vector<double>* scratch) {
  scratch->resize(log_weights.size());
  rng->NextDoubleOpenBatch(scratch->data(), scratch->size());
  if (simd::SimdEnabled()) {
    const std::ptrdiff_t idx =
        simd::GumbelMaxIndex(log_weights.data(), scratch->data(), log_weights.size());
    if (idx < 0) {
      return InvalidArgumentError("SampleFromLogWeights: all weights are zero");
    }
    return static_cast<std::size_t>(idx);
  }
  std::size_t best = 0;
  double best_val = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < log_weights.size(); ++i) {
    const double gumbel = -std::log(-std::log((*scratch)[i]));
    const double val = log_weights[i] + gumbel;
    if (val > best_val) {
      best_val = val;
      best = i;
    }
  }
  if (best_val == -std::numeric_limits<double>::infinity()) {
    return InvalidArgumentError("SampleFromLogWeights: all weights are zero");
  }
  return best;
}
}  // namespace

StatusOr<double> SampleUniform(Rng* rng, double lo, double hi) {
  if (!(lo < hi)) return InvalidArgumentError("SampleUniform: lo must be < hi");
  return lo + (hi - lo) * rng->NextDouble();
}

double SampleStandardNormal(Rng* rng) {
  // Marsaglia polar method; rejection loop accepts ~78.5% of candidates.
  for (;;) {
    const double u = 2.0 * rng->NextDouble() - 1.0;
    const double v = 2.0 * rng->NextDouble() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

StatusOr<double> SampleNormal(Rng* rng, double mean, double stddev) {
  if (stddev <= 0.0) return InvalidArgumentError("SampleNormal: stddev must be positive");
  return mean + stddev * SampleStandardNormal(rng);
}

double NormalLogPdf(double x, double mean, double stddev) {
  const double z = (x - mean) / stddev;
  return -0.5 * z * z - std::log(stddev * kSqrt2Pi);
}

double NormalCdf(double x, double mean, double stddev) {
  return 0.5 * std::erfc(-(x - mean) / (stddev * 1.4142135623730951));
}

StatusOr<double> SampleLaplace(Rng* rng, double mean, double scale) {
  if (scale <= 0.0) return InvalidArgumentError("SampleLaplace: scale must be positive");
  // Inverse CDF on u ~ Uniform(-1/2, 1/2): x = mean - scale*sgn(u)*log(1-2|u|).
  const double u = rng->NextDoubleOpen() - 0.5;
  const double sgn = (u < 0.0) ? -1.0 : 1.0;
  return mean - scale * sgn * std::log1p(-2.0 * std::fabs(u));
}

double LaplacePdf(double x, double mean, double scale) {
  return std::exp(-std::fabs(x - mean) / scale) / (2.0 * scale);
}

double LaplaceLogPdf(double x, double mean, double scale) {
  return -std::fabs(x - mean) / scale - std::log(2.0 * scale);
}

double LaplaceCdf(double x, double mean, double scale) {
  const double z = (x - mean) / scale;
  if (z < 0.0) return 0.5 * std::exp(z);
  return 1.0 - 0.5 * std::exp(-z);
}

StatusOr<double> SampleExponential(Rng* rng, double rate) {
  if (rate <= 0.0) return InvalidArgumentError("SampleExponential: rate must be positive");
  return -std::log(rng->NextDoubleOpen()) / rate;
}

StatusOr<double> SampleGamma(Rng* rng, double shape, double scale) {
  if (shape <= 0.0 || scale <= 0.0) {
    return InvalidArgumentError("SampleGamma: shape and scale must be positive");
  }
  // Marsaglia–Tsang squeeze method; for shape < 1 boost with U^{1/shape}.
  if (shape < 1.0) {
    DPLEARN_ASSIGN_OR_RETURN(double g, SampleGamma(rng, shape + 1.0, scale));
    const double u = rng->NextDoubleOpen();
    return g * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = SampleStandardNormal(rng);
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng->NextDoubleOpen();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v * scale;
  }
}

StatusOr<int> SampleBernoulli(Rng* rng, double p) {
  if (p < 0.0 || p > 1.0) return InvalidArgumentError("SampleBernoulli: p must be in [0,1]");
  return rng->NextDouble() < p ? 1 : 0;
}

StatusOr<std::size_t> SampleDiscrete(Rng* rng, const std::vector<double>& p) {
  DPLEARN_RETURN_IF_ERROR(ValidateDistribution(p, 1e-6));
  const double u = rng->NextDouble();
  double acc = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    acc += p[i];
    if (u < acc) return i;
  }
  return p.size() - 1;  // u landed in the rounding slack at the top
}

StatusOr<std::size_t> SampleFromLogWeights(Rng* rng, const std::vector<double>& log_weights) {
  if (log_weights.empty()) {
    return InvalidArgumentError("SampleFromLogWeights: empty input");
  }
  DPLEARN_RETURN_IF_ERROR(ValidateLogWeights("SampleFromLogWeights", log_weights));
  // Gumbel-max: argmax_i (log w_i + G_i), G_i ~ Gumbel(0,1).
  std::size_t best = 0;
  double best_val = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < log_weights.size(); ++i) {
    const double gumbel = -std::log(-std::log(rng->NextDoubleOpen()));
    const double val = log_weights[i] + gumbel;
    if (val > best_val) {
      best_val = val;
      best = i;
    }
  }
  if (best_val == -std::numeric_limits<double>::infinity()) {
    return InvalidArgumentError("SampleFromLogWeights: all weights are zero");
  }
  return best;
}

StatusOr<std::size_t> SampleFromLogWeights(Rng* rng, const std::vector<double>& log_weights,
                                           std::vector<double>* scratch) {
  if (log_weights.empty()) {
    return InvalidArgumentError("SampleFromLogWeights: empty input");
  }
  if (scratch == nullptr) {
    return InvalidArgumentError("SampleFromLogWeights: scratch must be set");
  }
  DPLEARN_RETURN_IF_ERROR(ValidateLogWeights("SampleFromLogWeights", log_weights));
  // One blocked uniform fill instead of per-element NextDoubleOpen() calls.
  // The stream order is unchanged (element i still consumes the i-th draw),
  // so the selected index is bitwise the same as the allocation-free
  // overload's; only the call pattern differs.
  return GumbelMaxDraw(rng, log_weights, scratch);
}

Status SampleFromLogWeightsBatch(Rng* rng, const std::vector<double>& log_weights,
                                 std::size_t k, std::vector<std::size_t>* out) {
  if (log_weights.empty()) {
    return InvalidArgumentError("SampleFromLogWeightsBatch: empty input");
  }
  if (out == nullptr) {
    return InvalidArgumentError("SampleFromLogWeightsBatch: out must be set");
  }
  // Validate once for all k draws; GumbelMaxDraw assumes clean input.
  DPLEARN_RETURN_IF_ERROR(ValidateLogWeights("SampleFromLogWeightsBatch", log_weights));
  out->resize(k);
  std::vector<double> scratch;
  scratch.reserve(log_weights.size());
  for (std::size_t j = 0; j < k; ++j) {
    DPLEARN_ASSIGN_OR_RETURN((*out)[j], GumbelMaxDraw(rng, log_weights, &scratch));
  }
  return Status::Ok();
}

Status SampleUnitSphere(Rng* rng, std::size_t d, std::vector<double>* out) {
  if (d == 0) return InvalidArgumentError("SampleUnitSphere: dimension must be positive");
  if (out == nullptr) return InvalidArgumentError("SampleUnitSphere: out must be set");
  out->resize(d);
  std::vector<double>& v = *out;
  double norm_sq = 0.0;
  do {
    norm_sq = 0.0;
    for (std::size_t i = 0; i < d; ++i) {
      v[i] = SampleStandardNormal(rng);
      norm_sq += v[i] * v[i];
    }
  } while (norm_sq == 0.0);
  const double inv = 1.0 / std::sqrt(norm_sq);
  for (double& x : v) x *= inv;
  return Status::Ok();
}

StatusOr<std::vector<double>> SampleUnitSphere(Rng* rng, std::size_t d) {
  std::vector<double> v;
  DPLEARN_RETURN_IF_ERROR(SampleUnitSphere(rng, d, &v));
  return v;
}

Status SampleGammaNormVector(Rng* rng, std::size_t d, double rate,
                             std::vector<double>* out) {
  if (rate <= 0.0) {
    return InvalidArgumentError("SampleGammaNormVector: rate must be positive");
  }
  if (out == nullptr) {
    return InvalidArgumentError("SampleGammaNormVector: out must be set");
  }
  DPLEARN_RETURN_IF_ERROR(SampleUnitSphere(rng, d, out));
  // ||b|| has density prop. to r^{d-1} exp(-rate*r), i.e. Gamma(d, 1/rate).
  DPLEARN_ASSIGN_OR_RETURN(double norm, SampleGamma(rng, static_cast<double>(d), 1.0 / rate));
  for (double& x : *out) x *= norm;
  return Status::Ok();
}

StatusOr<std::vector<double>> SampleGammaNormVector(Rng* rng, std::size_t d, double rate) {
  std::vector<double> dir;
  DPLEARN_RETURN_IF_ERROR(SampleGammaNormVector(rng, d, rate, &dir));
  return dir;
}

}  // namespace dplearn
