#include "sampling/alias_sampler.h"

#include <vector>

#include "util/math_util.h"

namespace dplearn {

StatusOr<AliasSampler> AliasSampler::Create(const std::vector<double>& p) {
  DPLEARN_RETURN_IF_ERROR(ValidateDistribution(p, 1e-6));
  const std::size_t n = p.size();
  AliasSampler s;
  s.original_ = p;
  s.prob_.assign(n, 0.0);
  s.alias_.assign(n, 0);

  // Scale so the average bucket mass is 1, then pair under-full buckets with
  // over-full ones (Vose's stable variant).
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) scaled[i] = p[i] * static_cast<double>(n);

  std::vector<std::size_t> small;
  std::vector<std::size_t> large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }

  while (!small.empty() && !large.empty()) {
    const std::size_t s_idx = small.back();
    small.pop_back();
    const std::size_t l_idx = large.back();
    large.pop_back();
    s.prob_[s_idx] = scaled[s_idx];
    s.alias_[s_idx] = l_idx;
    scaled[l_idx] = (scaled[l_idx] + scaled[s_idx]) - 1.0;
    (scaled[l_idx] < 1.0 ? small : large).push_back(l_idx);
  }
  // Remaining buckets have mass 1 up to rounding.
  for (std::size_t i : large) s.prob_[i] = 1.0;
  for (std::size_t i : small) s.prob_[i] = 1.0;
  return s;
}

std::size_t AliasSampler::Sample(Rng* rng) const {
  const std::size_t bucket = static_cast<std::size_t>(rng->NextBounded(prob_.size()));
  return rng->NextDouble() < prob_[bucket] ? bucket : alias_[bucket];
}

void AliasSampler::SampleBatch(Rng* rng, std::size_t k,
                               std::vector<std::size_t>* out) const {
  out->resize(k);
  // Per-draw arithmetic identical to Sample(); the batch form keeps the
  // table rows hot in cache across the block and resizes out exactly once.
  for (std::size_t j = 0; j < k; ++j) {
    const std::size_t bucket = static_cast<std::size_t>(rng->NextBounded(prob_.size()));
    (*out)[j] = rng->NextDouble() < prob_[bucket] ? bucket : alias_[bucket];
  }
}

}  // namespace dplearn
