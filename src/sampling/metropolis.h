#ifndef DPLEARN_SAMPLING_METROPOLIS_H_
#define DPLEARN_SAMPLING_METROPOLIS_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "sampling/rng.h"
#include "util/status.h"

namespace dplearn {

/// Unnormalized log-density over R^d. Implementations must be deterministic
/// functions of their argument; returning -infinity marks a point as outside
/// the support.
using LogDensityFn = std::function<double(const std::vector<double>&)>;

/// Configuration for the random-walk Metropolis sampler.
struct MetropolisOptions {
  /// Gaussian proposal standard deviation (isotropic).
  double proposal_stddev = 0.25;
  /// Iterations discarded before samples are collected.
  std::size_t burn_in = 1000;
  /// Chain steps between retained samples (reduces autocorrelation).
  std::size_t thinning = 10;
};

/// Result of a Metropolis run: retained samples plus chain diagnostics.
struct MetropolisResult {
  std::vector<std::vector<double>> samples;
  /// Fraction of proposals accepted over the whole run (including burn-in).
  double acceptance_rate = 0.0;
};

/// Random-walk Metropolis–Hastings over an unnormalized log-density.
///
/// This is the continuous-Θ path for the exponential mechanism / Gibbs
/// posterior (the paper's Section 2.1 mechanism "dπ*(u) ∝ exp(εq(x,u))dπ(u)"
/// over an arbitrary range): for continuous parameter spaces the posterior
/// cannot be enumerated, so we sample it by MCMC. Exactness then holds only
/// asymptotically; the experiment harness uses grid-enumerable spaces when a
/// sharp theorem check is required and MCMC when realism is required.
///
/// Errors: invalid options (non-positive stddev, zero thinning), empty
/// initial point, initial point with zero density, or num_samples == 0.
StatusOr<MetropolisResult> RunMetropolis(const LogDensityFn& log_density,
                                         const std::vector<double>& initial_point,
                                         std::size_t num_samples,
                                         const MetropolisOptions& options, Rng* rng);

}  // namespace dplearn

#endif  // DPLEARN_SAMPLING_METROPOLIS_H_
