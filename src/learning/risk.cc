#include "learning/risk.h"

#include <cmath>

#include "parallel/trial_runner.h"

namespace dplearn {
namespace {

/// Below this many loss evaluations (|Θ| × n) a risk profile is cheaper to
/// compute inline than to fan out. Parallelism is per-hypothesis: each
/// risks[i] is produced by the same serial inner loop as before, so the
/// profile is bit-identical to the sequential result at any thread count.
constexpr std::size_t kParallelProfileMinWork = 1 << 14;

}  // namespace

StatusOr<double> EmpiricalRisk(const LossFunction& loss, const Vector& theta,
                               const Dataset& data) {
  if (data.empty()) return InvalidArgumentError("EmpiricalRisk: empty dataset");
  double sum = 0.0;
  for (const Example& z : data.examples()) sum += loss.Loss(theta, z);
  return sum / static_cast<double>(data.size());
}

StatusOr<std::vector<double>> EmpiricalRiskProfile(const LossFunction& loss,
                                                   const std::vector<Vector>& thetas,
                                                   const Dataset& data) {
  if (thetas.empty()) return InvalidArgumentError("EmpiricalRiskProfile: empty hypothesis list");
  if (data.empty()) return InvalidArgumentError("EmpiricalRiskProfile: empty dataset");
  std::vector<double> risks(thetas.size());
  if (thetas.size() * data.size() >= kParallelProfileMinWork) {
    // EmpiricalRisk can only fail on an empty dataset, which was rejected
    // above, so the parallel path needs a status slot per hypothesis only
    // for defense in depth.
    std::vector<Status> statuses(thetas.size());
    parallel::ParallelTrialRunner runner;
    runner.ForIndex(thetas.size(), [&](std::size_t i) {
      StatusOr<double> risk = EmpiricalRisk(loss, thetas[i], data);
      if (risk.ok()) {
        risks[i] = risk.value();
      } else {
        statuses[i] = risk.status();
      }
    });
    for (const Status& status : statuses) {
      if (!status.ok()) return status;
    }
    return risks;
  }
  for (std::size_t i = 0; i < thetas.size(); ++i) {
    DPLEARN_ASSIGN_OR_RETURN(risks[i], EmpiricalRisk(loss, thetas[i], data));
  }
  return risks;
}

StatusOr<double> MonteCarloTrueRisk(const LossFunction& loss, const Vector& theta,
                                    const Dataset& fresh_sample) {
  return EmpiricalRisk(loss, theta, fresh_sample);
}

StatusOr<double> EmpiricalRiskSensitivityBound(const LossFunction& loss, std::size_t n) {
  if (n == 0) return InvalidArgumentError("EmpiricalRiskSensitivityBound: n must be positive");
  return loss.UpperBound() / static_cast<double>(n);
}

StatusOr<double> ExactRiskSensitivity(const LossFunction& loss,
                                      const std::vector<Vector>& thetas,
                                      const std::vector<Example>& domain, std::size_t n) {
  if (thetas.empty() || domain.empty()) {
    return InvalidArgumentError("ExactRiskSensitivity: empty hypothesis list or domain");
  }
  if (n == 0) return InvalidArgumentError("ExactRiskSensitivity: n must be positive");
  double max_spread = 0.0;
  for (const Vector& theta : thetas) {
    double lo = loss.Loss(theta, domain[0]);
    double hi = lo;
    for (const Example& z : domain) {
      const double l = loss.Loss(theta, z);
      lo = std::min(lo, l);
      hi = std::max(hi, l);
    }
    max_spread = std::max(max_spread, hi - lo);
  }
  return max_spread / static_cast<double>(n);
}

}  // namespace dplearn
