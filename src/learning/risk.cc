#include "learning/risk.h"

#include <cmath>

namespace dplearn {

StatusOr<double> EmpiricalRisk(const LossFunction& loss, const Vector& theta,
                               const Dataset& data) {
  if (data.empty()) return InvalidArgumentError("EmpiricalRisk: empty dataset");
  double sum = 0.0;
  for (const Example& z : data.examples()) sum += loss.Loss(theta, z);
  return sum / static_cast<double>(data.size());
}

StatusOr<std::vector<double>> EmpiricalRiskProfile(const LossFunction& loss,
                                                   const std::vector<Vector>& thetas,
                                                   const Dataset& data) {
  if (thetas.empty()) return InvalidArgumentError("EmpiricalRiskProfile: empty hypothesis list");
  if (data.empty()) return InvalidArgumentError("EmpiricalRiskProfile: empty dataset");
  std::vector<double> risks(thetas.size());
  for (std::size_t i = 0; i < thetas.size(); ++i) {
    DPLEARN_ASSIGN_OR_RETURN(risks[i], EmpiricalRisk(loss, thetas[i], data));
  }
  return risks;
}

StatusOr<double> MonteCarloTrueRisk(const LossFunction& loss, const Vector& theta,
                                    const Dataset& fresh_sample) {
  return EmpiricalRisk(loss, theta, fresh_sample);
}

StatusOr<double> EmpiricalRiskSensitivityBound(const LossFunction& loss, std::size_t n) {
  if (n == 0) return InvalidArgumentError("EmpiricalRiskSensitivityBound: n must be positive");
  return loss.UpperBound() / static_cast<double>(n);
}

StatusOr<double> ExactRiskSensitivity(const LossFunction& loss,
                                      const std::vector<Vector>& thetas,
                                      const std::vector<Example>& domain, std::size_t n) {
  if (thetas.empty() || domain.empty()) {
    return InvalidArgumentError("ExactRiskSensitivity: empty hypothesis list or domain");
  }
  if (n == 0) return InvalidArgumentError("ExactRiskSensitivity: n must be positive");
  double max_spread = 0.0;
  for (const Vector& theta : thetas) {
    double lo = loss.Loss(theta, domain[0]);
    double hi = lo;
    for (const Example& z : domain) {
      const double l = loss.Loss(theta, z);
      lo = std::min(lo, l);
      hi = std::max(hi, l);
    }
    max_spread = std::max(max_spread, hi - lo);
  }
  return max_spread / static_cast<double>(n);
}

}  // namespace dplearn
