#include "learning/risk.h"

#include <cmath>
#include <optional>
#include <string>

#include "parallel/trial_runner.h"
#include "simd/dispatch.h"
#include "simd/kernels.h"

namespace dplearn {
namespace {

/// Below this many loss evaluations (|Θ| × n) a risk profile is cheaper to
/// compute inline than to fan out. Parallelism is per-hypothesis: each
/// risks[i] is produced by the same serial inner loop as before, so the
/// profile is bit-identical to the sequential result at any thread count.
constexpr std::size_t kParallelProfileMinWork = 1 << 14;

/// The NaN-poisoning guard (DESIGN.md §14): clipped losses cannot signal a
/// poisoned input — Clamp(NaN, 0, B) == min(B, max(0, NaN)) == 0 in IEEE
/// semantics, because max(0, NaN) returns 0 — so a NaN feature silently
/// becomes a zero loss and a post-sum isfinite() check never fires. The only
/// sound policy is to reject non-finite INPUTS up front, with OutOfRange so
/// callers can distinguish poisoned data from structural errors.
Status ValidateTheta(const char* fn, const Vector& theta) {
  for (std::size_t j = 0; j < theta.size(); ++j) {
    if (!std::isfinite(theta[j])) {
      return OutOfRangeError(std::string(fn) + ": non-finite hypothesis coordinate " +
                             std::to_string(j));
    }
  }
  return Status::Ok();
}

/// One-time input scan for the scalar (virtual-dispatch) path; the simd path
/// gets the same checks fused into BuildDatasetSoA.
Status ValidateDatasetFinite(const char* fn, const Dataset& data) {
  for (std::size_t i = 0; i < data.size(); ++i) {
    const Example& z = data.at(i);
    if (!std::isfinite(z.label)) {
      return OutOfRangeError(std::string(fn) + ": non-finite label in example " +
                             std::to_string(i));
    }
    for (const double v : z.features) {
      if (!std::isfinite(v)) {
        return OutOfRangeError(std::string(fn) + ": non-finite feature in example " +
                               std::to_string(i));
      }
    }
  }
  return Status::Ok();
}

/// The legacy virtual-dispatch mean loss. Inputs are already validated; the
/// post-sum check remains for CUSTOM losses only, whose formulas we cannot
/// inspect — a custom Loss() returning NaN/inf on finite inputs is still a
/// contract violation worth a typed error rather than a poisoned profile.
StatusOr<double> ScalarMeanLoss(const LossFunction& loss, const Vector& theta,
                                const Dataset& data) {
  double sum = 0.0;
  for (const Example& z : data.examples()) sum += loss.Loss(theta, z);
  const double risk = sum / static_cast<double>(data.size());
  if (!std::isfinite(risk)) {
    return OutOfRangeError("EmpiricalRisk: loss '" + loss.Name() +
                           "' produced a non-finite risk on finite inputs");
  }
  return risk;
}

}  // namespace

std::optional<simd::LossSpec> SimdLossSpec(const LossFunction& loss) {
  simd::LossSpec spec;
  switch (loss.Kind()) {
    case LossKind::kZeroOne:
      spec.kind = simd::LossKind::kZeroOne;
      break;
    case LossKind::kClippedSquared:
      spec.kind = simd::LossKind::kClippedSquared;
      break;
    case LossKind::kClippedAbsolute:
      spec.kind = simd::LossKind::kClippedAbsolute;
      break;
    case LossKind::kLogistic:
      spec.kind = simd::LossKind::kLogistic;
      break;
    case LossKind::kHinge:
      spec.kind = simd::LossKind::kHinge;
      break;
    case LossKind::kHuber:
      spec.kind = simd::LossKind::kHuber;
      spec.delta = loss.ParameterFingerprint();
      break;
    case LossKind::kCustom:
      return std::nullopt;
  }
  spec.clip = loss.UpperBound();
  return spec;
}

Status BuildDatasetSoA(const Dataset& data, simd::DatasetSoA* out) {
  const std::size_t n = data.size();
  const std::size_t dim = data.FeatureDim();
  out->Reset(n, dim);
  double* labels = out->mutable_labels();
  for (std::size_t i = 0; i < n; ++i) {
    const Example& z = data.at(i);
    if (z.features.size() != dim) {
      return InvalidArgumentError("BuildDatasetSoA: ragged dataset — example " +
                                  std::to_string(i) + " has " +
                                  std::to_string(z.features.size()) + " features, expected " +
                                  std::to_string(dim));
    }
    if (!std::isfinite(z.label)) {
      return OutOfRangeError("BuildDatasetSoA: non-finite label in example " +
                             std::to_string(i));
    }
    labels[i] = z.label;
  }
  for (std::size_t j = 0; j < dim; ++j) {
    double* col = out->mutable_column(j);
    for (std::size_t i = 0; i < n; ++i) {
      const double v = data.at(i).features[j];
      if (!std::isfinite(v)) {
        return OutOfRangeError("BuildDatasetSoA: non-finite feature " + std::to_string(j) +
                               " in example " + std::to_string(i));
      }
      col[i] = v;
    }
  }
  return Status::Ok();
}

StatusOr<double> EmpiricalRisk(const LossFunction& loss, const Vector& theta,
                               const Dataset& data) {
  if (data.empty()) return InvalidArgumentError("EmpiricalRisk: empty dataset");
  DPLEARN_RETURN_IF_ERROR(ValidateTheta("EmpiricalRisk", theta));
  const std::optional<simd::LossSpec> spec = SimdLossSpec(loss);
  if (spec.has_value() && simd::SimdEnabled() && theta.size() == data.FeatureDim()) {
    thread_local simd::DatasetSoA soa;
    DPLEARN_RETURN_IF_ERROR(BuildDatasetSoA(data, &soa));
    return simd::MeanLossKernel(*spec, theta.data(), theta.size(), soa);
  }
  // A theta/dataset dimension mismatch falls through so the scalar Dot's
  // CHECK fires with the same diagnostic it always has.
  DPLEARN_RETURN_IF_ERROR(ValidateDatasetFinite("EmpiricalRisk", data));
  return ScalarMeanLoss(loss, theta, data);
}

StatusOr<std::vector<double>> EmpiricalRiskProfile(const LossFunction& loss,
                                                   const std::vector<Vector>& thetas,
                                                   const Dataset& data) {
  if (thetas.empty()) return InvalidArgumentError("EmpiricalRiskProfile: empty hypothesis list");
  if (data.empty()) return InvalidArgumentError("EmpiricalRiskProfile: empty dataset");
  for (const Vector& theta : thetas) {
    DPLEARN_RETURN_IF_ERROR(ValidateTheta("EmpiricalRiskProfile", theta));
  }
  std::vector<double> risks(thetas.size());
  const bool parallel_eligible = thetas.size() * data.size() >= kParallelProfileMinWork;

  const std::optional<simd::LossSpec> spec = SimdLossSpec(loss);
  bool simd_ok = spec.has_value() && simd::SimdEnabled();
  if (simd_ok) {
    for (const Vector& theta : thetas) simd_ok = simd_ok && theta.size() == data.FeatureDim();
  }
  if (simd_ok) {
    // One SoA build amortized over |Θ| kernel calls. The kernel is a pure
    // function — the parallel fan-out needs no per-hypothesis status slots,
    // and each risks[i] is identical to the serial call at any thread count.
    thread_local simd::DatasetSoA soa;
    DPLEARN_RETURN_IF_ERROR(BuildDatasetSoA(data, &soa));
    const simd::DatasetSoA* view = &soa;
    const simd::LossSpec kernel_spec = *spec;
    if (parallel_eligible) {
      parallel::ParallelTrialRunner runner;
      runner.ForIndex(thetas.size(), [&](std::size_t i) {
        risks[i] = simd::MeanLossKernel(kernel_spec, thetas[i].data(), thetas[i].size(), *view);
      });
    } else {
      for (std::size_t i = 0; i < thetas.size(); ++i) {
        risks[i] = simd::MeanLossKernel(kernel_spec, thetas[i].data(), thetas[i].size(), *view);
      }
    }
    return risks;
  }

  DPLEARN_RETURN_IF_ERROR(ValidateDatasetFinite("EmpiricalRiskProfile", data));
  if (parallel_eligible) {
    // ScalarMeanLoss can only fail on a custom loss emitting a non-finite
    // value; the per-hypothesis status slots surface the first such failure.
    std::vector<Status> statuses(thetas.size());
    parallel::ParallelTrialRunner runner;
    runner.ForIndex(thetas.size(), [&](std::size_t i) {
      StatusOr<double> risk = ScalarMeanLoss(loss, thetas[i], data);
      if (risk.ok()) {
        risks[i] = risk.value();
      } else {
        statuses[i] = risk.status();
      }
    });
    for (const Status& status : statuses) {
      if (!status.ok()) return status;
    }
    return risks;
  }
  for (std::size_t i = 0; i < thetas.size(); ++i) {
    DPLEARN_ASSIGN_OR_RETURN(risks[i], ScalarMeanLoss(loss, thetas[i], data));
  }
  return risks;
}

StatusOr<double> MonteCarloTrueRisk(const LossFunction& loss, const Vector& theta,
                                    const Dataset& fresh_sample) {
  return EmpiricalRisk(loss, theta, fresh_sample);
}

StatusOr<double> EmpiricalRiskSensitivityBound(const LossFunction& loss, std::size_t n) {
  if (n == 0) return InvalidArgumentError("EmpiricalRiskSensitivityBound: n must be positive");
  return loss.UpperBound() / static_cast<double>(n);
}

StatusOr<double> ExactRiskSensitivity(const LossFunction& loss,
                                      const std::vector<Vector>& thetas,
                                      const std::vector<Example>& domain, std::size_t n) {
  if (thetas.empty() || domain.empty()) {
    return InvalidArgumentError("ExactRiskSensitivity: empty hypothesis list or domain");
  }
  if (n == 0) return InvalidArgumentError("ExactRiskSensitivity: n must be positive");
  double max_spread = 0.0;
  for (const Vector& theta : thetas) {
    double lo = loss.Loss(theta, domain[0]);
    double hi = lo;
    for (const Example& z : domain) {
      const double l = loss.Loss(theta, z);
      lo = std::min(lo, l);
      hi = std::max(hi, l);
    }
    max_spread = std::max(max_spread, hi - lo);
  }
  return max_spread / static_cast<double>(n);
}

}  // namespace dplearn
