#include "learning/preprocess.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/math_util.h"

namespace dplearn {

StatusOr<Dataset> ClipFeatureNorm(const Dataset& data, double max_norm) {
  if (!(max_norm > 0.0)) {
    return InvalidArgumentError("ClipFeatureNorm: max_norm must be positive");
  }
  Dataset out;
  for (const Example& z : data.examples()) {
    Example clipped = z;
    const double norm = Norm2(clipped.features);
    if (norm > max_norm) {
      const double scale = max_norm / norm;
      for (double& x : clipped.features) x *= scale;
    }
    out.Add(std::move(clipped));
  }
  return out;
}

StatusOr<Dataset> ClipLabels(const Dataset& data, double lo, double hi) {
  if (!(lo < hi)) return InvalidArgumentError("ClipLabels: lo must be < hi");
  Dataset out;
  for (const Example& z : data.examples()) {
    Example clipped = z;
    clipped.label = Clamp(clipped.label, lo, hi);
    out.Add(std::move(clipped));
  }
  return out;
}

StatusOr<Dataset> AppendBiasFeature(const Dataset& data) {
  const std::size_t dim = data.FeatureDim();
  Dataset out;
  for (const Example& z : data.examples()) {
    if (z.features.size() != dim) {
      return InvalidArgumentError("AppendBiasFeature: ragged feature dimensions");
    }
    Example extended = z;
    extended.features.push_back(1.0);
    out.Add(std::move(extended));
  }
  return out;
}

StatusOr<FeatureStats> ComputeFeatureStats(const Dataset& data) {
  if (data.empty()) return InvalidArgumentError("ComputeFeatureStats: empty dataset");
  FeatureStats stats;
  stats.dimension = data.FeatureDim();
  stats.min_label = std::numeric_limits<double>::infinity();
  stats.max_label = -std::numeric_limits<double>::infinity();
  double norm_sum = 0.0;
  for (const Example& z : data.examples()) {
    if (z.features.size() != stats.dimension) {
      return InvalidArgumentError("ComputeFeatureStats: ragged feature dimensions");
    }
    const double norm = Norm2(z.features);
    stats.max_norm = std::max(stats.max_norm, norm);
    norm_sum += norm;
    stats.min_label = std::min(stats.min_label, z.label);
    stats.max_label = std::max(stats.max_label, z.label);
  }
  stats.mean_norm = norm_sum / static_cast<double>(data.size());
  return stats;
}

}  // namespace dplearn
