#ifndef DPLEARN_LEARNING_KFOLD_H_
#define DPLEARN_LEARNING_KFOLD_H_

#include <cstddef>
#include <vector>

#include "learning/dataset.h"
#include "learning/hypothesis.h"
#include "learning/loss.h"
#include "sampling/rng.h"
#include "util/status.h"

namespace dplearn {

/// K-fold cross-validation over finite hypothesis classes. Non-private:
/// CV reuses the data K times and its output leaks; this utility exists as
/// (a) the non-private model-selection baseline the private selection
/// (core/lambda_selection.h) is measured against and (b) the standard tool
/// for picking PUBLIC parameters on public/synthetic data.

/// One train/validation partition.
struct Fold {
  Dataset train;
  Dataset validation;
};

/// Splits `data` into k folds after a seeded shuffle; fold i's validation
/// set is the i-th block, its training set the rest. Errors if k < 2 or
/// data.size() < k.
StatusOr<std::vector<Fold>> MakeFolds(const Dataset& data, std::size_t k, Rng* rng);

/// Mean validation risk of each hypothesis across folds (for grid-style
/// model selection). Errors propagate from fold construction / risk
/// evaluation.
StatusOr<std::vector<double>> CrossValidatedRisks(const LossFunction& loss,
                                                  const FiniteHypothesisClass& hclass,
                                                  const Dataset& data, std::size_t k,
                                                  Rng* rng);

/// Index of the hypothesis with the smallest cross-validated risk.
StatusOr<std::size_t> CrossValidatedSelection(const LossFunction& loss,
                                              const FiniteHypothesisClass& hclass,
                                              const Dataset& data, std::size_t k, Rng* rng);

}  // namespace dplearn

#endif  // DPLEARN_LEARNING_KFOLD_H_
