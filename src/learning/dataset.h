#ifndef DPLEARN_LEARNING_DATASET_H_
#define DPLEARN_LEARNING_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sampling/rng.h"
#include "util/matrix.h"
#include "util/status.h"

namespace dplearn {

/// One record Z = (X, Y) of the statistical-prediction framework of
/// Section 2.2: a feature vector and a real-valued label. Classification
/// tasks encode labels in {-1, +1}; the Bernoulli-mean task uses {0, 1} with
/// an empty feature convention (single constant feature).
struct Example {
  Vector features;
  double label = 0.0;

  friend bool operator==(const Example& a, const Example& b) {
    return a.features == b.features && a.label == b.label;
  }
};

/// A sample Ẑ = {Z_1, ..., Z_n}. The *neighbor relation* of
/// differentially-private learning (Section 2.2 of the paper) is defined
/// here: two datasets are neighbors iff they have the same size and differ
/// in exactly one example.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<Example> examples) : examples_(std::move(examples)) {}

  std::size_t size() const { return examples_.size(); }
  bool empty() const { return examples_.empty(); }
  const Example& at(std::size_t i) const { return examples_[i]; }
  const std::vector<Example>& examples() const { return examples_; }

  /// Appends an example.
  void Add(Example example) {
    examples_.push_back(std::move(example));
    ++generation_;
  }

  /// Returns a neighbor: this dataset with example `index` replaced by
  /// `replacement`. Error if index is out of range.
  StatusOr<Dataset> ReplaceExample(std::size_t index, Example replacement) const;

  /// In-place label overwrite — the allocation-free step between
  /// neighboring datasets that differ only in one label (the channel
  /// builder walks all n+1 representative datasets this way instead of
  /// reconstructing n examples per step). Error if index is out of range.
  Status SetLabel(std::size_t index, double label) {
    if (index >= examples_.size()) {
      return InvalidArgumentError("Dataset::SetLabel: index out of range");
    }
    examples_[index].label = label;
    ++generation_;
    return Status::Ok();
  }

  /// Mutation counter: bumped by every in-place content change (Add,
  /// SetLabel). Content-keyed consumers — the risk-profile cache above all —
  /// snapshot it around a hash-then-compute window to detect a dataset
  /// mutated mid-flight (e.g. a concurrent SetLabel walk like the channel
  /// builder's) and refuse to memoize the torn result. Two generations being
  /// equal on one object means its content is unchanged; the counter says
  /// nothing across distinct Dataset objects.
  std::uint64_t generation() const { return generation_; }

  /// Returns true iff `other` is a neighbor of this dataset (same size,
  /// exactly one differing example).
  bool IsNeighborOf(const Dataset& other) const;

  /// Dimensionality of the feature vectors (0 for an empty dataset).
  /// All examples are expected to share it.
  std::size_t FeatureDim() const { return empty() ? 0 : examples_[0].features.size(); }

  /// Splits into (train, test) with `train_fraction` of examples (rounded
  /// down) going to train, after a Fisher–Yates shuffle driven by `rng`.
  /// Error if the dataset is empty or the fraction is outside (0, 1).
  StatusOr<std::pair<Dataset, Dataset>> Split(double train_fraction, Rng* rng) const;

  friend bool operator==(const Dataset& a, const Dataset& b) {
    return a.examples_ == b.examples_;
  }

 private:
  std::vector<Example> examples_;
  std::uint64_t generation_ = 0;
};

/// Enumerates all neighbors of `dataset` obtainable by replacing one example
/// with one element of `replacement_pool`. Skips no-op replacements. This is
/// the exhaustive neighbor sweep used by the empirical DP verifier on small
/// discrete domains.
std::vector<Dataset> EnumerateNeighbors(const Dataset& dataset,
                                        const std::vector<Example>& replacement_pool);

}  // namespace dplearn

#endif  // DPLEARN_LEARNING_DATASET_H_
