#include "learning/streaming_risk.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "learning/risk.h"
#include "simd/dispatch.h"

namespace dplearn {
namespace {

/// splitmix64 finalizer — same mixer as the risk-profile cache, so a slot's
/// content hash is cheap and collision-resistant; a hash match alone never
/// removes (the bitwise compare below decides).
std::uint64_t Mix(std::uint64_t h, std::uint64_t v) {
  std::uint64_t z = h + 0x9e3779b97f4a7c15ULL + v;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t DoubleBits(double x) {
  std::uint64_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  return bits;
}

std::uint64_t HashExample(const Example& z) {
  std::uint64_t h = 0x2545f4914f6cdd1dULL;
  h = Mix(h, z.features.size());
  for (std::size_t j = 0; j < z.features.size(); ++j) {
    h = Mix(h, DoubleBits(z.features[j]));
  }
  return Mix(h, DoubleBits(z.label));
}

/// Bitwise content equality (memcmp semantics: NaN payloads and ±0.0 are
/// distinct) — must agree with HashExample so equal content implies equal
/// hash.
bool BitwiseExampleEqual(const Example& a, const Example& b) {
  if (a.features.size() != b.features.size()) return false;
  if (DoubleBits(a.label) != DoubleBits(b.label)) return false;
  return a.features.empty() ||
         std::memcmp(a.features.data(), b.features.data(),
                     a.features.size() * sizeof(double)) == 0;
}

/// The shared delta-row core: validates `z` and writes l_{θ_i}(z) into
/// out[0..|Θ|). `spec`/`uniform_dim` are the caller's precomputed kernel
/// eligibility (nullopt / mismatched dim falls back to the virtual loop).
Status FillLossRow(const LossFunction& loss, const std::optional<simd::LossSpec>& spec,
                   bool thetas_uniform, std::size_t uniform_dim,
                   const std::vector<Vector>& thetas, const Example& z,
                   simd::DatasetSoA* soa, double* out) {
  // Same NaN-poisoning policy as the batch path (DESIGN.md §14): clipped
  // losses launder NaN into 0, so poisoned INPUTS must be rejected up front.
  if (!std::isfinite(z.label)) {
    return OutOfRangeError("LossRow: non-finite label");
  }
  for (std::size_t j = 0; j < z.features.size(); ++j) {
    if (!std::isfinite(z.features[j])) {
      return OutOfRangeError("LossRow: non-finite feature " + std::to_string(j));
    }
  }

  if (spec.has_value() && simd::SimdEnabled() && thetas_uniform &&
      uniform_dim == z.features.size()) {
    // One-example SoA through the shared kernel: n=1 < kBlockedSumMinN, so
    // the kernel is sequential and the mean is sum/1.0 — the delta row is
    // bitwise the per-example loss the batch kernel would sum.
    soa->Reset(1, z.features.size());
    soa->mutable_labels()[0] = z.label;
    for (std::size_t j = 0; j < z.features.size(); ++j) {
      soa->mutable_column(j)[0] = z.features[j];
    }
    for (std::size_t i = 0; i < thetas.size(); ++i) {
      out[i] = simd::MeanLossKernel(*spec, thetas[i].data(), thetas[i].size(), *soa);
    }
    return Status::Ok();
  }

  for (std::size_t i = 0; i < thetas.size(); ++i) {
    const double l = loss.Loss(thetas[i], z);
    // Built-in losses are bounded by construction; only a custom formula can
    // emit a non-finite value on finite inputs (same check as the batch
    // scalar path).
    if (!std::isfinite(l)) {
      return OutOfRangeError("LossRow: loss '" + loss.Name() +
                             "' produced a non-finite value on finite inputs");
    }
    out[i] = l;
  }
  return Status::Ok();
}

}  // namespace

Status LossRow(const LossFunction& loss, const std::vector<Vector>& thetas,
               const Example& z, std::vector<double>* out) {
  if (out == nullptr) return InvalidArgumentError("LossRow: out must be set");
  if (thetas.empty()) return InvalidArgumentError("LossRow: empty hypothesis list");
  const std::optional<simd::LossSpec> spec = SimdLossSpec(loss);
  bool uniform = true;
  const std::size_t dim = thetas[0].size();
  for (const Vector& theta : thetas) uniform = uniform && theta.size() == dim;
  out->resize(thetas.size());
  thread_local simd::DatasetSoA soa;
  return FillLossRow(loss, spec, uniform, dim, thetas, z, &soa, out->data());
}

std::size_t StreamingRiskProfile::DefaultResyncEvery() {
  static const std::size_t value = [] {
    if (const char* env = std::getenv("DPLEARN_STREAM_RESYNC_EVERY")) {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(env, &end, 10);
      if (end != env && *end == '\0') return static_cast<std::size_t>(parsed);
    }
    return kDefaultResyncEvery;
  }();
  return value;
}

StreamingRiskProfile::StreamingRiskProfile(const LossFunction* loss,
                                           std::vector<Vector> thetas, Options options)
    : loss_(loss), thetas_(std::move(thetas)), resync_every_(options.resync_every) {
  simd_spec_ = SimdLossSpec(*loss_);
  uniform_theta_dim_ = thetas_[0].size();
  thetas_uniform_ = true;
  for (const Vector& theta : thetas_) {
    thetas_uniform_ = thetas_uniform_ && theta.size() == uniform_theta_dim_;
  }
  sums_.resize(thetas_.size());
  delta_row_.resize(thetas_.size());
  resync_risks_.resize(thetas_.size());
  if (options.reserve_examples > 0) {
    examples_.reserve(options.reserve_examples);
    hashes_.reserve(options.reserve_examples);
  }
}

StatusOr<StreamingRiskProfile> StreamingRiskProfile::Create(const LossFunction* loss,
                                                            std::vector<Vector> thetas) {
  return Create(loss, std::move(thetas), Options{});
}

StatusOr<StreamingRiskProfile> StreamingRiskProfile::Create(const LossFunction* loss,
                                                            std::vector<Vector> thetas,
                                                            Options options) {
  if (loss == nullptr) {
    return InvalidArgumentError("StreamingRiskProfile: loss must be set");
  }
  if (thetas.empty()) {
    return InvalidArgumentError("StreamingRiskProfile: empty hypothesis list");
  }
  for (std::size_t i = 0; i < thetas.size(); ++i) {
    for (std::size_t j = 0; j < thetas[i].size(); ++j) {
      if (!std::isfinite(thetas[i][j])) {
        return OutOfRangeError("StreamingRiskProfile: non-finite coordinate " +
                               std::to_string(j) + " in hypothesis " + std::to_string(i));
      }
    }
  }
  return StreamingRiskProfile(loss, std::move(thetas), options);
}

Status StreamingRiskProfile::ComputeDeltaRow(const Example& z) {
  if (feature_dim_known_ && z.features.size() != feature_dim_) {
    return InvalidArgumentError("StreamingRiskProfile: ragged example — has " +
                                std::to_string(z.features.size()) +
                                " features, stream established " +
                                std::to_string(feature_dim_));
  }
  // Member scratch (delta_soa_, delta_row_) keeps the steady state
  // allocation-free; FillLossRow validates finiteness on the way.
  return FillLossRow(*loss_, simd_spec_, thetas_uniform_, uniform_theta_dim_, thetas_, z,
                     &delta_soa_, delta_row_.data());
}

Status StreamingRiskProfile::AfterMutation() {
  synced_ = false;
  ++mutations_;
  ++mutations_since_resync_;
  if (resync_every_ > 0 && mutations_since_resync_ >= resync_every_) {
    return Resync();
  }
  return Status::Ok();
}

Status StreamingRiskProfile::AddExample(const Example& z) {
  DPLEARN_RETURN_IF_ERROR(ComputeDeltaRow(z));
  if (!feature_dim_known_) {
    feature_dim_ = z.features.size();
    feature_dim_known_ = true;
  }
  const std::uint64_t hash = HashExample(z);
  if (live_count_ < examples_.size()) {
    // Recycle a retired slot: copy-assignment reuses the slot's feature
    // capacity, keeping the steady state allocation-free.
    examples_[live_count_] = z;
    hashes_[live_count_] = hash;
  } else {
    examples_.push_back(z);
    hashes_.push_back(hash);
  }
  ++live_count_;
  for (std::size_t i = 0; i < sums_.size(); ++i) sums_[i].Add(delta_row_[i]);
  return AfterMutation();
}

Status StreamingRiskProfile::RemoveExample(const Example& z) {
  if (live_count_ == 0) {
    return FailedPreconditionError("StreamingRiskProfile: remove from an empty stream");
  }
  DPLEARN_RETURN_IF_ERROR(ComputeDeltaRow(z));
  const std::uint64_t hash = HashExample(z);
  std::size_t index = live_count_;
  for (std::size_t i = 0; i < live_count_; ++i) {
    if (hashes_[i] == hash && BitwiseExampleEqual(examples_[i], z)) {
      index = i;
      break;
    }
  }
  if (index == live_count_) {
    return NotFoundError("StreamingRiskProfile: no live example matches the "
                         "removal candidate bitwise");
  }
  for (std::size_t i = 0; i < sums_.size(); ++i) sums_[i].Add(-delta_row_[i]);
  // Swap-compact: the removed slot takes the last live example; retired
  // slots keep their capacity for recycling by a later Add.
  const std::size_t last = live_count_ - 1;
  if (index != last) {
    std::swap(examples_[index], examples_[last]);
    std::swap(hashes_[index], hashes_[last]);
  }
  --live_count_;
  return AfterMutation();
}

Status StreamingRiskProfile::SnapshotInto(std::vector<double>* out) const {
  if (out == nullptr) {
    return InvalidArgumentError("StreamingRiskProfile: out must be set");
  }
  if (live_count_ == 0) {
    return FailedPreconditionError("StreamingRiskProfile: snapshot of an empty stream");
  }
  out->resize(sums_.size());
  if (synced_) {
    // Serve the batch profile's exact bits pinned by the last resync.
    std::memcpy(out->data(), resync_risks_.data(), resync_risks_.size() * sizeof(double));
    return Status::Ok();
  }
  const double n = static_cast<double>(live_count_);
  for (std::size_t i = 0; i < sums_.size(); ++i) {
    (*out)[i] = sums_[i].Value() / n;
  }
  return Status::Ok();
}

StatusOr<std::vector<double>> StreamingRiskProfile::Snapshot() const {
  std::vector<double> out;
  DPLEARN_RETURN_IF_ERROR(SnapshotInto(&out));
  return out;
}

Dataset StreamingRiskProfile::LiveDataset() const {
  std::vector<Example> live(examples_.begin(),
                            examples_.begin() + static_cast<std::ptrdiff_t>(live_count_));
  return Dataset(std::move(live));
}

Status StreamingRiskProfile::Resync() {
  mutations_since_resync_ = 0;
  if (live_count_ == 0) {
    // An empty stream has nothing to recompute; resetting the accumulators
    // is the exact (bitwise-trivial) resync.
    for (KahanSum& sum : sums_) sum.Reset();
    synced_ = false;
    return Status::Ok();
  }
  DPLEARN_ASSIGN_OR_RETURN(std::vector<double> full,
                           EmpiricalRiskProfile(*loss_, thetas_, LiveDataset()));
  const double n = static_cast<double>(live_count_);
  for (std::size_t i = 0; i < sums_.size(); ++i) {
    resync_risks_[i] = full[i];
    // Future deltas continue from the recomputed mean; the (mean·n) rounding
    // is one ulp of re-seeding error, covered by the drift contract.
    sums_[i].Reset(full[i] * n);
  }
  synced_ = true;
  ++resyncs_;
  return Status::Ok();
}

SlidingWindowProfile::SlidingWindowProfile(StreamingRiskProfile profile,
                                           std::size_t window)
    : profile_(std::move(profile)), window_(window) {
  ring_.resize(window_);
}

StatusOr<SlidingWindowProfile> SlidingWindowProfile::Create(
    const LossFunction* loss, std::vector<Vector> thetas, std::size_t window,
    StreamingRiskProfile::Options options) {
  if (window == 0) {
    return InvalidArgumentError("SlidingWindowProfile: window must be positive");
  }
  // Push admits before retiring, so occupancy transiently reaches window+1.
  if (options.reserve_examples < window + 1) options.reserve_examples = window + 1;
  DPLEARN_ASSIGN_OR_RETURN(StreamingRiskProfile profile,
                           StreamingRiskProfile::Create(loss, std::move(thetas), options));
  return SlidingWindowProfile(std::move(profile), window);
}

Status SlidingWindowProfile::Push(const Example& z) {
  const bool full = profile_.size() == window_;
  // Admit first: AddExample validates, so a rejected push leaves the window
  // untouched; once it succeeds, retiring the matching oldest cannot fail.
  DPLEARN_RETURN_IF_ERROR(profile_.AddExample(z));
  if (full) {
    DPLEARN_RETURN_IF_ERROR(profile_.RemoveExample(ring_[head_]));
    ring_[head_] = z;  // copy-assign recycles the slot's feature capacity
    head_ = (head_ + 1) % window_;
  } else {
    // Still filling: the (size-1)-th pushed example lands at slot size-1 and
    // head_ stays at the oldest (slot 0).
    ring_[profile_.size() - 1] = z;
  }
  return Status::Ok();
}

std::vector<Example> SlidingWindowProfile::WindowOldestFirst() const {
  std::vector<Example> out;
  const std::size_t n = profile_.size();
  out.reserve(n);
  const bool full = n == window_;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(full ? ring_[(head_ + i) % window_] : ring_[i]);
  }
  return out;
}

}  // namespace dplearn
