#ifndef DPLEARN_LEARNING_CSV_IO_H_
#define DPLEARN_LEARNING_CSV_IO_H_

#include <string>

#include "learning/dataset.h"
#include "util/status.h"

namespace dplearn {

/// CSV import/export for datasets. Format: one example per line, features
/// first and the label in the LAST column; '#'-prefixed lines and blank
/// lines are skipped; no quoting (numeric data only). This is the adoption
/// surface for users bringing their own data — everything else in the
/// library consumes the Dataset it produces.

/// Parses CSV text (not a file path) into a Dataset. Every row must have
/// the same column count (>= 2: at least one feature + label). Errors on
/// malformed numbers, ragged rows, or no data rows.
StatusOr<Dataset> ParseCsv(const std::string& csv_text);

/// Renders a dataset as CSV text (features..., label), 17 significant
/// digits (round-trip exact). Error if the dataset is empty or ragged.
StatusOr<std::string> ToCsv(const Dataset& data);

/// Reads a CSV file from disk. Errors on I/O failure or parse failure.
StatusOr<Dataset> LoadCsvFile(const std::string& path);

/// Writes a dataset to a CSV file. Errors on I/O failure.
Status SaveCsvFile(const Dataset& data, const std::string& path);

}  // namespace dplearn

#endif  // DPLEARN_LEARNING_CSV_IO_H_
