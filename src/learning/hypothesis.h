#ifndef DPLEARN_LEARNING_HYPOTHESIS_H_
#define DPLEARN_LEARNING_HYPOTHESIS_H_

#include <cstddef>
#include <vector>

#include "util/matrix.h"
#include "util/status.h"

namespace dplearn {

/// A finite predictor space Θ = {theta_1, ..., theta_m}. Finite Θ is the
/// setting where every object of the paper — Gibbs posterior, KL terms,
/// I(Ẑ;θ) — is *exactly* computable, making theorem checks sharp. Continuous
/// Θ is handled by gridding (this class, via ScalarGrid) or MCMC
/// (core/gibbs_estimator.h).
class FiniteHypothesisClass {
 public:
  /// Wraps an explicit list of parameter vectors. Error if empty or if the
  /// vectors do not all share one dimension.
  static StatusOr<FiniteHypothesisClass> Create(std::vector<Vector> thetas);

  /// A 1-D grid of `count` scalar hypotheses evenly spaced on [lo, hi];
  /// each hypothesis is the 1-vector {theta}. Error via Linspace on bad
  /// arguments.
  static StatusOr<FiniteHypothesisClass> ScalarGrid(double lo, double hi, std::size_t count);

  std::size_t size() const { return thetas_.size(); }
  const Vector& at(std::size_t i) const { return thetas_[i]; }
  const std::vector<Vector>& thetas() const { return thetas_; }

  /// The uniform prior over this class — the default base measure π of the
  /// exponential mechanism when no domain knowledge is supplied.
  std::vector<double> UniformPrior() const;

  /// Index of the hypothesis minimizing `scores` (ties -> lowest index).
  /// Error if scores.size() != size().
  StatusOr<std::size_t> ArgMin(const std::vector<double>& scores) const;

 private:
  explicit FiniteHypothesisClass(std::vector<Vector> thetas) : thetas_(std::move(thetas)) {}

  std::vector<Vector> thetas_;
};

}  // namespace dplearn

#endif  // DPLEARN_LEARNING_HYPOTHESIS_H_
