#include "learning/dataset.h"

#include <algorithm>
#include <utility>

namespace dplearn {

StatusOr<Dataset> Dataset::ReplaceExample(std::size_t index, Example replacement) const {
  if (index >= examples_.size()) {
    return OutOfRangeError("Dataset::ReplaceExample: index out of range");
  }
  std::vector<Example> copy = examples_;
  copy[index] = std::move(replacement);
  return Dataset(std::move(copy));
}

bool Dataset::IsNeighborOf(const Dataset& other) const {
  if (size() != other.size()) return false;
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < size(); ++i) {
    if (!(examples_[i] == other.examples_[i])) {
      if (++diffs > 1) return false;
    }
  }
  return diffs == 1;
}

StatusOr<std::pair<Dataset, Dataset>> Dataset::Split(double train_fraction, Rng* rng) const {
  if (empty()) return FailedPreconditionError("Dataset::Split: dataset is empty");
  if (train_fraction <= 0.0 || train_fraction >= 1.0) {
    return InvalidArgumentError("Dataset::Split: train_fraction must be in (0,1)");
  }
  std::vector<Example> shuffled = examples_;
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng->NextBounded(i));
    std::swap(shuffled[i - 1], shuffled[j]);
  }
  const std::size_t train_count =
      static_cast<std::size_t>(train_fraction * static_cast<double>(shuffled.size()));
  std::vector<Example> train(shuffled.begin(),
                             shuffled.begin() + static_cast<std::ptrdiff_t>(train_count));
  std::vector<Example> test(shuffled.begin() + static_cast<std::ptrdiff_t>(train_count),
                            shuffled.end());
  return std::make_pair(Dataset(std::move(train)), Dataset(std::move(test)));
}

std::vector<Dataset> EnumerateNeighbors(const Dataset& dataset,
                                        const std::vector<Example>& replacement_pool) {
  std::vector<Dataset> neighbors;
  neighbors.reserve(dataset.size() * replacement_pool.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    for (const Example& replacement : replacement_pool) {
      if (replacement == dataset.at(i)) continue;
      neighbors.push_back(dataset.ReplaceExample(i, replacement).value());
    }
  }
  return neighbors;
}

}  // namespace dplearn
