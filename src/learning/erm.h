#ifndef DPLEARN_LEARNING_ERM_H_
#define DPLEARN_LEARNING_ERM_H_

#include <cstddef>

#include "learning/dataset.h"
#include "learning/hypothesis.h"
#include "learning/loss.h"
#include "util/matrix.h"
#include "util/status.h"

namespace dplearn {

/// Non-private empirical risk minimization. These are (a) the baselines
/// the private learners are measured against and (b) the inner solver that
/// objective perturbation wraps.

/// ERM over a finite hypothesis class: returns the index of the hypothesis
/// with the smallest empirical risk (ties -> lowest index). Error if the
/// class or the dataset is empty.
StatusOr<std::size_t> GridErm(const LossFunction& loss, const FiniteHypothesisClass& hclass,
                              const Dataset& data);

/// Configuration for gradient-descent ERM.
struct GradientErmOptions {
  /// L2 regularization strength lambda in R̂(theta) + (lambda/2)||theta||^2.
  double l2_lambda = 0.0;
  /// Fixed step size.
  double learning_rate = 0.1;
  /// Maximum full-gradient iterations.
  std::size_t max_iters = 2000;
  /// Stop when the gradient infinity-norm falls below this.
  double gradient_tolerance = 1e-8;
  /// Optional extra linear term b . theta / n added to the objective —
  /// this is the hook objective perturbation uses to inject its noise
  /// vector. Empty means no extra term.
  Vector linear_perturbation;
};

/// Result of a gradient-descent ERM run.
struct GradientErmResult {
  Vector theta;
  double objective = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
};

/// Full-batch gradient descent on
///   J(theta) = R̂_Ẑ(theta) + (lambda/2)||theta||^2 + (b . theta)/n.
/// Requires loss.HasGradient(). Error on empty data, dimension mismatch, or
/// invalid options. Convex for the logistic/Huber losses with lambda > 0,
/// where this converges to the unique minimizer.
StatusOr<GradientErmResult> GradientDescentErm(const LossFunction& loss, const Dataset& data,
                                               const GradientErmOptions& options,
                                               const Vector& initial_theta);

/// Exact ridge regression: solves (X^T X + n*lambda I) w = X^T y.
/// Error on empty data or non-PD system (lambda == 0 with rank-deficient X).
StatusOr<Vector> RidgeRegression(const Dataset& data, double l2_lambda);

}  // namespace dplearn

#endif  // DPLEARN_LEARNING_ERM_H_
