#ifndef DPLEARN_LEARNING_PREPROCESS_H_
#define DPLEARN_LEARNING_PREPROCESS_H_

#include <cstddef>

#include "learning/dataset.h"
#include "util/matrix.h"
#include "util/status.h"

namespace dplearn {

/// Data preprocessing that privacy analyses assume but papers rarely
/// spell out. The Chaudhuri et al. sensitivity calculations require
/// ||x|| <= 1; clipped losses require labels in a known range. These
/// transforms make those preconditions true BY CONSTRUCTION (per-record,
/// data-independent parameters), so they compose with any DP mechanism
/// without spending budget.

/// Scales every feature vector with norm > max_norm down onto the sphere
/// of radius max_norm (per-record clipping: data-independent, free of
/// privacy cost). Error if max_norm <= 0.
StatusOr<Dataset> ClipFeatureNorm(const Dataset& data, double max_norm);

/// Clamps labels into [lo, hi] per record. Error if lo >= hi.
StatusOr<Dataset> ClipLabels(const Dataset& data, double lo, double hi);

/// Appends a constant-1 bias feature to every record (dimension grows by
/// one). Error if the dataset is ragged.
StatusOr<Dataset> AppendBiasFeature(const Dataset& data);

/// Summary of feature geometry, for choosing clip thresholds.
struct FeatureStats {
  std::size_t dimension = 0;
  double max_norm = 0.0;
  double mean_norm = 0.0;
  double min_label = 0.0;
  double max_label = 0.0;
};

/// Computes the (NON-private — do not release) feature statistics.
/// Error if the dataset is empty or ragged.
StatusOr<FeatureStats> ComputeFeatureStats(const Dataset& data);

}  // namespace dplearn

#endif  // DPLEARN_LEARNING_PREPROCESS_H_
