#ifndef DPLEARN_LEARNING_LOSS_H_
#define DPLEARN_LEARNING_LOSS_H_

#include <memory>
#include <string>

#include "learning/dataset.h"
#include "util/matrix.h"

namespace dplearn {

/// The closed set of built-in loss formulas. The simd kernels (src/simd)
/// devirtualize the risk loop over this set; kCustom means "no known
/// formula" and keeps callers on the virtual-dispatch path.
enum class LossKind {
  kZeroOne,
  kClippedSquared,
  kClippedAbsolute,
  kLogistic,
  kHinge,
  kHuber,
  kCustom,
};

/// A loss l_theta(Z) of the statistical-prediction framework (Section 2.2).
///
/// Every loss declares an upper bound B such that l lies in [0, B] for all
/// (theta, Z) the caller will supply; this bound drives two quantities at
/// the heart of the paper:
///   * the global sensitivity of the empirical risk, Δ(R̂) <= B/n, which
///     calibrates the Gibbs estimator's privacy level (Theorem 4.1), and
///   * the [0,1]-scaling required by Catoni's PAC-Bayes bound (Theorem 3.1).
/// Losses that are naturally unbounded (squared, absolute) are provided in
/// clipped form.
class LossFunction {
 public:
  virtual ~LossFunction() = default;

  /// Which built-in formula Loss() computes, or kCustom for user-defined
  /// subclasses. An override promises that Loss() is EXACTLY the formula
  /// documented for that kind (same operations, same clamp order) — the
  /// devirtualized kernels reproduce it element-wise from (theta·x, label,
  /// UpperBound, ParameterFingerprint) alone.
  virtual LossKind Kind() const { return LossKind::kCustom; }

  /// The loss of predictor `theta` on example `z`. Implementations must be
  /// deterministic and must honor the declared bound for valid inputs.
  virtual double Loss(const Vector& theta, const Example& z) const = 0;

  /// B with l in [0, B].
  virtual double UpperBound() const = 0;

  /// Human-readable name for reports.
  virtual std::string Name() const = 0;

  /// True if Gradient() is implemented (needed by gradient-descent ERM and
  /// objective perturbation).
  virtual bool HasGradient() const { return false; }

  /// Distinguishes losses whose Loss() depends on parameters beyond Name()
  /// and UpperBound() — the risk-profile cache (src/perf) keys entries on
  /// (Name, UpperBound, ParameterFingerprint, Θ, Ẑ), so a loss with hidden
  /// parameters that does not override this would alias a differently
  /// parameterized instance of the same class. Losses fully identified by
  /// name + bound keep the default.
  virtual double ParameterFingerprint() const { return 0.0; }

  /// d/d(theta) of the loss; only valid when HasGradient(). Default aborts.
  virtual Vector Gradient(const Vector& theta, const Example& z) const;
};

/// 0-1 classification loss: 1 if sign(theta . x) != label, else 0.
/// Labels must be in {-1, +1}; a zero margin counts as an error.
class ZeroOneLoss final : public LossFunction {
 public:
  double Loss(const Vector& theta, const Example& z) const override;
  double UpperBound() const override { return 1.0; }
  std::string Name() const override { return "zero_one"; }
  LossKind Kind() const override { return LossKind::kZeroOne; }
};

/// Squared loss (theta . x - label)^2 clipped to [0, clip]. The clip keeps
/// the loss bounded as Catoni's bound and risk sensitivity require.
class ClippedSquaredLoss final : public LossFunction {
 public:
  /// `clip` must be positive (checked at construction; aborts otherwise).
  explicit ClippedSquaredLoss(double clip);
  double Loss(const Vector& theta, const Example& z) const override;
  double UpperBound() const override { return clip_; }
  std::string Name() const override { return "clipped_squared"; }
  LossKind Kind() const override { return LossKind::kClippedSquared; }

 private:
  double clip_;
};

/// Absolute loss |theta . x - label| clipped to [0, clip].
class ClippedAbsoluteLoss final : public LossFunction {
 public:
  explicit ClippedAbsoluteLoss(double clip);
  double Loss(const Vector& theta, const Example& z) const override;
  double UpperBound() const override { return clip_; }
  std::string Name() const override { return "clipped_absolute"; }
  LossKind Kind() const override { return LossKind::kClippedAbsolute; }

 private:
  double clip_;
};

/// Logistic loss log(1 + exp(-label * theta . x)) clipped to [0, clip];
/// labels in {-1, +1}. Differentiable: the loss used by the private
/// logistic-regression baselines (Chaudhuri–Monteleoni). The gradient is of
/// the *unclipped* loss; callers keep theta in a region where the clip is
/// inactive (|theta.x| bounded), as the baselines do via L2 regularization.
class LogisticLoss final : public LossFunction {
 public:
  explicit LogisticLoss(double clip);
  double Loss(const Vector& theta, const Example& z) const override;
  double UpperBound() const override { return clip_; }
  std::string Name() const override { return "logistic"; }
  LossKind Kind() const override { return LossKind::kLogistic; }
  bool HasGradient() const override { return true; }
  Vector Gradient(const Vector& theta, const Example& z) const override;

 private:
  double clip_;
};

/// Hinge loss max(0, 1 - label * theta . x) clipped to [0, clip]; labels in
/// {-1, +1} (the SVM loss of the Chaudhuri et al. setting).
class HingeLoss final : public LossFunction {
 public:
  explicit HingeLoss(double clip);
  double Loss(const Vector& theta, const Example& z) const override;
  double UpperBound() const override { return clip_; }
  std::string Name() const override { return "hinge"; }
  LossKind Kind() const override { return LossKind::kHinge; }

 private:
  double clip_;
};

/// Huber loss: quadratic within `delta` of the residual, linear beyond,
/// clipped to [0, clip]. Differentiable everywhere.
class HuberLoss final : public LossFunction {
 public:
  HuberLoss(double delta, double clip);
  double Loss(const Vector& theta, const Example& z) const override;
  double UpperBound() const override { return clip_; }
  std::string Name() const override { return "huber"; }
  LossKind Kind() const override { return LossKind::kHuber; }
  /// `delta` shapes the loss but is invisible in Name()/UpperBound().
  double ParameterFingerprint() const override { return delta_; }
  bool HasGradient() const override { return true; }
  Vector Gradient(const Vector& theta, const Example& z) const override;

 private:
  double delta_;
  double clip_;
};

}  // namespace dplearn

#endif  // DPLEARN_LEARNING_LOSS_H_
