#ifndef DPLEARN_LEARNING_GENERATORS_H_
#define DPLEARN_LEARNING_GENERATORS_H_

#include <cstddef>
#include <vector>

#include "learning/dataset.h"
#include "sampling/rng.h"
#include "util/matrix.h"
#include "util/status.h"

namespace dplearn {

/// Synthetic tasks with a *known* data distribution Q.
///
/// The paper's quantities — true risk R(theta) = E_Z[l_theta(Z)], the
/// expectation over Ẑ ~ Q^n in Theorem 3.1, the mutual information I(Ẑ;θ)
/// of Section 4 — are all defined against Q, which is unknowable for real
/// data. Seeded synthetic generators are the substitution that makes every
/// theorem empirically checkable: Q is known, so true risk and exact
/// channel distributions are available (see DESIGN.md §3).

/// Bernoulli mean estimation: Z ~ Bernoulli(p), encoded as an example with
/// features {1} and label in {0,1}. With ClippedSquaredLoss(1) and
/// theta in [0,1], the loss (theta - z)^2 lies in [0,1] and the true risk
/// has the closed form (theta - p)^2 + p(1-p). The smallest task on which
/// every theorem of the paper can be verified *exactly*: the sample space
/// is {0,1}, so channels over all datasets of size n are enumerable.
class BernoulliMeanTask {
 public:
  /// Error if p outside [0,1].
  static StatusOr<BernoulliMeanTask> Create(double p);

  double p() const { return p_; }

  /// Draws n i.i.d. examples.
  StatusOr<Dataset> Sample(std::size_t n, Rng* rng) const;

  /// Closed-form true risk of scalar predictor theta under squared loss.
  double TrueRisk(double theta) const { return (theta - p_) * (theta - p_) + p_ * (1.0 - p_); }

  /// The Bayes-optimal predictor (theta = p) and its risk p(1-p).
  double BayesRisk() const { return p_ * (1.0 - p_); }

  /// The full example domain {z=0, z=1} — input to exhaustive neighbor
  /// enumeration and to exact channel construction.
  static std::vector<Example> Domain();

  /// Probability of observing a dataset with `num_ones` ones among n draws,
  /// i.e. C(n,k) p^k (1-p)^(n-k). Error if num_ones > n.
  StatusOr<double> DatasetProbability(std::size_t n, std::size_t num_ones) const;

 private:
  explicit BernoulliMeanTask(double p) : p_(p) {}
  double p_;
};

/// Linear regression: X uniform on [-x_radius, x_radius]^d,
/// Y = w . X + Normal(0, noise_stddev). True (unclipped) squared risk of
/// predictor theta: sum_j (theta_j - w_j)^2 * x_radius^2/3 + noise_stddev^2.
class LinearRegressionTask {
 public:
  /// Error if w empty, x_radius <= 0, or noise_stddev < 0.
  static StatusOr<LinearRegressionTask> Create(Vector w, double x_radius,
                                               double noise_stddev);

  const Vector& w() const { return w_; }
  double x_radius() const { return x_radius_; }
  double noise_stddev() const { return noise_stddev_; }

  StatusOr<Dataset> Sample(std::size_t n, Rng* rng) const;

  /// Closed-form true risk under *unclipped* squared loss. Callers using
  /// ClippedSquaredLoss should choose the clip large enough that clipping
  /// is rare; then this is a tight upper approximation.
  double TrueSquaredRisk(const Vector& theta) const;

 private:
  LinearRegressionTask(Vector w, double x_radius, double noise_stddev)
      : w_(std::move(w)), x_radius_(x_radius), noise_stddev_(noise_stddev) {}

  Vector w_;
  double x_radius_;
  double noise_stddev_;
};

/// Logistic classification: X uniform on [-x_radius, x_radius]^d,
/// P(Y=+1 | X) = sigmoid(w . X), labels in {-1,+1}. No closed-form 0-1
/// risk; use risk.h's MonteCarloTrueRisk with a large fresh sample.
class LogisticClassificationTask {
 public:
  static StatusOr<LogisticClassificationTask> Create(Vector w, double x_radius);

  const Vector& w() const { return w_; }

  StatusOr<Dataset> Sample(std::size_t n, Rng* rng) const;

 private:
  LogisticClassificationTask(Vector w, double x_radius)
      : w_(std::move(w)), x_radius_(x_radius) {}

  Vector w_;
  double x_radius_;
};

/// Symmetric two-Gaussian classification: Y uniform on {-1,+1},
/// X ~ Normal(Y * mean, stddev^2 I). The 0-1 risk of a linear predictor
/// theta has the closed form Phi(-(theta . mean) / (stddev * ||theta||)).
class GaussianMixtureTask {
 public:
  /// Error if mean empty or zero, or stddev <= 0.
  static StatusOr<GaussianMixtureTask> Create(Vector mean, double stddev);

  const Vector& mean() const { return mean_; }
  double stddev() const { return stddev_; }

  StatusOr<Dataset> Sample(std::size_t n, Rng* rng) const;

  /// Exact 0-1 risk of linear predictor theta (zero theta -> risk 0.5).
  double TrueZeroOneRisk(const Vector& theta) const;

  /// The Bayes risk Phi(-||mean||/stddev), attained by theta = mean.
  double BayesRisk() const;

 private:
  GaussianMixtureTask(Vector mean, double stddev)
      : mean_(std::move(mean)), stddev_(stddev) {}

  Vector mean_;
  double stddev_;
};

}  // namespace dplearn

#endif  // DPLEARN_LEARNING_GENERATORS_H_
