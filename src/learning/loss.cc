#include "learning/loss.h"

#include <cmath>

#include "util/logging.h"
#include "util/math_util.h"

namespace dplearn {

Vector LossFunction::Gradient(const Vector& theta, const Example& z) const {
  (void)theta;
  (void)z;
  DPLEARN_CHECK(false) << "Gradient() called on loss '" << Name()
                       << "' which does not implement it";
  return {};
}

double ZeroOneLoss::Loss(const Vector& theta, const Example& z) const {
  const double margin = z.label * Dot(theta, z.features);
  return margin > 0.0 ? 0.0 : 1.0;
}

ClippedSquaredLoss::ClippedSquaredLoss(double clip) : clip_(clip) {
  DPLEARN_CHECK_GT(clip, 0.0);
}

double ClippedSquaredLoss::Loss(const Vector& theta, const Example& z) const {
  const double r = Dot(theta, z.features) - z.label;
  return Clamp(r * r, 0.0, clip_);
}

ClippedAbsoluteLoss::ClippedAbsoluteLoss(double clip) : clip_(clip) {
  DPLEARN_CHECK_GT(clip, 0.0);
}

double ClippedAbsoluteLoss::Loss(const Vector& theta, const Example& z) const {
  return Clamp(std::fabs(Dot(theta, z.features) - z.label), 0.0, clip_);
}

LogisticLoss::LogisticLoss(double clip) : clip_(clip) { DPLEARN_CHECK_GT(clip, 0.0); }

double LogisticLoss::Loss(const Vector& theta, const Example& z) const {
  const double margin = z.label * Dot(theta, z.features);
  // log(1+exp(-m)) computed stably for both signs of m.
  const double raw = margin > 0.0 ? std::log1p(std::exp(-margin))
                                  : -margin + std::log1p(std::exp(margin));
  return Clamp(raw, 0.0, clip_);
}

Vector LogisticLoss::Gradient(const Vector& theta, const Example& z) const {
  const double margin = z.label * Dot(theta, z.features);
  // d/dtheta log(1+exp(-y theta.x)) = -y x sigmoid(-m).
  const double sigmoid_neg = 1.0 / (1.0 + std::exp(margin));
  return Scale(z.features, -z.label * sigmoid_neg);
}

HingeLoss::HingeLoss(double clip) : clip_(clip) { DPLEARN_CHECK_GT(clip, 0.0); }

double HingeLoss::Loss(const Vector& theta, const Example& z) const {
  const double margin = z.label * Dot(theta, z.features);
  return Clamp(std::max(0.0, 1.0 - margin), 0.0, clip_);
}

HuberLoss::HuberLoss(double delta, double clip) : delta_(delta), clip_(clip) {
  DPLEARN_CHECK_GT(delta, 0.0);
  DPLEARN_CHECK_GT(clip, 0.0);
}

double HuberLoss::Loss(const Vector& theta, const Example& z) const {
  const double r = std::fabs(Dot(theta, z.features) - z.label);
  const double raw =
      r <= delta_ ? 0.5 * r * r : delta_ * (r - 0.5 * delta_);
  return Clamp(raw, 0.0, clip_);
}

Vector HuberLoss::Gradient(const Vector& theta, const Example& z) const {
  const double r = Dot(theta, z.features) - z.label;
  const double slope = Clamp(r, -delta_, delta_);
  return Scale(z.features, slope);
}

}  // namespace dplearn
