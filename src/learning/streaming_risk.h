#ifndef DPLEARN_LEARNING_STREAMING_RISK_H_
#define DPLEARN_LEARNING_STREAMING_RISK_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "learning/dataset.h"
#include "learning/loss.h"
#include "simd/dataset_soa.h"
#include "simd/kernels.h"
#include "util/math_util.h"
#include "util/status.h"

namespace dplearn {

/// Per-hypothesis loss row l_{θ_i}(z) into *out (resized to |Θ|) — the
/// O(|Θ|) delta a streaming update folds into its sums, routed through
/// simd::MeanLossKernel on a one-example SoA when the loss has a
/// devirtualized kernel (bitwise-equal to the scalar formula at n=1).
/// Shared with the risk-profile cache's revision path so both deltas sum
/// identical bits. OutOfRange on non-finite input or a custom loss emitting
/// a non-finite value; InvalidArgument on an empty hypothesis list.
Status LossRow(const LossFunction& loss, const std::vector<Vector>& thetas,
               const Example& z, std::vector<double>* out);

/// Incrementally maintained empirical-risk profile over a finite hypothesis
/// class — the streaming form of EmpiricalRiskProfile for data that arrives
/// and expires one example at a time.
///
/// The Gibbs estimator (Theorem 4.1) tilts a SUM of per-example losses, so
/// an arriving or departing example Z changes every R̂(θ_i) by the single
/// loss value l_{θ_i}(Z)/n: AddExample/RemoveExample cost O(|Θ|) loss
/// evaluations instead of the O(|Θ|·n) full recompute. Per hypothesis the
/// running loss sum is a Kahan–Babuška–Neumaier accumulator, so a long
/// add/remove stream accrues O(u) error per mutation instead of O(n·u).
/// The delta row is routed through simd::MeanLossKernel on a one-example
/// SoA when the loss has a devirtualized kernel (SimdLossSpec) and
/// simd::SimdEnabled(): a one-example kernel call is below
/// simd::kBlockedSumMinN, hence sequential and bitwise-equal to the scalar
/// loss formula — both paths feed identical per-example bits into the sums.
///
/// Numerical drift contract (DESIGN.md §15): the incremental snapshot and a
/// full EmpiricalRiskProfile recompute over the same live multiset sum the
/// SAME per-example loss values in different orders (and with different
/// compensation), so after m mutations each entry of SnapshotInto() is
/// within kStreamingUlpBound(n, m) ULPs of the batch profile — in practice
/// a handful of ULPs, because the compensated sum is usually CLOSER to the
/// exact value than the batch path's blocked sum. Drift is capped by
/// periodic resync: every `Options::resync_every` mutations (default from
/// DPLEARN_STREAM_RESYNC_EVERY, 0 = never) the profile recomputes itself
/// via EmpiricalRiskProfile, after which SnapshotInto() is BITWISE equal to
/// the batch profile over LiveDataset() until the next mutation.
///
/// Error taxonomy mirrors the batch path: non-finite features/labels are
/// rejected with OutOfRange (the NaN-poisoning policy of DESIGN.md §14 —
/// clipped losses silently launder NaN), ragged feature dimensions with
/// InvalidArgument, removal of a never-added example with NotFound, and
/// snapshots of an empty stream with FailedPrecondition.
///
/// Steady state is allocation-free at constant occupancy: the per-Θ sums,
/// the delta row and the one-example SoA are sized at construction, example
/// slots are recycled by copy-assignment (feature-vector capacity reused),
/// and removal swaps with the last live slot. Resync() is the amortized
/// slow path and may allocate. Not thread-safe; callers serialize (the
/// service holds its per-tenant mutex across stream mutations and draws).
class StreamingRiskProfile {
 public:
  struct Options {
    /// Full-recompute resync period in mutations; 0 disables auto-resync.
    /// Defaults to DPLEARN_STREAM_RESYNC_EVERY (else kDefaultResyncEvery).
    std::size_t resync_every = DefaultResyncEvery();
    /// Pre-reserves slot storage for this many live examples, so a stream
    /// that never exceeds it is allocation-free from the first Add.
    std::size_t reserve_examples = 0;
  };

  /// kDefaultResyncEvery unless DPLEARN_STREAM_RESYNC_EVERY overrides it
  /// (parsed once; non-numeric values fall back to the default).
  static std::size_t DefaultResyncEvery();
  static constexpr std::size_t kDefaultResyncEvery = 4096;

  /// `loss` must outlive the profile. Errors if loss is null or thetas is
  /// empty or contains a non-finite coordinate. (The overload exists because
  /// a `= Options{}` default argument may not use the nested class's default
  /// member initializers inside the enclosing class.)
  static StatusOr<StreamingRiskProfile> Create(const LossFunction* loss,
                                               std::vector<Vector> thetas,
                                               Options options);
  static StatusOr<StreamingRiskProfile> Create(const LossFunction* loss,
                                               std::vector<Vector> thetas);

  /// Folds one arriving example into every per-hypothesis sum: O(|Θ|).
  /// OutOfRange on non-finite input (or a custom loss emitting a non-finite
  /// value); InvalidArgument if the feature dimension disagrees with the
  /// examples already seen.
  Status AddExample(const Example& z);

  /// Folds one departing example out of every per-hypothesis sum: O(|Θ|)
  /// loss evaluations plus an O(n) bitwise-content lookup. The departing
  /// example is matched by BITWISE content (hash then memcmp — consistent
  /// with the risk-cache keying; ±0.0 are distinct). FailedPrecondition on
  /// an empty stream; NotFound if no live example matches bitwise.
  Status RemoveExample(const Example& z);

  /// Writes the live risk profile R̂(θ_i) into *out (resized to |Θ|; a
  /// pre-sized vector makes this allocation-free). FailedPrecondition on an
  /// empty stream. Immediately after a resync this is bitwise-equal to
  /// EmpiricalRiskProfile(loss, thetas, LiveDataset()); otherwise it is the
  /// compensated incremental mean, ULP-close per the drift contract above.
  Status SnapshotInto(std::vector<double>* out) const;

  /// Allocating convenience around SnapshotInto().
  StatusOr<std::vector<double>> Snapshot() const;

  /// Full recompute over the live multiset: recomputes every sum via
  /// EmpiricalRiskProfile (erasing accumulated drift) and pins the snapshot
  /// to the batch profile's exact bits until the next mutation. No-op reset
  /// on an empty stream. May allocate.
  Status Resync();

  /// The live examples in internal (swap-compacted) order — the dataset a
  /// resync recomputes against. Allocates; test/diagnostic convenience.
  Dataset LiveDataset() const;

  std::size_t size() const { return live_count_; }
  bool empty() const { return live_count_ == 0; }
  std::size_t num_hypotheses() const { return thetas_.size(); }
  const std::vector<Vector>& thetas() const { return thetas_; }
  const LossFunction& loss() const { return *loss_; }
  std::size_t resync_every() const { return resync_every_; }
  /// Mutations (adds + removes) since construction / since the last resync.
  std::uint64_t mutations() const { return mutations_; }
  std::uint64_t mutations_since_resync() const { return mutations_since_resync_; }
  std::uint64_t resyncs() const { return resyncs_; }

 private:
  StreamingRiskProfile(const LossFunction* loss, std::vector<Vector> thetas,
                       Options options);

  /// Per-hypothesis loss row l_{θ_i}(z) into delta_row_, kernel-routed when
  /// eligible; validates finiteness/dimension on the way.
  Status ComputeDeltaRow(const Example& z);
  /// Bumps the mutation counters and auto-resyncs at the configured period.
  Status AfterMutation();

  const LossFunction* loss_;  // not owned
  std::vector<Vector> thetas_;
  std::optional<simd::LossSpec> simd_spec_;
  /// True iff every theta shares one dimension — the kernel path needs
  /// theta.size() == feature dim, checked against each incoming example.
  std::size_t uniform_theta_dim_ = 0;
  bool thetas_uniform_ = false;

  std::vector<KahanSum> sums_;          // per-θ compensated loss sums
  std::vector<double> delta_row_;       // scratch: l_{θ_i}(z), pre-sized
  simd::DatasetSoA delta_soa_;          // scratch: the one-example SoA
  std::vector<Example> examples_;       // slots [0, live_count_) are live
  std::vector<std::uint64_t> hashes_;   // content hash per live slot
  std::size_t live_count_ = 0;
  std::size_t feature_dim_ = 0;         // fixed by the first Add
  bool feature_dim_known_ = false;

  std::size_t resync_every_ = 0;
  std::uint64_t mutations_ = 0;
  std::uint64_t mutations_since_resync_ = 0;
  std::uint64_t resyncs_ = 0;
  /// When true, resync_risks_ holds the batch profile's exact bits and
  /// serves snapshots; cleared by the first mutation after a resync.
  bool synced_ = false;
  std::vector<double> resync_risks_;
};

/// Fixed-width sliding window over a stream: Push() appends the newest
/// example and, once `window` examples are live, retires the oldest — the
/// profile always covers exactly the last min(pushed, window) examples.
/// The ring of example slots is sized at construction and recycled by
/// copy-assignment, so a warmed window pushes allocation-free. Same error
/// taxonomy and drift contract as StreamingRiskProfile (each Push is one or
/// two mutations of the inner profile).
class SlidingWindowProfile {
 public:
  /// Errors if window == 0 or StreamingRiskProfile::Create rejects the
  /// (loss, thetas) pair. `options.reserve_examples` is raised to window+1
  /// (Push admits the newcomer before retiring the oldest, so occupancy
  /// transiently reaches window+1).
  static StatusOr<SlidingWindowProfile> Create(
      const LossFunction* loss, std::vector<Vector> thetas, std::size_t window,
      StreamingRiskProfile::Options options = StreamingRiskProfile::Options{});

  /// Admits `z`; retires the oldest example when the window is full. On a
  /// validation error (non-finite, ragged) the window is unchanged.
  Status Push(const Example& z);

  Status SnapshotInto(std::vector<double>* out) const {
    return profile_.SnapshotInto(out);
  }
  StatusOr<std::vector<double>> Snapshot() const { return profile_.Snapshot(); }

  std::size_t size() const { return profile_.size(); }
  std::size_t window() const { return window_; }
  const StreamingRiskProfile& profile() const { return profile_; }
  StreamingRiskProfile& profile() { return profile_; }

  /// The current window contents, oldest first. Allocates; test/diagnostic
  /// convenience.
  std::vector<Example> WindowOldestFirst() const;

 private:
  SlidingWindowProfile(StreamingRiskProfile profile, std::size_t window);

  StreamingRiskProfile profile_;
  std::vector<Example> ring_;  // ring_[  (head_ + i) % window_ ] = i-th oldest
  std::size_t window_;
  std::size_t head_ = 0;  // index of the oldest live example once full
};

}  // namespace dplearn

#endif  // DPLEARN_LEARNING_STREAMING_RISK_H_
