#include "learning/csv_io.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace dplearn {
namespace {

/// Restricts cells to plain decimal notation: digits, sign, decimal point,
/// and decimal exponent. strtod alone also accepts "inf"/"nan" (non-finite
/// values that would flow silently into risk computations) and C99 hex
/// floats like "0x1p3" (almost certainly column corruption, not data); this
/// whitelist rejects all of those up front with the cell-naming error.
bool IsPlainDecimalCell(const std::string& cell) {
  for (const char c : cell) {
    const bool ok = (c >= '0' && c <= '9') || c == '+' || c == '-' || c == '.' ||
                    c == 'e' || c == 'E';
    if (!ok) return false;
  }
  return !cell.empty();
}

/// Parses one CSV line into doubles. Returns an error naming the bad cell.
StatusOr<std::vector<double>> ParseLine(const std::string& line, std::size_t line_number) {
  std::vector<double> values;
  std::size_t start = 0;
  while (start <= line.size()) {
    std::size_t end = line.find(',', start);
    if (end == std::string::npos) end = line.size();
    std::string cell = line.substr(start, end - start);
    // Trim spaces.
    const std::size_t first = cell.find_first_not_of(" \t\r");
    const std::size_t last = cell.find_last_not_of(" \t\r");
    if (first == std::string::npos) {
      return InvalidArgumentError("CSV line " + std::to_string(line_number) +
                                  ": empty cell");
    }
    cell = cell.substr(first, last - first + 1);
    errno = 0;
    char* parse_end = nullptr;
    const double value = std::strtod(cell.c_str(), &parse_end);
    // isfinite backstops the whitelist: a syntactically plain cell like
    // "1e999" still overflows to +inf (errno also fires, but not on every
    // libc for underflow-to-zero vs overflow cases — check the value too).
    if (errno != 0 || parse_end == cell.c_str() || *parse_end != '\0' ||
        !IsPlainDecimalCell(cell) || !std::isfinite(value)) {
      return InvalidArgumentError("CSV line " + std::to_string(line_number) +
                                  ": cannot parse '" + cell + "' as a number");
    }
    values.push_back(value);
    if (end == line.size()) break;
    start = end + 1;
  }
  return values;
}

}  // namespace

StatusOr<Dataset> ParseCsv(const std::string& csv_text) {
  Dataset data;
  std::istringstream stream(csv_text);
  std::string line;
  std::size_t line_number = 0;
  std::size_t expected_columns = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    // Skip blank lines and comments.
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    DPLEARN_ASSIGN_OR_RETURN(std::vector<double> values, ParseLine(line, line_number));
    if (values.size() < 2) {
      return InvalidArgumentError("CSV line " + std::to_string(line_number) +
                                  ": need at least one feature and a label");
    }
    if (expected_columns == 0) {
      expected_columns = values.size();
    } else if (values.size() != expected_columns) {
      return InvalidArgumentError("CSV line " + std::to_string(line_number) +
                                  ": ragged row (expected " +
                                  std::to_string(expected_columns) + " columns, got " +
                                  std::to_string(values.size()) + ")");
    }
    Example example;
    example.label = values.back();
    values.pop_back();
    example.features = std::move(values);
    data.Add(std::move(example));
  }
  if (data.empty()) return InvalidArgumentError("ParseCsv: no data rows");
  return data;
}

StatusOr<std::string> ToCsv(const Dataset& data) {
  if (data.empty()) return InvalidArgumentError("ToCsv: empty dataset");
  const std::size_t dim = data.FeatureDim();
  std::ostringstream out;
  out.precision(17);
  for (const Example& z : data.examples()) {
    if (z.features.size() != dim) {
      return InvalidArgumentError("ToCsv: ragged feature dimensions");
    }
    for (double x : z.features) out << x << ',';
    out << z.label << '\n';
  }
  return out.str();
}

StatusOr<Dataset> LoadCsvFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return NotFoundError("LoadCsvFile: cannot open '" + path + "'");
  std::ostringstream contents;
  contents << file.rdbuf();
  return ParseCsv(contents.str());
}

Status SaveCsvFile(const Dataset& data, const std::string& path) {
  DPLEARN_ASSIGN_OR_RETURN(std::string csv, ToCsv(data));
  std::ofstream file(path);
  if (!file) return InternalError("SaveCsvFile: cannot open '" + path + "' for writing");
  file << csv;
  if (!file) return InternalError("SaveCsvFile: write failed for '" + path + "'");
  return Status::Ok();
}

}  // namespace dplearn
