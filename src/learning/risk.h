#ifndef DPLEARN_LEARNING_RISK_H_
#define DPLEARN_LEARNING_RISK_H_

#include <optional>
#include <vector>

#include "learning/dataset.h"
#include "learning/loss.h"
#include "simd/dataset_soa.h"
#include "simd/kernels.h"
#include "util/status.h"

namespace dplearn {

/// Maps a built-in loss onto its devirtualized kernel spec; nullopt for
/// kCustom (callers keep the virtual-dispatch loop). The spec mirrors
/// exactly the parameters the kernel formulas read: clip = UpperBound(),
/// delta = Huber's knee (exposed as its ParameterFingerprint). Shared by
/// the batch risk path below and the streaming layer (streaming_risk.h),
/// which must agree bit-for-bit on the per-example loss values they sum.
std::optional<simd::LossSpec> SimdLossSpec(const LossFunction& loss);

/// Mirrors `data` into the structure-of-arrays layout the simd risk kernels
/// stream over, validating on the way: every example must have FeatureDim()
/// features (no ragged rows) and every feature and label must be finite.
/// Non-finite inputs return OutOfRangeError — the NaN-poisoning policy of
/// DESIGN.md §14 rejects bad INPUTS rather than scanning outputs, because
/// clipped losses silently launder NaN (Clamp(NaN, 0, B) == 0).
/// `out` is Reset() first; capacity is reused across calls.
Status BuildDatasetSoA(const Dataset& data, simd::DatasetSoA* out);

/// Empirical risk R̂_Ẑ(theta) = (1/n) sum_i l_theta(Z_i) (Section 2.2).
/// Error if the dataset is empty; OutOfRangeError if theta, a feature, or a
/// label is non-finite (and, for custom losses, if the summed risk is).
///
/// When the loss reports a built-in Kind() and simd::SimdEnabled(), the sum
/// runs through simd::MeanLossKernel — ULP-equivalent to the scalar loop
/// (bitwise below simd::kBlockedSumMinN examples) and bitwise-deterministic
/// within a build. EmpiricalRiskProfile routes through the same kernel, so
/// profile entries equal single-theta calls exactly in either mode.
StatusOr<double> EmpiricalRisk(const LossFunction& loss, const Vector& theta,
                               const Dataset& data);

/// Empirical risk of every hypothesis in `thetas` on `data` — the risk
/// vector that parameterizes a finite-Θ Gibbs posterior. Error if the
/// dataset or hypothesis list is empty.
StatusOr<std::vector<double>> EmpiricalRiskProfile(const LossFunction& loss,
                                                   const std::vector<Vector>& thetas,
                                                   const Dataset& data);

/// Monte-Carlo estimate of the true risk R(theta) = E_Z[l_theta(Z)] from a
/// large held-out sample drawn from Q. (Tasks in generators.h also expose
/// closed-form true risk where available.)
StatusOr<double> MonteCarloTrueRisk(const LossFunction& loss, const Vector& theta,
                                    const Dataset& fresh_sample);

/// The a-priori upper bound on the global sensitivity of empirical risk:
/// replacing one example moves R̂ by at most B/n for a loss in [0, B].
/// Error if n == 0.
StatusOr<double> EmpiricalRiskSensitivityBound(const LossFunction& loss, std::size_t n);

/// The *exact* sensitivity of the empirical-risk profile over a finite
/// hypothesis class and a finite example domain:
///   Δ = max_theta max_{z, z'} |l_theta(z) - l_theta(z')| / n.
/// Tighter than B/n whenever the loss does not span its full range on the
/// domain; used to sharpen the privacy accounting in the experiments.
/// Error if any list is empty or n == 0.
StatusOr<double> ExactRiskSensitivity(const LossFunction& loss,
                                      const std::vector<Vector>& thetas,
                                      const std::vector<Example>& domain, std::size_t n);

}  // namespace dplearn

#endif  // DPLEARN_LEARNING_RISK_H_
