#include "learning/kfold.h"

#include <algorithm>

#include "learning/risk.h"
#include "parallel/trial_runner.h"

namespace dplearn {

StatusOr<std::vector<Fold>> MakeFolds(const Dataset& data, std::size_t k, Rng* rng) {
  if (k < 2) return InvalidArgumentError("MakeFolds: k must be >= 2");
  if (data.size() < k) return InvalidArgumentError("MakeFolds: fewer examples than folds");

  std::vector<Example> shuffled = data.examples();
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng->NextBounded(i));
    std::swap(shuffled[i - 1], shuffled[j]);
  }

  // Block boundaries: fold i owns [i*n/k, (i+1)*n/k).
  const std::size_t n = shuffled.size();
  std::vector<Fold> folds;
  folds.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t begin = i * n / k;
    const std::size_t end = (i + 1) * n / k;
    Fold fold;
    for (std::size_t j = 0; j < n; ++j) {
      if (j >= begin && j < end) {
        fold.validation.Add(shuffled[j]);
      } else {
        fold.train.Add(shuffled[j]);
      }
    }
    folds.push_back(std::move(fold));
  }
  return folds;
}

StatusOr<std::vector<double>> CrossValidatedRisks(const LossFunction& loss,
                                                  const FiniteHypothesisClass& hclass,
                                                  const Dataset& data, std::size_t k,
                                                  Rng* rng) {
  DPLEARN_ASSIGN_OR_RETURN(std::vector<Fold> folds, MakeFolds(data, k, rng));
  // Folds are independent read-only evaluations — map them over the pool,
  // then average in fold order (ordered reduction keeps the floating-point
  // sum identical at every thread count; the fold layout itself is fixed by
  // the shuffle above, which consumed *rng on this thread).
  std::vector<std::vector<double>> fold_risks(folds.size());
  std::vector<Status> statuses(folds.size());
  parallel::ParallelTrialRunner runner;
  runner.ForIndex(folds.size(), [&](std::size_t f) {
    StatusOr<std::vector<double>> risks =
        EmpiricalRiskProfile(loss, hclass.thetas(), folds[f].validation);
    if (risks.ok()) {
      fold_risks[f] = std::move(risks).value();
    } else {
      statuses[f] = risks.status();
    }
  });
  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }
  std::vector<double> mean_risks(hclass.size(), 0.0);
  for (const std::vector<double>& risks : fold_risks) {
    for (std::size_t i = 0; i < risks.size(); ++i) {
      mean_risks[i] += risks[i] / static_cast<double>(folds.size());
    }
  }
  return mean_risks;
}

StatusOr<std::size_t> CrossValidatedSelection(const LossFunction& loss,
                                              const FiniteHypothesisClass& hclass,
                                              const Dataset& data, std::size_t k,
                                              Rng* rng) {
  DPLEARN_ASSIGN_OR_RETURN(std::vector<double> risks,
                           CrossValidatedRisks(loss, hclass, data, k, rng));
  return hclass.ArgMin(risks);
}

}  // namespace dplearn
