#include "learning/hypothesis.h"

#include <algorithm>

#include "util/math_util.h"

namespace dplearn {

StatusOr<FiniteHypothesisClass> FiniteHypothesisClass::Create(std::vector<Vector> thetas) {
  if (thetas.empty()) {
    return InvalidArgumentError("FiniteHypothesisClass: must contain at least one hypothesis");
  }
  const std::size_t dim = thetas[0].size();
  if (dim == 0) {
    return InvalidArgumentError("FiniteHypothesisClass: hypotheses must be non-empty vectors");
  }
  for (const Vector& t : thetas) {
    if (t.size() != dim) {
      return InvalidArgumentError("FiniteHypothesisClass: inconsistent dimensions");
    }
  }
  return FiniteHypothesisClass(std::move(thetas));
}

StatusOr<FiniteHypothesisClass> FiniteHypothesisClass::ScalarGrid(double lo, double hi,
                                                                  std::size_t count) {
  DPLEARN_ASSIGN_OR_RETURN(std::vector<double> grid, Linspace(lo, hi, count));
  std::vector<Vector> thetas;
  thetas.reserve(grid.size());
  for (double g : grid) thetas.push_back(Vector{g});
  return Create(std::move(thetas));
}

std::vector<double> FiniteHypothesisClass::UniformPrior() const {
  return std::vector<double>(size(), 1.0 / static_cast<double>(size()));
}

StatusOr<std::size_t> FiniteHypothesisClass::ArgMin(const std::vector<double>& scores) const {
  if (scores.size() != size()) {
    return InvalidArgumentError("FiniteHypothesisClass::ArgMin: score size mismatch");
  }
  return static_cast<std::size_t>(
      std::min_element(scores.begin(), scores.end()) - scores.begin());
}

}  // namespace dplearn
