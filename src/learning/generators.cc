#include "learning/generators.h"

#include <cmath>

#include "sampling/distributions.h"

namespace dplearn {

StatusOr<BernoulliMeanTask> BernoulliMeanTask::Create(double p) {
  if (p < 0.0 || p > 1.0) {
    return InvalidArgumentError("BernoulliMeanTask: p must be in [0,1]");
  }
  return BernoulliMeanTask(p);
}

StatusOr<Dataset> BernoulliMeanTask::Sample(std::size_t n, Rng* rng) const {
  Dataset data;
  for (std::size_t i = 0; i < n; ++i) {
    DPLEARN_ASSIGN_OR_RETURN(int bit, SampleBernoulli(rng, p_));
    data.Add(Example{Vector{1.0}, static_cast<double>(bit)});
  }
  return data;
}

std::vector<Example> BernoulliMeanTask::Domain() {
  return {Example{Vector{1.0}, 0.0}, Example{Vector{1.0}, 1.0}};
}

StatusOr<double> BernoulliMeanTask::DatasetProbability(std::size_t n,
                                                       std::size_t num_ones) const {
  if (num_ones > n) {
    return InvalidArgumentError("DatasetProbability: num_ones exceeds n");
  }
  // log C(n,k) + k log p + (n-k) log(1-p), exponentiated at the end.
  double log_prob = std::lgamma(static_cast<double>(n) + 1.0) -
                    std::lgamma(static_cast<double>(num_ones) + 1.0) -
                    std::lgamma(static_cast<double>(n - num_ones) + 1.0);
  if (num_ones > 0) {
    if (p_ == 0.0) return 0.0;
    log_prob += static_cast<double>(num_ones) * std::log(p_);
  }
  if (num_ones < n) {
    if (p_ == 1.0) return 0.0;
    log_prob += static_cast<double>(n - num_ones) * std::log(1.0 - p_);
  }
  return std::exp(log_prob);
}

StatusOr<LinearRegressionTask> LinearRegressionTask::Create(Vector w, double x_radius,
                                                            double noise_stddev) {
  if (w.empty()) return InvalidArgumentError("LinearRegressionTask: w must be non-empty");
  if (x_radius <= 0.0) {
    return InvalidArgumentError("LinearRegressionTask: x_radius must be positive");
  }
  if (noise_stddev < 0.0) {
    return InvalidArgumentError("LinearRegressionTask: noise_stddev must be non-negative");
  }
  return LinearRegressionTask(std::move(w), x_radius, noise_stddev);
}

StatusOr<Dataset> LinearRegressionTask::Sample(std::size_t n, Rng* rng) const {
  Dataset data;
  for (std::size_t i = 0; i < n; ++i) {
    Vector x(w_.size());
    for (double& xi : x) {
      DPLEARN_ASSIGN_OR_RETURN(xi, SampleUniform(rng, -x_radius_, x_radius_));
    }
    double y = Dot(w_, x);
    if (noise_stddev_ > 0.0) {
      DPLEARN_ASSIGN_OR_RETURN(double noise, SampleNormal(rng, 0.0, noise_stddev_));
      y += noise;
    }
    data.Add(Example{std::move(x), y});
  }
  return data;
}

double LinearRegressionTask::TrueSquaredRisk(const Vector& theta) const {
  // E[((theta-w).X - eta)^2] with X_j ~ U(-r,r) independent, eta ~ N(0,s^2):
  // sum_j (theta_j - w_j)^2 * r^2/3 + s^2.
  double risk = noise_stddev_ * noise_stddev_;
  const double second_moment = x_radius_ * x_radius_ / 3.0;
  for (std::size_t j = 0; j < w_.size(); ++j) {
    const double d = theta[j] - w_[j];
    risk += d * d * second_moment;
  }
  return risk;
}

StatusOr<LogisticClassificationTask> LogisticClassificationTask::Create(Vector w,
                                                                        double x_radius) {
  if (w.empty()) {
    return InvalidArgumentError("LogisticClassificationTask: w must be non-empty");
  }
  if (x_radius <= 0.0) {
    return InvalidArgumentError("LogisticClassificationTask: x_radius must be positive");
  }
  return LogisticClassificationTask(std::move(w), x_radius);
}

StatusOr<Dataset> LogisticClassificationTask::Sample(std::size_t n, Rng* rng) const {
  Dataset data;
  for (std::size_t i = 0; i < n; ++i) {
    Vector x(w_.size());
    for (double& xi : x) {
      DPLEARN_ASSIGN_OR_RETURN(xi, SampleUniform(rng, -x_radius_, x_radius_));
    }
    const double p_plus = 1.0 / (1.0 + std::exp(-Dot(w_, x)));
    DPLEARN_ASSIGN_OR_RETURN(int bit, SampleBernoulli(rng, p_plus));
    data.Add(Example{std::move(x), bit == 1 ? 1.0 : -1.0});
  }
  return data;
}

StatusOr<GaussianMixtureTask> GaussianMixtureTask::Create(Vector mean, double stddev) {
  if (mean.empty()) return InvalidArgumentError("GaussianMixtureTask: mean must be non-empty");
  if (Norm2(mean) == 0.0) {
    return InvalidArgumentError("GaussianMixtureTask: mean must be non-zero");
  }
  if (stddev <= 0.0) {
    return InvalidArgumentError("GaussianMixtureTask: stddev must be positive");
  }
  return GaussianMixtureTask(std::move(mean), stddev);
}

StatusOr<Dataset> GaussianMixtureTask::Sample(std::size_t n, Rng* rng) const {
  Dataset data;
  for (std::size_t i = 0; i < n; ++i) {
    DPLEARN_ASSIGN_OR_RETURN(int bit, SampleBernoulli(rng, 0.5));
    const double y = bit == 1 ? 1.0 : -1.0;
    Vector x(mean_.size());
    for (std::size_t j = 0; j < x.size(); ++j) {
      DPLEARN_ASSIGN_OR_RETURN(x[j], SampleNormal(rng, y * mean_[j], stddev_));
    }
    data.Add(Example{std::move(x), y});
  }
  return data;
}

double GaussianMixtureTask::TrueZeroOneRisk(const Vector& theta) const {
  const double norm = Norm2(theta);
  if (norm == 0.0) return 0.5;  // sign(0) is always wrong for one class
  // P(sign(theta.X) != Y) = P(N(theta.mean, stddev^2 ||theta||^2) <= 0)
  //                       = Phi(-(theta.mean)/(stddev ||theta||)).
  const double margin = Dot(theta, mean_) / (stddev_ * norm);
  return NormalCdf(-margin, 0.0, 1.0);
}

double GaussianMixtureTask::BayesRisk() const {
  return NormalCdf(-Norm2(mean_) / stddev_, 0.0, 1.0);
}

}  // namespace dplearn
