#include "learning/erm.h"

#include <algorithm>
#include <cmath>

#include "learning/risk.h"
#include "obs/config.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/trial_runner.h"

namespace dplearn {
namespace {

/// Gradient accumulation is chunked into FIXED-size blocks of examples and
/// the per-chunk partial sums are combined in chunk order. The chunk
/// geometry depends only on n, never on the thread count, so the (non-
/// associative) floating-point sum is bit-identical whether the chunks run
/// on the pool or inline — the determinism contract of src/parallel applied
/// to a reduction. Datasets with n <= kGradientChunk take the plain serial
/// path, which is the historical summation order.
constexpr std::size_t kGradientChunk = 1024;

void AccumulateGradient(const LossFunction& loss, const Dataset& data, const Vector& theta,
                        double inv_n, Vector* grad) {
  const std::size_t n = data.size();
  if (n <= kGradientChunk) {
    for (const Example& z : data.examples()) {
      AxpyInPlace(grad, inv_n, loss.Gradient(theta, z));
    }
    return;
  }
  const std::size_t num_chunks = (n + kGradientChunk - 1) / kGradientChunk;
  std::vector<Vector> partials(num_chunks);
  parallel::ParallelTrialRunner runner;
  runner.ForIndex(num_chunks, [&](std::size_t c) {
    const std::size_t begin = c * kGradientChunk;
    const std::size_t end = std::min(n, begin + kGradientChunk);
    Vector partial(theta.size(), 0.0);
    for (std::size_t i = begin; i < end; ++i) {
      AxpyInPlace(&partial, inv_n, loss.Gradient(theta, data.at(i)));
    }
    partials[c] = std::move(partial);
  });
  for (const Vector& partial : partials) AxpyInPlace(grad, 1.0, partial);
}

}  // namespace

StatusOr<std::size_t> GridErm(const LossFunction& loss, const FiniteHypothesisClass& hclass,
                              const Dataset& data) {
  obs::TraceSpan span("erm.grid");
  DPLEARN_ASSIGN_OR_RETURN(std::vector<double> risks,
                           EmpiricalRiskProfile(loss, hclass.thetas(), data));
  return hclass.ArgMin(risks);
}

StatusOr<GradientErmResult> GradientDescentErm(const LossFunction& loss, const Dataset& data,
                                               const GradientErmOptions& options,
                                               const Vector& initial_theta) {
  if (data.empty()) return InvalidArgumentError("GradientDescentErm: empty dataset");
  if (!loss.HasGradient()) {
    return InvalidArgumentError("GradientDescentErm: loss '" + loss.Name() +
                                "' has no gradient");
  }
  if (options.learning_rate <= 0.0) {
    return InvalidArgumentError("GradientDescentErm: learning_rate must be positive");
  }
  if (options.l2_lambda < 0.0) {
    return InvalidArgumentError("GradientDescentErm: l2_lambda must be non-negative");
  }
  if (initial_theta.size() != data.FeatureDim()) {
    return InvalidArgumentError("GradientDescentErm: initial theta dimension mismatch");
  }
  if (!options.linear_perturbation.empty() &&
      options.linear_perturbation.size() != initial_theta.size()) {
    return InvalidArgumentError("GradientDescentErm: perturbation dimension mismatch");
  }

  obs::TraceSpan span("erm.gradient_descent");

  const double n = static_cast<double>(data.size());
  Vector theta = initial_theta;
  GradientErmResult result;

  for (std::size_t iter = 0; iter < options.max_iters; ++iter) {
    // grad = (1/n) sum_i dl/dtheta + lambda*theta + b/n.
    Vector grad(theta.size(), 0.0);
    AccumulateGradient(loss, data, theta, 1.0 / n, &grad);
    AxpyInPlace(&grad, options.l2_lambda, theta);
    if (!options.linear_perturbation.empty()) {
      AxpyInPlace(&grad, 1.0 / n, options.linear_perturbation);
    }
    result.iterations = iter + 1;
    if (NormInf(grad) < options.gradient_tolerance) {
      result.converged = true;
      break;
    }
    AxpyInPlace(&theta, -options.learning_rate, grad);
  }

  if (obs::MetricsEnabled()) {
    static obs::Counter* const runs = obs::GlobalMetrics().GetCounter("erm.gd_runs");
    static obs::Counter* const iters = obs::GlobalMetrics().GetCounter("erm.gd_iterations");
    runs->Increment();
    iters->Increment(result.iterations);
  }
  result.theta = theta;
  DPLEARN_ASSIGN_OR_RETURN(double risk, EmpiricalRisk(loss, theta, data));
  result.objective = risk + 0.5 * options.l2_lambda * Dot(theta, theta);
  if (!options.linear_perturbation.empty()) {
    result.objective += Dot(options.linear_perturbation, theta) / n;
  }
  return result;
}

StatusOr<Vector> RidgeRegression(const Dataset& data, double l2_lambda) {
  if (data.empty()) return InvalidArgumentError("RidgeRegression: empty dataset");
  if (l2_lambda < 0.0) {
    return InvalidArgumentError("RidgeRegression: l2_lambda must be non-negative");
  }
  const std::size_t d = data.FeatureDim();
  const std::size_t n = data.size();
  Matrix x(n, d);
  Vector y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const Example& z = data.at(i);
    if (z.features.size() != d) {
      return InvalidArgumentError("RidgeRegression: inconsistent feature dimensions");
    }
    for (std::size_t j = 0; j < d; ++j) x.At(i, j) = z.features[j];
    y[i] = z.label;
  }
  Matrix gram = x.Gram();
  DPLEARN_RETURN_IF_ERROR(gram.AddDiagonal(l2_lambda * static_cast<double>(n)));
  DPLEARN_ASSIGN_OR_RETURN(Vector xty, x.TransposeMatVec(y));
  return gram.CholeskySolve(xty);
}

}  // namespace dplearn
