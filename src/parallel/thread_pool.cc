#include "parallel/thread_pool.h"

#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "obs/config.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "robustness/failpoint.h"

namespace dplearn {
namespace parallel {
namespace {

thread_local bool t_on_worker_thread = false;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  // Cross-thread trace propagation: capture the submitter's innermost open
  // span here and adopt it on the worker, so spans the task opens report
  // the submitting span as their parent (by process-unique id) instead of
  // silently becoming roots. Capture happens at submit time — the parent is
  // whatever was open when the work was scheduled, which is the causal link
  // a trace viewer should draw.
  if (obs::TracingEnabled()) {
    task = [context = obs::TraceContext::Capture(), inner = std::move(task)] {
      obs::ScopedTraceContext adopt(context);
      inner();
    };
  }
  // Chaos hook: `pool.task` makes the task throw on the worker before its
  // body runs; the exception is captured into the future like any task
  // failure, which is exactly the propagation path being exercised. The
  // fail point is evaluated at run time (not submit time) so cancellation
  // and ordering behave like a real mid-flight task failure.
  if (robustness::FailPointsEnabled()) {
    task = [inner = std::move(task)] {
      if (robustness::ShouldFail("pool.task")) {
        throw std::runtime_error("injected fault at 'pool.task'");
      }
      inner();
    };
  }
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(packaged));
  }
  if (obs::MetricsEnabled()) {
    static obs::Gauge* const depth = obs::GlobalMetrics().GetGauge("pool.queue_depth");
    depth->Add(1.0);
  }
  cv_.notify_one();
  return future;
}

std::size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

bool ThreadPool::OnWorkerThread() { return t_on_worker_thread; }

void ThreadPool::WorkerLoop() {
  t_on_worker_thread = true;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain the queue before stopping so every submitted future completes.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (obs::MetricsEnabled()) {
      static obs::Gauge* const depth = obs::GlobalMetrics().GetGauge("pool.queue_depth");
      static obs::Histogram* const task_us = obs::GlobalMetrics().GetHistogram(
          "pool.task.us", obs::DefaultLatencyBucketsUs());
      depth->Add(-1.0);
      const auto start = std::chrono::steady_clock::now();
      task();  // packaged_task captures exceptions into the future
      task_us->Observe(
          std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - start)
              .count());
    } else {
      task();
    }
  }
}

std::size_t DefaultThreadCount() {
  static const std::size_t count = [] {
    const char* env = std::getenv("DPLEARN_THREADS");
    if (env != nullptr && *env != '\0') {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed >= 1) return static_cast<std::size_t>(parsed);
      return static_cast<std::size_t>(1);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<std::size_t>(hw == 0 ? 1 : hw);
  }();
  return count;
}

ThreadPool* GlobalThreadPool() {
  // Leaked intentionally: worker threads must outlive every static consumer,
  // and joining at an unspecified point during static destruction is worse
  // than letting the OS reclaim them.
  static ThreadPool* const pool =
      DefaultThreadCount() > 1 ? new ThreadPool(DefaultThreadCount()) : nullptr;
  return pool;
}

}  // namespace parallel
}  // namespace dplearn
