#ifndef DPLEARN_PARALLEL_THREAD_POOL_H_
#define DPLEARN_PARALLEL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace dplearn {
namespace parallel {

/// A fixed-size FIFO thread pool — deliberately work-stealing-free so task
/// dispatch order is easy to reason about. Tasks are submitted as
/// std::function<void()>; Submit returns a future that becomes ready when
/// the task finishes and rethrows any exception the task threw (exception
/// propagation via std::packaged_task).
///
/// The pool never executes a task on the submitting thread; determinism in
/// this library never comes from scheduling (which is nondeterministic by
/// nature) but from how work is *assigned* — see trial_runner.h for the
/// contract that makes results independent of thread count.
///
/// Instrumentation (when obs metrics are enabled):
///   pool.queue_depth  gauge      tasks submitted but not yet started
///   pool.task.us      histogram  per-task execution wall time
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(std::size_t num_threads);
  /// Waits for queued tasks to drain, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`; the returned future rethrows the task's exception (if
  /// any) from get(). Submitting after destruction has begun is a
  /// programming error (the destructor is only entered once every user of
  /// the pool is done with it).
  std::future<void> Submit(std::function<void()> task);

  std::size_t num_threads() const { return threads_.size(); }

  /// Tasks submitted but not yet picked up by a worker. Approximate under
  /// concurrent submission; exact when quiescent.
  std::size_t QueueDepth() const;

  /// True when called from inside one of this process's pool worker threads
  /// (any pool). Used to run nested parallel regions inline instead of
  /// deadlocking the pool by blocking a worker on tasks no free worker can
  /// run.
  static bool OnWorkerThread();

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

/// Number of worker threads the process-wide pool uses: DPLEARN_THREADS if
/// set (clamped to >= 1), otherwise std::thread::hardware_concurrency().
std::size_t DefaultThreadCount();

/// The process-wide pool shared by library hot paths and the experiment
/// harness, constructed on first use with DefaultThreadCount() workers.
/// Returns nullptr when DefaultThreadCount() == 1 — callers fall back to
/// inline execution, so DPLEARN_THREADS=1 runs with no threads at all.
ThreadPool* GlobalThreadPool();

}  // namespace parallel
}  // namespace dplearn

#endif  // DPLEARN_PARALLEL_THREAD_POOL_H_
