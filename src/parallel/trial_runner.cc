#include "parallel/trial_runner.h"

#include <algorithm>
#include <exception>
#include <future>

#include "obs/trace.h"

namespace dplearn {
namespace parallel {

void ParallelTrialRunner::ForIndex(std::size_t n,
                                   const std::function<void(std::size_t)>& fn) const {
  if (n == 0) return;
  // Inline when there is no pool, nothing to fan out, or we are already on
  // a pool worker (a blocked worker waiting on tasks only other workers can
  // run is a deadlock with one thread and a throughput bug with many).
  if (pool_ == nullptr || pool_->num_threads() <= 1 || n == 1 ||
      ThreadPool::OnWorkerThread()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  obs::TraceSpan span("pool.batch");
  // Contiguous chunks, several per worker so stragglers even out. Chunk
  // geometry affects only scheduling, never results: every index writes its
  // own slot and reductions happen on the caller's side in index order.
  const std::size_t chunks = std::min(n, pool_->num_threads() * 4);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunk_size;
    const std::size_t end = std::min(n, begin + chunk_size);
    if (begin >= end) break;
    futures.push_back(pool_->Submit([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  // Wait for everything before rethrowing: no detached trial may outlive
  // this call. Chunks are waited in submission (= index) order, so the
  // surfaced exception is from the lowest-indexed failing chunk.
  std::exception_ptr first_error;
  for (std::future<void>& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (first_error == nullptr) first_error = std::current_exception();
    }
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

}  // namespace parallel
}  // namespace dplearn
