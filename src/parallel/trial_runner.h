#ifndef DPLEARN_PARALLEL_TRIAL_RUNNER_H_
#define DPLEARN_PARALLEL_TRIAL_RUNNER_H_

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "parallel/thread_pool.h"
#include "sampling/rng.h"

namespace dplearn {
namespace parallel {

/// Maps N Monte-Carlo trials over a ThreadPool with a determinism contract:
/// results are bit-identical regardless of thread count (including the
/// no-pool inline path).
///
/// The contract has two halves, and both matter:
///
///  1. Stream assignment. Trial t always consumes the t-th Split() of the
///     caller's base Rng. The runner performs all N splits up front, on the
///     calling thread, in trial order — so which random stream a trial sees
///     depends only on the base seed and its trial index, never on which
///     worker runs it or when.
///
///  2. Ordered reduction. Results land in a slot per trial index and any
///     reduction folds them in trial order (MapReduceTrials), never in
///     completion order. Floating-point addition is not associative;
///     completion-order reduction would make results depend on scheduling.
///
/// Exception propagation: if trial bodies throw, one of the thrown
/// exceptions (the earliest in index order among the chunks that failed) is
/// rethrown on the calling thread, and only after every in-flight trial has
/// finished — no detached work remains.
///
/// Nested use is safe: a runner invoked from inside a pool worker executes
/// inline (same results, by the contract above) instead of blocking a
/// worker on tasks that may never be scheduled.
class ParallelTrialRunner {
 public:
  /// Uses the process-wide pool (inline execution when that is null,
  /// i.e. DPLEARN_THREADS=1).
  ParallelTrialRunner() : pool_(GlobalThreadPool()) {}
  /// Uses `pool`; pass nullptr to force inline execution.
  explicit ParallelTrialRunner(ThreadPool* pool) : pool_(pool) {}

  /// Worker count this runner will fan out over (1 = inline).
  std::size_t num_threads() const {
    return pool_ == nullptr ? 1 : pool_->num_threads();
  }

  /// Runs fn(i) for every i in [0, n), each exactly once, possibly
  /// concurrently. fn must touch only per-index state. Exceptions are
  /// propagated per the class contract.
  void ForIndex(std::size_t n, const std::function<void(std::size_t)>& fn) const;

  /// Deterministic parallel map over pure (non-random) work items; out[i] =
  /// body(i). T must be default-constructible.
  template <typename T, typename Body>
  std::vector<T> Map(std::size_t n, Body&& body) const {
    std::vector<T> out(n);
    ForIndex(n, [&out, &body](std::size_t i) { out[i] = body(i); });
    return out;
  }

  /// Deterministic parallel map over randomized trials; out[t] =
  /// body(t, rng_t) where rng_t is the t-th Split() of *base_rng. The base
  /// generator is advanced exactly N splits, as if the trials had run
  /// serially.
  template <typename T, typename Body>
  std::vector<T> MapTrials(std::size_t num_trials, Rng* base_rng, Body&& body) const {
    std::vector<Rng> rngs = SplitPerTrial(num_trials, base_rng);
    std::vector<T> out(num_trials);
    ForIndex(num_trials, [&out, &rngs, &body](std::size_t t) { out[t] = body(t, rngs[t]); });
    return out;
  }

  /// MapTrials followed by a fold in trial order: acc = reduce(acc, out[0]),
  /// then out[1], ... Returns the final accumulator.
  template <typename T, typename Acc, typename Body, typename Reduce>
  Acc MapReduceTrials(std::size_t num_trials, Rng* base_rng, Body&& body, Acc acc,
                      Reduce&& reduce) const {
    std::vector<T> out = MapTrials<T>(num_trials, base_rng, std::forward<Body>(body));
    for (T& value : out) acc = reduce(std::move(acc), std::move(value));
    return acc;
  }

  /// The stream-assignment half of the contract, reusable on its own: the
  /// N per-trial generators, split in trial order on the calling thread.
  static std::vector<Rng> SplitPerTrial(std::size_t num_trials, Rng* base_rng) {
    std::vector<Rng> rngs;
    rngs.reserve(num_trials);
    for (std::size_t t = 0; t < num_trials; ++t) rngs.push_back(base_rng->Split());
    return rngs;
  }

 private:
  ThreadPool* pool_;
};

}  // namespace parallel
}  // namespace dplearn

#endif  // DPLEARN_PARALLEL_TRIAL_RUNNER_H_
