#include "obs/hdr_histogram.h"

#include <cmath>
#include <limits>

namespace dplearn {
namespace obs {
namespace {

/// CAS-min/max for atomic<double> without fetch_min support; relaxed is
/// enough — the extrema are telemetry, not synchronization.
void AtomicMinDouble(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value < current &&
         !target->compare_exchange_weak(current, value, std::memory_order_relaxed,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value > current &&
         !target->compare_exchange_weak(current, value, std::memory_order_relaxed,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

std::size_t HdrHistogram::BucketIndex(double value) {
  if (!(value >= 1.0)) return 0;  // <1, negative, NaN: underflow bucket
  int exponent = 0;
  const double mantissa = std::frexp(value, &exponent);  // value = m * 2^e, m in [0.5,1)
  (void)mantissa;
  const int octave = exponent - 1;  // floor(log2(value))
  if (octave >= kMaxExponent) return kBucketCount - 1;
  // Linear position inside the octave: value / 2^octave - 1 in [0, 1).
  const double frac = std::ldexp(value, -octave) - 1.0;
  int sub = static_cast<int>(frac * kSubBucketCount);
  if (sub >= kSubBucketCount) sub = kSubBucketCount - 1;  // value == 2^(octave+1) - ulp
  return 1 + static_cast<std::size_t>(octave) * kSubBucketCount +
         static_cast<std::size_t>(sub);
}

double HdrHistogram::BucketUpperEdge(std::size_t index) {
  if (index == 0) return 1.0;
  const std::size_t linear = index - 1;
  const std::size_t octave = linear / kSubBucketCount;
  const std::size_t sub = linear % kSubBucketCount;
  // Upper edge of sub-bucket `sub` in octave `octave`:
  //   2^octave * (1 + (sub+1)/64)
  return std::ldexp(1.0 + static_cast<double>(sub + 1) / kSubBucketCount,
                    static_cast<int>(octave));
}

HdrHistogram::HdrHistogram()
    : buckets_(new std::atomic<std::uint64_t>[kBucketCount]),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  for (std::size_t i = 0; i < kBucketCount; ++i) buckets_[i].store(0);
}

void HdrHistogram::Record(double value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  const double clamped = std::isnan(value) ? 0.0 : value;
  AtomicMinDouble(&min_, clamped);
  AtomicMaxDouble(&max_, clamped);
}

HdrHistogram::Snapshot HdrHistogram::GetSnapshot() const {
  Snapshot snap;
  snap.counts.resize(kBucketCount);
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    snap.counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  const double min = min_.load(std::memory_order_relaxed);
  const double max = max_.load(std::memory_order_relaxed);
  snap.min = std::isfinite(min) ? min : 0.0;
  snap.max = std::isfinite(max) ? max : 0.0;
  return snap;
}

void HdrHistogram::Reset() {
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

double HdrHistogram::Snapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  // Rank of the target recording, 1-based; q in (0,1) so rank in [1, count].
  const double scaled = q * static_cast<double>(count);
  std::uint64_t rank = static_cast<std::uint64_t>(std::ceil(scaled));
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (cumulative >= rank) {
      const double edge = BucketUpperEdge(i);
      // Clamp into the exact observed range: a quantile can never exceed
      // the largest recording or undershoot the smallest.
      if (edge < min) return min;
      if (edge > max) return max;
      return edge;
    }
  }
  return max;  // unreachable when counts are consistent with count
}

std::vector<double> HdrHistogram::Snapshot::Deciles() const {
  std::vector<double> out;
  out.reserve(9);
  for (int d = 1; d <= 9; ++d) out.push_back(Quantile(0.1 * d));
  return out;
}

}  // namespace obs
}  // namespace dplearn
