#ifndef DPLEARN_OBS_CONFIG_H_
#define DPLEARN_OBS_CONFIG_H_

namespace dplearn {
namespace obs {

/// Process-wide observability switches. All three are single relaxed atomic
/// loads on the read path, so instrumented hot paths pay one predictable
/// branch when a feature is off.
///
/// Defaults (overridable by environment before first use, then by setters):
///   metrics  — ON  (DPLEARN_METRICS=0 disables). Counter/gauge updates are
///              lock-free relaxed atomics; cost is ~1ns per event.
///   tracing  — OFF (DPLEARN_TRACE=1 enables). TraceSpan reads two
///              steady_clock timestamps per span, so it is opt-in.
///   audit    — OFF (DPLEARN_AUDIT=1 enables). Every mechanism invocation
///              appends an entry to the global BudgetAuditLog; memory grows
///              with invocation count, so it is opt-in (the experiment
///              harness turns it on).
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

bool TracingEnabled();
void SetTracingEnabled(bool enabled);

bool AuditEnabled();
void SetAuditEnabled(bool enabled);

/// RAII audit suppression for Monte-Carlo measurement loops: simulations
/// that re-release the same statistic thousands of times to estimate
/// utility are measurement, not deployment releases, and would otherwise
/// flood the ledger. Restores the previous state on destruction. Process-
/// wide, so only meaningful on single-threaded (experiment) code paths.
class ScopedAuditPause {
 public:
  ScopedAuditPause() : was_enabled_(AuditEnabled()) { SetAuditEnabled(false); }
  ~ScopedAuditPause() { SetAuditEnabled(was_enabled_); }
  ScopedAuditPause(const ScopedAuditPause&) = delete;
  ScopedAuditPause& operator=(const ScopedAuditPause&) = delete;

 private:
  bool was_enabled_;
};

}  // namespace obs
}  // namespace dplearn

#endif  // DPLEARN_OBS_CONFIG_H_
