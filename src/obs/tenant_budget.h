#ifndef DPLEARN_OBS_TENANT_BUDGET_H_
#define DPLEARN_OBS_TENANT_BUDGET_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "mechanisms/privacy_budget.h"
#include "obs/audit_log.h"
#include "util/status.h"

namespace dplearn {
namespace obs {

/// Per-tenant ε-budget telemetry: the sharded view a multi-tenant DP
/// release service (ROADMAP item 1) keeps over its accountants. Each
/// registered tenant owns a PrivacyAccountant wired to a private
/// BudgetAuditLog; every spend routes through the accountant (so the
/// ledger, the Kahan-compensated running totals, and the over-budget
/// refusal logic are exactly the single-tenant ones) and then updates
/// GlobalMetrics() gauges:
///
///   tenant.<id>.epsilon_remaining   remaining ε (bitwise equal to
///                                   accountant.Remaining().epsilon, which
///                                   ReplayVerify reconciles)
///   tenant.<id>.epsilon_spent       cumulative granted ε
///   tenant.<id>.epsilon_spend_rate  granted ε per wall-clock second since
///                                   the tenant's first spend
///
/// plus process-wide counters tenant.spends, tenant.denials and
/// tenant.near_exhaustion.events. The exposition writer renders the gauges
/// as one Prometheus family per field with a tenant="<id>" label
/// (obs/exposition.cc), which is why tenant ids must match
/// [A-Za-z0-9_-]+ — no dots.
///
/// When a tenant's granted ε first reaches
/// near_exhaustion_fraction * total ε, a "budget"/"near_exhaustion" event
/// is emitted to the global sinks (once per tenant) and the counter bumps,
/// so an operator sees tenants approaching their budget before spends
/// start bouncing.
///
/// Thread-safety: tenants hash onto shard_count independently locked
/// shards, so concurrent spends by different tenants rarely contend;
/// spends by one tenant serialize on its shard, which the audit ledger
/// requires anyway (composition is order-sensitive in floating point).
class TenantBudgetTelemetry {
 public:
  struct Options {
    /// Spent-ε fraction that triggers the near-exhaustion event.
    double near_exhaustion_fraction = 0.9;
    std::size_t shard_count = 16;
  };

  TenantBudgetTelemetry() : TenantBudgetTelemetry(Options{}) {}
  explicit TenantBudgetTelemetry(Options options);
  ~TenantBudgetTelemetry();

  TenantBudgetTelemetry(const TenantBudgetTelemetry&) = delete;
  TenantBudgetTelemetry& operator=(const TenantBudgetTelemetry&) = delete;

  /// True iff `id` is a valid tenant id: non-empty, [A-Za-z0-9_-] only.
  static bool IsValidTenantId(std::string_view id);

  /// Registers `tenant_id` with total budget `total` and zeroes its gauges.
  /// INVALID_ARGUMENT on a malformed id or invalid budget; ALREADY rejected
  /// (FAILED_PRECONDITION) when the tenant exists.
  Status RegisterTenant(const std::string& tenant_id, const PrivacyBudget& total);

  /// Spends `cost` from `tenant_id`'s budget under `mechanism`. The spend
  /// goes through the tenant's PrivacyAccountant — granted and
  /// denied-over-budget spends both land in the tenant's audit ledger —
  /// and the tenant's gauges are refreshed either way. Returns the
  /// accountant's status (FAILED_PRECONDITION on an over-budget denial);
  /// NOT_FOUND for an unregistered tenant.
  Status Spend(const std::string& tenant_id, const PrivacyBudget& cost,
               std::string_view mechanism);
  Status Spend(const std::string& tenant_id, const PrivacyBudget& cost) {
    return Spend(tenant_id, cost, "tenant");
  }

  /// A read-only snapshot of one tenant's budget state.
  struct TenantView {
    std::string tenant_id;
    PrivacyBudget total;
    PrivacyBudget spent;
    PrivacyBudget remaining;
    std::uint64_t spends = 0;    // granted
    std::uint64_t denials = 0;   // refused over-budget
    double epsilon_spend_rate = 0.0;  // granted ε per second
    bool near_exhaustion = false;
  };

  StatusOr<TenantView> GetView(const std::string& tenant_id) const;
  /// All tenants, sorted by id (deterministic output order).
  std::vector<TenantView> GetAllViews() const;

  /// The tenant's private ledger, for export or external verification.
  /// NOT_FOUND for an unregistered tenant. The pointer stays valid for the
  /// telemetry object's lifetime.
  StatusOr<const BudgetAuditLog*> audit_log(const std::string& tenant_id) const;

  std::size_t tenant_count() const;

  /// Full cross-check of every tenant, strongest first:
  ///   1. the tenant ledger replays clean (BudgetAuditLog::ReplayVerify);
  ///   2. the ledger's cumulative ε/δ are BITWISE equal to the
  ///      accountant's spent totals (both are the same Kahan sum in the
  ///      same order, so == is the correct comparison, not a tolerance);
  ///   3. the exported gauges are bitwise equal to the accountant's
  ///      remaining/spent ε.
  /// InternalError naming the first offending tenant and check otherwise.
  Status ReplayVerifyAll() const;

 private:
  struct Tenant;
  struct Shard;

  Shard& ShardFor(const std::string& tenant_id) const;
  void UpdateGauges(Tenant& tenant);

  Options options_;
  std::unique_ptr<Shard[]> shards_;
};

/// Process-wide instance (leaked singleton) with default options — what the
/// benches and a future service front-end share.
TenantBudgetTelemetry& GlobalTenantTelemetry();

}  // namespace obs
}  // namespace dplearn

#endif  // DPLEARN_OBS_TENANT_BUDGET_H_
