#ifndef DPLEARN_OBS_TRACE_BUFFER_H_
#define DPLEARN_OBS_TRACE_BUFFER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace dplearn {
namespace obs {

/// One closed span, as retained by the per-thread ring buffers. Timestamps
/// are microseconds since the process trace epoch (first use of the trace
/// clock), so records from different threads share one timeline.
struct SpanRecord {
  const char* name = nullptr;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;   // 0 = root
  std::uint32_t thread_index = 0;  // dense per-thread id, assigned on first record
  double start_us = 0.0;
  double dur_us = 0.0;
};

/// Trace recording keeps closed spans in a fixed-capacity ring buffer per
/// thread (capacity DPLEARN_TRACE_BUFFER_CAP, default 16384): recording is
/// a single-producer append of relaxed atomics — no lock, no allocation —
/// so it stays off the release hot path, and the newest `capacity` spans
/// per thread survive for export. Recording is off by default; it is
/// enabled explicitly or implicitly by DPLEARN_TRACE_FILE (see
/// TelemetryReporter). Spans are only recorded while TracingEnabled() is
/// also on — the buffer consumes TraceSpan closes.
bool TraceBufferEnabled();
void SetTraceBufferEnabled(bool enabled);

/// Appends a record to the calling thread's ring (creating it on first
/// use). Called by ~TraceSpan; not intended for direct use.
void RecordSpan(const char* name, std::uint64_t span_id, std::uint64_t parent_id,
                double start_us, double dur_us);

/// Microseconds since the process trace epoch, the clock SpanRecord uses.
double TraceNowMicros();

struct TraceBufferStats {
  std::uint64_t recorded = 0;   // spans ever recorded (all generations)
  std::uint64_t retained = 0;   // spans currently collectable
  std::uint64_t threads = 0;    // rings created so far
  std::uint64_t capacity = 0;   // per-ring capacity
};
TraceBufferStats GetTraceBufferStats();

/// Snapshot of every thread's retained records, sorted by start time.
/// Readers run concurrently with producers: a producer that laps its ring
/// mid-read can tear a slot (fields from two records), so collection is
/// best-effort by design — records with non-positive duration or a stale
/// generation are dropped here, and the Chrome exporter re-nests whatever
/// remains. Sizing the ring above the burst rate makes tears vanishingly
/// rare; correctness-critical consumers use the event sinks instead.
std::vector<SpanRecord> CollectSpanRecords();

/// Invalidates all currently retained records (generation bump — cheap, no
/// synchronization with producers). Test isolation support.
void ClearTraceBuffers();

/// Chrome Trace Event Format JSON (chrome://tracing / Perfetto loadable):
/// {"displayTimeUnit":"ms","traceEvents":[...]} with thread-name metadata
/// ("M") events followed by matched "B"/"E" pairs per thread, timestamps
/// non-decreasing per thread and child intervals clamped inside their
/// stack parent. Span and parent ids ride in "args".
/// scripts/check_trace_json.py validates exactly this contract.
std::string ChromeTraceJson();

/// Writes ChromeTraceJson() to `path` atomically (tmp + rename).
/// UNAVAILABLE on I/O failure.
Status WriteChromeTrace(const std::string& path);

}  // namespace obs
}  // namespace dplearn

#endif  // DPLEARN_OBS_TRACE_BUFFER_H_
