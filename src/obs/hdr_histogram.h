#ifndef DPLEARN_OBS_HDR_HISTOGRAM_H_
#define DPLEARN_OBS_HDR_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace dplearn {
namespace obs {

/// A lock-free log-bucketed histogram in the HdrHistogram family: values are
/// binned by (binary exponent, linear sub-bucket), so the bucket width is
/// always a fixed fraction of the value. Record() is wait-free relaxed
/// atomics — safe in release hot paths — and quantile queries run on an
/// immutable Snapshot, never on the live counters.
///
/// Geometry and error bound
///   Sub-bucket resolution is 2^kSubBucketBits = 64 per octave, so every
///   bucket spans [x, x * (1 + 1/64)): any quantile estimate is within a
///   relative error of 1/64 ≈ 1.57% of some recorded value (quantiles are
///   reported as bucket upper edges, clamped to the exact observed min/max,
///   so p0 and p100 are exact). Values below 1.0 land in a single underflow
///   bucket (for latency-in-µs histograms that is "sub-microsecond");
///   values at or above 2^kMaxExponent saturate into the last bucket.
///   Negative and non-finite values clamp to the underflow bucket.
///
/// Determinism
///   A Snapshot copies the bucket array in index order and its Quantile()
///   walks that copy with integer arithmetic only, so two snapshots with
///   equal counts yield bit-identical quantiles regardless of the thread
///   interleaving that produced them ("bitwise-stable snapshot order").
class HdrHistogram {
 public:
  static constexpr int kSubBucketBits = 6;                  // 64 sub-buckets
  static constexpr int kSubBucketCount = 1 << kSubBucketBits;
  static constexpr int kMaxExponent = 43;                   // ~8.8e12 max value
  static constexpr std::size_t kBucketCount =
      1 + static_cast<std::size_t>(kMaxExponent) * kSubBucketCount;

  /// Bucket index for `value` (see geometry above). Pure function — the
  /// unit tests pin edge placements with it.
  static std::size_t BucketIndex(double value);
  /// Inclusive upper edge of bucket `index`: every value binned there is
  /// <= this edge, and > the previous bucket's edge.
  static double BucketUpperEdge(std::size_t index);

  struct Snapshot {
    std::vector<std::uint64_t> counts;  // kBucketCount cells, index order
    std::uint64_t count = 0;
    double min = 0.0;  // exact observed extrema; 0/0 when empty
    double max = 0.0;

    /// Value at quantile q in [0,1]: the upper edge of the bucket holding
    /// the ceil(q*count)-th smallest recording, clamped to [min, max].
    /// Returns 0 when empty. Deterministic given `counts`.
    double Quantile(double q) const;
    /// The nine deciles p10..p90, in order. For the snapshot consumers that
    /// want the full shape rather than the tail.
    std::vector<double> Deciles() const;
  };

  HdrHistogram();

  HdrHistogram(const HdrHistogram&) = delete;
  HdrHistogram& operator=(const HdrHistogram&) = delete;

  /// Wait-free: one bucket fetch_add plus min/max CAS refresh, all relaxed.
  void Record(double value);
  Snapshot GetSnapshot() const;
  void Reset();

 private:
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

}  // namespace obs
}  // namespace dplearn

#endif  // DPLEARN_OBS_HDR_HISTOGRAM_H_
