// Prometheus text exposition (format 0.0.4) for MetricsRegistry — the dump
// TelemetryReporter writes to DPLEARN_METRICS_FILE and a scraper ingests
// via the node-exporter textfile collector. scripts/check_exposition.py
// validates the shape this file emits; keep the two in sync.
//
// Name mapping (documented in DESIGN.md §12):
//   dotted.metric.name      -> dplearn_dotted_metric_name
//   counters                -> ..._total  (# TYPE counter)
//   gauges                  -> ...        (# TYPE gauge)
//   tenant.<id>.<field>     -> dplearn_tenant_<field>{tenant="<id>"}
//   histograms              -> summaries: {quantile="0.5|0.9|0.99|0.999"}
//                              samples + _sum + _count  (# TYPE summary)

#include <cstdio>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace dplearn {
namespace obs {
namespace {

std::string SanitizeMetricName(std::string_view name) {
  std::string out = "dplearn_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string FormatValue(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

/// "tenant.<id>.<field>" -> family "dplearn_tenant_<field>", label
/// tenant="<id>". Tenant ids are validated by TenantBudgetRegistry to
/// contain no dots, so the split on the first and last '.' is unambiguous.
bool SplitTenantGauge(const std::string& name, std::string* tenant, std::string* field) {
  constexpr std::string_view kPrefix = "tenant.";
  if (name.rfind(kPrefix, 0) != 0) return false;
  const std::size_t field_dot = name.find('.', kPrefix.size());
  if (field_dot == std::string::npos || field_dot + 1 >= name.size()) return false;
  *tenant = name.substr(kPrefix.size(), field_dot - kPrefix.size());
  *field = name.substr(field_dot + 1);
  return !tenant->empty();
}

void AppendTypeLine(std::string* out, const std::string& family, const char* type,
                    std::map<std::string, bool>* declared) {
  if ((*declared)[family]) return;
  (*declared)[family] = true;
  *out += "# TYPE " + family + " " + type + "\n";
}

}  // namespace

std::string MetricsRegistry::WriteExposition() const {
  const Snapshot snap = GetSnapshot();
  std::string out;
  std::map<std::string, bool> declared;

  for (const auto& [name, value] : snap.counters) {
    const std::string family = SanitizeMetricName(name) + "_total";
    AppendTypeLine(&out, family, "counter", &declared);
    out += family + " " + std::to_string(value) + "\n";
  }

  for (const auto& [name, value] : snap.gauges) {
    std::string tenant;
    std::string field;
    if (SplitTenantGauge(name, &tenant, &field)) {
      const std::string family = SanitizeMetricName("tenant." + field);
      AppendTypeLine(&out, family, "gauge", &declared);
      out += family + "{tenant=\"" + tenant + "\"} " + FormatValue(value) + "\n";
    } else {
      const std::string family = SanitizeMetricName(name);
      AppendTypeLine(&out, family, "gauge", &declared);
      out += family + " " + FormatValue(value) + "\n";
    }
  }

  constexpr double kQuantiles[] = {0.5, 0.9, 0.99, 0.999};
  constexpr const char* kQuantileLabels[] = {"0.5", "0.9", "0.99", "0.999"};
  for (const auto& [name, hist] : snap.histograms) {
    const std::string family = SanitizeMetricName(name);
    AppendTypeLine(&out, family, "summary", &declared);
    for (std::size_t i = 0; i < 4; ++i) {
      out += family + "{quantile=\"" + kQuantileLabels[i] + "\"} " +
             FormatValue(hist.Quantile(kQuantiles[i])) + "\n";
    }
    out += family + "_sum " + FormatValue(hist.sum) + "\n";
    out += family + "_count " + std::to_string(hist.count) + "\n";
  }
  return out;
}

Status WriteExpositionFile(const MetricsRegistry& registry, const std::string& path) {
  const std::string text = registry.WriteExposition();
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "w");
  if (file == nullptr) {
    return UnavailableError("WriteExpositionFile: cannot open '" + tmp + "'");
  }
  const bool wrote = std::fwrite(text.data(), 1, text.size(), file) == text.size();
  const bool closed = std::fclose(file) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return UnavailableError("WriteExpositionFile: write failed for '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return UnavailableError("WriteExpositionFile: rename to '" + path + "' failed");
  }
  return Status::Ok();
}

}  // namespace obs
}  // namespace dplearn
