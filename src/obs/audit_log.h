#ifndef DPLEARN_OBS_AUDIT_LOG_H_
#define DPLEARN_OBS_AUDIT_LOG_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/config.h"
#include "util/math_util.h"
#include "util/status.h"

namespace dplearn {
namespace obs {

/// One recorded privacy-budget event. Entries are written for every
/// PrivacyAccountant::Spend (granted or denied) and for every direct
/// mechanism invocation (LaplaceMechanism::Release, ExponentialMechanism::
/// Sample, ...), which are recorded as granted self-reports of the
/// mechanism's own guarantee.
///
/// Budgets are raw (epsilon, delta) doubles rather than PrivacyBudget to
/// keep obs below mechanisms in the dependency order.
struct BudgetAuditEntry {
  std::uint64_t sequence = 0;  // monotone, starts at 0 per log
  std::string mechanism;       // e.g. "laplace", "accountant", "gibbs.channel"
  double epsilon = 0.0;        // requested spend
  double delta = 0.0;
  bool granted = true;
  /// Running totals over all GRANTED entries up to and including this one —
  /// basic sequential composition. A denied entry repeats the previous
  /// totals.
  double cumulative_epsilon = 0.0;
  double cumulative_delta = 0.0;
};

/// A thread-safe append-only ledger of budget spends. The class both
/// records and verifies: ReplayVerify() re-runs sequential composition over
/// the granted entries and checks the stored cumulative totals match, so a
/// consumer of an exported trail can independently confirm the accountant's
/// arithmetic.
class BudgetAuditLog {
 public:
  /// Appends an entry, computing the cumulative totals; emits an "audit"
  /// event to the global sinks when any are attached.
  void Record(std::string_view mechanism, double epsilon, double delta, bool granted);

  std::vector<BudgetAuditEntry> Entries() const;
  std::size_t size() const;
  bool empty() const { return size() == 0; }
  void Clear();

  /// Totals over granted entries so far.
  double cumulative_epsilon() const;
  double cumulative_delta() const;

  /// Replays the ledger: sequence numbers must be 0..n-1 and every entry's
  /// stored cumulative totals must equal the running sequential-composition
  /// sums of the granted spends (to 1e-9 absolute). Both the recorder and
  /// the replay use Kahan-compensated summation, so the check stays exact
  /// even over millions of small spends. Returns InternalError naming the
  /// first inconsistent entry otherwise.
  Status ReplayVerify() const;

  /// The trail as a JSON array (one object per entry, schema as in
  /// DESIGN.md §7).
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;
  std::vector<BudgetAuditEntry> entries_;
  KahanSum cumulative_epsilon_;
  KahanSum cumulative_delta_;
};

/// The ledger library instrumentation writes to (when AuditEnabled()).
BudgetAuditLog& GlobalAuditLog();

/// Self-report hook for mechanisms: when auditing is on, records a granted
/// entry for one invocation of `mechanism` with guarantee (epsilon, delta)
/// in the global ledger. One relaxed load when auditing is off.
inline void AuditMechanismInvocation(const char* mechanism, double epsilon,
                                     double delta) {
  if (AuditEnabled()) GlobalAuditLog().Record(mechanism, epsilon, delta, true);
}

}  // namespace obs
}  // namespace dplearn

#endif  // DPLEARN_OBS_AUDIT_LOG_H_
