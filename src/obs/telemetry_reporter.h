#ifndef DPLEARN_OBS_TELEMETRY_REPORTER_H_
#define DPLEARN_OBS_TELEMETRY_REPORTER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "util/status.h"

namespace dplearn {
namespace obs {

/// Periodically exports telemetry to files a scraper (or a human) can pick
/// up without attaching to the process:
///
///   metrics_path -> Prometheus text exposition of GlobalMetrics()
///                   (MetricsRegistry::WriteExposition, atomic tmp+rename)
///   trace_path   -> Chrome Trace Event JSON of the span ring buffers
///                   (obs/trace_buffer.h, atomic tmp+rename)
///
/// A background flush thread rewrites the configured files every
/// interval_ms. Shutdown is deterministic: Stop() (idempotent, also run by
/// the destructor) wakes the thread via a condition variable, joins it, and
/// performs one final synchronous flush — so after Stop() returns, the
/// files on disk reflect every metric update and retained span that
/// happened before the call. No sleeping-thread races, no partially
/// written files (flushes go through tmp+rename).
///
/// The process-wide instance (GlobalTelemetryReporter) is configured from
/// the environment:
///
///   DPLEARN_METRICS_FILE           exposition path (enables metrics flush)
///   DPLEARN_TRACE_FILE             Chrome trace path (also switches
///                                  tracing AND span recording on)
///   DPLEARN_TELEMETRY_INTERVAL_MS  flush cadence, default 1000
///
/// The experiment harness starts the global reporter in PrintHeader() and
/// shuts it down in its exit hook, so `DPLEARN_TRACE_FILE=t.json ./exp_*`
/// is all it takes to get a Perfetto-loadable trace.
class TelemetryReporter {
 public:
  struct Options {
    std::string metrics_path;  // empty = no exposition flush
    std::string trace_path;    // empty = no trace export
    int interval_ms = 1000;    // periodic flush cadence (clamped to >= 10)
  };

  explicit TelemetryReporter(Options options);
  ~TelemetryReporter();

  TelemetryReporter(const TelemetryReporter&) = delete;
  TelemetryReporter& operator=(const TelemetryReporter&) = delete;

  /// Starts the periodic flush thread. No-op when already running or when
  /// neither path is configured.
  void Start();

  /// Stops the flush thread (if running) and performs one final flush.
  /// Idempotent; safe to call without Start().
  void Stop();

  /// Writes both configured files synchronously. Returns the first error
  /// (flushing continues past a failed file); OK when nothing is
  /// configured. Failures also bump the `telemetry.flush_failures` counter.
  Status FlushNow();

  /// Completed FlushNow() calls (periodic + explicit + final).
  std::uint64_t flush_count() const;

  bool running() const;
  const Options& options() const { return options_; }

 private:
  void FlushLoop();

  Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
  bool running_ = false;      // guarded by mu_
  bool stop_requested_ = false;  // guarded by mu_
  std::atomic<std::uint64_t> flush_count_{0};
};

/// The env-configured process-wide reporter (leaked singleton). First call
/// reads the DPLEARN_* variables, enables tracing + span recording when
/// DPLEARN_TRACE_FILE is set, and starts the flush thread if any path is
/// configured.
TelemetryReporter& GlobalTelemetryReporter();

/// Stops the global reporter and flushes its files one last time.
/// Idempotent; the experiment harness calls this from its exit hook.
void ShutdownGlobalTelemetry();

}  // namespace obs
}  // namespace dplearn

#endif  // DPLEARN_OBS_TELEMETRY_REPORTER_H_
