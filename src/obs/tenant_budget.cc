#include "obs/tenant_budget.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "obs/event_sink.h"
#include "obs/metrics.h"

namespace dplearn {
namespace obs {

struct TenantBudgetTelemetry::Tenant {
  std::string id;
  PrivacyAccountant accountant;
  /// Ledger behind a stable address: the accountant stores a raw pointer to
  /// it, and audit_log() hands it out past shard rehashes.
  std::unique_ptr<BudgetAuditLog> ledger;
  Gauge* epsilon_remaining = nullptr;
  Gauge* epsilon_spent = nullptr;
  Gauge* epsilon_spend_rate = nullptr;
  std::uint64_t spends = 0;
  std::uint64_t denials = 0;
  bool near_exhaustion_fired = false;
  bool has_first_spend = false;
  std::chrono::steady_clock::time_point first_spend;

  explicit Tenant(std::string tenant_id, PrivacyAccountant acct)
      : id(std::move(tenant_id)),
        accountant(std::move(acct)),
        ledger(new BudgetAuditLog()) {
    accountant.set_audit_log(ledger.get());
  }
};

struct TenantBudgetTelemetry::Shard {
  mutable std::mutex mu;
  std::unordered_map<std::string, std::unique_ptr<Tenant>> tenants;
};

TenantBudgetTelemetry::TenantBudgetTelemetry(Options options)
    : options_(options) {
  if (options_.shard_count == 0) options_.shard_count = 1;
  if (!(options_.near_exhaustion_fraction > 0.0) ||
      !(options_.near_exhaustion_fraction <= 1.0)) {
    options_.near_exhaustion_fraction = 0.9;
  }
  shards_.reset(new Shard[options_.shard_count]);
}

TenantBudgetTelemetry::~TenantBudgetTelemetry() = default;

bool TenantBudgetTelemetry::IsValidTenantId(std::string_view id) {
  if (id.empty()) return false;
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

TenantBudgetTelemetry::Shard& TenantBudgetTelemetry::ShardFor(
    const std::string& tenant_id) const {
  const std::size_t h = std::hash<std::string>{}(tenant_id);
  return shards_[h % options_.shard_count];
}

void TenantBudgetTelemetry::UpdateGauges(Tenant& tenant) {
  tenant.epsilon_remaining->Set(tenant.accountant.Remaining().epsilon);
  tenant.epsilon_spent->Set(tenant.accountant.spent().epsilon);
  double rate = 0.0;
  if (tenant.has_first_spend) {
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      tenant.first_spend)
            .count();
    if (seconds > 0.0) rate = tenant.accountant.spent().epsilon / seconds;
  }
  tenant.epsilon_spend_rate->Set(rate);
}

Status TenantBudgetTelemetry::RegisterTenant(const std::string& tenant_id,
                                             const PrivacyBudget& total) {
  if (!IsValidTenantId(tenant_id)) {
    return InvalidArgumentError("RegisterTenant: tenant id '" + tenant_id +
                                "' must match [A-Za-z0-9_-]+");
  }
  StatusOr<PrivacyAccountant> accountant = PrivacyAccountant::Create(total);
  if (!accountant.ok()) return accountant.status();

  Shard& shard = ShardFor(tenant_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.tenants.find(tenant_id) != shard.tenants.end()) {
    return FailedPreconditionError("RegisterTenant: tenant '" + tenant_id +
                                   "' already registered");
  }
  auto tenant =
      std::make_unique<Tenant>(tenant_id, std::move(accountant).value());
  tenant->epsilon_remaining =
      GlobalMetrics().GetGauge("tenant." + tenant_id + ".epsilon_remaining");
  tenant->epsilon_spent =
      GlobalMetrics().GetGauge("tenant." + tenant_id + ".epsilon_spent");
  tenant->epsilon_spend_rate =
      GlobalMetrics().GetGauge("tenant." + tenant_id + ".epsilon_spend_rate");
  UpdateGauges(*tenant);
  shard.tenants.emplace(tenant_id, std::move(tenant));
  return Status::Ok();
}

Status TenantBudgetTelemetry::Spend(const std::string& tenant_id,
                                    const PrivacyBudget& cost,
                                    std::string_view mechanism) {
  Shard& shard = ShardFor(tenant_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.tenants.find(tenant_id);
  if (it == shard.tenants.end()) {
    return NotFoundError("Spend: tenant '" + tenant_id + "' not registered");
  }
  Tenant& tenant = *it->second;

  if (!tenant.has_first_spend) {
    tenant.has_first_spend = true;
    tenant.first_spend = std::chrono::steady_clock::now();
  }
  const Status status = tenant.accountant.Spend(cost, mechanism);
  if (status.ok()) {
    ++tenant.spends;
    static Counter* const spends = GlobalMetrics().GetCounter("tenant.spends");
    spends->Increment();
  } else if (status.code() == StatusCode::kFailedPrecondition) {
    ++tenant.denials;
    static Counter* const denials = GlobalMetrics().GetCounter("tenant.denials");
    denials->Increment();
  }
  UpdateGauges(tenant);

  const double total_eps = tenant.accountant.total().epsilon;
  const bool near = total_eps > 0.0 &&
                    tenant.accountant.spent().epsilon >=
                        options_.near_exhaustion_fraction * total_eps;
  if (near && !tenant.near_exhaustion_fired) {
    tenant.near_exhaustion_fired = true;
    static Counter* const events =
        GlobalMetrics().GetCounter("tenant.near_exhaustion.events");
    events->Increment();
    if (HasGlobalSinks()) {
      Event event;
      event.type = "budget";
      event.name = "near_exhaustion";
      event.With("tenant", EventValue::Str(tenant.id))
          .With("epsilon_spent", EventValue::Num(tenant.accountant.spent().epsilon))
          .With("epsilon_total", EventValue::Num(total_eps))
          .With("epsilon_remaining",
                EventValue::Num(tenant.accountant.Remaining().epsilon))
          .With("threshold", EventValue::Num(options_.near_exhaustion_fraction));
      EmitEvent(event);
    }
  }
  return status;
}

StatusOr<TenantBudgetTelemetry::TenantView> TenantBudgetTelemetry::GetView(
    const std::string& tenant_id) const {
  Shard& shard = ShardFor(tenant_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.tenants.find(tenant_id);
  if (it == shard.tenants.end()) {
    return NotFoundError("GetView: tenant '" + tenant_id + "' not registered");
  }
  const Tenant& tenant = *it->second;
  TenantView view;
  view.tenant_id = tenant.id;
  view.total = tenant.accountant.total();
  view.spent = tenant.accountant.spent();
  view.remaining = tenant.accountant.Remaining();
  view.spends = tenant.spends;
  view.denials = tenant.denials;
  view.epsilon_spend_rate = tenant.epsilon_spend_rate->Value();
  view.near_exhaustion = tenant.near_exhaustion_fired;
  return view;
}

std::vector<TenantBudgetTelemetry::TenantView>
TenantBudgetTelemetry::GetAllViews() const {
  std::vector<std::string> ids;
  for (std::size_t s = 0; s < options_.shard_count; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mu);
    for (const auto& [id, tenant] : shards_[s].tenants) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  std::vector<TenantView> views;
  views.reserve(ids.size());
  for (const std::string& id : ids) {
    StatusOr<TenantView> view = GetView(id);
    if (view.ok()) views.push_back(std::move(view).value());
  }
  return views;
}

StatusOr<const BudgetAuditLog*> TenantBudgetTelemetry::audit_log(
    const std::string& tenant_id) const {
  Shard& shard = ShardFor(tenant_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.tenants.find(tenant_id);
  if (it == shard.tenants.end()) {
    return NotFoundError("audit_log: tenant '" + tenant_id + "' not registered");
  }
  return static_cast<const BudgetAuditLog*>(it->second->ledger.get());
}

std::size_t TenantBudgetTelemetry::tenant_count() const {
  std::size_t count = 0;
  for (std::size_t s = 0; s < options_.shard_count; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mu);
    count += shards_[s].tenants.size();
  }
  return count;
}

Status TenantBudgetTelemetry::ReplayVerifyAll() const {
  for (std::size_t s = 0; s < options_.shard_count; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mu);
    for (const auto& [id, tenant] : shards_[s].tenants) {
      DPLEARN_RETURN_IF_ERROR(tenant->ledger->ReplayVerify());
      // The ledger and the accountant Kahan-add the same granted spends in
      // the same order, so their totals must agree to the bit — any drift
      // means the telemetry view diverged from the accountant of record.
      const PrivacyBudget spent = tenant->accountant.spent();
      if (tenant->ledger->cumulative_epsilon() != spent.epsilon ||
          tenant->ledger->cumulative_delta() != spent.delta) {
        return InternalError("ReplayVerifyAll: tenant '" + id +
                             "' ledger totals diverge from accountant");
      }
      if (tenant->epsilon_remaining->Value() !=
              tenant->accountant.Remaining().epsilon ||
          tenant->epsilon_spent->Value() != spent.epsilon) {
        return InternalError("ReplayVerifyAll: tenant '" + id +
                             "' gauges diverge from accountant");
      }
    }
  }
  return Status::Ok();
}

TenantBudgetTelemetry& GlobalTenantTelemetry() {
  static TenantBudgetTelemetry* telemetry =
      new TenantBudgetTelemetry();  // never destroyed
  return *telemetry;
}

}  // namespace obs
}  // namespace dplearn
