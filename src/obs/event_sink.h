#ifndef DPLEARN_OBS_EVENT_SINK_H_
#define DPLEARN_OBS_EVENT_SINK_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace dplearn {
namespace obs {

/// A typed scalar for event fields, so sinks can serialize numbers as JSON
/// numbers rather than strings.
struct EventValue {
  enum class Kind { kString, kNumber, kInt, kBool };

  static EventValue Str(std::string v) {
    EventValue e;
    e.kind = Kind::kString;
    e.string_value = std::move(v);
    return e;
  }
  static EventValue Num(double v) {
    EventValue e;
    e.kind = Kind::kNumber;
    e.number_value = v;
    return e;
  }
  static EventValue Int(std::int64_t v) {
    EventValue e;
    e.kind = Kind::kInt;
    e.int_value = v;
    return e;
  }
  static EventValue Bool(bool v) {
    EventValue e;
    e.kind = Kind::kBool;
    e.bool_value = v;
    return e;
  }

  Kind kind = Kind::kString;
  std::string string_value;
  double number_value = 0.0;
  std::int64_t int_value = 0;
  bool bool_value = false;
};

/// One observability event: a verdict, a finished trace span, an audit-log
/// entry, a recorded scalar. `type` and `name` are always present; the rest
/// is free-form key/value fields.
struct Event {
  std::string type;
  std::string name;
  std::vector<std::pair<std::string, EventValue>> fields;

  Event& With(std::string key, EventValue value) {
    fields.emplace_back(std::move(key), std::move(value));
    return *this;
  }

  /// {"type":"verdict","name":"...","pass":true} — one line, no newline.
  std::string ToJsonLine() const;
};

/// Receives events from instrumented code. Implementations must be
/// thread-safe: Emit can be called concurrently.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void Emit(const Event& event) = 0;
};

/// Buffers events in memory — the test double, and the experiment harness's
/// verdict ledger.
class InMemorySink final : public EventSink {
 public:
  void Emit(const Event& event) override;
  std::vector<Event> Events() const;
  std::size_t size() const;
  void Clear();

 private:
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

/// Appends one JSON object per line (JSONL) to a file. Lines are written
/// atomically under a mutex into the stdio buffer and flushed to the OS
/// every flush_every events (DPLEARN_SINK_FLUSH_EVERY, default 32), on
/// explicit Flush(), and in the destructor — so a clean shutdown loses
/// nothing and a crash loses at most the last flush_every-1 events, while
/// the hot path skips the per-event fflush syscall.
///
/// Writes are hardened: a failed write (a real I/O error, or the
/// `sink.write` fail point) is retried under a bounded-backoff RetryPolicy;
/// when retries are exhausted the event is dropped and counted
/// (dropped_events(), metric `sink.dropped_events`) instead of crashing or
/// blocking the experiment — observability must never take down the
/// pipeline it observes. Flushes are hardened the same way (`sink.flush`
/// fail point): a flush that still fails after retries is counted
/// (flush_failures(), metric `sink.flush_failures`) and the buffered lines
/// simply ride along to the next flush attempt rather than being lost.
class JsonlFileSink final : public EventSink {
 public:
  /// Opens `path` for appending (creating it if needed). The open itself is
  /// retried (fail point `sink.open`). Error if the file cannot be opened
  /// after retries.
  static StatusOr<std::unique_ptr<JsonlFileSink>> Open(const std::string& path);
  ~JsonlFileSink() override;

  void Emit(const Event& event) override;
  /// Retried flush of the stdio buffer; failure after retries is counted,
  /// never thrown.
  void Flush();
  const std::string& path() const { return path_; }

  /// Events abandoned after exhausting write retries.
  std::uint64_t dropped_events() const {
    return dropped_events_.load(std::memory_order_relaxed);
  }
  /// Flushes abandoned after exhausting retries (buffered data persists and
  /// is retried on the next flush).
  std::uint64_t flush_failures() const {
    return flush_failures_.load(std::memory_order_relaxed);
  }

 private:
  JsonlFileSink(std::FILE* file, std::string path);

  /// One write attempt; UNAVAILABLE on injected or real write failure.
  /// Caller holds mu_.
  Status WriteLineLocked(const std::string& line);
  /// One flush attempt (fail point `sink.flush`); UNAVAILABLE on failure.
  /// Caller holds mu_.
  Status FlushLocked();
  /// Retried flush with failure accounting. Caller holds mu_.
  void FlushWithRetryLocked();

  std::mutex mu_;
  std::FILE* file_;
  std::string path_;
  const std::uint64_t flush_every_;
  std::uint64_t pending_lines_ = 0;  // guarded by mu_
  std::atomic<std::uint64_t> dropped_events_{0};
  std::atomic<std::uint64_t> flush_failures_{0};
};

/// Global sink fan-out. Sinks are borrowed, not owned: the caller keeps the
/// sink alive until after RemoveGlobalSink returns. HasGlobalSinks() is a
/// relaxed atomic load, so instrumentation can skip event construction
/// entirely when nobody is listening.
void AddGlobalSink(EventSink* sink);
void RemoveGlobalSink(EventSink* sink);
bool HasGlobalSinks();
/// Delivers `event` to every registered sink (no-op when there are none).
void EmitEvent(const Event& event);

/// Registers `sink` for exactly the lifetime of the scope. Exception-safe:
/// a throw that unwinds the scope (e.g. an injected fault in a chaos run)
/// still deregisters, so the global registry can never hold a pointer to a
/// dead stack object.
class ScopedGlobalSink {
 public:
  explicit ScopedGlobalSink(EventSink* sink) : sink_(sink) { AddGlobalSink(sink_); }
  ~ScopedGlobalSink() { RemoveGlobalSink(sink_); }
  ScopedGlobalSink(const ScopedGlobalSink&) = delete;
  ScopedGlobalSink& operator=(const ScopedGlobalSink&) = delete;

 private:
  EventSink* sink_;
};

/// Suspends global-sink delivery on the current thread for a scope:
/// HasGlobalSinks()/EmitEvent() behave as if no sink were registered, so
/// instrumentation skips event construction entirely. The sink-side
/// counterpart of ScopedAuditPause — timing loops use it to measure the
/// metrics/tracing hot path without the event-stream formatting cost.
/// Nestable; other threads are unaffected.
class ScopedSinkPause {
 public:
  ScopedSinkPause();
  ~ScopedSinkPause();
  ScopedSinkPause(const ScopedSinkPause&) = delete;
  ScopedSinkPause& operator=(const ScopedSinkPause&) = delete;
};

}  // namespace obs
}  // namespace dplearn

#endif  // DPLEARN_OBS_EVENT_SINK_H_
