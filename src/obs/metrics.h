#ifndef DPLEARN_OBS_METRICS_H_
#define DPLEARN_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/hdr_histogram.h"
#include "util/status.h"

namespace dplearn {
namespace obs {

/// Adds `delta` to an atomic<double> without requiring C++20 floating-point
/// fetch_add support from the standard library (GCC 12's is emulated anyway).
inline void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double expected = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(expected, expected + delta,
                                        std::memory_order_relaxed,
                                        std::memory_order_relaxed)) {
  }
}

/// A monotonically increasing event count. All operations are lock-free
/// relaxed atomics — the metrics fast path.
class Counter {
 public:
  void Increment(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A last-written instantaneous value (e.g. an acceptance rate). Lock-free.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) { AtomicAddDouble(&value_, delta); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A latency histogram with two lock-free bucket layers fed by one
/// Observe():
///
///   * the caller-configured coarse buckets (bucket i counts observations
///     with value <= upper_bounds[i], one implicit overflow bucket) — the
///     exact, pinned exposition shape older consumers rely on, and
///   * HDR-style log buckets (see obs/hdr_histogram.h) powering the
///     quantile snapshot — p50/deciles/p99/p99.9 with relative error
///     bounded by 1/64 and exact min/max.
///
/// Observe() is lock-free; GetSnapshot() reads the atomics without stopping
/// writers, so a snapshot taken during concurrent observation is
/// approximate across cells (each individual cell is exact), and quantiles
/// are computed from the copied snapshot in fixed bucket order — bitwise
/// stable given equal counts.
class Histogram {
 public:
  struct Snapshot {
    std::vector<double> upper_bounds;        // as configured
    std::vector<std::uint64_t> bucket_counts;  // upper_bounds.size() + 1 cells
    std::uint64_t count = 0;
    double sum = 0.0;
    HdrHistogram::Snapshot hdr;              // quantile layer
    double Mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
    /// Quantile from the HDR layer (see HdrHistogram::Snapshot::Quantile).
    double Quantile(double q) const { return hdr.Quantile(q); }
    double Min() const { return hdr.min; }
    double Max() const { return hdr.max; }
  };

  void Observe(double value);
  Snapshot GetSnapshot() const;
  void Reset();

  const std::vector<double>& upper_bounds() const { return upper_bounds_; }

 private:
  friend class MetricsRegistry;
  /// `upper_bounds` must be non-empty and strictly increasing (checked by
  /// the registry on creation).
  explicit Histogram(std::vector<double> upper_bounds);

  std::vector<double> upper_bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // upper_bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  HdrHistogram hdr_;
};

/// RAII wall-time recorder for release hot paths: observes the scope's
/// elapsed microseconds into `histogram` on destruction, or does nothing
/// when constructed with nullptr (the metrics-disabled case) — call sites
/// gate on MetricsEnabled() at construction so a disabled run pays one
/// branch and no clock reads.
class LatencyTimer {
 public:
  explicit LatencyTimer(Histogram* histogram) : histogram_(histogram) {
    if (histogram_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~LatencyTimer() {
    if (histogram_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_->Observe(std::chrono::duration<double, std::micro>(elapsed).count());
  }
  LatencyTimer(const LatencyTimer&) = delete;
  LatencyTimer& operator=(const LatencyTimer&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

/// Exponential latency buckets in microseconds: 1, 2, 5, 10, ... 5e6. The
/// default for TraceSpan duration histograms.
const std::vector<double>& DefaultLatencyBucketsUs();

/// A process-wide name → metric table. Registration (GetCounter/GetGauge/
/// GetHistogram) takes a mutex and is intended for cold paths — call sites
/// cache the returned pointer (commonly in a function-local static); the
/// pointer stays valid for the registry's lifetime, across Reset calls.
/// Updates through the returned handles are lock-free.
///
/// Names are namespaced with dots, e.g. "mechanism.laplace.releases"; see
/// DESIGN.md §7 for the catalogue.
class MetricsRegistry {
 public:
  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;   // name-sorted
    std::vector<std::pair<std::string, double>> gauges;            // name-sorted
    std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
  };

  /// Returns the metric registered under `name`, creating it on first use.
  /// Registering the same name as two different kinds is a programming
  /// error and aborts.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `upper_bounds` applies on first creation only (must be non-empty,
  /// strictly increasing); later calls return the existing histogram.
  Histogram* GetHistogram(const std::string& name, const std::vector<double>& upper_bounds);

  Snapshot GetSnapshot() const;
  /// Zeroes every value; registered metrics (and cached pointers) survive.
  void ResetAll();

  /// One metric per line: "counter mechanism.laplace.releases 42".
  std::string ExportText() const;
  /// {"counters":{...},"gauges":{...},"histograms":{name:{...}}}
  std::string ExportJson() const;

  /// Prometheus text exposition format 0.0.4 (implemented in
  /// obs/exposition.cc). Dotted names are sanitized to `dplearn_*` metric
  /// families; counters gain the `_total` suffix; histograms are exported
  /// as summaries with quantile="0.5|0.9|0.99|0.999" samples plus _sum and
  /// _count; gauges named `tenant.<id>.<field>` become
  /// `dplearn_tenant_<field>{tenant="<id>"}` label families. See DESIGN.md
  /// §12 for the full mapping.
  std::string WriteExposition() const;

 private:
  void CheckNameFree(const std::string& name, const void* except_table) const;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The registry all library instrumentation writes to.
MetricsRegistry& GlobalMetrics();

/// Writes `registry`'s Prometheus exposition to `path` atomically: the text
/// goes to `path.tmp` first and is renamed into place, so a scraper (or the
/// node-exporter textfile collector pattern) never reads a torn dump.
/// UNAVAILABLE on I/O failure. Implemented in obs/exposition.cc.
Status WriteExpositionFile(const MetricsRegistry& registry, const std::string& path);

}  // namespace obs
}  // namespace dplearn

#endif  // DPLEARN_OBS_METRICS_H_
