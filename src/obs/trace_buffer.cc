#include "obs/trace_buffer.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "obs/json_writer.h"

namespace dplearn {
namespace obs {
namespace {

std::size_t RingCapacity() {
  static const std::size_t capacity = [] {
    const char* env = std::getenv("DPLEARN_TRACE_BUFFER_CAP");
    if (env != nullptr && *env != '\0') {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed >= 64) return static_cast<std::size_t>(parsed);
    }
    return static_cast<std::size_t>(16384);
  }();
  return capacity;
}

std::atomic<bool>& EnabledFlag() {
  // Setting DPLEARN_TRACE_FILE implies "record spans": the reporter that
  // will export them switches tracing on the same way (telemetry_reporter).
  static std::atomic<bool> flag([] {
    const char* env = std::getenv("DPLEARN_TRACE_FILE");
    return env != nullptr && *env != '\0';
  }());
  return flag;
}

std::atomic<std::uint64_t>& Generation() {
  static std::atomic<std::uint64_t> generation{1};
  return generation;
}

/// One thread's span ring. The owning thread is the only producer; readers
/// (CollectSpanRecords, from any thread) see a consistent prefix through
/// the acquire-load of head_ and tolerate torn slots on producer wrap (all
/// slot fields are relaxed atomics, so a tear is a wrong value, never UB or
/// a TSan race).
class SpanRing {
 public:
  explicit SpanRing(std::uint32_t thread_index)
      : thread_index_(thread_index),
        capacity_(RingCapacity()),
        slots_(new Slot[RingCapacity()]) {}

  void Push(const char* name, std::uint64_t span_id, std::uint64_t parent_id,
            double start_us, double dur_us) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    Slot& slot = slots_[head % capacity_];
    slot.name.store(name, std::memory_order_relaxed);
    slot.span_id.store(span_id, std::memory_order_relaxed);
    slot.parent_id.store(parent_id, std::memory_order_relaxed);
    slot.start_us.store(start_us, std::memory_order_relaxed);
    slot.dur_us.store(dur_us, std::memory_order_relaxed);
    slot.generation.store(Generation().load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    head_.store(head + 1, std::memory_order_release);
  }

  void Collect(std::uint64_t generation, std::vector<SpanRecord>* out) const {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t n = std::min<std::uint64_t>(head, capacity_);
    for (std::uint64_t i = head - n; i < head; ++i) {
      const Slot& slot = slots_[i % capacity_];
      if (slot.generation.load(std::memory_order_relaxed) != generation) continue;
      SpanRecord record;
      record.name = slot.name.load(std::memory_order_relaxed);
      record.span_id = slot.span_id.load(std::memory_order_relaxed);
      record.parent_id = slot.parent_id.load(std::memory_order_relaxed);
      record.thread_index = thread_index_;
      record.start_us = slot.start_us.load(std::memory_order_relaxed);
      record.dur_us = slot.dur_us.load(std::memory_order_relaxed);
      if (record.name == nullptr || !(record.dur_us >= 0.0) ||
          !(record.start_us >= 0.0)) {
        continue;  // torn or never-written slot
      }
      out->push_back(record);
    }
  }

  std::uint64_t recorded() const { return head_.load(std::memory_order_relaxed); }
  std::uint32_t thread_index() const { return thread_index_; }

 private:
  struct Slot {
    std::atomic<const char*> name{nullptr};
    std::atomic<std::uint64_t> span_id{0};
    std::atomic<std::uint64_t> parent_id{0};
    std::atomic<std::uint64_t> generation{0};
    std::atomic<double> start_us{-1.0};
    std::atomic<double> dur_us{-1.0};
  };

  const std::uint32_t thread_index_;
  const std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};
};

std::mutex& RegistryMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

/// All rings ever created, leaked intentionally: records must survive their
/// producer thread (pool workers are joined — or leaked — at process exit,
/// and the exporter runs from an atexit hook).
std::vector<SpanRing*>& Rings() {
  static std::vector<SpanRing*>* rings = new std::vector<SpanRing*>();
  return *rings;
}

SpanRing* ThisThreadRing() {
  thread_local SpanRing* ring = nullptr;
  if (ring == nullptr) {
    std::lock_guard<std::mutex> lock(RegistryMutex());
    ring = new SpanRing(static_cast<std::uint32_t>(Rings().size()));
    Rings().push_back(ring);
  }
  return ring;
}

}  // namespace

bool TraceBufferEnabled() {
  return EnabledFlag().load(std::memory_order_relaxed);
}

void SetTraceBufferEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

double TraceNowMicros() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                   epoch)
      .count();
}

void RecordSpan(const char* name, std::uint64_t span_id, std::uint64_t parent_id,
                double start_us, double dur_us) {
  ThisThreadRing()->Push(name, span_id, parent_id, start_us, dur_us);
}

TraceBufferStats GetTraceBufferStats() {
  TraceBufferStats stats;
  stats.capacity = RingCapacity();
  std::vector<SpanRing*> rings;
  {
    std::lock_guard<std::mutex> lock(RegistryMutex());
    rings = Rings();
  }
  stats.threads = rings.size();
  const std::uint64_t generation = Generation().load(std::memory_order_relaxed);
  std::vector<SpanRecord> scratch;
  for (const SpanRing* ring : rings) {
    stats.recorded += ring->recorded();
    scratch.clear();
    ring->Collect(generation, &scratch);
    stats.retained += scratch.size();
  }
  return stats;
}

std::vector<SpanRecord> CollectSpanRecords() {
  std::vector<SpanRing*> rings;
  {
    std::lock_guard<std::mutex> lock(RegistryMutex());
    rings = Rings();
  }
  const std::uint64_t generation = Generation().load(std::memory_order_relaxed);
  std::vector<SpanRecord> records;
  for (const SpanRing* ring : rings) ring->Collect(generation, &records);
  std::sort(records.begin(), records.end(), [](const SpanRecord& a, const SpanRecord& b) {
    if (a.start_us != b.start_us) return a.start_us < b.start_us;
    if (a.dur_us != b.dur_us) return a.dur_us > b.dur_us;  // parents first
    return a.span_id < b.span_id;
  });
  return records;
}

void ClearTraceBuffers() {
  Generation().fetch_add(1, std::memory_order_relaxed);
}

std::string ChromeTraceJson() {
  const std::vector<SpanRecord> all = CollectSpanRecords();

  // Group per thread; `all` is globally start-sorted, so each per-thread
  // list stays sorted (parents before children by the dur tiebreak).
  std::uint32_t max_tid = 0;
  for (const SpanRecord& r : all) max_tid = std::max(max_tid, r.thread_index);
  std::vector<std::vector<SpanRecord>> by_thread(all.empty() ? 0 : max_tid + 1);
  for (const SpanRecord& r : all) by_thread[r.thread_index].push_back(r);

  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").Value("ms");
  w.Key("traceEvents").BeginArray();

  const auto emit_meta = [&w](std::uint32_t tid) {
    w.BeginObject();
    w.Key("name").Value("thread_name");
    w.Key("ph").Value("M");
    w.Key("pid").Value(std::uint64_t{1});
    w.Key("tid").Value(static_cast<std::uint64_t>(tid));
    w.Key("args").BeginObject();
    w.Key("name").Value(tid == 0 ? "dplearn/main" : "dplearn/worker");
    w.EndObject();
    w.EndObject();
  };
  const auto emit_span_event =
      [&w](char ph, const SpanRecord& r, double ts) {
        w.BeginObject();
        w.Key("name").Value(r.name);
        w.Key("cat").Value("span");
        w.Key("ph").Value(ph == 'B' ? "B" : "E");
        w.Key("ts").Value(ts);
        w.Key("pid").Value(std::uint64_t{1});
        w.Key("tid").Value(static_cast<std::uint64_t>(r.thread_index));
        w.Key("args").BeginObject();
        w.Key("span_id").Value(r.span_id);
        w.Key("parent_id").Value(r.parent_id);
        w.EndObject();
        w.EndObject();
      };

  for (std::uint32_t tid = 0; tid < by_thread.size(); ++tid) {
    const std::vector<SpanRecord>& records = by_thread[tid];
    if (records.empty()) continue;
    emit_meta(tid);
    // Stack-nest the (possibly torn, possibly clock-granular) intervals
    // into a well-formed B/E sequence: per thread, timestamps never
    // decrease and every B has a matching E with LIFO discipline.
    struct Open {
      SpanRecord record;
      double end_us;
    };
    std::vector<Open> stack;
    double last_ts = 0.0;
    for (const SpanRecord& r : records) {
      double start = std::max(r.start_us, last_ts);
      double end = r.start_us + std::max(r.dur_us, 0.0);
      while (!stack.empty() && stack.back().end_us <= start) {
        const double ts = std::max(stack.back().end_us, last_ts);
        emit_span_event('E', stack.back().record, ts);
        last_ts = ts;
        stack.pop_back();
      }
      if (!stack.empty()) end = std::min(end, stack.back().end_us);
      if (end < start) end = start;
      emit_span_event('B', r, start);
      last_ts = start;
      stack.push_back({r, end});
    }
    while (!stack.empty()) {
      const double ts = std::max(stack.back().end_us, last_ts);
      emit_span_event('E', stack.back().record, ts);
      last_ts = ts;
      stack.pop_back();
    }
  }

  w.EndArray();
  w.EndObject();
  return w.str();
}

Status WriteChromeTrace(const std::string& path) {
  const std::string json = ChromeTraceJson();
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "w");
  if (file == nullptr) {
    return UnavailableError("WriteChromeTrace: cannot open '" + tmp + "'");
  }
  const bool wrote = std::fwrite(json.data(), 1, json.size(), file) == json.size();
  const bool closed = std::fclose(file) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return UnavailableError("WriteChromeTrace: write failed for '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return UnavailableError("WriteChromeTrace: rename to '" + path + "' failed");
  }
  return Status::Ok();
}

}  // namespace obs
}  // namespace dplearn
