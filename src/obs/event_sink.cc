#include "obs/event_sink.h"

#include <atomic>

#include "obs/config.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "robustness/failpoint.h"
#include "robustness/retry.h"
#include "util/logging.h"

namespace dplearn {
namespace obs {

std::string Event::ToJsonLine() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("type").Value(type);
  w.Key("name").Value(name);
  for (const auto& [key, value] : fields) {
    w.Key(key);
    switch (value.kind) {
      case EventValue::Kind::kString: w.Value(value.string_value); break;
      case EventValue::Kind::kNumber: w.Value(value.number_value); break;
      case EventValue::Kind::kInt: w.Value(value.int_value); break;
      case EventValue::Kind::kBool: w.Value(value.bool_value); break;
    }
  }
  w.EndObject();
  return w.str();
}

void InMemorySink::Emit(const Event& event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(event);
}

std::vector<Event> InMemorySink::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::size_t InMemorySink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void InMemorySink::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

StatusOr<std::unique_ptr<JsonlFileSink>> JsonlFileSink::Open(const std::string& path) {
  std::FILE* file = nullptr;
  robustness::RetryPolicy retry;
  const Status status = retry.Run([&file, &path] {
    DPLEARN_RETURN_IF_ERROR(robustness::Inject("sink.open"));
    file = std::fopen(path.c_str(), "a");
    if (file == nullptr) {
      return UnavailableError("JsonlFileSink: cannot open '" + path + "'");
    }
    return Status::Ok();
  });
  if (!status.ok()) return status;
  return std::unique_ptr<JsonlFileSink>(new JsonlFileSink(file, path));
}

JsonlFileSink::~JsonlFileSink() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
}

Status JsonlFileSink::WriteLineLocked(const std::string& line) {
  DPLEARN_RETURN_IF_ERROR(robustness::Inject("sink.write"));
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fputc('\n', file_) == EOF) {
    std::clearerr(file_);
    return UnavailableError("JsonlFileSink: write failed for '" + path_ + "'");
  }
  std::fflush(file_);
  return Status::Ok();
}

void JsonlFileSink::Emit(const Event& event) {
  const std::string line = event.ToJsonLine();
  std::lock_guard<std::mutex> lock(mu_);
  robustness::RetryPolicy retry;
  const Status status =
      retry.Run([this, &line] { return WriteLineLocked(line); });
  if (!status.ok()) {
    // Drop-and-count: a dead sink must not take the pipeline down. A real
    // short write may have left a partial line; JSONL readers skip it, the
    // same way they skip the tail of a crashed process.
    dropped_events_.fetch_add(1, std::memory_order_relaxed);
    if (MetricsEnabled()) {
      static Counter* const dropped = GlobalMetrics().GetCounter("sink.dropped_events");
      dropped->Increment();
    }
    DPLEARN_LOG(WARN) << "JsonlFileSink: dropped event after " << retry.last_attempts()
                      << " attempts: " << status;
  }
}

void JsonlFileSink::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fflush(file_);
}

namespace {

std::mutex& SinksMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

std::vector<EventSink*>& Sinks() {
  static std::vector<EventSink*>* sinks = new std::vector<EventSink*>();
  return *sinks;
}

std::atomic<int>& SinkCount() {
  static std::atomic<int> count{0};
  return count;
}

}  // namespace

void AddGlobalSink(EventSink* sink) {
  if (sink == nullptr) return;
  std::lock_guard<std::mutex> lock(SinksMutex());
  Sinks().push_back(sink);
  SinkCount().store(static_cast<int>(Sinks().size()), std::memory_order_relaxed);
}

void RemoveGlobalSink(EventSink* sink) {
  std::lock_guard<std::mutex> lock(SinksMutex());
  auto& sinks = Sinks();
  for (auto it = sinks.begin(); it != sinks.end(); ++it) {
    if (*it == sink) {
      sinks.erase(it);
      break;
    }
  }
  SinkCount().store(static_cast<int>(sinks.size()), std::memory_order_relaxed);
}

bool HasGlobalSinks() {
  return SinkCount().load(std::memory_order_relaxed) > 0;
}

void EmitEvent(const Event& event) {
  if (!HasGlobalSinks()) return;
  // Copy the list so a sink emitting re-entrantly (or another thread
  // registering) cannot invalidate the iteration.
  std::vector<EventSink*> sinks;
  {
    std::lock_guard<std::mutex> lock(SinksMutex());
    sinks = Sinks();
  }
  for (EventSink* sink : sinks) sink->Emit(event);
}

}  // namespace obs
}  // namespace dplearn
