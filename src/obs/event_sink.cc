#include "obs/event_sink.h"

#include <atomic>

#include "obs/json_writer.h"

namespace dplearn {
namespace obs {

std::string Event::ToJsonLine() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("type").Value(type);
  w.Key("name").Value(name);
  for (const auto& [key, value] : fields) {
    w.Key(key);
    switch (value.kind) {
      case EventValue::Kind::kString: w.Value(value.string_value); break;
      case EventValue::Kind::kNumber: w.Value(value.number_value); break;
      case EventValue::Kind::kInt: w.Value(value.int_value); break;
      case EventValue::Kind::kBool: w.Value(value.bool_value); break;
    }
  }
  w.EndObject();
  return w.str();
}

void InMemorySink::Emit(const Event& event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(event);
}

std::vector<Event> InMemorySink::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::size_t InMemorySink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void InMemorySink::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

StatusOr<std::unique_ptr<JsonlFileSink>> JsonlFileSink::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "a");
  if (file == nullptr) {
    return InternalError("JsonlFileSink: cannot open '" + path + "'");
  }
  return std::unique_ptr<JsonlFileSink>(new JsonlFileSink(file, path));
}

JsonlFileSink::~JsonlFileSink() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
}

void JsonlFileSink::Emit(const Event& event) {
  const std::string line = event.ToJsonLine();
  std::lock_guard<std::mutex> lock(mu_);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
}

void JsonlFileSink::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fflush(file_);
}

namespace {

std::mutex& SinksMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

std::vector<EventSink*>& Sinks() {
  static std::vector<EventSink*>* sinks = new std::vector<EventSink*>();
  return *sinks;
}

std::atomic<int>& SinkCount() {
  static std::atomic<int> count{0};
  return count;
}

}  // namespace

void AddGlobalSink(EventSink* sink) {
  if (sink == nullptr) return;
  std::lock_guard<std::mutex> lock(SinksMutex());
  Sinks().push_back(sink);
  SinkCount().store(static_cast<int>(Sinks().size()), std::memory_order_relaxed);
}

void RemoveGlobalSink(EventSink* sink) {
  std::lock_guard<std::mutex> lock(SinksMutex());
  auto& sinks = Sinks();
  for (auto it = sinks.begin(); it != sinks.end(); ++it) {
    if (*it == sink) {
      sinks.erase(it);
      break;
    }
  }
  SinkCount().store(static_cast<int>(sinks.size()), std::memory_order_relaxed);
}

bool HasGlobalSinks() {
  return SinkCount().load(std::memory_order_relaxed) > 0;
}

void EmitEvent(const Event& event) {
  if (!HasGlobalSinks()) return;
  // Copy the list so a sink emitting re-entrantly (or another thread
  // registering) cannot invalidate the iteration.
  std::vector<EventSink*> sinks;
  {
    std::lock_guard<std::mutex> lock(SinksMutex());
    sinks = Sinks();
  }
  for (EventSink* sink : sinks) sink->Emit(event);
}

}  // namespace obs
}  // namespace dplearn
