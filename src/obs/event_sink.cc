#include "obs/event_sink.h"

#include <atomic>
#include <cstdlib>

#include "obs/config.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "robustness/failpoint.h"
#include "robustness/retry.h"
#include "util/logging.h"

namespace dplearn {
namespace obs {

std::string Event::ToJsonLine() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("type").Value(type);
  w.Key("name").Value(name);
  for (const auto& [key, value] : fields) {
    w.Key(key);
    switch (value.kind) {
      case EventValue::Kind::kString: w.Value(value.string_value); break;
      case EventValue::Kind::kNumber: w.Value(value.number_value); break;
      case EventValue::Kind::kInt: w.Value(value.int_value); break;
      case EventValue::Kind::kBool: w.Value(value.bool_value); break;
    }
  }
  w.EndObject();
  return w.str();
}

void InMemorySink::Emit(const Event& event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(event);
}

std::vector<Event> InMemorySink::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::size_t InMemorySink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void InMemorySink::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

namespace {

std::uint64_t SinkFlushEvery() {
  static const std::uint64_t every = [] {
    const char* env = std::getenv("DPLEARN_SINK_FLUSH_EVERY");
    if (env != nullptr && *env != '\0') {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed >= 1) return static_cast<std::uint64_t>(parsed);
    }
    return std::uint64_t{32};
  }();
  return every;
}

}  // namespace

JsonlFileSink::JsonlFileSink(std::FILE* file, std::string path)
    : file_(file), path_(std::move(path)), flush_every_(SinkFlushEvery()) {}

StatusOr<std::unique_ptr<JsonlFileSink>> JsonlFileSink::Open(const std::string& path) {
  std::FILE* file = nullptr;
  robustness::RetryPolicy retry;
  const Status status = retry.Run([&file, &path] {
    DPLEARN_RETURN_IF_ERROR(robustness::Inject("sink.open"));
    file = std::fopen(path.c_str(), "a");
    if (file == nullptr) {
      return UnavailableError("JsonlFileSink: cannot open '" + path + "'");
    }
    return Status::Ok();
  });
  if (!status.ok()) return status;
  return std::unique_ptr<JsonlFileSink>(new JsonlFileSink(file, path));
}

JsonlFileSink::~JsonlFileSink() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    // Destructor flush: without it, up to flush_every_-1 buffered events
    // would be lost on fclose of a sink whose last batch never filled.
    if (pending_lines_ > 0) FlushWithRetryLocked();
    std::fclose(file_);
  }
}

Status JsonlFileSink::WriteLineLocked(const std::string& line) {
  DPLEARN_RETURN_IF_ERROR(robustness::Inject("sink.write"));
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fputc('\n', file_) == EOF) {
    std::clearerr(file_);
    return UnavailableError("JsonlFileSink: write failed for '" + path_ + "'");
  }
  return Status::Ok();
}

Status JsonlFileSink::FlushLocked() {
  DPLEARN_RETURN_IF_ERROR(robustness::Inject("sink.flush"));
  if (std::fflush(file_) != 0) {
    std::clearerr(file_);
    return UnavailableError("JsonlFileSink: flush failed for '" + path_ + "'");
  }
  return Status::Ok();
}

void JsonlFileSink::FlushWithRetryLocked() {
  robustness::RetryPolicy retry;
  const Status status = retry.Run([this] { return FlushLocked(); });
  if (status.ok()) {
    pending_lines_ = 0;
    return;
  }
  // Count-and-carry: the lines stay in the stdio buffer and ride along to
  // the next flush attempt — a transient flush outage delays durability, it
  // does not lose events.
  flush_failures_.fetch_add(1, std::memory_order_relaxed);
  if (MetricsEnabled()) {
    static Counter* const failures = GlobalMetrics().GetCounter("sink.flush_failures");
    failures->Increment();
  }
  DPLEARN_LOG(WARN) << "JsonlFileSink: flush failed after " << retry.last_attempts()
                    << " attempts: " << status;
}

void JsonlFileSink::Emit(const Event& event) {
  const std::string line = event.ToJsonLine();
  std::lock_guard<std::mutex> lock(mu_);
  robustness::RetryPolicy retry;
  const Status status =
      retry.Run([this, &line] { return WriteLineLocked(line); });
  if (!status.ok()) {
    // Drop-and-count: a dead sink must not take the pipeline down. A real
    // short write may have left a partial line; JSONL readers skip it, the
    // same way they skip the tail of a crashed process.
    dropped_events_.fetch_add(1, std::memory_order_relaxed);
    if (MetricsEnabled()) {
      static Counter* const dropped = GlobalMetrics().GetCounter("sink.dropped_events");
      dropped->Increment();
    }
    DPLEARN_LOG(WARN) << "JsonlFileSink: dropped event after " << retry.last_attempts()
                      << " attempts: " << status;
    return;
  }
  if (++pending_lines_ >= flush_every_) FlushWithRetryLocked();
}

void JsonlFileSink::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  FlushWithRetryLocked();
}

namespace {

std::mutex& SinksMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

std::vector<EventSink*>& Sinks() {
  static std::vector<EventSink*>* sinks = new std::vector<EventSink*>();
  return *sinks;
}

std::atomic<int>& SinkCount() {
  static std::atomic<int> count{0};
  return count;
}

thread_local int t_sink_pause_depth = 0;

}  // namespace

void AddGlobalSink(EventSink* sink) {
  if (sink == nullptr) return;
  std::lock_guard<std::mutex> lock(SinksMutex());
  Sinks().push_back(sink);
  SinkCount().store(static_cast<int>(Sinks().size()), std::memory_order_relaxed);
}

void RemoveGlobalSink(EventSink* sink) {
  std::lock_guard<std::mutex> lock(SinksMutex());
  auto& sinks = Sinks();
  for (auto it = sinks.begin(); it != sinks.end(); ++it) {
    if (*it == sink) {
      sinks.erase(it);
      break;
    }
  }
  SinkCount().store(static_cast<int>(sinks.size()), std::memory_order_relaxed);
}

bool HasGlobalSinks() {
  if (t_sink_pause_depth > 0) return false;
  return SinkCount().load(std::memory_order_relaxed) > 0;
}

ScopedSinkPause::ScopedSinkPause() { ++t_sink_pause_depth; }

ScopedSinkPause::~ScopedSinkPause() { --t_sink_pause_depth; }

void EmitEvent(const Event& event) {
  if (!HasGlobalSinks()) return;
  // Copy the list so a sink emitting re-entrantly (or another thread
  // registering) cannot invalidate the iteration.
  std::vector<EventSink*> sinks;
  {
    std::lock_guard<std::mutex> lock(SinksMutex());
    sinks = Sinks();
  }
  for (EventSink* sink : sinks) sink->Emit(event);
}

}  // namespace obs
}  // namespace dplearn
