#include "obs/json_writer.h"

#include <cmath>
#include <cstdio>

namespace dplearn {
namespace obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c) & 0xff);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already emitted its comma
  }
  if (!first_in_container_.empty()) {
    if (!first_in_container_.back()) out_ += ',';
    first_in_container_.back() = false;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  first_in_container_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  first_in_container_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  first_in_container_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  first_in_container_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  if (!first_in_container_.empty()) {
    if (!first_in_container_.back()) out_ += ',';
    first_in_container_.back() = false;
  }
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Value(const char* value) {
  return Value(std::string_view(value));
}

JsonWriter& JsonWriter::Value(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";  // JSON has no NaN/Inf
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Value(std::uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Value(std::int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Value(int value) { return Value(static_cast<std::int64_t>(value)); }

JsonWriter& JsonWriter::Value(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  BeforeValue();
  out_ += json;
  return *this;
}

}  // namespace obs
}  // namespace dplearn
