#include "obs/metrics.h"

#include <algorithm>

#include "obs/json_writer.h"
#include "util/logging.h"

namespace dplearn {
namespace obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      buckets_(new std::atomic<std::uint64_t>[upper_bounds_.size() + 1]) {
  for (std::size_t i = 0; i <= upper_bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  // First bound >= value; past-the-end is the overflow bucket.
  const auto it = std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), value);
  const std::size_t bucket = static_cast<std::size_t>(it - upper_bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_, value);
  hdr_.Record(value);
}

Histogram::Snapshot Histogram::GetSnapshot() const {
  Snapshot snap;
  snap.upper_bounds = upper_bounds_;
  snap.bucket_counts.resize(upper_bounds_.size() + 1);
  for (std::size_t i = 0; i <= upper_bounds_.size(); ++i) {
    snap.bucket_counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.hdr = hdr_.GetSnapshot();
  return snap;
}

void Histogram::Reset() {
  for (std::size_t i = 0; i <= upper_bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  hdr_.Reset();
}

const std::vector<double>& DefaultLatencyBucketsUs() {
  static const std::vector<double> buckets = {
      1,     2,     5,     10,     20,     50,     100,    200,    500,
      1e3,   2e3,   5e3,   1e4,    2e4,    5e4,    1e5,    2e5,    5e5,
      1e6,   2e6,   5e6};
  return buckets;
}

void MetricsRegistry::CheckNameFree(const std::string& name,
                                    const void* except_table) const {
  // mu_ is held by the caller.
  if (except_table != &counters_) {
    DPLEARN_CHECK(counters_.find(name) == counters_.end())
        << "metric '" << name << "' already registered as a counter";
  }
  if (except_table != &gauges_) {
    DPLEARN_CHECK(gauges_.find(name) == gauges_.end())
        << "metric '" << name << "' already registered as a gauge";
  }
  if (except_table != &histograms_) {
    DPLEARN_CHECK(histograms_.find(name) == histograms_.end())
        << "metric '" << name << "' already registered as a histogram";
  }
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    CheckNameFree(name, &counters_);
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    CheckNameFree(name, &gauges_);
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    CheckNameFree(name, &histograms_);
    DPLEARN_CHECK(!upper_bounds.empty()) << "histogram '" << name << "' needs buckets";
    DPLEARN_CHECK(std::is_sorted(upper_bounds.begin(), upper_bounds.end()) &&
                  std::adjacent_find(upper_bounds.begin(), upper_bounds.end()) ==
                      upper_bounds.end())
        << "histogram '" << name << "' bounds must be strictly increasing";
    it = histograms_
             .emplace(name, std::unique_ptr<Histogram>(new Histogram(upper_bounds)))
             .first;
  }
  return it->second.get();
}

MetricsRegistry::Snapshot MetricsRegistry::GetSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->Value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->Value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace_back(name, histogram->GetSnapshot());
  }
  return snap;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

std::string MetricsRegistry::ExportText() const {
  const Snapshot snap = GetSnapshot();
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    out += "counter " + name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    out += "gauge " + name + " " + buf + "\n";
  }
  for (const auto& [name, hist] : snap.histograms) {
    char buf[192];
    std::snprintf(buf, sizeof(buf), "%llu mean=%.6g p50=%.6g p99=%.6g p999=%.6g",
                  static_cast<unsigned long long>(hist.count), hist.Mean(),
                  hist.Quantile(0.5), hist.Quantile(0.99), hist.Quantile(0.999));
    out += "histogram " + name + " count=" + buf + "\n";
  }
  return out;
}

std::string MetricsRegistry::ExportJson() const {
  const Snapshot snap = GetSnapshot();
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, value] : snap.counters) w.Key(name).Value(value);
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, value] : snap.gauges) w.Key(name).Value(value);
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, hist] : snap.histograms) {
    w.Key(name).BeginObject();
    w.Key("count").Value(hist.count);
    w.Key("sum").Value(hist.sum);
    w.Key("mean").Value(hist.Mean());
    // Tail shape from the HDR layer: exact extrema, log-bucketed quantiles
    // (relative error <= 1/64; see obs/hdr_histogram.h).
    w.Key("min").Value(hist.Min());
    w.Key("max").Value(hist.Max());
    w.Key("p50").Value(hist.Quantile(0.5));
    w.Key("p90").Value(hist.Quantile(0.9));
    w.Key("p99").Value(hist.Quantile(0.99));
    w.Key("p999").Value(hist.Quantile(0.999));
    w.Key("upper_bounds").BeginArray();
    for (const double b : hist.upper_bounds) w.Value(b);
    w.EndArray();
    w.Key("bucket_counts").BeginArray();
    for (const std::uint64_t c : hist.bucket_counts) w.Value(c);
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

}  // namespace obs
}  // namespace dplearn
