#include "obs/trace.h"

#include <atomic>
#include <string>
#include <utility>
#include <vector>

#include "obs/config.h"
#include "obs/event_sink.h"
#include "obs/metrics.h"
#include "obs/trace_buffer.h"

namespace dplearn {
namespace obs {
namespace {

/// One open frame on a thread's span stack: a local TraceSpan, or a parent
/// adopted from another thread via ScopedTraceContext.
struct Frame {
  const char* name;
  std::uint64_t id;
  bool adopted;
};

thread_local std::vector<Frame> t_span_stack;

std::uint64_t NextSpanId() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Span-close latency histogram, cached per thread keyed by the name
/// pointer: span names are string literals, so the address is a stable key
/// and the close path skips the string concatenation and registry lock
/// after a name's first close on each thread. Distinct literals with equal
/// text get separate cache entries but resolve to the same histogram.
Histogram* HistogramForSpan(const char* name) {
  thread_local std::vector<std::pair<const char*, Histogram*>> t_cache;
  for (const auto& entry : t_cache) {
    if (entry.first == name) return entry.second;
  }
  Histogram* histogram = GlobalMetrics().GetHistogram(
      std::string("span.") + name + ".us", DefaultLatencyBucketsUs());
  t_cache.emplace_back(name, histogram);
  return histogram;
}

}  // namespace

TraceContext TraceContext::Capture() {
  TraceContext ctx;
  if (!TracingEnabled() || t_span_stack.empty()) return ctx;
  ctx.span_id = t_span_stack.back().id;
  ctx.name = t_span_stack.back().name;
  return ctx;
}

ScopedTraceContext::ScopedTraceContext(const TraceContext& context) {
  if (!TracingEnabled() || context.span_id == 0) return;
  t_span_stack.push_back(Frame{context.name, context.span_id, /*adopted=*/true});
  adopted_ = true;
}

ScopedTraceContext::~ScopedTraceContext() {
  if (adopted_) t_span_stack.pop_back();
}

TraceSpan::TraceSpan(const char* name) : name_(name) {
  if (!TracingEnabled()) return;
  active_ = true;
  span_id_ = NextSpanId();
  if (!t_span_stack.empty()) {
    parent_ = t_span_stack.back().name;
    parent_id_ = t_span_stack.back().id;
  }
  t_span_stack.push_back(Frame{name_, span_id_, /*adopted=*/false});
  start_trace_us_ = TraceBufferEnabled() ? TraceNowMicros() : -1.0;
  start_ = std::chrono::steady_clock::now();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  const double us = ElapsedMicros();
  t_span_stack.pop_back();
  const int depth = static_cast<int>(t_span_stack.size());
  if (start_trace_us_ >= 0.0 && TraceBufferEnabled()) {
    RecordSpan(name_, span_id_, parent_id_, start_trace_us_, us);
  }
  HistogramForSpan(name_)->Observe(us);
  if (HasGlobalSinks()) {
    Event event;
    event.type = "span";
    event.name = name_;
    event.With("us", EventValue::Num(us))
        .With("depth", EventValue::Int(depth))
        .With("span_id", EventValue::Int(static_cast<std::int64_t>(span_id_)))
        .With("parent_id", EventValue::Int(static_cast<std::int64_t>(parent_id_)));
    if (parent_ != nullptr) event.With("parent", EventValue::Str(parent_));
    EmitEvent(event);
  }
}

double TraceSpan::ElapsedMicros() const {
  if (!active_) return 0.0;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  return std::chrono::duration<double, std::micro>(elapsed).count();
}

int TraceSpan::CurrentDepth() { return static_cast<int>(t_span_stack.size()); }

const char* TraceSpan::CurrentName() {
  return t_span_stack.empty() ? nullptr : t_span_stack.back().name;
}

}  // namespace obs
}  // namespace dplearn
