#include "obs/trace.h"

#include <string>
#include <vector>

#include "obs/config.h"
#include "obs/event_sink.h"
#include "obs/metrics.h"

namespace dplearn {
namespace obs {
namespace {

thread_local std::vector<const char*> t_span_stack;

}  // namespace

TraceSpan::TraceSpan(const char* name) : name_(name) {
  if (!TracingEnabled()) return;
  active_ = true;
  parent_ = t_span_stack.empty() ? nullptr : t_span_stack.back();
  t_span_stack.push_back(name_);
  start_ = std::chrono::steady_clock::now();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  const double us = ElapsedMicros();
  t_span_stack.pop_back();
  const int depth = static_cast<int>(t_span_stack.size());
  Histogram* histogram = GlobalMetrics().GetHistogram(
      std::string("span.") + name_ + ".us", DefaultLatencyBucketsUs());
  histogram->Observe(us);
  if (HasGlobalSinks()) {
    Event event;
    event.type = "span";
    event.name = name_;
    event.With("us", EventValue::Num(us)).With("depth", EventValue::Int(depth));
    if (parent_ != nullptr) event.With("parent", EventValue::Str(parent_));
    EmitEvent(event);
  }
}

double TraceSpan::ElapsedMicros() const {
  if (!active_) return 0.0;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  return std::chrono::duration<double, std::micro>(elapsed).count();
}

int TraceSpan::CurrentDepth() { return static_cast<int>(t_span_stack.size()); }

const char* TraceSpan::CurrentName() {
  return t_span_stack.empty() ? nullptr : t_span_stack.back();
}

}  // namespace obs
}  // namespace dplearn
