#include "obs/config.h"

#include <atomic>
#include <cstdlib>

namespace dplearn {
namespace obs {
namespace {

bool EnvFlag(const char* name, bool default_value) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return default_value;
  const char c = value[0];
  return !(c == '0' || c == 'f' || c == 'F' || c == 'n' || c == 'N');
}

std::atomic<bool>& MetricsFlag() {
  static std::atomic<bool> flag(EnvFlag("DPLEARN_METRICS", true));
  return flag;
}

std::atomic<bool>& TracingFlag() {
  static std::atomic<bool> flag(EnvFlag("DPLEARN_TRACE", false));
  return flag;
}

std::atomic<bool>& AuditFlag() {
  static std::atomic<bool> flag(EnvFlag("DPLEARN_AUDIT", false));
  return flag;
}

}  // namespace

bool MetricsEnabled() { return MetricsFlag().load(std::memory_order_relaxed); }
void SetMetricsEnabled(bool enabled) {
  MetricsFlag().store(enabled, std::memory_order_relaxed);
}

bool TracingEnabled() { return TracingFlag().load(std::memory_order_relaxed); }
void SetTracingEnabled(bool enabled) {
  TracingFlag().store(enabled, std::memory_order_relaxed);
}

bool AuditEnabled() { return AuditFlag().load(std::memory_order_relaxed); }
void SetAuditEnabled(bool enabled) {
  AuditFlag().store(enabled, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace dplearn
