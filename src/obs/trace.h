#ifndef DPLEARN_OBS_TRACE_H_
#define DPLEARN_OBS_TRACE_H_

#include <chrono>
#include <cstdint>

namespace dplearn {
namespace obs {

/// A capturable reference to the innermost open span of some thread — the
/// handle that keeps logical parentage intact when work hops across the
/// ThreadPool. Capture() on the submitting thread, ScopedTraceContext on
/// the worker:
///
///   TraceSpan outer("sweep.cell");
///   auto ctx = TraceContext::Capture();
///   pool->Submit([ctx] {
///     ScopedTraceContext adopt(ctx);
///     TraceSpan inner("trial");   // parent == "sweep.cell", across threads
///   });
///
/// ThreadPool::Submit does exactly this automatically when tracing is on,
/// so library code normally never touches TraceContext directly. span_id 0
/// means "no active span" (adopting it is a no-op). `name` follows
/// TraceSpan's lifetime rule: a string literal or otherwise outliving every
/// adopter.
struct TraceContext {
  std::uint64_t span_id = 0;
  const char* name = nullptr;

  /// The calling thread's innermost open span, or an empty context when the
  /// stack is empty or tracing is disabled.
  static TraceContext Capture();
};

/// Pushes an adopted parent frame for `context` onto this thread's span
/// stack (no-op for an empty context or with tracing disabled), so spans
/// opened in this scope report the capturing span as their parent — id and
/// name — exactly as if they had been opened on the capturing thread.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& context);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

  bool adopted() const { return adopted_; }

 private:
  bool adopted_ = false;
};

/// RAII scoped tracer. When tracing is enabled (obs::TracingEnabled()) the
/// constructor assigns a process-unique span id, links the span to the
/// innermost open frame (a local span or an adopted TraceContext) and
/// pushes it onto the per-thread span stack; the destructor records the
/// elapsed wall time into the duration histogram `span.<name>.us` in
/// GlobalMetrics(), appends a record to this thread's trace ring buffer
/// when trace recording is on (obs/trace_buffer.h), and emits a "span"
/// event to the global sinks (if any) with the span's depth, parent name
/// and parent/span ids. When tracing is disabled the constructor is two
/// relaxed loads and the destructor a branch — cheap enough to leave in hot
/// paths unconditionally.
///
/// Spans nest lexically within a thread:
///
///   TraceSpan outer("gibbs.posterior");
///   {
///     TraceSpan inner("risk.profile");   // parent == "gibbs.posterior"
///   }
///
/// `name` must be a string literal (or otherwise outlive the span and any
/// export of its records); spans store the pointer, not a copy.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// False when tracing was disabled at construction.
  bool active() const { return active_; }
  /// Elapsed wall time so far; 0 when inactive.
  double ElapsedMicros() const;

  /// Process-unique id (monotone from 1); 0 when inactive.
  std::uint64_t span_id() const { return span_id_; }
  /// Id of the parent frame at construction — a span on this thread or an
  /// adopted TraceContext; 0 for a root span (or inactive).
  std::uint64_t parent_id() const { return parent_id_; }

  /// Depth of this thread's span stack (0 = no open span; adopted context
  /// frames count). For tests.
  static int CurrentDepth();
  /// Name of this thread's innermost open frame, or nullptr.
  static const char* CurrentName();

 private:
  const char* name_;
  const char* parent_ = nullptr;
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_id_ = 0;
  bool active_ = false;
  double start_trace_us_ = -1.0;  // trace-buffer timeline; <0 = not recording
  std::chrono::steady_clock::time_point start_;
};

/// The ISSUE-facing alias: a ScopedTimer is a TraceSpan whose only consumer
/// is the duration histogram.
using ScopedTimer = TraceSpan;

}  // namespace obs
}  // namespace dplearn

#endif  // DPLEARN_OBS_TRACE_H_
