#ifndef DPLEARN_OBS_TRACE_H_
#define DPLEARN_OBS_TRACE_H_

#include <chrono>

namespace dplearn {
namespace obs {

/// RAII scoped tracer. When tracing is enabled (obs::TracingEnabled()) the
/// constructor pushes the span onto a per-thread span stack and the
/// destructor records the elapsed wall time into the duration histogram
/// `span.<name>.us` in GlobalMetrics(), emitting a "span" event to the
/// global sinks (if any) with the span's depth and parent. When tracing is
/// disabled the constructor is two relaxed loads and the destructor a
/// branch — cheap enough to leave in hot paths unconditionally.
///
/// Spans nest lexically within a thread:
///
///   TraceSpan outer("gibbs.posterior");
///   {
///     TraceSpan inner("risk.profile");   // parent == "gibbs.posterior"
///   }
///
/// `name` must be a string literal (or otherwise outlive the span); spans
/// store the pointer, not a copy.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// False when tracing was disabled at construction.
  bool active() const { return active_; }
  /// Elapsed wall time so far; 0 when inactive.
  double ElapsedMicros() const;

  /// Depth of this thread's span stack (0 = no open span). For tests.
  static int CurrentDepth();
  /// Name of this thread's innermost open span, or nullptr.
  static const char* CurrentName();

 private:
  const char* name_;
  const char* parent_ = nullptr;
  bool active_ = false;
  std::chrono::steady_clock::time_point start_;
};

/// The ISSUE-facing alias: a ScopedTimer is a TraceSpan whose only consumer
/// is the duration histogram.
using ScopedTimer = TraceSpan;

}  // namespace obs
}  // namespace dplearn

#endif  // DPLEARN_OBS_TRACE_H_
