#ifndef DPLEARN_OBS_JSON_WRITER_H_
#define DPLEARN_OBS_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dplearn {
namespace obs {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included). Control characters become \uXXXX escapes.
std::string JsonEscape(std::string_view s);

/// A minimal streaming JSON builder: handles commas, nesting, and escaping
/// so callers only state structure. No external dependency — the repo bakes
/// its own serialization (see DESIGN.md §6). Misuse (e.g. a value with no
/// pending key inside an object) is a programming error and is not
/// diagnosed beyond producing invalid JSON; tests cover the shapes we emit.
///
///   JsonWriter w;
///   w.BeginObject().Key("id").Value("e5").Key("pass").Value(true).EndObject();
///   w.str()  =>  {"id":"e5","pass":true}
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  JsonWriter& Key(std::string_view key);

  JsonWriter& Value(std::string_view value);
  JsonWriter& Value(const char* value);
  JsonWriter& Value(double value);  // non-finite values serialize as null
  JsonWriter& Value(std::uint64_t value);
  JsonWriter& Value(std::int64_t value);
  JsonWriter& Value(int value);
  JsonWriter& Value(bool value);
  JsonWriter& Null();

  /// Splices pre-serialized JSON in value position (for embedding documents
  /// produced by other exporters). The caller guarantees validity.
  JsonWriter& Raw(std::string_view json);

  const std::string& str() const { return out_; }

 private:
  void BeforeValue();

  std::string out_;
  /// One entry per open container: true until the first element is written.
  std::vector<bool> first_in_container_;
  bool pending_key_ = false;
};

}  // namespace obs
}  // namespace dplearn

#endif  // DPLEARN_OBS_JSON_WRITER_H_
