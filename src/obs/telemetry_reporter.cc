#include "obs/telemetry_reporter.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>

#include "obs/config.h"
#include "obs/metrics.h"
#include "obs/trace_buffer.h"

namespace dplearn {
namespace obs {

TelemetryReporter::TelemetryReporter(Options options) : options_(std::move(options)) {
  options_.interval_ms = std::max(options_.interval_ms, 10);
}

TelemetryReporter::~TelemetryReporter() { Stop(); }

void TelemetryReporter::Start() {
  if (options_.metrics_path.empty() && options_.trace_path.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread(&TelemetryReporter::FlushLoop, this);
}

void TelemetryReporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) {
      // Never started (or already stopped): still honor the final-flush
      // contract so callers can rely on files being current after Stop().
      if (!stop_requested_) {
        stop_requested_ = true;
        (void)FlushNow();
      }
      return;
    }
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    running_ = false;
  }
  (void)FlushNow();
}

Status TelemetryReporter::FlushNow() {
  Status first = Status::Ok();
  if (!options_.metrics_path.empty()) {
    const Status s = WriteExpositionFile(GlobalMetrics(), options_.metrics_path);
    if (!s.ok() && first.ok()) first = s;
  }
  if (!options_.trace_path.empty()) {
    const Status s = WriteChromeTrace(options_.trace_path);
    if (!s.ok() && first.ok()) first = s;
  }
  flush_count_.fetch_add(1, std::memory_order_relaxed);
  if (!first.ok() && MetricsEnabled()) {
    static Counter* const failures =
        GlobalMetrics().GetCounter("telemetry.flush_failures");
    failures->Increment();
  }
  return first;
}

std::uint64_t TelemetryReporter::flush_count() const {
  return flush_count_.load(std::memory_order_relaxed);
}

bool TelemetryReporter::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void TelemetryReporter::FlushLoop() {
  const auto interval = std::chrono::milliseconds(options_.interval_ms);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    // Flush outside the lock so a slow disk never blocks Stop()'s request.
    lock.unlock();
    (void)FlushNow();
    lock.lock();
    cv_.wait_for(lock, interval, [this] { return stop_requested_; });
  }
}

TelemetryReporter& GlobalTelemetryReporter() {
  static TelemetryReporter* reporter = [] {
    const auto env_str = [](const char* key) -> std::string {
      const char* v = std::getenv(key);
      return (v != nullptr && *v != '\0') ? std::string(v) : std::string();
    };
    TelemetryReporter::Options options;
    options.metrics_path = env_str("DPLEARN_METRICS_FILE");
    options.trace_path = env_str("DPLEARN_TRACE_FILE");
    const std::string interval = env_str("DPLEARN_TELEMETRY_INTERVAL_MS");
    if (!interval.empty()) {
      const long parsed = std::strtol(interval.c_str(), nullptr, 10);
      if (parsed > 0) options.interval_ms = static_cast<int>(parsed);
    }
    if (!options.trace_path.empty()) {
      SetTracingEnabled(true);
      SetTraceBufferEnabled(true);
    }
    auto* r = new TelemetryReporter(std::move(options));  // never destroyed
    r->Start();
    return r;
  }();
  return *reporter;
}

void ShutdownGlobalTelemetry() { GlobalTelemetryReporter().Stop(); }

}  // namespace obs
}  // namespace dplearn
