#include "obs/audit_log.h"

#include <cmath>

#include "obs/event_sink.h"
#include "obs/json_writer.h"

namespace dplearn {
namespace obs {

void BudgetAuditLog::Record(std::string_view mechanism, double epsilon, double delta,
                            bool granted) {
  BudgetAuditEntry entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entry.sequence = entries_.size();
    entry.mechanism = std::string(mechanism);
    entry.epsilon = epsilon;
    entry.delta = delta;
    entry.granted = granted;
    if (granted) {
      cumulative_epsilon_.Add(epsilon);
      cumulative_delta_.Add(delta);
    }
    entry.cumulative_epsilon = cumulative_epsilon_.Value();
    entry.cumulative_delta = cumulative_delta_.Value();
    entries_.push_back(entry);
  }
  if (HasGlobalSinks()) {
    Event event;
    event.type = "audit";
    event.name = entry.mechanism;
    event.With("seq", EventValue::Int(static_cast<std::int64_t>(entry.sequence)))
        .With("epsilon", EventValue::Num(entry.epsilon))
        .With("delta", EventValue::Num(entry.delta))
        .With("granted", EventValue::Bool(entry.granted))
        .With("cum_epsilon", EventValue::Num(entry.cumulative_epsilon))
        .With("cum_delta", EventValue::Num(entry.cumulative_delta));
    EmitEvent(event);
  }
}

std::vector<BudgetAuditEntry> BudgetAuditLog::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

std::size_t BudgetAuditLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void BudgetAuditLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  cumulative_epsilon_.Reset();
  cumulative_delta_.Reset();
}

double BudgetAuditLog::cumulative_epsilon() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cumulative_epsilon_.Value();
}

double BudgetAuditLog::cumulative_delta() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cumulative_delta_.Value();
}

Status BudgetAuditLog::ReplayVerify() const {
  const std::vector<BudgetAuditEntry> entries = Entries();
  // Replay with the same compensated summation Record uses: the stored and
  // replayed cumulatives then agree bit-for-bit, and the 1e-9 tolerance
  // only absorbs entries written by older (uncompensated) recorders.
  KahanSum eps;
  KahanSum delta;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const BudgetAuditEntry& entry = entries[i];
    if (entry.sequence != i) {
      return InternalError("BudgetAuditLog: sequence gap at entry " + std::to_string(i));
    }
    if (entry.granted) {
      eps.Add(entry.epsilon);
      delta.Add(entry.delta);
    }
    if (std::fabs(entry.cumulative_epsilon - eps.Value()) > 1e-9 ||
        std::fabs(entry.cumulative_delta - delta.Value()) > 1e-9) {
      return InternalError("BudgetAuditLog: cumulative mismatch at entry " +
                           std::to_string(i) + " (mechanism '" + entry.mechanism + "')");
    }
  }
  return Status::Ok();
}

std::string BudgetAuditLog::ToJson() const {
  const std::vector<BudgetAuditEntry> entries = Entries();
  JsonWriter w;
  w.BeginArray();
  for (const BudgetAuditEntry& entry : entries) {
    w.BeginObject();
    w.Key("seq").Value(entry.sequence);
    w.Key("mechanism").Value(entry.mechanism);
    w.Key("epsilon").Value(entry.epsilon);
    w.Key("delta").Value(entry.delta);
    w.Key("granted").Value(entry.granted);
    w.Key("cum_epsilon").Value(entry.cumulative_epsilon);
    w.Key("cum_delta").Value(entry.cumulative_delta);
    w.EndObject();
  }
  w.EndArray();
  return w.str();
}

BudgetAuditLog& GlobalAuditLog() {
  static BudgetAuditLog* log = new BudgetAuditLog();  // never destroyed
  return *log;
}

}  // namespace obs
}  // namespace dplearn
