#include "service/protocol.h"

#include <cstring>

namespace dplearn {
namespace service {
namespace {

void AppendU8(std::string* out, std::uint8_t v) { out->push_back(static_cast<char>(v)); }

void AppendU16(std::string* out, std::uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void AppendU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void AppendU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void AppendF64(std::string* out, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

void AppendString(std::string* out, std::string_view s) {
  AppendU16(out, static_cast<std::uint16_t>(s.size()));
  out->append(s.data(), s.size());
}

/// Bounds-checked little-endian reader over a payload. Every Read* returns
/// INVALID_ARGUMENT instead of reading past the end — the single funnel
/// that makes malformed frames structurally incapable of UB.
class ByteReader {
 public:
  ByteReader(const void* data, std::size_t size)
      : data_(static_cast<const unsigned char*>(data)), size_(size) {}

  Status ReadU8(std::uint8_t* v) {
    if (pos_ + 1 > size_) return Truncated("u8");
    *v = data_[pos_++];
    return Status::Ok();
  }

  Status ReadU16(std::uint16_t* v) {
    if (pos_ + 2 > size_) return Truncated("u16");
    *v = static_cast<std::uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
    pos_ += 2;
    return Status::Ok();
  }

  Status ReadU32(std::uint32_t* v) {
    if (pos_ + 4 > size_) return Truncated("u32");
    std::uint32_t out = 0;
    for (int i = 0; i < 4; ++i) out |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    *v = out;
    return Status::Ok();
  }

  Status ReadU64(std::uint64_t* v) {
    if (pos_ + 8 > size_) return Truncated("u64");
    std::uint64_t out = 0;
    for (int i = 0; i < 8; ++i) out |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    *v = out;
    return Status::Ok();
  }

  Status ReadF64(double* v) {
    std::uint64_t bits = 0;
    DPLEARN_RETURN_IF_ERROR(ReadU64(&bits));
    std::memcpy(v, &bits, sizeof(bits));
    return Status::Ok();
  }

  Status ReadString(std::string* s, std::size_t max_bytes, const char* what) {
    std::uint16_t len = 0;
    DPLEARN_RETURN_IF_ERROR(ReadU16(&len));
    if (len > max_bytes) {
      return InvalidArgumentError(std::string("protocol: ") + what + " length " +
                                  std::to_string(len) + " exceeds limit " +
                                  std::to_string(max_bytes));
    }
    if (pos_ + len > size_) return Truncated(what);
    s->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return Status::Ok();
  }

  /// Trailing bytes after a fully parsed message are a framing bug on the
  /// peer — reject rather than silently ignore.
  Status ExpectEnd() const {
    if (pos_ != size_) {
      return InvalidArgumentError("protocol: " + std::to_string(size_ - pos_) +
                                  " trailing bytes after message");
    }
    return Status::Ok();
  }

 private:
  Status Truncated(const char* what) const {
    return InvalidArgumentError(std::string("protocol: truncated payload reading ") + what);
  }

  const unsigned char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace

Response Response::Error(const Request& request, const Status& status) {
  Response response;
  response.opcode = request.opcode;
  response.request_id = request.request_id;
  response.code = status.code();
  response.message = status.message();
  return response;
}

std::string EncodeRequest(const Request& request) {
  std::string out;
  AppendU8(&out, kProtocolVersion);
  AppendU8(&out, static_cast<std::uint8_t>(request.opcode));
  AppendU64(&out, request.request_id);
  AppendString(&out, request.tenant_id);
  switch (request.opcode) {
    case Opcode::kPing:
    case Opcode::kBudgetQuery:
    case Opcode::kReplayVerify:
      break;
    case Opcode::kRelease:
      AppendU8(&out, static_cast<std::uint8_t>(request.mechanism));
      AppendU8(&out, static_cast<std::uint8_t>(request.query));
      AppendString(&out, request.dataset);
      AppendF64(&out, request.epsilon);
      AppendF64(&out, request.delta);
      AppendU32(&out, request.count);
      break;
    case Opcode::kGibbsSample:
      AppendString(&out, request.dataset);
      AppendF64(&out, request.lambda);
      AppendU32(&out, request.count);
      break;
    case Opcode::kRegisterTenant:
      AppendF64(&out, request.epsilon);
      AppendF64(&out, request.delta);
      break;
    case Opcode::kStreamAppend:
      AppendString(&out, request.dataset);
      AppendF64(&out, request.label);
      AppendU16(&out, static_cast<std::uint16_t>(request.features.size()));
      for (const double v : request.features) AppendF64(&out, v);
      break;
  }
  return out;
}

StatusOr<Request> DecodeRequest(const void* data, std::size_t size) {
  ByteReader reader(data, size);
  std::uint8_t version = 0;
  DPLEARN_RETURN_IF_ERROR(reader.ReadU8(&version));
  if (version != kProtocolVersion) {
    return InvalidArgumentError("protocol: unsupported request version " +
                                std::to_string(version));
  }
  std::uint8_t opcode = 0;
  DPLEARN_RETURN_IF_ERROR(reader.ReadU8(&opcode));
  if (opcode < static_cast<std::uint8_t>(Opcode::kPing) ||
      opcode > static_cast<std::uint8_t>(Opcode::kStreamAppend)) {
    return InvalidArgumentError("protocol: unknown opcode " + std::to_string(opcode));
  }
  Request request;
  request.opcode = static_cast<Opcode>(opcode);
  DPLEARN_RETURN_IF_ERROR(reader.ReadU64(&request.request_id));
  DPLEARN_RETURN_IF_ERROR(reader.ReadString(&request.tenant_id, kMaxTenantIdBytes, "tenant_id"));
  switch (request.opcode) {
    case Opcode::kPing:
    case Opcode::kBudgetQuery:
    case Opcode::kReplayVerify:
      break;
    case Opcode::kRelease: {
      std::uint8_t mechanism = 0;
      std::uint8_t query = 0;
      DPLEARN_RETURN_IF_ERROR(reader.ReadU8(&mechanism));
      DPLEARN_RETURN_IF_ERROR(reader.ReadU8(&query));
      if (mechanism < static_cast<std::uint8_t>(MechanismKind::kLaplace) ||
          mechanism > static_cast<std::uint8_t>(MechanismKind::kGaussian)) {
        return InvalidArgumentError("protocol: unknown mechanism kind " +
                                    std::to_string(mechanism));
      }
      if (query < static_cast<std::uint8_t>(QueryKind::kMean) ||
          query > static_cast<std::uint8_t>(QueryKind::kCountPositive)) {
        return InvalidArgumentError("protocol: unknown query kind " + std::to_string(query));
      }
      request.mechanism = static_cast<MechanismKind>(mechanism);
      request.query = static_cast<QueryKind>(query);
      DPLEARN_RETURN_IF_ERROR(
          reader.ReadString(&request.dataset, kMaxDatasetRefBytes, "dataset"));
      DPLEARN_RETURN_IF_ERROR(reader.ReadF64(&request.epsilon));
      DPLEARN_RETURN_IF_ERROR(reader.ReadF64(&request.delta));
      DPLEARN_RETURN_IF_ERROR(reader.ReadU32(&request.count));
      break;
    }
    case Opcode::kGibbsSample:
      DPLEARN_RETURN_IF_ERROR(
          reader.ReadString(&request.dataset, kMaxDatasetRefBytes, "dataset"));
      DPLEARN_RETURN_IF_ERROR(reader.ReadF64(&request.lambda));
      DPLEARN_RETURN_IF_ERROR(reader.ReadU32(&request.count));
      break;
    case Opcode::kRegisterTenant:
      DPLEARN_RETURN_IF_ERROR(reader.ReadF64(&request.epsilon));
      DPLEARN_RETURN_IF_ERROR(reader.ReadF64(&request.delta));
      break;
    case Opcode::kStreamAppend: {
      DPLEARN_RETURN_IF_ERROR(
          reader.ReadString(&request.dataset, kMaxDatasetRefBytes, "dataset"));
      DPLEARN_RETURN_IF_ERROR(reader.ReadF64(&request.label));
      std::uint16_t dim = 0;
      DPLEARN_RETURN_IF_ERROR(reader.ReadU16(&dim));
      if (dim > kMaxStreamFeatureDim) {
        return InvalidArgumentError("protocol: stream feature dim " + std::to_string(dim) +
                                    " exceeds limit " +
                                    std::to_string(kMaxStreamFeatureDim));
      }
      request.features.resize(dim);
      for (std::uint16_t i = 0; i < dim; ++i) {
        DPLEARN_RETURN_IF_ERROR(reader.ReadF64(&request.features[i]));
      }
      break;
    }
  }
  DPLEARN_RETURN_IF_ERROR(reader.ExpectEnd());
  return request;
}

std::string EncodeResponse(const Response& response) {
  std::string out;
  AppendU8(&out, kProtocolVersion);
  AppendU8(&out, static_cast<std::uint8_t>(response.opcode));
  AppendU64(&out, response.request_id);
  AppendU8(&out, static_cast<std::uint8_t>(response.code));
  AppendString(&out, response.message);
  if (response.code != StatusCode::kOk) return out;
  switch (response.opcode) {
    case Opcode::kPing:
    case Opcode::kRegisterTenant:
    case Opcode::kReplayVerify:
      break;
    case Opcode::kRelease:
      AppendF64(&out, response.charged_epsilon);
      AppendF64(&out, response.charged_delta);
      AppendU32(&out, static_cast<std::uint32_t>(response.values.size()));
      for (const double v : response.values) AppendF64(&out, v);
      break;
    case Opcode::kGibbsSample:
      AppendF64(&out, response.charged_epsilon);
      AppendF64(&out, response.charged_delta);
      AppendU32(&out, static_cast<std::uint32_t>(response.indices.size()));
      for (const std::uint32_t idx : response.indices) AppendU32(&out, idx);
      break;
    case Opcode::kBudgetQuery:
      AppendF64(&out, response.total_epsilon);
      AppendF64(&out, response.total_delta);
      AppendF64(&out, response.spent_epsilon);
      AppendF64(&out, response.spent_delta);
      AppendF64(&out, response.remaining_epsilon);
      AppendF64(&out, response.remaining_delta);
      AppendU64(&out, response.spends);
      AppendU64(&out, response.denials);
      break;
    case Opcode::kStreamAppend:
      AppendU64(&out, response.stream_size);
      break;
  }
  return out;
}

StatusOr<Response> DecodeResponse(const void* data, std::size_t size) {
  ByteReader reader(data, size);
  std::uint8_t version = 0;
  DPLEARN_RETURN_IF_ERROR(reader.ReadU8(&version));
  if (version != kProtocolVersion) {
    return InvalidArgumentError("protocol: unsupported response version " +
                                std::to_string(version));
  }
  std::uint8_t opcode = 0;
  DPLEARN_RETURN_IF_ERROR(reader.ReadU8(&opcode));
  if (opcode < static_cast<std::uint8_t>(Opcode::kPing) ||
      opcode > static_cast<std::uint8_t>(Opcode::kStreamAppend)) {
    return InvalidArgumentError("protocol: unknown response opcode " + std::to_string(opcode));
  }
  Response response;
  response.opcode = static_cast<Opcode>(opcode);
  DPLEARN_RETURN_IF_ERROR(reader.ReadU64(&response.request_id));
  std::uint8_t code = 0;
  DPLEARN_RETURN_IF_ERROR(reader.ReadU8(&code));
  if (code > static_cast<std::uint8_t>(StatusCode::kResourceExhausted)) {
    return InvalidArgumentError("protocol: unknown status code " + std::to_string(code));
  }
  response.code = static_cast<StatusCode>(code);
  DPLEARN_RETURN_IF_ERROR(
      reader.ReadString(&response.message, kDefaultMaxPayloadBytes, "message"));
  if (response.code != StatusCode::kOk) {
    DPLEARN_RETURN_IF_ERROR(reader.ExpectEnd());
    return response;
  }
  switch (response.opcode) {
    case Opcode::kPing:
    case Opcode::kRegisterTenant:
    case Opcode::kReplayVerify:
      break;
    case Opcode::kRelease: {
      DPLEARN_RETURN_IF_ERROR(reader.ReadF64(&response.charged_epsilon));
      DPLEARN_RETURN_IF_ERROR(reader.ReadF64(&response.charged_delta));
      std::uint32_t count = 0;
      DPLEARN_RETURN_IF_ERROR(reader.ReadU32(&count));
      if (count > kDefaultMaxPayloadBytes / sizeof(double)) {
        return InvalidArgumentError("protocol: release value count " + std::to_string(count) +
                                    " exceeds any representable frame");
      }
      response.values.resize(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        DPLEARN_RETURN_IF_ERROR(reader.ReadF64(&response.values[i]));
      }
      break;
    }
    case Opcode::kGibbsSample: {
      DPLEARN_RETURN_IF_ERROR(reader.ReadF64(&response.charged_epsilon));
      DPLEARN_RETURN_IF_ERROR(reader.ReadF64(&response.charged_delta));
      std::uint32_t count = 0;
      DPLEARN_RETURN_IF_ERROR(reader.ReadU32(&count));
      if (count > kDefaultMaxPayloadBytes / sizeof(std::uint32_t)) {
        return InvalidArgumentError("protocol: gibbs index count " + std::to_string(count) +
                                    " exceeds any representable frame");
      }
      response.indices.resize(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        DPLEARN_RETURN_IF_ERROR(reader.ReadU32(&response.indices[i]));
      }
      break;
    }
    case Opcode::kBudgetQuery:
      DPLEARN_RETURN_IF_ERROR(reader.ReadF64(&response.total_epsilon));
      DPLEARN_RETURN_IF_ERROR(reader.ReadF64(&response.total_delta));
      DPLEARN_RETURN_IF_ERROR(reader.ReadF64(&response.spent_epsilon));
      DPLEARN_RETURN_IF_ERROR(reader.ReadF64(&response.spent_delta));
      DPLEARN_RETURN_IF_ERROR(reader.ReadF64(&response.remaining_epsilon));
      DPLEARN_RETURN_IF_ERROR(reader.ReadF64(&response.remaining_delta));
      DPLEARN_RETURN_IF_ERROR(reader.ReadU64(&response.spends));
      DPLEARN_RETURN_IF_ERROR(reader.ReadU64(&response.denials));
      break;
    case Opcode::kStreamAppend:
      DPLEARN_RETURN_IF_ERROR(reader.ReadU64(&response.stream_size));
      break;
  }
  DPLEARN_RETURN_IF_ERROR(reader.ExpectEnd());
  return response;
}

void AppendFrame(std::string* out, std::string_view payload) {
  AppendU32(out, static_cast<std::uint32_t>(payload.size()));
  out->append(payload.data(), payload.size());
}

StatusOr<bool> FrameDecoder::Next(std::string* payload) {
  if (poisoned_) {
    return InvalidArgumentError("protocol: stream already failed framing; resync impossible");
  }
  if (buffer_.size() < kFrameHeaderBytes) return false;
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<std::uint32_t>(static_cast<unsigned char>(buffer_[i])) << (8 * i);
  }
  if (length < kMinPayloadBytes || length > max_payload_) {
    poisoned_ = true;
    return InvalidArgumentError("protocol: declared payload length " + std::to_string(length) +
                                " outside [" + std::to_string(kMinPayloadBytes) + ", " +
                                std::to_string(max_payload_) + "]");
  }
  if (buffer_.size() < kFrameHeaderBytes + length) return false;
  payload->assign(buffer_, kFrameHeaderBytes, length);
  buffer_.erase(0, kFrameHeaderBytes + length);
  return true;
}

}  // namespace service
}  // namespace dplearn
