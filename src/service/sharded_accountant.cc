#include "service/sharded_accountant.h"

#include <utility>

#include "robustness/failpoint.h"
#include "util/math_util.h"

namespace dplearn {
namespace service {

ShardedPrivacyAccountant::ShardedPrivacyAccountant(Options options)
    : options_(options),
      telemetry_(obs::TenantBudgetTelemetry::Options{
          options.near_exhaustion_fraction, options.shard_count}) {}

Status ShardedPrivacyAccountant::RegisterTenant(const std::string& tenant_id,
                                                const PrivacyBudget& total) {
  return telemetry_.RegisterTenant(tenant_id, total);
}

Status ShardedPrivacyAccountant::SpendOrReject(const std::string& tenant_id,
                                               const PrivacyBudget& cost,
                                               std::string_view mechanism) {
  if (!obs::TenantBudgetTelemetry::IsValidTenantId(tenant_id)) {
    return InvalidArgumentError("service: malformed tenant id \"" + tenant_id + "\"");
  }
  Status spend = telemetry_.Spend(tenant_id, cost, mechanism);
  if (spend.code() == StatusCode::kNotFound) {
    // First contact: register at the default quota, then retry the spend
    // once. A racing registration by another thread loses with
    // FAILED_PRECONDITION, which is fine — someone registered the tenant.
    Status registered = telemetry_.RegisterTenant(tenant_id, options_.default_tenant_budget);
    if (!registered.ok() && registered.code() != StatusCode::kFailedPrecondition) {
      return registered;
    }
    spend = telemetry_.Spend(tenant_id, cost, mechanism);
  }
  if (spend.ok()) return spend;
  if (robustness::IsInjectedFault(spend)) return spend;  // UNAVAILABLE passthrough
  if (spend.code() == StatusCode::kFailedPrecondition) {
    // The accountant's over-budget denial, translated for clients: the
    // denial is already in the tenant's ledger; retrying cannot succeed.
    return ResourceExhaustedError(spend.message());
  }
  return spend;
}

StatusOr<obs::TenantBudgetTelemetry::TenantView> ShardedPrivacyAccountant::View(
    const std::string& tenant_id) const {
  return telemetry_.GetView(tenant_id);
}

std::vector<obs::TenantBudgetTelemetry::TenantView> ShardedPrivacyAccountant::AllViews()
    const {
  return telemetry_.GetAllViews();
}

ShardedPrivacyAccountant::MergedView ShardedPrivacyAccountant::Merged() const {
  MergedView merged;
  // GetAllViews returns tenants sorted by id, so the Kahan merge order — and
  // therefore the merged totals, bit for bit — is a pure function of the
  // per-tenant ledgers, independent of shard layout or thread count.
  KahanSum epsilon;
  KahanSum delta;
  for (const auto& view : telemetry_.GetAllViews()) {
    ++merged.tenant_count;
    epsilon.Add(view.spent.epsilon);
    delta.Add(view.spent.delta);
    merged.spends += view.spends;
    merged.denials += view.denials;
  }
  merged.spent_epsilon = epsilon.Value();
  merged.spent_delta = delta.Value();
  return merged;
}

Status ShardedPrivacyAccountant::ReplayVerifyAll() const {
  return telemetry_.ReplayVerifyAll();
}

StatusOr<const obs::BudgetAuditLog*> ShardedPrivacyAccountant::audit_log(
    const std::string& tenant_id) const {
  return telemetry_.audit_log(tenant_id);
}

}  // namespace service
}  // namespace dplearn
