#include "service/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>

namespace dplearn {
namespace service {

StatusOr<DpReleaseClient> DpReleaseClient::Connect(const std::string& socket_path) {
  sockaddr_un addr{};
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    return InvalidArgumentError("DpReleaseClient: bad socket path \"" + socket_path + "\"");
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return InternalError(std::string("DpReleaseClient: socket(): ") + std::strerror(errno));
  }
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status = UnavailableError(std::string("DpReleaseClient: connect(") +
                                           socket_path + "): " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  return DpReleaseClient(fd);
}

StatusOr<DpReleaseClient> DpReleaseClient::ConnectWithRetry(
    const std::string& socket_path, int attempts, std::chrono::milliseconds backoff) {
  Status last = UnavailableError("DpReleaseClient: no connect attempt made");
  for (int i = 0; i < attempts; ++i) {
    if (i > 0) std::this_thread::sleep_for(backoff);
    StatusOr<DpReleaseClient> client = Connect(socket_path);
    if (client.ok()) return client;
    last = client.status();
    if (last.code() != StatusCode::kUnavailable) return last;  // not worth retrying
  }
  return last;
}

DpReleaseClient::~DpReleaseClient() { Close(); }

DpReleaseClient::DpReleaseClient(DpReleaseClient&& other) noexcept
    : fd_(other.fd_), decoder_(std::move(other.decoder_)) {
  other.fd_ = -1;
}

DpReleaseClient& DpReleaseClient::operator=(DpReleaseClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    decoder_ = std::move(other.decoder_);
    other.fd_ = -1;
  }
  return *this;
}

void DpReleaseClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status DpReleaseClient::Send(const Request& request) {
  if (fd_ < 0) return FailedPreconditionError("DpReleaseClient: not connected");
  std::string frame;
  AppendFrame(&frame, EncodeRequest(request));
  std::size_t offset = 0;
  while (offset < frame.size()) {
    const ssize_t n =
        ::send(fd_, frame.data() + offset, frame.size() - offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return UnavailableError(std::string("DpReleaseClient: send(): ") +
                              std::strerror(errno));
    }
    offset += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

StatusOr<Response> DpReleaseClient::Receive() {
  if (fd_ < 0) return FailedPreconditionError("DpReleaseClient: not connected");
  char buffer[4096];
  for (;;) {
    std::string payload;
    DPLEARN_ASSIGN_OR_RETURN(const bool have_frame, decoder_.Next(&payload));
    if (have_frame) return DecodeResponse(payload.data(), payload.size());
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return UnavailableError(std::string("DpReleaseClient: recv(): ") +
                              std::strerror(errno));
    }
    if (n == 0) {
      return UnavailableError("DpReleaseClient: server closed the connection");
    }
    decoder_.Feed(buffer, static_cast<std::size_t>(n));
  }
}

StatusOr<Response> DpReleaseClient::Call(const Request& request) {
  DPLEARN_RETURN_IF_ERROR(Send(request));
  return Receive();
}

}  // namespace service
}  // namespace dplearn
