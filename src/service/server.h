#ifndef DPLEARN_SERVICE_SERVER_H_
#define DPLEARN_SERVICE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "learning/dataset.h"
#include "learning/hypothesis.h"
#include "learning/loss.h"
#include "learning/streaming_risk.h"
#include "mechanisms/privacy_budget.h"
#include "mechanisms/sensitivity.h"
#include "parallel/thread_pool.h"
#include "sampling/rng.h"
#include "service/protocol.h"
#include "service/sharded_accountant.h"
#include "util/status.h"

namespace dplearn {
namespace service {

/// A dataset the service answers queries on: the data itself plus the
/// server-side modeling choices a remote tenant cannot supply — the
/// hypothesis grid and loss for Gibbs sampling, and the label bounds that
/// make the mean/sum sensitivity claims sound.
struct ServedDataset {
  Dataset data;
  FiniteHypothesisClass hypotheses;
  std::shared_ptr<const LossFunction> loss;
  double label_lo = 0.0;
  double label_hi = 1.0;
};

/// The multi-tenant DP release server (DESIGN.md §13).
///
/// Accepts length-prefixed binary frames (protocol.h) over an AF_UNIX
/// stream socket and serves Release / GibbsSample / BudgetQuery under
/// admission control by a ShardedPrivacyAccountant. Malformed or
/// over-budget requests get structured INVALID_ARGUMENT /
/// RESOURCE_EXHAUSTED responses — the server never crashes on bad input,
/// which the `service-chaos` CI leg drives with fail points armed.
///
/// Threading and determinism. One reader thread per connection feeds a
/// FrameDecoder and appends decoded requests to the session's FIFO queue;
/// request *processing* runs on the server's own ThreadPool via a serial
/// executor per session (at most one drain task per session in flight), so
/// a connection's requests are processed and answered strictly in arrival
/// order no matter how many workers the pool has. Randomness is per
/// *tenant*: each tenant owns an Rng seeded as a pure function of
/// (options.seed, tenant id), and the tenant's mutex is held across
/// admission + sampling. Consequently a workload in which each tenant's
/// requests arrive on one connection produces bitwise-identical responses,
/// ledgers and audit trails at 1 and at N worker threads
/// (service_determinism_test pins this).
///
/// Batching. Within one drain pass, consecutive same-shape requests from a
/// session (same tenant, opcode, dataset and parameters) are coalesced:
/// admission runs per request in order, then the granted draws are funneled
/// into ONE GibbsEstimator::SampleBatch / LaplaceMechanism::ReleaseBatch
/// call and the outputs split back per request. The batch APIs are bit- and
/// stream-identical to per-draw calls, so coalescing changes throughput,
/// not results.
///
/// Fail points: `service.accept` rejects a fresh connection with one
/// structured UNAVAILABLE frame (request_id 0); `service.dispatch` fails a
/// request at dispatch, before admission — a structured UNAVAILABLE
/// response with no ledger mutation; `budget.spend` and `sink.write` fire
/// in the layers below as usual.
class DpReleaseServer {
 public:
  struct Options {
    /// Filesystem path to bind the AF_UNIX socket to (length limited by
    /// sockaddr_un; keep it short). An existing socket file is replaced.
    std::string socket_path;
    /// Worker threads for request processing; 0 means
    /// parallel::DefaultThreadCount() (so DPLEARN_THREADS steers it).
    std::size_t worker_threads = 0;
    /// Root seed for the per-tenant Rngs.
    std::uint64_t seed = 1;
    /// Budget auto-registered tenants receive on first spend.
    PrivacyBudget default_tenant_budget{5.0, 1e-6};
    std::size_t shard_count = 16;
    std::size_t max_payload_bytes = kDefaultMaxPayloadBytes;
    /// Per-request draw-count ceiling; larger counts are INVALID_ARGUMENT.
    std::uint32_t max_count_per_request = 4096;
    /// Cap on how many same-shape requests one drain pass coalesces.
    std::size_t max_coalesced_requests = 64;
  };

  /// Binds, listens, registers the built-in "bernoulli" dataset and starts
  /// the accept loop. Errors on socket/bind/listen failure or a path too
  /// long for sockaddr_un.
  static StatusOr<std::unique_ptr<DpReleaseServer>> Start(Options options);

  ~DpReleaseServer();

  DpReleaseServer(const DpReleaseServer&) = delete;
  DpReleaseServer& operator=(const DpReleaseServer&) = delete;

  /// Stops accepting, drains in-flight requests, joins all threads and
  /// removes the socket file. Idempotent.
  void Stop();

  /// Adds (or replaces) a dataset clients can reference by name. Error on
  /// an empty name, empty data, or a null loss.
  Status RegisterDataset(const std::string& name, ServedDataset dataset);

  ShardedPrivacyAccountant& accountant() { return accountant_; }
  const Options& options() const { return options_; }

  /// Frames that failed framing or decoding since start (also exported as
  /// the `service.protocol_errors` counter).
  std::uint64_t protocol_errors() const {
    return protocol_errors_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-connection state. Reader thread and drain tasks share it through a
  /// shared_ptr so teardown order cannot dangle.
  struct Session {
    int fd = -1;
    FrameDecoder decoder;
    std::mutex mu;  // guards queue + drain_scheduled
    std::deque<Request> queue;
    bool drain_scheduled = false;
    std::mutex write_mu;  // serializes frame writes to fd
    std::thread reader;
  };

  /// A tenant's live stream over one served dataset: the streaming risk
  /// profile plus the loss keep-alive (the profile holds a raw pointer).
  /// Seeded lazily from the served dataset's examples on the tenant's first
  /// kStreamAppend, so the first streamed posterior continues the batch one.
  struct TenantStream {
    StreamingRiskProfile profile;
    std::shared_ptr<const LossFunction> loss;
    TenantStream(StreamingRiskProfile p, std::shared_ptr<const LossFunction> l)
        : profile(std::move(p)), loss(std::move(l)) {}
  };

  /// Per-tenant sampling state; mu is held across admission + draw so one
  /// tenant's requests serialize even across sessions. `streams` (also under
  /// mu — appends and streamed draws serialize with everything else the
  /// tenant does, which is what makes 1-vs-N-worker runs bitwise identical)
  /// maps served-dataset name -> the tenant's private live stream.
  struct TenantRuntime {
    std::mutex mu;
    Rng rng;
    std::unordered_map<std::string, std::unique_ptr<TenantStream>> streams;
    explicit TenantRuntime(std::uint64_t seed) : rng(seed) {}
  };

  explicit DpReleaseServer(Options options);

  Status Listen();
  void AcceptLoop();
  void ReaderLoop(const std::shared_ptr<Session>& session);
  void ScheduleDrain(const std::shared_ptr<Session>& session);
  void DrainSession(const std::shared_ptr<Session>& session);
  /// Processes queue[begin..) starting at `begin`, coalescing a same-shape
  /// run, and writes the responses. Returns the index one past the run.
  std::size_t ProcessRun(const std::shared_ptr<Session>& session,
                         const std::vector<Request>& requests, std::size_t begin);
  Response ProcessSimple(const Request& request);
  /// kStreamAppend: under the tenant lock, lazily seeds the tenant's stream
  /// from the served dataset and appends the decoded example. Appends are
  /// free (no admission spend); the response carries the live stream size.
  Response ProcessStreamAppend(const Request& request);
  void WriteResponse(const std::shared_ptr<Session>& session, const Response& response);
  void WriteProtocolError(const std::shared_ptr<Session>& session, const Status& status);

  TenantRuntime& RuntimeFor(const std::string& tenant_id);
  StatusOr<const ServedDataset*> FindDataset(const std::string& name) const;

  /// Shared validation for kRelease / kGibbsSample: bounds on count, the
  /// dataset lookup, parameter sanity. Returns the per-draw privacy cost.
  StatusOr<PrivacyBudget> ValidateSampling(const Request& request,
                                           const ServedDataset** dataset) const;

  /// The SensitiveQuery a kRelease request names, built against the served
  /// dataset's label bounds (which make the sensitivity claims sound).
  static StatusOr<SensitiveQuery> BuildQuery(const Request& request,
                                             const ServedDataset& dataset);

  Options options_;
  ShardedPrivacyAccountant accountant_;

  mutable std::mutex datasets_mu_;
  std::unordered_map<std::string, ServedDataset> datasets_;

  std::mutex tenants_mu_;
  std::unordered_map<std::string, std::unique_ptr<TenantRuntime>> tenants_;

  std::mutex sessions_mu_;
  std::vector<std::shared_ptr<Session>> sessions_;

  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;

  int listen_fd_ = -1;
  std::thread accept_thread_;
  // Last member: destroyed first, so queued drain tasks finish while every
  // structure they touch is still alive.
  std::unique_ptr<parallel::ThreadPool> pool_;
};

}  // namespace service
}  // namespace dplearn

#endif  // DPLEARN_SERVICE_SERVER_H_
