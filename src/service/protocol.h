#ifndef DPLEARN_SERVICE_PROTOCOL_H_
#define DPLEARN_SERVICE_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace dplearn {
namespace service {

/// Wire protocol of the multi-tenant DP release service (DESIGN.md §13).
///
/// Framing: every message is a *length-prefixed binary frame* — a 4-byte
/// little-endian unsigned payload length followed by exactly that many
/// payload bytes. The length counts the payload only (not itself) and must
/// be in [kMinPayloadBytes, max_payload]; anything else is a protocol error
/// the server answers with a structured INVALID_ARGUMENT response before
/// closing the connection. Inside a connection, frames are processed in
/// arrival order and answered in the same order, so a client may pipeline.
///
/// Payloads are versioned, fixed-layout little-endian binary (doubles
/// travel as their IEEE-754 bit patterns, so values round-trip bitwise —
/// the determinism and replay-verification gates depend on this). Every
/// decode path is bounds-checked: malformed input yields a typed
/// util::Status, never undefined behavior (service_protocol_test pins
/// this).
///
/// Request payload layout (offsets in bytes):
///   u8  version            == kProtocolVersion
///   u8  opcode             Opcode below
///   u64 request_id         echoed verbatim in the response
///   u16 tenant_len, bytes  tenant id ([A-Za-z0-9_-]+; may be empty for
///                          Ping/ReplayVerify)
///   ... opcode-specific fields, see EncodeRequest
///
/// Response payload layout:
///   u8  version
///   u8  opcode             echo of the request (kPing for unsolicited
///                          server-level rejections, with request_id 0)
///   u64 request_id
///   u8  status_code        util::StatusCode
///   u16 message_len, bytes diagnostic (empty on OK)
///   ... opcode-specific body, present only when status_code == kOk
enum class Opcode : std::uint8_t {
  /// Liveness probe; empty body both ways. Also the opcode of unsolicited
  /// server-level rejection frames (request_id 0), e.g. the `service.accept`
  /// fail point refusing a connection.
  kPing = 1,
  /// Release(mechanism, query, epsilon, tenant_id): `count` noisy answers
  /// of `query` on dataset `dataset` under `mechanism`, each ε-DP with the
  /// given epsilon (delta used by the Gaussian mechanism). Charged as one
  /// admission-controlled spend of count·(epsilon, delta).
  kRelease = 2,
  /// GibbsSample(dataset_ref, lambda, n_draws, tenant_id): `count` draws
  /// from the Gibbs posterior at inverse temperature `lambda`. Each draw is
  /// 2λΔ(R̂)-DP (Theorem 4.1); charged as one spend of count·2λΔ.
  kGibbsSample = 3,
  /// BudgetQuery(tenant_id): the tenant's ledger view. Free (no spend).
  kBudgetQuery = 4,
  /// Registers `tenant_id` with total budget (epsilon, delta). Tenants are
  /// otherwise auto-registered with the server's default budget on first
  /// spend; explicit registration is for custom quotas.
  kRegisterTenant = 5,
  /// Runs ShardedPrivacyAccountant::ReplayVerifyAll server-side and reports
  /// the verdict in the response status — a client-observable audit gate.
  kReplayVerify = 6,
  /// StreamAppend(dataset_ref, example, tenant_id): appends one example to
  /// the tenant's PRIVATE live stream over dataset `dataset` (lazily seeded
  /// from the served dataset's examples on first append). Subsequent
  /// kGibbsSample requests against that dataset re-tilt from the live
  /// stream via GibbsEstimator::SampleStreaming, with per-draw cost
  /// 2λ·B/n_live — appends are free (no spend; growing n only shrinks ε).
  /// Returns the live stream size.
  kStreamAppend = 7,
};

enum class MechanismKind : std::uint8_t {
  kLaplace = 1,
  kGaussian = 2,
};

enum class QueryKind : std::uint8_t {
  /// Bounded mean of labels (sensitivity (hi-lo)/n).
  kMean = 1,
  /// Bounded sum of labels (sensitivity hi-lo).
  kSum = 2,
  /// Count of examples with positive label (sensitivity 1).
  kCountPositive = 3,
};

inline constexpr std::uint8_t kProtocolVersion = 1;
/// Frame length prefix is 4 bytes, little-endian.
inline constexpr std::size_t kFrameHeaderBytes = 4;
/// A payload smaller than version+opcode+request_id+tenant_len cannot be a
/// message at all.
inline constexpr std::size_t kMinPayloadBytes = 1 + 1 + 8 + 2;
/// Default cap a FrameDecoder enforces on declared payload lengths.
inline constexpr std::size_t kDefaultMaxPayloadBytes = 1 << 20;
inline constexpr std::size_t kMaxTenantIdBytes = 128;
inline constexpr std::size_t kMaxDatasetRefBytes = 256;
/// Cap on kStreamAppend feature vectors — far below what a frame can hold,
/// so a hostile length field cannot force a large allocation.
inline constexpr std::size_t kMaxStreamFeatureDim = 1024;

/// One decoded request. Fields beyond (opcode, request_id, tenant_id) are
/// meaningful per opcode as documented on Opcode.
struct Request {
  Opcode opcode = Opcode::kPing;
  std::uint64_t request_id = 0;
  std::string tenant_id;

  MechanismKind mechanism = MechanismKind::kLaplace;  // kRelease
  QueryKind query = QueryKind::kMean;                 // kRelease
  std::string dataset;          // kRelease / kGibbsSample / kStreamAppend
  double epsilon = 0.0;         // kRelease per-draw ε; kRegisterTenant total
  double delta = 0.0;           // kRelease (Gaussian); kRegisterTenant total
  double lambda = 0.0;          // kGibbsSample inverse temperature
  std::uint32_t count = 1;      // kRelease answers / kGibbsSample draws

  // kStreamAppend: the example joining the tenant's live stream. Doubles
  // travel as IEEE bit patterns, so the appended example reaches the
  // server-side StreamingRiskProfile bitwise intact.
  double label = 0.0;
  std::vector<double> features;
};

/// One decoded response. `code`/`message` mirror the util::Status taxonomy;
/// the typed body fields are populated only on kOk.
struct Response {
  Opcode opcode = Opcode::kPing;
  std::uint64_t request_id = 0;
  StatusCode code = StatusCode::kOk;
  std::string message;

  /// What admission control charged the tenant for this request (zero for
  /// free ops). Clients replay these to cross-check the server ledger.
  double charged_epsilon = 0.0;
  double charged_delta = 0.0;

  std::vector<double> values;          // kRelease: the noisy answers
  std::vector<std::uint32_t> indices;  // kGibbsSample: hypothesis indices

  // kBudgetQuery body.
  double total_epsilon = 0.0;
  double total_delta = 0.0;
  double spent_epsilon = 0.0;
  double spent_delta = 0.0;
  double remaining_epsilon = 0.0;
  double remaining_delta = 0.0;
  std::uint64_t spends = 0;
  std::uint64_t denials = 0;

  /// kStreamAppend body: live examples in the tenant's stream after the
  /// append.
  std::uint64_t stream_size = 0;

  /// Convenience constructor for an error response echoing `request`.
  static Response Error(const Request& request, const Status& status);
};

/// Serializes the request payload (no frame header).
std::string EncodeRequest(const Request& request);
/// Parses a request payload. INVALID_ARGUMENT on any malformed input:
/// wrong version, unknown opcode, truncated or oversized variable-length
/// fields, trailing bytes.
StatusOr<Request> DecodeRequest(const void* data, std::size_t size);

std::string EncodeResponse(const Response& response);
StatusOr<Response> DecodeResponse(const void* data, std::size_t size);

/// Appends the 4-byte length prefix followed by `payload` to *out.
void AppendFrame(std::string* out, std::string_view payload);

/// Incremental frame reassembly over an arbitrary byte stream. Feed() any
/// chunking the transport produces; Next() yields complete payloads in
/// order. A declared length outside [kMinPayloadBytes, max_payload] is a
/// protocol error: Next() returns INVALID_ARGUMENT and the decoder latches
/// the error (the stream has lost framing and cannot be resynchronized).
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = kDefaultMaxPayloadBytes)
      : max_payload_(max_payload) {}

  void Feed(const char* data, std::size_t size) { buffer_.append(data, size); }

  /// True + *payload filled when a complete frame was available; false when
  /// more bytes are needed; INVALID_ARGUMENT (sticky) on a framing error.
  StatusOr<bool> Next(std::string* payload);

  /// Bytes buffered but not yet consumed as a complete frame — nonzero at
  /// EOF means the peer truncated a length prefix or payload mid-frame.
  std::size_t PendingBytes() const { return buffer_.size(); }

 private:
  std::size_t max_payload_;
  std::string buffer_;
  bool poisoned_ = false;
};

}  // namespace service
}  // namespace dplearn

#endif  // DPLEARN_SERVICE_PROTOCOL_H_
