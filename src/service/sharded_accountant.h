#ifndef DPLEARN_SERVICE_SHARDED_ACCOUNTANT_H_
#define DPLEARN_SERVICE_SHARDED_ACCOUNTANT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mechanisms/privacy_budget.h"
#include "obs/tenant_budget.h"
#include "util/status.h"

namespace dplearn {
namespace service {

/// Admission control for the DP release service (DESIGN.md §13): a thin
/// policy layer over obs::TenantBudgetTelemetry, which already shards
/// tenants onto independently locked per-shard maps, routes every spend
/// through the tenant's PrivacyAccountant (Kahan-compensated ledgers), and
/// cross-checks ledger/accountant/gauges via ReplayVerifyAll.
///
/// What this layer adds, service-side:
///   * auto-registration — an unknown tenant's first spend registers it at
///     `default_tenant_budget`, so clients need no registration handshake;
///   * the client-facing status taxonomy — the accountant's
///     FAILED_PRECONDITION over-budget denial becomes RESOURCE_EXHAUSTED
///     (retrying the same request cannot succeed until the quota is raised),
///     while injected `budget.spend` faults pass through as UNAVAILABLE;
///   * a merged-for-audit view — per-shard per-tenant totals Kahan-summed
///     in deterministic (sorted tenant id) order into one service-wide
///     ledger summary, the figure the chaos gates compare against the sum
///     of per-response charges.
class ShardedPrivacyAccountant {
 public:
  struct Options {
    /// Budget granted to tenants that are auto-registered on first spend.
    PrivacyBudget default_tenant_budget{5.0, 1e-6};
    std::size_t shard_count = 16;
    double near_exhaustion_fraction = 0.9;
  };

  explicit ShardedPrivacyAccountant(Options options);

  ShardedPrivacyAccountant(const ShardedPrivacyAccountant&) = delete;
  ShardedPrivacyAccountant& operator=(const ShardedPrivacyAccountant&) = delete;

  /// Registers `tenant_id` with an explicit quota. INVALID_ARGUMENT on a
  /// malformed id or budget, FAILED_PRECONDITION when already registered.
  Status RegisterTenant(const std::string& tenant_id, const PrivacyBudget& total);

  /// Admits or rejects one spend of `cost` by `tenant_id` under `mechanism`.
  /// Auto-registers unknown tenants at the default budget. Returns:
  ///   OK                  the spend was granted and is in the ledger;
  ///   RESOURCE_EXHAUSTED  over budget — the denial is in the ledger, the
  ///                       running totals are untouched;
  ///   UNAVAILABLE         an injected `budget.spend` fault fired before any
  ///                       state mutation;
  ///   INVALID_ARGUMENT    malformed tenant id or cost.
  Status SpendOrReject(const std::string& tenant_id, const PrivacyBudget& cost,
                       std::string_view mechanism);

  StatusOr<obs::TenantBudgetTelemetry::TenantView> View(const std::string& tenant_id) const;
  std::vector<obs::TenantBudgetTelemetry::TenantView> AllViews() const;

  /// Service-wide totals, merged across shards in sorted-tenant order.
  struct MergedView {
    std::size_t tenant_count = 0;
    double spent_epsilon = 0.0;  // Kahan-summed over tenants
    double spent_delta = 0.0;
    std::uint64_t spends = 0;
    std::uint64_t denials = 0;
  };
  MergedView Merged() const;

  /// The PR6 replay-verify path: every tenant's ledger replayed and
  /// reconciled bitwise against its accountant and exported gauges.
  Status ReplayVerifyAll() const;

  /// The tenant's private audit ledger (NOT_FOUND when unregistered).
  StatusOr<const obs::BudgetAuditLog*> audit_log(const std::string& tenant_id) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
  obs::TenantBudgetTelemetry telemetry_;
};

}  // namespace service
}  // namespace dplearn

#endif  // DPLEARN_SERVICE_SHARDED_ACCOUNTANT_H_
