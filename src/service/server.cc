#include "service/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <iterator>
#include <utility>

#include "core/gibbs_estimator.h"
#include "learning/generators.h"
#include "mechanisms/laplace.h"
#include "mechanisms/sensitivity.h"
#include "obs/config.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "robustness/failpoint.h"

namespace dplearn {
namespace service {
namespace {

/// FNV-1a over the tenant id, mixed with the server's root seed — a stable,
/// platform-independent function (std::hash is not guaranteed stable), so a
/// tenant's stream is reproducible across runs and binaries.
std::uint64_t TenantSeed(std::uint64_t root_seed, const std::string& tenant_id) {
  std::uint64_t h = 1469598103934665603ULL ^ root_seed;
  for (const char c : tenant_id) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

void SendAll(int fd, const std::string& buffer) {
  std::size_t offset = 0;
  while (offset < buffer.size()) {
    const ssize_t n =
        ::send(fd, buffer.data() + offset, buffer.size() - offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // peer gone; responses to a dead connection are droppable
    }
    offset += static_cast<std::size_t>(n);
  }
}

/// True when `a` can join `b`'s coalesced run: same tenant, same opcode and
/// identical sampling parameters (bitwise on the doubles — the run shares
/// one mechanism object). `count` deliberately excluded: it varies per
/// request and is charged per request.
bool SameShape(const Request& a, const Request& b) {
  if (a.opcode != b.opcode || a.tenant_id != b.tenant_id || a.dataset != b.dataset) {
    return false;
  }
  switch (a.opcode) {
    case Opcode::kRelease:
      return a.mechanism == b.mechanism && a.query == b.query && a.epsilon == b.epsilon &&
             a.delta == b.delta;
    case Opcode::kGibbsSample:
      return a.lambda == b.lambda;
    default:
      return false;  // non-sampling opcodes never coalesce
  }
}

obs::Counter* ServiceCounter(const char* name) {
  return obs::GlobalMetrics().GetCounter(name);
}

void CountResponse(const Response& response) {
  if (!obs::MetricsEnabled()) return;
  static obs::Counter* const ok = ServiceCounter("service.responses.ok");
  static obs::Counter* const error = ServiceCounter("service.responses.error");
  (response.code == StatusCode::kOk ? ok : error)->Increment();
}

}  // namespace

DpReleaseServer::DpReleaseServer(Options options)
    : options_(std::move(options)),
      accountant_(ShardedPrivacyAccountant::Options{
          options_.default_tenant_budget, options_.shard_count,
          /*near_exhaustion_fraction=*/0.9}) {}

StatusOr<std::unique_ptr<DpReleaseServer>> DpReleaseServer::Start(Options options) {
  if (options.socket_path.empty()) {
    return InvalidArgumentError("DpReleaseServer: socket_path must be set");
  }
  sockaddr_un addr{};
  if (options.socket_path.size() >= sizeof(addr.sun_path)) {
    return InvalidArgumentError("DpReleaseServer: socket path \"" + options.socket_path +
                                "\" exceeds the AF_UNIX path limit");
  }
  if (options.max_payload_bytes < kMinPayloadBytes) {
    return InvalidArgumentError("DpReleaseServer: max_payload_bytes below the minimum frame");
  }
  std::unique_ptr<DpReleaseServer> server(new DpReleaseServer(std::move(options)));

  // The built-in dataset every deployment serves: the paper's smallest
  // exactly-analyzable task (Bernoulli mean, scalar grid, clipped squared
  // loss). Sampled from a seed-derived stream so two servers started with
  // the same seed serve the same bytes.
  DPLEARN_ASSIGN_OR_RETURN(const BernoulliMeanTask task, BernoulliMeanTask::Create(0.3));
  Rng dataset_rng(TenantSeed(server->options_.seed, "__dataset.bernoulli"));
  DPLEARN_ASSIGN_OR_RETURN(Dataset data, task.Sample(200, &dataset_rng));
  DPLEARN_ASSIGN_OR_RETURN(FiniteHypothesisClass grid,
                           FiniteHypothesisClass::ScalarGrid(0.0, 1.0, 101));
  ServedDataset bernoulli{std::move(data), std::move(grid),
                          std::make_shared<ClippedSquaredLoss>(1.0),
                          /*label_lo=*/0.0, /*label_hi=*/1.0};
  DPLEARN_RETURN_IF_ERROR(server->RegisterDataset("bernoulli", std::move(bernoulli)));

  DPLEARN_RETURN_IF_ERROR(server->Listen());
  const std::size_t threads = server->options_.worker_threads > 0
                                  ? server->options_.worker_threads
                                  : parallel::DefaultThreadCount();
  server->pool_ = std::make_unique<parallel::ThreadPool>(threads);
  server->accept_thread_ = std::thread(&DpReleaseServer::AcceptLoop, server.get());
  return server;
}

DpReleaseServer::~DpReleaseServer() { Stop(); }

Status DpReleaseServer::Listen() {
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return InternalError(std::string("DpReleaseServer: socket(): ") + std::strerror(errno));
  }
  ::unlink(options_.socket_path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, options_.socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status = InternalError(std::string("DpReleaseServer: bind(") +
                                        options_.socket_path + "): " + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 64) < 0) {
    const Status status =
        InternalError(std::string("DpReleaseServer: listen(): ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  return Status::Ok();
}

void DpReleaseServer::Stop() {
  if (stopped_) return;
  stopped_ = true;
  stopping_.store(true, std::memory_order_relaxed);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::shared_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions = sessions_;
  }
  // Half-close: readers wake and exit, but queued responses still flush
  // while the pool drains below.
  for (const auto& session : sessions) ::shutdown(session->fd, SHUT_RD);
  for (const auto& session : sessions) {
    if (session->reader.joinable()) session->reader.join();
  }
  pool_.reset();
  for (const auto& session : sessions) {
    ::close(session->fd);
    session->fd = -1;
  }
  ::unlink(options_.socket_path.c_str());
}

Status DpReleaseServer::RegisterDataset(const std::string& name, ServedDataset dataset) {
  if (name.empty()) return InvalidArgumentError("RegisterDataset: name must be non-empty");
  if (dataset.data.empty()) {
    return InvalidArgumentError("RegisterDataset: dataset must be non-empty");
  }
  if (dataset.loss == nullptr) return InvalidArgumentError("RegisterDataset: loss must be set");
  if (!(dataset.label_hi > dataset.label_lo)) {
    return InvalidArgumentError("RegisterDataset: label bounds must be a non-empty range");
  }
  std::lock_guard<std::mutex> lock(datasets_mu_);
  datasets_.insert_or_assign(name, std::move(dataset));
  return Status::Ok();
}

StatusOr<const ServedDataset*> DpReleaseServer::FindDataset(const std::string& name) const {
  std::lock_guard<std::mutex> lock(datasets_mu_);
  const auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return NotFoundError("service: unknown dataset \"" + name + "\"");
  }
  // unordered_map values are pointer-stable under insertion; datasets are
  // registered before traffic references them.
  return &it->second;
}

DpReleaseServer::TenantRuntime& DpReleaseServer::RuntimeFor(const std::string& tenant_id) {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  auto it = tenants_.find(tenant_id);
  if (it == tenants_.end()) {
    it = tenants_
             .emplace(tenant_id, std::make_unique<TenantRuntime>(
                                     TenantSeed(options_.seed, tenant_id)))
             .first;
  }
  return *it->second;
}

void DpReleaseServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket shut down (Stop) or unrecoverable
    }
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      return;
    }
    const Status admitted = robustness::Inject("service.accept");
    if (!admitted.ok()) {
      // One structured rejection frame (request_id 0), then close — the
      // client sees UNAVAILABLE and may retry; no request was consumed.
      Response rejection;
      rejection.opcode = Opcode::kPing;
      rejection.request_id = 0;
      rejection.code = admitted.code();
      rejection.message = admitted.message();
      std::string frame;
      AppendFrame(&frame, EncodeResponse(rejection));
      SendAll(fd, frame);
      ::close(fd);
      if (obs::MetricsEnabled()) {
        static obs::Counter* const rejected = ServiceCounter("service.connections.rejected");
        rejected->Increment();
      }
      continue;
    }
    auto session = std::make_shared<Session>();
    session->fd = fd;
    session->decoder = FrameDecoder(options_.max_payload_bytes);
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      sessions_.push_back(session);
    }
    if (obs::MetricsEnabled()) {
      static obs::Counter* const accepted = ServiceCounter("service.connections.accepted");
      accepted->Increment();
    }
    session->reader = std::thread(&DpReleaseServer::ReaderLoop, this, session);
  }
}

void DpReleaseServer::ReaderLoop(const std::shared_ptr<Session>& session) {
  char buffer[4096];
  bool failed = false;
  while (!failed) {
    const ssize_t n = ::recv(session->fd, buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // EOF
    session->decoder.Feed(buffer, static_cast<std::size_t>(n));
    for (;;) {
      std::string payload;
      StatusOr<bool> next = session->decoder.Next(&payload);
      if (!next.ok()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        WriteProtocolError(session, next.status());
        failed = true;
        break;
      }
      if (!*next) break;
      StatusOr<Request> request = DecodeRequest(payload.data(), payload.size());
      if (!request.ok()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        WriteProtocolError(session, request.status());
        failed = true;
        break;
      }
      {
        std::lock_guard<std::mutex> lock(session->mu);
        session->queue.push_back(std::move(*request));
      }
      ScheduleDrain(session);
    }
  }
  if (!failed && session->decoder.PendingBytes() > 0 &&
      !stopping_.load(std::memory_order_relaxed)) {
    // EOF mid-frame: the peer truncated a length prefix or payload.
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    if (obs::MetricsEnabled()) {
      static obs::Counter* const truncated = ServiceCounter("service.protocol_errors");
      truncated->Increment();
    }
  }
  // Stop reading; queued responses still flush through the write side.
  ::shutdown(session->fd, SHUT_RD);
}

void DpReleaseServer::ScheduleDrain(const std::shared_ptr<Session>& session) {
  {
    std::lock_guard<std::mutex> lock(session->mu);
    if (session->drain_scheduled) return;
    session->drain_scheduled = true;
  }
  pool_->Submit([this, session] { DrainSession(session); });
}

void DpReleaseServer::DrainSession(const std::shared_ptr<Session>& session) {
  for (;;) {
    std::vector<Request> batch;
    {
      std::lock_guard<std::mutex> lock(session->mu);
      if (session->queue.empty()) {
        // The serial-executor handoff: clearing the flag under the same
        // lock the reader checks means either we see its request or it
        // schedules a fresh drain — never a stranded queue.
        session->drain_scheduled = false;
        return;
      }
      batch.assign(std::make_move_iterator(session->queue.begin()),
                   std::make_move_iterator(session->queue.end()));
      session->queue.clear();
    }
    std::size_t i = 0;
    while (i < batch.size()) i = ProcessRun(session, batch, i);
  }
}

std::size_t DpReleaseServer::ProcessRun(const std::shared_ptr<Session>& session,
                                        const std::vector<Request>& requests,
                                        std::size_t begin) {
  const Request& head = requests[begin];
  if (head.opcode == Opcode::kStreamAppend) {
    // Mutates tenant state, so it takes the tenant lock — never the
    // lock-free ProcessSimple path. SameShape never coalesces it.
    WriteResponse(session, ProcessStreamAppend(head));
    return begin + 1;
  }
  if (head.opcode != Opcode::kRelease && head.opcode != Opcode::kGibbsSample) {
    WriteResponse(session, ProcessSimple(head));
    return begin + 1;
  }

  std::size_t end = begin + 1;
  while (end < requests.size() && end - begin < options_.max_coalesced_requests &&
         SameShape(requests[end], head)) {
    ++end;
  }
  const std::size_t run_size = end - begin;

  obs::TraceSpan span(head.opcode == Opcode::kGibbsSample ? "service.gibbs_run"
                                                          : "service.release_run");
  if (obs::MetricsEnabled()) {
    static obs::Counter* const total = ServiceCounter("service.requests");
    total->Increment(run_size);
    if (run_size > 1) {
      static obs::Counter* const coalesced = ServiceCounter("service.batched_requests");
      coalesced->Increment(run_size);
    }
  }

  // Run-level validation: dataset, parameters, and the per-draw privacy
  // cost — shared by every request of the run (identical shape). Done
  // BEFORE admission so an unservable request can never be charged.
  const ServedDataset* dataset = nullptr;
  StatusOr<PrivacyBudget> per_draw = ValidateSampling(head, &dataset);

  struct Slot {
    Response response;
    bool granted = false;
    std::uint32_t count = 0;
  };
  std::vector<Slot> slots(run_size);
  std::size_t total_draws = 0;

  TenantRuntime& runtime = RuntimeFor(head.tenant_id);
  // One critical section per run: admission and sampling under the tenant
  // lock, so a tenant's requests serialize (and its Rng stream stays a pure
  // function of its request order) even when arriving over many sessions.
  std::lock_guard<std::mutex> tenant_lock(runtime.mu);

  // A tenant with a live stream over this dataset re-tilts from it: the
  // per-draw cost uses the LIVE size (Δ(R̂) <= B/n_live, Theorem 4.1 against
  // the stream), and the draws below go through SampleStreamingBatch.
  // Resolved under the tenant lock so the size admission charges for is
  // exactly the size the draw sees.
  TenantStream* stream = nullptr;
  if (head.opcode == Opcode::kGibbsSample && per_draw.ok()) {
    const auto stream_it = runtime.streams.find(head.dataset);
    if (stream_it != runtime.streams.end()) {
      stream = stream_it->second.get();
      const double sensitivity =
          dataset->loss->UpperBound() / static_cast<double>(stream->profile.size());
      per_draw = PrivacyBudget{2.0 * head.lambda * sensitivity, 0.0};
    }
  }

  for (std::size_t k = 0; k < run_size; ++k) {
    const Request& request = requests[begin + k];
    Slot& slot = slots[k];
    const Status dispatched = robustness::Inject("service.dispatch");
    if (!dispatched.ok()) {
      // Fails before admission: structured UNAVAILABLE, no ledger mutation.
      slot.response = Response::Error(request, dispatched);
      continue;
    }
    if (!per_draw.ok()) {
      slot.response = Response::Error(request, per_draw.status());
      continue;
    }
    if (request.count == 0 || request.count > options_.max_count_per_request) {
      slot.response = Response::Error(
          request, InvalidArgumentError("service: count must be in [1, " +
                                        std::to_string(options_.max_count_per_request) +
                                        "], got " + std::to_string(request.count)));
      continue;
    }
    const PrivacyBudget cost{per_draw->epsilon * static_cast<double>(request.count),
                             per_draw->delta * static_cast<double>(request.count)};
    const Status admitted = accountant_.SpendOrReject(
        request.tenant_id, cost,
        head.opcode == Opcode::kGibbsSample ? "service.gibbs" : "service.release");
    if (!admitted.ok()) {
      slot.response = Response::Error(request, admitted);
      continue;
    }
    slot.granted = true;
    slot.count = request.count;
    slot.response.opcode = request.opcode;
    slot.response.request_id = request.request_id;
    slot.response.charged_epsilon = cost.epsilon;
    slot.response.charged_delta = cost.delta;
    total_draws += request.count;
  }

  // Sampling: the granted draws of the whole run funnel into ONE batched
  // call on the tenant's Rng. The batch APIs are stream-identical to
  // per-draw calls, so the split-back below is bitwise what serial
  // processing would have produced.
  if (total_draws > 0) {
    static obs::Histogram* const gibbs_us = obs::GlobalMetrics().GetHistogram(
        "service.gibbs.us", obs::DefaultLatencyBucketsUs());
    static obs::Histogram* const release_us = obs::GlobalMetrics().GetHistogram(
        "service.release.us", obs::DefaultLatencyBucketsUs());
    Status sampled = Status::Ok();
    std::size_t produced = 0;
    std::vector<std::size_t> gibbs_draws;
    std::vector<double> release_draws;
    if (head.opcode == Opcode::kGibbsSample) {
      obs::LatencyTimer timer(obs::MetricsEnabled() ? gibbs_us : nullptr);
      StatusOr<GibbsEstimator> estimator = GibbsEstimator::CreateUniform(
          dataset->loss.get(), dataset->hypotheses, head.lambda);
      if (!estimator.ok()) {
        sampled = estimator.status();
      } else {
        sampled = stream != nullptr
                      ? estimator->SampleStreamingBatch(stream->profile, &runtime.rng,
                                                        total_draws, &gibbs_draws)
                      : estimator->SampleBatch(dataset->data, &runtime.rng, total_draws,
                                               &gibbs_draws);
        produced = sampled.ok() ? gibbs_draws.size() : 0;
      }
    } else if (head.mechanism == MechanismKind::kLaplace) {
      obs::LatencyTimer timer(obs::MetricsEnabled() ? release_us : nullptr);
      StatusOr<SensitiveQuery> query = BuildQuery(head, *dataset);
      StatusOr<LaplaceMechanism> mechanism =
          query.ok() ? LaplaceMechanism::Create(std::move(*query), head.epsilon)
                     : StatusOr<LaplaceMechanism>(query.status());
      if (!mechanism.ok()) {
        sampled = mechanism.status();
      } else {
        sampled =
            mechanism->ReleaseBatch(dataset->data, &runtime.rng, total_draws, &release_draws);
        // On error ReleaseBatch leaves the successful prefix in place —
        // requests fully inside it still succeed below.
        produced = release_draws.size();
        if (sampled.ok()) produced = total_draws;
      }
    } else {  // Gaussian
      obs::LatencyTimer timer(obs::MetricsEnabled() ? release_us : nullptr);
      StatusOr<SensitiveQuery> query = BuildQuery(head, *dataset);
      StatusOr<GaussianMechanism> mechanism =
          query.ok() ? GaussianMechanism::Create(std::move(*query),
                                                 PrivacyBudget{head.epsilon, head.delta})
                     : StatusOr<GaussianMechanism>(query.status());
      if (!mechanism.ok()) {
        sampled = mechanism.status();
      } else {
        release_draws.reserve(total_draws);
        for (std::size_t j = 0; j < total_draws && sampled.ok(); ++j) {
          StatusOr<double> draw = mechanism->Release(dataset->data, &runtime.rng);
          if (!draw.ok()) {
            sampled = draw.status();
          } else {
            release_draws.push_back(*draw);
          }
        }
        produced = release_draws.size();
      }
    }

    // Split the draws back in request order. A request whose draws fall
    // entirely inside the successful prefix answers OK; from the failing
    // draw onward, granted requests answer with the sampling error. Their
    // spends STAND — admission is fail-closed; once granted, budget is
    // never refunded (the randomness may have been partially consumed).
    std::size_t offset = 0;
    std::size_t orphaned = 0;
    for (Slot& slot : slots) {
      if (!slot.granted) continue;
      if (sampled.ok() || offset + slot.count <= produced) {
        if (head.opcode == Opcode::kGibbsSample) {
          slot.response.indices.reserve(slot.count);
          for (std::uint32_t j = 0; j < slot.count; ++j) {
            slot.response.indices.push_back(
                static_cast<std::uint32_t>(gibbs_draws[offset + j]));
          }
        } else {
          slot.response.values.assign(release_draws.begin() + offset,
                                      release_draws.begin() + offset + slot.count);
        }
      } else {
        const Request& request = requests[begin + (&slot - slots.data())];
        slot.response = Response::Error(request, sampled);
        ++orphaned;
      }
      offset += slot.count;
    }
    if (orphaned > 0 && obs::MetricsEnabled()) {
      static obs::Counter* const orphans = ServiceCounter("service.orphaned_spends");
      orphans->Increment(orphaned);
    }
    if (obs::MetricsEnabled() && run_size > 1) {
      static obs::Counter* const batched = ServiceCounter("service.batched_draws");
      batched->Increment(total_draws);
    }
  }

  for (const Slot& slot : slots) WriteResponse(session, slot.response);
  return end;
}

StatusOr<SensitiveQuery> DpReleaseServer::BuildQuery(const Request& request,
                                                     const ServedDataset& dataset) {
  switch (request.query) {
    case QueryKind::kMean:
      return BoundedMeanQuery(dataset.label_lo, dataset.label_hi, dataset.data.size());
    case QueryKind::kSum:
      return BoundedSumQuery(dataset.label_lo, dataset.label_hi);
    case QueryKind::kCountPositive:
      return CountQuery([](const Example& example) { return example.label > 0.0; });
  }
  return InvalidArgumentError("service: unknown query kind");
}

StatusOr<PrivacyBudget> DpReleaseServer::ValidateSampling(const Request& request,
                                                          const ServedDataset** dataset) const {
  DPLEARN_ASSIGN_OR_RETURN(const ServedDataset* found, FindDataset(request.dataset));
  *dataset = found;
  if (request.opcode == Opcode::kGibbsSample) {
    if (!(request.lambda > 0.0) || !std::isfinite(request.lambda)) {
      return InvalidArgumentError("service: lambda must be positive and finite");
    }
    // Theorem 4.1: one Gibbs draw is 2λΔ(R̂)-DP with Δ(R̂) <= B/n.
    const double sensitivity =
        found->loss->UpperBound() / static_cast<double>(found->data.size());
    return PrivacyBudget{2.0 * request.lambda * sensitivity, 0.0};
  }
  if (!(request.epsilon > 0.0) || !std::isfinite(request.epsilon)) {
    return InvalidArgumentError("service: epsilon must be positive and finite");
  }
  if (request.mechanism == MechanismKind::kLaplace) {
    if (request.delta != 0.0) {
      return InvalidArgumentError("service: the Laplace mechanism is pure ε-DP; delta must be 0");
    }
    return PrivacyBudget{request.epsilon, 0.0};
  }
  // Gaussian: mirror GaussianMechanism::Create's domain so an unservable
  // request is rejected before admission can charge it.
  if (request.epsilon > 1.0) {
    return InvalidArgumentError("service: Gaussian mechanism requires epsilon in (0,1]");
  }
  if (!(request.delta > 0.0) || request.delta >= 1.0) {
    return InvalidArgumentError("service: Gaussian mechanism requires delta in (0,1)");
  }
  return PrivacyBudget{request.epsilon, request.delta};
}

Response DpReleaseServer::ProcessSimple(const Request& request) {
  obs::TraceSpan span("service.request");
  if (obs::MetricsEnabled()) {
    static obs::Counter* const total = ServiceCounter("service.requests");
    total->Increment();
  }
  const Status dispatched = robustness::Inject("service.dispatch");
  if (!dispatched.ok()) return Response::Error(request, dispatched);

  Response response;
  response.opcode = request.opcode;
  response.request_id = request.request_id;
  switch (request.opcode) {
    case Opcode::kPing:
      break;
    case Opcode::kRegisterTenant: {
      const Status registered = accountant_.RegisterTenant(
          request.tenant_id, PrivacyBudget{request.epsilon, request.delta});
      if (!registered.ok()) return Response::Error(request, registered);
      break;
    }
    case Opcode::kBudgetQuery: {
      StatusOr<obs::TenantBudgetTelemetry::TenantView> view =
          accountant_.View(request.tenant_id);
      if (!view.ok()) return Response::Error(request, view.status());
      response.total_epsilon = view->total.epsilon;
      response.total_delta = view->total.delta;
      response.spent_epsilon = view->spent.epsilon;
      response.spent_delta = view->spent.delta;
      response.remaining_epsilon = view->remaining.epsilon;
      response.remaining_delta = view->remaining.delta;
      response.spends = view->spends;
      response.denials = view->denials;
      break;
    }
    case Opcode::kReplayVerify: {
      const Status verified = accountant_.ReplayVerifyAll();
      if (!verified.ok()) return Response::Error(request, verified);
      break;
    }
    default:
      return Response::Error(request,
                             InvalidArgumentError("service: opcode not servable here"));
  }
  return response;
}

Response DpReleaseServer::ProcessStreamAppend(const Request& request) {
  obs::TraceSpan span("service.stream_append");
  if (obs::MetricsEnabled()) {
    static obs::Counter* const total = ServiceCounter("service.requests");
    total->Increment();
  }
  const Status dispatched = robustness::Inject("service.dispatch");
  if (!dispatched.ok()) return Response::Error(request, dispatched);

  if (request.tenant_id.empty()) {
    return Response::Error(
        request, InvalidArgumentError("service: StreamAppend requires a tenant id"));
  }
  StatusOr<const ServedDataset*> found = FindDataset(request.dataset);
  if (!found.ok()) return Response::Error(request, found.status());
  const ServedDataset* dataset = *found;

  TenantRuntime& runtime = RuntimeFor(request.tenant_id);
  std::lock_guard<std::mutex> tenant_lock(runtime.mu);

  auto it = runtime.streams.find(request.dataset);
  if (it == runtime.streams.end()) {
    // First append: seed the stream from the served dataset so the streamed
    // posterior continues the batch one (the first kGibbsSample after one
    // append sees n_live = n_base + 1).
    StatusOr<StreamingRiskProfile> profile = StreamingRiskProfile::Create(
        dataset->loss.get(), dataset->hypotheses.thetas(),
        StreamingRiskProfile::Options{});
    if (!profile.ok()) return Response::Error(request, profile.status());
    for (const Example& z : dataset->data.examples()) {
      const Status seeded = profile->AddExample(z);
      if (!seeded.ok()) return Response::Error(request, seeded);
    }
    it = runtime.streams
             .emplace(request.dataset,
                      std::make_unique<TenantStream>(std::move(*profile), dataset->loss))
             .first;
  }

  Example example;
  example.features = Vector(request.features.begin(), request.features.end());
  example.label = request.label;
  const Status appended = it->second->profile.AddExample(example);
  if (!appended.ok()) return Response::Error(request, appended);

  if (obs::MetricsEnabled()) {
    static obs::Counter* const appends = ServiceCounter("service.stream_appends");
    appends->Increment();
  }
  Response response;
  response.opcode = request.opcode;
  response.request_id = request.request_id;
  response.stream_size = static_cast<std::uint64_t>(it->second->profile.size());
  return response;
}

void DpReleaseServer::WriteResponse(const std::shared_ptr<Session>& session,
                                    const Response& response) {
  CountResponse(response);
  std::string frame;
  AppendFrame(&frame, EncodeResponse(response));
  std::lock_guard<std::mutex> lock(session->write_mu);
  SendAll(session->fd, frame);
}

void DpReleaseServer::WriteProtocolError(const std::shared_ptr<Session>& session,
                                         const Status& status) {
  if (obs::MetricsEnabled()) {
    static obs::Counter* const errors = ServiceCounter("service.protocol_errors");
    errors->Increment();
  }
  // The request was undecodable, so there is no request_id to echo:
  // unsolicited-frame convention (kPing, id 0) with the decode diagnostic.
  Response response;
  response.opcode = Opcode::kPing;
  response.request_id = 0;
  response.code = status.code();
  response.message = status.message();
  WriteResponse(session, response);
}

}  // namespace service
}  // namespace dplearn
