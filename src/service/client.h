#ifndef DPLEARN_SERVICE_CLIENT_H_
#define DPLEARN_SERVICE_CLIENT_H_

#include <chrono>
#include <string>

#include "service/protocol.h"
#include "util/status.h"

namespace dplearn {
namespace service {

/// Blocking client for the DP release service: one AF_UNIX connection,
/// length-prefixed frames (protocol.h). Not thread-safe — one client per
/// thread, which is also the shape of the closed-loop load generator.
///
/// Call() is the simple request/response path. Send()/Receive() expose
/// pipelining: several requests may be in flight on the connection, and the
/// server answers them strictly in order, so the k-th Receive() matches the
/// k-th Send(). The coalescing tests drive the batching path this way.
///
/// Error taxonomy at the transport edge: a closed or reset connection is
/// UNAVAILABLE (retry on a fresh connection is safe — the server processes
/// a request entirely before answering it, and an accept-time rejection
/// happens before any request is consumed). A response frame the client
/// cannot decode is INVALID_ARGUMENT. Server-side failures arrive as
/// perfectly ordinary Response objects with a non-OK code.
class DpReleaseClient {
 public:
  /// Connects to the server's socket. UNAVAILABLE when nobody listens.
  static StatusOr<DpReleaseClient> Connect(const std::string& socket_path);

  /// Connect() with up to `attempts` tries spaced by `backoff` — for
  /// racing a server that is still starting up.
  static StatusOr<DpReleaseClient> ConnectWithRetry(const std::string& socket_path,
                                                    int attempts,
                                                    std::chrono::milliseconds backoff);

  ~DpReleaseClient();
  DpReleaseClient(DpReleaseClient&& other) noexcept;
  DpReleaseClient& operator=(DpReleaseClient&& other) noexcept;
  DpReleaseClient(const DpReleaseClient&) = delete;
  DpReleaseClient& operator=(const DpReleaseClient&) = delete;

  /// Send + Receive. The returned Response's `code` carries server-side
  /// errors; the Status carries transport/decode failures only.
  StatusOr<Response> Call(const Request& request);

  /// Writes one request frame without waiting for the answer.
  Status Send(const Request& request);

  /// Blocks for the next response frame. An unsolicited server rejection
  /// (request_id 0, e.g. the `service.accept` fail point) is returned
  /// as-is — callers distinguish it by the zero request_id.
  StatusOr<Response> Receive();

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  explicit DpReleaseClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace service
}  // namespace dplearn

#endif  // DPLEARN_SERVICE_CLIENT_H_
