#ifndef DPLEARN_PROPTEST_GENERATORS_H_
#define DPLEARN_PROPTEST_GENERATORS_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "learning/dataset.h"
#include "learning/hypothesis.h"
#include "learning/loss.h"
#include "proptest/arbitrary.h"
#include "util/status.h"

namespace dplearn {
namespace proptest {

/// Domain-specific instance generators for the paper's invariant suites:
/// datasets, hypothesis grids, loss configurations, probability
/// distributions, and (ε, λ, α, q) parameter ranges. Structured values are
/// generated through small spec structs so shrinking operates on the spec
/// (drop an example, narrow a grid) rather than on opaque objects.

// ---------------------------------------------------------------------------
// Probability distributions.

/// A random probability vector with support size in [min_support,
/// max_support]. The generator mixes three regimes so invariant suites see
/// the shapes that break naive float code: smooth (uniform-ish weights),
/// spiky (one cell carries almost all mass — where rounding drives entropy
/// tiny-negative), and sparse (a fraction of exact zeros — where log(0)
/// conventions matter). Shrinks by cutting support and flattening toward
/// uniform.
Arbitrary<std::vector<double>> ArbitraryDistribution(std::size_t min_support,
                                                     std::size_t max_support);

/// A pair of distributions over one common support — the input shape of
/// every divergence invariant. Second element occasionally equals the
/// first (the D(p‖p) = 0 corner) and occasionally has disjoint support
/// zeros (the +inf corner).
Arbitrary<std::pair<std::vector<double>, std::vector<double>>> ArbitraryDistributionPair(
    std::size_t min_support, std::size_t max_support);

/// A row-stochastic channel matrix with `inputs` rows over `outputs`
/// columns, rows drawn from ArbitraryDistribution (all-positive regime, so
/// composed channels stay strictly positive and DPI ratios stay finite).
Arbitrary<std::vector<std::vector<double>>> ArbitraryChannel(std::size_t inputs,
                                                             std::size_t outputs);

// ---------------------------------------------------------------------------
// Datasets.

/// A Bernoulli dataset (features {1}, labels in {0,1}) of size in
/// [min_n, max_n] — the paper's exactly-enumerable task. Shrinks by
/// dropping examples and zeroing labels.
Arbitrary<Dataset> ArbitraryBernoulliDataset(std::size_t min_n, std::size_t max_n);

/// A bounded regression dataset: feature dim in [1, max_dim], all features
/// and labels in [-radius, radius]. Values include exact zeros, negative
/// values, and magnitudes spread log-uniformly so CSV round-trip and risk
/// paths see both 1e-12 and 1e+6 scales. Shrinks by dropping examples.
Arbitrary<Dataset> ArbitraryRegressionDataset(std::size_t min_n, std::size_t max_n,
                                              std::size_t max_dim, double radius);

// ---------------------------------------------------------------------------
// Hypothesis grids and losses.

/// Spec for a scalar hypothesis grid (FiniteHypothesisClass::ScalarGrid).
struct GridSpec {
  double lo = 0.0;
  double hi = 1.0;
  std::size_t count = 2;
};

/// Random grid over a sub-interval of [-bound, bound] with count in
/// [2, max_count]. Shrinks count toward 2.
Arbitrary<GridSpec> ArbitraryGridSpec(double bound, std::size_t max_count);

/// Materializes the grid (never fails for specs this generator produces).
StatusOr<FiniteHypothesisClass> MakeGrid(const GridSpec& spec);

/// Spec for a bounded loss function.
struct LossConfig {
  enum class Kind { kClippedSquared, kClippedAbsolute, kLogistic } kind =
      Kind::kClippedSquared;
  double clip = 1.0;
};

/// Random loss kind with clip log-uniform in [0.25, 4]. Shrinks clip
/// toward 1 (the canonical [0,1] loss of the paper).
Arbitrary<LossConfig> ArbitraryLossConfig();

/// Materializes the loss. The returned object is self-contained.
std::unique_ptr<LossFunction> MakeLoss(const LossConfig& config);

/// Human-readable rendering (for counterexample reports).
std::string DescribeLossConfig(const LossConfig& config);

// ---------------------------------------------------------------------------
// DP parameter ranges.

/// The (ε, λ, α, q) tuple the mechanism and info-theory suites sweep.
struct DpParams {
  double epsilon = 1.0;  // log-uniform over [1e-3, eps_hi]
  double lambda = 1.0;   // log-uniform over [1e-2, 1e3]
  double alpha = 2.0;    // Rényi order: (0, 4], never exactly 1
  double q = 0.5;        // subsampling rate in (0, 1]
};

/// Random parameter tuple. `eps_hi` controls how far the ε sweep reaches;
/// suites probing the overflow regime pass 1e4 (where the pre-fix
/// subsampling amplification returned NaN), mechanism-release suites pass
/// single digits. Shrinks every coordinate toward benign values (ε, λ → small;
/// α → 2; q → 1).
Arbitrary<DpParams> ArbitraryDpParams(double eps_hi);

}  // namespace proptest
}  // namespace dplearn

#endif  // DPLEARN_PROPTEST_GENERATORS_H_
