#include "proptest/config.h"

#include <cstdio>
#include <cstdlib>

namespace dplearn {
namespace proptest {

Config Config::FromEnv() {
  Config config;
  if (const char* env = std::getenv("DPLEARN_PROPTEST_ITERS"); env != nullptr) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      config.iterations = static_cast<std::size_t>(parsed);
    }
  }
  if (const char* env = std::getenv("DPLEARN_PROPTEST_SEED"); env != nullptr) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') {
      config.seed = static_cast<std::uint64_t>(parsed);
    }
  }
  return config;
}

std::uint64_t IterationSeed(std::uint64_t master_seed, std::size_t iteration) {
  // splitmix64 finalizer over the (seed, iteration) pair — the same mixing
  // the Rng itself uses for seeding, so iteration streams do not correlate
  // with each other or with the master stream.
  std::uint64_t z = master_seed + 0x9e3779b97f4a7c15ULL * (iteration + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace internal {

void ReportFailure(const std::string& report, const std::string& repro_line) {
  std::fprintf(stderr, "%s\n", report.c_str());
  const char* path = std::getenv("DPLEARN_PROPTEST_FAILURE_FILE");
  if (path == nullptr || *path == '\0') return;
  std::FILE* file = std::fopen(path, "a");
  if (file == nullptr) {
    std::fprintf(stderr, "proptest: cannot append repro line to '%s'\n", path);
    return;
  }
  std::fprintf(file, "%s\n", repro_line.c_str());
  std::fclose(file);
}

}  // namespace internal

}  // namespace proptest
}  // namespace dplearn
