#ifndef DPLEARN_PROPTEST_PROPERTY_H_
#define DPLEARN_PROPTEST_PROPERTY_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

#include "proptest/arbitrary.h"
#include "proptest/config.h"
#include "sampling/rng.h"
#include "util/status.h"

namespace dplearn {
namespace proptest {

/// The minimal failing instance of a property, after greedy shrinking.
template <typename T>
struct CounterExample {
  T value{};
  std::string description;    // Arbitrary<T>::Describe of the shrunk value
  std::string message;        // the violation (Status message)
  std::size_t iteration = 0;  // iteration of the original failure
  std::uint64_t seed = 0;     // master seed the run used
  std::size_t shrink_steps = 0;
};

/// Outcome of Check(): either every iteration passed, or a (shrunk)
/// counterexample with a one-line reproduction recipe.
template <typename T>
struct Result {
  std::string property;
  std::size_t iterations_run = 0;
  std::optional<CounterExample<T>> counterexample;

  bool ok() const { return !counterexample.has_value(); }

  /// The one-line repro contract: rerunning with this environment replays
  /// the failing iteration (and everything before it) bit-for-bit.
  std::string ReproLine() const {
    if (ok()) return "";
    std::ostringstream os;
    os << "DPLEARN_PROPTEST_SEED=" << counterexample->seed
       << " DPLEARN_PROPTEST_ITERS=" << (counterexample->iteration + 1)
       << "  # property '" << property << "' fails at iteration "
       << counterexample->iteration;
    return os.str();
  }

  /// Full human-readable report for test output.
  std::string Describe() const {
    if (ok()) {
      return "property '" + property + "' held for " + std::to_string(iterations_run) +
             " iterations";
    }
    std::ostringstream os;
    os << "property '" << property << "' FAILED\n"
       << "  violation: " << counterexample->message << "\n"
       << "  counterexample (after " << counterexample->shrink_steps
       << " shrink steps): " << counterexample->description << "\n"
       << "  repro: " << ReproLine();
    return os.str();
  }
};

/// Runs `property` against `config.iterations` random instances of `arb`.
/// `property` returns Status::Ok() when the invariant holds; the message of
/// a non-OK Status becomes the counterexample's violation text. On failure
/// the instance is shrunk greedily (first still-failing candidate wins,
/// repeat until no candidate fails or the step budget is spent), the report
/// is printed to stderr, and the repro line is appended to
/// DPLEARN_PROPTEST_FAILURE_FILE when that is set.
template <typename T, typename Prop>
Result<T> Check(const std::string& name, const Arbitrary<T>& arb, Prop&& property,
                const Config& config = Config::FromEnv()) {
  Result<T> result;
  result.property = name;
  for (std::size_t i = 0; i < config.iterations; ++i) {
    Rng rng(IterationSeed(config.seed, i));
    T value = arb.generate(&rng);
    Status verdict = property(static_cast<const T&>(value));
    ++result.iterations_run;
    if (verdict.ok()) continue;

    // Greedy shrink: restart from the first candidate that still fails.
    T best = std::move(value);
    Status best_verdict = std::move(verdict);
    std::size_t steps = 0;
    bool improved = true;
    while (improved && steps < config.max_shrink_steps) {
      improved = false;
      for (T& candidate : arb.ShrinkCandidates(best)) {
        ++steps;
        Status s = property(static_cast<const T&>(candidate));
        if (!s.ok()) {
          best = std::move(candidate);
          best_verdict = std::move(s);
          improved = true;
          break;
        }
        if (steps >= config.max_shrink_steps) break;
      }
    }

    CounterExample<T> ce;
    ce.description = arb.Describe(best);
    ce.value = std::move(best);
    ce.message = best_verdict.message();
    ce.iteration = i;
    ce.seed = config.seed;
    ce.shrink_steps = steps;
    result.counterexample = std::move(ce);
    internal::ReportFailure(result.Describe(), result.ReproLine());
    return result;
  }
  return result;
}

/// Builds the failure Status for a violated invariant; use in property
/// bodies as `return Violation() << "sum = " << sum;`-style via Format.
inline Status Violation(const std::string& message) {
  return FailedPreconditionError(message);
}

}  // namespace proptest
}  // namespace dplearn

/// gtest glue: asserts a Result is ok and prints its full report otherwise.
#define DPLEARN_EXPECT_PROPERTY(result_expr)                    \
  do {                                                          \
    const auto& dplearn_proptest_result = (result_expr);        \
    EXPECT_TRUE(dplearn_proptest_result.ok())                   \
        << dplearn_proptest_result.Describe();                  \
  } while (0)

#endif  // DPLEARN_PROPTEST_PROPERTY_H_
