#include "proptest/generators.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "util/math_util.h"

namespace dplearn {
namespace proptest {
namespace {

std::string DescribeVector(const std::vector<double>& v) {
  std::ostringstream os;
  os.precision(17);
  os << "[" << v.size() << "]{";
  const std::size_t shown = std::min<std::size_t>(v.size(), 16);
  for (std::size_t i = 0; i < shown; ++i) {
    if (i > 0) os << ", ";
    os << v[i];
  }
  if (shown < v.size()) os << ", ...";
  os << "}";
  return os.str();
}

std::string DescribeDataset(const Dataset& data) {
  std::ostringstream os;
  os.precision(17);
  os << "Dataset[n=" << data.size() << ", dim=" << data.FeatureDim() << "]{";
  const std::size_t shown = std::min<std::size_t>(data.size(), 8);
  for (std::size_t i = 0; i < shown; ++i) {
    if (i > 0) os << ", ";
    os << "(";
    for (std::size_t j = 0; j < data.at(i).features.size(); ++j) {
      if (j > 0) os << ",";
      os << data.at(i).features[j];
    }
    os << " ; " << data.at(i).label << ")";
  }
  if (shown < data.size()) os << ", ...";
  os << "}";
  return os.str();
}

/// Raw weights for one distribution in the requested regime; normalized by
/// the caller. `regime` 0 = smooth, 1 = spiky, 2 = sparse.
std::vector<double> RawWeights(Rng* rng, std::size_t support, int regime) {
  std::vector<double> w(support);
  for (std::size_t i = 0; i < support; ++i) w[i] = 0.05 + rng->NextDouble();
  if (regime == 1 && support > 1) {
    // Near-point-mass: one cell dwarfs the rest by many orders of magnitude.
    const std::size_t spike = static_cast<std::size_t>(rng->NextBounded(support));
    for (std::size_t i = 0; i < support; ++i) {
      w[i] = (i == spike) ? 1.0 : 1e-13 * rng->NextDouble();
    }
  } else if (regime == 2 && support > 2) {
    // Exact zeros on a random subset (never all cells).
    for (std::size_t i = 0; i < support; ++i) {
      if (rng->NextDouble() < 0.4) w[i] = 0.0;
    }
    bool any = false;
    for (double v : w) any = any || v > 0.0;
    if (!any) w[0] = 1.0;
  }
  return w;
}

std::vector<double> NormalizeOrUniform(std::vector<double> w) {
  auto normalized = Normalize(w);
  if (normalized.ok()) return std::move(normalized).value();
  return std::vector<double>(w.size(), 1.0 / static_cast<double>(w.size()));
}

/// Shrink a distribution: halve the support (renormalizing what remains)
/// and flatten toward uniform.
std::vector<std::vector<double>> ShrinkDistribution(const std::vector<double>& p,
                                                    std::size_t min_support) {
  std::vector<std::vector<double>> out;
  if (p.size() > min_support) {
    const std::size_t half = std::max(min_support, p.size() / 2);
    std::vector<double> cut(p.begin(), p.begin() + static_cast<std::ptrdiff_t>(half));
    out.push_back(NormalizeOrUniform(std::move(cut)));
  }
  const std::vector<double> uniform(p.size(), 1.0 / static_cast<double>(p.size()));
  if (p != uniform) out.push_back(uniform);
  return out;
}

}  // namespace

Arbitrary<std::vector<double>> ArbitraryDistribution(std::size_t min_support,
                                                     std::size_t max_support) {
  Arbitrary<std::vector<double>> arb;
  arb.generate = [min_support, max_support](Rng* rng) {
    const std::size_t support =
        min_support + static_cast<std::size_t>(rng->NextBounded(max_support - min_support + 1));
    const int regime = static_cast<int>(rng->NextBounded(3));
    return NormalizeOrUniform(RawWeights(rng, support, regime));
  };
  arb.shrink = [min_support](const std::vector<double>& p) {
    return ShrinkDistribution(p, min_support);
  };
  arb.describe = DescribeVector;
  return arb;
}

Arbitrary<std::pair<std::vector<double>, std::vector<double>>> ArbitraryDistributionPair(
    std::size_t min_support, std::size_t max_support) {
  Arbitrary<std::pair<std::vector<double>, std::vector<double>>> arb;
  arb.generate = [min_support, max_support](Rng* rng) {
    const std::size_t support =
        min_support + static_cast<std::size_t>(rng->NextBounded(max_support - min_support + 1));
    const int regime_p = static_cast<int>(rng->NextBounded(3));
    std::vector<double> p = NormalizeOrUniform(RawWeights(rng, support, regime_p));
    // 1-in-8: q == p exactly (divergence must be exactly clamped to 0).
    if (rng->NextBounded(8) == 0) return std::make_pair(p, p);
    const int regime_q = static_cast<int>(rng->NextBounded(3));
    std::vector<double> q = NormalizeOrUniform(RawWeights(rng, support, regime_q));
    return std::make_pair(std::move(p), std::move(q));
  };
  arb.shrink = [min_support](const std::pair<std::vector<double>, std::vector<double>>& v) {
    std::vector<std::pair<std::vector<double>, std::vector<double>>> out;
    // Collapse to the p == q diagonal first (the simplest failing pair, if
    // the bug is in the clamp policy), then shrink each side.
    if (v.first != v.second) out.emplace_back(v.first, v.first);
    for (auto& p : ShrinkDistribution(v.first, min_support)) {
      if (p.size() == v.second.size()) out.emplace_back(std::move(p), v.second);
    }
    for (auto& q : ShrinkDistribution(v.second, min_support)) {
      if (q.size() == v.first.size()) out.emplace_back(v.first, std::move(q));
    }
    return out;
  };
  arb.describe = [](const std::pair<std::vector<double>, std::vector<double>>& v) {
    return "p=" + DescribeVector(v.first) + " q=" + DescribeVector(v.second);
  };
  return arb;
}

Arbitrary<std::vector<std::vector<double>>> ArbitraryChannel(std::size_t inputs,
                                                             std::size_t outputs) {
  Arbitrary<std::vector<std::vector<double>>> arb;
  arb.generate = [inputs, outputs](Rng* rng) {
    std::vector<std::vector<double>> rows(inputs);
    for (std::vector<double>& row : rows) {
      // Strictly positive rows: DPI and composition invariants then never
      // hit the 0/0 output cells that are tested separately.
      row = NormalizeOrUniform(RawWeights(rng, outputs, /*regime=*/0));
    }
    return rows;
  };
  arb.shrink = [](const std::vector<std::vector<double>>& w) {
    std::vector<std::vector<std::vector<double>>> out;
    // Flatten rows toward the uniform channel (which carries no information).
    std::vector<std::vector<double>> uniform = w;
    for (std::vector<double>& row : uniform) {
      row.assign(row.size(), 1.0 / static_cast<double>(row.size()));
    }
    if (uniform != w) out.push_back(std::move(uniform));
    return out;
  };
  arb.describe = [](const std::vector<std::vector<double>>& w) {
    std::ostringstream os;
    os << "channel[" << w.size() << "x" << (w.empty() ? 0 : w[0].size()) << "]";
    return os.str();
  };
  return arb;
}

Arbitrary<Dataset> ArbitraryBernoulliDataset(std::size_t min_n, std::size_t max_n) {
  Arbitrary<Dataset> arb;
  arb.generate = [min_n, max_n](Rng* rng) {
    const std::size_t n =
        min_n + static_cast<std::size_t>(rng->NextBounded(max_n - min_n + 1));
    // Random bias per dataset so all-zeros / all-ones samples appear.
    const double p = rng->NextDouble();
    Dataset data;
    for (std::size_t i = 0; i < n; ++i) {
      data.Add(Example{Vector{1.0}, rng->NextDouble() < p ? 1.0 : 0.0});
    }
    return data;
  };
  arb.shrink = [min_n](const Dataset& data) {
    std::vector<Dataset> out;
    if (data.size() > min_n) {
      Dataset half(std::vector<Example>(
          data.examples().begin(),
          data.examples().begin() +
              static_cast<std::ptrdiff_t>(std::max(min_n, data.size() / 2))));
      out.push_back(std::move(half));
      Dataset drop_last(std::vector<Example>(data.examples().begin(),
                                             data.examples().end() - 1));
      out.push_back(std::move(drop_last));
    }
    // Zero the first nonzero label.
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (data.at(i).label != 0.0) {
        auto replaced = data.ReplaceExample(i, Example{Vector{1.0}, 0.0});
        if (replaced.ok()) out.push_back(std::move(replaced).value());
        break;
      }
    }
    return out;
  };
  arb.describe = DescribeDataset;
  return arb;
}

Arbitrary<Dataset> ArbitraryRegressionDataset(std::size_t min_n, std::size_t max_n,
                                              std::size_t max_dim, double radius) {
  Arbitrary<Dataset> arb;
  arb.generate = [min_n, max_n, max_dim, radius](Rng* rng) {
    const std::size_t n =
        min_n + static_cast<std::size_t>(rng->NextBounded(max_n - min_n + 1));
    const std::size_t dim = 1 + static_cast<std::size_t>(rng->NextBounded(max_dim));
    Dataset data;
    auto draw = [&](double r) {
      // Mix exact zeros, uniform magnitudes, and log-uniform tiny/large
      // magnitudes, both signs.
      const std::uint64_t pick = rng->NextBounded(4);
      if (pick == 0) return 0.0;
      const double sign = rng->NextBounded(2) == 0 ? -1.0 : 1.0;
      if (pick == 1) return sign * r * rng->NextDouble();
      const double mag = std::exp(std::log(1e-12) * rng->NextDouble());  // (0, 1]
      return sign * r * mag;
    };
    for (std::size_t i = 0; i < n; ++i) {
      Example z;
      z.features.resize(dim);
      for (double& x : z.features) x = draw(radius);
      z.label = draw(radius);
      data.Add(std::move(z));
    }
    return data;
  };
  arb.shrink = [min_n](const Dataset& data) {
    std::vector<Dataset> out;
    if (data.size() > min_n) {
      Dataset half(std::vector<Example>(
          data.examples().begin(),
          data.examples().begin() +
              static_cast<std::ptrdiff_t>(std::max(min_n, data.size() / 2))));
      out.push_back(std::move(half));
      Dataset drop_last(std::vector<Example>(data.examples().begin(),
                                             data.examples().end() - 1));
      out.push_back(std::move(drop_last));
    }
    return out;
  };
  arb.describe = DescribeDataset;
  return arb;
}

Arbitrary<GridSpec> ArbitraryGridSpec(double bound, std::size_t max_count) {
  Arbitrary<GridSpec> arb;
  arb.generate = [bound, max_count](Rng* rng) {
    GridSpec spec;
    spec.lo = -bound + 2.0 * bound * rng->NextDouble();
    spec.hi = spec.lo + 1e-3 + (bound - spec.lo) * rng->NextDouble();
    spec.count = 2 + static_cast<std::size_t>(rng->NextBounded(max_count - 1));
    return spec;
  };
  arb.shrink = [](const GridSpec& spec) {
    std::vector<GridSpec> out;
    for (std::size_t count : ShrinkSizeToward(spec.count, 2)) {
      GridSpec s = spec;
      s.count = count;
      out.push_back(s);
    }
    return out;
  };
  arb.describe = [](const GridSpec& spec) {
    std::ostringstream os;
    os.precision(17);
    os << "grid[" << spec.lo << ", " << spec.hi << "; count=" << spec.count << "]";
    return os.str();
  };
  return arb;
}

StatusOr<FiniteHypothesisClass> MakeGrid(const GridSpec& spec) {
  return FiniteHypothesisClass::ScalarGrid(spec.lo, spec.hi, spec.count);
}

Arbitrary<LossConfig> ArbitraryLossConfig() {
  Arbitrary<LossConfig> arb;
  arb.generate = [](Rng* rng) {
    LossConfig config;
    switch (rng->NextBounded(3)) {
      case 0: config.kind = LossConfig::Kind::kClippedSquared; break;
      case 1: config.kind = LossConfig::Kind::kClippedAbsolute; break;
      default: config.kind = LossConfig::Kind::kLogistic; break;
    }
    config.clip = std::exp(std::log(0.25) + std::log(16.0) * rng->NextDouble());
    return config;
  };
  arb.shrink = [](const LossConfig& config) {
    std::vector<LossConfig> out;
    for (double clip : ShrinkDoubleToward(config.clip, 1.0)) {
      LossConfig c = config;
      c.clip = clip;
      out.push_back(c);
    }
    if (config.kind != LossConfig::Kind::kClippedSquared) {
      LossConfig c = config;
      c.kind = LossConfig::Kind::kClippedSquared;
      out.push_back(c);
    }
    return out;
  };
  arb.describe = DescribeLossConfig;
  return arb;
}

std::unique_ptr<LossFunction> MakeLoss(const LossConfig& config) {
  switch (config.kind) {
    case LossConfig::Kind::kClippedSquared:
      return std::make_unique<ClippedSquaredLoss>(config.clip);
    case LossConfig::Kind::kClippedAbsolute:
      return std::make_unique<ClippedAbsoluteLoss>(config.clip);
    case LossConfig::Kind::kLogistic:
      return std::make_unique<LogisticLoss>(config.clip);
  }
  return std::make_unique<ClippedSquaredLoss>(config.clip);
}

std::string DescribeLossConfig(const LossConfig& config) {
  std::ostringstream os;
  os.precision(17);
  switch (config.kind) {
    case LossConfig::Kind::kClippedSquared: os << "clipped_squared"; break;
    case LossConfig::Kind::kClippedAbsolute: os << "clipped_absolute"; break;
    case LossConfig::Kind::kLogistic: os << "logistic"; break;
  }
  os << "(clip=" << config.clip << ")";
  return os.str();
}

Arbitrary<DpParams> ArbitraryDpParams(double eps_hi) {
  Arbitrary<DpParams> arb;
  arb.generate = [eps_hi](Rng* rng) {
    DpParams params;
    params.epsilon = std::exp(std::log(1e-3) + std::log(eps_hi / 1e-3) * rng->NextDouble());
    params.lambda = std::exp(std::log(1e-2) + std::log(1e5) * rng->NextDouble());
    // Rényi order in (0, 4], bounced off 1 (where the divergence is
    // undefined and callers switch to KL).
    params.alpha = 4.0 * rng->NextDoubleOpen();
    if (std::fabs(params.alpha - 1.0) < 1e-3) params.alpha = 1.5;
    params.q = rng->NextDoubleOpen();
    if (rng->NextBounded(8) == 0) params.q = 1.0;  // the q = 1 (no-op) corner
    return params;
  };
  arb.shrink = [](const DpParams& params) {
    std::vector<DpParams> out;
    for (double eps : ShrinkDoubleToward(params.epsilon, 1e-3)) {
      DpParams p = params;
      p.epsilon = eps;
      out.push_back(p);
    }
    for (double lambda : ShrinkDoubleToward(params.lambda, 1e-2)) {
      DpParams p = params;
      p.lambda = lambda;
      out.push_back(p);
    }
    for (double q : ShrinkDoubleToward(params.q, 1.0)) {
      DpParams p = params;
      p.q = q;
      out.push_back(p);
    }
    if (params.alpha != 2.0) {
      DpParams p = params;
      p.alpha = 2.0;
      out.push_back(p);
    }
    return out;
  };
  arb.describe = [](const DpParams& params) {
    std::ostringstream os;
    os.precision(17);
    os << "{eps=" << params.epsilon << ", lambda=" << params.lambda
       << ", alpha=" << params.alpha << ", q=" << params.q << "}";
    return os.str();
  };
  return arb;
}

}  // namespace proptest
}  // namespace dplearn
