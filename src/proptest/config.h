#ifndef DPLEARN_PROPTEST_CONFIG_H_
#define DPLEARN_PROPTEST_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace dplearn {
namespace proptest {

/// Runtime contract of the property-based testing engine (DESIGN.md §11).
///
/// Every property check is fully determined by (seed, iterations): iteration
/// i draws its values from an Rng seeded with a splitmix64 mix of the master
/// seed and i, so a CI failure at iteration i reproduces locally with
///
///   DPLEARN_PROPTEST_SEED=<seed> DPLEARN_PROPTEST_ITERS=<i+1> ctest -R <suite>
///
/// which is exactly the one-line repro the engine prints (and appends to
/// DPLEARN_PROPTEST_FAILURE_FILE when that is set — CI uploads the file as
/// an artifact).
struct Config {
  /// Number of random instances per property. DPLEARN_PROPTEST_ITERS
  /// overrides; the nightly CI knob raises it without a code change.
  std::size_t iterations = 200;

  /// Master seed; every per-iteration stream derives from it.
  /// DPLEARN_PROPTEST_SEED overrides.
  std::uint64_t seed = 20120326;  // EDBT 2012 — the paper's venue date.

  /// Cap on property re-evaluations spent shrinking one counterexample.
  std::size_t max_shrink_steps = 500;

  /// Reads DPLEARN_PROPTEST_ITERS / DPLEARN_PROPTEST_SEED (both optional;
  /// unparsable values fall back to the defaults above).
  static Config FromEnv();
};

/// The per-iteration seed: splitmix64 over (master seed, iteration), so
/// iteration streams are independent and any single iteration can be
/// replayed without running its predecessors.
std::uint64_t IterationSeed(std::uint64_t master_seed, std::size_t iteration);

namespace internal {

/// Prints the failure report to stderr and appends the repro line to
/// DPLEARN_PROPTEST_FAILURE_FILE (read at call time) when set and non-empty.
void ReportFailure(const std::string& report, const std::string& repro_line);

}  // namespace internal

}  // namespace proptest
}  // namespace dplearn

#endif  // DPLEARN_PROPTEST_CONFIG_H_
