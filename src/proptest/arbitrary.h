#ifndef DPLEARN_PROPTEST_ARBITRARY_H_
#define DPLEARN_PROPTEST_ARBITRARY_H_

#include <cmath>
#include <cstddef>
#include <functional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "sampling/rng.h"

namespace dplearn {
namespace proptest {

/// A random-value generator with optional shrinking and printing — the unit
/// the property engine (property.h) iterates over. All randomness flows
/// through the library's own Rng, so generated instances obey the same
/// reproducibility contract as every experiment: one seed, one sequence.
///
/// `shrink` returns candidate values strictly "simpler" than its argument
/// (fewer elements, values closer to a distinguished point), ordered most
/// aggressive first. The engine shrinks greedily: it re-runs the property on
/// each candidate and restarts from the first one that still fails, so
/// shrink functions need not enumerate exhaustively — a couple of large
/// jumps plus a bisection step converge in O(log) accepted steps.
template <typename T>
struct Arbitrary {
  std::function<T(Rng*)> generate;
  std::function<std::vector<T>(const T&)> shrink;   // optional
  std::function<std::string(const T&)> describe;    // optional

  std::vector<T> ShrinkCandidates(const T& value) const {
    if (!shrink) return {};
    return shrink(value);
  }

  std::string Describe(const T& value) const {
    if (describe) return describe(value);
    return "<value>";
  }
};

// ---------------------------------------------------------------------------
// Shrink building blocks.

/// Candidates between `value` and `target`: the target itself, then the
/// midpoint — greedy re-application bisects down to the boundary of the
/// failing region.
inline std::vector<double> ShrinkDoubleToward(double value, double target) {
  std::vector<double> out;
  if (value == target || !std::isfinite(value)) return out;
  out.push_back(target);
  const double mid = target + (value - target) / 2.0;
  if (mid != value && mid != target) out.push_back(mid);
  return out;
}

inline std::vector<std::size_t> ShrinkSizeToward(std::size_t value, std::size_t target) {
  std::vector<std::size_t> out;
  if (value == target) return out;
  out.push_back(target);
  const std::size_t mid = target + (value - target) / 2;
  if (mid != value && mid != target) out.push_back(mid);
  if (value > target && value - 1 != mid) out.push_back(value - 1);
  return out;
}

// ---------------------------------------------------------------------------
// Scalar arbitraries.

/// Uniform double on [lo, hi); shrinks toward lo.
inline Arbitrary<double> UniformDouble(double lo, double hi) {
  Arbitrary<double> arb;
  arb.generate = [lo, hi](Rng* rng) { return lo + (hi - lo) * rng->NextDouble(); };
  arb.shrink = [lo](const double& v) { return ShrinkDoubleToward(v, lo); };
  arb.describe = [](const double& v) {
    std::ostringstream os;
    os.precision(17);
    os << v;
    return os.str();
  };
  return arb;
}

/// Log-uniform double on [lo, hi] (lo > 0): equal mass per decade, the right
/// sweep for parameters like ε, λ, and noise scales that matter across
/// orders of magnitude. Shrinks toward lo.
inline Arbitrary<double> LogUniformDouble(double lo, double hi) {
  Arbitrary<double> arb;
  const double log_lo = std::log(lo);
  const double log_hi = std::log(hi);
  arb.generate = [log_lo, log_hi](Rng* rng) {
    return std::exp(log_lo + (log_hi - log_lo) * rng->NextDouble());
  };
  arb.shrink = [lo](const double& v) { return ShrinkDoubleToward(v, lo); };
  arb.describe = [](const double& v) {
    std::ostringstream os;
    os.precision(17);
    os << v;
    return os.str();
  };
  return arb;
}

/// Uniform size_t on [lo, hi]; shrinks toward lo.
inline Arbitrary<std::size_t> SizeBetween(std::size_t lo, std::size_t hi) {
  Arbitrary<std::size_t> arb;
  arb.generate = [lo, hi](Rng* rng) {
    return lo + static_cast<std::size_t>(rng->NextBounded(hi - lo + 1));
  };
  arb.shrink = [lo](const std::size_t& v) { return ShrinkSizeToward(v, lo); };
  arb.describe = [](const std::size_t& v) { return std::to_string(v); };
  return arb;
}

// ---------------------------------------------------------------------------
// Combinators.

/// Pairs two arbitraries; shrinks the first coordinate before the second.
template <typename A, typename B>
Arbitrary<std::pair<A, B>> PairOf(Arbitrary<A> first, Arbitrary<B> second) {
  Arbitrary<std::pair<A, B>> arb;
  arb.generate = [first, second](Rng* rng) {
    A a = first.generate(rng);  // fixed evaluation order (not a braced init:
    B b = second.generate(rng); // function-argument order is unspecified)
    return std::make_pair(std::move(a), std::move(b));
  };
  arb.shrink = [first, second](const std::pair<A, B>& v) {
    std::vector<std::pair<A, B>> out;
    for (const A& a : first.ShrinkCandidates(v.first)) out.emplace_back(a, v.second);
    for (const B& b : second.ShrinkCandidates(v.second)) out.emplace_back(v.first, b);
    return out;
  };
  arb.describe = [first, second](const std::pair<A, B>& v) {
    return "(" + first.Describe(v.first) + ", " + second.Describe(v.second) + ")";
  };
  return arb;
}

/// Vector of `elem` values with size uniform on [min_size, max_size].
/// Shrinks by halving the vector, dropping single elements, and shrinking
/// individual elements, never below min_size.
template <typename T>
Arbitrary<std::vector<T>> VectorOf(Arbitrary<T> elem, std::size_t min_size,
                                   std::size_t max_size) {
  Arbitrary<std::vector<T>> arb;
  arb.generate = [elem, min_size, max_size](Rng* rng) {
    const std::size_t n =
        min_size + static_cast<std::size_t>(rng->NextBounded(max_size - min_size + 1));
    std::vector<T> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(elem.generate(rng));
    return out;
  };
  arb.shrink = [elem, min_size](const std::vector<T>& v) {
    std::vector<std::vector<T>> out;
    if (v.size() > min_size) {
      // Keep the first max(min_size, n/2) elements.
      const std::size_t half = v.size() / 2 > min_size ? v.size() / 2 : min_size;
      out.emplace_back(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(half));
      // Drop one element at a time (front, back).
      std::vector<T> drop_front(v.begin() + 1, v.end());
      out.push_back(std::move(drop_front));
      std::vector<T> drop_back(v.begin(), v.end() - 1);
      out.push_back(std::move(drop_back));
    }
    // Shrink each element in place (one candidate per position, using the
    // element shrinker's most aggressive suggestion).
    for (std::size_t i = 0; i < v.size(); ++i) {
      const std::vector<T> elem_candidates = elem.ShrinkCandidates(v[i]);
      if (elem_candidates.empty()) continue;
      std::vector<T> copy = v;
      copy[i] = elem_candidates.front();
      out.push_back(std::move(copy));
    }
    return out;
  };
  arb.describe = [elem](const std::vector<T>& v) {
    std::ostringstream os;
    os << "[" << v.size() << "]{";
    const std::size_t shown = v.size() < 16 ? v.size() : 16;
    for (std::size_t i = 0; i < shown; ++i) {
      if (i > 0) os << ", ";
      os << elem.Describe(v[i]);
    }
    if (shown < v.size()) os << ", ...";
    os << "}";
    return os.str();
  };
  return arb;
}

/// Maps a generator through `fn`. Shrinking happens on the *source*
/// representation, so minimality is preserved through the mapping.
template <typename A, typename B>
Arbitrary<B> Map(Arbitrary<A> source, std::function<B(const A&)> fn) {
  // B values cannot be un-mapped, so shrink/describe operate by re-deriving
  // from a stored source value: instead of that bookkeeping, Map generates
  // pairs internally in the engine-facing suites. Here we expose the simple
  // forward mapping with no shrinking; use the source Arbitrary directly
  // when shrinking matters.
  Arbitrary<B> arb;
  arb.generate = [source, fn](Rng* rng) { return fn(source.generate(rng)); };
  return arb;
}

}  // namespace proptest
}  // namespace dplearn

#endif  // DPLEARN_PROPTEST_ARBITRARY_H_
