#ifndef DPLEARN_PERF_RISK_PROFILE_CACHE_H_
#define DPLEARN_PERF_RISK_PROFILE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <vector>

#include "learning/dataset.h"
#include "learning/loss.h"
#include "util/matrix.h"
#include "util/status.h"

namespace dplearn {
namespace perf {

/// Memoization of the empirical-risk profile R̂_Ẑ(θ_i) over a hypothesis
/// grid — the dominant cost of every finite-Θ Gibbs / exponential-mechanism
/// evaluation (Theorem 4.1 makes them the same object, so they share the
/// same hot loop). A sweep over (ε, λ, prior) grid cells, a λ-selection
/// pipeline, or a channel construction evaluated at many temperatures all
/// recompute the SAME profile: the risk vector depends only on (loss, Θ, Ẑ),
/// never on the temperature or the prior. This cache computes it once and
/// serves every later cell.
///
/// Determinism contract (DESIGN.md §10): a hit returns the exact vector a
/// miss would have computed — the profile is a deterministic function of its
/// key and the cached value IS a previous output of EmpiricalRiskProfile on
/// bitwise-equal inputs — so enabling the cache is bit-invisible to every
/// downstream posterior, sample, and verdict. tests/perf_cache_equivalence
/// proves this differentially against the uncached path.
///
/// Correctness of keying: entries are keyed by a 64-bit content hash of
/// (loss Name/UpperBound/ParameterFingerprint, Θ, Ẑ, simd flavor) but a
/// hash match alone never serves a hit — the stored key copy is compared
/// bitwise (memcmp on the doubles, so NaN payloads and signed zeros are
/// distinguished) before the cached profile is returned. A collision
/// therefore costs one compare and falls through to a recompute; it cannot
/// produce a wrong result.
///
/// The simd::ActiveSimdFlavorId() key component exists because the scalar
/// and vectorized risk paths are only ULP-equivalent, not bitwise-equal,
/// above simd::kBlockedSumMinN examples (DESIGN.md §14). Without it, a
/// mid-process DPLEARN_SIMD toggle could serve a profile computed in the
/// OTHER mode — bitwise-different from what a fresh compute would return,
/// silently breaking the determinism contract above.
class RiskProfileCache {
 public:
  /// `capacity` bounds the number of cached profiles; least-recently-used
  /// entries are evicted beyond it. Each entry owns copies of its Θ and Ẑ
  /// key material, so capacity also bounds memory.
  explicit RiskProfileCache(std::size_t capacity = kDefaultCapacity);

  /// The process-wide instance every library call site shares. Capacity is
  /// DPLEARN_RISK_CACHE_CAP when set, else kDefaultCapacity.
  static RiskProfileCache& Global();

  /// Returns the cached profile for (loss, thetas, data), computing and
  /// inserting it on a miss. Thread-safe; a miss computes outside the lock,
  /// so concurrent misses on the same key may compute twice and insert the
  /// same (bit-identical) vector. Errors propagate from
  /// EmpiricalRiskProfile unchanged and are never cached.
  StatusOr<std::vector<double>> GetOrCompute(const LossFunction& loss,
                                             const std::vector<Vector>& thetas,
                                             const Dataset& data);

  /// Counters since construction (or the last Clear()).
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };
  Stats stats() const;

  /// Cached entries currently held.
  std::size_t size() const;

  /// Drops every entry and resets the counters (test isolation).
  void Clear();

  static constexpr std::size_t kDefaultCapacity = 512;

 private:
  struct Entry {
    std::uint64_t hash = 0;
    std::uint64_t simd_flavor = 0;
    std::string loss_name;
    double loss_bound = 0.0;
    double loss_fingerprint = 0.0;
    std::vector<Vector> thetas;
    std::vector<Example> examples;
    std::vector<double> risks;
  };

  bool Matches(const Entry& entry, std::uint64_t hash, std::uint64_t simd_flavor,
               const LossFunction& loss, const std::vector<Vector>& thetas,
               const Dataset& data) const;

  mutable std::mutex mu_;
  std::size_t capacity_;
  /// Front = most recently used. Linear scan is fine: lookups are O(entries)
  /// hash compares against profiles that cost O(|Θ|·n) loss evaluations.
  std::list<Entry> entries_;
  Stats stats_;
};

/// Whether library call sites consult the global cache. Defaults to enabled;
/// DPLEARN_RISK_CACHE=0 disables it at startup, and tests/benchmarks flip it
/// at runtime to compare the fast path against the legacy path in-process.
bool RiskCacheEnabled();
void SetRiskCacheEnabled(bool enabled);

/// The shared entry point: the global cache when RiskCacheEnabled(), the
/// legacy direct EmpiricalRiskProfile computation otherwise. Call sites in
/// core (Gibbs estimator, λ selection, channel builders) route through this
/// so one env flag switches the whole library between paths.
StatusOr<std::vector<double>> CachedRiskProfile(const LossFunction& loss,
                                                const std::vector<Vector>& thetas,
                                                const Dataset& data);

}  // namespace perf
}  // namespace dplearn

#endif  // DPLEARN_PERF_RISK_PROFILE_CACHE_H_
