#ifndef DPLEARN_PERF_RISK_PROFILE_CACHE_H_
#define DPLEARN_PERF_RISK_PROFILE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <vector>

#include "learning/dataset.h"
#include "learning/loss.h"
#include "util/matrix.h"
#include "util/status.h"

namespace dplearn {
namespace perf {

/// Memoization of the empirical-risk profile R̂_Ẑ(θ_i) over a hypothesis
/// grid — the dominant cost of every finite-Θ Gibbs / exponential-mechanism
/// evaluation (Theorem 4.1 makes them the same object, so they share the
/// same hot loop). A sweep over (ε, λ, prior) grid cells, a λ-selection
/// pipeline, or a channel construction evaluated at many temperatures all
/// recompute the SAME profile: the risk vector depends only on (loss, Θ, Ẑ),
/// never on the temperature or the prior. This cache computes it once and
/// serves every later cell.
///
/// Determinism contract (DESIGN.md §10): a hit returns the exact vector a
/// miss would have computed — the profile is a deterministic function of its
/// key and the cached value IS a previous output of EmpiricalRiskProfile on
/// bitwise-equal inputs — so enabling the cache is bit-invisible to every
/// downstream posterior, sample, and verdict. tests/perf_cache_equivalence
/// proves this differentially against the uncached path.
///
/// Correctness of keying: entries are keyed by a 64-bit content hash of
/// (loss Name/UpperBound/ParameterFingerprint, Θ, Ẑ, simd flavor) but a
/// hash match alone never serves a hit — the stored key copy is compared
/// bitwise (memcmp on the doubles, so NaN payloads and signed zeros are
/// distinguished) before the cached profile is returned. A collision
/// therefore costs one compare and falls through to a recompute; it cannot
/// produce a wrong result.
///
/// The simd::ActiveSimdFlavorId() key component exists because the scalar
/// and vectorized risk paths are only ULP-equivalent, not bitwise-equal,
/// above simd::kBlockedSumMinN examples (DESIGN.md §14). Without it, a
/// mid-process DPLEARN_SIMD toggle could serve a profile computed in the
/// OTHER mode — bitwise-different from what a fresh compute would return,
/// silently breaking the determinism contract above.
class RiskProfileCache {
 public:
  /// `capacity` bounds the number of cached profiles; least-recently-used
  /// entries are evicted beyond it. Each entry owns copies of its Θ and Ẑ
  /// key material, so capacity also bounds memory.
  explicit RiskProfileCache(std::size_t capacity = kDefaultCapacity);

  /// Test/deployment override of the revision-chain cap (the default is
  /// StreamingRiskProfile::DefaultResyncEvery(); 0 = uncapped).
  RiskProfileCache(std::size_t capacity, std::size_t revision_limit);

  /// The process-wide instance every library call site shares. Capacity is
  /// DPLEARN_RISK_CACHE_CAP when set, else kDefaultCapacity.
  static RiskProfileCache& Global();

  /// Returns the cached profile for (loss, thetas, data), computing and
  /// inserting it on a miss. Thread-safe; a miss computes outside the lock,
  /// so concurrent misses on the same key may compute twice and insert the
  /// same (bit-identical) vector. Errors propagate from
  /// EmpiricalRiskProfile unchanged and are never cached.
  ///
  /// Only EXACT entries (full EmpiricalRiskProfile outputs) can serve this
  /// path; entries produced by GetOrRevise are skipped so the strict
  /// bitwise contract above survives the revision layer.
  ///
  /// Mutation guard: `data.generation()` is snapshotted before hashing and
  /// re-read before insertion — if the dataset was mutated in place (e.g. a
  /// SetLabel walk) while the profile computed, the fresh risks are still
  /// returned but the torn (hash ≠ content) entry is NOT memoized
  /// (stats().mutation_skips counts these). Sequential mutate-then-lookup
  /// through one Dataset object is always safe: the content hash changes
  /// with the content, so a stale entry can never match.
  StatusOr<std::vector<double>> GetOrCompute(const LossFunction& loss,
                                             const std::vector<Vector>& thetas,
                                             const Dataset& data);

  /// The streaming delta layer: the profile for `base` + `appended` served
  /// as a cache *revision* rather than a miss. Resolution order:
  ///   1. an entry whose content IS base+appended (exact or revised) — a hit;
  ///   2. an entry for `base` within the revision-depth cap — an O(|Θ|)
  ///      revision new[i] = (base[i]·n + l_{θ_i}(appended))/(n+1) from the
  ///      shared LossRow delta (stats().revisions), inserted with depth+1 so
  ///      a stream of appends chains revision-to-revision;
  ///   3. otherwise a full GetOrCompute miss on base+appended (which also
  ///      caps drift: every DefaultResyncEvery() chained revisions the depth
  ///      cap forces this full recompute, re-anchoring the chain at depth 0).
  /// Revised bits are ULP-close to (not bitwise) the batch profile — the
  /// same drift contract as StreamingRiskProfile (DESIGN.md §15) — and are
  /// served only through this path, never through GetOrCompute.
  StatusOr<std::vector<double>> GetOrRevise(const LossFunction& loss,
                                            const std::vector<Vector>& thetas,
                                            const Dataset& base, const Example& appended);

  /// Counters since construction (or the last Clear()).
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    /// O(|Θ|) delta updates served by GetOrRevise instead of full misses.
    std::uint64_t revisions = 0;
    /// Fills discarded because the dataset's generation() moved mid-compute.
    std::uint64_t mutation_skips = 0;
  };
  Stats stats() const;

  /// Cached entries currently held.
  std::size_t size() const;

  /// Drops every entry and resets the counters (test isolation).
  void Clear();

  static constexpr std::size_t kDefaultCapacity = 512;

 private:
  struct Entry {
    std::uint64_t hash = 0;
    std::uint64_t simd_flavor = 0;
    std::string loss_name;
    double loss_bound = 0.0;
    double loss_fingerprint = 0.0;
    std::vector<Vector> thetas;
    std::vector<Example> examples;
    std::vector<double> risks;
    /// 0 = exact EmpiricalRiskProfile output (GetOrCompute-servable);
    /// k > 0 = k chained O(|Θ|) revisions since the last exact anchor.
    std::uint64_t revision_depth = 0;
  };

  bool Matches(const Entry& entry, std::uint64_t hash, std::uint64_t simd_flavor,
               const LossFunction& loss, const std::vector<Vector>& thetas,
               const Dataset& data) const;

  void InsertLocked(Entry entry);

  mutable std::mutex mu_;
  std::size_t capacity_;
  /// Revision chains longer than this fall back to a full recompute —
  /// the cache-side DPLEARN_STREAM_RESYNC_EVERY drift cap (0 = uncapped).
  std::size_t revision_limit_;
  /// Front = most recently used. Linear scan is fine: lookups are O(entries)
  /// hash compares against profiles that cost O(|Θ|·n) loss evaluations.
  std::list<Entry> entries_;
  Stats stats_;
};

/// Whether library call sites consult the global cache. Defaults to enabled;
/// DPLEARN_RISK_CACHE=0 disables it at startup, and tests/benchmarks flip it
/// at runtime to compare the fast path against the legacy path in-process.
bool RiskCacheEnabled();
void SetRiskCacheEnabled(bool enabled);

/// The shared entry point: the global cache when RiskCacheEnabled(), the
/// legacy direct EmpiricalRiskProfile computation otherwise. Call sites in
/// core (Gibbs estimator, λ selection, channel builders) route through this
/// so one env flag switches the whole library between paths.
StatusOr<std::vector<double>> CachedRiskProfile(const LossFunction& loss,
                                                const std::vector<Vector>& thetas,
                                                const Dataset& data);

/// Streaming entry point: the profile of `base` + `appended` via the global
/// cache's revision layer when RiskCacheEnabled(), else a direct
/// EmpiricalRiskProfile over the appended dataset.
StatusOr<std::vector<double>> CachedRiskProfileAppend(const LossFunction& loss,
                                                      const std::vector<Vector>& thetas,
                                                      const Dataset& base,
                                                      const Example& appended);

}  // namespace perf
}  // namespace dplearn

#endif  // DPLEARN_PERF_RISK_PROFILE_CACHE_H_
