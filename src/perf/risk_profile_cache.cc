#include "perf/risk_profile_cache.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "learning/risk.h"
#include "simd/dispatch.h"
#include "obs/config.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dplearn {
namespace perf {
namespace {

/// splitmix64 finalizer — the same mixer the Rng seeding uses; good
/// avalanche for sequential combining.
std::uint64_t Mix(std::uint64_t h, std::uint64_t v) {
  std::uint64_t z = h + 0x9e3779b97f4a7c15ULL + v;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t DoubleBits(double x) {
  std::uint64_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  return bits;
}

std::uint64_t HashDoubles(std::uint64_t h, const double* data, std::size_t n) {
  h = Mix(h, n);
  for (std::size_t i = 0; i < n; ++i) h = Mix(h, DoubleBits(data[i]));
  return h;
}

std::uint64_t KeyHash(std::uint64_t simd_flavor, const LossFunction& loss,
                      const std::vector<Vector>& thetas, const Dataset& data) {
  std::uint64_t h = 0x2545f4914f6cdd1dULL;
  // Scalar- and simd-computed profiles are distinct cache keys: they are
  // ULP-equivalent, not bitwise-equal, so a mid-process DPLEARN_SIMD toggle
  // must miss rather than serve the other mode's bits.
  h = Mix(h, simd_flavor);
  for (const char c : loss.Name()) h = Mix(h, static_cast<unsigned char>(c));
  h = Mix(h, DoubleBits(loss.UpperBound()));
  h = Mix(h, DoubleBits(loss.ParameterFingerprint()));
  h = Mix(h, thetas.size());
  for (const Vector& theta : thetas) h = HashDoubles(h, theta.data(), theta.size());
  h = Mix(h, data.size());
  for (const Example& z : data.examples()) {
    h = HashDoubles(h, z.features.data(), z.features.size());
    h = Mix(h, DoubleBits(z.label));
  }
  return h;
}

/// Bitwise double-vector equality: memcmp distinguishes NaN payloads and
/// ±0.0, exactly matching the "same bits in, same bits out" cache contract.
bool BitwiseEqual(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled = [] {
    const char* env = std::getenv("DPLEARN_RISK_CACHE");
    return env == nullptr || std::strcmp(env, "0") != 0;
  }();
  return enabled;
}

void CountHit(bool hit) {
  if (!obs::MetricsEnabled()) return;
  static obs::Counter* const hits =
      obs::GlobalMetrics().GetCounter("perf.risk_cache.hits");
  static obs::Counter* const misses =
      obs::GlobalMetrics().GetCounter("perf.risk_cache.misses");
  (hit ? hits : misses)->Increment();
}

}  // namespace

RiskProfileCache::RiskProfileCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

RiskProfileCache& RiskProfileCache::Global() {
  static RiskProfileCache* const cache = [] {
    std::size_t capacity = kDefaultCapacity;
    if (const char* env = std::getenv("DPLEARN_RISK_CACHE_CAP")) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed > 0) capacity = static_cast<std::size_t>(parsed);
    }
    return new RiskProfileCache(capacity);
  }();
  return *cache;
}

bool RiskProfileCache::Matches(const Entry& entry, std::uint64_t hash,
                               std::uint64_t simd_flavor, const LossFunction& loss,
                               const std::vector<Vector>& thetas,
                               const Dataset& data) const {
  if (entry.hash != hash) return false;
  if (entry.simd_flavor != simd_flavor) return false;
  if (entry.loss_name != loss.Name()) return false;
  if (DoubleBits(entry.loss_bound) != DoubleBits(loss.UpperBound())) return false;
  if (DoubleBits(entry.loss_fingerprint) != DoubleBits(loss.ParameterFingerprint())) {
    return false;
  }
  if (entry.thetas.size() != thetas.size() || entry.examples.size() != data.size()) {
    return false;
  }
  for (std::size_t i = 0; i < thetas.size(); ++i) {
    if (!BitwiseEqual(entry.thetas[i], thetas[i])) return false;
  }
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (!BitwiseEqual(entry.examples[i].features, data.at(i).features)) return false;
    if (DoubleBits(entry.examples[i].label) != DoubleBits(data.at(i).label)) return false;
  }
  return true;
}

StatusOr<std::vector<double>> RiskProfileCache::GetOrCompute(
    const LossFunction& loss, const std::vector<Vector>& thetas, const Dataset& data) {
  // One flavor read per call: the hash, the match predicate, and the stored
  // entry must agree even if DPLEARN_SIMD toggles while we compute.
  const std::uint64_t flavor = simd::ActiveSimdFlavorId();
  const std::uint64_t hash = KeyHash(flavor, loss, thetas, data);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (Matches(*it, hash, flavor, loss, thetas, data)) {
        ++stats_.hits;
        entries_.splice(entries_.begin(), entries_, it);  // move to MRU
        std::vector<double> risks = entries_.front().risks;
        CountHit(true);
        return risks;
      }
    }
    ++stats_.misses;
  }
  CountHit(false);

  // Compute outside the lock: the profile may fan out over the global thread
  // pool and can take arbitrarily long; holding mu_ would serialize every
  // other grid cell behind it.
  obs::TraceSpan span("perf.risk_cache.fill");
  DPLEARN_ASSIGN_OR_RETURN(std::vector<double> risks,
                           EmpiricalRiskProfile(loss, thetas, data));

  Entry entry;
  entry.hash = hash;
  entry.simd_flavor = flavor;
  entry.loss_name = loss.Name();
  entry.loss_bound = loss.UpperBound();
  entry.loss_fingerprint = loss.ParameterFingerprint();
  entry.thetas = thetas;
  entry.examples = data.examples();
  entry.risks = risks;

  std::lock_guard<std::mutex> lock(mu_);
  // A racing thread may have inserted the same key; a duplicate entry is
  // harmless (bit-identical value) and ages out by LRU.
  entries_.push_front(std::move(entry));
  while (entries_.size() > capacity_) {
    entries_.pop_back();
    ++stats_.evictions;
  }
  return risks;
}

RiskProfileCache::Stats RiskProfileCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t RiskProfileCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void RiskProfileCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  stats_ = Stats{};
}

bool RiskCacheEnabled() { return EnabledFlag().load(std::memory_order_relaxed); }

void SetRiskCacheEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

StatusOr<std::vector<double>> CachedRiskProfile(const LossFunction& loss,
                                                const std::vector<Vector>& thetas,
                                                const Dataset& data) {
  if (!RiskCacheEnabled()) return EmpiricalRiskProfile(loss, thetas, data);
  return RiskProfileCache::Global().GetOrCompute(loss, thetas, data);
}

}  // namespace perf
}  // namespace dplearn
