#include "perf/risk_profile_cache.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "learning/risk.h"
#include "learning/streaming_risk.h"
#include "simd/dispatch.h"
#include "obs/config.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dplearn {
namespace perf {
namespace {

/// splitmix64 finalizer — the same mixer the Rng seeding uses; good
/// avalanche for sequential combining.
std::uint64_t Mix(std::uint64_t h, std::uint64_t v) {
  std::uint64_t z = h + 0x9e3779b97f4a7c15ULL + v;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t DoubleBits(double x) {
  std::uint64_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  return bits;
}

std::uint64_t HashDoubles(std::uint64_t h, const double* data, std::size_t n) {
  h = Mix(h, n);
  for (std::size_t i = 0; i < n; ++i) h = Mix(h, DoubleBits(data[i]));
  return h;
}

std::uint64_t KeyHash(std::uint64_t simd_flavor, const LossFunction& loss,
                      const std::vector<Vector>& thetas, const Dataset& data) {
  std::uint64_t h = 0x2545f4914f6cdd1dULL;
  // Scalar- and simd-computed profiles are distinct cache keys: they are
  // ULP-equivalent, not bitwise-equal, so a mid-process DPLEARN_SIMD toggle
  // must miss rather than serve the other mode's bits.
  h = Mix(h, simd_flavor);
  for (const char c : loss.Name()) h = Mix(h, static_cast<unsigned char>(c));
  h = Mix(h, DoubleBits(loss.UpperBound()));
  h = Mix(h, DoubleBits(loss.ParameterFingerprint()));
  h = Mix(h, thetas.size());
  for (const Vector& theta : thetas) h = HashDoubles(h, theta.data(), theta.size());
  h = Mix(h, data.size());
  for (const Example& z : data.examples()) {
    h = HashDoubles(h, z.features.data(), z.features.size());
    h = Mix(h, DoubleBits(z.label));
  }
  return h;
}

/// Bitwise double-vector equality: memcmp distinguishes NaN payloads and
/// ±0.0, exactly matching the "same bits in, same bits out" cache contract.
bool BitwiseEqual(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled = [] {
    const char* env = std::getenv("DPLEARN_RISK_CACHE");
    return env == nullptr || std::strcmp(env, "0") != 0;
  }();
  return enabled;
}

void CountHit(bool hit) {
  if (!obs::MetricsEnabled()) return;
  static obs::Counter* const hits =
      obs::GlobalMetrics().GetCounter("perf.risk_cache.hits");
  static obs::Counter* const misses =
      obs::GlobalMetrics().GetCounter("perf.risk_cache.misses");
  (hit ? hits : misses)->Increment();
}

}  // namespace

RiskProfileCache::RiskProfileCache(std::size_t capacity)
    : RiskProfileCache(capacity, StreamingRiskProfile::DefaultResyncEvery()) {}

RiskProfileCache::RiskProfileCache(std::size_t capacity, std::size_t revision_limit)
    : capacity_(capacity == 0 ? 1 : capacity), revision_limit_(revision_limit) {}

RiskProfileCache& RiskProfileCache::Global() {
  static RiskProfileCache* const cache = [] {
    std::size_t capacity = kDefaultCapacity;
    if (const char* env = std::getenv("DPLEARN_RISK_CACHE_CAP")) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed > 0) capacity = static_cast<std::size_t>(parsed);
    }
    return new RiskProfileCache(capacity);
  }();
  return *cache;
}

bool RiskProfileCache::Matches(const Entry& entry, std::uint64_t hash,
                               std::uint64_t simd_flavor, const LossFunction& loss,
                               const std::vector<Vector>& thetas,
                               const Dataset& data) const {
  if (entry.hash != hash) return false;
  if (entry.simd_flavor != simd_flavor) return false;
  if (entry.loss_name != loss.Name()) return false;
  if (DoubleBits(entry.loss_bound) != DoubleBits(loss.UpperBound())) return false;
  if (DoubleBits(entry.loss_fingerprint) != DoubleBits(loss.ParameterFingerprint())) {
    return false;
  }
  if (entry.thetas.size() != thetas.size() || entry.examples.size() != data.size()) {
    return false;
  }
  for (std::size_t i = 0; i < thetas.size(); ++i) {
    if (!BitwiseEqual(entry.thetas[i], thetas[i])) return false;
  }
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (!BitwiseEqual(entry.examples[i].features, data.at(i).features)) return false;
    if (DoubleBits(entry.examples[i].label) != DoubleBits(data.at(i).label)) return false;
  }
  return true;
}

void RiskProfileCache::InsertLocked(Entry entry) {
  // A racing thread may have inserted the same key; a duplicate entry is
  // harmless (bit-identical value) and ages out by LRU.
  entries_.push_front(std::move(entry));
  while (entries_.size() > capacity_) {
    entries_.pop_back();
    ++stats_.evictions;
  }
}

StatusOr<std::vector<double>> RiskProfileCache::GetOrCompute(
    const LossFunction& loss, const std::vector<Vector>& thetas, const Dataset& data) {
  // One flavor read per call: the hash, the match predicate, and the stored
  // entry must agree even if DPLEARN_SIMD toggles while we compute. The
  // generation snapshot brackets the hash→compute→insert window against
  // in-place SetLabel/Add mutation of `data` (the learning_channel walk).
  const std::uint64_t flavor = simd::ActiveSimdFlavorId();
  const std::uint64_t generation = data.generation();
  const std::uint64_t hash = KeyHash(flavor, loss, thetas, data);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      // Revised entries (depth > 0) are ULP-close, not bitwise, to the
      // EmpiricalRiskProfile output this path promises — skip them.
      if (it->revision_depth == 0 && Matches(*it, hash, flavor, loss, thetas, data)) {
        ++stats_.hits;
        entries_.splice(entries_.begin(), entries_, it);  // move to MRU
        std::vector<double> risks = entries_.front().risks;
        CountHit(true);
        return risks;
      }
    }
    ++stats_.misses;
  }
  CountHit(false);

  // Compute outside the lock: the profile may fan out over the global thread
  // pool and can take arbitrarily long; holding mu_ would serialize every
  // other grid cell behind it.
  obs::TraceSpan span("perf.risk_cache.fill");
  DPLEARN_ASSIGN_OR_RETURN(std::vector<double> risks,
                           EmpiricalRiskProfile(loss, thetas, data));

  Entry entry;
  entry.hash = hash;
  entry.simd_flavor = flavor;
  entry.loss_name = loss.Name();
  entry.loss_bound = loss.UpperBound();
  entry.loss_fingerprint = loss.ParameterFingerprint();
  entry.thetas = thetas;
  entry.examples = data.examples();
  entry.risks = risks;

  std::lock_guard<std::mutex> lock(mu_);
  if (data.generation() != generation) {
    // The dataset moved under us: `hash` describes the pre-mutation content
    // but `examples`/`risks` saw some post-mutation state — a torn entry
    // that could only ever alias by hash collision, but is wrong to keep.
    // Serve the fresh risks, memoize nothing.
    ++stats_.mutation_skips;
    return risks;
  }
  InsertLocked(std::move(entry));
  return risks;
}

StatusOr<std::vector<double>> RiskProfileCache::GetOrRevise(
    const LossFunction& loss, const std::vector<Vector>& thetas, const Dataset& base,
    const Example& appended) {
  const std::uint64_t flavor = simd::ActiveSimdFlavorId();
  std::vector<Example> combined_examples = base.examples();
  combined_examples.push_back(appended);
  Dataset combined(std::move(combined_examples));
  const std::uint64_t combined_hash = KeyHash(flavor, loss, thetas, combined);
  const std::uint64_t base_hash = KeyHash(flavor, loss, thetas, base);

  std::vector<double> base_risks;
  std::uint64_t base_depth = 0;
  bool have_base = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // 1. The appended dataset itself is cached (exact or revised): a hit.
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (Matches(*it, combined_hash, flavor, loss, thetas, combined)) {
        ++stats_.hits;
        entries_.splice(entries_.begin(), entries_, it);
        std::vector<double> risks = entries_.front().risks;
        CountHit(true);
        return risks;
      }
    }
    // 2. The base is cached: candidate for an O(|Θ|) revision.
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (Matches(*it, base_hash, flavor, loss, thetas, base)) {
        base_risks = it->risks;
        base_depth = it->revision_depth;
        have_base = true;
        break;
      }
    }
  }

  if (have_base && (revision_limit_ == 0 || base_depth < revision_limit_)) {
    // The revision: one LossRow delta (the same bits a StreamingRiskProfile
    // folds in) against the cached base mean. O(|Θ|) instead of O(|Θ|·n).
    thread_local std::vector<double> delta_row;
    DPLEARN_RETURN_IF_ERROR(LossRow(loss, thetas, appended, &delta_row));
    const double n = static_cast<double>(base.size());
    std::vector<double> revised(base_risks.size());
    for (std::size_t i = 0; i < base_risks.size(); ++i) {
      revised[i] = (base_risks[i] * n + delta_row[i]) / (n + 1.0);
    }

    Entry entry;
    entry.hash = combined_hash;
    entry.simd_flavor = flavor;
    entry.loss_name = loss.Name();
    entry.loss_bound = loss.UpperBound();
    entry.loss_fingerprint = loss.ParameterFingerprint();
    entry.thetas = thetas;
    entry.examples = combined.examples();
    entry.risks = revised;
    entry.revision_depth = base_depth + 1;

    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.revisions;
    InsertLocked(std::move(entry));
    return revised;
  }

  // 3. No base (or the chain hit the drift cap): a full recompute anchors a
  // fresh depth-0 entry — the cache-side resync.
  return GetOrCompute(loss, thetas, combined);
}

RiskProfileCache::Stats RiskProfileCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t RiskProfileCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void RiskProfileCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  stats_ = Stats{};
}

bool RiskCacheEnabled() { return EnabledFlag().load(std::memory_order_relaxed); }

void SetRiskCacheEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

StatusOr<std::vector<double>> CachedRiskProfile(const LossFunction& loss,
                                                const std::vector<Vector>& thetas,
                                                const Dataset& data) {
  if (!RiskCacheEnabled()) return EmpiricalRiskProfile(loss, thetas, data);
  return RiskProfileCache::Global().GetOrCompute(loss, thetas, data);
}

StatusOr<std::vector<double>> CachedRiskProfileAppend(const LossFunction& loss,
                                                      const std::vector<Vector>& thetas,
                                                      const Dataset& base,
                                                      const Example& appended) {
  if (!RiskCacheEnabled()) {
    std::vector<Example> combined = base.examples();
    combined.push_back(appended);
    return EmpiricalRiskProfile(loss, thetas, Dataset(std::move(combined)));
  }
  return RiskProfileCache::Global().GetOrRevise(loss, thetas, base, appended);
}

}  // namespace perf
}  // namespace dplearn
