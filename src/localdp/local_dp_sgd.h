#ifndef DPLEARN_LOCALDP_LOCAL_DP_SGD_H_
#define DPLEARN_LOCALDP_LOCAL_DP_SGD_H_

#include <cstddef>

#include "learning/dataset.h"
#include "learning/loss.h"
#include "localdp/local_channel.h"
#include "mechanisms/privacy_budget.h"
#include "parallel/trial_runner.h"
#include "sampling/rng.h"
#include "util/matrix.h"
#include "util/status.h"

namespace dplearn {
namespace localdp {

/// Local-DP gradient descent: the `DpSgd` loop with the trust boundary
/// moved to the client. Each round, EVERY example's clipped gradient is
/// privatized through a per-example DjwL2Channel (epsilon_per_round, radius
/// = clip_norm) before the server sees it; the server averages the
/// privatized vectors — an unbiased estimate of the mean clipped gradient
/// because the DJW output is calibrated to E[z | g] = g — and takes a
/// gradient step. No Gaussian noise, no subsampling amplification: the
/// guarantee is pure eps-LDP per example, composed over rounds.
struct LocalDpSgdOptions {
  /// Per-example local privacy budget spent each round.
  double epsilon_per_round = 0.25;
  /// Per-example gradient L2 clip C (also the DJW channel radius).
  double clip_norm = 1.0;
  /// Number of rounds T; total per-example epsilon = T * epsilon_per_round.
  std::size_t rounds = 50;
  double learning_rate = 0.2;
  double l2_lambda = 0.01;
};

struct LocalDpSgdResult {
  Vector theta;
  /// Pure eps-LDP guarantee per example: rounds * epsilon_per_round, delta
  /// identically 0 (the DJW channel is a pure-DP randomizer).
  PrivacyBudget budget;
  std::size_t rounds = 0;
  /// Mean over rounds and examples of the clipped gradient norm — the same
  /// clipping diagnostic DpSgdResult reports.
  double mean_clipped_gradient_norm = 0.0;
};

/// Runs local-DP gradient descent. Per-example privatizations inside a
/// round fan out over `runner` with one Rng::Split stream per example in
/// example order, so the result is bit-identical at any DPLEARN_THREADS.
/// Errors: loss must have a gradient, data must be non-empty, and options
/// must validate (positive epsilon/clip/rounds/learning rate, l2 >= 0).
StatusOr<LocalDpSgdResult> LocalDpSgd(const LossFunction& loss, const Dataset& data,
                                      const LocalDpSgdOptions& options, Rng* rng,
                                      const parallel::ParallelTrialRunner& runner =
                                          parallel::ParallelTrialRunner());

}  // namespace localdp
}  // namespace dplearn

#endif  // DPLEARN_LOCALDP_LOCAL_DP_SGD_H_
