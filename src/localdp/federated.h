#ifndef DPLEARN_LOCALDP_FEDERATED_H_
#define DPLEARN_LOCALDP_FEDERATED_H_

#include <cstddef>
#include <vector>

#include "learning/dataset.h"
#include "learning/loss.h"
#include "localdp/local_channel.h"
#include "mechanisms/privacy_budget.h"
#include "parallel/trial_runner.h"
#include "sampling/rng.h"
#include "util/matrix.h"
#include "util/status.h"

namespace dplearn {
namespace localdp {

/// Where the privacy barrier sits in a federated round.
enum class FederatedPrivacyModel {
  /// No privatization — the non-private federated-averaging baseline.
  kNone,
  /// Central model: clients send exact clipped updates; the SERVER adds one
  /// Gaussian draw to the aggregated mean (trusted-aggregator assumption).
  /// Client-level (eps, delta)-DP via subsampled-free Gaussian RDP
  /// composition over rounds.
  kCentralGaussian,
  /// Local model: each CLIENT pushes its clipped update through a DJW
  /// L2-ball channel before transmission; the server only ever sees
  /// privatized vectors. Client-level pure eps-LDP, composed over rounds.
  kLocalDjw,
};

struct FederatedOptions {
  std::size_t num_clients = 8;
  /// Communication rounds T.
  std::size_t rounds = 30;
  /// Local full-gradient steps each client takes per round.
  std::size_t local_steps = 1;
  /// Client-side learning rate for the local steps.
  double learning_rate = 0.5;
  double l2_lambda = 0.0;
  /// L2 clip on each client's model delta before privatization/transmission.
  double clip_norm = 1.0;
  FederatedPrivacyModel model = FederatedPrivacyModel::kLocalDjw;
  /// kLocalDjw: per-client local budget spent per round.
  double epsilon_per_round = 0.5;
  /// kCentralGaussian: noise multiplier sigma (per-coordinate stddev of the
  /// server noise on the MEAN update = sigma * 2 * clip_norm / num_clients,
  /// i.e. sigma times the replace-one-client sensitivity of the mean —
  /// swapping one clipped update for another moves the sum by up to
  /// 2*clip_norm in L2).
  double noise_multiplier = 1.0;
  /// kCentralGaussian: target delta for the reported (eps, delta).
  double delta = 1e-5;
};

struct FederatedResult {
  Vector theta;
  std::size_t rounds = 0;
  /// Per-CLIENT guarantee: pure (T * epsilon_per_round, 0) under kLocalDjw,
  /// Gaussian-RDP-composed (eps, delta) under kCentralGaussian, (inf, 0)
  /// under kNone.
  PrivacyBudget budget;
  /// Mean over rounds and clients of the clipped update norm.
  double mean_update_norm = 0.0;
};

/// A deterministic multi-client federated-averaging simulator. Data is
/// sharded round-robin across clients at Create() time; each round every
/// client starts from the global model, takes `local_steps` full-gradient
/// steps on its shard, clips its model delta to clip_norm, privatizes it
/// per the configured model, and the server averages the (privatized)
/// deltas into the global model.
///
/// Determinism contract: each round fans clients out over the
/// ParallelTrialRunner with one Rng::Split stream per client in client
/// order and folds updates in client order, so a run is bit-identical at
/// any DPLEARN_THREADS — the same contract every experiment in this repo
/// leans on, now extended to the federated loop (gated in CI at 1 vs 8
/// threads).
class FederatedSimulator {
 public:
  /// `loss` must outlive the simulator and have a gradient. Errors on
  /// invalid options, empty data, or fewer examples than clients.
  static StatusOr<FederatedSimulator> Create(const LossFunction* loss, Dataset data,
                                             FederatedOptions options);

  /// Runs the full simulation with the process-wide thread pool.
  StatusOr<FederatedResult> Run(Rng* rng) const {
    return RunWith(parallel::ParallelTrialRunner(), rng);
  }

  /// Runs with an explicit runner (tests pin 1-thread vs 8-thread pools
  /// against each other).
  StatusOr<FederatedResult> RunWith(const parallel::ParallelTrialRunner& runner,
                                    Rng* rng) const;

  std::size_t num_clients() const { return options_.num_clients; }
  /// The shard assigned to `client` (round-robin by example index).
  const Dataset& shard(std::size_t client) const { return shards_[client]; }
  const FederatedOptions& options() const { return options_; }

  /// The privacy guarantee Run() will report, available without running.
  /// kCentralGaussian accounts T Gaussian releases of the mean update
  /// (replace-one-client sensitivity 2*clip/num_clients, stddev
  /// sigma*2*clip/num_clients) by RDP composition over the standard alpha
  /// grid, converted at options.delta.
  StatusOr<PrivacyBudget> Accounting() const;

 private:
  FederatedSimulator(const LossFunction* loss, std::vector<Dataset> shards,
                     FederatedOptions options, std::size_t dim)
      : loss_(loss), shards_(std::move(shards)), options_(options), dim_(dim) {}

  const LossFunction* loss_;
  std::vector<Dataset> shards_;
  FederatedOptions options_;
  std::size_t dim_;
};

}  // namespace localdp
}  // namespace dplearn

#endif  // DPLEARN_LOCALDP_FEDERATED_H_
