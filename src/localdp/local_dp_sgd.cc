#include "localdp/local_dp_sgd.h"

#include <cmath>
#include <cstddef>
#include <utility>
#include <vector>

#include "obs/trace.h"

namespace dplearn {
namespace localdp {
namespace {

Status ValidateOptions(const LocalDpSgdOptions& options) {
  if (!(options.epsilon_per_round > 0.0) || !std::isfinite(options.epsilon_per_round)) {
    return InvalidArgumentError("LocalDpSgd: epsilon_per_round must be positive and finite");
  }
  if (!(options.clip_norm > 0.0) || !std::isfinite(options.clip_norm)) {
    return InvalidArgumentError("LocalDpSgd: clip_norm must be positive and finite");
  }
  if (options.rounds == 0) return InvalidArgumentError("LocalDpSgd: rounds must be positive");
  if (!(options.learning_rate > 0.0)) {
    return InvalidArgumentError("LocalDpSgd: learning_rate must be positive");
  }
  if (options.l2_lambda < 0.0) {
    return InvalidArgumentError("LocalDpSgd: l2_lambda must be non-negative");
  }
  return Status::Ok();
}

struct PrivatizedGradient {
  Vector report;
  double clipped_norm = 0.0;
  Status status = Status::Ok();
};

}  // namespace

StatusOr<LocalDpSgdResult> LocalDpSgd(const LossFunction& loss, const Dataset& data,
                                      const LocalDpSgdOptions& options, Rng* rng,
                                      const parallel::ParallelTrialRunner& runner) {
  DPLEARN_RETURN_IF_ERROR(ValidateOptions(options));
  if (rng == nullptr) return InvalidArgumentError("LocalDpSgd: rng must be set");
  if (data.empty()) return InvalidArgumentError("LocalDpSgd: dataset must be non-empty");
  if (!loss.HasGradient()) {
    return InvalidArgumentError("LocalDpSgd: loss has no gradient (" + loss.Name() + ")");
  }
  const std::size_t dim = data.FeatureDim();
  if (dim == 0) {
    return InvalidArgumentError("LocalDpSgd: dataset has empty feature vectors");
  }
  DPLEARN_ASSIGN_OR_RETURN(
      const DjwL2Channel channel,
      DjwL2Channel::Create(options.epsilon_per_round, options.clip_norm, dim));

  obs::TraceSpan span("localdp.local_dp_sgd");
  const std::size_t n = data.size();
  const double inv_n = 1.0 / static_cast<double>(n);
  Vector theta(dim, 0.0);
  double clipped_norm_sum = 0.0;

  for (std::size_t round = 0; round < options.rounds; ++round) {
    // One privatization per example per round, on the example's own split
    // stream in example order — the determinism contract of the runner
    // makes the whole round (and so the whole run) bit-identical at any
    // thread count. The reduction below folds reports in example order.
    std::vector<PrivatizedGradient> reports = runner.MapTrials<PrivatizedGradient>(
        n, rng, [&](std::size_t i, Rng& example_rng) {
          PrivatizedGradient out;
          Vector gradient = loss.Gradient(theta, data.at(i));
          const double norm = Norm2(gradient);
          if (norm > options.clip_norm) {
            const double scale = options.clip_norm / norm;
            for (double& g : gradient) g *= scale;
            out.clipped_norm = options.clip_norm;
          } else {
            out.clipped_norm = norm;
          }
          StatusOr<Vector> privatized = channel.PrivatizeVector(gradient, &example_rng);
          if (!privatized.ok()) {
            out.status = privatized.status();
            return out;
          }
          out.report = std::move(privatized).value();
          return out;
        });

    Vector mean(dim, 0.0);
    for (const PrivatizedGradient& report : reports) {
      DPLEARN_RETURN_IF_ERROR(report.status);
      AxpyInPlace(&mean, inv_n, report.report);
      clipped_norm_sum += report.clipped_norm;
    }
    // theta <- theta - lr * (mean privatized gradient + l2 * theta). The
    // mean is an unbiased estimate of the mean clipped gradient, so this is
    // SGD on the clipped objective with zero-mean (heavy-tailed-free,
    // bounded-norm) channel noise.
    for (std::size_t j = 0; j < dim; ++j) {
      theta[j] -= options.learning_rate * (mean[j] + options.l2_lambda * theta[j]);
    }
  }

  LocalDpSgdResult result;
  result.theta = std::move(theta);
  result.budget.epsilon =
      static_cast<double>(options.rounds) * options.epsilon_per_round;
  result.budget.delta = 0.0;
  result.rounds = options.rounds;
  result.mean_clipped_gradient_norm =
      clipped_norm_sum / (static_cast<double>(options.rounds) * static_cast<double>(n));
  return result;
}

}  // namespace localdp
}  // namespace dplearn
