#include "localdp/local_channel.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <utility>

#include "obs/audit_log.h"
#include "obs/config.h"
#include "obs/metrics.h"
#include "robustness/failpoint.h"
#include "sampling/distributions.h"

namespace dplearn {
namespace localdp {
// Each Privatize() opens with the same instrumentation sequence as the
// central mechanisms (LaplaceMechanism::Release et al.): fail point first
// (chaos configs abort the draw before any side effect), then count/latency
// metrics behind MetricsEnabled(), then the audit self-report. The metric
// names differ per channel, so the static-local handles live in each
// Privatize() body; this macro keeps the sequence identical.
#define DPLEARN_LOCALDP_INSTRUMENT_PRIVATIZE(metric_prefix, epsilon)            \
  DPLEARN_RETURN_IF_ERROR(robustness::Inject("mechanism.sample"));              \
  static obs::Histogram* const release_us = obs::GlobalMetrics().GetHistogram(  \
      metric_prefix ".release.us", obs::DefaultLatencyBucketsUs());             \
  obs::LatencyTimer timer(obs::MetricsEnabled() ? release_us : nullptr);        \
  if (obs::MetricsEnabled()) {                                                  \
    static obs::Counter* const releases =                                       \
        obs::GlobalMetrics().GetCounter(metric_prefix ".releases");             \
    releases->Increment();                                                      \
  }                                                                             \
  obs::AuditMechanismInvocation(metric_prefix, (epsilon), 0.0)

// ---------------------------------------------------------------------------
// LocalChannel base audit hooks.

StatusOr<double> LocalChannel::LogLikelihoodRatio(const Example& a, const Example& b,
                                                  const Example& output) const {
  DPLEARN_ASSIGN_OR_RETURN(const double log_a, OutputLogDensity(a, output));
  DPLEARN_ASSIGN_OR_RETURN(const double log_b, OutputLogDensity(b, output));
  return std::fabs(log_a - log_b);
}

Status LocalChannel::SelfAuditPair(const Example& a, const Example& b,
                                   const Example& output, double slack) const {
  DPLEARN_ASSIGN_OR_RETURN(const double ratio, LogLikelihoodRatio(a, b, output));
  if (ratio <= epsilon() + slack) return Status::Ok();
  if (obs::MetricsEnabled()) {
    static obs::Counter* const violations =
        obs::GlobalMetrics().GetCounter("localdp.audit.violations");
    violations->Increment();
  }
  return FailedPreconditionError(std::string(Name()) +
                                 ": likelihood-ratio audit breach: |log ratio| " +
                                 std::to_string(ratio) + " > epsilon " +
                                 std::to_string(epsilon()));
}

// ---------------------------------------------------------------------------
// RandomizedResponseChannel.

StatusOr<RandomizedResponseChannel> RandomizedResponseChannel::Create(
    double epsilon, std::vector<double> labels) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return InvalidArgumentError(
        "RandomizedResponseChannel: epsilon must be positive and finite");
  }
  if (labels.size() < 2) {
    return InvalidArgumentError(
        "RandomizedResponseChannel: alphabet needs at least 2 labels");
  }
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (!std::isfinite(labels[i])) {
      return InvalidArgumentError("RandomizedResponseChannel: labels must be finite");
    }
    for (std::size_t j = i + 1; j < labels.size(); ++j) {
      if (labels[i] == labels[j]) {
        return InvalidArgumentError("RandomizedResponseChannel: labels must be distinct");
      }
    }
  }
  const double k = static_cast<double>(labels.size());
  const double e_eps = std::exp(epsilon);
  if (!std::isfinite(e_eps)) {
    return InvalidArgumentError(
        "RandomizedResponseChannel: epsilon too large (e^eps overflows)");
  }
  const double p_truth = e_eps / (e_eps + k - 1.0);
  const double p_other = 1.0 / (e_eps + k - 1.0);
  return RandomizedResponseChannel(epsilon, std::move(labels), p_truth, p_other);
}

StatusOr<Example> RandomizedResponseChannel::Privatize(const Example& example,
                                                       Rng* rng) const {
  DPLEARN_LOCALDP_INSTRUMENT_PRIVATIZE("localdp.randomized_response", epsilon_);
  DPLEARN_ASSIGN_OR_RETURN(const std::size_t true_index, LabelIndex(example.label));
  DPLEARN_ASSIGN_OR_RETURN(const int keep, SampleBernoulli(rng, p_truth_));
  Example out = example;  // features pass through verbatim
  if (keep == 1) {
    out.label = labels_[true_index];
    return out;
  }
  // Uniform over the k-1 other labels: each lands with probability
  // (1 - p_truth) / (k - 1) = p_other exactly.
  const std::size_t shift = static_cast<std::size_t>(
      rng->NextBounded(static_cast<std::uint64_t>(labels_.size() - 1)));
  std::size_t report = true_index + 1 + shift;
  if (report >= labels_.size()) report -= labels_.size();
  out.label = labels_[report];
  return out;
}

StatusOr<double> RandomizedResponseChannel::OutputLogDensity(
    const Example& input, const Example& output) const {
  DPLEARN_ASSIGN_OR_RETURN(const std::size_t in_index, LabelIndex(input.label));
  DPLEARN_ASSIGN_OR_RETURN(const std::size_t out_index, LabelIndex(output.label));
  return std::log(in_index == out_index ? p_truth_ : p_other_);
}

std::vector<std::vector<double>> RandomizedResponseChannel::TransitionMatrix() const {
  const std::size_t k = labels_.size();
  std::vector<std::vector<double>> transition(k, std::vector<double>(k, p_other_));
  for (std::size_t i = 0; i < k; ++i) transition[i][i] = p_truth_;
  return transition;
}

StatusOr<std::vector<double>> RandomizedResponseChannel::DebiasedFrequencies(
    const std::vector<double>& reports) const {
  if (reports.empty()) {
    return InvalidArgumentError(
        "RandomizedResponseChannel::DebiasedFrequencies: empty reports");
  }
  std::vector<double> counts(labels_.size(), 0.0);
  for (const double report : reports) {
    DPLEARN_ASSIGN_OR_RETURN(const std::size_t index, LabelIndex(report));
    counts[index] += 1.0;
  }
  const double n = static_cast<double>(reports.size());
  // E[freq[i]] = pi[i] * p_truth + (1 - pi[i]) * p_other, so inverting is a
  // per-entry affine map; the estimates sum to 1 because the frequencies do.
  std::vector<double> estimate(labels_.size(), 0.0);
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    estimate[i] = (counts[i] / n - p_other_) / (p_truth_ - p_other_);
  }
  return estimate;
}

StatusOr<std::size_t> RandomizedResponseChannel::LabelIndex(double label) const {
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (labels_[i] == label) return i;
  }
  return InvalidArgumentError(
      "RandomizedResponseChannel: label " + std::to_string(label) +
      " is not in the channel alphabet");
}

// ---------------------------------------------------------------------------
// DjwL2Channel.

double PositiveHemisphereMeanDot(std::size_t dim) {
  const double d = static_cast<double>(dim);
  // Gamma(d/2) / (sqrt(pi) * Gamma((d+1)/2)) via lgamma to stay finite at
  // large d (both gammas overflow individually past d ~ 340).
  return std::exp(std::lgamma(d / 2.0) - std::lgamma((d + 1.0) / 2.0)) /
         std::sqrt(M_PI);
}

StatusOr<DjwL2Channel> DjwL2Channel::Create(double epsilon, double radius,
                                            std::size_t dim) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return InvalidArgumentError("DjwL2Channel: epsilon must be positive and finite");
  }
  if (!(radius > 0.0) || !std::isfinite(radius)) {
    return InvalidArgumentError("DjwL2Channel: radius must be positive and finite");
  }
  if (dim == 0) return InvalidArgumentError("DjwL2Channel: dim must be positive");
  const double e_eps = std::exp(epsilon);
  if (!std::isfinite(e_eps)) {
    return InvalidArgumentError("DjwL2Channel: epsilon too large (e^eps overflows)");
  }
  const double tau = e_eps / (e_eps + 1.0);
  const double c_d = PositiveHemisphereMeanDot(dim);
  // B = r * (e^eps + 1) / ((e^eps - 1) * c_d): the unique output radius for
  // which E[output | v] = v. Diverges as eps -> 0 like 2r/(eps*c_d) — the
  // variance cost of local privacy.
  const double output_norm = radius * (e_eps + 1.0) / ((e_eps - 1.0) * c_d);
  if (!std::isfinite(output_norm)) {
    return InvalidArgumentError("DjwL2Channel: epsilon too small (output norm overflows)");
  }
  return DjwL2Channel(epsilon, radius, dim, tau, output_norm);
}

namespace {

/// Direction of the sphere rounding step: v/||v||, or the first basis
/// vector for v = 0 (any fixed choice works — at v = 0 the sign is a fair
/// coin so the density is direction-free; the sampler and the density
/// formula just have to agree, and they both call this).
Vector RoundingDirection(const Vector& v, double norm) {
  Vector w(v.size(), 0.0);
  if (norm > 0.0) {
    for (std::size_t i = 0; i < v.size(); ++i) w[i] = v[i] / norm;
  } else {
    w[0] = 1.0;
  }
  return w;
}

}  // namespace

StatusOr<Vector> DjwL2Channel::PrivatizeVector(const Vector& v, Rng* rng) const {
  DPLEARN_LOCALDP_INSTRUMENT_PRIVATIZE("localdp.djw_l2", epsilon_);
  if (v.size() != dim_) {
    return InvalidArgumentError("DjwL2Channel: input has dimension " +
                                std::to_string(v.size()) + ", channel expects " +
                                std::to_string(dim_));
  }
  const double norm = Norm2(v);
  if (norm > radius_ * (1.0 + 1e-9)) {
    return InvalidArgumentError(
        "DjwL2Channel: ||input|| = " + std::to_string(norm) + " exceeds radius " +
        std::to_string(radius_) + " — clip before privatizing");
  }
  const double p_plus = 0.5 + std::min(norm, radius_) / (2.0 * radius_);
  DPLEARN_ASSIGN_OR_RETURN(const int plus, SampleBernoulli(rng, p_plus));
  const Vector w_hat = RoundingDirection(v, norm);
  const double sign = plus == 1 ? 1.0 : -1.0;
  DPLEARN_ASSIGN_OR_RETURN(const int favored, SampleBernoulli(rng, tau_));
  DPLEARN_ASSIGN_OR_RETURN(Vector u, SampleUnitSphere(rng, dim_));
  // Reflect the uniform sphere draw into the hemisphere the coin picked:
  // <z, sign*w_hat> > 0 with probability tau, the closed complement with
  // probability 1 - tau. Reflection preserves uniformity per hemisphere.
  const double dot = sign * Dot(u, w_hat);
  const bool in_positive = dot > 0.0;
  if (in_positive != (favored == 1)) {
    for (double& coordinate : u) coordinate = -coordinate;
  }
  for (double& coordinate : u) coordinate *= output_norm_;
  return u;
}

StatusOr<double> DjwL2Channel::VectorLogDensity(const Vector& input,
                                                const Vector& output) const {
  if (input.size() != dim_ || output.size() != dim_) {
    return InvalidArgumentError("DjwL2Channel: density query dimension mismatch");
  }
  const double norm = Norm2(input);
  if (norm > radius_ * (1.0 + 1e-9)) {
    return InvalidArgumentError("DjwL2Channel: density input outside the radius ball");
  }
  const double out_norm = Norm2(output);
  if (std::fabs(out_norm - output_norm_) > 1e-6 * output_norm_) {
    return InvalidArgumentError(
        "DjwL2Channel: output is not on the channel's output sphere");
  }
  const double p_plus = 0.5 + std::min(norm, radius_) / (2.0 * radius_);
  const Vector w_hat = RoundingDirection(input, norm);
  const double dot = Dot(output, w_hat);
  // Mixture over the rounding sign; each branch is tau or 1-tau times the
  // uniform hemisphere measure (the shared output-sphere base measure is
  // the additive constant this log-density is defined up to). The boundary
  // <z, w> = 0 belongs to the "not favored" closed hemisphere of both
  // signs, matching the sampler's strict > test.
  const double density_plus = dot > 0.0 ? tau_ : 1.0 - tau_;
  const double density_minus = -dot > 0.0 ? tau_ : 1.0 - tau_;
  return std::log(p_plus * density_plus + (1.0 - p_plus) * density_minus);
}

StatusOr<Example> DjwL2Channel::Privatize(const Example& example, Rng* rng) const {
  DPLEARN_ASSIGN_OR_RETURN(Vector privatized, PrivatizeVector(example.features, rng));
  Example out;
  out.features = std::move(privatized);
  out.label = example.label;  // label passes through — compose to guard it
  return out;
}

StatusOr<double> DjwL2Channel::OutputLogDensity(const Example& input,
                                                const Example& output) const {
  return VectorLogDensity(input.features, output.features);
}

// ---------------------------------------------------------------------------
// ComposedExampleChannel.

StatusOr<ComposedExampleChannel> ComposedExampleChannel::Create(
    DjwL2Channel feature_channel, RandomizedResponseChannel label_channel) {
  return ComposedExampleChannel(std::move(feature_channel), std::move(label_channel));
}

StatusOr<Example> ComposedExampleChannel::Privatize(const Example& example,
                                                    Rng* rng) const {
  DPLEARN_ASSIGN_OR_RETURN(Example features_done, feature_channel_.Privatize(example, rng));
  return label_channel_.Privatize(features_done, rng);
}

StatusOr<double> ComposedExampleChannel::OutputLogDensity(const Example& input,
                                                          const Example& output) const {
  DPLEARN_ASSIGN_OR_RETURN(const double feature_term,
                           feature_channel_.OutputLogDensity(input, output));
  DPLEARN_ASSIGN_OR_RETURN(const double label_term,
                           label_channel_.OutputLogDensity(input, output));
  return feature_term + label_term;
}

}  // namespace localdp
}  // namespace dplearn
