#ifndef DPLEARN_LOCALDP_LOCAL_CHANNEL_H_
#define DPLEARN_LOCALDP_LOCAL_CHANNEL_H_

#include <cstddef>
#include <vector>

#include "learning/dataset.h"
#include "sampling/rng.h"
#include "util/matrix.h"
#include "util/status.h"

namespace dplearn {
namespace localdp {

/// Local differential privacy turns the central trusted-curator channel
/// Q(theta | dataset) of the paper into a *per-example* channel
/// Q(z' | z): each record is privatized on the client before anything is
/// aggregated, so the curator never sees raw data. The neighbor relation
/// collapses to "any pair of inputs": an eps-local channel satisfies
///
///     p(output | a) <= e^eps * p(output | b)     for ALL inputs a, b
///
/// (Duchi-Jordan-Wainwright, "Local Privacy, Data Processing Inequalities,
/// and Statistical Minimax Rates"). That uniform likelihood-ratio bound is
/// the audit currency of this subsystem: every concrete channel exposes its
/// exact output log-density (up to an input-independent constant), and
/// SelfAuditPair() checks the realized ratio of any input pair at any
/// realized output against e^eps — mirroring the density audits the central
/// mechanisms get from the DP verifier.
///
/// Numerical contracts (DESIGN.md section 16):
///  * Privatize() consumes the caller's Rng only through the library
///    samplers, so outputs are bit-identical for a fixed seed at any
///    DPLEARN_THREADS (channels hold no RNG state of their own).
///  * OutputLogDensity() differences are exact log likelihood ratios; the
///    additive constant (output-space base measure) cancels in every pair.
///  * Each Privatize() fires the standard mechanism instrumentation: the
///    "mechanism.sample" fail point, a release counter/latency histogram,
///    and an AuditMechanismInvocation self-report of eps.
class LocalChannel {
 public:
  virtual ~LocalChannel() = default;

  /// Stable instrumentation name, e.g. "localdp.randomized_response".
  virtual const char* Name() const = 0;

  /// The per-example local privacy parameter.
  virtual double epsilon() const = 0;

  /// Privatizes one example. Components the channel does not guard (see the
  /// concrete class comments) pass through unchanged.
  virtual StatusOr<Example> Privatize(const Example& example, Rng* rng) const = 0;

  /// log p(output | input) up to an additive constant that does not depend
  /// on the input — so OutputLogDensity(a, z) - OutputLogDensity(b, z) is
  /// the exact log likelihood ratio of inputs a and b at output z. Errors
  /// when `output` is not in the channel's output support or `input` is not
  /// in its input domain.
  virtual StatusOr<double> OutputLogDensity(const Example& input,
                                            const Example& output) const = 0;

  /// The per-example self-audit hook: the realized log likelihood ratio
  /// |log p(output|a) - log p(output|b)|. By eps-local DP this must be
  /// <= epsilon() for every (a, b, output) triple; callers (tests, the
  /// contraction experiment) assert that bound.
  StatusOr<double> LogLikelihoodRatio(const Example& a, const Example& b,
                                      const Example& output) const;

  /// Convenience audit: FailedPreconditionError (and a bump of the
  /// "localdp.audit.violations" counter) if the realized likelihood ratio
  /// of (a, b) at `output` exceeds e^epsilon beyond `slack` nats —
  /// the channel's own guarantee caught broken at runtime.
  Status SelfAuditPair(const Example& a, const Example& b, const Example& output,
                       double slack = 1e-9) const;
};

/// k-ary randomized response over a fixed finite label alphabet: report the
/// true label with probability e^eps / (e^eps + k - 1), otherwise one of the
/// k - 1 other labels uniformly. Guards the LABEL component only; features
/// pass through verbatim (pair it with DjwL2Channel via
/// ComposedExampleChannel when features are sensitive too). The likelihood
/// ratio bound e^eps is met with equality, making this the canonical
/// extremal channel for the contraction experiments.
class RandomizedResponseChannel final : public LocalChannel {
 public:
  /// `labels` is the input/output alphabet (distinct values, size >= 2).
  static StatusOr<RandomizedResponseChannel> Create(double epsilon,
                                                    std::vector<double> labels);

  const char* Name() const override { return "localdp.randomized_response"; }
  double epsilon() const override { return epsilon_; }
  std::size_t alphabet_size() const { return labels_.size(); }
  const std::vector<double>& labels() const { return labels_; }
  double truth_probability() const { return p_truth_; }

  StatusOr<Example> Privatize(const Example& example, Rng* rng) const override;
  StatusOr<double> OutputLogDensity(const Example& input,
                                    const Example& output) const override;

  /// Row-stochastic transition matrix T[i][j] = P(report labels[j] | true
  /// labels[i]) — plugs straight into infotheory::DiscreteChannel for exact
  /// mutual-information / contraction computations.
  std::vector<std::vector<double>> TransitionMatrix() const;

  /// Unbiased estimate of the true label distribution from privatized
  /// reports: inverts the transition matrix in closed form,
  /// pi_hat[i] = (freq[i] - p_other) / (p_truth - p_other). Entries may be
  /// slightly negative or above one at small n; they sum to one exactly.
  StatusOr<std::vector<double>> DebiasedFrequencies(
      const std::vector<double>& reports) const;

  /// Index of `label` in the alphabet; InvalidArgumentError when absent.
  StatusOr<std::size_t> LabelIndex(double label) const;

 private:
  RandomizedResponseChannel(double epsilon, std::vector<double> labels,
                            double p_truth, double p_other)
      : epsilon_(epsilon), labels_(std::move(labels)), p_truth_(p_truth),
        p_other_(p_other) {}

  double epsilon_;
  std::vector<double> labels_;
  double p_truth_;  // e^eps / (e^eps + k - 1)
  double p_other_;  // 1 / (e^eps + k - 1), per non-true label
};

/// The Duchi-Jordan-Wainwright eps-local channel for vectors in the L2 ball
/// of radius r ("Privacy Aware Learning", mechanism for bounded gradients):
///
///   1. Round v to a sphere point: v_tilde = +-r * v/||v|| with
///      P(+) = 1/2 + ||v||/(2r).
///   2. With probability tau = e^eps / (e^eps + 1) emit a uniform draw from
///      the hemisphere {z : <z, v_tilde> > 0} of the radius-B sphere,
///      otherwise from the complementary closed hemisphere.
///
/// Every output density is either tau or 1-tau times the uniform sphere
/// measure (mixed over the sign of step 1), so the likelihood ratio of ANY
/// input pair is <= tau/(1-tau) = e^eps exactly. The output radius
///
///   B = r * (e^eps + 1) / ((e^eps - 1) * c_d),
///   c_d = E[<u, w> | <u, w> > 0] = Gamma(d/2) / (sqrt(pi) * Gamma((d+1)/2))
///
/// is calibrated so E[output | v] = v: privatized vectors average to the
/// truth, at the cost of per-coordinate noise of order r*sqrt(d)/eps for
/// small eps — the DJW minimax price of local privacy.
class DjwL2Channel final : public LocalChannel {
 public:
  /// Channel for vectors with ||v||_2 <= radius in `dim` dimensions.
  static StatusOr<DjwL2Channel> Create(double epsilon, double radius,
                                       std::size_t dim);

  const char* Name() const override { return "localdp.djw_l2"; }
  double epsilon() const override { return epsilon_; }
  double radius() const { return radius_; }
  std::size_t dim() const { return dim_; }
  /// Radius B of the output sphere; every privatized vector has this norm.
  double output_norm() const { return output_norm_; }

  /// Privatizes one vector with ||v||_2 <= radius (InvalidArgumentError
  /// beyond a 1e-9 relative tolerance — callers clip first). The output is
  /// an unbiased estimate of v with ||output||_2 = output_norm().
  StatusOr<Vector> PrivatizeVector(const Vector& v, Rng* rng) const;

  /// log p(output | input) up to the (input-independent) uniform-sphere
  /// base measure, for PrivatizeVector outputs.
  StatusOr<double> VectorLogDensity(const Vector& input, const Vector& output) const;

  /// Example adapter: privatizes `features`; the label passes through
  /// unchanged (guard it with RandomizedResponseChannel when needed).
  StatusOr<Example> Privatize(const Example& example, Rng* rng) const override;
  StatusOr<double> OutputLogDensity(const Example& input,
                                    const Example& output) const override;

 private:
  DjwL2Channel(double epsilon, double radius, std::size_t dim, double tau,
               double output_norm)
      : epsilon_(epsilon), radius_(radius), dim_(dim), tau_(tau),
        output_norm_(output_norm) {}

  double epsilon_;
  double radius_;
  std::size_t dim_;
  double tau_;          // e^eps / (e^eps + 1)
  double output_norm_;  // B
};

/// Sequential composition of the two component channels: features through
/// DJW, then the label through randomized response. The whole example is
/// guarded with epsilon = eps_features + eps_label (basic composition holds
/// per example because the two randomizations are independent given the
/// input), and OutputLogDensity is the sum of the component log-densities.
class ComposedExampleChannel final : public LocalChannel {
 public:
  static StatusOr<ComposedExampleChannel> Create(DjwL2Channel feature_channel,
                                                 RandomizedResponseChannel label_channel);

  const char* Name() const override { return "localdp.composed"; }
  double epsilon() const override {
    return feature_channel_.epsilon() + label_channel_.epsilon();
  }
  const DjwL2Channel& feature_channel() const { return feature_channel_; }
  const RandomizedResponseChannel& label_channel() const { return label_channel_; }

  StatusOr<Example> Privatize(const Example& example, Rng* rng) const override;
  StatusOr<double> OutputLogDensity(const Example& input,
                                    const Example& output) const override;

 private:
  ComposedExampleChannel(DjwL2Channel f, RandomizedResponseChannel l)
      : feature_channel_(std::move(f)), label_channel_(std::move(l)) {}

  DjwL2Channel feature_channel_;
  RandomizedResponseChannel label_channel_;
};

/// E[<u, w> | <u, w> > 0] for u uniform on the unit sphere in d dimensions
/// and any fixed unit w: Gamma(d/2) / (sqrt(pi) * Gamma((d+1)/2)). The
/// debiasing constant of the DJW mechanism (1 at d=1, 2/pi at d=2, 1/2 at
/// d=3, ~ sqrt(2/(pi*d)) for large d). Exposed for tests.
double PositiveHemisphereMeanDot(std::size_t dim);

}  // namespace localdp
}  // namespace dplearn

#endif  // DPLEARN_LOCALDP_LOCAL_CHANNEL_H_
