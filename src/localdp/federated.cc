#include "localdp/federated.h"

#include <cmath>
#include <cstddef>
#include <limits>
#include <utility>
#include <vector>

#include "infotheory/renyi.h"
#include "obs/trace.h"
#include "sampling/distributions.h"

namespace dplearn {
namespace localdp {
namespace {

Status ValidateOptions(const FederatedOptions& options) {
  if (options.num_clients == 0) {
    return InvalidArgumentError("FederatedSimulator: num_clients must be positive");
  }
  if (options.rounds == 0) {
    return InvalidArgumentError("FederatedSimulator: rounds must be positive");
  }
  if (options.local_steps == 0) {
    return InvalidArgumentError("FederatedSimulator: local_steps must be positive");
  }
  if (!(options.learning_rate > 0.0)) {
    return InvalidArgumentError("FederatedSimulator: learning_rate must be positive");
  }
  if (options.l2_lambda < 0.0) {
    return InvalidArgumentError("FederatedSimulator: l2_lambda must be non-negative");
  }
  if (!(options.clip_norm > 0.0) || !std::isfinite(options.clip_norm)) {
    return InvalidArgumentError("FederatedSimulator: clip_norm must be positive and finite");
  }
  if (options.model == FederatedPrivacyModel::kLocalDjw &&
      (!(options.epsilon_per_round > 0.0) || !std::isfinite(options.epsilon_per_round))) {
    return InvalidArgumentError(
        "FederatedSimulator: epsilon_per_round must be positive and finite");
  }
  if (options.model == FederatedPrivacyModel::kCentralGaussian) {
    if (!(options.noise_multiplier > 0.0)) {
      return InvalidArgumentError(
          "FederatedSimulator: noise_multiplier must be positive");
    }
    if (!(options.delta > 0.0) || !(options.delta < 1.0)) {
      return InvalidArgumentError("FederatedSimulator: delta must be in (0, 1)");
    }
  }
  return Status::Ok();
}

struct ClientUpdate {
  Vector update;
  double clipped_norm = 0.0;
  Status status = Status::Ok();
};

}  // namespace

StatusOr<FederatedSimulator> FederatedSimulator::Create(const LossFunction* loss,
                                                        Dataset data,
                                                        FederatedOptions options) {
  if (loss == nullptr) {
    return InvalidArgumentError("FederatedSimulator: loss must be set");
  }
  if (!loss->HasGradient()) {
    return InvalidArgumentError("FederatedSimulator: loss has no gradient (" +
                                loss->Name() + ")");
  }
  DPLEARN_RETURN_IF_ERROR(ValidateOptions(options));
  if (data.size() < options.num_clients) {
    return InvalidArgumentError(
        "FederatedSimulator: need at least one example per client (" +
        std::to_string(data.size()) + " examples, " +
        std::to_string(options.num_clients) + " clients)");
  }
  const std::size_t dim = data.FeatureDim();
  if (dim == 0) {
    return InvalidArgumentError("FederatedSimulator: dataset has empty feature vectors");
  }
  // Round-robin sharding: example i goes to client i mod m. Deterministic
  // in the input order, and every client gets within one example of n/m.
  std::vector<Dataset> shards(options.num_clients);
  for (std::size_t i = 0; i < data.size(); ++i) {
    shards[i % options.num_clients].Add(data.at(i));
  }
  return FederatedSimulator(loss, std::move(shards), options, dim);
}

StatusOr<PrivacyBudget> FederatedSimulator::Accounting() const {
  PrivacyBudget budget;
  switch (options_.model) {
    case FederatedPrivacyModel::kNone:
      budget.epsilon = std::numeric_limits<double>::infinity();
      budget.delta = 0.0;
      return budget;
    case FederatedPrivacyModel::kLocalDjw:
      budget.epsilon =
          static_cast<double>(options_.rounds) * options_.epsilon_per_round;
      budget.delta = 0.0;
      return budget;
    case FederatedPrivacyModel::kCentralGaussian: {
      // Replacing one client's clipped update (L2 norm <= clip) with
      // another moves the SUM by at most 2*clip, hence the mean by
      // 2*clip/num_clients in L2 — NOT clip/num_clients, which is the
      // zero-out sensitivity and under-reports replace-one by 4x in RDP.
      // The server noise stddev is sigma times this sensitivity, so each
      // round is a Gaussian release with RDP alpha/(2*sigma^2). Compose
      // over rounds, convert at delta, minimize over the standard grid.
      static const double kAlphaGrid[] = {1.5, 2.0, 3.0, 5.0, 8.0, 16.0,
                                          32.0, 64.0, 128.0, 256.0, 512.0};
      const double sensitivity =
          2.0 * options_.clip_norm / static_cast<double>(options_.num_clients);
      const double sigma = options_.noise_multiplier * sensitivity;
      double best = std::numeric_limits<double>::infinity();
      for (const double alpha : kAlphaGrid) {
        DPLEARN_ASSIGN_OR_RETURN(const RdpBudget per_round,
                                 GaussianMechanismRdp(sigma, sensitivity, alpha));
        DPLEARN_ASSIGN_OR_RETURN(const RdpBudget composed,
                                 ComposeRdp(per_round, options_.rounds));
        DPLEARN_ASSIGN_OR_RETURN(const double eps,
                                 RdpToApproximateDpEpsilon(composed, options_.delta));
        if (eps < best) best = eps;
      }
      budget.epsilon = best;
      budget.delta = options_.delta;
      return budget;
    }
  }
  return InternalError("FederatedSimulator: unknown privacy model");
}

StatusOr<FederatedResult> FederatedSimulator::RunWith(
    const parallel::ParallelTrialRunner& runner, Rng* rng) const {
  if (rng == nullptr) return InvalidArgumentError("FederatedSimulator: rng must be set");
  obs::TraceSpan span("localdp.federated.run");

  StatusOr<DjwL2Channel> channel =
      InvalidArgumentError("FederatedSimulator: channel unused");
  if (options_.model == FederatedPrivacyModel::kLocalDjw) {
    channel = DjwL2Channel::Create(options_.epsilon_per_round, options_.clip_norm, dim_);
    DPLEARN_RETURN_IF_ERROR(channel.status());
  }

  const std::size_t m = options_.num_clients;
  const double inv_m = 1.0 / static_cast<double>(m);
  Vector theta(dim_, 0.0);
  double clipped_norm_sum = 0.0;

  for (std::size_t round = 0; round < options_.rounds; ++round) {
    // Per-client split streams in client order + client-order reduction:
    // the two halves of the runner's determinism contract that make this
    // loop bit-identical at any thread count.
    std::vector<ClientUpdate> updates = runner.MapTrials<ClientUpdate>(
        m, rng, [&](std::size_t client, Rng& client_rng) {
          ClientUpdate out;
          const Dataset& shard = shards_[client];
          const double inv_shard = 1.0 / static_cast<double>(shard.size());
          Vector local = theta;
          for (std::size_t step = 0; step < options_.local_steps; ++step) {
            Vector mean_gradient(dim_, 0.0);
            for (const Example& example : shard.examples()) {
              const Vector gradient = loss_->Gradient(local, example);
              AxpyInPlace(&mean_gradient, inv_shard, gradient);
            }
            for (std::size_t j = 0; j < dim_; ++j) {
              local[j] -= options_.learning_rate *
                          (mean_gradient[j] + options_.l2_lambda * local[j]);
            }
          }
          Vector update = Sub(local, theta);
          const double norm = Norm2(update);
          if (norm > options_.clip_norm) {
            const double scale = options_.clip_norm / norm;
            for (double& u : update) u *= scale;
            out.clipped_norm = options_.clip_norm;
          } else {
            out.clipped_norm = norm;
          }
          if (options_.model == FederatedPrivacyModel::kLocalDjw) {
            StatusOr<Vector> privatized =
                channel.value().PrivatizeVector(update, &client_rng);
            if (!privatized.ok()) {
              out.status = privatized.status();
              return out;
            }
            out.update = std::move(privatized).value();
          } else {
            out.update = std::move(update);
          }
          return out;
        });

    Vector mean_update(dim_, 0.0);
    for (const ClientUpdate& update : updates) {
      DPLEARN_RETURN_IF_ERROR(update.status);
      AxpyInPlace(&mean_update, inv_m, update.update);
      clipped_norm_sum += update.clipped_norm;
    }
    if (options_.model == FederatedPrivacyModel::kCentralGaussian) {
      // Server-side noise on the mean, drawn from the base stream AFTER the
      // per-client splits — same position in the stream at any thread
      // count, so the determinism contract holds for the central model too.
      // Stddev = sigma times the replace-one-client sensitivity 2*clip/m,
      // matching what Accounting() charges for.
      const double stddev =
          options_.noise_multiplier * 2.0 * options_.clip_norm * inv_m;
      for (std::size_t j = 0; j < dim_; ++j) {
        DPLEARN_ASSIGN_OR_RETURN(const double noise, SampleNormal(rng, 0.0, stddev));
        mean_update[j] += noise;
      }
    }
    AxpyInPlace(&theta, 1.0, mean_update);
  }

  FederatedResult result;
  result.theta = std::move(theta);
  result.rounds = options_.rounds;
  DPLEARN_ASSIGN_OR_RETURN(result.budget, Accounting());
  result.mean_update_norm = clipped_norm_sum / (static_cast<double>(options_.rounds) *
                                                static_cast<double>(m));
  return result;
}

}  // namespace localdp
}  // namespace dplearn
