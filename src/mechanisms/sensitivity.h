#ifndef DPLEARN_MECHANISMS_SENSITIVITY_H_
#define DPLEARN_MECHANISMS_SENSITIVITY_H_

#include <functional>
#include <vector>

#include "learning/dataset.h"
#include "util/status.h"

namespace dplearn {

/// A deterministic real-valued query f : datasets -> R (Definition 2.2's
/// f : D -> R). Implementations must be pure functions of the dataset.
using ScalarQuery = std::function<double(const Dataset&)>;

/// A query bundled with its global sensitivity
///   Δf = max_{D ~ D'} |f(D) - f(D')|
/// over the replace-one-example neighbor relation. The sensitivity is the
/// caller's *claim*; the Laplace mechanism's guarantee is only as good as
/// this claim, so prefer the audited constructors below and verify claims
/// on finite domains with MeasuredSensitivity.
struct SensitiveQuery {
  ScalarQuery query;
  double sensitivity = 0.0;
};

/// Count query: number of examples whose label satisfies `predicate` —
/// sensitivity 1 (replacing one example changes the count by at most 1).
SensitiveQuery CountQuery(std::function<bool(const Example&)> predicate);

/// Mean of labels known to lie in [label_lo, label_hi]; labels are clamped
/// to that range before averaging (which is what makes the sensitivity
/// claim (hi-lo)/n sound even on wild inputs). `n` is the fixed dataset
/// size the query will be asked on. Error if the range is empty or n == 0.
StatusOr<SensitiveQuery> BoundedMeanQuery(double label_lo, double label_hi, std::size_t n);

/// Sum of labels clamped to [label_lo, label_hi]; sensitivity (hi - lo)
/// under the replace-one neighbor relation.
StatusOr<SensitiveQuery> BoundedSumQuery(double label_lo, double label_hi);

/// Exhaustively measures max |f(D) - f(D')| over all replace-one neighbors
/// of `base` with replacements drawn from `domain`. On a finite example
/// domain this is the exact local sensitivity at `base`; maximized over a
/// set of bases it converges to the global sensitivity. Used in tests to
/// audit claimed sensitivities. Error if base is empty or domain is empty.
StatusOr<double> MeasuredSensitivity(const ScalarQuery& query, const Dataset& base,
                                     const std::vector<Example>& domain);

}  // namespace dplearn

#endif  // DPLEARN_MECHANISMS_SENSITIVITY_H_
