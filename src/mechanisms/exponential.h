#ifndef DPLEARN_MECHANISMS_EXPONENTIAL_H_
#define DPLEARN_MECHANISMS_EXPONENTIAL_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "learning/dataset.h"
#include "sampling/rng.h"
#include "util/status.h"

namespace dplearn {

/// Quality function q(x, u): scores candidate output index `u` on dataset
/// `x` (Section 2.1 of the paper, McSherry–Talwar 2007). Higher is better.
/// Must be a deterministic pure function.
using QualityFn = std::function<double(const Dataset&, std::size_t)>;

/// The exponential mechanism over a FINITE output range
/// {0, ..., num_candidates-1} with base measure `prior`:
///
///   P(output = u | x)  ∝  exp(ε · q(x, u)) · prior[u].
///
/// Theorem 2.2 of the paper: this is 2εΔq-differentially private, where Δq
/// is the global sensitivity of q in its dataset argument (uniformly over
/// candidates). The mechanism is "the most general formulation of a
/// differentially-private mechanism"; the Gibbs estimator of the paper
/// (core/gibbs_estimator.h) is exactly this object with q = -R̂ and the
/// PAC-Bayes prior π as base measure.
class ExponentialMechanism {
 public:
  /// `epsilon` is the exponent scale ε above (NOT the final privacy level;
  /// see PrivacyGuaranteeEpsilon). `quality_sensitivity` is the caller's
  /// claim for Δq. `prior` must be a probability vector of length
  /// `num_candidates`. Errors on invalid arguments.
  static StatusOr<ExponentialMechanism> Create(QualityFn quality, std::size_t num_candidates,
                                               std::vector<double> prior, double epsilon,
                                               double quality_sensitivity);

  /// Convenience: uniform base measure.
  static StatusOr<ExponentialMechanism> CreateUniform(QualityFn quality,
                                                      std::size_t num_candidates,
                                                      double epsilon,
                                                      double quality_sensitivity);

  /// Calibrated constructor: chooses the exponent scale ε = target/(2Δq) so
  /// that PrivacyGuaranteeEpsilon() == target_epsilon exactly.
  static StatusOr<ExponentialMechanism> CreateWithTargetPrivacy(
      QualityFn quality, std::size_t num_candidates, std::vector<double> prior,
      double target_epsilon, double quality_sensitivity);

  /// The EXACT output distribution on `data` — computable because the range
  /// is finite. The empirical DP verifier and the channel construction use
  /// this directly.
  StatusOr<std::vector<double>> OutputDistribution(const Dataset& data) const;

  /// Draws one output index (via the Gumbel-max trick; no normalization).
  StatusOr<std::size_t> Sample(const Dataset& data, Rng* rng) const;

  /// Draws `k` output indices into *out (resized to k), evaluating the
  /// quality function and log-weights ONCE for the whole block instead of
  /// once per draw. Bit- and stream-identical to k Sample() calls on the
  /// same Rng, and each draw is still an individually audited release (one
  /// audit-log entry and one "mechanism.sample" fail-point crossing per
  /// draw, in draw order) — batching is a perf shape, not a change to the
  /// privacy accounting. On error after j successful draws, out[0..j) holds
  /// those draws and out is sized j.
  Status SampleBatch(const Dataset& data, Rng* rng, std::size_t k,
                     std::vector<std::size_t>* out) const;

  /// The privacy level guaranteed by Theorem 2.2: 2 · ε · Δq.
  double PrivacyGuaranteeEpsilon() const { return 2.0 * epsilon_ * quality_sensitivity_; }

  /// McSherry–Talwar utility bound: with probability at least 1 - delta the
  /// sampled output u satisfies q(x,u*) - q(x,u) <= ln(|U|/delta) / ε,
  /// where u* is the best candidate. Returns that quality-gap bound.
  /// Error if delta outside (0,1).
  StatusOr<double> UtilityGapBound(double delta) const;

  double epsilon() const { return epsilon_; }
  double quality_sensitivity() const { return quality_sensitivity_; }
  std::size_t num_candidates() const { return prior_.size(); }
  const std::vector<double>& prior() const { return prior_; }

 private:
  ExponentialMechanism(QualityFn quality, std::vector<double> prior, double epsilon,
                       double quality_sensitivity);

  /// Unnormalized log-weights ε·q(x,u) + log prior[u], via the shared
  /// simd::TiltLogWeights kernel against the log-prior precomputed at
  /// construction — the same instruction sequence the Gibbs estimator tilts
  /// with (Theorem 4.1's identification held bitwise).
  std::vector<double> LogWeights(const Dataset& data) const;

  QualityFn quality_;
  std::vector<double> prior_;
  /// log prior[u] (-inf for zero mass), hoisted out of every release.
  std::vector<double> log_prior_;
  double epsilon_;
  double quality_sensitivity_;
};

/// Report-noisy-max: adds independent Lap(Δq/ε) noise to each candidate's
/// quality score and returns the argmax — an ε-DP selection alternative to
/// the exponential mechanism, included as the standard comparison point.
class ReportNoisyMax {
 public:
  static StatusOr<ReportNoisyMax> Create(QualityFn quality, std::size_t num_candidates,
                                         double epsilon, double quality_sensitivity);

  StatusOr<std::size_t> Sample(const Dataset& data, Rng* rng) const;

  double epsilon() const { return epsilon_; }

 private:
  ReportNoisyMax(QualityFn quality, std::size_t num_candidates, double epsilon,
                 double quality_sensitivity)
      : quality_(std::move(quality)),
        num_candidates_(num_candidates),
        epsilon_(epsilon),
        quality_sensitivity_(quality_sensitivity) {}

  QualityFn quality_;
  std::size_t num_candidates_;
  double epsilon_;
  double quality_sensitivity_;
};

}  // namespace dplearn

#endif  // DPLEARN_MECHANISMS_EXPONENTIAL_H_
