#ifndef DPLEARN_MECHANISMS_SPARSE_VECTOR_H_
#define DPLEARN_MECHANISMS_SPARSE_VECTOR_H_

#include <cstddef>
#include <vector>

#include "learning/dataset.h"
#include "mechanisms/privacy_budget.h"
#include "mechanisms/sensitivity.h"
#include "sampling/rng.h"
#include "util/status.h"

namespace dplearn {

/// The sparse vector technique / AboveThreshold (Dwork–Roth, Alg. 1 of
/// §3.6): answers a STREAM of queries with "below threshold" for free and
/// pays privacy budget only for the (at most c) queries reported above.
/// The canonical example of adaptive composition on top of the Laplace
/// primitive — included because a learning deployment typically screens
/// many candidate statistics before committing its budget to one.
class SparseVectorMechanism {
 public:
  /// `threshold`: the public cutoff. `max_above`: c, the number of
  /// above-threshold reports allowed before the mechanism halts.
  /// `query_sensitivity`: common sensitivity bound for all queries that
  /// will be asked. The whole run is ε-DP. Errors on invalid arguments.
  static StatusOr<SparseVectorMechanism> Create(double epsilon, double threshold,
                                                std::size_t max_above,
                                                double query_sensitivity);

  /// Result of one query probe.
  enum class Answer {
    kBelow,   // reported below threshold (costs nothing extra)
    kAbove,   // reported above threshold (one of the c paid answers)
    kHalted,  // budget for above-threshold answers exhausted
  };

  /// Probes one query against the noisy threshold. The mechanism is
  /// stateful: after `max_above` kAbove answers every further probe
  /// returns kHalted. Errors if the query is unset.
  StatusOr<Answer> Probe(const ScalarQuery& query, const Dataset& data, Rng* rng);

  /// Number of above-threshold answers issued so far.
  std::size_t above_count() const { return above_count_; }

  /// True once the mechanism stops answering.
  bool halted() const { return above_count_ >= max_above_; }

  /// The guarantee for the whole interaction (any number of probes).
  PrivacyBudget Guarantee() const { return PrivacyBudget{epsilon_, 0.0}; }

 private:
  SparseVectorMechanism(double epsilon, double threshold, std::size_t max_above,
                        double query_sensitivity)
      : epsilon_(epsilon),
        threshold_(threshold),
        max_above_(max_above),
        query_sensitivity_(query_sensitivity) {}

  /// Draws a fresh noisy threshold (once per above-threshold epoch).
  void RefreshThreshold(Rng* rng);

  double epsilon_;
  double threshold_;
  std::size_t max_above_;
  double query_sensitivity_;
  std::size_t above_count_ = 0;
  bool threshold_ready_ = false;
  double noisy_threshold_ = 0.0;
};

}  // namespace dplearn

#endif  // DPLEARN_MECHANISMS_SPARSE_VECTOR_H_
