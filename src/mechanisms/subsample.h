#ifndef DPLEARN_MECHANISMS_SUBSAMPLE_H_
#define DPLEARN_MECHANISMS_SUBSAMPLE_H_

#include <cstddef>

#include "learning/dataset.h"
#include "sampling/rng.h"
#include "util/status.h"

namespace dplearn {

/// Privacy amplification by subsampling: running an ε-DP mechanism on a
/// random subsample of the data strengthens the guarantee, because any
/// individual is probably not even in the subsample. The cheapest privacy
/// upgrade there is — and the reason DP-SGD style training is feasible.

/// Poisson subsample: each example kept independently with probability q.
/// Error if q outside (0, 1].
StatusOr<Dataset> PoissonSubsample(const Dataset& data, double q, Rng* rng);

/// Uniform subsample without replacement of exactly m records.
/// Error if m == 0 or m > data.size().
StatusOr<Dataset> UniformSubsample(const Dataset& data, std::size_t m, Rng* rng);

/// Amplified ε for a base ε-DP mechanism run on a Poisson q-subsample
/// (remove/add neighbor relation):
///   ε' = ln(1 + q·(e^ε − 1))  <=  q·e^ε · ... (tight standard form).
/// For q << 1 and ε <= 1, ε' ~ q·ε. Error if eps <= 0 or q outside (0,1].
StatusOr<double> AmplifiedEpsilonPoisson(double epsilon, double q);

/// Amplified ε for a uniform m-of-n subsample (add/remove relation),
/// with sampling rate q = m/n: same ln(1 + q(e^ε − 1)) form.
/// Error on invalid arguments.
StatusOr<double> AmplifiedEpsilonUniform(double epsilon, std::size_t m, std::size_t n);

/// Amplified ε under the REPLACE-ONE neighbor relation (this library's
/// default), for a base mechanism that is ε-DP under both replace and
/// add/remove. Coupling the subsample masks: with prob 1−q the changed
/// record is excluded (identical outputs A); with prob q it is included
/// (rows B vs B', within e^ε). Maximizing the ratio over the feasible
/// B'/A ∈ [e^{-ε}, e^{ε}] gives the tight
///   ε'_replace = ln( ((1−q) + q·e^{2ε}) / ((1−q) + q·e^{ε}) ),
/// which exceeds the add/remove form but stays strictly below ε.
/// Error on invalid arguments.
StatusOr<double> AmplifiedEpsilonPoissonReplace(double epsilon, double q);

/// Inverse calibration: the base ε a mechanism may spend per subsampled
/// invocation so that the amplified guarantee equals `target_epsilon`:
///   ε = ln(1 + (e^{ε'} − 1)/q). Error on invalid arguments.
StatusOr<double> BaseEpsilonForAmplifiedTarget(double target_epsilon, double q);

}  // namespace dplearn

#endif  // DPLEARN_MECHANISMS_SUBSAMPLE_H_
