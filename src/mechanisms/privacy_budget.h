#ifndef DPLEARN_MECHANISMS_PRIVACY_BUDGET_H_
#define DPLEARN_MECHANISMS_PRIVACY_BUDGET_H_

#include <cstddef>
#include <string_view>
#include <vector>

#include "util/math_util.h"
#include "util/status.h"

namespace dplearn {

namespace obs {
class BudgetAuditLog;
}  // namespace obs

/// An (epsilon, delta) differential-privacy guarantee. delta == 0 is pure
/// epsilon-DP (Definition 2.1 of the paper); the Gaussian mechanism needs
/// delta > 0.
struct PrivacyBudget {
  double epsilon = 0.0;
  double delta = 0.0;

  friend bool operator==(const PrivacyBudget& a, const PrivacyBudget& b) {
    return a.epsilon == b.epsilon && a.delta == b.delta;
  }
};

/// Validates epsilon > 0 and delta in [0, 1).
Status ValidateBudget(const PrivacyBudget& budget);

/// Basic sequential composition: running mechanisms M_1...M_k on the SAME
/// data yields (sum eps_i, sum delta_i)-DP. Error if the list is empty or
/// any budget is invalid.
StatusOr<PrivacyBudget> SequentialComposition(const std::vector<PrivacyBudget>& budgets);

/// Parallel composition: running mechanisms on DISJOINT partitions of the
/// data yields (max eps_i, max delta_i)-DP. Error as above.
StatusOr<PrivacyBudget> ParallelComposition(const std::vector<PrivacyBudget>& budgets);

/// Advanced composition (Dwork–Rothblum–Vadhan): k runs of an
/// (eps, delta)-DP mechanism are, for any delta_prime > 0,
///   ( eps*sqrt(2k ln(1/delta')) + k*eps*(e^eps - 1),  k*delta + delta' )-DP
/// — asymptotically sqrt(k) rather than k. Error on invalid arguments.
StatusOr<PrivacyBudget> AdvancedComposition(const PrivacyBudget& per_mechanism,
                                            std::size_t k, double delta_prime);

/// Group privacy: an eps-DP mechanism is (k*eps)-DP for groups of k
/// simultaneously changed records. Error if eps <= 0 or k == 0.
StatusOr<double> GroupPrivacyEpsilon(double epsilon, std::size_t group_size);

/// A mutable privacy accountant: tracks cumulative (eps, delta) spent under
/// basic sequential composition against a fixed total budget, refusing
/// spends that would exceed it. This is the object a deployment wraps
/// around a stream of queries.
class PrivacyAccountant {
 public:
  /// Error if `total` is invalid.
  static StatusOr<PrivacyAccountant> Create(PrivacyBudget total);

  /// Records a spend of `cost`. Error (and no state change) if the spend is
  /// invalid or would exceed the total budget. Every structurally valid
  /// spend — granted or denied-over-budget — is appended to the audit log
  /// (see set_audit_log) under `mechanism`; invalid budgets are rejected
  /// before reaching the ledger.
  ///
  /// Accumulation is Kahan-compensated, so millions of small spends do not
  /// drift the ledger: the running total stays within one ulp of the exact
  /// sum and BudgetAuditLog::ReplayVerify reconciles against it. Chaos
  /// hook: fail point `budget.spend` fails the call (UNAVAILABLE) before
  /// any state or audit mutation.
  Status Spend(const PrivacyBudget& cost, std::string_view mechanism);
  Status Spend(const PrivacyBudget& cost) { return Spend(cost, "accountant"); }

  /// Directs audit entries to `log` instead of the default, which is
  /// obs::GlobalAuditLog() when obs::AuditEnabled() and nothing otherwise.
  /// `log` must outlive the accountant; nullptr restores the default.
  void set_audit_log(obs::BudgetAuditLog* log) { audit_log_ = log; }

  PrivacyBudget spent() const {
    return PrivacyBudget{spent_epsilon_.Value(), spent_delta_.Value()};
  }
  PrivacyBudget total() const { return total_; }

  /// Remaining budget (total - spent), clamped at zero.
  PrivacyBudget Remaining() const;

 private:
  explicit PrivacyAccountant(PrivacyBudget total) : total_(total) {}

  PrivacyBudget total_;
  KahanSum spent_epsilon_;
  KahanSum spent_delta_;
  obs::BudgetAuditLog* audit_log_ = nullptr;  // not owned
};

}  // namespace dplearn

#endif  // DPLEARN_MECHANISMS_PRIVACY_BUDGET_H_
