#include "mechanisms/geometric.h"

#include <cmath>

#include "robustness/failpoint.h"

namespace dplearn {

StatusOr<std::int64_t> SampleTwoSidedGeometric(Rng* rng, double alpha) {
  if (!(alpha > 0.0) || alpha >= 1.0) {
    return InvalidArgumentError("SampleTwoSidedGeometric: alpha must be in (0,1)");
  }
  // Inverse CDF: mass (1-a)/(1+a) at 0, then symmetric geometric tails.
  const double u = rng->NextDoubleOpen();
  const double p_zero = (1.0 - alpha) / (1.0 + alpha);
  if (u < p_zero) return std::int64_t{0};
  // Map the remainder to a sign and a Geometric(1-alpha) magnitude >= 1.
  const double v = (u - p_zero) / (1.0 - p_zero);  // Uniform(0,1)
  const double sign = v < 0.5 ? -1.0 : 1.0;
  const double w = rng->NextDoubleOpen();
  // magnitude m >= 1 with P(m) prop. to alpha^m: m = 1 + floor(log(w)/log(alpha)).
  const std::int64_t magnitude =
      1 + static_cast<std::int64_t>(std::floor(std::log(w) / std::log(alpha)));
  return static_cast<std::int64_t>(sign) * magnitude;
}

StatusOr<GeometricMechanism> GeometricMechanism::Create(SensitiveQuery query,
                                                        double epsilon) {
  if (!query.query) return InvalidArgumentError("GeometricMechanism: query must be set");
  if (!(query.sensitivity >= 1.0)) {
    return InvalidArgumentError(
        "GeometricMechanism: integer query sensitivity must be >= 1");
  }
  if (std::floor(query.sensitivity) != query.sensitivity) {
    return InvalidArgumentError("GeometricMechanism: sensitivity must be an integer");
  }
  if (!(epsilon > 0.0)) {
    return InvalidArgumentError("GeometricMechanism: epsilon must be positive");
  }
  const double alpha = std::exp(-epsilon / query.sensitivity);
  return GeometricMechanism(std::move(query), epsilon, alpha);
}

StatusOr<std::int64_t> GeometricMechanism::Release(const Dataset& data, Rng* rng) const {
  DPLEARN_RETURN_IF_ERROR(robustness::Inject("mechanism.sample"));
  const double true_value = query_.query(data);
  if (std::floor(true_value) != true_value) {
    return FailedPreconditionError("GeometricMechanism: query returned a non-integer");
  }
  DPLEARN_ASSIGN_OR_RETURN(std::int64_t noise, SampleTwoSidedGeometric(rng, alpha_));
  return static_cast<std::int64_t>(true_value) + noise;
}

StatusOr<double> GeometricMechanism::OutputProbability(const Dataset& data,
                                                       std::int64_t output) const {
  const double true_value = query_.query(data);
  if (std::floor(true_value) != true_value) {
    return FailedPreconditionError("GeometricMechanism: query returned a non-integer");
  }
  const std::int64_t diff = output - static_cast<std::int64_t>(true_value);
  const double magnitude = static_cast<double>(diff < 0 ? -diff : diff);
  return (1.0 - alpha_) / (1.0 + alpha_) * std::pow(alpha_, magnitude);
}

StatusOr<double> GeometricMechanism::NoiseTailProbability(std::int64_t t) const {
  if (t < 0) return InvalidArgumentError("NoiseTailProbability: t must be >= 0");
  if (t == 0) return 1.0;
  return 2.0 * std::pow(alpha_, static_cast<double>(t)) / (1.0 + alpha_);
}

}  // namespace dplearn
