#include "mechanisms/geometric.h"

#include <cmath>
#include <limits>

#include "obs/audit_log.h"
#include "obs/config.h"
#include "obs/metrics.h"
#include "robustness/failpoint.h"

namespace dplearn {
namespace {

/// Validates that the query's integer-valued double fits in int64 before it
/// is cast — the cast is undefined behavior outside [-2^63, 2^63). The upper
/// bound is exclusive: 2^63 is exactly representable as a double but one
/// past INT64_MAX, while every integral double strictly below it is
/// representable.
StatusOr<std::int64_t> CheckedInt64FromQuery(double true_value) {
  if (std::floor(true_value) != true_value) {
    return FailedPreconditionError("GeometricMechanism: query returned a non-integer");
  }
  constexpr double kInt64Min = -9223372036854775808.0;  // -2^63, exact
  constexpr double kInt64UpperBound = 9223372036854775808.0;  // 2^63, exact
  if (!(true_value >= kInt64Min) || !(true_value < kInt64UpperBound)) {
    return FailedPreconditionError(
        "GeometricMechanism: query value is not representable as int64");
  }
  return static_cast<std::int64_t>(true_value);
}

}  // namespace

StatusOr<std::int64_t> SampleTwoSidedGeometric(Rng* rng, double alpha) {
  if (!(alpha > 0.0) || alpha >= 1.0) {
    return InvalidArgumentError("SampleTwoSidedGeometric: alpha must be in (0,1)");
  }
  // Inverse CDF: mass (1-a)/(1+a) at 0, then symmetric geometric tails.
  const double u = rng->NextDoubleOpen();
  const double p_zero = (1.0 - alpha) / (1.0 + alpha);
  if (u < p_zero) return std::int64_t{0};
  // Map the remainder to a sign and a Geometric(1-alpha) magnitude >= 1.
  const double v = (u - p_zero) / (1.0 - p_zero);  // Uniform(0,1)
  const double sign = v < 0.5 ? -1.0 : 1.0;
  const double w = rng->NextDoubleOpen();
  // magnitude m >= 1 with P(m) prop. to alpha^m: m = 1 + floor(log(w)/log(alpha)).
  const std::int64_t magnitude =
      1 + static_cast<std::int64_t>(std::floor(std::log(w) / std::log(alpha)));
  return static_cast<std::int64_t>(sign) * magnitude;
}

StatusOr<GeometricMechanism> GeometricMechanism::Create(SensitiveQuery query,
                                                        double epsilon) {
  if (!query.query) return InvalidArgumentError("GeometricMechanism: query must be set");
  if (!(query.sensitivity >= 1.0)) {
    return InvalidArgumentError(
        "GeometricMechanism: integer query sensitivity must be >= 1");
  }
  if (std::floor(query.sensitivity) != query.sensitivity) {
    return InvalidArgumentError("GeometricMechanism: sensitivity must be an integer");
  }
  if (!(epsilon > 0.0)) {
    return InvalidArgumentError("GeometricMechanism: epsilon must be positive");
  }
  const double alpha = std::exp(-epsilon / query.sensitivity);
  return GeometricMechanism(std::move(query), epsilon, alpha);
}

StatusOr<std::int64_t> GeometricMechanism::Release(const Dataset& data, Rng* rng) const {
  DPLEARN_RETURN_IF_ERROR(robustness::Inject("mechanism.sample"));
  static obs::Histogram* const release_us = obs::GlobalMetrics().GetHistogram(
      "mechanism.geometric.release.us", obs::DefaultLatencyBucketsUs());
  obs::LatencyTimer timer(obs::MetricsEnabled() ? release_us : nullptr);
  if (obs::MetricsEnabled()) {
    static obs::Counter* const releases =
        obs::GlobalMetrics().GetCounter("mechanism.geometric.releases");
    releases->Increment();
  }
  obs::AuditMechanismInvocation("geometric", epsilon_, 0.0);
  DPLEARN_ASSIGN_OR_RETURN(std::int64_t true_int,
                           CheckedInt64FromQuery(query_.query(data)));
  DPLEARN_ASSIGN_OR_RETURN(std::int64_t noise, SampleTwoSidedGeometric(rng, alpha_));
  // Saturate instead of wrapping when the noise would push a near-boundary
  // value past the int64 range (signed overflow is UB).
  std::int64_t released = 0;
  if (__builtin_add_overflow(true_int, noise, &released)) {
    return noise > 0 ? std::numeric_limits<std::int64_t>::max()
                     : std::numeric_limits<std::int64_t>::min();
  }
  return released;
}

StatusOr<double> GeometricMechanism::OutputProbability(const Dataset& data,
                                                       std::int64_t output) const {
  DPLEARN_ASSIGN_OR_RETURN(std::int64_t true_int,
                           CheckedInt64FromQuery(query_.query(data)));
  // |output - true_int| in double: the int64 difference can overflow (e.g.
  // output near INT64_MAX against a negative query value), while the double
  // form is safe for any pair and exact wherever the pmf is not already
  // flushed to zero by pow().
  const double magnitude =
      std::fabs(static_cast<double>(output) - static_cast<double>(true_int));
  return (1.0 - alpha_) / (1.0 + alpha_) * std::pow(alpha_, magnitude);
}

StatusOr<double> GeometricMechanism::NoiseTailProbability(std::int64_t t) const {
  if (t < 0) return InvalidArgumentError("NoiseTailProbability: t must be >= 0");
  if (t == 0) return 1.0;
  return 2.0 * std::pow(alpha_, static_cast<double>(t)) / (1.0 + alpha_);
}

}  // namespace dplearn
