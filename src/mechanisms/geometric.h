#ifndef DPLEARN_MECHANISMS_GEOMETRIC_H_
#define DPLEARN_MECHANISMS_GEOMETRIC_H_

#include <cstdint>

#include "learning/dataset.h"
#include "mechanisms/privacy_budget.h"
#include "mechanisms/sensitivity.h"
#include "sampling/rng.h"
#include "util/status.h"

namespace dplearn {

/// The geometric mechanism (Ghosh–Roughgarden–Sundararajan 2009): for an
/// integer-valued query with integer sensitivity Δ, releases
/// f(D) + Z where Z is two-sided geometric with parameter α = e^{-ε/Δ}:
///   P(Z = z) = (1-α)/(1+α) · α^{|z|}.
/// ε-DP, and universally utility-optimal for count queries. Its discrete
/// output makes the DP audit EXACT (probability masses, not densities) —
/// which is why the experiment suite prefers it for count releases.
class GeometricMechanism {
 public:
  /// `query` must be integer-valued on all inputs the caller will supply
  /// (checked at Release time) with sensitivity >= 1 (integers). Errors on
  /// invalid epsilon or sensitivity.
  static StatusOr<GeometricMechanism> Create(SensitiveQuery query, double epsilon);

  /// Releases one ε-DP noisy count. FailedPreconditionError if the query
  /// returns a non-integer or a value outside the int64 range; a noise draw
  /// that would carry an in-range value past INT64_MIN/MAX saturates at the
  /// boundary (clamping is post-processing, so the guarantee is unchanged).
  StatusOr<std::int64_t> Release(const Dataset& data, Rng* rng) const;

  /// Exact probability the mechanism outputs `output` on `data`.
  /// FailedPreconditionError on non-integer or int64-unrepresentable query
  /// values, matching Release.
  StatusOr<double> OutputProbability(const Dataset& data, std::int64_t output) const;

  /// P(|noise| >= t) = 2 α^t / (1+α) for t >= 1 — the tail the accuracy
  /// guarantee is read from. Error if t < 0.
  StatusOr<double> NoiseTailProbability(std::int64_t t) const;

  PrivacyBudget Guarantee() const { return PrivacyBudget{epsilon_, 0.0}; }
  double alpha() const { return alpha_; }

 private:
  GeometricMechanism(SensitiveQuery query, double epsilon, double alpha)
      : query_(std::move(query)), epsilon_(epsilon), alpha_(alpha) {}

  SensitiveQuery query_;
  double epsilon_;
  double alpha_;
};

/// Samples the two-sided geometric distribution with parameter alpha in
/// (0,1): P(z) = (1-alpha)/(1+alpha) * alpha^{|z|}. Exposed for tests and
/// for composing custom integer mechanisms. Error if alpha outside (0,1).
StatusOr<std::int64_t> SampleTwoSidedGeometric(Rng* rng, double alpha);

}  // namespace dplearn

#endif  // DPLEARN_MECHANISMS_GEOMETRIC_H_
