#include "mechanisms/laplace.h"

#include <cmath>

#include "obs/audit_log.h"
#include "robustness/failpoint.h"
#include "obs/config.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sampling/distributions.h"

namespace dplearn {

StatusOr<LaplaceMechanism> LaplaceMechanism::Create(SensitiveQuery query, double epsilon) {
  if (!query.query) return InvalidArgumentError("LaplaceMechanism: query must be set");
  if (!(query.sensitivity > 0.0)) {
    return InvalidArgumentError("LaplaceMechanism: sensitivity must be positive");
  }
  if (!(epsilon > 0.0)) {
    return InvalidArgumentError("LaplaceMechanism: epsilon must be positive");
  }
  const double scale = query.sensitivity / epsilon;
  return LaplaceMechanism(std::move(query), epsilon, scale);
}

StatusOr<double> LaplaceMechanism::Release(const Dataset& data, Rng* rng) const {
  DPLEARN_RETURN_IF_ERROR(robustness::Inject("mechanism.sample"));
  static obs::Histogram* const release_us = obs::GlobalMetrics().GetHistogram(
      "mechanism.laplace.release.us", obs::DefaultLatencyBucketsUs());
  obs::LatencyTimer timer(obs::MetricsEnabled() ? release_us : nullptr);
  if (obs::MetricsEnabled()) {
    static obs::Counter* const releases =
        obs::GlobalMetrics().GetCounter("mechanism.laplace.releases");
    releases->Increment();
  }
  obs::AuditMechanismInvocation("laplace", epsilon_, 0.0);
  const double true_value = query_.query(data);
  return SampleLaplace(rng, true_value, scale_);
}

Status LaplaceMechanism::ReleaseBatch(const Dataset& data, Rng* rng, std::size_t k,
                                      std::vector<double>* out) const {
  if (out == nullptr) return InvalidArgumentError("ReleaseBatch: out must be set");
  out->clear();
  obs::TraceSpan span("mechanism.laplace.release_batch");
  // The query evaluation is the per-call cost Release() pays k times over;
  // here it runs once. Everything privacy-relevant stays per draw below.
  const double true_value = query_.query(data);
  out->reserve(k);
  for (std::size_t j = 0; j < k; ++j) {
    // Same per-draw sequence as Release(): fail-point, metric, audit entry,
    // then the noise draw — so chaos configs fire at the same draw indices
    // and the audit log records one release per output, whether the caller
    // batched or looped.
    DPLEARN_RETURN_IF_ERROR(robustness::Inject("mechanism.sample"));
    static obs::Histogram* const release_us = obs::GlobalMetrics().GetHistogram(
        "mechanism.laplace.release.us", obs::DefaultLatencyBucketsUs());
    obs::LatencyTimer timer(obs::MetricsEnabled() ? release_us : nullptr);
    if (obs::MetricsEnabled()) {
      static obs::Counter* const releases =
          obs::GlobalMetrics().GetCounter("mechanism.laplace.releases");
      releases->Increment();
    }
    obs::AuditMechanismInvocation("laplace", epsilon_, 0.0);
    DPLEARN_ASSIGN_OR_RETURN(const double draw, SampleLaplace(rng, true_value, scale_));
    out->push_back(draw);
  }
  return Status::Ok();
}

double LaplaceMechanism::OutputDensity(const Dataset& data, double output) const {
  return LaplacePdf(output, query_.query(data), scale_);
}

double LaplaceMechanism::OutputLogDensity(const Dataset& data, double output) const {
  return LaplaceLogPdf(output, query_.query(data), scale_);
}

StatusOr<GaussianMechanism> GaussianMechanism::Create(SensitiveQuery query,
                                                      PrivacyBudget budget) {
  if (!query.query) return InvalidArgumentError("GaussianMechanism: query must be set");
  if (!(query.sensitivity > 0.0)) {
    return InvalidArgumentError("GaussianMechanism: sensitivity must be positive");
  }
  if (!(budget.epsilon > 0.0) || budget.epsilon > 1.0) {
    return InvalidArgumentError("GaussianMechanism: epsilon must be in (0,1]");
  }
  if (!(budget.delta > 0.0) || budget.delta >= 1.0) {
    return InvalidArgumentError("GaussianMechanism: delta must be in (0,1)");
  }
  const double stddev =
      query.sensitivity * std::sqrt(2.0 * std::log(1.25 / budget.delta)) / budget.epsilon;
  return GaussianMechanism(std::move(query), budget, stddev);
}

StatusOr<double> GaussianMechanism::Release(const Dataset& data, Rng* rng) const {
  DPLEARN_RETURN_IF_ERROR(robustness::Inject("mechanism.sample"));
  static obs::Histogram* const release_us = obs::GlobalMetrics().GetHistogram(
      "mechanism.gaussian.release.us", obs::DefaultLatencyBucketsUs());
  obs::LatencyTimer timer(obs::MetricsEnabled() ? release_us : nullptr);
  if (obs::MetricsEnabled()) {
    static obs::Counter* const releases =
        obs::GlobalMetrics().GetCounter("mechanism.gaussian.releases");
    releases->Increment();
  }
  obs::AuditMechanismInvocation("gaussian", budget_.epsilon, budget_.delta);
  const double true_value = query_.query(data);
  return SampleNormal(rng, true_value, stddev_);
}

double GaussianMechanism::OutputDensity(const Dataset& data, double output) const {
  return std::exp(NormalLogPdf(output, query_.query(data), stddev_));
}

StatusOr<RandomizedResponse> RandomizedResponse::Create(double epsilon) {
  if (!(epsilon > 0.0)) {
    return InvalidArgumentError("RandomizedResponse: epsilon must be positive");
  }
  return RandomizedResponse(epsilon);
}

StatusOr<int> RandomizedResponse::Release(int true_bit, Rng* rng) const {
  DPLEARN_RETURN_IF_ERROR(robustness::Inject("mechanism.sample"));
  if (true_bit != 0 && true_bit != 1) {
    return InvalidArgumentError("RandomizedResponse: bit must be 0 or 1");
  }
  static obs::Histogram* const release_us = obs::GlobalMetrics().GetHistogram(
      "mechanism.randomized_response.release.us", obs::DefaultLatencyBucketsUs());
  obs::LatencyTimer timer(obs::MetricsEnabled() ? release_us : nullptr);
  if (obs::MetricsEnabled()) {
    static obs::Counter* const releases =
        obs::GlobalMetrics().GetCounter("mechanism.randomized_response.releases");
    releases->Increment();
  }
  obs::AuditMechanismInvocation("randomized_response", epsilon_, 0.0);
  DPLEARN_ASSIGN_OR_RETURN(int keep, SampleBernoulli(rng, p_truth_));
  return keep == 1 ? true_bit : 1 - true_bit;
}

StatusOr<double> RandomizedResponse::ReportOneProbability(int true_bit) const {
  if (true_bit != 0 && true_bit != 1) {
    return InvalidArgumentError("RandomizedResponse: bit must be 0 or 1");
  }
  return true_bit == 1 ? p_truth_ : 1.0 - p_truth_;
}

StatusOr<double> RandomizedResponse::DebiasedMean(const std::vector<int>& reports) const {
  if (reports.empty()) {
    return InvalidArgumentError("RandomizedResponse::DebiasedMean: empty reports");
  }
  double sum = 0.0;
  for (int r : reports) {
    if (r != 0 && r != 1) {
      return InvalidArgumentError("RandomizedResponse::DebiasedMean: reports must be bits");
    }
    sum += static_cast<double>(r);
  }
  const double observed_mean = sum / static_cast<double>(reports.size());
  // E[report] = p*m + (1-p)*(1-m)  =>  m = (E[report] - (1-p)) / (2p - 1).
  return (observed_mean - (1.0 - p_truth_)) / (2.0 * p_truth_ - 1.0);
}

}  // namespace dplearn
