#ifndef DPLEARN_MECHANISMS_LAPLACE_H_
#define DPLEARN_MECHANISMS_LAPLACE_H_

#include <cmath>
#include <vector>

#include "learning/dataset.h"
#include "mechanisms/privacy_budget.h"
#include "mechanisms/sensitivity.h"
#include "sampling/rng.h"
#include "util/status.h"

namespace dplearn {

/// The Laplace mechanism of Dwork et al. (Theorem 2.1 of the paper):
/// releases f(D) + Lap(Δf / ε), which is ε-differentially private.
class LaplaceMechanism {
 public:
  /// Error if the query has non-positive sensitivity or epsilon <= 0.
  static StatusOr<LaplaceMechanism> Create(SensitiveQuery query, double epsilon);

  /// Releases one ε-DP noisy answer on `data`.
  StatusOr<double> Release(const Dataset& data, Rng* rng) const;

  /// Releases `k` independent ε-DP noisy answers into *out (resized to k),
  /// evaluating the query f(data) ONCE for the whole block. Bit- and
  /// stream-identical to k Release() calls on the same Rng, and each draw is
  /// still an individually audited release (one audit entry, one
  /// "mechanism.sample" fail-point crossing and one metrics tick per draw,
  /// in draw order) — batching is a perf shape, not a change to the privacy
  /// accounting, exactly as with ExponentialMechanism::SampleBatch. On error
  /// after j successful draws, out[0..j) holds those draws and out is sized
  /// j. The composed guarantee of the batch is k·ε by sequential
  /// composition; the caller's accountant charges it.
  Status ReleaseBatch(const Dataset& data, Rng* rng, std::size_t k,
                      std::vector<double>* out) const;

  /// The exact density of the mechanism's output at `output` given `data` —
  /// Laplace(f(data), scale) evaluated at `output`. This is what the
  /// empirical DP verifier compares between neighboring datasets.
  double OutputDensity(const Dataset& data, double output) const;

  /// Log of OutputDensity.
  double OutputLogDensity(const Dataset& data, double output) const;

  /// Noise scale b = Δf / ε.
  double noise_scale() const { return scale_; }

  /// The guarantee this mechanism provides.
  PrivacyBudget Guarantee() const { return PrivacyBudget{epsilon_, 0.0}; }

  /// Expected absolute error |noise| = b = Δf/ε (the mechanism's utility).
  double ExpectedAbsoluteError() const { return scale_; }

 private:
  LaplaceMechanism(SensitiveQuery query, double epsilon, double scale)
      : query_(std::move(query)), epsilon_(epsilon), scale_(scale) {}

  SensitiveQuery query_;
  double epsilon_;
  double scale_;
};

/// The Gaussian mechanism: releases f(D) + Normal(0, sigma^2) with
/// sigma = Δf * sqrt(2 ln(1.25/δ)) / ε, which is (ε, δ)-DP for ε in (0,1].
/// Included as the standard approximate-DP comparison point.
class GaussianMechanism {
 public:
  /// Error on non-positive sensitivity, epsilon outside (0,1], or
  /// delta outside (0,1).
  static StatusOr<GaussianMechanism> Create(SensitiveQuery query, PrivacyBudget budget);

  StatusOr<double> Release(const Dataset& data, Rng* rng) const;
  double OutputDensity(const Dataset& data, double output) const;
  double noise_stddev() const { return stddev_; }
  PrivacyBudget Guarantee() const { return budget_; }

 private:
  GaussianMechanism(SensitiveQuery query, PrivacyBudget budget, double stddev)
      : query_(std::move(query)), budget_(budget), stddev_(stddev) {}

  SensitiveQuery query_;
  PrivacyBudget budget_;
  double stddev_;
};

/// Binary randomized response (Warner 1965), the oldest ε-DP mechanism:
/// reports the true bit with probability e^ε/(1+e^ε), the flipped bit
/// otherwise. Local-model member of the mechanism family; also the simplest
/// channel on which MaxLogRatio == ε exactly.
class RandomizedResponse {
 public:
  /// Error if epsilon <= 0.
  static StatusOr<RandomizedResponse> Create(double epsilon);

  /// Perturbs one bit (`true_bit` in {0,1}; error otherwise).
  StatusOr<int> Release(int true_bit, Rng* rng) const;

  /// P(report 1 | true bit).
  StatusOr<double> ReportOneProbability(int true_bit) const;

  /// Unbiased estimate of the population mean of bits from `reports`
  /// perturbed by this mechanism. Error if reports is empty.
  StatusOr<double> DebiasedMean(const std::vector<int>& reports) const;

  double epsilon() const { return epsilon_; }

 private:
  explicit RandomizedResponse(double epsilon)
      : epsilon_(epsilon), p_truth_(std::exp(epsilon) / (1.0 + std::exp(epsilon))) {}

  double epsilon_;
  double p_truth_;
};

}  // namespace dplearn

#endif  // DPLEARN_MECHANISMS_LAPLACE_H_
