#include "mechanisms/sensitivity.h"

#include <cmath>

#include "util/math_util.h"

namespace dplearn {

SensitiveQuery CountQuery(std::function<bool(const Example&)> predicate) {
  SensitiveQuery q;
  q.query = [predicate = std::move(predicate)](const Dataset& data) {
    double count = 0.0;
    for (const Example& z : data.examples()) {
      if (predicate(z)) count += 1.0;
    }
    return count;
  };
  q.sensitivity = 1.0;
  return q;
}

StatusOr<SensitiveQuery> BoundedMeanQuery(double label_lo, double label_hi, std::size_t n) {
  if (!(label_lo < label_hi)) {
    return InvalidArgumentError("BoundedMeanQuery: empty label range");
  }
  if (n == 0) return InvalidArgumentError("BoundedMeanQuery: n must be positive");
  SensitiveQuery q;
  q.query = [label_lo, label_hi](const Dataset& data) {
    if (data.empty()) return 0.5 * (label_lo + label_hi);
    double sum = 0.0;
    for (const Example& z : data.examples()) sum += Clamp(z.label, label_lo, label_hi);
    return sum / static_cast<double>(data.size());
  };
  q.sensitivity = (label_hi - label_lo) / static_cast<double>(n);
  return q;
}

StatusOr<SensitiveQuery> BoundedSumQuery(double label_lo, double label_hi) {
  if (!(label_lo < label_hi)) {
    return InvalidArgumentError("BoundedSumQuery: empty label range");
  }
  SensitiveQuery q;
  q.query = [label_lo, label_hi](const Dataset& data) {
    double sum = 0.0;
    for (const Example& z : data.examples()) sum += Clamp(z.label, label_lo, label_hi);
    return sum;
  };
  q.sensitivity = label_hi - label_lo;
  return q;
}

StatusOr<double> MeasuredSensitivity(const ScalarQuery& query, const Dataset& base,
                                     const std::vector<Example>& domain) {
  if (base.empty()) return InvalidArgumentError("MeasuredSensitivity: empty base dataset");
  if (domain.empty()) return InvalidArgumentError("MeasuredSensitivity: empty domain");
  const double base_value = query(base);
  double max_diff = 0.0;
  for (const Dataset& neighbor : EnumerateNeighbors(base, domain)) {
    max_diff = std::max(max_diff, std::fabs(query(neighbor) - base_value));
  }
  return max_diff;
}

}  // namespace dplearn
