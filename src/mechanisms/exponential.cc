#include "mechanisms/exponential.h"

#include <cmath>
#include <limits>

#include "obs/audit_log.h"
#include "robustness/failpoint.h"
#include "obs/config.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sampling/distributions.h"
#include "simd/kernels.h"
#include "util/math_util.h"

namespace dplearn {

ExponentialMechanism::ExponentialMechanism(QualityFn quality, std::vector<double> prior,
                                           double epsilon, double quality_sensitivity)
    : quality_(std::move(quality)),
      prior_(std::move(prior)),
      epsilon_(epsilon),
      quality_sensitivity_(quality_sensitivity) {
  log_prior_.resize(prior_.size());
  for (std::size_t u = 0; u < prior_.size(); ++u) {
    log_prior_[u] = prior_[u] > 0.0 ? std::log(prior_[u])
                                    : -std::numeric_limits<double>::infinity();
  }
}

StatusOr<ExponentialMechanism> ExponentialMechanism::Create(QualityFn quality,
                                                            std::size_t num_candidates,
                                                            std::vector<double> prior,
                                                            double epsilon,
                                                            double quality_sensitivity) {
  if (!quality) return InvalidArgumentError("ExponentialMechanism: quality must be set");
  if (num_candidates == 0) {
    return InvalidArgumentError("ExponentialMechanism: need at least one candidate");
  }
  if (prior.size() != num_candidates) {
    return InvalidArgumentError("ExponentialMechanism: prior size mismatch");
  }
  DPLEARN_RETURN_IF_ERROR(ValidateDistribution(prior, 1e-6));
  if (!(epsilon > 0.0)) {
    return InvalidArgumentError("ExponentialMechanism: epsilon must be positive");
  }
  if (!(quality_sensitivity > 0.0)) {
    return InvalidArgumentError("ExponentialMechanism: quality_sensitivity must be positive");
  }
  return ExponentialMechanism(std::move(quality), std::move(prior), epsilon,
                              quality_sensitivity);
}

StatusOr<ExponentialMechanism> ExponentialMechanism::CreateUniform(
    QualityFn quality, std::size_t num_candidates, double epsilon,
    double quality_sensitivity) {
  if (num_candidates == 0) {
    return InvalidArgumentError("ExponentialMechanism: need at least one candidate");
  }
  std::vector<double> uniform(num_candidates, 1.0 / static_cast<double>(num_candidates));
  return Create(std::move(quality), num_candidates, std::move(uniform), epsilon,
                quality_sensitivity);
}

StatusOr<ExponentialMechanism> ExponentialMechanism::CreateWithTargetPrivacy(
    QualityFn quality, std::size_t num_candidates, std::vector<double> prior,
    double target_epsilon, double quality_sensitivity) {
  if (!(target_epsilon > 0.0)) {
    return InvalidArgumentError("ExponentialMechanism: target_epsilon must be positive");
  }
  if (!(quality_sensitivity > 0.0)) {
    return InvalidArgumentError("ExponentialMechanism: quality_sensitivity must be positive");
  }
  return Create(std::move(quality), num_candidates, std::move(prior),
                target_epsilon / (2.0 * quality_sensitivity), quality_sensitivity);
}

std::vector<double> ExponentialMechanism::LogWeights(const Dataset& data) const {
  std::vector<double> log_w(prior_.size());
  for (std::size_t u = 0; u < prior_.size(); ++u) log_w[u] = quality_(data, u);
  // ε·q + log π in place — element-wise identical to the per-candidate
  // expression this loop used to compute.
  simd::TiltLogWeights(log_w.data(), log_prior_.data(), log_w.size(), epsilon_,
                       log_w.data());
  return log_w;
}

StatusOr<std::vector<double>> ExponentialMechanism::OutputDistribution(
    const Dataset& data) const {
  obs::TraceSpan span("mechanism.exponential.output_distribution");
  if (obs::MetricsEnabled()) {
    static obs::Counter* const evaluations =
        obs::GlobalMetrics().GetCounter("mechanism.exponential.output_distributions");
    evaluations->Increment();
  }
  return SoftmaxFromLog(LogWeights(data));
}

StatusOr<std::size_t> ExponentialMechanism::Sample(const Dataset& data, Rng* rng) const {
  DPLEARN_RETURN_IF_ERROR(robustness::Inject("mechanism.sample"));
  obs::TraceSpan span("mechanism.exponential.sample");
  static obs::Histogram* const release_us = obs::GlobalMetrics().GetHistogram(
      "mechanism.exponential.release.us", obs::DefaultLatencyBucketsUs());
  obs::LatencyTimer timer(obs::MetricsEnabled() ? release_us : nullptr);
  if (obs::MetricsEnabled()) {
    static obs::Counter* const samples =
        obs::GlobalMetrics().GetCounter("mechanism.exponential.samples");
    samples->Increment();
  }
  obs::AuditMechanismInvocation("exponential", PrivacyGuaranteeEpsilon(), 0.0);
  return SampleFromLogWeights(rng, LogWeights(data));
}

Status ExponentialMechanism::SampleBatch(const Dataset& data, Rng* rng, std::size_t k,
                                         std::vector<std::size_t>* out) const {
  if (out == nullptr) return InvalidArgumentError("SampleBatch: out must be set");
  out->clear();
  obs::TraceSpan span("mechanism.exponential.sample_batch");
  // The quality evaluation is the per-call cost Sample() pays k times over;
  // here it runs once. Everything privacy-relevant stays per draw below.
  const std::vector<double> log_w = LogWeights(data);
  out->reserve(k);
  std::vector<double> scratch;
  scratch.reserve(log_w.size());
  for (std::size_t j = 0; j < k; ++j) {
    // Same per-draw sequence as Sample(): fail-point, metric, audit entry,
    // then the Gumbel-max draw — so chaos configs fire at the same draw
    // indices and the audit log records one release per output, whether the
    // caller batched or looped.
    DPLEARN_RETURN_IF_ERROR(robustness::Inject("mechanism.sample"));
    static obs::Histogram* const release_us = obs::GlobalMetrics().GetHistogram(
        "mechanism.exponential.release.us", obs::DefaultLatencyBucketsUs());
    obs::LatencyTimer timer(obs::MetricsEnabled() ? release_us : nullptr);
    if (obs::MetricsEnabled()) {
      static obs::Counter* const samples =
          obs::GlobalMetrics().GetCounter("mechanism.exponential.samples");
      samples->Increment();
    }
    obs::AuditMechanismInvocation("exponential", PrivacyGuaranteeEpsilon(), 0.0);
    DPLEARN_ASSIGN_OR_RETURN(const std::size_t draw,
                             SampleFromLogWeights(rng, log_w, &scratch));
    out->push_back(draw);
  }
  return Status::Ok();
}

StatusOr<double> ExponentialMechanism::UtilityGapBound(double delta) const {
  if (!(delta > 0.0) || delta >= 1.0) {
    return InvalidArgumentError("UtilityGapBound: delta must be in (0,1)");
  }
  return std::log(static_cast<double>(num_candidates()) / delta) / epsilon_;
}

StatusOr<ReportNoisyMax> ReportNoisyMax::Create(QualityFn quality, std::size_t num_candidates,
                                                double epsilon, double quality_sensitivity) {
  if (!quality) return InvalidArgumentError("ReportNoisyMax: quality must be set");
  if (num_candidates == 0) {
    return InvalidArgumentError("ReportNoisyMax: need at least one candidate");
  }
  if (!(epsilon > 0.0)) {
    return InvalidArgumentError("ReportNoisyMax: epsilon must be positive");
  }
  if (!(quality_sensitivity > 0.0)) {
    return InvalidArgumentError("ReportNoisyMax: quality_sensitivity must be positive");
  }
  return ReportNoisyMax(std::move(quality), num_candidates, epsilon, quality_sensitivity);
}

StatusOr<std::size_t> ReportNoisyMax::Sample(const Dataset& data, Rng* rng) const {
  DPLEARN_RETURN_IF_ERROR(robustness::Inject("mechanism.sample"));
  static obs::Histogram* const release_us = obs::GlobalMetrics().GetHistogram(
      "mechanism.report_noisy_max.release.us", obs::DefaultLatencyBucketsUs());
  obs::LatencyTimer timer(obs::MetricsEnabled() ? release_us : nullptr);
  if (obs::MetricsEnabled()) {
    static obs::Counter* const samples =
        obs::GlobalMetrics().GetCounter("mechanism.report_noisy_max.samples");
    samples->Increment();
  }
  obs::AuditMechanismInvocation("report_noisy_max", epsilon_, 0.0);
  std::size_t best = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  for (std::size_t u = 0; u < num_candidates_; ++u) {
    DPLEARN_ASSIGN_OR_RETURN(
        double noise, SampleLaplace(rng, 0.0, quality_sensitivity_ / epsilon_));
    const double score = quality_(data, u) + noise;
    if (score > best_score) {
      best_score = score;
      best = u;
    }
  }
  return best;
}

}  // namespace dplearn
