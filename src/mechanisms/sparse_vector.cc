#include "mechanisms/sparse_vector.h"

#include "sampling/distributions.h"

namespace dplearn {

StatusOr<SparseVectorMechanism> SparseVectorMechanism::Create(double epsilon,
                                                              double threshold,
                                                              std::size_t max_above,
                                                              double query_sensitivity) {
  if (!(epsilon > 0.0)) {
    return InvalidArgumentError("SparseVectorMechanism: epsilon must be positive");
  }
  if (max_above == 0) {
    return InvalidArgumentError("SparseVectorMechanism: max_above must be positive");
  }
  if (!(query_sensitivity > 0.0)) {
    return InvalidArgumentError("SparseVectorMechanism: sensitivity must be positive");
  }
  return SparseVectorMechanism(epsilon, threshold, max_above, query_sensitivity);
}

void SparseVectorMechanism::RefreshThreshold(Rng* rng) {
  // Half the budget guards the threshold, half the answers (Dwork-Roth
  // calibration: threshold noise 2Δc/ε, answer noise 4Δc/ε).
  const double scale = 2.0 * query_sensitivity_ * static_cast<double>(max_above_) / epsilon_;
  noisy_threshold_ = threshold_ + SampleLaplace(rng, 0.0, scale).value();
  threshold_ready_ = true;
}

StatusOr<SparseVectorMechanism::Answer> SparseVectorMechanism::Probe(
    const ScalarQuery& query, const Dataset& data, Rng* rng) {
  if (!query) return InvalidArgumentError("SparseVectorMechanism::Probe: query unset");
  if (halted()) return Answer::kHalted;
  if (!threshold_ready_) RefreshThreshold(rng);

  const double scale =
      4.0 * query_sensitivity_ * static_cast<double>(max_above_) / epsilon_;
  DPLEARN_ASSIGN_OR_RETURN(double noise, SampleLaplace(rng, 0.0, scale));
  const double noisy_answer = query(data) + noise;
  if (noisy_answer >= noisy_threshold_) {
    ++above_count_;
    // A fresh noisy threshold is drawn for the next epoch.
    threshold_ready_ = false;
    return Answer::kAbove;
  }
  return Answer::kBelow;
}

}  // namespace dplearn
