#include "mechanisms/privacy_budget.h"

#include <algorithm>
#include <cmath>

#include "obs/audit_log.h"
#include "obs/config.h"
#include "obs/metrics.h"
#include "robustness/failpoint.h"
#include "util/logging.h"

namespace dplearn {

Status ValidateBudget(const PrivacyBudget& budget) {
  if (!(budget.epsilon > 0.0)) {
    return InvalidArgumentError("PrivacyBudget: epsilon must be positive");
  }
  if (budget.delta < 0.0 || budget.delta >= 1.0) {
    return InvalidArgumentError("PrivacyBudget: delta must be in [0,1)");
  }
  return Status::Ok();
}

StatusOr<PrivacyBudget> SequentialComposition(const std::vector<PrivacyBudget>& budgets) {
  if (budgets.empty()) {
    return InvalidArgumentError("SequentialComposition: empty budget list");
  }
  // Compensated sums: composing many small per-query budgets must not
  // drift the reported total guarantee.
  KahanSum epsilon;
  KahanSum delta;
  for (const PrivacyBudget& b : budgets) {
    DPLEARN_RETURN_IF_ERROR(ValidateBudget(b));
    epsilon.Add(b.epsilon);
    delta.Add(b.delta);
  }
  return PrivacyBudget{epsilon.Value(), delta.Value()};
}

StatusOr<PrivacyBudget> ParallelComposition(const std::vector<PrivacyBudget>& budgets) {
  if (budgets.empty()) {
    return InvalidArgumentError("ParallelComposition: empty budget list");
  }
  PrivacyBudget total{0.0, 0.0};
  for (const PrivacyBudget& b : budgets) {
    DPLEARN_RETURN_IF_ERROR(ValidateBudget(b));
    total.epsilon = std::max(total.epsilon, b.epsilon);
    total.delta = std::max(total.delta, b.delta);
  }
  return total;
}

StatusOr<PrivacyBudget> AdvancedComposition(const PrivacyBudget& per_mechanism,
                                            std::size_t k, double delta_prime) {
  DPLEARN_RETURN_IF_ERROR(ValidateBudget(per_mechanism));
  if (k == 0) return InvalidArgumentError("AdvancedComposition: k must be positive");
  if (!(delta_prime > 0.0) || delta_prime >= 1.0) {
    return InvalidArgumentError("AdvancedComposition: delta_prime must be in (0,1)");
  }
  const double eps = per_mechanism.epsilon;
  const double kd = static_cast<double>(k);
  PrivacyBudget total;
  total.epsilon = eps * std::sqrt(2.0 * kd * std::log(1.0 / delta_prime)) +
                  kd * eps * std::expm1(eps);
  total.delta = kd * per_mechanism.delta + delta_prime;
  return total;
}

StatusOr<double> GroupPrivacyEpsilon(double epsilon, std::size_t group_size) {
  if (!(epsilon > 0.0)) {
    return InvalidArgumentError("GroupPrivacyEpsilon: epsilon must be positive");
  }
  if (group_size == 0) {
    return InvalidArgumentError("GroupPrivacyEpsilon: group size must be positive");
  }
  return epsilon * static_cast<double>(group_size);
}

StatusOr<PrivacyAccountant> PrivacyAccountant::Create(PrivacyBudget total) {
  DPLEARN_RETURN_IF_ERROR(ValidateBudget(total));
  return PrivacyAccountant(total);
}

Status PrivacyAccountant::Spend(const PrivacyBudget& cost, std::string_view mechanism) {
  // The chaos hook fires before validation and mutation: an injected
  // accountant outage must leave the ledger exactly as it was.
  DPLEARN_RETURN_IF_ERROR(robustness::Inject("budget.spend"));
  DPLEARN_RETURN_IF_ERROR(ValidateBudget(cost));
  const PrivacyBudget current = spent();
  const bool granted = !(current.epsilon + cost.epsilon > total_.epsilon ||
                         current.delta + cost.delta > total_.delta + 1e-15);
  obs::BudgetAuditLog* log = audit_log_;
  if (log == nullptr && obs::AuditEnabled()) log = &obs::GlobalAuditLog();
  if (log != nullptr) log->Record(mechanism, cost.epsilon, cost.delta, granted);
  if (obs::MetricsEnabled()) {
    static obs::Counter* const granted_counter =
        obs::GlobalMetrics().GetCounter("accountant.spends_granted");
    static obs::Counter* const denied_counter =
        obs::GlobalMetrics().GetCounter("accountant.spends_denied");
    (granted ? granted_counter : denied_counter)->Increment();
  }
  if (!granted) {
    DPLEARN_LOG(WARN) << "PrivacyAccountant: denied spend of (" << cost.epsilon << ", "
                      << cost.delta << ") by '" << mechanism << "'; spent ("
                      << current.epsilon << ", " << current.delta << ") of ("
                      << total_.epsilon << ", " << total_.delta << ")";
    return FailedPreconditionError("PrivacyAccountant: spend would exceed total budget");
  }
  spent_epsilon_.Add(cost.epsilon);
  spent_delta_.Add(cost.delta);
  return Status::Ok();
}

PrivacyBudget PrivacyAccountant::Remaining() const {
  const PrivacyBudget current = spent();
  return PrivacyBudget{std::max(0.0, total_.epsilon - current.epsilon),
                       std::max(0.0, total_.delta - current.delta)};
}

}  // namespace dplearn
