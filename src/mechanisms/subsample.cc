#include "mechanisms/subsample.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "sampling/distributions.h"
#include "util/math_util.h"

namespace dplearn {
namespace {

/// exp(epsilon) overflows a double past ~709 (and exp(2*epsilon) past ~354),
/// turning the naive amplification formulas into inf/inf = NaN; above this
/// threshold the log-space forms below take over. Well under the overflow
/// point so both forms are exact where they hand off.
constexpr double kLogSpaceEpsilonThreshold = 300.0;

}  // namespace

StatusOr<Dataset> PoissonSubsample(const Dataset& data, double q, Rng* rng) {
  if (!(q > 0.0) || q > 1.0) {
    return InvalidArgumentError("PoissonSubsample: q must be in (0,1]");
  }
  Dataset out;
  for (const Example& z : data.examples()) {
    DPLEARN_ASSIGN_OR_RETURN(int keep, SampleBernoulli(rng, q));
    if (keep == 1) out.Add(z);
  }
  return out;
}

StatusOr<Dataset> UniformSubsample(const Dataset& data, std::size_t m, Rng* rng) {
  if (m == 0) return InvalidArgumentError("UniformSubsample: m must be positive");
  if (m > data.size()) {
    return InvalidArgumentError("UniformSubsample: m exceeds dataset size");
  }
  // Partial Fisher-Yates over an index array.
  std::vector<std::size_t> indices(data.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng->NextBounded(indices.size() - i));
    std::swap(indices[i], indices[j]);
  }
  Dataset out;
  for (std::size_t i = 0; i < m; ++i) out.Add(data.at(indices[i]));
  return out;
}

StatusOr<double> AmplifiedEpsilonPoisson(double epsilon, double q) {
  if (!(epsilon > 0.0)) {
    return InvalidArgumentError("AmplifiedEpsilonPoisson: epsilon must be positive");
  }
  if (!(q > 0.0) || q > 1.0) {
    return InvalidArgumentError("AmplifiedEpsilonPoisson: q must be in (0,1]");
  }
  if (epsilon > kLogSpaceEpsilonThreshold) {
    // ln(1 - q + q·e^ε) in log space: expm1(ε) would overflow to +inf.
    return LogAddExp(std::log1p(-q), std::log(q) + epsilon);
  }
  return std::log1p(q * std::expm1(epsilon));
}

StatusOr<double> AmplifiedEpsilonUniform(double epsilon, std::size_t m, std::size_t n) {
  if (m == 0 || n == 0 || m > n) {
    return InvalidArgumentError("AmplifiedEpsilonUniform: need 0 < m <= n");
  }
  return AmplifiedEpsilonPoisson(epsilon,
                                 static_cast<double>(m) / static_cast<double>(n));
}

StatusOr<double> AmplifiedEpsilonPoissonReplace(double epsilon, double q) {
  if (!(epsilon > 0.0)) {
    return InvalidArgumentError("AmplifiedEpsilonPoissonReplace: epsilon must be positive");
  }
  if (!(q > 0.0) || q > 1.0) {
    return InvalidArgumentError("AmplifiedEpsilonPoissonReplace: q must be in (0,1]");
  }
  // Computed as ln(1-q + q·e^{2ε}) − ln(1-q + q·e^ε). The direct ratio
  // overflows to inf/inf = NaN once exp(2ε) exceeds DBL_MAX (ε ≳ 354); the
  // log-space form is finite for every valid (ε, q). log1p(-q) is the exact
  // log(1-q) (-inf at q = 1, which LogAddExp absorbs).
  const double log_q = std::log(q);
  const double log_one_minus_q = std::log1p(-q);
  const double log_numerator = LogAddExp(log_one_minus_q, log_q + 2.0 * epsilon);
  const double log_denominator = LogAddExp(log_one_minus_q, log_q + epsilon);
  return log_numerator - log_denominator;
}

StatusOr<double> BaseEpsilonForAmplifiedTarget(double target_epsilon, double q) {
  if (!(target_epsilon > 0.0)) {
    return InvalidArgumentError("BaseEpsilonForAmplifiedTarget: target must be positive");
  }
  if (!(q > 0.0) || q > 1.0) {
    return InvalidArgumentError("BaseEpsilonForAmplifiedTarget: q must be in (0,1]");
  }
  if (target_epsilon > kLogSpaceEpsilonThreshold) {
    // ln(1 + (e^t − 1)/q) = ln(e^t − (1−q)) − ln q
    //                     = t + log1p(−(1−q)·e^{−t}) − ln q,
    // finite where expm1(t) overflows.
    return target_epsilon + std::log1p(-(1.0 - q) * std::exp(-target_epsilon)) -
           std::log(q);
  }
  return std::log1p(std::expm1(target_epsilon) / q);
}

}  // namespace dplearn
