#include "mechanisms/subsample.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "sampling/distributions.h"

namespace dplearn {

StatusOr<Dataset> PoissonSubsample(const Dataset& data, double q, Rng* rng) {
  if (!(q > 0.0) || q > 1.0) {
    return InvalidArgumentError("PoissonSubsample: q must be in (0,1]");
  }
  Dataset out;
  for (const Example& z : data.examples()) {
    DPLEARN_ASSIGN_OR_RETURN(int keep, SampleBernoulli(rng, q));
    if (keep == 1) out.Add(z);
  }
  return out;
}

StatusOr<Dataset> UniformSubsample(const Dataset& data, std::size_t m, Rng* rng) {
  if (m == 0) return InvalidArgumentError("UniformSubsample: m must be positive");
  if (m > data.size()) {
    return InvalidArgumentError("UniformSubsample: m exceeds dataset size");
  }
  // Partial Fisher-Yates over an index array.
  std::vector<std::size_t> indices(data.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng->NextBounded(indices.size() - i));
    std::swap(indices[i], indices[j]);
  }
  Dataset out;
  for (std::size_t i = 0; i < m; ++i) out.Add(data.at(indices[i]));
  return out;
}

StatusOr<double> AmplifiedEpsilonPoisson(double epsilon, double q) {
  if (!(epsilon > 0.0)) {
    return InvalidArgumentError("AmplifiedEpsilonPoisson: epsilon must be positive");
  }
  if (!(q > 0.0) || q > 1.0) {
    return InvalidArgumentError("AmplifiedEpsilonPoisson: q must be in (0,1]");
  }
  return std::log1p(q * std::expm1(epsilon));
}

StatusOr<double> AmplifiedEpsilonUniform(double epsilon, std::size_t m, std::size_t n) {
  if (m == 0 || n == 0 || m > n) {
    return InvalidArgumentError("AmplifiedEpsilonUniform: need 0 < m <= n");
  }
  return AmplifiedEpsilonPoisson(epsilon,
                                 static_cast<double>(m) / static_cast<double>(n));
}

StatusOr<double> AmplifiedEpsilonPoissonReplace(double epsilon, double q) {
  if (!(epsilon > 0.0)) {
    return InvalidArgumentError("AmplifiedEpsilonPoissonReplace: epsilon must be positive");
  }
  if (!(q > 0.0) || q > 1.0) {
    return InvalidArgumentError("AmplifiedEpsilonPoissonReplace: q must be in (0,1]");
  }
  const double numerator = (1.0 - q) + q * std::exp(2.0 * epsilon);
  const double denominator = (1.0 - q) + q * std::exp(epsilon);
  return std::log(numerator / denominator);
}

StatusOr<double> BaseEpsilonForAmplifiedTarget(double target_epsilon, double q) {
  if (!(target_epsilon > 0.0)) {
    return InvalidArgumentError("BaseEpsilonForAmplifiedTarget: target must be positive");
  }
  if (!(q > 0.0) || q > 1.0) {
    return InvalidArgumentError("BaseEpsilonForAmplifiedTarget: q must be in (0,1]");
  }
  return std::log1p(std::expm1(target_epsilon) / q);
}

}  // namespace dplearn
