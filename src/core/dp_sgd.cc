#include "core/dp_sgd.h"

#include <cmath>
#include <sstream>
#include <vector>

#include "infotheory/renyi.h"
#include "mechanisms/subsample.h"
#include "sampling/distributions.h"

namespace dplearn {
namespace {

Status ValidateOptions(const DpSgdOptions& options) {
  if (!(options.noise_multiplier > 0.0)) {
    return InvalidArgumentError("DpSgd: noise_multiplier must be positive");
  }
  if (!(options.clip_norm > 0.0)) {
    return InvalidArgumentError("DpSgd: clip_norm must be positive");
  }
  if (!(options.sampling_rate > 0.0) || options.sampling_rate > 1.0) {
    return InvalidArgumentError("DpSgd: sampling_rate must be in (0,1]");
  }
  if (options.steps == 0) return InvalidArgumentError("DpSgd: steps must be positive");
  if (!(options.learning_rate > 0.0)) {
    return InvalidArgumentError("DpSgd: learning_rate must be positive");
  }
  if (options.l2_lambda < 0.0) {
    return InvalidArgumentError("DpSgd: l2_lambda must be non-negative");
  }
  if (!(options.delta > 0.0) || options.delta >= 1.0) {
    return InvalidArgumentError("DpSgd: delta must be in (0,1)");
  }
  return Status::Ok();
}

}  // namespace

StatusOr<DpSgdAccounting> DpSgdPrivacyDetail(const DpSgdOptions& options) {
  DPLEARN_RETURN_IF_ERROR(ValidateOptions(options));
  // Per-step un-amplified RDP of the Gaussian mechanism with sensitivity
  // clip and stddev sigma*clip: eps(alpha) = alpha / (2 sigma^2). The q²
  // Poisson-amplification leading term is only an upper bound on the true
  // subsampled-Gaussian RDP in the small-q regime, so it is admitted only
  // for q <= kDpSgdAmplificationMaxQ; at larger rates the per-step RDP
  // falls back to the always-sound unamplified bound. Taking the min of the
  // two keeps the formula shape honest in both regimes (for q < 1 the
  // amplified term is the smaller one whenever it is admitted at all).
  const double q = options.sampling_rate;
  const double sigma = options.noise_multiplier;
  const bool amplify = q <= kDpSgdAmplificationMaxQ;
  DpSgdAccounting accounting;
  accounting.amplification_applied = amplify;
  double best = std::numeric_limits<double>::infinity();
  for (double alpha : {1.5, 2.0, 3.0, 5.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0}) {
    const double unamplified = alpha / (2.0 * sigma * sigma);
    const double per_step =
        amplify ? std::min(q * q * unamplified, unamplified) : unamplified;
    const double composed = per_step * static_cast<double>(options.steps);
    DPLEARN_ASSIGN_OR_RETURN(
        double eps, RdpToApproximateDpEpsilon({alpha, composed}, options.delta));
    if (eps < best) {
      best = eps;
      accounting.best_alpha = alpha;
    }
  }
  accounting.budget = PrivacyBudget{best, options.delta};
  return accounting;
}

StatusOr<PrivacyBudget> DpSgdPrivacy(const DpSgdOptions& options) {
  DPLEARN_ASSIGN_OR_RETURN(const DpSgdAccounting accounting, DpSgdPrivacyDetail(options));
  return accounting.budget;
}

StatusOr<double> NoiseMultiplierForTarget(double target_epsilon, double sampling_rate,
                                          std::size_t steps, double delta) {
  if (!(target_epsilon > 0.0) || !std::isfinite(target_epsilon)) {
    return InvalidArgumentError(
        "NoiseMultiplierForTarget: target epsilon must be positive and finite");
  }
  DpSgdOptions probe;
  probe.sampling_rate = sampling_rate;
  probe.steps = steps;
  probe.delta = delta;
  // Binary search sigma in [1e-2, 1e4]; epsilon is decreasing in sigma.
  // The first DpSgdPrivacy call validates (q, steps, delta) and returns its
  // typed error for out-of-domain arguments (q = 0, delta -> 0, ...).
  double lo = 1e-2;
  double hi = 1e4;
  probe.noise_multiplier = hi;
  DPLEARN_ASSIGN_OR_RETURN(PrivacyBudget at_hi, DpSgdPrivacy(probe));
  if (at_hi.epsilon > target_epsilon) {
    // The delta-conversion overhead ln(1/delta)/(alpha-1) survives any
    // sigma, so sufficiently small targets are structurally unattainable —
    // report the floor instead of looping or returning the search bound.
    std::ostringstream message;
    message << "NoiseMultiplierForTarget: target epsilon " << target_epsilon
            << " unattainable at q=" << sampling_rate << ", steps=" << steps
            << ", delta=" << delta << ": even sigma=" << hi
            << " only reaches epsilon=" << at_hi.epsilon;
    return FailedPreconditionError(message.str());
  }
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    probe.noise_multiplier = mid;
    DPLEARN_ASSIGN_OR_RETURN(PrivacyBudget at_mid, DpSgdPrivacy(probe));
    if (at_mid.epsilon <= target_epsilon) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

StatusOr<DpSgdResult> DpSgd(const LossFunction& loss, const Dataset& data,
                            const DpSgdOptions& options, Rng* rng) {
  DPLEARN_RETURN_IF_ERROR(ValidateOptions(options));
  if (data.empty()) return InvalidArgumentError("DpSgd: empty dataset");
  if (!loss.HasGradient()) {
    return InvalidArgumentError("DpSgd: loss '" + loss.Name() + "' has no gradient");
  }
  const std::size_t d = data.FeatureDim();
  const double n = static_cast<double>(data.size());

  Vector theta(d, 0.0);
  double clipped_norm_total = 0.0;
  std::size_t clipped_norm_count = 0;

  for (std::size_t step = 0; step < options.steps; ++step) {
    DPLEARN_ASSIGN_OR_RETURN(Dataset batch,
                             PoissonSubsample(data, options.sampling_rate, rng));
    // Sum of per-example gradients, each clipped to L2 norm <= C.
    Vector grad_sum(d, 0.0);
    for (const Example& z : batch.examples()) {
      Vector g = loss.Gradient(theta, z);
      const double norm = Norm2(g);
      const double scale = norm > options.clip_norm ? options.clip_norm / norm : 1.0;
      AxpyInPlace(&grad_sum, scale, g);
      clipped_norm_total += std::min(norm, options.clip_norm);
      ++clipped_norm_count;
    }
    // Gaussian noise calibrated to the clip (the summed gradient's
    // sensitivity under one record's presence).
    const double stddev = options.noise_multiplier * options.clip_norm;
    for (double& coord : grad_sum) {
      DPLEARN_ASSIGN_OR_RETURN(double noise, SampleNormal(rng, 0.0, stddev));
      coord += noise;
    }
    // Average over the EXPECTED batch size (standard DP-SGD normalization;
    // using the realized size would leak it).
    const double expected_batch = options.sampling_rate * n;
    AxpyInPlace(&theta, -options.learning_rate / expected_batch, grad_sum);
    // L2 regularization applied on the full (public-knowledge) objective.
    AxpyInPlace(&theta, -options.learning_rate * options.l2_lambda, theta);
  }

  DpSgdResult result;
  result.theta = std::move(theta);
  DPLEARN_ASSIGN_OR_RETURN(result.budget, DpSgdPrivacy(options));
  result.steps = options.steps;
  result.mean_clipped_gradient_norm =
      clipped_norm_count == 0
          ? 0.0
          : clipped_norm_total / static_cast<double>(clipped_norm_count);
  return result;
}

}  // namespace dplearn
