#include "core/utility_bounds.h"

#include <cmath>

namespace dplearn {
namespace {

Status ValidateDeltaAndClass(std::size_t num_hypotheses, double delta) {
  if (num_hypotheses == 0) {
    return InvalidArgumentError("utility bound: need at least one hypothesis");
  }
  if (!(delta > 0.0) || delta >= 1.0) {
    return InvalidArgumentError("utility bound: delta must be in (0,1)");
  }
  return Status::Ok();
}

}  // namespace

StatusOr<double> GibbsExcessEmpiricalRiskBound(double lambda, std::size_t num_hypotheses,
                                               double delta) {
  DPLEARN_RETURN_IF_ERROR(ValidateDeltaAndClass(num_hypotheses, delta));
  if (!(lambda > 0.0)) {
    return InvalidArgumentError("GibbsExcessEmpiricalRiskBound: lambda must be positive");
  }
  return std::log(static_cast<double>(num_hypotheses) / delta) / lambda;
}

StatusOr<double> LambdaForExcessRisk(double target_excess, std::size_t num_hypotheses,
                                     double delta) {
  DPLEARN_RETURN_IF_ERROR(ValidateDeltaAndClass(num_hypotheses, delta));
  if (!(target_excess > 0.0)) {
    return InvalidArgumentError("LambdaForExcessRisk: target_excess must be positive");
  }
  return std::log(static_cast<double>(num_hypotheses) / delta) / target_excess;
}

StatusOr<double> ExcessRiskCostOfPrivacy(double epsilon, std::size_t n, double loss_bound,
                                         std::size_t num_hypotheses, double delta) {
  DPLEARN_RETURN_IF_ERROR(ValidateDeltaAndClass(num_hypotheses, delta));
  if (!(epsilon > 0.0)) {
    return InvalidArgumentError("ExcessRiskCostOfPrivacy: epsilon must be positive");
  }
  if (n == 0) return InvalidArgumentError("ExcessRiskCostOfPrivacy: n must be positive");
  if (!(loss_bound > 0.0)) {
    return InvalidArgumentError("ExcessRiskCostOfPrivacy: loss bound must be positive");
  }
  return 2.0 * loss_bound * std::log(static_cast<double>(num_hypotheses) / delta) /
         (epsilon * static_cast<double>(n));
}

StatusOr<double> GibbsExcessTrueRiskBound(double lambda, std::size_t num_hypotheses,
                                          std::size_t n, double loss_bound, double delta) {
  DPLEARN_RETURN_IF_ERROR(ValidateDeltaAndClass(num_hypotheses, delta));
  if (!(lambda > 0.0)) {
    return InvalidArgumentError("GibbsExcessTrueRiskBound: lambda must be positive");
  }
  if (n == 0) return InvalidArgumentError("GibbsExcessTrueRiskBound: n must be positive");
  if (!(loss_bound > 0.0)) {
    return InvalidArgumentError("GibbsExcessTrueRiskBound: loss bound must be positive");
  }
  const double m = static_cast<double>(num_hypotheses);
  const double nd = static_cast<double>(n);
  const double empirical_term = std::log(3.0 * m / delta) / lambda;
  const double generalization_term =
      2.0 * loss_bound * std::sqrt(std::log(6.0 * m / delta) / (2.0 * nd));
  return empirical_term + generalization_term;
}

}  // namespace dplearn
