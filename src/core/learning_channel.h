#ifndef DPLEARN_CORE_LEARNING_CHANNEL_H_
#define DPLEARN_CORE_LEARNING_CHANNEL_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "infotheory/channel.h"
#include "learning/generators.h"
#include "learning/hypothesis.h"
#include "learning/loss.h"
#include "util/status.h"

namespace dplearn {

/// The information channel of Figure 1 / Section 4.1: differentially-private
/// learning viewed as a channel whose input is the training sample Ẑ and
/// whose output is the predictor θ, with transition kernel
/// p(θ|Ẑ) = Gibbs posterior π̂_λ(θ|Ẑ).
///
/// For the Bernoulli mean-estimation task the channel is EXACTLY
/// constructible: the Gibbs posterior depends on Ẑ only through the
/// sufficient statistic k = #ones, so the channel input alphabet collapses
/// to k ∈ {0..n} with marginal Binomial(n, p), and I(Ẑ; θ) = I(k; θ) by
/// sufficiency. The DP neighbor relation becomes |k - k'| <= 1.
struct GibbsLearningChannel {
  /// Transition kernel: rows indexed by k, columns by hypothesis index.
  DiscreteChannel channel;
  /// P(k) = Binomial(n, p) — the push-forward of Q^n.
  std::vector<double> input_marginal;
  /// risk_matrix[k][i] = R̂ of hypothesis i on any dataset with k ones.
  std::vector<std::vector<double>> risk_matrix;
  /// All (k, k+1) pairs — the neighbor relation on inputs.
  std::vector<std::pair<std::size_t, std::size_t>> neighbor_pairs;
};

/// Builds the exact Gibbs learning channel for `task` at sample size n,
/// hypothesis class `hclass`, prior `prior`, loss `loss`, and inverse
/// temperature lambda. Errors on invalid arguments.
StatusOr<GibbsLearningChannel> BuildBernoulliGibbsChannel(const BernoulliMeanTask& task,
                                                          std::size_t n,
                                                          const LossFunction& loss,
                                                          const FiniteHypothesisClass& hclass,
                                                          const std::vector<double>& prior,
                                                          double lambda);

/// I(Ẑ; θ) of the channel under its input marginal — the quantity the
/// privacy parameter regularizes in Theorem 4.2.
StatusOr<double> ChannelMutualInformation(const GibbsLearningChannel& channel);

/// E_Ẑ E_{θ~π̂}[R̂_Ẑ(θ)] of the channel — the other term of the
/// regularized objective.
StatusOr<double> ChannelExpectedEmpiricalRisk(const GibbsLearningChannel& channel);

/// The channel's tight privacy level ε* = max over neighbor pairs and
/// outputs of the log transition ratio (Definition 2.1 made computable).
double ChannelPrivacyLevel(const GibbsLearningChannel& channel);

}  // namespace dplearn

#endif  // DPLEARN_CORE_LEARNING_CHANNEL_H_
