#ifndef DPLEARN_CORE_PRIVATE_REGRESSION_H_
#define DPLEARN_CORE_PRIVATE_REGRESSION_H_

#include <cstddef>
#include <vector>

#include "learning/dataset.h"
#include "sampling/metropolis.h"
#include "sampling/rng.h"
#include "util/matrix.h"
#include "util/status.h"

namespace dplearn {

/// Differentially-private regression via PAC-Bayes — the other half of the
/// paper's stated future work. The intro's motivating example ("a linear
/// regression problem where ... we would like to learn the regressor using
/// this data") packaged as a turnkey API:
///
///   * a Gibbs regressor over a coefficient grid (finite Θ: exact
///     posterior, exact privacy accounting by Theorem 4.1), and
///   * a continuous-Θ Gibbs regressor (Gaussian prior + MCMC), trading
///     exactness for a realistic parameter space,
///
/// each releasing ONE posterior sample (the DP output — the posterior
/// mean is NOT private and is never exposed) together with its PAC-Bayes
/// risk certificate.

/// Configuration for the grid Gibbs regressor.
struct GibbsRegressionOptions {
  /// Target privacy ε; λ = ε·n/(2B) with B the loss bound.
  double epsilon = 1.0;
  /// Coefficient box [-box_radius, box_radius]^d.
  double box_radius = 2.0;
  /// Grid points per dimension (total candidates = per_dim^d — keep d
  /// small; use the continuous variant for d > 3).
  std::size_t per_dim = 21;
  /// Squared-loss clip B (loss in [0, B]).
  double loss_clip = 4.0;
  /// PAC-Bayes confidence for the certificate.
  double delta = 0.05;
};

/// Result of a private regression run.
struct PrivateRegressionResult {
  /// The released coefficients (ε-DP).
  Vector theta;
  /// The privacy level guaranteed by Theorem 4.1.
  double epsilon = 0.0;
  /// Catoni certificate: with prob >= 1-delta over the sample, the Gibbs
  /// posterior's expected true (clipped) risk is below this. Scaled back
  /// to loss units (multiplied by the clip B).
  double risk_certificate = 0.0;
  /// The posterior's expected empirical risk (loss units), for reference.
  double expected_empirical_risk = 0.0;
};

/// Grid Gibbs regression. `data` must have FeatureDim() >= 1; candidates
/// are a per_dim^d grid over the coefficient box. Errors on invalid
/// options, empty data, or a grid too large (> 200000 candidates).
StatusOr<PrivateRegressionResult> GibbsRegression(const Dataset& data,
                                                  const GibbsRegressionOptions& options,
                                                  Rng* rng);

/// Configuration for the continuous-Θ variant.
struct ContinuousGibbsRegressionOptions {
  double epsilon = 1.0;
  /// Gaussian prior stddev on each coefficient.
  double prior_stddev = 2.0;
  double loss_clip = 4.0;
  /// MCMC controls.
  MetropolisOptions mcmc;
  std::size_t mcmc_samples = 2000;
};

/// Continuous Gibbs regression: one MCMC draw from
/// dπ̂ ∝ exp(-λ R̂(θ)) N(0, prior_stddev² I). The privacy guarantee is for
/// the EXACT posterior; MCMC approximates it (see exp_mcmc_ablation for
/// the measured gap). Errors propagate from the sampler.
StatusOr<PrivateRegressionResult> ContinuousGibbsRegression(
    const Dataset& data, const ContinuousGibbsRegressionOptions& options, Rng* rng);

}  // namespace dplearn

#endif  // DPLEARN_CORE_PRIVATE_REGRESSION_H_
