#include "core/membership_attack.h"

#include <cmath>

#include "sampling/distributions.h"

namespace dplearn {

StatusOr<double> DpMembershipAdvantageBound(double epsilon) {
  if (epsilon < 0.0) {
    return InvalidArgumentError("DpMembershipAdvantageBound: epsilon must be >= 0");
  }
  // (e^eps - 1) / (e^eps + 1) = tanh(eps/2).
  return std::tanh(epsilon / 2.0);
}

StatusOr<MembershipAttackResult> BayesMembershipAttack(
    const AttackTargetMechanism& mechanism, const Dataset& base, std::size_t index,
    const Example& replacement, double claimed_epsilon) {
  if (!mechanism) {
    return InvalidArgumentError("BayesMembershipAttack: mechanism must be set");
  }
  if (index >= base.size()) {
    return InvalidArgumentError("BayesMembershipAttack: index out of range");
  }
  DPLEARN_ASSIGN_OR_RETURN(Dataset world1, base.ReplaceExample(index, replacement));
  if (!base.IsNeighborOf(world1)) {
    return InvalidArgumentError(
        "BayesMembershipAttack: replacement equals the existing record");
  }
  DPLEARN_ASSIGN_OR_RETURN(std::vector<double> p0, mechanism(base));
  DPLEARN_ASSIGN_OR_RETURN(std::vector<double> p1, mechanism(world1));
  if (p0.size() != p1.size() || p0.empty()) {
    return InternalError("BayesMembershipAttack: mechanism output arity mismatch");
  }
  // Bayes accuracy of the balanced binary hypothesis test:
  //   1/2 + TV(P0, P1) / 2.
  double tv = 0.0;
  for (std::size_t u = 0; u < p0.size(); ++u) tv += 0.5 * std::fabs(p0[u] - p1[u]);

  MembershipAttackResult result;
  result.accuracy = 0.5 + tv / 2.0;
  result.advantage = tv;
  DPLEARN_ASSIGN_OR_RETURN(result.dp_advantage_bound,
                           DpMembershipAdvantageBound(claimed_epsilon));
  result.rounds = 0;  // closed form
  return result;
}

StatusOr<MembershipAttackResult> SimulatedMembershipAttack(
    const SamplingAttackTarget& mechanism, const AttackTargetMechanism& exact_distributions,
    const Dataset& base, std::size_t index, const Example& replacement,
    double claimed_epsilon, std::size_t rounds, Rng* rng) {
  if (!mechanism || !exact_distributions) {
    return InvalidArgumentError("SimulatedMembershipAttack: mechanisms must be set");
  }
  if (rounds == 0) {
    return InvalidArgumentError("SimulatedMembershipAttack: rounds must be positive");
  }
  if (index >= base.size()) {
    return InvalidArgumentError("SimulatedMembershipAttack: index out of range");
  }
  DPLEARN_ASSIGN_OR_RETURN(Dataset world1, base.ReplaceExample(index, replacement));
  DPLEARN_ASSIGN_OR_RETURN(std::vector<double> p0, exact_distributions(base));
  DPLEARN_ASSIGN_OR_RETURN(std::vector<double> p1, exact_distributions(world1));
  if (p0.size() != p1.size() || p0.empty()) {
    return InternalError("SimulatedMembershipAttack: output arity mismatch");
  }

  std::size_t correct = 0;
  for (std::size_t round = 0; round < rounds; ++round) {
    DPLEARN_ASSIGN_OR_RETURN(int world, SampleBernoulli(rng, 0.5));
    const Dataset& chosen = world == 0 ? base : world1;
    DPLEARN_ASSIGN_OR_RETURN(std::size_t output, mechanism(chosen, rng));
    if (output >= p0.size()) {
      return InternalError("SimulatedMembershipAttack: out-of-range output");
    }
    // Likelihood-ratio rule; ties guess world 0.
    const int guess = p1[output] > p0[output] ? 1 : 0;
    if (guess == world) ++correct;
  }

  MembershipAttackResult result;
  result.accuracy = static_cast<double>(correct) / static_cast<double>(rounds);
  result.advantage = std::max(0.0, 2.0 * result.accuracy - 1.0);
  DPLEARN_ASSIGN_OR_RETURN(result.dp_advantage_bound,
                           DpMembershipAdvantageBound(claimed_epsilon));
  result.rounds = rounds;
  return result;
}

}  // namespace dplearn
