#ifndef DPLEARN_CORE_PAC_BAYES_H_
#define DPLEARN_CORE_PAC_BAYES_H_

#include <cstddef>
#include <vector>

#include "util/status.h"

namespace dplearn {

/// PAC-Bayesian risk bounds (Section 3 of the paper; Catoni 2007,
/// Zhang 2006, McAllester 1999). All bounds take the two data-dependent
/// scalars they are functions of — the posterior's expected empirical risk
/// E_ρ[R̂] and the divergence KL(ρ ‖ π) — so they apply to any posterior
/// representation (finite vectors, MCMC estimates).
///
/// Losses must be scaled to [0, 1] (Catoni's setting). n is the sample
/// size, λ > 0 the bound's free parameter, δ in (0,1) the confidence.

/// Catoni's high-probability bound (Theorem 3.1, first display): with
/// probability >= 1-δ over Ẑ ~ Q^n, for every posterior ρ,
///
///   E_ρ[R] <= [ 1 - exp( -(λ/n)·E_ρ[R̂] - (KL(ρ‖π) + ln(1/δ))/n ) ]
///             / (1 - exp(-λ/n)).
///
/// Returns the right-hand side, clamped to [0, 1] (a bound above 1 is
/// vacuous for [0,1] losses but still valid). Errors on invalid arguments.
StatusOr<double> CatoniHighProbabilityBound(double expected_empirical_risk, double kl,
                                            double lambda, std::size_t n, double delta);

/// Catoni's in-expectation bound (Equation 1 of the paper):
///
///   E_Ẑ E_ρ[R] <= [ 1 - exp( -(λ/n)·( E_Ẑ[E_ρ R̂ + KL(ρ‖π)/λ] ) ) ]
///                 / (1 - exp(-λ/n)).
///
/// `expected_objective` is E_Ẑ[E_ρ R̂ + KL/λ] (estimate it by averaging the
/// PacBayesObjective over resampled Ẑ). Errors on invalid arguments.
StatusOr<double> CatoniExpectationBound(double expected_objective, double lambda,
                                        std::size_t n);

/// The linearized Catoni bound: since 1-e^{-x} <= x,
///   E_ρ[R] <= ( E_ρ[R̂] + (KL + ln(1/δ))/λ ) / C(λ, n),
/// where C = (n/λ)(1 - e^{-λ/n}) in [1 - λ/(2n), 1] is the contraction
/// factor the paper notes is "close to 1 when λ << n". Looser than the
/// exact form but makes the structure of the objective transparent.
StatusOr<double> CatoniLinearizedBound(double expected_empirical_risk, double kl,
                                       double lambda, std::size_t n, double delta);

/// McAllester's classical bound, for comparison experiments:
///   E_ρ[R] <= E_ρ[R̂] + sqrt( (KL + ln(2 sqrt(n) / δ)) / (2n) ).
StatusOr<double> McAllesterBound(double expected_empirical_risk, double kl, std::size_t n,
                                 double delta);

/// The PAC-Bayes OBJECTIVE the bounds are monotone in (Lemma 3.2):
///
///   F(ρ) = E_ρ[R̂] + KL(ρ ‖ π) / λ
///
/// over a finite Θ with risk vector `risks` and prior `prior`. The Gibbs
/// posterior GibbsPosteriorFromRisks(risks, prior, λ) is its unique
/// minimizer (Donsker–Varadhan), and the minimum value equals
/// -(1/λ) ln E_π[exp(-λ R̂)]. Errors on invalid/mismatched input.
StatusOr<double> PacBayesObjective(const std::vector<double>& posterior,
                                   const std::vector<double>& risks,
                                   const std::vector<double>& prior, double lambda);

/// The closed-form minimum of the PAC-Bayes objective:
///   min_ρ F(ρ) = -(1/λ) ln E_{θ~π}[exp(-λ R̂(θ))]
/// (the log-partition / free-energy form). Tests assert
/// PacBayesObjective(Gibbs) == this to machine precision. Errors on
/// invalid input or lambda <= 0.
StatusOr<double> PacBayesObjectiveMinimum(const std::vector<double>& risks,
                                          const std::vector<double>& prior, double lambda);

/// The λ that (approximately) optimizes Catoni's linearized bound when the
/// KL term is of size `kl_scale`: λ* = sqrt(2 n kl_scale) clipped to
/// [1, n]. A heuristic the experiments use to pick temperatures; the privacy
/// level that falls out is then 2λ*Δ(R̂).
double SuggestLambda(std::size_t n, double kl_scale);

}  // namespace dplearn

#endif  // DPLEARN_CORE_PAC_BAYES_H_
