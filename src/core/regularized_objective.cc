#include "core/regularized_objective.h"

#include <cmath>
#include <limits>
#include <utility>

#include "core/gibbs_estimator.h"
#include "infotheory/mutual_information.h"
#include "util/math_util.h"

namespace dplearn {
namespace {

Status ValidateShapes(const std::vector<double>& input_marginal,
                      const std::vector<std::vector<double>>& risk_matrix, double lambda) {
  DPLEARN_RETURN_IF_ERROR(ValidateDistribution(input_marginal, 1e-6));
  if (risk_matrix.size() != input_marginal.size()) {
    return InvalidArgumentError("RegularizedObjective: risk matrix row count mismatch");
  }
  if (risk_matrix.empty() || risk_matrix[0].empty()) {
    return InvalidArgumentError("RegularizedObjective: empty risk matrix");
  }
  const std::size_t num_outputs = risk_matrix[0].size();
  for (const auto& row : risk_matrix) {
    if (row.size() != num_outputs) {
      return InvalidArgumentError("RegularizedObjective: ragged risk matrix");
    }
  }
  if (!(lambda > 0.0)) {
    return InvalidArgumentError("RegularizedObjective: lambda must be positive");
  }
  return Status::Ok();
}

}  // namespace

StatusOr<double> RegularizedObjective(const std::vector<std::vector<double>>& transition,
                                      const std::vector<double>& input_marginal,
                                      const std::vector<std::vector<double>>& risk_matrix,
                                      double lambda) {
  DPLEARN_RETURN_IF_ERROR(ValidateShapes(input_marginal, risk_matrix, lambda));
  if (transition.size() != input_marginal.size()) {
    return InvalidArgumentError("RegularizedObjective: transition row count mismatch");
  }
  const std::size_t num_outputs = risk_matrix[0].size();
  for (const auto& row : transition) {
    if (row.size() != num_outputs) {
      return InvalidArgumentError("RegularizedObjective: ragged transition matrix");
    }
  }

  double expected_risk = 0.0;
  for (std::size_t k = 0; k < transition.size(); ++k) {
    if (input_marginal[k] == 0.0) continue;
    DPLEARN_RETURN_IF_ERROR(ValidateDistribution(transition[k], 1e-6));
    double row = 0.0;
    for (std::size_t i = 0; i < num_outputs; ++i) row += transition[k][i] * risk_matrix[k][i];
    expected_risk += input_marginal[k] * row;
  }

  DPLEARN_ASSIGN_OR_RETURN(
      JointDistribution joint,
      JointDistribution::FromMarginalAndConditional(input_marginal, transition));
  return expected_risk + joint.MutualInformation() / lambda;
}

StatusOr<RegularizedObjectiveMinimum> MinimizeRegularizedObjective(
    const std::vector<double>& input_marginal,
    const std::vector<std::vector<double>>& risk_matrix, double lambda, double tol,
    std::size_t max_iters) {
  DPLEARN_RETURN_IF_ERROR(ValidateShapes(input_marginal, risk_matrix, lambda));
  if (!(tol > 0.0)) {
    return InvalidArgumentError("MinimizeRegularizedObjective: tol must be positive");
  }
  if (max_iters == 0) {
    return InvalidArgumentError("MinimizeRegularizedObjective: max_iters must be positive");
  }

  const std::size_t num_inputs = input_marginal.size();
  const std::size_t num_outputs = risk_matrix[0].size();

  RegularizedObjectiveMinimum result;
  result.prior.assign(num_outputs, 1.0 / static_cast<double>(num_outputs));
  result.transition.assign(num_inputs, std::vector<double>(num_outputs, 0.0));

  double previous_objective = std::numeric_limits<double>::infinity();
  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    // Step 1: optimal rows for the current prior are Gibbs posteriors.
    for (std::size_t k = 0; k < num_inputs; ++k) {
      DPLEARN_ASSIGN_OR_RETURN(result.transition[k],
                               GibbsPosteriorFromRisks(risk_matrix[k], result.prior, lambda));
    }
    // Step 2: optimal prior for the current rows is the output marginal
    // q = sum_k P(k) W(.|k) — Catoni's pi_OPT = E_Z[posterior].
    std::vector<double> new_prior(num_outputs, 0.0);
    for (std::size_t k = 0; k < num_inputs; ++k) {
      for (std::size_t i = 0; i < num_outputs; ++i) {
        new_prior[i] += input_marginal[k] * result.transition[k][i];
      }
    }
    result.prior = std::move(new_prior);

    DPLEARN_ASSIGN_OR_RETURN(
        result.objective,
        RegularizedObjective(result.transition, input_marginal, risk_matrix, lambda));
    result.iterations = iter + 1;
    if (previous_objective - result.objective < tol) {
      result.converged = true;
      break;
    }
    previous_objective = result.objective;
  }
  return result;
}

}  // namespace dplearn
