#include "core/finite_domain_channel.h"

#include <cmath>
#include <functional>
#include <utility>

#include "core/gibbs_estimator.h"
#include "learning/risk.h"
#include "util/math_util.h"

namespace dplearn {
namespace {

/// Enumerates all compositions of n into m cells.
std::vector<std::vector<std::size_t>> EnumerateCompositions(std::size_t n, std::size_t m) {
  std::vector<std::vector<std::size_t>> out;
  std::vector<std::size_t> current(m, 0);
  std::function<void(std::size_t, std::size_t)> recurse = [&](std::size_t cell,
                                                              std::size_t remaining) {
    if (cell == m - 1) {
      current[cell] = remaining;
      out.push_back(current);
      return;
    }
    for (std::size_t take = 0; take <= remaining; ++take) {
      current[cell] = take;
      recurse(cell + 1, remaining - take);
    }
  };
  recurse(0, n);
  return out;
}

/// log multinomial coefficient n! / prod(counts_j!).
double LogMultinomialCoefficient(std::size_t n, const std::vector<std::size_t>& counts) {
  double log_coeff = std::lgamma(static_cast<double>(n) + 1.0);
  for (std::size_t c : counts) log_coeff -= std::lgamma(static_cast<double>(c) + 1.0);
  return log_coeff;
}

}  // namespace

StatusOr<FiniteDomainGibbsChannel> BuildFiniteDomainGibbsChannel(
    const std::vector<Example>& domain, const std::vector<double>& domain_probs,
    std::size_t n, const LossFunction& loss, const FiniteHypothesisClass& hclass,
    const std::vector<double>& prior, double lambda, std::size_t max_inputs) {
  if (domain.size() < 2) {
    return InvalidArgumentError("FiniteDomainGibbsChannel: domain needs >= 2 elements");
  }
  if (domain_probs.size() != domain.size()) {
    return InvalidArgumentError("FiniteDomainGibbsChannel: domain_probs size mismatch");
  }
  DPLEARN_RETURN_IF_ERROR(ValidateDistribution(domain_probs, 1e-6));
  if (n == 0) return InvalidArgumentError("FiniteDomainGibbsChannel: n must be positive");
  if (prior.size() != hclass.size()) {
    return InvalidArgumentError("FiniteDomainGibbsChannel: prior size mismatch");
  }

  const std::size_t m = domain.size();
  std::vector<std::vector<std::size_t>> compositions = EnumerateCompositions(n, m);
  if (compositions.size() > max_inputs) {
    return InvalidArgumentError("FiniteDomainGibbsChannel: " +
                                std::to_string(compositions.size()) +
                                " compositions exceed max_inputs");
  }

  // Per-example losses for every hypothesis (computed once).
  std::vector<std::vector<double>> example_loss(m, std::vector<double>(hclass.size()));
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t i = 0; i < hclass.size(); ++i) {
      example_loss[j][i] = loss.Loss(hclass.at(i), domain[j]);
    }
  }

  std::vector<DomainComposition> inputs;
  std::vector<double> input_marginal;
  std::vector<std::vector<double>> risk_matrix;
  std::vector<std::vector<double>> transition;
  inputs.reserve(compositions.size());
  input_marginal.reserve(compositions.size());
  risk_matrix.reserve(compositions.size());
  transition.reserve(compositions.size());

  for (const auto& counts : compositions) {
    DomainComposition input;
    input.counts = counts;
    // Multinomial probability.
    double log_prob = LogMultinomialCoefficient(n, counts);
    bool impossible = false;
    for (std::size_t j = 0; j < m; ++j) {
      if (counts[j] == 0) continue;
      if (domain_probs[j] == 0.0) {
        impossible = true;
        break;
      }
      log_prob += static_cast<double>(counts[j]) * std::log(domain_probs[j]);
    }
    input.probability = impossible ? 0.0 : std::exp(log_prob);

    // Risk vector: R̂(theta_i) = (1/n) sum_j counts[j] * l(theta_i, z_j).
    std::vector<double> risks(hclass.size(), 0.0);
    for (std::size_t i = 0; i < hclass.size(); ++i) {
      double sum = 0.0;
      for (std::size_t j = 0; j < m; ++j) {
        sum += static_cast<double>(counts[j]) * example_loss[j][i];
      }
      risks[i] = sum / static_cast<double>(n);
    }
    DPLEARN_ASSIGN_OR_RETURN(std::vector<double> row,
                             GibbsPosteriorFromRisks(risks, prior, lambda));

    input_marginal.push_back(input.probability);
    risk_matrix.push_back(std::move(risks));
    inputs.push_back(std::move(input));
    transition.push_back(std::move(row));
  }

  // Normalize away any floating-point drift in the multinomial masses.
  double total = 0.0;
  for (double p : input_marginal) total += p;
  if (total <= 0.0) {
    return InvalidArgumentError("FiniteDomainGibbsChannel: degenerate domain probabilities");
  }
  for (double& p : input_marginal) p /= total;

  // Neighbor relation: compositions at L1 distance exactly 2 (one unit
  // moved between two cells).
  std::vector<std::pair<std::size_t, std::size_t>> neighbor_pairs;
  for (std::size_t a = 0; a < compositions.size(); ++a) {
    for (std::size_t b = a + 1; b < compositions.size(); ++b) {
      std::size_t l1 = 0;
      for (std::size_t j = 0; j < m; ++j) {
        const std::size_t ca = compositions[a][j];
        const std::size_t cb = compositions[b][j];
        l1 += ca > cb ? ca - cb : cb - ca;
      }
      if (l1 == 2) neighbor_pairs.emplace_back(a, b);
    }
  }

  DPLEARN_ASSIGN_OR_RETURN(DiscreteChannel channel,
                           DiscreteChannel::Create(std::move(transition)));
  return FiniteDomainGibbsChannel{std::move(channel), std::move(inputs),
                                  std::move(input_marginal), std::move(risk_matrix),
                                  std::move(neighbor_pairs)};
}

StatusOr<double> FiniteDomainChannelMutualInformation(
    const FiniteDomainGibbsChannel& channel) {
  return channel.channel.MutualInformation(channel.input_marginal);
}

double FiniteDomainChannelPrivacyLevel(const FiniteDomainGibbsChannel& channel) {
  return channel.channel.MaxLogRatio(channel.neighbor_pairs);
}

}  // namespace dplearn
