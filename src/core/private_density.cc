#include "core/private_density.h"

#include <cmath>
#include <functional>
#include <limits>
#include <utility>

#include "core/gibbs_estimator.h"
#include "mechanisms/geometric.h"
#include "mechanisms/sensitivity.h"
#include "obs/audit_log.h"
#include "sampling/distributions.h"
#include "util/math_util.h"

namespace dplearn {
namespace {

/// Extracts integer category labels in [0, bins) from `data`.
StatusOr<std::vector<std::size_t>> CategoriesOf(const Dataset& data, std::size_t bins) {
  if (data.empty()) return InvalidArgumentError("private density: empty dataset");
  if (bins == 0) return InvalidArgumentError("private density: bins must be positive");
  std::vector<std::size_t> categories;
  categories.reserve(data.size());
  for (const Example& z : data.examples()) {
    if (z.label < 0.0 || z.label >= static_cast<double>(bins) ||
        std::floor(z.label) != z.label) {
      return InvalidArgumentError("private density: labels must be integers in [0, bins)");
    }
    categories.push_back(static_cast<std::size_t>(z.label));
  }
  return categories;
}

StatusOr<std::vector<double>> NoisyCountsToDensity(std::vector<double> counts) {
  double total = 0.0;
  for (double& c : counts) {
    c = std::max(0.0, c);
    total += c;
  }
  if (total <= 0.0) {
    // All mass destroyed by noise: fall back to uniform (data-independent).
    return std::vector<double>(counts.size(), 1.0 / static_cast<double>(counts.size()));
  }
  for (double& c : counts) c /= total;
  return counts;
}

}  // namespace

StatusOr<std::vector<std::vector<double>>> QuantizedSimplex(std::size_t bins,
                                                            std::size_t resolution) {
  if (bins == 0) return InvalidArgumentError("QuantizedSimplex: bins must be positive");
  if (resolution == 0) {
    return InvalidArgumentError("QuantizedSimplex: resolution must be positive");
  }
  std::vector<std::vector<double>> candidates;
  std::vector<std::size_t> composition(bins, 0);
  // Depth-first enumeration of compositions of `resolution` into `bins`.
  std::vector<std::pair<std::size_t, std::size_t>> stack;  // (position, remaining)
  std::function<void(std::size_t, std::size_t)> recurse =
      [&](std::size_t position, std::size_t remaining) {
        if (position == bins - 1) {
          composition[position] = remaining;
          std::vector<double> density(bins);
          for (std::size_t i = 0; i < bins; ++i) {
            density[i] =
                static_cast<double>(composition[i]) / static_cast<double>(resolution);
          }
          candidates.push_back(std::move(density));
          return;
        }
        for (std::size_t take = 0; take <= remaining; ++take) {
          composition[position] = take;
          recurse(position + 1, remaining - take);
        }
      };
  recurse(0, resolution);
  return candidates;
}

StatusOr<double> ClippedLogLoss(const std::vector<double>& density, std::size_t bin,
                                double clip, double floor) {
  if (bin >= density.size()) return InvalidArgumentError("ClippedLogLoss: bin out of range");
  if (!(clip > 0.0)) return InvalidArgumentError("ClippedLogLoss: clip must be positive");
  if (!(floor > 0.0) || floor >= 1.0) {
    return InvalidArgumentError("ClippedLogLoss: floor must be in (0,1)");
  }
  const double raw = -std::log(std::max(density[bin], floor));
  return Clamp(raw, 0.0, clip) / clip;
}

StatusOr<PrivateDensityResult> GibbsDensityEstimate(const Dataset& data, std::size_t bins,
                                                    const GibbsDensityOptions& options,
                                                    Rng* rng) {
  DPLEARN_ASSIGN_OR_RETURN(std::vector<std::size_t> categories, CategoriesOf(data, bins));
  if (!(options.epsilon > 0.0)) {
    return InvalidArgumentError("GibbsDensityEstimate: epsilon must be positive");
  }
  DPLEARN_ASSIGN_OR_RETURN(std::vector<std::vector<double>> candidates,
                           QuantizedSimplex(bins, options.resolution));

  // Empirical risk of each candidate: mean clipped log-loss (in [0,1]).
  // Per-candidate risk depends only on the bin counts — compute them once.
  std::vector<double> counts(bins, 0.0);
  for (std::size_t c : categories) counts[c] += 1.0;
  const double n = static_cast<double>(categories.size());

  std::vector<double> risks(candidates.size(), 0.0);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    double risk = 0.0;
    for (std::size_t b = 0; b < bins; ++b) {
      if (counts[b] == 0.0) continue;
      DPLEARN_ASSIGN_OR_RETURN(
          double loss, ClippedLogLoss(candidates[i], b, options.clip, options.floor));
      risk += counts[b] * loss;
    }
    risks[i] = risk / n;
  }

  // Loss is bounded in [0,1] => D(R) <= 1/n => lambda = eps*n/2 hits eps.
  const double lambda = options.epsilon * n / 2.0;
  std::vector<double> prior(candidates.size(),
                            1.0 / static_cast<double>(candidates.size()));
  DPLEARN_ASSIGN_OR_RETURN(std::vector<double> posterior,
                           GibbsPosteriorFromRisks(risks, prior, lambda));
  std::vector<double> log_weights(posterior.size());
  for (std::size_t i = 0; i < posterior.size(); ++i) {
    log_weights[i] = posterior[i] > 0.0 ? std::log(posterior[i])
                                        : -std::numeric_limits<double>::infinity();
  }
  DPLEARN_ASSIGN_OR_RETURN(std::size_t chosen, SampleFromLogWeights(rng, log_weights));
  obs::AuditMechanismInvocation("density.gibbs", options.epsilon, 0.0);

  PrivateDensityResult result;
  result.density = candidates[chosen];
  result.epsilon = options.epsilon;
  return result;
}

StatusOr<PrivateDensityResult> LaplaceHistogramEstimate(const Dataset& data,
                                                        std::size_t bins, double epsilon,
                                                        Rng* rng) {
  DPLEARN_ASSIGN_OR_RETURN(std::vector<std::size_t> categories, CategoriesOf(data, bins));
  if (!(epsilon > 0.0)) {
    return InvalidArgumentError("LaplaceHistogramEstimate: epsilon must be positive");
  }
  std::vector<double> counts(bins, 0.0);
  for (std::size_t c : categories) counts[c] += 1.0;
  // Replace-one moves one record between two bins: L1 sensitivity 2.
  for (double& c : counts) {
    DPLEARN_ASSIGN_OR_RETURN(double noise, SampleLaplace(rng, 0.0, 2.0 / epsilon));
    c += noise;
  }
  obs::AuditMechanismInvocation("density.laplace_histogram", epsilon, 0.0);
  PrivateDensityResult result;
  DPLEARN_ASSIGN_OR_RETURN(result.density, NoisyCountsToDensity(std::move(counts)));
  result.epsilon = epsilon;
  return result;
}

StatusOr<PrivateDensityResult> GeometricHistogramEstimate(const Dataset& data,
                                                          std::size_t bins, double epsilon,
                                                          Rng* rng) {
  DPLEARN_ASSIGN_OR_RETURN(std::vector<std::size_t> categories, CategoriesOf(data, bins));
  if (!(epsilon > 0.0)) {
    return InvalidArgumentError("GeometricHistogramEstimate: epsilon must be positive");
  }
  std::vector<double> counts(bins, 0.0);
  for (std::size_t c : categories) counts[c] += 1.0;
  // Same L1 sensitivity 2 => per-bin two-sided geometric with alpha = e^{-eps/2}.
  const double alpha = std::exp(-epsilon / 2.0);
  for (double& c : counts) {
    DPLEARN_ASSIGN_OR_RETURN(std::int64_t noise, SampleTwoSidedGeometric(rng, alpha));
    c += static_cast<double>(noise);
  }
  obs::AuditMechanismInvocation("density.geometric_histogram", epsilon, 0.0);
  PrivateDensityResult result;
  DPLEARN_ASSIGN_OR_RETURN(result.density, NoisyCountsToDensity(std::move(counts)));
  result.epsilon = epsilon;
  return result;
}

StatusOr<std::vector<double>> EmpiricalHistogram(const Dataset& data, std::size_t bins) {
  DPLEARN_ASSIGN_OR_RETURN(std::vector<std::size_t> categories, CategoriesOf(data, bins));
  std::vector<double> density(bins, 0.0);
  for (std::size_t c : categories) density[c] += 1.0;
  for (double& d : density) d /= static_cast<double>(categories.size());
  return density;
}

}  // namespace dplearn
