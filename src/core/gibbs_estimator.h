#ifndef DPLEARN_CORE_GIBBS_ESTIMATOR_H_
#define DPLEARN_CORE_GIBBS_ESTIMATOR_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "learning/dataset.h"
#include "learning/hypothesis.h"
#include "learning/loss.h"
#include "learning/streaming_risk.h"
#include "mechanisms/exponential.h"
#include "sampling/metropolis.h"
#include "sampling/rng.h"
#include "simd/sparse_vector.h"
#include "util/status.h"

namespace dplearn {

/// The Gibbs estimator / Gibbs posterior (Lemma 3.2 of the paper):
///
///   dπ̂_λ(θ)  =  exp(-λ R̂_Ẑ(θ)) dπ(θ) / E_{θ~π}[exp(-λ R̂_Ẑ(θ))]
///
/// the posterior that minimizes Catoni's PAC-Bayes bound for inverse
/// temperature λ and prior π. The paper's central observation (Theorem 4.1)
/// is that this is EXACTLY the exponential mechanism with quality function
/// q(Ẑ, θ) = -R̂_Ẑ(θ), hence 2λΔ(R̂)-differentially private, where Δ(R̂) is
/// the global sensitivity of the empirical risk (at most B/n for a loss
/// bounded by B).
///
/// This class is the finite-Θ (exactly computable) form; see
/// SampleGibbsContinuous for continuous Θ via MCMC.
class GibbsEstimator {
 public:
  /// `lambda` is the inverse temperature (the paper overloads ε for it).
  /// `prior` must be a distribution over hclass. `loss` must outlive the
  /// estimator. Errors on invalid arguments.
  static StatusOr<GibbsEstimator> Create(const LossFunction* loss,
                                         FiniteHypothesisClass hclass,
                                         std::vector<double> prior, double lambda);

  /// Uniform-prior convenience.
  static StatusOr<GibbsEstimator> CreateUniform(const LossFunction* loss,
                                                FiniteHypothesisClass hclass, double lambda);

  /// The exact posterior π̂_λ(· | data) over hypothesis indices.
  /// Error if data is empty.
  StatusOr<std::vector<double>> Posterior(const Dataset& data) const;

  /// Posterior() pruned to the hypotheses carrying non-negligible mass:
  /// keeps indices with π̂(θ_i) > rel_eps · max_j π̂(θ_j); kept
  /// probabilities are bit-copies of the dense Posterior() entries, so the
  /// dropped mass is < |Θ| · rel_eps. Large λ concentrates the Gibbs
  /// posterior near the ERM (Section 5), so downstream consumers of a
  /// near-point-mass row keep O(1) entries instead of |Θ|. Error if data is
  /// empty or rel_eps outside (0, 1).
  StatusOr<simd::SparseVector> SparsePosterior(const Dataset& data, double rel_eps) const;

  /// The empirical-risk profile R̂_data(θ_i) over the hypothesis class —
  /// the λ-invariant part of every posterior/sample below, served through
  /// the process-wide perf::RiskProfileCache so ε/λ grid sweeps over one
  /// dataset compute it once. Error if data is empty.
  StatusOr<std::vector<double>> RiskProfile(const Dataset& data) const;

  /// Draws one hypothesis index from the posterior.
  StatusOr<std::size_t> Sample(const Dataset& data, Rng* rng) const;

  /// Sample() with the risk profile supplied by the caller — the fast path
  /// for sweeps that evaluate many temperatures/priors against one profile
  /// (λ selection, grid experiments). Bit-identical to Sample() when
  /// `risks` equals RiskProfile(data). Error if risks is empty or sized
  /// differently from the hypothesis class.
  StatusOr<std::size_t> SampleGivenRisks(const std::vector<double>& risks, Rng* rng) const;

  /// Draws `k` posterior indices into *out (resized to k), computing the
  /// risk profile and log-weights once for the whole block — bit- and
  /// stream-identical to k Sample() calls on the same Rng. Error as
  /// Sample(); on error *out is left resized but unspecified.
  Status SampleBatch(const Dataset& data, Rng* rng, std::size_t k,
                     std::vector<std::size_t>* out) const;

  /// Draws one hypothesis index re-tilted from a LIVE streaming profile:
  /// snapshots the profile's current risks (allocation-free in steady
  /// state) and feeds them through the same tilt + Gumbel-max path as
  /// SampleGivenRisks — bit- and stream-identical to
  /// SampleGivenRisks(*profile.Snapshot(), rng). The profile must be built
  /// over this estimator's hypothesis class (sizes are checked; the risks
  /// themselves are the caller's responsibility, as with SampleGivenRisks).
  /// The draw is 2λΔ(R̂)-DP against the profile's LIVE dataset, so Δ = B/n
  /// uses the profile's current size(), not a batch dataset's.
  /// FailedPrecondition on an empty stream; InvalidArgument on a |Θ|
  /// mismatch.
  StatusOr<std::size_t> SampleStreaming(const StreamingRiskProfile& profile,
                                        Rng* rng) const;

  /// Draws `k` indices from the live streaming posterior into *out (resized
  /// to k) — bit- and stream-identical to k SampleStreaming() calls on the
  /// same Rng against an unchanged profile. Error as SampleStreaming().
  Status SampleStreamingBatch(const StreamingRiskProfile& profile, Rng* rng,
                              std::size_t k, std::vector<std::size_t>* out) const;

  /// Draws one parameter vector from the posterior.
  StatusOr<Vector> SampleTheta(const Dataset& data, Rng* rng) const;

  /// E_{θ~π̂}[R̂_Ẑ(θ)] — the first term of the PAC-Bayes objective.
  StatusOr<double> ExpectedEmpiricalRisk(const Dataset& data) const;

  /// D_KL(π̂(·|data) ‖ π) — the second term of the PAC-Bayes objective.
  StatusOr<double> KlToPrior(const Dataset& data) const;

  /// Privacy level from Theorem 4.1: 2·λ·sensitivity, with `sensitivity`
  /// the caller's bound on Δ(R̂) (e.g. loss->UpperBound()/n, or the exact
  /// domain sensitivity from ExactRiskSensitivity). Error if
  /// sensitivity <= 0.
  StatusOr<double> PrivacyGuaranteeEpsilon(double sensitivity) const;

  /// The same object expressed as a McSherry–Talwar exponential mechanism
  /// with q = -R̂ and base measure π — the identification at the heart of
  /// the paper. Tests assert Posterior() == this mechanism's
  /// OutputDistribution() pointwise.
  StatusOr<ExponentialMechanism> AsExponentialMechanism(double sensitivity) const;

  double lambda() const { return lambda_; }
  const FiniteHypothesisClass& hypothesis_class() const { return hclass_; }
  const std::vector<double>& prior() const { return prior_; }
  const LossFunction& loss() const { return *loss_; }

 private:
  /// Unnormalized log posterior weights -λ·R̂(θ_i) + log π(θ_i) written into
  /// *log_w (resized) — the shared per-hypothesis pass behind Sample() and
  /// SampleBatch(), evaluated by the simd::TiltLogWeights kernel against the
  /// log-prior precomputed at construction. The risk profile feeding it
  /// comes from RiskProfile() (cached; runs on the global thread pool for
  /// large problems).
  void LogWeightsFromRisks(const std::vector<double>& risks,
                           std::vector<double>* log_w) const;

  GibbsEstimator(const LossFunction* loss, FiniteHypothesisClass hclass,
                 std::vector<double> prior, double lambda);

  const LossFunction* loss_;  // not owned
  FiniteHypothesisClass hclass_;
  std::vector<double> prior_;
  /// log π(θ_i), with zero-mass atoms at -inf — hoisted out of the sampling
  /// hot path (it is λ/data-invariant, and log() per hypothesis per draw was
  /// a measurable share of SampleGivenRisks).
  std::vector<double> log_prior_;
  double lambda_;
};

/// Computes the Gibbs posterior directly from a risk profile and a prior —
/// the pure math of Lemma 3.2, used by modules that already hold risk
/// vectors (the channel builder, the PAC-Bayes optimizer). Errors on empty
/// or mismatched input, lambda < 0, or invalid prior.
StatusOr<std::vector<double>> GibbsPosteriorFromRisks(const std::vector<double>& risks,
                                                      const std::vector<double>& prior,
                                                      double lambda);

/// Allocation-free core of GibbsPosteriorFromRisks for callers that hold a
/// PRE-VALIDATED prior in log space (log π(θ_i), -inf for zero mass) and an
/// output row to fill: writes the posterior probabilities into out[0..n).
/// out == risks or out == log_prior aliasing is not allowed. The channel
/// builder calls this once per row of an |X|×|Θ| channel with the log-prior
/// hoisted out of the loop. Error if n == 0, lambda < 0, or the weights sum
/// to zero.
Status GibbsPosteriorFromRisksInto(const double* risks, const double* log_prior,
                                   std::size_t n, double lambda, double* out);

/// Continuous-Θ Gibbs sampling: draws `num_samples` parameter vectors from
/// dπ̂ ∝ exp(-λ R̂_Ẑ(θ)) exp(log_prior(θ)) dθ by random-walk Metropolis.
/// `log_prior` is an unnormalized log-density over R^d. The privacy level
/// is still 2λΔ(R̂) in the exact posterior; MCMC approximates it (the
/// approximation gap is measured empirically in the experiments). Errors
/// propagate from RunMetropolis.
StatusOr<MetropolisResult> SampleGibbsContinuous(const LossFunction& loss,
                                                 const Dataset& data,
                                                 const LogDensityFn& log_prior, double lambda,
                                                 const Vector& initial_theta,
                                                 std::size_t num_samples,
                                                 const MetropolisOptions& options, Rng* rng);

}  // namespace dplearn

#endif  // DPLEARN_CORE_GIBBS_ESTIMATOR_H_
