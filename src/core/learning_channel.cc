#include "core/learning_channel.h"

#include <cmath>
#include <limits>
#include <utility>

#include "core/gibbs_estimator.h"
#include "learning/dataset.h"
#include "learning/risk.h"
#include "obs/audit_log.h"
#include "obs/config.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "perf/risk_profile_cache.h"
#include "util/math_util.h"

namespace dplearn {

StatusOr<GibbsLearningChannel> BuildBernoulliGibbsChannel(const BernoulliMeanTask& task,
                                                          std::size_t n,
                                                          const LossFunction& loss,
                                                          const FiniteHypothesisClass& hclass,
                                                          const std::vector<double>& prior,
                                                          double lambda) {
  if (n == 0) return InvalidArgumentError("BuildBernoulliGibbsChannel: n must be positive");
  if (prior.size() != hclass.size()) {
    return InvalidArgumentError("BuildBernoulliGibbsChannel: prior size mismatch");
  }

  obs::TraceSpan span("channel.build");
  if (obs::MetricsEnabled()) {
    static obs::Counter* const builds = obs::GlobalMetrics().GetCounter("channel.builds");
    builds->Increment();
  }
  if (obs::AuditEnabled()) {
    // The channel IS the Gibbs release mechanism; self-report its Theorem
    // 4.1 guarantee 2*lambda*Delta(R-hat) with the generic sensitivity B/n.
    DPLEARN_ASSIGN_OR_RETURN(const double sensitivity,
                             EmpiricalRiskSensitivityBound(loss, n));
    obs::GlobalAuditLog().Record("gibbs.channel", 2.0 * lambda * sensitivity, 0.0,
                                 /*granted=*/true);
  }

  // The prior is row-invariant: validate it once and hoist its log out of
  // the n+1 row builds (GibbsPosteriorFromRisks would redo both per row).
  DPLEARN_RETURN_IF_ERROR(ValidateDistribution(prior, 1e-6));
  std::vector<double> log_prior(prior.size());
  for (std::size_t i = 0; i < prior.size(); ++i) {
    log_prior[i] = prior[i] > 0.0 ? std::log(prior[i])
                                  : -std::numeric_limits<double>::infinity();
  }

  std::vector<std::vector<double>> risk_matrix(n + 1);
  std::vector<std::vector<double>> transition(n + 1);
  std::vector<double> input_marginal(n + 1);

  // One representative dataset with exactly k ones per row; the empirical
  // risk of every hypothesis depends on Ẑ only through k, and consecutive
  // rows differ in one label — walk them by a single SetLabel per step
  // instead of reconstructing n examples each time.
  Dataset representative;
  for (std::size_t i = 0; i < n; ++i) {
    representative.Add(Example{Vector{1.0}, 0.0});
  }
  for (std::size_t k = 0; k <= n; ++k) {
    if (k > 0) DPLEARN_RETURN_IF_ERROR(representative.SetLabel(k - 1, 1.0));
    // Routed through the risk-profile cache: λ sweeps rebuild the channel
    // over the same n+1 representative datasets, and only the Gibbs tilt
    // below depends on λ.
    DPLEARN_ASSIGN_OR_RETURN(risk_matrix[k],
                             perf::CachedRiskProfile(loss, hclass.thetas(), representative));
    // Tilt + softmax straight into the row — same bits as the allocating
    // GibbsPosteriorFromRisks (the kernels are element-wise).
    transition[k].resize(risk_matrix[k].size());
    DPLEARN_RETURN_IF_ERROR(GibbsPosteriorFromRisksInto(risk_matrix[k].data(),
                                                        log_prior.data(),
                                                        risk_matrix[k].size(), lambda,
                                                        transition[k].data()));
    DPLEARN_ASSIGN_OR_RETURN(input_marginal[k], task.DatasetProbability(n, k));
  }

  DPLEARN_ASSIGN_OR_RETURN(DiscreteChannel channel,
                           DiscreteChannel::Create(std::move(transition)));

  std::vector<std::pair<std::size_t, std::size_t>> neighbor_pairs;
  neighbor_pairs.reserve(n);
  for (std::size_t k = 0; k < n; ++k) neighbor_pairs.emplace_back(k, k + 1);

  return GibbsLearningChannel{std::move(channel), std::move(input_marginal),
                              std::move(risk_matrix), std::move(neighbor_pairs)};
}

StatusOr<double> ChannelMutualInformation(const GibbsLearningChannel& channel) {
  return channel.channel.MutualInformation(channel.input_marginal);
}

StatusOr<double> ChannelExpectedEmpiricalRisk(const GibbsLearningChannel& channel) {
  const std::size_t num_inputs = channel.channel.num_inputs();
  if (channel.input_marginal.size() != num_inputs ||
      channel.risk_matrix.size() != num_inputs) {
    return InvalidArgumentError("ChannelExpectedEmpiricalRisk: inconsistent channel");
  }
  double expected = 0.0;
  for (std::size_t k = 0; k < num_inputs; ++k) {
    double row = 0.0;
    for (std::size_t i = 0; i < channel.channel.num_outputs(); ++i) {
      row += channel.channel.TransitionProbability(k, i) * channel.risk_matrix[k][i];
    }
    expected += channel.input_marginal[k] * row;
  }
  return expected;
}

double ChannelPrivacyLevel(const GibbsLearningChannel& channel) {
  return channel.channel.MaxLogRatio(channel.neighbor_pairs);
}

}  // namespace dplearn
