#include "core/dp_verifier.h"

#include <cmath>
#include <limits>

namespace dplearn {
namespace {

/// Updates `result` with the pointwise log-ratio comparison of two
/// distributions (both directions), tagging provenance.
void CompareDistributions(const std::vector<double>& pa, const std::vector<double>& pb,
                          std::size_t base_index, std::size_t neighbor_index,
                          DpAuditResult* result) {
  for (std::size_t u = 0; u < pa.size(); ++u) {
    const double a = pa[u];
    const double b = pb[u];
    if (a == 0.0 && b == 0.0) continue;
    if (a == 0.0 || b == 0.0) {
      result->unbounded = true;
      result->worst_base = base_index;
      result->worst_neighbor = neighbor_index;
      result->worst_output = u;
      continue;
    }
    const double ratio = std::fabs(std::log(a / b));
    if (ratio > result->max_log_ratio) {
      result->max_log_ratio = ratio;
      result->worst_base = base_index;
      result->worst_neighbor = neighbor_index;
      result->worst_output = u;
    }
  }
}

}  // namespace

StatusOr<DpAuditResult> AuditFiniteMechanism(const FiniteOutputMechanism& mechanism,
                                             const std::vector<Dataset>& bases,
                                             const std::vector<Example>& domain) {
  if (!mechanism) return InvalidArgumentError("AuditFiniteMechanism: mechanism must be set");
  if (bases.empty()) return InvalidArgumentError("AuditFiniteMechanism: no base datasets");
  if (domain.empty()) return InvalidArgumentError("AuditFiniteMechanism: empty domain");

  DpAuditResult result;
  for (std::size_t b = 0; b < bases.size(); ++b) {
    DPLEARN_ASSIGN_OR_RETURN(std::vector<double> p_base, mechanism(bases[b]));
    const std::vector<Dataset> neighbors = EnumerateNeighbors(bases[b], domain);
    for (std::size_t k = 0; k < neighbors.size(); ++k) {
      DPLEARN_ASSIGN_OR_RETURN(std::vector<double> p_neighbor, mechanism(neighbors[k]));
      if (p_neighbor.size() != p_base.size()) {
        return InternalError("AuditFiniteMechanism: mechanism changed output arity");
      }
      CompareDistributions(p_base, p_neighbor, b, k, &result);
    }
  }
  return result;
}

StatusOr<DpAuditResult> AuditScalarDensityMechanism(const ScalarDensityFn& density,
                                                    const std::vector<Dataset>& bases,
                                                    const std::vector<Example>& domain,
                                                    const std::vector<double>& probe_outputs) {
  if (!density) {
    return InvalidArgumentError("AuditScalarDensityMechanism: density must be set");
  }
  if (bases.empty() || domain.empty() || probe_outputs.empty()) {
    return InvalidArgumentError("AuditScalarDensityMechanism: empty input");
  }

  DpAuditResult result;
  for (std::size_t b = 0; b < bases.size(); ++b) {
    const std::vector<Dataset> neighbors = EnumerateNeighbors(bases[b], domain);
    for (std::size_t k = 0; k < neighbors.size(); ++k) {
      for (std::size_t o = 0; o < probe_outputs.size(); ++o) {
        const double da = density(bases[b], probe_outputs[o]);
        const double db = density(neighbors[k], probe_outputs[o]);
        if (da == 0.0 && db == 0.0) continue;
        if (da == 0.0 || db == 0.0) {
          result.unbounded = true;
          result.worst_base = b;
          result.worst_neighbor = k;
          result.worst_output = o;
          continue;
        }
        const double ratio = std::fabs(std::log(da / db));
        if (ratio > result.max_log_ratio) {
          result.max_log_ratio = ratio;
          result.worst_base = b;
          result.worst_neighbor = k;
          result.worst_output = o;
        }
      }
    }
  }
  return result;
}

StatusOr<DpAuditResult> SampledAuditPair(const SamplingMechanism& mechanism,
                                         const Dataset& data_a, const Dataset& data_b,
                                         std::size_t num_outputs, std::size_t num_samples,
                                         std::size_t min_count, Rng* rng) {
  if (!mechanism) return InvalidArgumentError("SampledAuditPair: mechanism must be set");
  if (num_outputs == 0) {
    return InvalidArgumentError("SampledAuditPair: num_outputs must be positive");
  }
  if (num_samples == 0) {
    return InvalidArgumentError("SampledAuditPair: num_samples must be positive");
  }
  if (!data_a.IsNeighborOf(data_b)) {
    return InvalidArgumentError("SampledAuditPair: datasets are not neighbors");
  }

  std::vector<std::size_t> count_a(num_outputs, 0);
  std::vector<std::size_t> count_b(num_outputs, 0);
  for (std::size_t i = 0; i < num_samples; ++i) {
    DPLEARN_ASSIGN_OR_RETURN(std::size_t ua, mechanism(data_a, rng));
    DPLEARN_ASSIGN_OR_RETURN(std::size_t ub, mechanism(data_b, rng));
    if (ua >= num_outputs || ub >= num_outputs) {
      return InternalError("SampledAuditPair: mechanism produced out-of-range output");
    }
    ++count_a[ua];
    ++count_b[ub];
  }

  DpAuditResult result;
  for (std::size_t u = 0; u < num_outputs; ++u) {
    const std::size_t ca = count_a[u];
    const std::size_t cb = count_b[u];
    if (ca == 0 && cb == 0) continue;
    if (ca == 0 || cb == 0) {
      if (std::max(ca, cb) >= min_count) {
        result.unbounded = true;
        result.worst_output = u;
      }
      continue;
    }
    const double ratio =
        std::fabs(std::log(static_cast<double>(ca) / static_cast<double>(cb)));
    if (ratio > result.max_log_ratio) {
      result.max_log_ratio = ratio;
      result.worst_output = u;
    }
  }
  return result;
}

}  // namespace dplearn
