#include "core/private_regression.h"

#include <cmath>

#include "core/gibbs_estimator.h"
#include "core/pac_bayes.h"
#include "learning/hypothesis.h"
#include "learning/loss.h"
#include "learning/risk.h"
#include "sampling/distributions.h"
#include "util/math_util.h"

namespace dplearn {
namespace {

/// Builds the tensor-product coefficient grid [-r, r]^d with k points per
/// dimension.
StatusOr<std::vector<Vector>> CoefficientGrid(std::size_t dim, double radius,
                                              std::size_t per_dim) {
  DPLEARN_ASSIGN_OR_RETURN(std::vector<double> axis, Linspace(-radius, radius, per_dim));
  std::vector<Vector> grid;
  double total = std::pow(static_cast<double>(per_dim), static_cast<double>(dim));
  if (total > 200000.0) {
    return InvalidArgumentError(
        "GibbsRegression: grid too large; reduce per_dim or use the continuous variant");
  }
  grid.reserve(static_cast<std::size_t>(total));
  Vector current(dim, 0.0);
  std::function<void(std::size_t)> recurse = [&](std::size_t position) {
    if (position == dim) {
      grid.push_back(current);
      return;
    }
    for (double value : axis) {
      current[position] = value;
      recurse(position + 1);
    }
  };
  recurse(0);
  return grid;
}

}  // namespace

StatusOr<PrivateRegressionResult> GibbsRegression(const Dataset& data,
                                                  const GibbsRegressionOptions& options,
                                                  Rng* rng) {
  if (data.empty()) return InvalidArgumentError("GibbsRegression: empty dataset");
  if (!(options.epsilon > 0.0)) {
    return InvalidArgumentError("GibbsRegression: epsilon must be positive");
  }
  if (!(options.box_radius > 0.0) || options.per_dim < 2) {
    return InvalidArgumentError("GibbsRegression: invalid grid");
  }
  if (!(options.loss_clip > 0.0)) {
    return InvalidArgumentError("GibbsRegression: loss_clip must be positive");
  }
  if (!(options.delta > 0.0) || options.delta >= 1.0) {
    return InvalidArgumentError("GibbsRegression: delta must be in (0,1)");
  }

  const std::size_t dim = data.FeatureDim();
  const std::size_t n = data.size();
  DPLEARN_ASSIGN_OR_RETURN(std::vector<Vector> grid,
                           CoefficientGrid(dim, options.box_radius, options.per_dim));
  DPLEARN_ASSIGN_OR_RETURN(FiniteHypothesisClass hclass,
                           FiniteHypothesisClass::Create(std::move(grid)));

  const ClippedSquaredLoss loss(options.loss_clip);
  // Theorem 4.1 calibration: D(R) <= B/n, so lambda = eps*n/(2B).
  const double lambda =
      options.epsilon * static_cast<double>(n) / (2.0 * options.loss_clip);
  DPLEARN_ASSIGN_OR_RETURN(GibbsEstimator gibbs,
                           GibbsEstimator::CreateUniform(&loss, hclass, lambda));

  PrivateRegressionResult result;
  DPLEARN_ASSIGN_OR_RETURN(result.theta, gibbs.SampleTheta(data, rng));
  DPLEARN_ASSIGN_OR_RETURN(
      double sensitivity, EmpiricalRiskSensitivityBound(loss, n));
  DPLEARN_ASSIGN_OR_RETURN(result.epsilon, gibbs.PrivacyGuaranteeEpsilon(sensitivity));

  // Catoni certificate on the [0,1]-scaled loss, reported in loss units.
  DPLEARN_ASSIGN_OR_RETURN(double emp, gibbs.ExpectedEmpiricalRisk(data));
  DPLEARN_ASSIGN_OR_RETURN(double kl, gibbs.KlToPrior(data));
  DPLEARN_ASSIGN_OR_RETURN(
      double bound, CatoniHighProbabilityBound(emp / options.loss_clip,
                                               kl, lambda * options.loss_clip, n,
                                               options.delta));
  result.risk_certificate = bound * options.loss_clip;
  result.expected_empirical_risk = emp;
  return result;
}

StatusOr<PrivateRegressionResult> ContinuousGibbsRegression(
    const Dataset& data, const ContinuousGibbsRegressionOptions& options, Rng* rng) {
  if (data.empty()) {
    return InvalidArgumentError("ContinuousGibbsRegression: empty dataset");
  }
  if (!(options.epsilon > 0.0)) {
    return InvalidArgumentError("ContinuousGibbsRegression: epsilon must be positive");
  }
  if (!(options.prior_stddev > 0.0)) {
    return InvalidArgumentError("ContinuousGibbsRegression: prior_stddev must be positive");
  }
  if (!(options.loss_clip > 0.0)) {
    return InvalidArgumentError("ContinuousGibbsRegression: loss_clip must be positive");
  }

  const std::size_t dim = data.FeatureDim();
  const std::size_t n = data.size();
  const ClippedSquaredLoss loss(options.loss_clip);
  const double lambda =
      options.epsilon * static_cast<double>(n) / (2.0 * options.loss_clip);

  const double prior_stddev = options.prior_stddev;
  LogDensityFn log_prior = [prior_stddev](const Vector& theta) {
    double lp = 0.0;
    for (double t : theta) lp += NormalLogPdf(t, 0.0, prior_stddev);
    return lp;
  };

  DPLEARN_ASSIGN_OR_RETURN(
      MetropolisResult chain,
      SampleGibbsContinuous(loss, data, log_prior, lambda, Vector(dim, 0.0),
                            options.mcmc_samples, options.mcmc, rng));

  PrivateRegressionResult result;
  result.theta = chain.samples.back();  // one draw == the DP release
  result.epsilon = options.epsilon;

  // Monte-Carlo PAC-Bayes diagnostics from the chain (the KL to the prior
  // is not directly available from samples; report the empirical-risk term
  // and leave the certificate to the grid variant).
  double emp = 0.0;
  for (const Vector& theta : chain.samples) {
    DPLEARN_ASSIGN_OR_RETURN(double risk, EmpiricalRisk(loss, theta, data));
    emp += risk;
  }
  result.expected_empirical_risk = emp / static_cast<double>(chain.samples.size());
  result.risk_certificate = 0.0;  // not computed for the MCMC variant
  return result;
}

}  // namespace dplearn
