#include "core/gibbs_estimator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "learning/risk.h"
#include "obs/audit_log.h"
#include "obs/config.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "perf/risk_profile_cache.h"
#include "sampling/distributions.h"
#include "simd/kernels.h"
#include "util/math_util.h"

namespace dplearn {

GibbsEstimator::GibbsEstimator(const LossFunction* loss, FiniteHypothesisClass hclass,
                               std::vector<double> prior, double lambda)
    : loss_(loss), hclass_(std::move(hclass)), prior_(std::move(prior)), lambda_(lambda) {
  log_prior_.resize(prior_.size());
  for (std::size_t i = 0; i < prior_.size(); ++i) {
    log_prior_[i] = prior_[i] > 0.0 ? std::log(prior_[i])
                                    : -std::numeric_limits<double>::infinity();
  }
}

StatusOr<GibbsEstimator> GibbsEstimator::Create(const LossFunction* loss,
                                                FiniteHypothesisClass hclass,
                                                std::vector<double> prior, double lambda) {
  if (loss == nullptr) return InvalidArgumentError("GibbsEstimator: loss must be set");
  if (prior.size() != hclass.size()) {
    return InvalidArgumentError("GibbsEstimator: prior size mismatch");
  }
  DPLEARN_RETURN_IF_ERROR(ValidateDistribution(prior, 1e-6));
  if (!(lambda >= 0.0)) {
    return InvalidArgumentError("GibbsEstimator: lambda must be non-negative");
  }
  return GibbsEstimator(loss, std::move(hclass), std::move(prior), lambda);
}

StatusOr<GibbsEstimator> GibbsEstimator::CreateUniform(const LossFunction* loss,
                                                       FiniteHypothesisClass hclass,
                                                       double lambda) {
  std::vector<double> prior = hclass.UniformPrior();
  return Create(loss, std::move(hclass), std::move(prior), lambda);
}

StatusOr<std::vector<double>> GibbsEstimator::Posterior(const Dataset& data) const {
  obs::TraceSpan span("gibbs.posterior");
  if (obs::MetricsEnabled()) {
    static obs::Counter* const builds =
        obs::GlobalMetrics().GetCounter("gibbs.posterior_builds");
    builds->Increment();
  }
  DPLEARN_ASSIGN_OR_RETURN(std::vector<double> risks, RiskProfile(data));
  return GibbsPosteriorFromRisks(risks, prior_, lambda_);
}

StatusOr<simd::SparseVector> GibbsEstimator::SparsePosterior(const Dataset& data,
                                                             double rel_eps) const {
  if (!(rel_eps > 0.0 && rel_eps < 1.0)) {
    return InvalidArgumentError("SparsePosterior: rel_eps must be in (0, 1)");
  }
  DPLEARN_ASSIGN_OR_RETURN(std::vector<double> posterior, Posterior(data));
  double max_p = 0.0;
  for (const double p : posterior) max_p = std::max(max_p, p);
  // Kept entries are bit-copies of the dense posterior; each dropped one is
  // <= rel_eps * max_p <= rel_eps, so total dropped mass < |Θ| * rel_eps.
  return simd::SparseVector::FromDense(posterior.data(), posterior.size(),
                                       rel_eps * max_p);
}

StatusOr<std::vector<double>> GibbsEstimator::RiskProfile(const Dataset& data) const {
  // The per-hypothesis risk profile is the hot loop of Posterior(), Sample()
  // and every PAC-Bayes term below, and it is λ/prior-invariant — so it goes
  // through the process-wide cache. A miss falls through to
  // EmpiricalRiskProfile, which parallelizes over the global pool for large
  // |Θ|·n with bit-identical results at any thread count (each hypothesis
  // keeps its serial inner loop).
  obs::TraceSpan span("gibbs.risk_profile");
  return perf::CachedRiskProfile(*loss_, hclass_.thetas(), data);
}

StatusOr<std::size_t> GibbsEstimator::Sample(const Dataset& data, Rng* rng) const {
  DPLEARN_ASSIGN_OR_RETURN(std::vector<double> risks, RiskProfile(data));
  return SampleGivenRisks(risks, rng);
}

StatusOr<std::size_t> GibbsEstimator::SampleGivenRisks(const std::vector<double>& risks,
                                                       Rng* rng) const {
  obs::TraceSpan span("gibbs.sample");
  if (obs::MetricsEnabled()) {
    static obs::Counter* const samples = obs::GlobalMetrics().GetCounter("gibbs.samples");
    samples->Increment();
  }
  if (risks.size() != hclass_.size()) {
    return InvalidArgumentError("SampleGivenRisks: risk profile size mismatch");
  }
  // λ-selection sweeps call this thousands of times per profile; the
  // thread-local scratch pair keeps the steady state allocation-free
  // (pinned by tests/perf_alloc_test) while staying stream-identical to
  // the allocating SampleFromLogWeights overload.
  thread_local std::vector<double> log_w;
  thread_local std::vector<double> uniforms;
  LogWeightsFromRisks(risks, &log_w);
  return SampleFromLogWeights(rng, log_w, &uniforms);
}

Status GibbsEstimator::SampleBatch(const Dataset& data, Rng* rng, std::size_t k,
                                   std::vector<std::size_t>* out) const {
  if (out == nullptr) return InvalidArgumentError("SampleBatch: out must be set");
  obs::TraceSpan span("gibbs.sample_batch");
  if (obs::MetricsEnabled()) {
    static obs::Counter* const samples = obs::GlobalMetrics().GetCounter("gibbs.samples");
    samples->Increment(k);
  }
  DPLEARN_ASSIGN_OR_RETURN(std::vector<double> risks, RiskProfile(data));
  thread_local std::vector<double> log_w;
  LogWeightsFromRisks(risks, &log_w);
  return SampleFromLogWeightsBatch(rng, log_w, k, out);
}

StatusOr<std::size_t> GibbsEstimator::SampleStreaming(const StreamingRiskProfile& profile,
                                                      Rng* rng) const {
  obs::TraceSpan span("gibbs.sample_streaming");
  if (profile.num_hypotheses() != hclass_.size()) {
    return InvalidArgumentError("SampleStreaming: profile hypothesis count mismatch");
  }
  // Snapshot into thread-local scratch (pre-sized after the first call), then
  // reuse the exact SampleGivenRisks path — same bits, zero steady-state
  // allocations (pinned by tests/perf_alloc_test).
  thread_local std::vector<double> risks;
  DPLEARN_RETURN_IF_ERROR(profile.SnapshotInto(&risks));
  return SampleGivenRisks(risks, rng);
}

Status GibbsEstimator::SampleStreamingBatch(const StreamingRiskProfile& profile, Rng* rng,
                                            std::size_t k,
                                            std::vector<std::size_t>* out) const {
  if (out == nullptr) return InvalidArgumentError("SampleStreamingBatch: out must be set");
  obs::TraceSpan span("gibbs.sample_streaming_batch");
  if (obs::MetricsEnabled()) {
    static obs::Counter* const samples = obs::GlobalMetrics().GetCounter("gibbs.samples");
    samples->Increment(k);
  }
  if (profile.num_hypotheses() != hclass_.size()) {
    return InvalidArgumentError("SampleStreamingBatch: profile hypothesis count mismatch");
  }
  thread_local std::vector<double> risks;
  DPLEARN_RETURN_IF_ERROR(profile.SnapshotInto(&risks));
  thread_local std::vector<double> log_w;
  LogWeightsFromRisks(risks, &log_w);
  return SampleFromLogWeightsBatch(rng, log_w, k, out);
}

void GibbsEstimator::LogWeightsFromRisks(const std::vector<double>& risks,
                                         std::vector<double>* log_w) const {
  log_w->resize(risks.size());
  // -λ·R̂ + log π via the shared tilt kernel: ε·q + log π with q = -R̂ is
  // bitwise the same operation (Theorem 4.1 made numerically literal).
  simd::TiltLogWeights(risks.data(), log_prior_.data(), risks.size(), -lambda_,
                       log_w->data());
}

StatusOr<Vector> GibbsEstimator::SampleTheta(const Dataset& data, Rng* rng) const {
  DPLEARN_ASSIGN_OR_RETURN(std::size_t index, Sample(data, rng));
  return hclass_.at(index);
}

StatusOr<double> GibbsEstimator::ExpectedEmpiricalRisk(const Dataset& data) const {
  DPLEARN_ASSIGN_OR_RETURN(std::vector<double> risks, RiskProfile(data));
  DPLEARN_ASSIGN_OR_RETURN(std::vector<double> posterior,
                           GibbsPosteriorFromRisks(risks, prior_, lambda_));
  double expected = 0.0;
  for (std::size_t i = 0; i < risks.size(); ++i) expected += posterior[i] * risks[i];
  return expected;
}

StatusOr<double> GibbsEstimator::KlToPrior(const Dataset& data) const {
  DPLEARN_ASSIGN_OR_RETURN(std::vector<double> posterior, Posterior(data));
  double kl = 0.0;
  for (std::size_t i = 0; i < posterior.size(); ++i) {
    const double term = XLogXOverY(posterior[i], prior_[i]);
    if (std::isinf(term)) return std::numeric_limits<double>::infinity();
    kl += term;
  }
  return ClampRoundingNegative(kl);
}

StatusOr<double> GibbsEstimator::PrivacyGuaranteeEpsilon(double sensitivity) const {
  if (!(sensitivity > 0.0)) {
    return InvalidArgumentError("PrivacyGuaranteeEpsilon: sensitivity must be positive");
  }
  return 2.0 * lambda_ * sensitivity;
}

StatusOr<ExponentialMechanism> GibbsEstimator::AsExponentialMechanism(
    double sensitivity) const {
  if (!(sensitivity > 0.0)) {
    return InvalidArgumentError("AsExponentialMechanism: sensitivity must be positive");
  }
  const LossFunction* loss = loss_;
  // Capture hypotheses by value so the mechanism is self-contained.
  std::vector<Vector> thetas = hclass_.thetas();
  QualityFn quality = [loss, thetas](const Dataset& data, std::size_t u) {
    // q(Ẑ, θ_u) = -R̂_Ẑ(θ_u). EmpiricalRisk only fails on an empty dataset,
    // which OutputDistribution/Sample reject upstream.
    auto risk = EmpiricalRisk(*loss, thetas[u], data);
    return risk.ok() ? -risk.value() : 0.0;
  };
  return ExponentialMechanism::Create(std::move(quality), hclass_.size(), prior_, lambda_,
                                      sensitivity);
}

StatusOr<std::vector<double>> GibbsPosteriorFromRisks(const std::vector<double>& risks,
                                                      const std::vector<double>& prior,
                                                      double lambda) {
  if (risks.empty() || risks.size() != prior.size()) {
    return InvalidArgumentError("GibbsPosteriorFromRisks: empty or mismatched input");
  }
  DPLEARN_RETURN_IF_ERROR(ValidateDistribution(prior, 1e-6));
  if (!(lambda >= 0.0)) {
    return InvalidArgumentError("GibbsPosteriorFromRisks: lambda must be non-negative");
  }
  std::vector<double> log_prior(prior.size());
  for (std::size_t i = 0; i < prior.size(); ++i) {
    log_prior[i] = prior[i] > 0.0 ? std::log(prior[i])
                                  : -std::numeric_limits<double>::infinity();
  }
  std::vector<double> posterior(risks.size());
  DPLEARN_RETURN_IF_ERROR(GibbsPosteriorFromRisksInto(risks.data(), log_prior.data(),
                                                      risks.size(), lambda,
                                                      posterior.data()));
  return posterior;
}

Status GibbsPosteriorFromRisksInto(const double* risks, const double* log_prior,
                                   std::size_t n, double lambda, double* out) {
  if (n == 0) return InvalidArgumentError("GibbsPosteriorFromRisks: empty input");
  if (!(lambda >= 0.0)) {
    return InvalidArgumentError("GibbsPosteriorFromRisks: lambda must be non-negative");
  }
  // Tilt into the output row, then softmax it in place — the kernels allow
  // aliasing, so a channel row is built with zero scratch.
  simd::TiltLogWeights(risks, log_prior, n, -lambda, out);
  return SoftmaxFromLogInto(out, n, out);
}

StatusOr<MetropolisResult> SampleGibbsContinuous(const LossFunction& loss,
                                                 const Dataset& data,
                                                 const LogDensityFn& log_prior, double lambda,
                                                 const Vector& initial_theta,
                                                 std::size_t num_samples,
                                                 const MetropolisOptions& options, Rng* rng) {
  if (data.empty()) return InvalidArgumentError("SampleGibbsContinuous: empty dataset");
  if (!(lambda >= 0.0)) {
    return InvalidArgumentError("SampleGibbsContinuous: lambda must be non-negative");
  }
  if (!log_prior) {
    return InvalidArgumentError("SampleGibbsContinuous: log_prior must be set");
  }
  obs::TraceSpan span("gibbs.mcmc");
  if (obs::MetricsEnabled()) {
    static obs::Counter* const runs = obs::GlobalMetrics().GetCounter("gibbs.mcmc_runs");
    runs->Increment();
  }
  if (obs::AuditEnabled()) {
    // Self-report the exact-posterior guarantee 2*lambda*Delta(R-hat) that
    // this chain approximates (the MCMC gap is measured, not certified).
    DPLEARN_ASSIGN_OR_RETURN(const double sensitivity,
                             EmpiricalRiskSensitivityBound(loss, data.size()));
    obs::GlobalAuditLog().Record("gibbs.mcmc", 2.0 * lambda * sensitivity, 0.0,
                                 /*granted=*/true);
  }
  LogDensityFn target = [&loss, &data, &log_prior, lambda](const Vector& theta) {
    const double lp = log_prior(theta);
    if (!std::isfinite(lp)) return lp;
    auto risk = EmpiricalRisk(loss, theta, data);
    return -lambda * risk.value() + lp;
  };
  return RunMetropolis(target, initial_theta, num_samples, options, rng);
}

}  // namespace dplearn
