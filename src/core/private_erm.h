#ifndef DPLEARN_CORE_PRIVATE_ERM_H_
#define DPLEARN_CORE_PRIVATE_ERM_H_

#include <cstddef>

#include "learning/dataset.h"
#include "learning/erm.h"
#include "learning/loss.h"
#include "sampling/rng.h"
#include "util/matrix.h"
#include "util/status.h"

namespace dplearn {

/// The differentially-private ERM algorithms of Chaudhuri–Monteleoni (NIPS
/// 2008) and Chaudhuri–Monteleoni–Sarwate (JMLR 2011), which the paper cites
/// as the prior methodology ("use generalization bounds to compute a
/// differentially-private predictor"). They are the baselines the Gibbs /
/// exponential-mechanism learner is compared against in the privacy–utility
/// experiment (E7).
///
/// Both require an L2-regularized convex objective
///   J(θ) = (1/n) Σ l(θ, z_i) + (λ/2)||θ||²
/// with an L-Lipschitz, differentiable loss (per example, in θ, for
/// ||x|| <= 1-normalized features).

/// Configuration shared by both perturbation schemes.
struct PrivateErmOptions {
  /// Privacy parameter ε of the output (pure ε-DP).
  double epsilon = 1.0;
  /// L2 regularization strength λ (must be > 0: the sensitivity analysis
  /// relies on strong convexity).
  double l2_lambda = 0.1;
  /// Lipschitz constant L of the per-example loss gradient bound
  /// (|l'| <= L; logistic loss with ||x||<=1 has L = 1).
  double lipschitz = 1.0;
  /// Smoothness constant c: upper bound on the per-example loss's second
  /// derivative (logistic with ||x||<=1 has c = 1/4). Objective
  /// perturbation only.
  double smoothness = 0.25;
  /// Inner solver configuration.
  GradientErmOptions solver;
};

/// Result of a private ERM run.
struct PrivateErmResult {
  Vector theta;
  /// The ε actually guaranteed (== options.epsilon for output perturbation;
  /// objective perturbation may spend part of ε on a λ adjustment).
  double epsilon_spent = 0.0;
  /// Diagnostics from the inner solver.
  GradientErmResult solver_result;
};

/// Output perturbation ("sensitivity method"): solve the non-private ERM,
/// then add noise b with density ∝ exp(-ε ||b|| / β), β = 2L/(nλ), the L2
/// sensitivity of the regularized minimizer. ε-DP by the Laplace-mechanism
/// argument in L2 norm. Errors on invalid options or solver failure.
StatusOr<PrivateErmResult> OutputPerturbationErm(const LossFunction& loss,
                                                 const Dataset& data,
                                                 const PrivateErmOptions& options, Rng* rng);

/// The ε-invariant half of output perturbation: the regularized non-private
/// solve, which depends only on (loss, data, l2_lambda/solver options) —
/// never on options.epsilon and never on the Rng. Privacy–utility sweeps
/// call this once per dataset and then release at every ε on the grid via
/// ReleaseOutputPerturbation, skipping the solve (by far the dominant cost)
/// on all but the first cell. Errors as OutputPerturbationErm.
StatusOr<GradientErmResult> SolveNonPrivateErm(const LossFunction& loss, const Dataset& data,
                                               const PrivateErmOptions& options);

/// The ε-dependent half: draws the Gamma-norm noise for `options.epsilon`
/// and adds it to the solved minimizer. `n` and `d` are the dataset size
/// and feature dimension the solve ran on. OutputPerturbationErm(loss,
/// data, options, rng) is bit-identical to SolveNonPrivateErm followed by
/// this call — the solve consumes no randomness, so the noise draw sees the
/// same Rng stream either way. Errors on invalid options, n == 0, or d == 0.
StatusOr<PrivateErmResult> ReleaseOutputPerturbation(const GradientErmResult& erm,
                                                     std::size_t n, std::size_t d,
                                                     const PrivateErmOptions& options,
                                                     Rng* rng);

/// Objective perturbation: add a random linear term (b·θ)/n to the
/// objective before solving, with ||b|| ~ Gamma(d, 2/ε') and uniform
/// direction. Requires ε' = ε - 2 ln(1 + c/(nλ)) > 0; if not, the
/// regularizer is raised to Δ = c/(n(e^{ε/4}-1)) - λ and ε' = ε/2
/// (the CMS'11 Algorithm 2 adjustment). Generally more accurate than
/// output perturbation at the same ε. Errors on invalid options or solver
/// failure.
StatusOr<PrivateErmResult> ObjectivePerturbationErm(const LossFunction& loss,
                                                    const Dataset& data,
                                                    const PrivateErmOptions& options,
                                                    Rng* rng);

}  // namespace dplearn

#endif  // DPLEARN_CORE_PRIVATE_ERM_H_
