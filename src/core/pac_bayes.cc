#include "core/pac_bayes.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/math_util.h"

namespace dplearn {
namespace {

Status ValidateCommon(double lambda, std::size_t n) {
  if (!(lambda > 0.0)) return InvalidArgumentError("PAC-Bayes: lambda must be positive");
  if (n == 0) return InvalidArgumentError("PAC-Bayes: n must be positive");
  return Status::Ok();
}

Status ValidateDelta(double delta) {
  if (!(delta > 0.0) || delta >= 1.0) {
    return InvalidArgumentError("PAC-Bayes: delta must be in (0,1)");
  }
  return Status::Ok();
}

}  // namespace

StatusOr<double> CatoniHighProbabilityBound(double expected_empirical_risk, double kl,
                                            double lambda, std::size_t n, double delta) {
  DPLEARN_RETURN_IF_ERROR(ValidateCommon(lambda, n));
  DPLEARN_RETURN_IF_ERROR(ValidateDelta(delta));
  if (expected_empirical_risk < 0.0 || kl < 0.0) {
    return InvalidArgumentError("CatoniHighProbabilityBound: risk and KL must be >= 0");
  }
  const double nd = static_cast<double>(n);
  const double exponent =
      (lambda / nd) * expected_empirical_risk + (kl + std::log(1.0 / delta)) / nd;
  const double numerator = -std::expm1(-exponent);      // 1 - e^{-exponent}
  const double denominator = -std::expm1(-lambda / nd);  // 1 - e^{-lambda/n}
  return std::min(1.0, numerator / denominator);
}

StatusOr<double> CatoniExpectationBound(double expected_objective, double lambda,
                                        std::size_t n) {
  DPLEARN_RETURN_IF_ERROR(ValidateCommon(lambda, n));
  if (expected_objective < 0.0) {
    return InvalidArgumentError("CatoniExpectationBound: objective must be >= 0");
  }
  const double nd = static_cast<double>(n);
  const double exponent = (lambda / nd) * expected_objective;
  const double numerator = -std::expm1(-exponent);
  const double denominator = -std::expm1(-lambda / nd);
  return std::min(1.0, numerator / denominator);
}

StatusOr<double> CatoniLinearizedBound(double expected_empirical_risk, double kl,
                                       double lambda, std::size_t n, double delta) {
  DPLEARN_RETURN_IF_ERROR(ValidateCommon(lambda, n));
  DPLEARN_RETURN_IF_ERROR(ValidateDelta(delta));
  if (expected_empirical_risk < 0.0 || kl < 0.0) {
    return InvalidArgumentError("CatoniLinearizedBound: risk and KL must be >= 0");
  }
  const double contraction = CatoniContractionFactor(lambda, static_cast<double>(n));
  return (expected_empirical_risk + (kl + std::log(1.0 / delta)) / lambda) / contraction;
}

StatusOr<double> McAllesterBound(double expected_empirical_risk, double kl, std::size_t n,
                                 double delta) {
  if (n == 0) return InvalidArgumentError("McAllesterBound: n must be positive");
  DPLEARN_RETURN_IF_ERROR(ValidateDelta(delta));
  if (expected_empirical_risk < 0.0 || kl < 0.0) {
    return InvalidArgumentError("McAllesterBound: risk and KL must be >= 0");
  }
  const double nd = static_cast<double>(n);
  const double slack = (kl + std::log(2.0 * std::sqrt(nd) / delta)) / (2.0 * nd);
  return expected_empirical_risk + std::sqrt(slack);
}

StatusOr<double> PacBayesObjective(const std::vector<double>& posterior,
                                   const std::vector<double>& risks,
                                   const std::vector<double>& prior, double lambda) {
  if (posterior.size() != risks.size() || posterior.size() != prior.size() ||
      posterior.empty()) {
    return InvalidArgumentError("PacBayesObjective: empty or mismatched input");
  }
  if (!(lambda > 0.0)) {
    return InvalidArgumentError("PacBayesObjective: lambda must be positive");
  }
  DPLEARN_RETURN_IF_ERROR(ValidateDistribution(posterior, 1e-6));
  DPLEARN_RETURN_IF_ERROR(ValidateDistribution(prior, 1e-6));
  double expected_risk = 0.0;
  double kl = 0.0;
  for (std::size_t i = 0; i < posterior.size(); ++i) {
    expected_risk += posterior[i] * risks[i];
    const double term = XLogXOverY(posterior[i], prior[i]);
    if (std::isinf(term)) return std::numeric_limits<double>::infinity();
    kl += term;
  }
  return expected_risk + std::max(0.0, kl) / lambda;
}

StatusOr<double> PacBayesObjectiveMinimum(const std::vector<double>& risks,
                                          const std::vector<double>& prior, double lambda) {
  if (risks.empty() || risks.size() != prior.size()) {
    return InvalidArgumentError("PacBayesObjectiveMinimum: empty or mismatched input");
  }
  if (!(lambda > 0.0)) {
    return InvalidArgumentError("PacBayesObjectiveMinimum: lambda must be positive");
  }
  DPLEARN_RETURN_IF_ERROR(ValidateDistribution(prior, 1e-6));
  std::vector<double> log_terms(risks.size());
  for (std::size_t i = 0; i < risks.size(); ++i) {
    const double log_prior = prior[i] > 0.0 ? std::log(prior[i])
                                            : -std::numeric_limits<double>::infinity();
    log_terms[i] = log_prior - lambda * risks[i];
  }
  // min F = -(1/lambda) * ln sum_i pi_i exp(-lambda r_i).
  return -LogSumExp(log_terms) / lambda;
}

double SuggestLambda(std::size_t n, double kl_scale) {
  const double nd = static_cast<double>(n);
  const double lambda = std::sqrt(2.0 * nd * std::max(kl_scale, 1e-12));
  return Clamp(lambda, 1.0, nd);
}

}  // namespace dplearn
