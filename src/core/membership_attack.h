#ifndef DPLEARN_CORE_MEMBERSHIP_ATTACK_H_
#define DPLEARN_CORE_MEMBERSHIP_ATTACK_H_

#include <cstddef>
#include <functional>

#include "learning/dataset.h"
#include "sampling/rng.h"
#include "util/status.h"

namespace dplearn {

/// Membership-inference attacks against finite-output learning mechanisms —
/// the operational meaning of the paper's channel view. If the predictor θ
/// carries I(Ẑ;θ) nats about the sample, an adversary can convert that
/// information into guesses about individual records; ε-DP caps ANY such
/// adversary's advantage at (e^ε − 1)/(e^ε + 1) for the balanced
/// replace-one game. This module plays the game against the actual
/// mechanism and reports the measured advantage next to the bound.

/// A mechanism exposed through its exact finite output distribution (same
/// contract as the DP verifier's).
using AttackTargetMechanism =
    std::function<StatusOr<std::vector<double>>(const Dataset&)>;

/// Result of a simulated membership-inference game.
struct MembershipAttackResult {
  /// P(adversary guesses correctly) over the balanced game.
  double accuracy = 0.5;
  /// advantage = 2*accuracy - 1, in [0, 1].
  double advantage = 0.0;
  /// The DP cap (e^eps - 1)/(e^eps + 1) for the epsilon supplied.
  double dp_advantage_bound = 0.0;
  /// Number of game rounds played.
  std::size_t rounds = 0;
};

/// Plays the balanced replace-one membership game:
///   a coin picks world 0 (dataset = base) or world 1 (dataset = base with
///   record `index` replaced by `replacement`); the mechanism releases one
///   output; the BAYES-OPTIMAL adversary (who knows both exact output
///   distributions) guesses the world by likelihood ratio.
/// The Bayes accuracy equals 1/2 + TV(P0, P1)/2, computed in closed form
/// from the exact distributions — no sampling noise. `claimed_epsilon`
/// fills the bound field. Errors on invalid inputs.
StatusOr<MembershipAttackResult> BayesMembershipAttack(
    const AttackTargetMechanism& mechanism, const Dataset& base, std::size_t index,
    const Example& replacement, double claimed_epsilon);

/// Monte-Carlo version for mechanisms only exposed through sampling: plays
/// `rounds` rounds with a likelihood-ratio adversary built from the exact
/// distributions (supplied separately); reports empirical accuracy. Used
/// to validate that the closed form matches a simulated adversary.
using SamplingAttackTarget = std::function<StatusOr<std::size_t>(const Dataset&, Rng*)>;
StatusOr<MembershipAttackResult> SimulatedMembershipAttack(
    const SamplingAttackTarget& mechanism, const AttackTargetMechanism& exact_distributions,
    const Dataset& base, std::size_t index, const Example& replacement,
    double claimed_epsilon, std::size_t rounds, Rng* rng);

/// The DP advantage cap (e^eps - 1)/(e^eps + 1). Error if eps < 0.
StatusOr<double> DpMembershipAdvantageBound(double epsilon);

}  // namespace dplearn

#endif  // DPLEARN_CORE_MEMBERSHIP_ATTACK_H_
