#ifndef DPLEARN_CORE_LAMBDA_SELECTION_H_
#define DPLEARN_CORE_LAMBDA_SELECTION_H_

#include <cstddef>
#include <vector>

#include "learning/dataset.h"
#include "learning/hypothesis.h"
#include "learning/loss.h"
#include "sampling/rng.h"
#include "util/status.h"

namespace dplearn {

/// Differentially-private selection of the Gibbs temperature λ.
///
/// Theorem 4.2 reads λ as the privacy dial, but in deployments λ is also a
/// hyperparameter trading bound tightness against fit, and tuning it on
/// the data without accounting leaks privacy. This module selects λ from a
/// public grid with the exponential mechanism on a validation split —
/// spending ε_select on the choice and ε_train on the final Gibbs release,
/// so the whole pipeline carries an explicit end-to-end budget (basic
/// sequential composition).

/// Result of a private λ selection + training run.
struct PrivateLambdaSelectionResult {
  /// Index into the candidate λ grid that was selected.
  std::size_t selected_index = 0;
  /// The selected λ.
  double lambda = 0.0;
  /// The released predictor (sampled from the Gibbs posterior at λ on the
  /// training split).
  Vector theta;
  /// Total privacy spent: eps_select + eps_train.
  double total_epsilon = 0.0;
};

/// Configuration.
struct LambdaSelectionOptions {
  /// Public grid of candidate temperatures (must be non-empty, positive).
  std::vector<double> lambda_grid = {1.0, 4.0, 16.0, 64.0};
  /// Budget spent selecting λ (exponential mechanism over the grid,
  /// quality = -validation risk of a Gibbs draw at that λ).
  double selection_epsilon = 0.5;
  /// Budget spent on the final Gibbs release.
  double training_epsilon = 0.5;
  /// Fraction of data used for training (rest validates candidates).
  double train_fraction = 0.7;
};

/// Runs the pipeline: split -> per-λ Gibbs draw on train -> exponential
/// mechanism over validation risks -> final Gibbs release at the winner.
/// The selection step's quality function is the validation empirical risk
/// of a FIXED per-candidate draw, whose sensitivity is B/n_val. Errors on
/// invalid options or empty data.
StatusOr<PrivateLambdaSelectionResult> SelectLambdaAndTrain(
    const LossFunction& loss, const FiniteHypothesisClass& hclass, const Dataset& data,
    const LambdaSelectionOptions& options, Rng* rng);

/// Non-private baseline: pick the λ whose Gibbs draw has the best
/// validation risk (no noise) — the thing practitioners do when they
/// forget selection leaks. For the ablation experiment.
StatusOr<PrivateLambdaSelectionResult> SelectLambdaNonPrivate(
    const LossFunction& loss, const FiniteHypothesisClass& hclass, const Dataset& data,
    const LambdaSelectionOptions& options, Rng* rng);

}  // namespace dplearn

#endif  // DPLEARN_CORE_LAMBDA_SELECTION_H_
