#include "core/lambda_selection.h"

#include <cmath>
#include <limits>

#include "core/gibbs_estimator.h"
#include "learning/risk.h"
#include "sampling/distributions.h"

namespace dplearn {
namespace {

Status ValidateOptions(const LambdaSelectionOptions& options) {
  if (options.lambda_grid.empty()) {
    return InvalidArgumentError("LambdaSelection: empty lambda grid");
  }
  for (double lambda : options.lambda_grid) {
    if (!(lambda > 0.0)) {
      return InvalidArgumentError("LambdaSelection: lambdas must be positive");
    }
  }
  if (!(options.selection_epsilon > 0.0) || !(options.training_epsilon > 0.0)) {
    return InvalidArgumentError("LambdaSelection: epsilons must be positive");
  }
  if (options.train_fraction <= 0.0 || options.train_fraction >= 1.0) {
    return InvalidArgumentError("LambdaSelection: train_fraction must be in (0,1)");
  }
  return Status::Ok();
}

/// Draws one Gibbs predictor per candidate λ on `train` and returns the
/// validation risks of those draws. The train risk profile is λ-invariant,
/// so it is computed once (through the risk-profile cache) and every
/// candidate temperature samples against it — bit-identical to per-λ
/// SampleTheta calls, minus |grid|-1 full passes over train × Θ.
StatusOr<std::pair<std::vector<Vector>, std::vector<double>>> CandidateDrawsAndRisks(
    const LossFunction& loss, const FiniteHypothesisClass& hclass, const Dataset& train,
    const Dataset& validation, const std::vector<double>& lambda_grid, Rng* rng) {
  std::vector<Vector> draws;
  std::vector<double> risks;
  draws.reserve(lambda_grid.size());
  risks.reserve(lambda_grid.size());
  std::vector<double> train_risks;
  for (double lambda : lambda_grid) {
    DPLEARN_ASSIGN_OR_RETURN(GibbsEstimator gibbs,
                             GibbsEstimator::CreateUniform(&loss, hclass, lambda));
    if (train_risks.empty()) {
      DPLEARN_ASSIGN_OR_RETURN(train_risks, gibbs.RiskProfile(train));
    }
    DPLEARN_ASSIGN_OR_RETURN(std::size_t index, gibbs.SampleGivenRisks(train_risks, rng));
    Vector theta = hclass.at(index);
    DPLEARN_ASSIGN_OR_RETURN(double risk, EmpiricalRisk(loss, theta, validation));
    draws.push_back(std::move(theta));
    risks.push_back(risk);
  }
  return std::make_pair(std::move(draws), std::move(risks));
}

}  // namespace

StatusOr<PrivateLambdaSelectionResult> SelectLambdaAndTrain(
    const LossFunction& loss, const FiniteHypothesisClass& hclass, const Dataset& data,
    const LambdaSelectionOptions& options, Rng* rng) {
  DPLEARN_RETURN_IF_ERROR(ValidateOptions(options));
  if (data.size() < 4) {
    return InvalidArgumentError("SelectLambdaAndTrain: need at least 4 examples");
  }

  DPLEARN_ASSIGN_OR_RETURN(auto split, data.Split(options.train_fraction, rng));
  const Dataset& train = split.first;
  const Dataset& validation = split.second;
  if (train.empty() || validation.empty()) {
    return InvalidArgumentError("SelectLambdaAndTrain: degenerate split");
  }

  // Per-candidate Gibbs draws are themselves DP releases from `train`; the
  // selection step then touches `validation` only. Budget accounting:
  //   train side:  the k candidate draws + the final draw all see `train`.
  //     We charge training_epsilon to the FINAL draw and calibrate each of
  //     the k candidate draws at training_epsilon as well, composing to
  //     (k+1)*training_epsilon on the train split worst-case; the
  //     conservative total reported is selection + (k+1)*training.
  //   validation side: one exponential mechanism at selection_epsilon.
  DPLEARN_ASSIGN_OR_RETURN(
      auto draws_and_risks,
      CandidateDrawsAndRisks(loss, hclass, train, validation, options.lambda_grid, rng));
  const std::vector<double>& validation_risks = draws_and_risks.second;

  // Exponential mechanism over candidates: quality = -validation risk,
  // sensitivity B / n_validation.
  const double sensitivity = loss.UpperBound() / static_cast<double>(validation.size());
  const double exponent = options.selection_epsilon / (2.0 * sensitivity);
  std::vector<double> log_weights(validation_risks.size());
  for (std::size_t i = 0; i < validation_risks.size(); ++i) {
    log_weights[i] = -exponent * validation_risks[i];
  }
  DPLEARN_ASSIGN_OR_RETURN(std::size_t selected, SampleFromLogWeights(rng, log_weights));

  PrivateLambdaSelectionResult result;
  result.selected_index = selected;
  result.lambda = options.lambda_grid[selected];

  // Final release at the selected temperature, calibrated to
  // training_epsilon via Theorem 4.1 (lambda_train = eps*n/(2B) — note the
  // SELECTED lambda governs the posterior shape; to honor the budget we
  // release at min(selected lambda, budget-calibrated lambda)).
  const double budget_lambda = options.training_epsilon *
                               static_cast<double>(train.size()) /
                               (2.0 * loss.UpperBound());
  const double release_lambda = std::min(result.lambda, budget_lambda);
  DPLEARN_ASSIGN_OR_RETURN(GibbsEstimator final_gibbs,
                           GibbsEstimator::CreateUniform(&loss, hclass, release_lambda));
  DPLEARN_ASSIGN_OR_RETURN(result.theta, final_gibbs.SampleTheta(train, rng));

  const double per_draw_epsilon =
      2.0 * release_lambda * loss.UpperBound() / static_cast<double>(train.size());
  // Candidate draws: each lambda_i costs 2*lambda_i*B/n_train.
  double candidate_epsilon = 0.0;
  for (double lambda : options.lambda_grid) {
    candidate_epsilon += 2.0 * lambda * loss.UpperBound() / static_cast<double>(train.size());
  }
  result.total_epsilon = options.selection_epsilon + candidate_epsilon + per_draw_epsilon;
  return result;
}

StatusOr<PrivateLambdaSelectionResult> SelectLambdaNonPrivate(
    const LossFunction& loss, const FiniteHypothesisClass& hclass, const Dataset& data,
    const LambdaSelectionOptions& options, Rng* rng) {
  DPLEARN_RETURN_IF_ERROR(ValidateOptions(options));
  if (data.size() < 4) {
    return InvalidArgumentError("SelectLambdaNonPrivate: need at least 4 examples");
  }
  DPLEARN_ASSIGN_OR_RETURN(auto split, data.Split(options.train_fraction, rng));
  const Dataset& train = split.first;
  const Dataset& validation = split.second;
  DPLEARN_ASSIGN_OR_RETURN(
      auto draws_and_risks,
      CandidateDrawsAndRisks(loss, hclass, train, validation, options.lambda_grid, rng));

  std::size_t best = 0;
  for (std::size_t i = 1; i < draws_and_risks.second.size(); ++i) {
    if (draws_and_risks.second[i] < draws_and_risks.second[best]) best = i;
  }
  PrivateLambdaSelectionResult result;
  result.selected_index = best;
  result.lambda = options.lambda_grid[best];
  result.theta = draws_and_risks.first[best];
  result.total_epsilon = std::numeric_limits<double>::infinity();  // unaccounted
  return result;
}

}  // namespace dplearn
