#ifndef DPLEARN_CORE_REGULARIZED_OBJECTIVE_H_
#define DPLEARN_CORE_REGULARIZED_OBJECTIVE_H_

#include <cstddef>
#include <vector>

#include "util/status.h"

namespace dplearn {

/// Theorem 4.2 of the paper, made computable.
///
/// With the bound-optimal prior π = E_Ẑ[π̂], minimizing the PAC-Bayes bound
/// over channels Ẑ -> θ is minimizing
///
///   G(W) = E_Ẑ E_{θ~W(·|Ẑ)}[ R̂_Ẑ(θ) ]  +  (1/λ) · I(Ẑ; θ)
///
/// — expected empirical risk plus privacy-regularized mutual information —
/// and the minimizer is the Gibbs channel. These routines evaluate G for an
/// arbitrary channel and find its global minimizer by alternating
/// minimization (exactly the Blahut–Arimoto structure):
///   * fixing the prior q, the optimal rows are Gibbs posteriors
///     W(θ|k) ∝ q(θ) exp(-λ R̂_k(θ))  (Donsker–Varadhan), and
///   * fixing the rows, the optimal prior is the output marginal
///     q = Σ_k P(k) W(·|k)  (Catoni's π_OPT = E_Ẑ[π̂]).
/// G is convex in each argument, so the iteration converges to the global
/// minimum; the fixed point IS the paper's differentially-private Gibbs
/// estimator.

/// Evaluates G(W) for channel rows `transition` (one distribution over
/// outputs per input), input marginal P(k), risk matrix R̂_k(θ), and λ > 0.
/// Errors on inconsistent shapes or invalid distributions.
StatusOr<double> RegularizedObjective(const std::vector<std::vector<double>>& transition,
                                      const std::vector<double>& input_marginal,
                                      const std::vector<std::vector<double>>& risk_matrix,
                                      double lambda);

/// Result of the alternating minimization.
struct RegularizedObjectiveMinimum {
  /// The optimal channel rows (Gibbs posteriors at the fixed-point prior).
  std::vector<std::vector<double>> transition;
  /// The fixed-point prior q* = E_Ẑ[π̂] (also the output marginal).
  std::vector<double> prior;
  /// G at the minimizer.
  double objective = 0.0;
  /// Iterations used.
  std::size_t iterations = 0;
  /// True if the objective decrease fell below tol before max_iters.
  bool converged = false;
};

/// Minimizes G over all channels by alternating minimization. `tol` is the
/// absolute objective-decrease threshold. Errors on invalid input.
StatusOr<RegularizedObjectiveMinimum> MinimizeRegularizedObjective(
    const std::vector<double>& input_marginal,
    const std::vector<std::vector<double>>& risk_matrix, double lambda, double tol = 1e-12,
    std::size_t max_iters = 10000);

}  // namespace dplearn

#endif  // DPLEARN_CORE_REGULARIZED_OBJECTIVE_H_
