#ifndef DPLEARN_CORE_PRIVATE_DENSITY_H_
#define DPLEARN_CORE_PRIVATE_DENSITY_H_

#include <cstddef>
#include <vector>

#include "learning/dataset.h"
#include "sampling/rng.h"
#include "util/status.h"

namespace dplearn {

/// Differentially-private density estimation via PAC-Bayes — the paper's
/// stated future work ("we are currently investigating differentially-
/// private regression and density estimation using PAC-Bayesian bounds").
///
/// Setting: records are categories in {0..bins-1}; the goal is an ε-DP
/// estimate of the underlying probability vector. The Gibbs route: a
/// DATA-INDEPENDENT candidate family Θ (all histograms with masses
/// quantized to multiples of 1/resolution), a clipped log-loss bounded in
/// [0,1], and the Gibbs posterior over Θ — which by Theorem 4.1 is
/// 2λΔ(R̂)-DP. The Laplace-histogram baseline is provided for comparison.

/// Enumerates all probability vectors over `bins` cells with masses that
/// are multiples of 1/resolution (compositions of `resolution` into
/// `bins` parts). Size C(resolution+bins-1, bins-1): keep bins*resolution
/// modest. Errors if bins == 0 or resolution == 0.
StatusOr<std::vector<std::vector<double>>> QuantizedSimplex(std::size_t bins,
                                                            std::size_t resolution);

/// The clipped log-loss of candidate density `density` on category `bin`:
///   l = min( -ln(max(density[bin], floor)), clip ) / clip  in [0, 1].
/// `floor` keeps the loss finite on zero-mass candidates. Errors on
/// invalid arguments.
StatusOr<double> ClippedLogLoss(const std::vector<double>& density, std::size_t bin,
                                double clip, double floor);

/// Result of a private density estimation run.
struct PrivateDensityResult {
  /// The released density (ε-DP).
  std::vector<double> density;
  /// The privacy level actually guaranteed.
  double epsilon = 0.0;
};

/// Configuration for the Gibbs density estimator.
struct GibbsDensityOptions {
  /// Target privacy ε (Theorem 4.1 calibration: λ = ε n clip / (2·clip) —
  /// the loss is bounded by 1 after scaling, so Δ(R̂) = 1/n and λ = εn/2).
  double epsilon = 1.0;
  /// Histogram quantization (candidates = multiples of 1/resolution).
  std::size_t resolution = 8;
  /// Log-loss clip (pre-scaling), in nats.
  double clip = 6.0;
  /// Zero-mass floor inside the log.
  double floor = 1e-4;
};

/// Gibbs/exponential-mechanism density estimation: samples a candidate
/// density from the Gibbs posterior over the quantized simplex with
/// clipped log-loss. ε-DP by Theorem 4.1. `data` labels must be integer
/// categories in [0, bins). Errors on invalid arguments or empty data.
StatusOr<PrivateDensityResult> GibbsDensityEstimate(const Dataset& data, std::size_t bins,
                                                    const GibbsDensityOptions& options,
                                                    Rng* rng);

/// Laplace-histogram baseline: perturb each count with Lap(2/ε) (replace-
/// one changes two counts by 1 => L1 sensitivity 2), clamp at zero,
/// renormalize. ε-DP. Errors on invalid arguments or empty data.
StatusOr<PrivateDensityResult> LaplaceHistogramEstimate(const Dataset& data,
                                                        std::size_t bins, double epsilon,
                                                        Rng* rng);

/// Geometric-mechanism histogram baseline: integer noise on counts
/// (exactly auditable), clamp, renormalize. ε-DP. Same contract.
StatusOr<PrivateDensityResult> GeometricHistogramEstimate(const Dataset& data,
                                                          std::size_t bins, double epsilon,
                                                          Rng* rng);

/// The non-private empirical histogram (baseline floor).
StatusOr<std::vector<double>> EmpiricalHistogram(const Dataset& data, std::size_t bins);

}  // namespace dplearn

#endif  // DPLEARN_CORE_PRIVATE_DENSITY_H_
