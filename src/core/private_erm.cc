#include "core/private_erm.h"

#include <cmath>

#include "obs/config.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sampling/distributions.h"

namespace dplearn {
namespace {

Status ValidateOptions(const LossFunction& loss, const Dataset& data,
                       const PrivateErmOptions& options) {
  if (data.empty()) return InvalidArgumentError("PrivateErm: empty dataset");
  if (!loss.HasGradient()) {
    return InvalidArgumentError("PrivateErm: loss '" + loss.Name() + "' has no gradient");
  }
  if (!(options.epsilon > 0.0)) {
    return InvalidArgumentError("PrivateErm: epsilon must be positive");
  }
  if (!(options.l2_lambda > 0.0)) {
    return InvalidArgumentError("PrivateErm: l2_lambda must be positive (strong convexity)");
  }
  if (!(options.lipschitz > 0.0)) {
    return InvalidArgumentError("PrivateErm: lipschitz must be positive");
  }
  return Status::Ok();
}

}  // namespace

StatusOr<PrivateErmResult> OutputPerturbationErm(const LossFunction& loss,
                                                 const Dataset& data,
                                                 const PrivateErmOptions& options, Rng* rng) {
  DPLEARN_RETURN_IF_ERROR(ValidateOptions(loss, data, options));
  // The solve below dominates; its gradient accumulation runs on the global
  // thread pool for large n (learning/erm.cc), with thread-count-invariant
  // results — the Monte-Carlo loops that call this stay bit-reproducible.
  obs::TraceSpan span("erm.output_perturbation");
  if (obs::MetricsEnabled()) {
    static obs::Counter* const runs =
        obs::GlobalMetrics().GetCounter("erm.output_perturbation_runs");
    runs->Increment();
  }
  DPLEARN_ASSIGN_OR_RETURN(GradientErmResult erm, SolveNonPrivateErm(loss, data, options));
  return ReleaseOutputPerturbation(erm, data.size(), data.FeatureDim(), options, rng);
}

StatusOr<GradientErmResult> SolveNonPrivateErm(const LossFunction& loss, const Dataset& data,
                                               const PrivateErmOptions& options) {
  DPLEARN_RETURN_IF_ERROR(ValidateOptions(loss, data, options));
  const std::size_t d = data.FeatureDim();
  GradientErmOptions solver = options.solver;
  solver.l2_lambda = options.l2_lambda;
  solver.linear_perturbation.clear();
  return GradientDescentErm(loss, data, solver, Vector(d, 0.0));
}

StatusOr<PrivateErmResult> ReleaseOutputPerturbation(const GradientErmResult& erm,
                                                     std::size_t n, std::size_t d,
                                                     const PrivateErmOptions& options,
                                                     Rng* rng) {
  if (n == 0 || d == 0) {
    return InvalidArgumentError("ReleaseOutputPerturbation: n and d must be positive");
  }
  if (!(options.epsilon > 0.0)) {
    return InvalidArgumentError("ReleaseOutputPerturbation: epsilon must be positive");
  }
  if (!(options.l2_lambda > 0.0) || !(options.lipschitz > 0.0)) {
    return InvalidArgumentError(
        "ReleaseOutputPerturbation: l2_lambda and lipschitz must be positive");
  }
  if (erm.theta.size() != d) {
    return InvalidArgumentError("ReleaseOutputPerturbation: solver result dimension mismatch");
  }
  // L2 sensitivity of the lambda-strongly-convex minimizer under a
  // replace-one change: beta = 2L/(n*lambda). Noise density
  // prop. to exp(-eps ||b|| / beta) gives eps-DP.
  const double beta = 2.0 * options.lipschitz / (static_cast<double>(n) * options.l2_lambda);
  Vector noise;
  DPLEARN_RETURN_IF_ERROR(SampleGammaNormVector(rng, d, options.epsilon / beta, &noise));

  PrivateErmResult result;
  result.theta = Add(erm.theta, noise);
  result.epsilon_spent = options.epsilon;
  result.solver_result = erm;
  return result;
}

StatusOr<PrivateErmResult> ObjectivePerturbationErm(const LossFunction& loss,
                                                    const Dataset& data,
                                                    const PrivateErmOptions& options,
                                                    Rng* rng) {
  DPLEARN_RETURN_IF_ERROR(ValidateOptions(loss, data, options));
  if (!(options.smoothness > 0.0)) {
    return InvalidArgumentError("ObjectivePerturbationErm: smoothness must be positive");
  }
  obs::TraceSpan span("erm.objective_perturbation");
  if (obs::MetricsEnabled()) {
    static obs::Counter* const runs =
        obs::GlobalMetrics().GetCounter("erm.objective_perturbation_runs");
    runs->Increment();
  }
  const std::size_t d = data.FeatureDim();
  const double n = static_cast<double>(data.size());

  // CMS'11 Algorithm 2: eps' = eps - 2 ln(1 + c/(n*lambda)); if that is not
  // positive, raise the regularizer so half the budget pays for smoothness.
  double lambda = options.l2_lambda;
  double eps_prime =
      options.epsilon - 2.0 * std::log1p(options.smoothness / (n * lambda));
  if (eps_prime <= 0.0) {
    const double extra =
        options.smoothness / (n * (std::exp(options.epsilon / 4.0) - 1.0)) - lambda;
    lambda += std::max(0.0, extra);
    eps_prime = options.epsilon / 2.0;
  }

  // Noise direction uniform, norm ~ Gamma(d, 2/eps'): density
  // prop. to exp(-eps' ||b|| / 2).
  DPLEARN_ASSIGN_OR_RETURN(Vector noise, SampleGammaNormVector(rng, d, eps_prime / 2.0));
  // The CMS objective uses per-example Lipschitz constant L; scale the
  // noise accordingly so the guarantee holds for L != 1.
  for (double& v : noise) v *= options.lipschitz;

  GradientErmOptions solver = options.solver;
  solver.l2_lambda = lambda;
  solver.linear_perturbation = noise;
  DPLEARN_ASSIGN_OR_RETURN(GradientErmResult erm,
                           GradientDescentErm(loss, data, solver, Vector(d, 0.0)));

  PrivateErmResult result;
  result.theta = erm.theta;
  result.epsilon_spent = options.epsilon;
  result.solver_result = std::move(erm);
  return result;
}

}  // namespace dplearn
