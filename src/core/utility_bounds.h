#ifndef DPLEARN_CORE_UTILITY_BOUNDS_H_
#define DPLEARN_CORE_UTILITY_BOUNDS_H_

#include <cstddef>

#include "util/status.h"

namespace dplearn {

/// Closed-form UTILITY guarantees for the Gibbs / exponential-mechanism
/// learner — the other half of Theorem 4.1's story. Privacy says the
/// posterior cannot depend too much on the data; these bounds say it still
/// concentrates on low-risk hypotheses.

/// McSherry–Talwar utility specialized to learning over a finite Θ with a
/// uniform prior: one draw θ from the Gibbs posterior at inverse
/// temperature λ satisfies, with probability at least 1 − δ over the draw,
///   R̂(θ) − min_θ' R̂(θ')  <=  ln(|Θ| / δ) / λ.
/// Errors on invalid arguments.
StatusOr<double> GibbsExcessEmpiricalRiskBound(double lambda, std::size_t num_hypotheses,
                                               double delta);

/// The same bound rearranged as a design tool: the λ needed to keep the
/// excess empirical risk below `target_excess` with confidence 1 − δ.
StatusOr<double> LambdaForExcessRisk(double target_excess, std::size_t num_hypotheses,
                                     double delta);

/// End-to-end privacy-utility exchange rate at Theorem 4.1's calibration
/// λ = ε n / (2B): the excess-empirical-risk bound expressed in terms of
/// the privacy budget,
///   excess <= 2 B ln(|Θ|/δ) / (ε n).
/// The "cost of ε" in risk units — halve ε, double the risk slack.
/// Errors on invalid arguments.
StatusOr<double> ExcessRiskCostOfPrivacy(double epsilon, std::size_t n, double loss_bound,
                                         std::size_t num_hypotheses, double delta);

/// Excess TRUE risk bound for one Gibbs draw, combining the empirical
/// bound above with two uniform-convergence passes (Hoeffding over the
/// finite class):  with probability >= 1 - delta,
///   R(θ) − min R(θ') <= ln(3|Θ|/δ)/λ + 2 B sqrt( ln(6|Θ|/δ) / (2n) ).
/// Loose but fully explicit; the experiments verify it empirically.
StatusOr<double> GibbsExcessTrueRiskBound(double lambda, std::size_t num_hypotheses,
                                          std::size_t n, double loss_bound, double delta);

}  // namespace dplearn

#endif  // DPLEARN_CORE_UTILITY_BOUNDS_H_
