#ifndef DPLEARN_CORE_DP_VERIFIER_H_
#define DPLEARN_CORE_DP_VERIFIER_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "learning/dataset.h"
#include "sampling/rng.h"
#include "util/status.h"

namespace dplearn {

/// Empirical differential-privacy auditing.
///
/// Definition 2.1 requires Pr[M(D) ∈ S] <= e^ε Pr[M(D') ∈ S] for all
/// neighbors D ~ D' and all output sets S. On finite output spaces with an
/// exactly computable output distribution (the exponential mechanism / Gibbs
/// estimator), the tight ε is
///     ε* = max_{D~D', u} ln( P(u|D) / P(u|D') ),
/// which these auditors measure by exhaustive neighbor sweeps. A mechanism
/// satisfies its claimed ε iff ε* <= ε; the experiments report both sides.

/// A mechanism exposed through its exact finite output distribution.
using FiniteOutputMechanism =
    std::function<StatusOr<std::vector<double>>(const Dataset&)>;

/// A mechanism exposed through its exact scalar output density.
using ScalarDensityFn = std::function<double(const Dataset&, double output)>;

/// Where the worst-case privacy loss was observed.
struct DpAuditResult {
  /// The measured ε* (max log output ratio over all audited pairs).
  double max_log_ratio = 0.0;
  /// True if a neighbor pair gave some output positive probability under
  /// one dataset and zero under the other (ε* = +infinity).
  bool unbounded = false;
  /// Index (into `bases`) of the dataset achieving the max.
  std::size_t worst_base = 0;
  /// Index (into the neighbor enumeration of worst_base) of the neighbor.
  std::size_t worst_neighbor = 0;
  /// The output index / grid point achieving the max.
  std::size_t worst_output = 0;
};

/// Exact audit of a finite-output mechanism: for every base dataset in
/// `bases` and every replace-one neighbor with replacements from `domain`,
/// compares output distributions pointwise in both directions. Errors on
/// empty inputs or mechanism failure.
StatusOr<DpAuditResult> AuditFiniteMechanism(const FiniteOutputMechanism& mechanism,
                                             const std::vector<Dataset>& bases,
                                             const std::vector<Example>& domain);

/// Exact audit of a scalar-density mechanism (e.g. Laplace) at the grid of
/// `probe_outputs`: density ratios at points lower-bound the sup over sets.
/// For Laplace the sup is attained in the far tails, so probe grids should
/// extend several noise scales beyond the reachable query values. Errors on
/// empty inputs.
StatusOr<DpAuditResult> AuditScalarDensityMechanism(const ScalarDensityFn& density,
                                                    const std::vector<Dataset>& bases,
                                                    const std::vector<Example>& domain,
                                                    const std::vector<double>& probe_outputs);

/// A sampling-only mechanism (no tractable density): draws one finite
/// output index per call.
using SamplingMechanism = std::function<StatusOr<std::size_t>(const Dataset&, Rng*)>;

/// Monte-Carlo audit between one specific neighbor pair: draws
/// `num_samples` outputs from each dataset, forms empirical frequencies
/// over `num_outputs` cells, and returns the max log frequency ratio over
/// cells where both frequencies are positive (a statistically consistent
/// lower bound on ε*). Cells observed under only one dataset are ignored
/// below `min_count` occurrences (they are indistinguishable from sampling
/// noise) and reported as unbounded at or above it. Errors on invalid
/// arguments or mechanism failure.
StatusOr<DpAuditResult> SampledAuditPair(const SamplingMechanism& mechanism,
                                         const Dataset& data_a, const Dataset& data_b,
                                         std::size_t num_outputs, std::size_t num_samples,
                                         std::size_t min_count, Rng* rng);

}  // namespace dplearn

#endif  // DPLEARN_CORE_DP_VERIFIER_H_
