#ifndef DPLEARN_CORE_DP_SGD_H_
#define DPLEARN_CORE_DP_SGD_H_

#include <cstddef>

#include "learning/dataset.h"
#include "learning/loss.h"
#include "mechanisms/privacy_budget.h"
#include "sampling/rng.h"
#include "util/matrix.h"
#include "util/status.h"

namespace dplearn {

/// DP-SGD (Abadi et al. 2016 shape): noisy clipped-gradient descent with
/// Poisson-subsampled batches, accounted with the Rényi machinery this
/// library already provides. The modern descendant of the paper's program
/// — every step is a Gaussian-mechanism release of a gradient, the ε is
/// bought per-step and composed, and the learning/privacy trade lives in
/// exactly the (noise vs fit) balance of Theorem 4.2.
///
/// Accounting note: each step's gradient sum has L2 sensitivity
/// `clip_norm` under add/remove of one record; with noise N(0, σ²·clip²·I)
/// the step is (α, α/(2σ²))-RDP. Poisson amplification is folded in by
/// scaling the per-step RDP with q² — the leading term of the
/// subsampled-Gaussian analysis, valid only in the small-q regime — and
/// ONLY when q <= kDpSgdAmplificationMaxQ. Beyond that rate the q² term is
/// not an upper bound on the true subsampled-Gaussian RDP (it under-reports
/// ε badly as q → 1, where subsampling amplifies nothing), so the
/// accountant falls back to the always-sound unamplified α/(2σ²) bound and
/// flags the fallback in DpSgdAccounting::amplification_applied. In both
/// regimes the reported per-step RDP is min(q²·α/(2σ²), α/(2σ²)); the
/// exact subsampled-Gaussian accountant remains out of scope.
struct DpSgdOptions {
  /// Gaussian noise multiplier σ (noise stddev = σ·clip_norm per
  /// coordinate of the summed gradient).
  double noise_multiplier = 1.0;
  /// Per-example gradient L2 clip C.
  double clip_norm = 1.0;
  /// Poisson sampling rate q (expected batch = q·n).
  double sampling_rate = 0.1;
  /// Number of noisy steps T.
  std::size_t steps = 200;
  /// Learning rate.
  double learning_rate = 0.2;
  /// L2 regularization.
  double l2_lambda = 0.01;
  /// Target δ for the reported (ε, δ).
  double delta = 1e-5;
};

/// Largest Poisson rate at which the q² leading-order amplification term is
/// accepted as the per-step RDP. Above this, DpSgdPrivacy uses the
/// unamplified Gaussian bound α/(2σ²) instead (see the accounting note).
inline constexpr double kDpSgdAmplificationMaxQ = 0.1;

/// Result of a DP-SGD run.
struct DpSgdResult {
  Vector theta;
  /// The accounted privacy guarantee (see the accounting note above: the
  /// subsampling amplification uses the q² leading-order heuristic).
  PrivacyBudget budget;
  /// Steps actually taken.
  std::size_t steps = 0;
  /// Mean (post-clip) gradient norm over the run — a tuning diagnostic:
  /// persistently == clip_norm means the clip is biting hard.
  double mean_clipped_gradient_norm = 0.0;
};

/// Runs DP-SGD on a differentiable loss. Errors on invalid options, empty
/// data, or a gradient-free loss.
StatusOr<DpSgdResult> DpSgd(const LossFunction& loss, const Dataset& data,
                            const DpSgdOptions& options, Rng* rng);

/// DpSgdPrivacy's answer with its provenance: which regime produced the
/// number, so callers (and audits) can tell an amplified figure from the
/// unamplified fallback without re-deriving the q threshold.
struct DpSgdAccounting {
  PrivacyBudget budget;
  /// True iff the q² amplification term was used (q <= kDpSgdAmplificationMaxQ).
  bool amplification_applied = false;
  /// The RDP order that minimized the converted ε.
  double best_alpha = 0.0;
};

/// The accounted (ε, δ) for a given configuration WITHOUT running the
/// optimizer — per-step RDP min(q²·α/(2σ²), α/(2σ²)) with the q² term
/// admitted only for q <= kDpSgdAmplificationMaxQ, composed over T steps,
/// optimized over orders, converted at δ. Exposed so callers can search
/// configurations before touching data. Errors on invalid options.
StatusOr<PrivacyBudget> DpSgdPrivacy(const DpSgdOptions& options);

/// DpSgdPrivacy plus the regime flag and the minimizing order.
StatusOr<DpSgdAccounting> DpSgdPrivacyDetail(const DpSgdOptions& options);

/// The noise multiplier needed to hit `target_epsilon` at the given rate,
/// steps, and δ — binary search over DpSgdPrivacy. Errors on invalid
/// arguments (non-finite or non-positive target, rate/steps/δ outside
/// DpSgdOptions' domain) and returns FailedPreconditionError naming the
/// configuration when the target ε is unattainable anywhere in the
/// searched σ range — the conversion overhead ln(1/δ)/(α−1) puts a hard
/// floor under ε that no amount of noise crosses.
StatusOr<double> NoiseMultiplierForTarget(double target_epsilon, double sampling_rate,
                                          std::size_t steps, double delta);

}  // namespace dplearn

#endif  // DPLEARN_CORE_DP_SGD_H_
