#ifndef DPLEARN_CORE_FINITE_DOMAIN_CHANNEL_H_
#define DPLEARN_CORE_FINITE_DOMAIN_CHANNEL_H_

#include <cstddef>
#include <vector>

#include "core/learning_channel.h"
#include "learning/dataset.h"
#include "learning/hypothesis.h"
#include "learning/loss.h"
#include "util/status.h"

namespace dplearn {

/// The Figure-1 learning channel for an ARBITRARY finite example domain —
/// the generalization of BuildBernoulliGibbsChannel beyond two-valued
/// records. Because the empirical risk of every hypothesis depends on Ẑ
/// only through the multiset of examples, the channel input alphabet is
/// the set of compositions (c_1,...,c_m) of n over the m domain elements,
/// with multinomial marginal; two compositions are neighbors iff one unit
/// moves between two cells (the replace-one relation on multisets).
///
/// Input count is C(n+m-1, m-1): keep n and m modest (n=10, m=3 -> 66
/// inputs; n=20, m=4 -> 1771).

/// One input symbol: a composition and its probability.
struct DomainComposition {
  /// counts[j] = number of records equal to domain[j]; sums to n.
  std::vector<std::size_t> counts;
  /// Multinomial probability of observing this composition.
  double probability = 0.0;
};

/// The generalized exact channel.
struct FiniteDomainGibbsChannel {
  DiscreteChannel channel;
  std::vector<DomainComposition> inputs;
  std::vector<double> input_marginal;
  std::vector<std::vector<double>> risk_matrix;
  std::vector<std::pair<std::size_t, std::size_t>> neighbor_pairs;
};

/// Builds the exact Gibbs channel over all datasets of size n drawn from
/// `domain` with element probabilities `domain_probs`. Errors on invalid
/// arguments or if the composition count would exceed `max_inputs`
/// (default 20000).
StatusOr<FiniteDomainGibbsChannel> BuildFiniteDomainGibbsChannel(
    const std::vector<Example>& domain, const std::vector<double>& domain_probs,
    std::size_t n, const LossFunction& loss, const FiniteHypothesisClass& hclass,
    const std::vector<double>& prior, double lambda, std::size_t max_inputs = 20000);

/// I(Ẑ;θ) of the generalized channel.
StatusOr<double> FiniteDomainChannelMutualInformation(
    const FiniteDomainGibbsChannel& channel);

/// Tight privacy level over the multiset neighbor relation.
double FiniteDomainChannelPrivacyLevel(const FiniteDomainGibbsChannel& channel);

}  // namespace dplearn

#endif  // DPLEARN_CORE_FINITE_DOMAIN_CHANNEL_H_
