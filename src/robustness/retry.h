#ifndef DPLEARN_ROBUSTNESS_RETRY_H_
#define DPLEARN_ROBUSTNESS_RETRY_H_

#include <chrono>
#include <cstdint>
#include <functional>

#include "util/status.h"

namespace dplearn {
namespace robustness {

/// Configuration for RetryPolicy. The defaults suit sub-millisecond local
/// I/O (sink writes, record files): four attempts spanning ~1ms total.
struct RetryOptions {
  /// Total attempts including the first (>= 1).
  int max_attempts = 4;
  /// Sleep before the first retry; doubles (times `multiplier`) afterwards.
  std::chrono::microseconds initial_backoff{100};
  double multiplier = 2.0;
  /// Backoff ceiling after multiplication.
  std::chrono::microseconds max_backoff{100000};
  /// Each sleep is scaled by a factor uniform in [1 - jitter, 1 + jitter]
  /// so that concurrent retriers decorrelate. Set 0 to disable.
  double jitter = 0.25;
  /// Tests set false to skip the actual sleeps (the computed schedule is
  /// still recorded in RetryPolicy::last_total_backoff()).
  bool sleep = true;
};

/// Bounded exponential backoff around a Status-returning operation.
///
/// Jitter is deterministic: the policy owns a splitmix64 stream — the same
/// primitive Rng::Split uses to derive child seeds — seeded at construction,
/// so a given (seed, attempt sequence) always produces the same schedule.
/// Callers inside deterministic pipelines seed it from their trial stream
/// (`rng->NextUint64()`); infrastructure callers use the fixed default.
///
/// By default only UNAVAILABLE errors (transient by the DESIGN.md §9
/// taxonomy) are retried; everything else is returned immediately.
class RetryPolicy {
 public:
  explicit RetryPolicy(RetryOptions options = RetryOptions(),
                       std::uint64_t jitter_seed = 0x5eed5eed5eed5eedULL);

  /// Runs `fn` until it returns OK, a non-retryable error, or attempts are
  /// exhausted; returns the last Status either way.
  Status Run(const std::function<Status()>& fn);

  /// As Run, but `retryable(status)` decides what to retry.
  Status Run(const std::function<Status()>& fn,
             const std::function<bool(const Status&)>& retryable);

  /// True for the errors the default policy retries (UNAVAILABLE).
  static bool IsRetryable(const Status& status) {
    return status.code() == StatusCode::kUnavailable;
  }

  /// Attempts consumed by the most recent Run (0 before any Run).
  int last_attempts() const { return last_attempts_; }

  /// Total backoff scheduled by the most recent Run (accumulated even when
  /// options.sleep is false, so tests can assert the schedule).
  std::chrono::microseconds last_total_backoff() const { return last_total_backoff_; }

 private:
  double NextJitterFactor();

  RetryOptions options_;
  std::uint64_t jitter_state_;
  int last_attempts_ = 0;
  std::chrono::microseconds last_total_backoff_{0};
};

}  // namespace robustness
}  // namespace dplearn

#endif  // DPLEARN_ROBUSTNESS_RETRY_H_
