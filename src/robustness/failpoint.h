#ifndef DPLEARN_ROBUSTNESS_FAILPOINT_H_
#define DPLEARN_ROBUSTNESS_FAILPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace dplearn {
namespace robustness {

/// Scoped fault injection for chaos testing (DESIGN.md §9).
///
/// A *fail point* is a named hook compiled into a production code path — the
/// RNG, the DP mechanisms, the privacy accountant, the thread pool, the JSONL
/// event sink. When the registry has no configuration (the default), every
/// hook costs one relaxed atomic load and is never taken. When a fail point
/// is armed — via the DPLEARN_FAILPOINTS environment variable or a
/// ScopedFailPoint in a test — the hook fires according to its trigger spec
/// and the surrounding code must degrade gracefully: return a typed
/// util::Status error, retry, or drop-and-count. The CI `failpoint-chaos`
/// job runs the smoke experiments under representative configurations and
/// asserts that sweeps complete with structured failure records instead of
/// crashing.
///
/// Registered fail points (see DESIGN.md §9 for the authoritative table):
///   rng.degenerate    Rng::NextUint64 returns 0 (degenerate bits)
///   mechanism.sample  Laplace/Gaussian/exponential/geometric/RR/noisy-max
///                     releases fail with an injected UNAVAILABLE error
///   budget.spend      PrivacyAccountant::Spend fails before mutating state
///   pool.task         a ThreadPool task throws before running its body
///   sink.write        a JsonlFileSink write attempt fails (retried, then
///                     dropped and counted)
///   record.write      the experiment harness's results/<id>.json open fails
///   service.accept    DpReleaseServer rejects a freshly accepted connection
///                     with one structured UNAVAILABLE frame, then closes it
///   service.dispatch  DpReleaseServer fails a request at dispatch, before
///                     admission control — a structured UNAVAILABLE response
///                     with no budget or ledger mutation
///
/// Trigger spec grammar (the value in `name=value`):
///   always     fire on every hit
///   off        never fire (but still count hits)
///   prob:P     fire pseudo-randomly with probability P in [0,1]; the
///              decision is a deterministic hash of (name, hit index, seed),
///              so a given configuration fires on the same hit indices in
///              every run
///   every:N    fire on every N-th hit (hits N, 2N, 3N, ...)
///   after:N    fire on every hit after the first N
///   first:N    fire on the first N hits only
///
/// DPLEARN_FAILPOINTS holds a ';'- or ','-separated list of `name=spec`
/// entries (bare `name` means `always`), e.g.
///   DPLEARN_FAILPOINTS='sink.write=prob:0.3;mechanism.sample=every:97'
/// DPLEARN_FAILPOINTS_SEED (optional, default 0) perturbs the prob: hash.
struct FailPointSpec {
  enum class Trigger {
    kAlways,
    kOff,
    kProbability,
    kEveryN,
    kAfterN,
    kFirstN,
  };

  Trigger trigger = Trigger::kAlways;
  double probability = 1.0;   // kProbability only
  std::uint64_t n = 1;        // kEveryN / kAfterN / kFirstN only

  /// Parses the spec grammar above. Error on unknown trigger names,
  /// probabilities outside [0,1], or N == 0.
  static StatusOr<FailPointSpec> Parse(const std::string& text);
};

/// Counters for one fail point, snapshot via FailPointRegistry::Stats.
struct FailPointStats {
  std::string name;
  std::uint64_t hits = 0;   // times the hook was evaluated while armed
  std::uint64_t fires = 0;  // times it actually fired
};

/// The process-wide registry of armed fail points. Thread-safe. Hot paths
/// call the free functions below (ShouldFail / Inject), which skip the
/// registry entirely while it is empty.
class FailPointRegistry {
 public:
  /// The singleton instrumented code consults. On first access the registry
  /// arms itself from DPLEARN_FAILPOINTS (malformed entries are reported on
  /// stderr and skipped, so a typo cannot silently disable chaos coverage).
  static FailPointRegistry& Global();

  /// Parses `config` ("name=spec;name2=spec2") and arms every entry.
  /// Returns the first parse error (already-parsed entries stay armed).
  Status Configure(const std::string& config);

  /// Arms (or re-arms) `name` with `spec`, resetting its counters.
  void Set(const std::string& name, const FailPointSpec& spec);

  /// Disarms `name`. Unknown names are a no-op.
  void Clear(const std::string& name);

  /// Disarms everything (used by test fixtures).
  void ClearAll();

  /// Evaluates the fail point: false when `name` is not armed; otherwise
  /// counts the hit and applies the trigger.
  bool ShouldFail(const char* name);

  /// Counter snapshots for every armed fail point, sorted by name.
  std::vector<FailPointStats> Stats() const;

  /// The armed configuration re-rendered as "name=spec;..." (empty when
  /// nothing is armed) — recorded into experiment JSON for provenance.
  std::string ConfigString() const;

 private:
  FailPointRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

/// True when at least one fail point is armed. Single relaxed atomic load;
/// this is the only cost production paths pay when chaos testing is off.
bool FailPointsEnabled();

/// Evaluates the named fail point: false whenever the registry is empty.
inline bool ShouldFail(const char* name) {
  return FailPointsEnabled() && FailPointRegistry::Global().ShouldFail(name);
}

/// Returns OK normally and an injected-fault UNAVAILABLE error when the
/// named fail point fires — the one-liner for Status-returning code paths:
///   DPLEARN_RETURN_IF_ERROR(robustness::Inject("mechanism.sample"));
Status Inject(const char* name);

/// True when `status` was produced by Inject (as opposed to a real failure
/// of the same code path). The experiment harness records injected faults
/// as structured failure records and continues; real errors still abort.
bool IsInjectedFault(const Status& status);

/// Message-prefix variant for hooks that cannot return Status (e.g. the
/// thread-pool `pool.task` hook throws std::runtime_error): true when
/// `message` carries the Inject marker prefix.
bool IsInjectedFaultMessage(const char* message);

/// RAII fail-point activation for tests: arms `name` with `spec` on
/// construction and restores the previous state (armed spec or disarmed) on
/// destruction. Specs use the same grammar as DPLEARN_FAILPOINTS values.
class ScopedFailPoint {
 public:
  ScopedFailPoint(const std::string& name, const std::string& spec);
  ScopedFailPoint(const std::string& name, const FailPointSpec& spec);
  ~ScopedFailPoint();

  ScopedFailPoint(const ScopedFailPoint&) = delete;
  ScopedFailPoint& operator=(const ScopedFailPoint&) = delete;

 private:
  std::string name_;
  bool had_previous_ = false;
  FailPointSpec previous_;
};

}  // namespace robustness
}  // namespace dplearn

#endif  // DPLEARN_ROBUSTNESS_FAILPOINT_H_
