#include "robustness/failpoint.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string_view>

namespace dplearn {
namespace robustness {
namespace {

/// splitmix64 finalizer — the same mixing primitive Rng seeding uses, so
/// prob: decisions are deterministic, well-distributed, and independent of
/// any consumer's random stream.
std::uint64_t Mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t GlobalSeed() {
  static const std::uint64_t seed = [] {
    const char* env = std::getenv("DPLEARN_FAILPOINTS_SEED");
    if (env == nullptr || *env == '\0') return std::uint64_t{0};
    return static_cast<std::uint64_t>(std::strtoull(env, nullptr, 10));
  }();
  return seed;
}

/// Count of armed fail points; the FailPointsEnabled() fast path.
std::atomic<int>& ArmedCount() {
  static std::atomic<int> count{0};
  return count;
}

struct PointState {
  FailPointSpec spec;
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
};

bool Fires(const std::string& name, const FailPointSpec& spec, std::uint64_t hit_index) {
  switch (spec.trigger) {
    case FailPointSpec::Trigger::kAlways:
      return true;
    case FailPointSpec::Trigger::kOff:
      return false;
    case FailPointSpec::Trigger::kProbability: {
      if (spec.probability <= 0.0) return false;
      if (spec.probability >= 1.0) return true;
      const std::uint64_t h = Mix64(Fnv1a(name) ^ Mix64(hit_index ^ GlobalSeed()));
      return static_cast<double>(h >> 11) * 0x1.0p-53 < spec.probability;
    }
    case FailPointSpec::Trigger::kEveryN:
      return (hit_index + 1) % spec.n == 0;
    case FailPointSpec::Trigger::kAfterN:
      return hit_index >= spec.n;
    case FailPointSpec::Trigger::kFirstN:
      return hit_index < spec.n;
  }
  return false;
}

constexpr char kInjectedPrefix[] = "injected fault at '";

}  // namespace

StatusOr<FailPointSpec> FailPointSpec::Parse(const std::string& text) {
  FailPointSpec spec;
  if (text.empty() || text == "always") {
    spec.trigger = Trigger::kAlways;
    return spec;
  }
  if (text == "off") {
    spec.trigger = Trigger::kOff;
    return spec;
  }
  const auto colon = text.find(':');
  const std::string head = text.substr(0, colon);
  const std::string arg = colon == std::string::npos ? "" : text.substr(colon + 1);
  if (arg.empty()) {
    return InvalidArgumentError("FailPointSpec: '" + text + "' needs an argument");
  }
  if (head == "prob") {
    char* end = nullptr;
    spec.probability = std::strtod(arg.c_str(), &end);
    if (end == arg.c_str() || *end != '\0' || !(spec.probability >= 0.0) ||
        spec.probability > 1.0) {
      return InvalidArgumentError("FailPointSpec: probability must be in [0,1], got '" +
                                  arg + "'");
    }
    spec.trigger = Trigger::kProbability;
    return spec;
  }
  char* end = nullptr;
  const unsigned long long n = std::strtoull(arg.c_str(), &end, 10);
  if (end == arg.c_str() || *end != '\0' || n == 0) {
    return InvalidArgumentError("FailPointSpec: '" + head + "' needs a positive count, got '" +
                                arg + "'");
  }
  spec.n = static_cast<std::uint64_t>(n);
  if (head == "every") {
    spec.trigger = Trigger::kEveryN;
  } else if (head == "after") {
    spec.trigger = Trigger::kAfterN;
  } else if (head == "first") {
    spec.trigger = Trigger::kFirstN;
  } else {
    return InvalidArgumentError("FailPointSpec: unknown trigger '" + head + "'");
  }
  return spec;
}

struct FailPointRegistry::Impl {
  mutable std::mutex mu;
  std::map<std::string, PointState> points;
};

FailPointRegistry::Impl& FailPointRegistry::impl() const {
  static Impl* impl = new Impl();  // never destroyed: hooks may run at exit
  return *impl;
}

FailPointRegistry& FailPointRegistry::Global() {
  static FailPointRegistry* registry = [] {
    auto* r = new FailPointRegistry();
    const char* env = std::getenv("DPLEARN_FAILPOINTS");
    if (env != nullptr && *env != '\0') {
      const Status status = r->Configure(env);
      if (!status.ok()) {
        std::fprintf(stderr, "warning: DPLEARN_FAILPOINTS: %s\n",
                     status.ToString().c_str());
      }
    }
    return r;
  }();
  return *registry;
}

Status FailPointRegistry::Configure(const std::string& config) {
  std::size_t start = 0;
  while (start <= config.size()) {
    std::size_t end = config.find_first_of(";,", start);
    if (end == std::string::npos) end = config.size();
    const std::string entry = config.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;
    const auto eq = entry.find('=');
    const std::string name = entry.substr(0, eq);
    const std::string spec_text = eq == std::string::npos ? "always" : entry.substr(eq + 1);
    if (name.empty()) {
      return InvalidArgumentError("FailPointRegistry: entry '" + entry + "' has no name");
    }
    auto spec = FailPointSpec::Parse(spec_text);
    if (!spec.ok()) return spec.status();
    Set(name, spec.value());
  }
  return Status::Ok();
}

void FailPointRegistry::Set(const std::string& name, const FailPointSpec& spec) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  state.points[name] = PointState{spec, 0, 0};
  ArmedCount().store(static_cast<int>(state.points.size()), std::memory_order_relaxed);
}

void FailPointRegistry::Clear(const std::string& name) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  state.points.erase(name);
  ArmedCount().store(static_cast<int>(state.points.size()), std::memory_order_relaxed);
}

void FailPointRegistry::ClearAll() {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  state.points.clear();
  ArmedCount().store(0, std::memory_order_relaxed);
}

bool FailPointRegistry::ShouldFail(const char* name) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  const auto it = state.points.find(name);
  if (it == state.points.end()) return false;
  PointState& point = it->second;
  const std::uint64_t hit_index = point.hits++;
  const bool fires = Fires(it->first, point.spec, hit_index);
  if (fires) ++point.fires;
  return fires;
}

std::vector<FailPointStats> FailPointRegistry::Stats() const {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  std::vector<FailPointStats> out;
  out.reserve(state.points.size());
  for (const auto& [name, point] : state.points) {
    out.push_back(FailPointStats{name, point.hits, point.fires});
  }
  return out;
}

std::string FailPointRegistry::ConfigString() const {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  std::string out;
  for (const auto& [name, point] : state.points) {
    if (!out.empty()) out += ';';
    out += name;
    out += '=';
    const FailPointSpec& spec = point.spec;
    switch (spec.trigger) {
      case FailPointSpec::Trigger::kAlways:
        out += "always";
        break;
      case FailPointSpec::Trigger::kOff:
        out += "off";
        break;
      case FailPointSpec::Trigger::kProbability:
        out += "prob:" + std::to_string(spec.probability);
        break;
      case FailPointSpec::Trigger::kEveryN:
        out += "every:" + std::to_string(spec.n);
        break;
      case FailPointSpec::Trigger::kAfterN:
        out += "after:" + std::to_string(spec.n);
        break;
      case FailPointSpec::Trigger::kFirstN:
        out += "first:" + std::to_string(spec.n);
        break;
    }
  }
  return out;
}

bool FailPointsEnabled() {
  // Touch the registry once so DPLEARN_FAILPOINTS is parsed before the first
  // fast-path check; afterwards this is a single relaxed load.
  static const bool initialized = (FailPointRegistry::Global(), true);
  (void)initialized;
  return ArmedCount().load(std::memory_order_relaxed) > 0;
}

Status Inject(const char* name) {
  if (ShouldFail(name)) {
    return UnavailableError(std::string(kInjectedPrefix) + name + "'");
  }
  return Status::Ok();
}

bool IsInjectedFault(const Status& status) {
  return status.code() == StatusCode::kUnavailable &&
         status.message().rfind(kInjectedPrefix, 0) == 0;
}

bool IsInjectedFaultMessage(const char* message) {
  return message != nullptr &&
         std::string_view(message).substr(0, sizeof(kInjectedPrefix) - 1) ==
             kInjectedPrefix;
}

ScopedFailPoint::ScopedFailPoint(const std::string& name, const FailPointSpec& spec)
    : name_(name) {
  FailPointRegistry& registry = FailPointRegistry::Global();
  for (const FailPointStats& stats : registry.Stats()) {
    if (stats.name != name_) continue;
    had_previous_ = true;
    break;
  }
  if (had_previous_) {
    // Re-parse the rendered config to recover the previous spec. Cheap, and
    // it keeps the registry interface minimal.
    const std::string config = registry.ConfigString();
    std::size_t start = 0;
    while (start <= config.size()) {
      std::size_t end = config.find(';', start);
      if (end == std::string::npos) end = config.size();
      const std::string entry = config.substr(start, end - start);
      start = end + 1;
      const auto eq = entry.find('=');
      if (eq != std::string::npos && entry.substr(0, eq) == name_) {
        auto parsed = FailPointSpec::Parse(entry.substr(eq + 1));
        if (parsed.ok()) previous_ = parsed.value();
      }
    }
  }
  registry.Set(name_, spec);
}

ScopedFailPoint::ScopedFailPoint(const std::string& name, const std::string& spec)
    : ScopedFailPoint(name, [&spec, &name] {
        auto parsed = FailPointSpec::Parse(spec);
        if (!parsed.ok()) {
          std::fprintf(stderr, "FATAL: ScopedFailPoint('%s'): %s\n", name.c_str(),
                       parsed.status().ToString().c_str());
          std::abort();
        }
        return parsed.value();
      }()) {}

ScopedFailPoint::~ScopedFailPoint() {
  FailPointRegistry& registry = FailPointRegistry::Global();
  if (had_previous_) {
    registry.Set(name_, previous_);
  } else {
    registry.Clear(name_);
  }
}

}  // namespace robustness
}  // namespace dplearn
