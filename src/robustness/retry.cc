#include "robustness/retry.h"

#include <algorithm>
#include <thread>

namespace dplearn {
namespace robustness {
namespace {

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

RetryPolicy::RetryPolicy(RetryOptions options, std::uint64_t jitter_seed)
    : options_(options), jitter_state_(jitter_seed) {
  if (options_.max_attempts < 1) options_.max_attempts = 1;
  if (options_.multiplier < 1.0) options_.multiplier = 1.0;
  if (options_.jitter < 0.0) options_.jitter = 0.0;
  if (options_.jitter > 1.0) options_.jitter = 1.0;
}

double RetryPolicy::NextJitterFactor() {
  if (options_.jitter == 0.0) return 1.0;
  const double u = static_cast<double>(SplitMix64(&jitter_state_) >> 11) * 0x1.0p-53;
  return 1.0 + options_.jitter * (2.0 * u - 1.0);
}

Status RetryPolicy::Run(const std::function<Status()>& fn) {
  return Run(fn, &RetryPolicy::IsRetryable);
}

Status RetryPolicy::Run(const std::function<Status()>& fn,
                        const std::function<bool(const Status&)>& retryable) {
  last_attempts_ = 0;
  last_total_backoff_ = std::chrono::microseconds{0};
  double backoff_us = static_cast<double>(options_.initial_backoff.count());
  Status status;
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    ++last_attempts_;
    status = fn();
    if (status.ok() || !retryable(status)) return status;
    if (attempt + 1 == options_.max_attempts) break;
    const double capped =
        std::min(backoff_us, static_cast<double>(options_.max_backoff.count()));
    const auto sleep_us =
        std::chrono::microseconds(static_cast<std::int64_t>(capped * NextJitterFactor()));
    last_total_backoff_ += sleep_us;
    if (options_.sleep && sleep_us.count() > 0) {
      std::this_thread::sleep_for(sleep_us);
    }
    backoff_us *= options_.multiplier;
  }
  return status;
}

}  // namespace robustness
}  // namespace dplearn
