#ifndef DPLEARN_UTIL_MATH_UTIL_H_
#define DPLEARN_UTIL_MATH_UTIL_H_

#include <cstddef>
#include <vector>

#include "util/status.h"

namespace dplearn {

/// Numerically-stable scalar and vector helpers shared by the sampling,
/// information-theory, and PAC-Bayes modules. All log arguments are natural
/// logs unless a function name says otherwise.

/// Natural log of 2; entropy functions convert nats->bits with this.
inline constexpr double kLn2 = 0.6931471805599453;

/// Returns log(sum_i exp(x[i])) computed stably (shift by max). Returns
/// -infinity for an empty input.
double LogSumExp(const std::vector<double>& x);

/// Returns log(exp(a) + exp(b)) computed stably.
double LogAddExp(double a, double b);

/// Exponentiates and normalizes `log_weights` into a probability vector.
/// Stable for widely-spread magnitudes. Error if empty or all -inf.
StatusOr<std::vector<double>> SoftmaxFromLog(const std::vector<double>& log_weights);

/// Returns x*log(x) with the continuity convention 0*log(0) = 0.
/// Error semantics: callers must pass x >= 0.
double XLogX(double x);

/// Returns x*log(x/y) with conventions 0*log(0/y)=0; +inf when x>0 and y==0.
double XLogXOverY(double x, double y);

/// Clamps `x` to [lo, hi].
double Clamp(double x, double lo, double hi);

/// Returns true iff |a-b| <= abs_tol + rel_tol*max(|a|,|b|).
bool ApproxEqual(double a, double b, double abs_tol = 1e-9, double rel_tol = 1e-9);

/// Returns the mean of `x`. Error if empty.
StatusOr<double> Mean(const std::vector<double>& x);

/// Returns the unbiased sample variance of `x`. Error if size < 2.
StatusOr<double> SampleVariance(const std::vector<double>& x);

/// Returns the q-quantile (0<=q<=1) of `x` by linear interpolation on the
/// sorted sample. Error if empty or q outside [0,1].
StatusOr<double> Quantile(std::vector<double> x, double q);

/// Validates that `p` is a probability vector: non-negative entries summing
/// to 1 within `tol`. Returns OK or InvalidArgument with a description.
Status ValidateDistribution(const std::vector<double>& p, double tol = 1e-9);

/// Normalizes `w` (non-negative weights, not all zero) into a distribution.
StatusOr<std::vector<double>> Normalize(const std::vector<double>& w);

/// Returns an evenly spaced grid of `count` points from `lo` to `hi`
/// inclusive. Error if count < 2 or lo >= hi.
StatusOr<std::vector<double>> Linspace(double lo, double hi, std::size_t count);

/// Catoni's Phi transform (Theorem 3.1 of the paper):
///   Phi_{gamma}(r) = -(1/gamma) * log(1 - (1 - exp(-gamma)) * r)
/// with gamma = lambda/n. Maps an exponential-moment risk bound back to the
/// risk scale; the inverse of r -> (1 - exp(-gamma r))/(1 - exp(-gamma)).
/// Domain: r < 1/(1 - exp(-gamma)). Error outside the domain.
StatusOr<double> CatoniPhi(double gamma, double r);

/// The factor n/lambda * (1 - exp(-lambda/n)) that Catoni notes is within
/// [1 - lambda/(2n), 1]; used to sanity-check bound implementations.
double CatoniContractionFactor(double lambda, double n);

}  // namespace dplearn

#endif  // DPLEARN_UTIL_MATH_UTIL_H_
