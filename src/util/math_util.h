#ifndef DPLEARN_UTIL_MATH_UTIL_H_
#define DPLEARN_UTIL_MATH_UTIL_H_

#include <cstddef>
#include <vector>

#include "util/status.h"

namespace dplearn {

/// Numerically-stable scalar and vector helpers shared by the sampling,
/// information-theory, and PAC-Bayes modules. All log arguments are natural
/// logs unless a function name says otherwise.

/// Natural log of 2; entropy functions convert nats->bits with this.
inline constexpr double kLn2 = 0.6931471805599453;

/// Returns log(sum_i exp(x[i])) computed stably (shift by max).
///
/// Edge cases are defined — the Gibbs-posterior and PAC-Bayes paths call
/// this on filtered log-term vectors that can legitimately be empty or
/// entirely -inf (zero-mass priors), so each corner returns the
/// mathematically consistent limit rather than NaN:
///   empty input        -> -inf   (log of an empty sum)
///   all entries -inf   -> -inf   (log of a zero sum)
///   single element x0  -> exactly x0 (exp/log round-trip is exact at 0)
///   any entry +inf     -> +inf
///   any entry NaN      -> NaN    (propagated, never silently dropped)
///
/// The span overload is the primary implementation; the vector overload
/// forwards to it. Hot paths that already hold contiguous log-weights call
/// the span form directly instead of materializing a temporary vector.
double LogSumExp(const double* x, std::size_t n);
double LogSumExp(const std::vector<double>& x);

/// Returns log(exp(a) + exp(b)) computed stably.
double LogAddExp(double a, double b);

/// Exponentiates and normalizes `log_weights` into a probability vector.
/// Stable for widely-spread magnitudes. Error if empty or all -inf.
StatusOr<std::vector<double>> SoftmaxFromLog(const std::vector<double>& log_weights);

/// In-place SoftmaxFromLog: writes the probabilities into `out` (length n;
/// out == log_weights allowed). Same edge-case Status as SoftmaxFromLog,
/// without allocating the result vector — channel-row construction calls
/// this once per row of an |X|×|Θ| channel.
Status SoftmaxFromLogInto(const double* log_weights, std::size_t n, double* out);

/// Returns x*log(x) with the continuity convention 0*log(0) = 0.
/// Error semantics: callers must pass x >= 0.
double XLogX(double x);

/// Returns x*log(x/y) with conventions 0*log(0/y)=0; +inf when x>0 and y==0.
double XLogXOverY(double x, double y);

/// Clamps `x` to [lo, hi].
double Clamp(double x, double lo, double hi);

/// The library-wide non-negativity clamp policy for information measures
/// (entropy, KL / Rényi divergence, mutual information, RDP curves). These
/// quantities are >= 0 mathematically, but floating-point evaluation can
/// land a few ulps below zero when the true value is 0 — D(p ‖ p), the
/// entropy of a near-point-mass, MI of an almost-independent joint. The
/// policy: a negative within kNonNegativeClampTol of zero is a rounding
/// artifact and clamps to exactly 0; anything more negative is a genuine
/// sign bug in the caller and passes through UNCHANGED, so tests and the
/// proptest invariant suites can see it. Do not use a bare max(0, x) in new
/// information-measure code — it would mask real bugs.
inline constexpr double kNonNegativeClampTol = 1e-9;
inline double ClampRoundingNegative(double x) {
  return (x < 0.0 && x >= -kNonNegativeClampTol) ? 0.0 : x;
}

/// Returns true iff |a-b| <= abs_tol + rel_tol*max(|a|,|b|).
bool ApproxEqual(double a, double b, double abs_tol = 1e-9, double rel_tol = 1e-9);

/// Compensated (Kahan–Babuška–Neumaier) accumulator: the running error of
/// each addition is carried in a correction term, so summing n values costs
/// O(u) error instead of O(n·u). Used wherever many small increments must
/// not drift — the privacy accountant's spent-budget ledger, the audit
/// log's cumulative totals, sequential composition over long spend lists.
class KahanSum {
 public:
  KahanSum() = default;
  explicit KahanSum(double initial) : sum_(initial) {}

  void Add(double x) {
    const double t = sum_ + x;
    // Neumaier's branch keeps the correction valid when |x| > |sum_|.
    if ((sum_ >= 0 ? sum_ : -sum_) >= (x >= 0 ? x : -x)) {
      c_ += (sum_ - t) + x;
    } else {
      c_ += (x - t) + sum_;
    }
    sum_ = t;
  }

  /// The compensated total.
  double Value() const { return sum_ + c_; }

  void Reset(double value = 0.0) {
    sum_ = value;
    c_ = 0.0;
  }

 private:
  double sum_ = 0.0;
  double c_ = 0.0;
};

/// Returns the mean of `x`. Error if empty.
StatusOr<double> Mean(const std::vector<double>& x);

/// Returns the unbiased sample variance of `x`. Error if size < 2.
StatusOr<double> SampleVariance(const std::vector<double>& x);

/// Returns the q-quantile (0<=q<=1) of `x` by linear interpolation on the
/// sorted sample. Error if empty or q outside [0,1].
StatusOr<double> Quantile(std::vector<double> x, double q);

/// Validates that `p` is a probability vector: non-negative entries summing
/// to 1 within `tol`. Returns OK or InvalidArgument with a description.
Status ValidateDistribution(const std::vector<double>& p, double tol = 1e-9);

/// Normalizes `w` (non-negative weights, not all zero) into a distribution.
StatusOr<std::vector<double>> Normalize(const std::vector<double>& w);

/// Returns an evenly spaced grid of `count` points from `lo` to `hi`
/// inclusive. Error if count < 2 or lo >= hi.
StatusOr<std::vector<double>> Linspace(double lo, double hi, std::size_t count);

/// Catoni's Phi transform (Theorem 3.1 of the paper):
///   Phi_{gamma}(r) = -(1/gamma) * log(1 - (1 - exp(-gamma)) * r)
/// with gamma = lambda/n. Maps an exponential-moment risk bound back to the
/// risk scale; the inverse of r -> (1 - exp(-gamma r))/(1 - exp(-gamma)).
/// Domain: r < 1/(1 - exp(-gamma)). Error outside the domain.
StatusOr<double> CatoniPhi(double gamma, double r);

/// The factor n/lambda * (1 - exp(-lambda/n)) that Catoni notes is within
/// [1 - lambda/(2n), 1]; used to sanity-check bound implementations.
double CatoniContractionFactor(double lambda, double n);

}  // namespace dplearn

#endif  // DPLEARN_UTIL_MATH_UTIL_H_
