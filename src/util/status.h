#ifndef DPLEARN_UTIL_STATUS_H_
#define DPLEARN_UTIL_STATUS_H_

#include <cstdlib>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace dplearn {

/// Canonical error codes, modeled on the subset of absl::StatusCode the
/// library actually needs. Fallible public APIs return Status / StatusOr<T>
/// instead of throwing; exceptions never cross the library boundary.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kNotFound = 4,
  kInternal = 5,
  kUnimplemented = 6,
  /// A transient failure (sink write, file I/O, injected fault) that a
  /// RetryPolicy may retry; see src/robustness and DESIGN.md §9.
  kUnavailable = 7,
  /// A quota was exhausted — most prominently a tenant's privacy budget at
  /// the release-service admission boundary (DESIGN.md §13). Unlike
  /// kFailedPrecondition (which the accountant itself returns for an
  /// over-budget spend), this code tells a *client* that retrying the same
  /// request cannot succeed until its quota is raised.
  kResourceExhausted = 8,
};

/// Returns a stable human-readable name for `code` (e.g. "INVALID_ARGUMENT").
const char* StatusCodeToString(StatusCode code);

/// A success-or-error result. Cheap to copy on the OK path (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with `code` and a diagnostic `message`.
  /// `code` must not be kOk when a message is meaningful; an OK status
  /// always carries an empty message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(code == StatusCode::kOk ? std::string() : std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Returns an OK status.
  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "CODE: message" for diagnostics.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Convenience constructors for the common error codes.
Status InvalidArgumentError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status NotFoundError(std::string message);
Status InternalError(std::string message);
Status UnimplementedError(std::string message);
Status UnavailableError(std::string message);
Status ResourceExhaustedError(std::string message);

/// A value-or-error result. Accessing the value of a non-OK StatusOr aborts
/// the process (programming error), mirroring absl::StatusOr semantics.
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit, so functions can `return value;`).
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Constructs from a non-OK status (implicit, so functions can
  /// `return InvalidArgumentError(...);`). Aborts if `status` is OK, since
  /// an OK StatusOr must carry a value.
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    if (std::get<Status>(rep_).ok()) std::abort();
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// Returns the status: OK when a value is held.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(rep_);
  }

  /// Returns the held value; aborts if this holds an error.
  const T& value() const& {
    if (!ok()) std::abort();
    return std::get<T>(rep_);
  }
  T& value() & {
    if (!ok()) std::abort();
    return std::get<T>(rep_);
  }
  T&& value() && {
    if (!ok()) std::abort();
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if not OK.
#define DPLEARN_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::dplearn::Status _dplearn_status = (expr);      \
    if (!_dplearn_status.ok()) return _dplearn_status; \
  } while (false)

/// Evaluates `rexpr` (a StatusOr<T> expression); on error returns the status,
/// otherwise moves the value into `lhs`.
#define DPLEARN_ASSIGN_OR_RETURN(lhs, rexpr)            \
  auto DPLEARN_CONCAT_(_dplearn_sor_, __LINE__) = (rexpr); \
  if (!DPLEARN_CONCAT_(_dplearn_sor_, __LINE__).ok())   \
    return DPLEARN_CONCAT_(_dplearn_sor_, __LINE__).status(); \
  lhs = std::move(DPLEARN_CONCAT_(_dplearn_sor_, __LINE__)).value()

#define DPLEARN_CONCAT_IMPL_(a, b) a##b
#define DPLEARN_CONCAT_(a, b) DPLEARN_CONCAT_IMPL_(a, b)

}  // namespace dplearn

#endif  // DPLEARN_UTIL_STATUS_H_
