#ifndef DPLEARN_UTIL_MATRIX_H_
#define DPLEARN_UTIL_MATRIX_H_

#include <cstddef>
#include <vector>

#include "util/status.h"

namespace dplearn {

/// Dense column vector backed by std::vector<double>. This is the small,
/// purpose-built linear algebra the learning substrate needs (ridge solves,
/// gradient steps); it is not a general BLAS.
using Vector = std::vector<double>;

/// Returns the dot product of `a` and `b`. Aborts on size mismatch via CHECK
/// in the implementation (programming error, not data error).
double Dot(const Vector& a, const Vector& b);

/// Returns a + b.
Vector Add(const Vector& a, const Vector& b);

/// Returns a - b.
Vector Sub(const Vector& a, const Vector& b);

/// Returns s * a.
Vector Scale(const Vector& a, double s);

/// In-place a += s * b (the AXPY kernel of every gradient loop here).
void AxpyInPlace(Vector* a, double s, const Vector& b);

/// Returns the Euclidean (L2) norm of `a`.
double Norm2(const Vector& a);

/// Returns the L1 norm of `a`.
double Norm1(const Vector& a);

/// Returns the L-infinity norm of `a`.
double NormInf(const Vector& a);

/// Dense row-major matrix with a minimal operation set: multiply, transpose
/// products, Cholesky solve. Dimensions are fixed at construction.
class Matrix {
 public:
  /// Creates a rows x cols zero matrix. rows and cols must be positive;
  /// violated preconditions abort (programming error).
  Matrix(std::size_t rows, std::size_t cols);

  /// Creates a matrix from row-major `data`; data.size() must equal
  /// rows*cols.
  static StatusOr<Matrix> FromRowMajor(std::size_t rows, std::size_t cols,
                                       std::vector<double> data);

  /// Returns the identity matrix of size n.
  static Matrix Identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& At(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double At(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Returns this * x. Error if x.size() != cols().
  StatusOr<Vector> MatVec(const Vector& x) const;

  /// Returns this^T * x. Error if x.size() != rows().
  StatusOr<Vector> TransposeMatVec(const Vector& x) const;

  /// Returns this^T * this (a cols x cols Gram matrix).
  Matrix Gram() const;

  /// Adds `lambda` to every diagonal entry (ridge regularization). Error if
  /// the matrix is not square.
  Status AddDiagonal(double lambda);

  /// Solves (this) * x = b for symmetric positive-definite `this` via
  /// Cholesky factorization. Error if not square, size mismatch, or the
  /// matrix is not numerically positive definite.
  StatusOr<Vector> CholeskySolve(const Vector& b) const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

}  // namespace dplearn

#endif  // DPLEARN_UTIL_MATRIX_H_
