#ifndef DPLEARN_UTIL_LOGGING_H_
#define DPLEARN_UTIL_LOGGING_H_

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>

namespace dplearn {

/// Severity levels for DPLEARN_LOG. Messages below the process-wide
/// threshold are discarded without evaluating their stream operands.
enum class LogLevel : int { kInfo = 0, kWarn = 1, kError = 2 };

namespace internal_logging {

inline const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

/// Reads DPLEARN_LOG_LEVEL once at first use. Accepts level names
/// (INFO/WARN/WARNING/ERROR) or the numeric values 0/1/2; anything else
/// (including unset) keeps the default of WARN so library chatter stays
/// out of experiment tables unless explicitly requested.
inline int InitialLogLevel() {
  const char* raw = std::getenv("DPLEARN_LOG_LEVEL");
  if (raw == nullptr) return static_cast<int>(LogLevel::kWarn);
  if (std::strcmp(raw, "INFO") == 0 || std::strcmp(raw, "0") == 0) {
    return static_cast<int>(LogLevel::kInfo);
  }
  if (std::strcmp(raw, "WARN") == 0 || std::strcmp(raw, "WARNING") == 0 ||
      std::strcmp(raw, "1") == 0) {
    return static_cast<int>(LogLevel::kWarn);
  }
  if (std::strcmp(raw, "ERROR") == 0 || std::strcmp(raw, "2") == 0) {
    return static_cast<int>(LogLevel::kError);
  }
  return static_cast<int>(LogLevel::kWarn);
}

inline std::atomic<int>& MinLogLevelStorage() {
  static std::atomic<int> level(InitialLogLevel());
  return level;
}

/// Accumulates one log line and writes it to stderr on destruction, so a
/// multi-operand `DPLEARN_LOG(...) << a << b` emits a single write even
/// when several threads log concurrently.
class LogMessage {
 public:
  LogMessage(const char* file, int line, LogLevel level) {
    stream_ << "[" << LogLevelName(level) << " " << file << ":" << line << "] ";
  }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() {
    stream_ << "\n";
    std::cerr << stream_.str();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Accumulates a fatal-error message and aborts the process on destruction.
/// Used by the DPLEARN_CHECK* macros; not part of the public API.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition) {
    stream_ << "[FATAL " << file << ":" << line << "] Check failed: " << condition << " ";
  }
  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;
  [[noreturn]] ~FatalMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging

/// Process-wide log threshold; messages strictly below it are discarded.
inline void SetMinLogLevel(LogLevel level) {
  internal_logging::MinLogLevelStorage().store(static_cast<int>(level),
                                               std::memory_order_relaxed);
}

inline LogLevel MinLogLevel() {
  return static_cast<LogLevel>(
      internal_logging::MinLogLevelStorage().load(std::memory_order_relaxed));
}

}  // namespace dplearn

/// Leveled logging to stderr: DPLEARN_LOG(INFO) << "..."; severity is one
/// of INFO, WARN, ERROR. The threshold defaults to WARN and is set by the
/// DPLEARN_LOG_LEVEL environment variable or SetMinLogLevel(). When a
/// message is below the threshold its operands are never evaluated.
#define DPLEARN_LOG_LEVEL_INFO ::dplearn::LogLevel::kInfo
#define DPLEARN_LOG_LEVEL_WARN ::dplearn::LogLevel::kWarn
#define DPLEARN_LOG_LEVEL_ERROR ::dplearn::LogLevel::kError

#define DPLEARN_LOG(severity)                                                 \
  if (DPLEARN_LOG_LEVEL_##severity < ::dplearn::MinLogLevel())                \
    ;                                                                         \
  else                                                                        \
    ::dplearn::internal_logging::LogMessage(__FILE__, __LINE__,               \
                                            DPLEARN_LOG_LEVEL_##severity)     \
        .stream()

/// Aborts with a diagnostic if `condition` is false. Active in all build
/// modes: these guard internal invariants whose violation would make
/// privacy accounting meaningless, so they must not compile away.
#define DPLEARN_CHECK(condition)                                              \
  if (!(condition))                                                           \
  ::dplearn::internal_logging::FatalMessage(__FILE__, __LINE__, #condition).stream()

#define DPLEARN_CHECK_OK(expr)                                    \
  if (::dplearn::Status _s = (expr); !_s.ok())                    \
  ::dplearn::internal_logging::FatalMessage(__FILE__, __LINE__, #expr).stream() \
      << _s.ToString()

#define DPLEARN_CHECK_EQ(a, b) DPLEARN_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define DPLEARN_CHECK_NE(a, b) DPLEARN_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define DPLEARN_CHECK_LT(a, b) DPLEARN_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define DPLEARN_CHECK_LE(a, b) DPLEARN_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define DPLEARN_CHECK_GT(a, b) DPLEARN_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define DPLEARN_CHECK_GE(a, b) DPLEARN_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // DPLEARN_UTIL_LOGGING_H_
