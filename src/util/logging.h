#ifndef DPLEARN_UTIL_LOGGING_H_
#define DPLEARN_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace dplearn {
namespace internal_logging {

/// Accumulates a fatal-error message and aborts the process on destruction.
/// Used by the DPLEARN_CHECK* macros; not part of the public API.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition) {
    stream_ << "[FATAL " << file << ":" << line << "] Check failed: " << condition << " ";
  }
  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;
  [[noreturn]] ~FatalMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace dplearn

/// Aborts with a diagnostic if `condition` is false. Active in all build
/// modes: these guard internal invariants whose violation would make
/// privacy accounting meaningless, so they must not compile away.
#define DPLEARN_CHECK(condition)                                              \
  if (!(condition))                                                           \
  ::dplearn::internal_logging::FatalMessage(__FILE__, __LINE__, #condition).stream()

#define DPLEARN_CHECK_OK(expr)                                    \
  if (::dplearn::Status _s = (expr); !_s.ok())                    \
  ::dplearn::internal_logging::FatalMessage(__FILE__, __LINE__, #expr).stream() \
      << _s.ToString()

#define DPLEARN_CHECK_EQ(a, b) DPLEARN_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define DPLEARN_CHECK_NE(a, b) DPLEARN_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define DPLEARN_CHECK_LT(a, b) DPLEARN_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define DPLEARN_CHECK_LE(a, b) DPLEARN_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define DPLEARN_CHECK_GT(a, b) DPLEARN_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define DPLEARN_CHECK_GE(a, b) DPLEARN_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // DPLEARN_UTIL_LOGGING_H_
