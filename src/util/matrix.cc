#include "util/matrix.h"

#include <cmath>
#include <string>

#include "util/logging.h"

namespace dplearn {

double Dot(const Vector& a, const Vector& b) {
  DPLEARN_CHECK_EQ(a.size(), b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

Vector Add(const Vector& a, const Vector& b) {
  DPLEARN_CHECK_EQ(a.size(), b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector Sub(const Vector& a, const Vector& b) {
  DPLEARN_CHECK_EQ(a.size(), b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector Scale(const Vector& a, double s) {
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

void AxpyInPlace(Vector* a, double s, const Vector& b) {
  DPLEARN_CHECK_EQ(a->size(), b.size());
  for (std::size_t i = 0; i < b.size(); ++i) (*a)[i] += s * b[i];
}

double Norm2(const Vector& a) { return std::sqrt(Dot(a, a)); }

double Norm1(const Vector& a) {
  double s = 0.0;
  for (double v : a) s += std::fabs(v);
  return s;
}

double NormInf(const Vector& a) {
  double m = 0.0;
  for (double v : a) m = std::max(m, std::fabs(v));
  return m;
}

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {
  DPLEARN_CHECK_GT(rows, 0u);
  DPLEARN_CHECK_GT(cols, 0u);
}

StatusOr<Matrix> Matrix::FromRowMajor(std::size_t rows, std::size_t cols,
                                      std::vector<double> data) {
  if (rows == 0 || cols == 0) {
    return InvalidArgumentError("Matrix::FromRowMajor: dimensions must be positive");
  }
  if (data.size() != rows * cols) {
    return InvalidArgumentError("Matrix::FromRowMajor: data size " +
                                std::to_string(data.size()) + " != rows*cols " +
                                std::to_string(rows * cols));
  }
  Matrix m(rows, cols);
  m.data_ = std::move(data);
  return m;
}

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

StatusOr<Vector> Matrix::MatVec(const Vector& x) const {
  if (x.size() != cols_) {
    return InvalidArgumentError("Matrix::MatVec: size mismatch");
  }
  Vector out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) s += At(r, c) * x[c];
    out[r] = s;
  }
  return out;
}

StatusOr<Vector> Matrix::TransposeMatVec(const Vector& x) const {
  if (x.size() != rows_) {
    return InvalidArgumentError("Matrix::TransposeMatVec: size mismatch");
  }
  Vector out(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out[c] += At(r, c) * x[r];
  }
  return out;
}

Matrix Matrix::Gram() const {
  Matrix g(cols_, cols_);
  for (std::size_t i = 0; i < cols_; ++i) {
    for (std::size_t j = i; j < cols_; ++j) {
      double s = 0.0;
      for (std::size_t r = 0; r < rows_; ++r) s += At(r, i) * At(r, j);
      g.At(i, j) = s;
      g.At(j, i) = s;
    }
  }
  return g;
}

Status Matrix::AddDiagonal(double lambda) {
  if (rows_ != cols_) {
    return InvalidArgumentError("Matrix::AddDiagonal: matrix must be square");
  }
  for (std::size_t i = 0; i < rows_; ++i) At(i, i) += lambda;
  return Status::Ok();
}

StatusOr<Vector> Matrix::CholeskySolve(const Vector& b) const {
  if (rows_ != cols_) {
    return InvalidArgumentError("CholeskySolve: matrix must be square");
  }
  if (b.size() != rows_) {
    return InvalidArgumentError("CholeskySolve: rhs size mismatch");
  }
  const std::size_t n = rows_;
  // Lower-triangular factor L with this = L * L^T.
  std::vector<double> l(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = At(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l[i * n + k] * l[j * n + k];
      if (i == j) {
        if (s <= 0.0) {
          return FailedPreconditionError("CholeskySolve: matrix not positive definite");
        }
        l[i * n + j] = std::sqrt(s);
      } else {
        l[i * n + j] = s / l[j * n + j];
      }
    }
  }
  // Forward substitution: L y = b.
  Vector y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l[i * n + k] * y[k];
    y[i] = s / l[i * n + i];
  }
  // Back substitution: L^T x = y.
  Vector x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l[k * n + ii] * x[k];
    x[ii] = s / l[ii * n + ii];
  }
  return x;
}

}  // namespace dplearn
