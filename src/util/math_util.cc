#include "util/math_util.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <string>

namespace dplearn {

double LogSumExp(const double* x, std::size_t n) {
  if (n == 0) return -std::numeric_limits<double>::infinity();
  // Max by explicit scan: max_element's comparator gives an arbitrary
  // answer when NaN is present, and NaN must propagate, not vanish.
  double m = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    if (std::isnan(x[i])) return x[i];
    if (x[i] > m) m = x[i];
  }
  // all -inf -> log of a zero sum; any +inf dominates. A single finite
  // element returns exactly that element (exp(0) == 1, log(1) == 0).
  if (!std::isfinite(m)) return m;
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += std::exp(x[i] - m);
  return m + std::log(sum);
}

double LogSumExp(const std::vector<double>& x) { return LogSumExp(x.data(), x.size()); }

double LogAddExp(double a, double b) {
  if (a == -std::numeric_limits<double>::infinity()) return b;
  if (b == -std::numeric_limits<double>::infinity()) return a;
  const double m = std::max(a, b);
  return m + std::log1p(std::exp(std::min(a, b) - m));
}

StatusOr<std::vector<double>> SoftmaxFromLog(const std::vector<double>& log_weights) {
  std::vector<double> p(log_weights.size());
  DPLEARN_RETURN_IF_ERROR(SoftmaxFromLogInto(log_weights.data(), log_weights.size(), p.data()));
  return p;
}

Status SoftmaxFromLogInto(const double* log_weights, std::size_t n, double* out) {
  if (n == 0) {
    return InvalidArgumentError("SoftmaxFromLog: empty input");
  }
  const double lse = LogSumExp(log_weights, n);
  if (!std::isfinite(lse)) {
    return InvalidArgumentError("SoftmaxFromLog: weights sum to zero or are non-finite");
  }
  for (std::size_t i = 0; i < n; ++i) out[i] = std::exp(log_weights[i] - lse);
  return Status::Ok();
}

double XLogX(double x) {
  if (x == 0.0) return 0.0;
  return x * std::log(x);
}

double XLogXOverY(double x, double y) {
  if (x == 0.0) return 0.0;
  if (y == 0.0) return std::numeric_limits<double>::infinity();
  return x * std::log(x / y);
}

double Clamp(double x, double lo, double hi) { return std::min(hi, std::max(lo, x)); }

bool ApproxEqual(double a, double b, double abs_tol, double rel_tol) {
  const double diff = std::fabs(a - b);
  return diff <= abs_tol + rel_tol * std::max(std::fabs(a), std::fabs(b));
}

StatusOr<double> Mean(const std::vector<double>& x) {
  if (x.empty()) return InvalidArgumentError("Mean: empty input");
  return std::accumulate(x.begin(), x.end(), 0.0) / static_cast<double>(x.size());
}

StatusOr<double> SampleVariance(const std::vector<double>& x) {
  if (x.size() < 2) return InvalidArgumentError("SampleVariance: need at least 2 samples");
  const double m = std::accumulate(x.begin(), x.end(), 0.0) / static_cast<double>(x.size());
  double ss = 0.0;
  for (double v : x) ss += (v - m) * (v - m);
  return ss / static_cast<double>(x.size() - 1);
}

StatusOr<double> Quantile(std::vector<double> x, double q) {
  if (x.empty()) return InvalidArgumentError("Quantile: empty input");
  if (q < 0.0 || q > 1.0) return InvalidArgumentError("Quantile: q must be in [0,1]");
  std::sort(x.begin(), x.end());
  const double pos = q * static_cast<double>(x.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, x.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return x[lo] * (1.0 - frac) + x[hi] * frac;
}

Status ValidateDistribution(const std::vector<double>& p, double tol) {
  if (p.empty()) return InvalidArgumentError("ValidateDistribution: empty distribution");
  double sum = 0.0;
  for (double v : p) {
    if (!(v >= 0.0)) {
      return InvalidArgumentError("ValidateDistribution: negative or NaN probability " +
                                  std::to_string(v));
    }
    sum += v;
  }
  if (std::fabs(sum - 1.0) > tol) {
    return InvalidArgumentError("ValidateDistribution: probabilities sum to " +
                                std::to_string(sum) + ", expected 1");
  }
  return Status::Ok();
}

StatusOr<std::vector<double>> Normalize(const std::vector<double>& w) {
  if (w.empty()) return InvalidArgumentError("Normalize: empty weights");
  double sum = 0.0;
  for (double v : w) {
    if (!(v >= 0.0) || !std::isfinite(v)) {
      return InvalidArgumentError("Normalize: weights must be finite and non-negative");
    }
    sum += v;
  }
  if (sum <= 0.0) return InvalidArgumentError("Normalize: weights sum to zero");
  std::vector<double> p(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) p[i] = w[i] / sum;
  return p;
}

StatusOr<std::vector<double>> Linspace(double lo, double hi, std::size_t count) {
  if (count < 2) return InvalidArgumentError("Linspace: count must be >= 2");
  if (!(lo < hi)) return InvalidArgumentError("Linspace: lo must be < hi");
  std::vector<double> grid(count);
  const double step = (hi - lo) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) grid[i] = lo + step * static_cast<double>(i);
  grid.back() = hi;  // avoid accumulated rounding at the endpoint
  return grid;
}

StatusOr<double> CatoniPhi(double gamma, double r) {
  if (gamma <= 0.0) return InvalidArgumentError("CatoniPhi: gamma must be positive");
  const double scale = -std::expm1(-gamma);  // 1 - exp(-gamma), stable for small gamma
  const double arg = 1.0 - scale * r;
  if (arg <= 0.0) {
    return OutOfRangeError("CatoniPhi: argument outside domain (bound is vacuous)");
  }
  return -std::log(arg) / gamma;
}

double CatoniContractionFactor(double lambda, double n) {
  const double gamma = lambda / n;
  return -std::expm1(-gamma) / gamma;
}

}  // namespace dplearn
