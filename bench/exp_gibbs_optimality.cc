/// E3 — Lemma 3.2: the Gibbs posterior minimizes the PAC-Bayes objective
/// F(ρ) = E_ρ[R̂] + KL(ρ‖π)/λ.
///
/// Workload: Bernoulli mean estimation, n = 120, Θ = 41-point grid on
/// [0,1], squared loss. For a fixed sample we tabulate F at the Gibbs
/// posterior and at a panel of natural competitors; the Gibbs value must
/// equal the closed-form minimum -(1/λ) ln E_π[e^{-λR̂}] and undercut every
/// competitor.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/experiment_util.h"
#include "core/gibbs_estimator.h"
#include "core/pac_bayes.h"
#include "learning/generators.h"
#include "learning/risk.h"
#include "sampling/rng.h"
#include "util/math_util.h"

namespace dplearn {
namespace {

struct Competitor {
  std::string name;
  std::vector<double> posterior;
};

void Run() {
  bench::PrintHeader("E3 (Lemma 3.2)", "Gibbs posterior minimizes E[risk] + KL/lambda");

  const std::size_t n = 120;
  const double lambda = 25.0;
  auto task = bench::Unwrap(BernoulliMeanTask::Create(0.35), "task");
  ClippedSquaredLoss loss(1.0);
  auto hclass = bench::Unwrap(FiniteHypothesisClass::ScalarGrid(0.0, 1.0, 41), "grid");
  const std::vector<double> prior = hclass.UniformPrior();

  Rng rng(bench::BaseSeed(303));
  Dataset data = bench::Unwrap(task.Sample(n, &rng), "sample");
  auto risks = bench::Unwrap(EmpiricalRiskProfile(loss, hclass.thetas(), data), "risks");

  auto gibbs = bench::Unwrap(GibbsPosteriorFromRisks(risks, prior, lambda), "gibbs");
  const double at_gibbs = bench::Unwrap(PacBayesObjective(gibbs, risks, prior, lambda),
                                        "objective(gibbs)");
  const double closed_form =
      bench::Unwrap(PacBayesObjectiveMinimum(risks, prior, lambda), "closed form");

  std::vector<Competitor> competitors;
  competitors.push_back({"gibbs (lambda)", gibbs});
  competitors.push_back({"prior (uniform)", prior});
  // Point mass on the ERM hypothesis.
  std::vector<double> erm_point(hclass.size(), 0.0);
  std::size_t argmin = bench::Unwrap(hclass.ArgMin(risks), "argmin");
  erm_point[argmin] = 1.0;
  competitors.push_back({"ERM point mass", erm_point});
  // Tempered variants.
  competitors.push_back(
      {"gibbs (lambda/4)",
       bench::Unwrap(GibbsPosteriorFromRisks(risks, prior, lambda / 4.0), "tempered")});
  competitors.push_back(
      {"gibbs (4*lambda)",
       bench::Unwrap(GibbsPosteriorFromRisks(risks, prior, 4.0 * lambda), "tempered")});
  // Mixture toward uniform.
  std::vector<double> mixed(hclass.size());
  for (std::size_t i = 0; i < mixed.size(); ++i) {
    mixed[i] = 0.5 * gibbs[i] + 0.5 * prior[i];
  }
  competitors.push_back({"0.5*gibbs + 0.5*uniform", mixed});
  // Shifted Gibbs (posterior computed from perturbed risks).
  std::vector<double> shifted_risks = risks;
  for (std::size_t i = 0; i < shifted_risks.size(); ++i) {
    shifted_risks[i] += 0.05 * std::sin(static_cast<double>(i));
  }
  competitors.push_back(
      {"gibbs on perturbed risks",
       bench::Unwrap(GibbsPosteriorFromRisks(shifted_risks, prior, lambda), "shifted")});

  std::printf("n=%zu, |Theta|=%zu, lambda=%.1f, closed-form minimum F*=%.6f\n", n,
              hclass.size(), lambda, closed_form);
  std::printf("\n%-28s %12s %12s %12s %12s\n", "posterior", "E[risk]", "KL/lambda",
              "objective F", "gap to F*");

  bool gibbs_is_min = true;
  for (const Competitor& c : competitors) {
    double expected_risk = 0.0;
    double kl = 0.0;
    for (std::size_t i = 0; i < c.posterior.size(); ++i) {
      expected_risk += c.posterior[i] * risks[i];
      kl += XLogXOverY(c.posterior[i], prior[i]);
    }
    const double objective =
        bench::Unwrap(PacBayesObjective(c.posterior, risks, prior, lambda), "objective");
    std::printf("%-28s %12.6f %12.6f %12.6f %12.6f\n", c.name.c_str(), expected_risk,
                kl / lambda, objective, objective - closed_form);
    if (c.name != "gibbs (lambda)" && objective < at_gibbs - 1e-12) {
      gibbs_is_min = false;
    }
  }

  bench::PrintSection("verdicts");
  bench::Verdict(std::fabs(at_gibbs - closed_form) < 1e-9,
                 "F(gibbs) equals the closed-form minimum -(1/l) ln E_pi[e^{-l R}]");
  bench::Verdict(gibbs_is_min, "no competitor posterior undercuts the Gibbs posterior");
}

}  // namespace
}  // namespace dplearn

int main(int argc, char** argv) {
  return dplearn::bench::GuardedMain(argc, argv, [] { dplearn::Run(); });
}
