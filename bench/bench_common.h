#ifndef DPLEARN_BENCH_BENCH_COMMON_H_
#define DPLEARN_BENCH_BENCH_COMMON_H_

#include <cstddef>
#include <vector>

#include "learning/dataset.h"
#include "learning/generators.h"
#include "learning/hypothesis.h"
#include "learning/loss.h"
#include "sampling/rng.h"

namespace dplearn {
namespace bench {

/// Shared fixtures for the per-subsystem microbenchmark binaries
/// (bench_sampling, bench_mechanisms, bench_gibbs, bench_infotheory).
/// Every fixture is seeded deterministically so two runs of a binary
/// measure the same work; scripts/run_bench.sh merges the binaries' JSON
/// into the BENCH_<rev>.json snapshot that bench_compare.py diffs.

/// A Bernoulli(0.4) labelled dataset of size n, seeded by `seed`.
inline Dataset MakeBernoulliData(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return BernoulliMeanTask::Create(0.4).value().Sample(n, &rng).value();
}

/// The scalar hypothesis grid Θ = {0, 1/(m-1), ..., 1} used across the
/// Gibbs/mechanism benchmarks.
inline FiniteHypothesisClass MakeScalarGrid(std::size_t m) {
  return FiniteHypothesisClass::ScalarGrid(0.0, 1.0, m).value();
}

/// Mildly decaying log-weights of length m — a stand-in for
/// exponential-mechanism scores with no risk evaluation attached.
inline std::vector<double> MakeLogWeights(std::size_t m) {
  std::vector<double> log_w(m);
  for (std::size_t i = 0; i < m; ++i) log_w[i] = -static_cast<double>(i) * 0.01;
  return log_w;
}

}  // namespace bench
}  // namespace dplearn

#endif  // DPLEARN_BENCH_BENCH_COMMON_H_
