// E-LDP: the local-privacy channel story, measured.
//
// Part 1 — contraction / data-processing. An eps-LDP channel is a noisy
// map whose likelihood ratios are capped at e^eps, so information about the
// input can only contract through it. Duchi–Jordan–Wainwright make that
// quantitative: for ANY eps-local channel Q and ANY pair of input laws,
// KL(Q(P0) || Q(P1)) <= min(4, e^eps) (e^eps - 1)^2 TV(P0, P1)^2 — which
// bounds I(X; Z) <= min(eps, min(4, e^eps)(e^eps - 1)^2) in nats; the
// quadratic (e^eps - 1)^2 ~ eps^2 behavior at small eps is the whole
// minimax price of the local model. We measure exact channel MI, plug-in
// estimates from privatized samples, and the empirical contraction
// coefficient of a composed channel, and gate each against the bound.
//
// Part 2 — the frontier. The same budget eps spent three ways on one
// learning task (two-Gaussian linear classification): central DP-SGD
// (trusted curator, subsampled Gaussian), LocalDpSgd (every example's
// clipped gradient through a DJW channel), and a federated round loop
// (clients privatize model deltas with DJW). True 0-1 risk comes from the
// task's closed form, so the frontier is exact given the learned theta.
// Every scalar recorded here is bit-identical at any DPLEARN_THREADS (the
// determinism CI gate runs this binary at 1 and 8 threads and diffs).

#include <cmath>
#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/experiment_util.h"
#include "core/dp_sgd.h"
#include "infotheory/channel.h"
#include "infotheory/mutual_information.h"
#include "learning/generators.h"
#include "learning/loss.h"
#include "localdp/federated.h"
#include "localdp/local_channel.h"
#include "localdp/local_dp_sgd.h"
#include "obs/config.h"
#include "sampling/distributions.h"
#include "sampling/rng.h"
#include "util/matrix.h"
#include "util/status.h"

namespace dplearn {
namespace {

/// I(X;Z) upper bound for any eps-local channel (nats): the pointwise
/// likelihood-ratio cap gives I <= eps; the DJW pairwise-KL bound gives
/// I <= min(4, e^eps)(e^eps - 1)^2 (with TV between point-mass inputs = 1).
double LdpMiBound(double eps) {
  const double e_eps = std::exp(eps);
  return std::min(eps, std::min(4.0, e_eps) * (e_eps - 1.0) * (e_eps - 1.0));
}

/// Dobrushin/KL contraction coefficient bound of the binary randomized-
/// response channel: eta_KL <= eta_TV^2-free bound ((e^eps-1)/(e^eps+1))^2
/// for the symmetric binary channel with flip probability 1/(1+e^eps).
double RrContractionBound(double eps) {
  const double e_eps = std::exp(eps);
  const double dobrushin = (e_eps - 1.0) / (e_eps + 1.0);
  return dobrushin * dobrushin;
}

struct MiSampleBlock {
  std::vector<std::size_t> xs;
  std::vector<std::size_t> ys;
};

struct ProjectionBlock {
  std::vector<double> xs;
  std::vector<double> ys;
};

struct FrontierPoint {
  double central = 0.0;
  double local = 0.0;
  double federated = 0.0;
  double federated_clear = 0.0;
};

void RunContractionPart() {
  bench::PrintSection("Part 1: channel contraction vs the DJW DPI bound");
  std::printf("%8s %12s %12s %12s %12s %12s %12s\n", "eps", "exact-MI", "plugin-MI",
              "bound", "djw-MI", "eta-emp", "eta-bound");

  Rng rng(bench::BaseSeed(20260809));
  const std::size_t blocks = bench::TrialCount(64, 12);
  const std::size_t block_draws = bench::SmokeMode() ? 250 : 2000;
  const double p_one = 0.3;  // P(X = +1): skewed so H(X) < ln 2 is exercised

  bool mi_within_bound = true;
  bool ratio_exact = true;
  bool dpi_holds = true;
  bool contraction_within_bound = true;
  bool djw_within_bound = true;

  for (const double eps : {0.25, 0.5, 1.0, 2.0}) {
    const std::string cell = "part1:eps=" + std::to_string(eps);
    bench::GuardCell(cell, [&] {
      const localdp::RandomizedResponseChannel channel = bench::Unwrap(
          localdp::RandomizedResponseChannel::Create(eps, {-1.0, +1.0}), "RR create");

      // Exact side: the transition matrix IS the channel, so MI and the max
      // likelihood ratio are closed-form — the sampled estimates below must
      // agree with these and both must respect the bound.
      const DiscreteChannel discrete =
          bench::Unwrap(DiscreteChannel::Create(channel.TransitionMatrix()),
                        "discrete channel");
      const std::vector<double> px = {1.0 - p_one, p_one};
      const double exact_mi =
          bench::Unwrap(discrete.MutualInformation(px), "exact MI");
      const double max_log_ratio = discrete.MaxLogRatio({});

      // Sampled side: privatize Bernoulli labels in deterministic parallel
      // blocks (trial t = t-th split, folded in order) and run the plug-in
      // estimator. Audit self-reports pause inside the measurement loop —
      // these draws are simulation, not releases.
      std::vector<MiSampleBlock> sample_blocks;
      {
        obs::ScopedAuditPause pause;
        sample_blocks = bench::RunTrials<MiSampleBlock>(
            blocks, &rng, [&](std::size_t, Rng& block_rng) {
              MiSampleBlock block;
              block.xs.reserve(block_draws);
              block.ys.reserve(block_draws);
              Example example;
              for (std::size_t i = 0; i < block_draws; ++i) {
                StatusOr<int> bit = SampleBernoulli(&block_rng, p_one);
                if (!bit.ok()) continue;  // injected fault: drop the draw
                example.label = bit.value() == 1 ? +1.0 : -1.0;
                StatusOr<Example> privatized = channel.Privatize(example, &block_rng);
                if (!privatized.ok()) continue;
                block.xs.push_back(static_cast<std::size_t>(bit.value()));
                block.ys.push_back(privatized.value().label > 0.0 ? 1 : 0);
              }
              return block;
            });
      }
      std::vector<std::size_t> xs;
      std::vector<std::size_t> ys;
      for (const MiSampleBlock& block : sample_blocks) {
        xs.insert(xs.end(), block.xs.begin(), block.xs.end());
        ys.insert(ys.end(), block.ys.begin(), block.ys.end());
      }
      double plugin_mi = bench::Unwrap(PluginMiFromSamples(xs, ys), "plug-in MI");
      plugin_mi -= MillerMadowCorrection(2, 2, 4, xs.size());

      // Composed channel RR∘RR: data processing says MI can only shrink,
      // and the per-stage contraction coefficient is bounded by the
      // squared Dobrushin coefficient of the second stage.
      const std::vector<std::vector<double>> t1 = channel.TransitionMatrix();
      std::vector<std::vector<double>> t2(2, std::vector<double>(2, 0.0));
      for (std::size_t i = 0; i < 2; ++i) {
        for (std::size_t j = 0; j < 2; ++j) {
          for (std::size_t k = 0; k < 2; ++k) t2[i][j] += t1[i][k] * t1[k][j];
        }
      }
      const DiscreteChannel composed =
          bench::Unwrap(DiscreteChannel::Create(t2), "composed channel");
      const double composed_mi =
          bench::Unwrap(composed.MutualInformation(px), "composed MI");
      const double eta_emp = exact_mi > 0.0 ? composed_mi / exact_mi : 0.0;
      const double eta_bound = RrContractionBound(eps);

      // DJW vector channel (d = 3): binary source v0/v1 = -/+ r e1, output
      // projected onto e1 (post-processing, so its MI lower-bounds the
      // channel MI and must also sit under the bound).
      const std::size_t djw_dim = 3;
      const localdp::DjwL2Channel djw = bench::Unwrap(
          localdp::DjwL2Channel::Create(eps, 1.0, djw_dim), "DJW create");
      std::vector<ProjectionBlock> projection_blocks;
      {
        obs::ScopedAuditPause pause;
        projection_blocks = bench::RunTrials<ProjectionBlock>(
            blocks, &rng, [&](std::size_t, Rng& block_rng) {
              ProjectionBlock block;
              Vector v(djw_dim, 0.0);
              for (std::size_t i = 0; i < block_draws; ++i) {
                StatusOr<int> bit = SampleBernoulli(&block_rng, 0.5);
                if (!bit.ok()) continue;
                v[0] = bit.value() == 1 ? 1.0 : -1.0;
                StatusOr<Vector> z = djw.PrivatizeVector(v, &block_rng);
                if (!z.ok()) continue;
                block.xs.push_back(static_cast<double>(bit.value()));
                block.ys.push_back(z.value()[0]);
              }
              return block;
            });
      }
      std::vector<double> proj_xs;
      std::vector<double> proj_ys;
      for (const ProjectionBlock& block : projection_blocks) {
        proj_xs.insert(proj_xs.end(), block.xs.begin(), block.xs.end());
        proj_ys.insert(proj_ys.end(), block.ys.begin(), block.ys.end());
      }
      const double djw_mi =
          bench::Unwrap(HistogramMi(proj_xs, proj_ys, 16), "DJW histogram MI");

      const double bound = LdpMiBound(eps);
      // Estimator slack: Miller–Madow removes the leading bias; the
      // residual is O(1/n) for the plug-in and O(bins/n) for the histogram.
      const double slack = 0.02 + 2.0 / std::sqrt(static_cast<double>(xs.size()));

      mi_within_bound = mi_within_bound && exact_mi <= bound + 1e-12 &&
                        plugin_mi <= bound + slack;
      ratio_exact = ratio_exact && std::fabs(max_log_ratio - eps) <= 1e-9;
      dpi_holds = dpi_holds && composed_mi <= exact_mi + 1e-12;
      contraction_within_bound =
          contraction_within_bound && eta_emp <= eta_bound + 1e-9;
      djw_within_bound = djw_within_bound && djw_mi <= bound + slack;

      std::printf("%8.2f %12.6f %12.6f %12.6f %12.6f %12.6f %12.6f\n", eps,
                  exact_mi, plugin_mi, bound, djw_mi, eta_emp, eta_bound);
      const std::string key = "eps=" + std::to_string(eps);
      bench::RecordScalar("part1.exact_mi." + key, exact_mi);
      bench::RecordScalar("part1.plugin_mi." + key, plugin_mi);
      bench::RecordScalar("part1.djw_mi." + key, djw_mi);
      bench::RecordScalar("part1.eta_emp." + key, eta_emp);
      bench::RecordScalar("part1.max_log_ratio." + key, max_log_ratio);
    });
  }

  bench::Verdict(mi_within_bound,
                 "RR channel MI (exact and plug-in) <= min(eps, min(4,e^eps)(e^eps-1)^2)");
  bench::Verdict(ratio_exact,
                 "RR max likelihood ratio equals e^eps exactly (the LDP cap is tight)");
  bench::Verdict(dpi_holds, "composing two RR channels only loses information (DPI)");
  bench::Verdict(contraction_within_bound,
                 "empirical contraction coefficient <= squared Dobrushin bound");
  bench::Verdict(djw_within_bound,
                 "DJW channel MI estimate respects the same DJW DPI bound");
}

void RunFrontierPart() {
  bench::PrintSection("Part 2: central vs local vs federated privacy-utility frontier");

  const Vector task_mean = {1.0, 0.6};
  const GaussianMixtureTask task =
      bench::Unwrap(GaussianMixtureTask::Create(task_mean, 1.0), "task");
  const LogisticLoss loss(8.0);
  const std::size_t n = bench::SmokeMode() ? 160 : 480;
  const std::size_t trials = bench::TrialCount(8, 2);
  const std::size_t rounds = 30;
  // The federated arm concentrates its budget into fewer rounds: DJW noise
  // enters per round, so at fixed total eps fewer/larger releases keep the
  // per-round output norm B (~ 2r/(eps_round * c_d)) manageable.
  const std::size_t federated_rounds = 10;
  const std::size_t federated_clients = 16;
  const std::size_t sgd_steps = 60;
  const double sgd_q = 0.1;  // inside the amplified small-q regime
  const double delta = 1e-5;

  Rng rng(bench::BaseSeed(20260809));
  std::printf("%8s %10s %10s %10s %12s   (bayes %.4f)\n", "eps", "central", "local",
              "federated", "fed-clear", task.BayesRisk());

  std::vector<double> eps_grid = {1.0, 4.0, 16.0};
  std::vector<FrontierPoint> frontier;
  bool frontier_complete = true;

  for (const double eps : eps_grid) {
    const std::string cell = "part2:eps=" + std::to_string(eps);
    FrontierPoint point;
    const bool cell_ok = bench::GuardCell(cell, [&] {
      // Central arm: calibrate sigma to the target eps once (deterministic),
      // then run DP-SGD per trial.
      const double sigma = bench::Unwrap(
          NoiseMultiplierForTarget(eps, sgd_q, sgd_steps, delta), "sigma calibration");

      struct TrialRisks {
        double central = 0.0;
        double local = 0.0;
        double federated = 0.0;
        double federated_clear = 0.0;
        bool ok = false;
      };
      std::vector<TrialRisks> risks;
      {
        obs::ScopedAuditPause pause;
        risks = bench::RunTrials<TrialRisks>(trials, &rng, [&](std::size_t, Rng& trial_rng) {
          TrialRisks out;
          StatusOr<Dataset> data = task.Sample(n, &trial_rng);
          if (!data.ok()) return out;

          DpSgdOptions central;
          central.noise_multiplier = sigma;
          central.sampling_rate = sgd_q;
          central.steps = sgd_steps;
          central.learning_rate = 0.2;
          central.l2_lambda = 0.01;
          central.delta = delta;
          StatusOr<DpSgdResult> central_run =
              DpSgd(loss, data.value(), central, &trial_rng);
          if (!central_run.ok()) return out;
          out.central = task.TrueZeroOneRisk(central_run.value().theta);

          localdp::LocalDpSgdOptions local;
          local.epsilon_per_round = eps / static_cast<double>(rounds);
          local.rounds = rounds;
          local.clip_norm = 1.0;
          local.learning_rate = 0.4;
          local.l2_lambda = 0.01;
          StatusOr<localdp::LocalDpSgdResult> local_run =
              localdp::LocalDpSgd(loss, data.value(), local, &trial_rng);
          if (!local_run.ok()) return out;
          out.local = task.TrueZeroOneRisk(local_run.value().theta);

          localdp::FederatedOptions federated;
          federated.num_clients = federated_clients;
          federated.rounds = federated_rounds;
          federated.local_steps = 2;
          federated.learning_rate = 0.5;
          federated.clip_norm = 1.0;
          federated.model = localdp::FederatedPrivacyModel::kLocalDjw;
          federated.epsilon_per_round = eps / static_cast<double>(federated_rounds);
          StatusOr<localdp::FederatedSimulator> simulator = localdp::FederatedSimulator::Create(
              &loss, data.value(), federated);
          if (!simulator.ok()) return out;
          StatusOr<localdp::FederatedResult> federated_run =
              simulator.value().Run(&trial_rng);
          if (!federated_run.ok()) return out;
          out.federated = task.TrueZeroOneRisk(federated_run.value().theta);

          federated.model = localdp::FederatedPrivacyModel::kNone;
          StatusOr<localdp::FederatedSimulator> clear_simulator =
              localdp::FederatedSimulator::Create(&loss, data.value(), federated);
          if (!clear_simulator.ok()) return out;
          StatusOr<localdp::FederatedResult> clear_run =
              clear_simulator.value().Run(&trial_rng);
          if (!clear_run.ok()) return out;
          out.federated_clear = task.TrueZeroOneRisk(clear_run.value().theta);

          out.ok = true;
          return out;
        });
      }
      std::size_t completed = 0;
      for (const TrialRisks& trial : risks) {
        if (!trial.ok) continue;
        ++completed;
        point.central += trial.central;
        point.local += trial.local;
        point.federated += trial.federated;
        point.federated_clear += trial.federated_clear;
      }
      if (completed == 0) {
        frontier_complete = false;
        return;
      }
      const double inv = 1.0 / static_cast<double>(completed);
      point.central *= inv;
      point.local *= inv;
      point.federated *= inv;
      point.federated_clear *= inv;

      std::printf("%8.1f %10.4f %10.4f %10.4f %12.4f\n", eps, point.central,
                  point.local, point.federated, point.federated_clear);
      const std::string key = "eps=" + std::to_string(eps);
      bench::RecordScalar("part2.central_risk." + key, point.central);
      bench::RecordScalar("part2.local_risk." + key, point.local);
      bench::RecordScalar("part2.federated_risk." + key, point.federated);
      bench::RecordScalar("part2.federated_clear_risk." + key, point.federated_clear);
      bench::RecordScalar("part2.sigma." + key, sigma);
    });
    if (!cell_ok) {
      frontier_complete = false;
      continue;
    }
    frontier.push_back(point);
  }

  if (!frontier_complete || frontier.size() != eps_grid.size()) {
    bench::Verdict(false, "frontier sweep completed every cell");
    return;
  }
  bench::Verdict(true, "frontier sweep completed every cell");

  const FrontierPoint& loosest = frontier.back();
  // The slack terms absorb Monte-Carlo noise at the configured trial
  // counts; the ORDER of the arms is the claim under test.
  bench::Verdict(loosest.central <= loosest.local + 0.05,
                 "at eps=16, central DP-SGD risk <= local DP-SGD risk (+0.05 MC slack): "
                 "the trusted curator buys utility");
  bench::Verdict(loosest.federated_clear <= loosest.federated + 0.05,
                 "at eps=16, non-private federated risk <= DJW-privatized federated risk "
                 "(+0.05): local channels cost utility");
  bench::Verdict(loosest.central < 0.45 && loosest.local < 0.45 && loosest.federated < 0.45,
                 "at eps=16 every arm beats random guessing (risk < 0.45)");
  bench::Verdict(frontier.front().local + 0.05 >= loosest.local &&
                     frontier.front().central + 0.05 >= loosest.central,
                 "risk does not increase as the budget loosens from eps=1 to eps=16 "
                 "(+0.05 MC slack per arm)");
}

void Run() {
  bench::PrintHeader(
      "E-LDP (local privacy: DJW channels, contraction, and the federated frontier)",
      "eps-local channels contract information within the DJW DPI bound, and the "
      "central/local/federated frontier orders as the trust model predicts");
  RunContractionPart();
  RunFrontierPart();
}

}  // namespace
}  // namespace dplearn

int main(int argc, char** argv) {
  return dplearn::bench::GuardedMain(argc, argv, [] { dplearn::Run(); });
}
