/// E7 — Section 4's trade-off: true-risk cost of privacy for the Gibbs
/// estimator, against baselines.
///
/// Part A (mean estimation): expected TRUE risk of the released predictor
/// vs ε at several n, comparing the Gibbs/exponential-mechanism learner
/// (λ calibrated so 2λΔ = ε), the Laplace mechanism on the empirical mean,
/// randomized response with debiasing, and the non-private ERM floor.
///
/// Part B (linear classification on a Gaussian mixture): Gibbs over a
/// 2-D hypothesis grid with 0-1 loss vs the Chaudhuri et al. private-ERM
/// baselines (output & objective perturbation on the logistic surrogate),
/// DP-SGD (approximate-DP, RDP-accounted — see core/dp_sgd.h), and
/// non-private ERM. Expected shape: all private learners approach the
/// non-private floor as ε or n grows; Gibbs dominates output perturbation
/// at small ε; everyone pays at ε << 1.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/experiment_util.h"
#include "core/dp_sgd.h"
#include "core/gibbs_estimator.h"
#include "core/learning_channel.h"
#include "core/private_erm.h"
#include "learning/erm.h"
#include "learning/generators.h"
#include "learning/risk.h"
#include "mechanisms/laplace.h"
#include "mechanisms/sensitivity.h"
#include "obs/config.h"
#include "sampling/rng.h"
#include "util/math_util.h"

namespace dplearn {
namespace {

void PartAMeanEstimation() {
  bench::PrintSection("Part A: Bernoulli mean estimation (squared loss, true risk exact)");

  const double p = 0.35;
  auto task = bench::Unwrap(BernoulliMeanTask::Create(p), "task");
  ClippedSquaredLoss loss(1.0);
  auto hclass = bench::Unwrap(FiniteHypothesisClass::ScalarGrid(0.0, 1.0, 41), "grid");
  const std::size_t trials = bench::TrialCount(3000, 60);
  Rng rng(707);

  std::printf("Bayes risk (irreducible) = %.4f; excess risk reported below\n",
              task.BayesRisk());
  std::printf("\n%6s %8s %14s %14s %14s %14s\n", "n", "eps", "gibbs", "laplace",
              "rand.resp.", "non-private");

  for (std::size_t n : {30u, 100u, 300u}) {
    for (double eps : {0.1, 0.5, 2.0}) {
      // Each (n, eps) cell is guarded: an injected fault inside it becomes a
      // structured failure record and the sweep moves to the next cell.
      char cell[64];
      std::snprintf(cell, sizeof cell, "parta_n%zu_eps%.2f", n, eps);
      bench::GuardCell(cell, [&] {
      // Gibbs: lambda calibrated so the Theorem 4.1 guarantee equals eps.
      const double lambda = eps * static_cast<double>(n) / 2.0;
      auto channel = bench::Unwrap(
          BuildBernoulliGibbsChannel(task, n, loss, hclass, hclass.UniformPrior(), lambda),
          "channel");
      double gibbs_risk = 0.0;
      for (std::size_t k = 0; k <= n; ++k) {
        for (std::size_t i = 0; i < hclass.size(); ++i) {
          gibbs_risk += channel.input_marginal[k] *
                        channel.channel.TransitionProbability(k, i) *
                        task.TrueRisk(hclass.at(i)[0]);
        }
      }

      // Laplace on the empirical mean, clamped back into [0,1].
      auto query = bench::Unwrap(BoundedMeanQuery(0.0, 1.0, n), "query");
      auto laplace = bench::Unwrap(LaplaceMechanism::Create(query, eps), "laplace");
      struct TrialRisks {
        double laplace = 0.0;
        double rr = 0.0;
        double erm = 0.0;
      };
      auto trial_body = [&](std::size_t, Rng& trial_rng) {
        TrialRisks out;
        Dataset data = bench::Unwrap(task.Sample(n, &trial_rng), "sample");
        const double released =
            Clamp(bench::Unwrap(laplace.Release(data, &trial_rng), "release"), 0.0, 1.0);
        out.laplace = task.TrueRisk(released);

        // Randomized response per bit, then debias and clamp.
        auto rr = bench::Unwrap(RandomizedResponse::Create(eps), "rr");
        std::vector<int> reports;
        reports.reserve(n);
        for (const Example& z : data.examples()) {
          reports.push_back(
              bench::Unwrap(rr.Release(static_cast<int>(z.label), &trial_rng), "rr bit"));
        }
        const double rr_mean =
            Clamp(bench::Unwrap(rr.DebiasedMean(reports), "debias"), 0.0, 1.0);
        out.rr = task.TrueRisk(rr_mean);

        // Non-private ERM: the empirical mean itself.
        double mean = 0.0;
        for (const Example& z : data.examples()) mean += z.label;
        out.erm = task.TrueRisk(mean / static_cast<double>(n));
        return out;
      };
      // Trial 0 runs inline with auditing live (one audited release per
      // (n, eps) cell); the remaining trials are risk measurement and run
      // over the thread pool with the process-wide audit switch paused.
      // Trial t always consumes the t-th Split() of rng — see RunTrials.
      Rng first_rng = rng.Split();
      TrialRisks sums = trial_body(0, first_rng);
      {
        obs::ScopedAuditPause pause;
        for (const TrialRisks& r :
             bench::RunTrials<TrialRisks>(trials - 1, &rng, trial_body)) {
          sums.laplace += r.laplace;
          sums.rr += r.rr;
          sums.erm += r.erm;
        }
      }
      const double bayes = task.BayesRisk();
      std::printf("%6zu %8.2f %14.5f %14.5f %14.5f %14.5f\n", n, eps, gibbs_risk - bayes,
                  sums.laplace / trials - bayes, sums.rr / trials - bayes,
                  sums.erm / trials - bayes);
      // Monte-Carlo means into the record: CI's determinism gate asserts
      // these are bit-identical across DPLEARN_THREADS settings.
      char key[64];
      std::snprintf(key, sizeof key, "parta_laplace_excess_n%zu_eps%.2f", n, eps);
      bench::RecordScalar(key, sums.laplace / trials - bayes);
      });
    }
  }
}

void PartBClassification() {
  bench::PrintSection(
      "Part B: Gaussian-mixture classification (0-1 true risk, closed form)");

  auto task = bench::Unwrap(GaussianMixtureTask::Create({0.5, 0.25}, 0.6), "task");
  LogisticLoss logistic(50.0);
  ZeroOneLoss zero_one;
  const std::size_t n = 400;
  const std::size_t trials = bench::TrialCount(30, 6);

  // 2-D hypothesis grid for the Gibbs learner (0-1 loss quality).
  std::vector<Vector> grid_thetas;
  for (double a = -2.0; a <= 2.01; a += 0.25) {
    for (double b = -2.0; b <= 2.01; b += 0.25) {
      if (a != 0.0 || b != 0.0) grid_thetas.push_back(Vector{a, b});
    }
  }
  auto hclass = bench::Unwrap(FiniteHypothesisClass::Create(grid_thetas), "grid");

  PrivateErmOptions erm_options;
  erm_options.l2_lambda = 0.05;
  erm_options.lipschitz = 1.0;
  erm_options.smoothness = 0.25;
  erm_options.solver.learning_rate = 0.5;
  erm_options.solver.max_iters = 3000;

  std::printf("n=%zu, |grid|=%zu, Bayes risk=%.4f, %zu trials per cell\n", n,
              hclass.size(), task.BayesRisk(), trials);
  std::printf("\n%8s %12s %14s %14s %12s %14s\n", "eps", "gibbs", "output-pert",
              "objective-pert", "dp-sgd*", "non-private");

  Rng rng(808);
  for (double eps : {0.1, 0.5, 2.0, 8.0}) {
    char cell[64];
    std::snprintf(cell, sizeof cell, "partb_eps%.2f", eps);
    bench::GuardCell(cell, [&] {
    // DP-SGD configuration targeting this eps (sigma via binary search; the
    // * marks the q^2 leading-order amplification term, admitted at this
    // q = 0.1 <= kDpSgdAmplificationMaxQ — beyond that gate the accountant
    // falls back to the unamplified Gaussian bound).
    DpSgdOptions sgd;
    sgd.sampling_rate = 0.1;
    sgd.steps = 150;
    sgd.learning_rate = 0.5;
    sgd.delta = 1e-5;
    sgd.noise_multiplier = bench::Unwrap(
        NoiseMultiplierForTarget(eps, sgd.sampling_rate, sgd.steps, sgd.delta), "sigma");

    struct TrialRisks {
      double gibbs = 0.0;
      double output = 0.0;
      double objective = 0.0;
      double dpsgd = 0.0;
      double erm = 0.0;
    };
    auto trial_body = [&](std::size_t, Rng& trial_rng) {
      TrialRisks out_risks;
      Dataset data = bench::Unwrap(task.Sample(n, &trial_rng), "sample");

      // Gibbs over the grid with 0-1 loss; 2*lambda*(1/n) = eps.
      const double lambda = eps * static_cast<double>(n) / 2.0;
      auto gibbs =
          bench::Unwrap(GibbsEstimator::CreateUniform(&zero_one, hclass, lambda), "gibbs");
      auto theta_g = bench::Unwrap(gibbs.SampleTheta(data, &trial_rng), "sample theta");
      out_risks.gibbs = task.TrueZeroOneRisk(theta_g);

      PrivateErmOptions opts = erm_options;
      opts.epsilon = eps;
      auto out = bench::Unwrap(OutputPerturbationErm(logistic, data, opts, &trial_rng),
                               "outp");
      out_risks.output = task.TrueZeroOneRisk(out.theta);
      auto obj =
          bench::Unwrap(ObjectivePerturbationErm(logistic, data, opts, &trial_rng), "objp");
      out_risks.objective = task.TrueZeroOneRisk(obj.theta);

      auto sgd_result = bench::Unwrap(DpSgd(logistic, data, sgd, &trial_rng), "dpsgd");
      out_risks.dpsgd = task.TrueZeroOneRisk(sgd_result.theta);

      GradientErmOptions solver = erm_options.solver;
      solver.l2_lambda = erm_options.l2_lambda;
      auto np = bench::Unwrap(
          GradientDescentErm(logistic, data, solver, Vector(2, 0.0)), "erm");
      out_risks.erm = task.TrueZeroOneRisk(np.theta);
      return out_risks;
    };
    // Trial 0 inline and audited (one audited pipeline per eps); the rest
    // are measurement over the pool with auditing paused. Per-trial streams
    // are split in trial order, so the column means are thread-count
    // invariant.
    Rng first_rng = rng.Split();
    TrialRisks sums = trial_body(0, first_rng);
    {
      obs::ScopedAuditPause pause;
      for (const TrialRisks& r :
           bench::RunTrials<TrialRisks>(trials - 1, &rng, trial_body)) {
        sums.gibbs += r.gibbs;
        sums.output += r.output;
        sums.objective += r.objective;
        sums.dpsgd += r.dpsgd;
        sums.erm += r.erm;
      }
    }
    std::printf("%8.2f %12.4f %14.4f %14.4f %12.4f %14.4f\n", eps,
                sums.gibbs / static_cast<double>(trials),
                sums.output / static_cast<double>(trials),
                sums.objective / static_cast<double>(trials),
                sums.dpsgd / static_cast<double>(trials),
                sums.erm / static_cast<double>(trials));
    char key[64];
    std::snprintf(key, sizeof key, "partb_gibbs_risk_eps%.2f", eps);
    bench::RecordScalar(key, sums.gibbs / static_cast<double>(trials));
    });
  }
  std::printf(
      "\nexpected shape: every private learner's risk falls toward the non-private floor\n"
      "as eps grows; output perturbation suffers most at small eps. dp-sgd* is an\n"
      "(eps, 1e-5)-DP guarantee under the q^2 amplification term, which the accountant\n"
      "only admits for q <= 0.1 (see core/dp_sgd.h; larger rates use the unamplified\n"
      "Gaussian bound), so its column is approximate-DP, not pure-DP like the others.\n");
}

void Run() {
  bench::PrintHeader("E7 (Section 4)", "privacy-utility trade-off of the Gibbs estimator");
  PartAMeanEstimation();
  PartBClassification();
}

}  // namespace
}  // namespace dplearn

int main(int argc, char** argv) {
  return dplearn::bench::GuardedMain(argc, argv, [] { dplearn::Run(); });
}
