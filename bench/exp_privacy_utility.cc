/// E7 — Section 4's trade-off: true-risk cost of privacy for the Gibbs
/// estimator, against baselines.
///
/// Part A (mean estimation): expected TRUE risk of the released predictor
/// vs ε at several n, comparing the Gibbs/exponential-mechanism learner
/// (λ calibrated so 2λΔ = ε), the Laplace mechanism on the empirical mean,
/// randomized response with debiasing, and the non-private ERM floor.
///
/// Part B (linear classification on a Gaussian mixture): Gibbs over a
/// 2-D hypothesis grid with 0-1 loss vs the Chaudhuri et al. private-ERM
/// baselines (output & objective perturbation on the logistic surrogate),
/// DP-SGD (approximate-DP, RDP-accounted — see core/dp_sgd.h), and
/// non-private ERM. Expected shape: all private learners approach the
/// non-private floor as ε or n grows; Gibbs dominates output perturbation
/// at small ε; everyone pays at ε << 1.

#include <cmath>
#include <cstdio>
#include <optional>
#include <vector>

#include "bench/experiment_util.h"
#include "core/dp_sgd.h"
#include "core/gibbs_estimator.h"
#include "core/learning_channel.h"
#include "core/private_erm.h"
#include "learning/erm.h"
#include "learning/generators.h"
#include "learning/risk.h"
#include "mechanisms/laplace.h"
#include "mechanisms/sensitivity.h"
#include "obs/config.h"
#include "sampling/rng.h"
#include "util/math_util.h"

namespace dplearn {
namespace {

void PartAMeanEstimation() {
  bench::PrintSection("Part A: Bernoulli mean estimation (squared loss, true risk exact)");

  const double p = 0.35;
  auto task = bench::Unwrap(BernoulliMeanTask::Create(p), "task");
  ClippedSquaredLoss loss(1.0);
  auto hclass = bench::Unwrap(FiniteHypothesisClass::ScalarGrid(0.0, 1.0, 41), "grid");
  const std::size_t trials = 3000;
  Rng rng(707);

  std::printf("Bayes risk (irreducible) = %.4f; excess risk reported below\n",
              task.BayesRisk());
  std::printf("\n%6s %8s %14s %14s %14s %14s\n", "n", "eps", "gibbs", "laplace",
              "rand.resp.", "non-private");

  for (std::size_t n : {30u, 100u, 300u}) {
    for (double eps : {0.1, 0.5, 2.0}) {
      // Gibbs: lambda calibrated so the Theorem 4.1 guarantee equals eps.
      const double lambda = eps * static_cast<double>(n) / 2.0;
      auto channel = bench::Unwrap(
          BuildBernoulliGibbsChannel(task, n, loss, hclass, hclass.UniformPrior(), lambda),
          "channel");
      double gibbs_risk = 0.0;
      for (std::size_t k = 0; k <= n; ++k) {
        for (std::size_t i = 0; i < hclass.size(); ++i) {
          gibbs_risk += channel.input_marginal[k] *
                        channel.channel.TransitionProbability(k, i) *
                        task.TrueRisk(hclass.at(i)[0]);
        }
      }

      // Laplace on the empirical mean, clamped back into [0,1].
      auto query = bench::Unwrap(BoundedMeanQuery(0.0, 1.0, n), "query");
      auto laplace = bench::Unwrap(LaplaceMechanism::Create(query, eps), "laplace");
      double laplace_risk = 0.0;
      double rr_risk = 0.0;
      double erm_risk = 0.0;
      for (std::size_t t = 0; t < trials; ++t) {
        // Audit the first trial per (n, eps); the rest are risk measurement.
        std::optional<obs::ScopedAuditPause> pause;
        if (t > 0) pause.emplace();
        Dataset data = bench::Unwrap(task.Sample(n, &rng), "sample");
        const double released =
            Clamp(bench::Unwrap(laplace.Release(data, &rng), "release"), 0.0, 1.0);
        laplace_risk += task.TrueRisk(released);

        // Randomized response per bit, then debias and clamp.
        auto rr = bench::Unwrap(RandomizedResponse::Create(eps), "rr");
        std::vector<int> reports;
        reports.reserve(n);
        for (const Example& z : data.examples()) {
          reports.push_back(
              bench::Unwrap(rr.Release(static_cast<int>(z.label), &rng), "rr bit"));
        }
        const double rr_mean =
            Clamp(bench::Unwrap(rr.DebiasedMean(reports), "debias"), 0.0, 1.0);
        rr_risk += task.TrueRisk(rr_mean);

        // Non-private ERM: the empirical mean itself.
        double mean = 0.0;
        for (const Example& z : data.examples()) mean += z.label;
        erm_risk += task.TrueRisk(mean / static_cast<double>(n));
      }
      const double bayes = task.BayesRisk();
      std::printf("%6zu %8.2f %14.5f %14.5f %14.5f %14.5f\n", n, eps, gibbs_risk - bayes,
                  laplace_risk / trials - bayes, rr_risk / trials - bayes,
                  erm_risk / trials - bayes);
    }
  }
}

void PartBClassification() {
  bench::PrintSection(
      "Part B: Gaussian-mixture classification (0-1 true risk, closed form)");

  auto task = bench::Unwrap(GaussianMixtureTask::Create({0.5, 0.25}, 0.6), "task");
  LogisticLoss logistic(50.0);
  ZeroOneLoss zero_one;
  const std::size_t n = 400;
  const std::size_t trials = 30;

  // 2-D hypothesis grid for the Gibbs learner (0-1 loss quality).
  std::vector<Vector> grid_thetas;
  for (double a = -2.0; a <= 2.01; a += 0.25) {
    for (double b = -2.0; b <= 2.01; b += 0.25) {
      if (a != 0.0 || b != 0.0) grid_thetas.push_back(Vector{a, b});
    }
  }
  auto hclass = bench::Unwrap(FiniteHypothesisClass::Create(grid_thetas), "grid");

  PrivateErmOptions erm_options;
  erm_options.l2_lambda = 0.05;
  erm_options.lipschitz = 1.0;
  erm_options.smoothness = 0.25;
  erm_options.solver.learning_rate = 0.5;
  erm_options.solver.max_iters = 3000;

  std::printf("n=%zu, |grid|=%zu, Bayes risk=%.4f, %zu trials per cell\n", n,
              hclass.size(), task.BayesRisk(), trials);
  std::printf("\n%8s %12s %14s %14s %12s %14s\n", "eps", "gibbs", "output-pert",
              "objective-pert", "dp-sgd*", "non-private");

  Rng rng(808);
  for (double eps : {0.1, 0.5, 2.0, 8.0}) {
    double gibbs_risk = 0.0;
    double output_risk = 0.0;
    double objective_risk = 0.0;
    double dpsgd_risk = 0.0;
    double erm_risk = 0.0;
    // DP-SGD configuration targeting this eps (sigma via binary search;
    // the * marks the q^2 leading-order amplification heuristic).
    DpSgdOptions sgd;
    sgd.sampling_rate = 0.1;
    sgd.steps = 150;
    sgd.learning_rate = 0.5;
    sgd.delta = 1e-5;
    sgd.noise_multiplier = bench::Unwrap(
        NoiseMultiplierForTarget(eps, sgd.sampling_rate, sgd.steps, sgd.delta), "sigma");
    for (std::size_t t = 0; t < trials; ++t) {
      // Audit the first trial per eps; the rest are risk measurement.
      std::optional<obs::ScopedAuditPause> pause;
      if (t > 0) pause.emplace();
      Dataset data = bench::Unwrap(task.Sample(n, &rng), "sample");

      // Gibbs over the grid with 0-1 loss; 2*lambda*(1/n) = eps.
      const double lambda = eps * static_cast<double>(n) / 2.0;
      auto gibbs =
          bench::Unwrap(GibbsEstimator::CreateUniform(&zero_one, hclass, lambda), "gibbs");
      auto theta_g = bench::Unwrap(gibbs.SampleTheta(data, &rng), "sample theta");
      gibbs_risk += task.TrueZeroOneRisk(theta_g);

      PrivateErmOptions opts = erm_options;
      opts.epsilon = eps;
      auto out = bench::Unwrap(OutputPerturbationErm(logistic, data, opts, &rng), "outp");
      output_risk += task.TrueZeroOneRisk(out.theta);
      auto obj =
          bench::Unwrap(ObjectivePerturbationErm(logistic, data, opts, &rng), "objp");
      objective_risk += task.TrueZeroOneRisk(obj.theta);

      auto sgd_result = bench::Unwrap(DpSgd(logistic, data, sgd, &rng), "dpsgd");
      dpsgd_risk += task.TrueZeroOneRisk(sgd_result.theta);

      GradientErmOptions solver = erm_options.solver;
      solver.l2_lambda = erm_options.l2_lambda;
      auto np = bench::Unwrap(GradientDescentErm(logistic, data, solver, Vector(2, 0.0)),
                              "erm");
      erm_risk += task.TrueZeroOneRisk(np.theta);
    }
    std::printf("%8.2f %12.4f %14.4f %14.4f %12.4f %14.4f\n", eps,
                gibbs_risk / static_cast<double>(trials),
                output_risk / static_cast<double>(trials),
                objective_risk / static_cast<double>(trials),
                dpsgd_risk / static_cast<double>(trials),
                erm_risk / static_cast<double>(trials));
  }
  std::printf(
      "\nexpected shape: every private learner's risk falls toward the non-private floor\n"
      "as eps grows; output perturbation suffers most at small eps. dp-sgd* is an\n"
      "(eps, 1e-5)-DP guarantee under the q^2 amplification heuristic (see core/dp_sgd.h),\n"
      "so its column is approximate-DP, not pure-DP like the others.\n");
}

void Run() {
  bench::PrintHeader("E7 (Section 4)", "privacy-utility trade-off of the Gibbs estimator");
  PartAMeanEstimation();
  PartBClassification();
}

}  // namespace
}  // namespace dplearn

int main() {
  dplearn::Run();
  return 0;
}
