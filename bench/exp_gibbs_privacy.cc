/// E5 — Theorem 4.1: the Gibbs estimator is 2λΔ(R̂)-differentially private.
///
/// Workload: Bernoulli mean estimation; the exact Figure-1 channel is
/// built for each (λ, n), and the tight privacy level
/// ε* = max ln-ratio over ALL neighboring dataset pairs and outputs is
/// measured exhaustively (the sufficient statistic makes this exact).
/// ε* must never exceed 2λΔ; the table also reports how tight the theorem
/// is against both the generic sensitivity Δ = B/n and the exact domain
/// sensitivity.

#include <cmath>
#include <cstdio>

#include "bench/experiment_util.h"
#include "core/learning_channel.h"
#include "learning/generators.h"
#include "learning/risk.h"

namespace dplearn {
namespace {

void Run() {
  bench::PrintHeader("E5 (Theorem 4.1)", "Gibbs estimator is 2*lambda*D(R)-DP");

  auto task = bench::Unwrap(BernoulliMeanTask::Create(0.5), "task");
  ClippedSquaredLoss loss(1.0);
  auto hclass = bench::Unwrap(FiniteHypothesisClass::ScalarGrid(0.0, 1.0, 21), "grid");

  std::printf("task: Bernoulli, squared loss, |Theta|=%zu; exhaustive neighbor audit\n\n",
              hclass.size());
  std::printf("%6s %8s %14s %16s %16s %10s\n", "n", "lambda", "measured eps*",
              "2*lambda*(B/n)", "2*lambda*Dexact", "tight%");

  bool all_ok = true;
  for (std::size_t n : {5u, 10u, 25u, 50u}) {
    const double generic_sensitivity =
        bench::Unwrap(EmpiricalRiskSensitivityBound(loss, n), "generic D");
    const double exact_sensitivity = bench::Unwrap(
        ExactRiskSensitivity(loss, hclass.thetas(), BernoulliMeanTask::Domain(), n),
        "exact D");
    for (double lambda : {1.0, 4.0, 16.0}) {
      auto channel = bench::Unwrap(
          BuildBernoulliGibbsChannel(task, n, loss, hclass, hclass.UniformPrior(), lambda),
          "channel");
      const double measured = ChannelPrivacyLevel(channel);
      const double generic_guarantee = 2.0 * lambda * generic_sensitivity;
      const double exact_guarantee = 2.0 * lambda * exact_sensitivity;
      all_ok = all_ok && measured <= generic_guarantee + 1e-9;
      std::printf("%6zu %8.1f %14.6f %16.6f %16.6f %9.1f%%\n", n, lambda, measured,
                  generic_guarantee, exact_guarantee,
                  100.0 * measured / exact_guarantee);

      char key[64];
      std::snprintf(key, sizeof(key), "measured_eps_star_n%zu_lambda%.0f", n, lambda);
      bench::RecordScalar(key, measured);
    }
  }

  bench::PrintSection("verdicts");
  bench::Verdict(all_ok,
                 "measured eps* <= 2*lambda*D(R) on every (n, lambda) (Theorem 4.1)");
  std::printf(
      "note: privacy degrades (eps* grows) linearly in lambda and improves as 1/n —\n"
      "      exactly the 2*lambda*B/n scaling the theorem predicts.\n");
}

}  // namespace
}  // namespace dplearn

int main(int argc, char** argv) {
  return dplearn::bench::GuardedMain(argc, argv, [] { dplearn::Run(); });
}
