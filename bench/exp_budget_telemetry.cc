/// E-TEL (telemetry v2) — the per-tenant ε-budget telemetry pipeline is
/// exact and near-free.
///
/// Three claims, one per section:
///   A. Fidelity: replaying a many-tenant spend stream (with denials and
///      near-exhaustion crossings) through TenantBudgetTelemetry leaves
///      every tenant's gauges BITWISE equal to its accountant, every ledger
///      replay-clean, and exactly one near-exhaustion event per tenant —
///      the ReplayVerifyAll contract under parallel load.
///   B. Overhead: the Gibbs posterior-sampling release path with metrics +
///      tracing + span recording fully armed costs under 10% over the same
///      path fully dark (lenient in-experiment bound; the strict <3% gate
///      runs on the BENCH_<rev>.json snapshot, where google-benchmark's
///      repetitions drive the noise down — see scripts/run_bench.sh).
///   C. Export: spans opened on pool workers parent to the submitting
///      span across threads, the Chrome trace renders them, and the
///      Prometheus exposition carries release-latency p99/p99.9 summaries
///      plus the tenant gauges from section A.
///
/// Run with DPLEARN_TRACE_FILE / DPLEARN_METRICS_FILE set and the CI
/// telemetry-smoke job validates the exported files with
/// scripts/check_trace_json.py and scripts/check_exposition.py.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "bench/bench_common.h"
#include "bench/experiment_util.h"
#include "core/gibbs_estimator.h"
#include "learning/loss.h"
#include "mechanisms/laplace.h"
#include "mechanisms/privacy_budget.h"
#include "mechanisms/sensitivity.h"
#include "obs/config.h"
#include "obs/event_sink.h"
#include "obs/metrics.h"
#include "obs/tenant_budget.h"
#include "obs/trace.h"
#include "obs/trace_buffer.h"
#include "sampling/rng.h"

namespace dplearn {
namespace {

std::string TenantName(std::size_t t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "tenant_%03zu", t);
  return buf;
}

void RunFidelitySection(Rng* rng) {
  bench::PrintSection("A: many-tenant spend replay (fidelity)");

  const std::size_t num_tenants = bench::SmokeMode() ? 8 : 64;
  const std::size_t grants_per_tenant = bench::SmokeMode() ? 50 : 400;

  obs::TenantBudgetTelemetry::Options options;
  options.near_exhaustion_fraction = 0.8;
  obs::TenantBudgetTelemetry tenants(options);

  obs::InMemorySink sink;
  // Scoped registration: an injected fault unwinding the spend replay (the
  // chaos job arms budget.spend) must still deregister, or the global
  // registry would keep a pointer to this dead stack frame.
  obs::ScopedGlobalSink sink_registration(&sink);

  bool all_registered = true;
  for (std::size_t t = 0; t < num_tenants; ++t) {
    all_registered =
        all_registered &&
        tenants.RegisterTenant(TenantName(t), PrivacyBudget{1.0, 0.0}).ok();
  }
  bench::Verdict(all_registered, "A: every tenant registers");

  // Each tenant spends 90% of its ε in equal granted slices (crossing the
  // 80% near-exhaustion line exactly once), then bounces two over-budget
  // requests. Tenants run concurrently on the pool: same-tenant spends
  // serialize on their shard, which is the ordering the ledger needs.
  const double slice = 0.9 / static_cast<double>(grants_per_tenant);
  const std::vector<int> denial_counts = bench::RunTrials<int>(
      num_tenants, rng, [&tenants, grants_per_tenant, slice](std::size_t t, Rng&) {
        const std::string id = TenantName(t);
        for (std::size_t s = 0; s < grants_per_tenant; ++s) {
          bench::Check(tenants.Spend(id, PrivacyBudget{slice, 0.0}, "replay"),
                       "tenant spend");
        }
        int denials = 0;
        for (int d = 0; d < 2; ++d) {
          if (!tenants.Spend(id, PrivacyBudget{0.2, 0.0}, "replay").ok()) ++denials;
        }
        return denials;
      });

  const Status replay = tenants.ReplayVerifyAll();
  if (!replay.ok()) std::printf("ReplayVerifyAll: %s\n", replay.ToString().c_str());
  bench::Verdict(replay.ok(), "A: every ledger replays clean; gauges bitwise match "
                              "accountants (ReplayVerifyAll)");

  bool views_exact = true;
  double total_spent = 0.0;
  for (const auto& view : tenants.GetAllViews()) {
    views_exact = views_exact && view.spends == grants_per_tenant &&
                  view.denials == 2 && view.near_exhaustion;
    total_spent += view.spent.epsilon;
  }
  bench::Verdict(views_exact,
                 "A: every view shows the exact grant/denial counts and the "
                 "near-exhaustion flag");

  int denials_seen = 0;
  for (const int d : denial_counts) denials_seen += d;
  bench::Verdict(denials_seen == static_cast<int>(num_tenants) * 2,
                 "A: over-budget spends are denied, not granted");

  std::size_t near_exhaustion_events = 0;
  for (const obs::Event& event : sink.Events()) {
    if (event.type == "budget" && event.name == "near_exhaustion") {
      ++near_exhaustion_events;
    }
  }
  bench::Verdict(near_exhaustion_events == num_tenants,
                 "A: exactly one near-exhaustion event per tenant");

  bench::RecordScalar("tenants", static_cast<double>(num_tenants));
  bench::RecordScalar("grants_per_tenant", static_cast<double>(grants_per_tenant));
  bench::RecordScalar("total_epsilon_spent", total_spent);
  std::printf("tenants=%zu grants/tenant=%zu denials=%d near_exhaustion_events=%zu\n",
              num_tenants, grants_per_tenant, denials_seen, near_exhaustion_events);
}

/// Seconds for `reps` Gibbs SampleBatch calls (64 draws each) under a
/// traced span — the release-path shape the telemetry overhead budget is
/// written against.
double TimeGibbsRounds(const GibbsEstimator& gibbs, const Dataset& data, Rng* rng,
                       int reps) {
  std::vector<std::size_t> out;
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    obs::TraceSpan span("exp_tel.gibbs_sample");
    bench::Check(gibbs.SampleBatch(data, rng, 64, &out), "SampleBatch");
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

void RunOverheadSection(Rng* rng) {
  bench::PrintSection("B: telemetry overhead on the Gibbs release path");

  ClippedSquaredLoss loss(1.0);
  const FiniteHypothesisClass hclass = bench::MakeScalarGrid(101);
  auto gibbs =
      bench::Unwrap(GibbsEstimator::CreateUniform(&loss, hclass, 10.0), "gibbs");
  Dataset data = bench::MakeBernoulliData(1000, 6);

  const bool metrics_was = obs::MetricsEnabled();
  const bool tracing_was = obs::TracingEnabled();
  const bool buffer_was = obs::TraceBufferEnabled();
  // Measure the same thing the strict bench gate measures — metrics +
  // tracing + span recording — not the harness's JSONL event stream, whose
  // per-span formatting would otherwise dominate the armed rounds.
  obs::ScopedSinkPause sink_pause;

  // Alternate dark and armed rounds and keep the per-mode minimum: the
  // minimum is the standard noise-robust estimator for "how fast can this
  // go", and alternation cancels slow machine-state drift.
  const int rounds = bench::SmokeMode() ? 6 : 10;
  // Calibrate reps so one timed round is long enough for steady_clock to
  // resolve: a ~0.1 ms round puts timer granularity at the same order as
  // the 10% budget and the verdict becomes a coin flip. Warm up before
  // probing — the first call pays the cold risk-profile fill, which would
  // inflate the per-rep estimate and collapse the calibration.
  TimeGibbsRounds(gibbs, data, rng, 1);
  const double probe_seconds =
      std::max(TimeGibbsRounds(gibbs, data, rng, 2) / 2.0, 1e-7);
  const double target_round_seconds = bench::SmokeMode() ? 0.004 : 0.02;
  const int reps = static_cast<int>(
      std::clamp(std::ceil(target_round_seconds / probe_seconds), 2.0, 512.0));
  double best_off = std::numeric_limits<double>::infinity();
  double best_on = std::numeric_limits<double>::infinity();
  for (int round = 0; round < rounds; ++round) {
    const bool on = round % 2 == 1;
    obs::SetMetricsEnabled(on);
    obs::SetTracingEnabled(on);
    obs::SetTraceBufferEnabled(on);
    const double seconds = TimeGibbsRounds(gibbs, data, rng, reps);
    if (on) {
      best_on = std::min(best_on, seconds);
    } else {
      best_off = std::min(best_off, seconds);
    }
  }
  obs::SetMetricsEnabled(metrics_was);
  obs::SetTracingEnabled(tracing_was);
  obs::SetTraceBufferEnabled(buffer_was);

  const double overhead = best_on / best_off - 1.0;
  std::printf("best off=%.4fs  best on=%.4fs  overhead=%+.2f%%\n", best_off, best_on,
              overhead * 100.0);
  bench::RecordScalar("telemetry_overhead_fraction", overhead);
  // Lenient wall-clock bound for a short in-experiment measurement; the
  // strict <3% budget is enforced on the bench snapshot
  // (BM_GibbsSampleTelemetryOff/On via check_bench_json.py --overhead-pair).
  bench::Verdict(overhead < 0.10,
                 "B: telemetry-on Gibbs sampling costs <10% over telemetry-off");
}

void RunExportSection(Rng* rng) {
  bench::PrintSection("C: cross-thread tracing + Prometheus exposition");

  const bool buffer_was = obs::TraceBufferEnabled();
  obs::SetTraceBufferEnabled(true);
  obs::ClearTraceBuffers();

  // Populate the release-latency histograms the exposition claim is about.
  const std::size_t n = 400;
  Dataset data = bench::MakeBernoulliData(n, 11);
  auto query = bench::Unwrap(BoundedMeanQuery(0.0, 1.0, n), "query");
  auto laplace =
      bench::Unwrap(LaplaceMechanism::Create(query, 0.5), "laplace mechanism");
  const std::size_t releases = bench::SmokeMode() ? 64 : 512;
  for (std::size_t i = 0; i < releases; ++i) {
    bench::Unwrap(laplace.Release(data, rng), "laplace release");
  }

  // A parent span on this thread, trials on the pool: every trial span must
  // come back with `outer` in its ancestry even when it ran on a worker.
  const std::size_t trials = bench::TrialCount(256, 32);
  std::uint64_t outer_id = 0;
  std::uint32_t outer_thread = 0;
  {
    obs::TraceSpan outer("exp_tel.parallel_sweep");
    outer_id = outer.span_id();
    bench::RunTrials<double>(trials, rng, [](std::size_t t, Rng& trial_rng) {
      obs::TraceSpan span("exp_tel.trial");
      double acc = static_cast<double>(t);
      for (int i = 0; i < 500; ++i) acc += trial_rng.NextDouble();
      return acc;
    });
  }

  const std::vector<obs::SpanRecord> records = obs::CollectSpanRecords();
  std::unordered_map<std::uint64_t, const obs::SpanRecord*> by_id;
  for (const obs::SpanRecord& r : records) {
    if (r.span_id == outer_id) outer_thread = r.thread_index;
    by_id.emplace(r.span_id, &r);
  }
  std::size_t trial_spans = 0;
  std::size_t cross_thread_children = 0;
  for (const obs::SpanRecord& r : records) {
    if (std::string_view(r.name) != "exp_tel.trial") continue;
    ++trial_spans;
    // The trial runner interposes its own spans (pool.batch) between the
    // sweep span and each trial span, so what must survive the thread hop
    // is the *ancestry* — walk the parent chain up to the sweep span.
    std::uint64_t ancestor = r.parent_id;
    for (int hops = 0; ancestor != 0 && ancestor != outer_id && hops < 16;
         ++hops) {
      const auto it = by_id.find(ancestor);
      ancestor = it == by_id.end() ? 0 : it->second->parent_id;
    }
    if (ancestor == outer_id && r.thread_index != outer_thread) {
      ++cross_thread_children;
    }
  }
  bench::RecordScalar("trial_spans_retained", static_cast<double>(trial_spans));
  bench::RecordScalar("cross_thread_children", static_cast<double>(cross_thread_children));
  bench::Verdict(trial_spans > 0, "C: worker spans land in the ring buffer");
  // On a single-thread pool every trial runs on the submitting thread, so
  // cross-thread parentage is vacuous there.
  const bool multi_threaded = parallel::DefaultThreadCount() > 1;
  bench::Verdict(!multi_threaded || cross_thread_children > 0,
                 "C: pool-worker spans parent to the submitting span across threads");

  const std::string trace_json = obs::ChromeTraceJson();
  bench::Verdict(trace_json.find("\"traceEvents\"") != std::string::npos &&
                     trace_json.find("exp_tel.trial") != std::string::npos &&
                     trace_json.find("exp_tel.parallel_sweep") != std::string::npos,
                 "C: Chrome trace JSON renders the parallel sweep");

  const std::string exposition = obs::GlobalMetrics().WriteExposition();
  bench::Verdict(
      exposition.find("dplearn_mechanism_laplace_release_us{quantile=\"0.99\"}") !=
              std::string::npos &&
          exposition.find("quantile=\"0.999\"") != std::string::npos,
      "C: exposition carries release-latency p99/p99.9 summaries");
  bench::Verdict(exposition.find("dplearn_tenant_epsilon_remaining{tenant=") !=
                     std::string::npos,
                 "C: exposition carries per-tenant remaining-epsilon gauges");

  obs::SetTraceBufferEnabled(buffer_was);
  std::printf("retained=%zu trial_spans=%zu cross_thread_children=%zu threads=%zu\n",
              records.size(), trial_spans, cross_thread_children,
              parallel::DefaultThreadCount());
}

void Run() {
  bench::PrintHeader("E-TEL (telemetry v2)",
                     "per-tenant budget telemetry is exact; armed telemetry is "
                     "near-free; traces parent across threads");
  Rng rng(bench::BaseSeed(20260809));

  RunFidelitySection(&rng);
  RunOverheadSection(&rng);
  RunExportSection(&rng);
}

}  // namespace
}  // namespace dplearn

int main(int argc, char** argv) {
  return dplearn::bench::GuardedMain(argc, argv, dplearn::Run);
}
