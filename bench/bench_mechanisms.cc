/// Mechanism-subsystem microbenchmarks: Laplace releases, exponential-
/// mechanism draws (single vs batched — the batch evaluates the quality
/// function once per block instead of once per draw), report-noisy-max,
/// and the output-perturbation ERM ε-sweep in its naive (re-solve per ε)
/// and split (solve once, release per ε) forms.

#include <cstddef>
#include <vector>

#include <benchmark/benchmark.h>
#include "bench/bench_common.h"
#include "core/private_erm.h"
#include "learning/erm.h"
#include "learning/loss.h"
#include "learning/risk.h"
#include "mechanisms/exponential.h"
#include "mechanisms/laplace.h"
#include "mechanisms/sensitivity.h"
#include "sampling/rng.h"

namespace dplearn {
namespace {

void BM_LaplaceRelease(benchmark::State& state) {
  const std::size_t n = 1000;
  auto query = BoundedMeanQuery(0.0, 1.0, n).value();
  auto mechanism = LaplaceMechanism::Create(query, 1.0).value();
  Rng rng(7);
  Dataset data = bench::MakeBernoulliData(n, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mechanism.Release(data, &rng).value());
  }
}
BENCHMARK(BM_LaplaceRelease);

ExponentialMechanism MakeRiskMechanism(const LossFunction* loss,
                                       const FiniteHypothesisClass& hclass) {
  std::vector<Vector> thetas = hclass.thetas();
  QualityFn quality = [loss, thetas](const Dataset& data, std::size_t u) {
    auto risk = EmpiricalRisk(*loss, thetas[u], data);
    return risk.ok() ? -risk.value() : 0.0;
  };
  return ExponentialMechanism::CreateUniform(std::move(quality), hclass.size(), 5.0, 0.01)
      .value();
}

void BM_ExponentialSample(benchmark::State& state) {
  static const ClippedSquaredLoss loss(1.0);
  const FiniteHypothesisClass hclass = bench::MakeScalarGrid(101);
  const ExponentialMechanism mechanism = MakeRiskMechanism(&loss, hclass);
  Dataset data = bench::MakeBernoulliData(100, 11);
  Rng rng(12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mechanism.Sample(data, &rng).value());
  }
}
BENCHMARK(BM_ExponentialSample);

void BM_ExponentialSampleBatch(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  static const ClippedSquaredLoss loss(1.0);
  const FiniteHypothesisClass hclass = bench::MakeScalarGrid(101);
  const ExponentialMechanism mechanism = MakeRiskMechanism(&loss, hclass);
  Dataset data = bench::MakeBernoulliData(100, 11);
  Rng rng(12);
  std::vector<std::size_t> out;
  for (auto _ : state) {
    const Status status = mechanism.SampleBatch(data, &rng, k, &out);
    benchmark::DoNotOptimize(status.ok());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(k));
}
BENCHMARK(BM_ExponentialSampleBatch)->Arg(16)->Arg(256);

void BM_ReportNoisyMax(benchmark::State& state) {
  static const ClippedSquaredLoss loss(1.0);
  const FiniteHypothesisClass hclass = bench::MakeScalarGrid(101);
  std::vector<Vector> thetas = hclass.thetas();
  QualityFn quality = [thetas](const Dataset& data, std::size_t u) {
    auto risk = EmpiricalRisk(loss, thetas[u], data);
    return risk.ok() ? -risk.value() : 0.0;
  };
  auto mechanism = ReportNoisyMax::Create(std::move(quality), hclass.size(), 1.0, 0.01).value();
  Dataset data = bench::MakeBernoulliData(100, 11);
  Rng rng(13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mechanism.Sample(data, &rng).value());
  }
}
BENCHMARK(BM_ReportNoisyMax);

Dataset MakeLogisticData(std::size_t n) {
  Rng rng(21);
  Dataset data;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.NextDouble() * 2.0 - 1.0;
    data.Add(Example{Vector{x}, x > 0.0 ? 1.0 : -1.0});
  }
  return data;
}

/// The naive ε-sweep: one full OutputPerturbationErm (solve + noise) per
/// grid cell.
void BM_OutputPerturbSweepNaive(benchmark::State& state) {
  const LogisticLoss loss(4.0);
  Dataset data = MakeLogisticData(200);
  const std::vector<double> epsilons = {0.1, 0.2, 0.5, 1.0, 2.0, 5.0};
  Rng rng(22);
  for (auto _ : state) {
    for (double eps : epsilons) {
      PrivateErmOptions options;
      options.epsilon = eps;
      benchmark::DoNotOptimize(OutputPerturbationErm(loss, data, options, &rng).value());
    }
  }
}
BENCHMARK(BM_OutputPerturbSweepNaive);

/// The split sweep: SolveNonPrivateErm once, ReleaseOutputPerturbation per
/// ε — bit-identical outputs (the solve consumes no randomness), minus
/// |grid|-1 solves.
void BM_OutputPerturbSweepSplit(benchmark::State& state) {
  const LogisticLoss loss(4.0);
  Dataset data = MakeLogisticData(200);
  const std::vector<double> epsilons = {0.1, 0.2, 0.5, 1.0, 2.0, 5.0};
  Rng rng(22);
  for (auto _ : state) {
    PrivateErmOptions options;
    const GradientErmResult erm = SolveNonPrivateErm(loss, data, options).value();
    for (double eps : epsilons) {
      options.epsilon = eps;
      benchmark::DoNotOptimize(
          ReleaseOutputPerturbation(erm, data.size(), data.FeatureDim(), options, &rng)
              .value());
    }
  }
}
BENCHMARK(BM_OutputPerturbSweepSplit);

}  // namespace
}  // namespace dplearn

BENCHMARK_MAIN();
