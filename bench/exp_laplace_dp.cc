/// E1 — Theorem 2.1: the Laplace mechanism is ε-differentially private.
///
/// Workload: bounded-mean query on Bernoulli data (n = 200), ε sweep.
/// For each ε we (a) audit the exact output densities over an exhaustive
/// replace-one neighbor sweep and a probe grid extending deep into the
/// tails, and (b) measure the mechanism's utility (mean absolute error of
/// the released mean) by simulation. The measured privacy ε* must satisfy
/// ε* <= ε (tight in the tails); utility error must scale as Δf/ε.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/experiment_util.h"
#include "core/dp_verifier.h"
#include "learning/generators.h"
#include "mechanisms/laplace.h"
#include "mechanisms/sensitivity.h"
#include "obs/config.h"
#include "sampling/rng.h"

namespace dplearn {
namespace {

void Run() {
  bench::PrintHeader("E1 (Theorem 2.1)", "Laplace mechanism is eps-DP");

  const std::size_t n = 200;
  // The privacy verdict is exact (density audit), so smoke mode only thins
  // the utility simulation.
  const std::size_t utility_trials = bench::TrialCount(20000, 500);
  auto task = bench::Unwrap(BernoulliMeanTask::Create(0.4), "task");
  Rng rng(bench::BaseSeed(101));
  Dataset data = bench::Unwrap(task.Sample(n, &rng), "sample");

  std::printf("workload: bounded mean over {0,1}, n=%zu, sensitivity=1/n=%.5f\n", n,
              1.0 / static_cast<double>(n));
  std::printf("\n%8s %14s %14s %12s %16s %16s\n", "eps", "measured eps*", "guarantee",
              "tight?", "mean |error|", "theory |error|");

  bool all_ok = true;
  for (double eps : {0.1, 0.5, 1.0, 2.0}) {
    auto query = bench::Unwrap(BoundedMeanQuery(0.0, 1.0, n), "query");
    auto mechanism = bench::Unwrap(LaplaceMechanism::Create(query, eps), "mechanism");

    ScalarDensityFn density = [&mechanism](const Dataset& d, double out) {
      return mechanism.OutputDensity(d, out);
    };
    // Probe far beyond the reachable means so the tail ratio is observed.
    std::vector<double> probes;
    const double reach = 20.0 * mechanism.noise_scale();
    for (double x = -reach; x <= 1.0 + reach; x += reach / 200.0) probes.push_back(x);
    auto audit = bench::Unwrap(
        AuditScalarDensityMechanism(density, {data}, BernoulliMeanTask::Domain(), probes),
        "audit");

    // Audit the first release per eps inline; the remaining trials re-measure
    // the same mechanism (they would flood the budget ledger with 20k
    // entries) and run over the thread pool with auditing paused, one split
    // stream per trial so the mean is thread-count invariant.
    auto trial_body = [&](std::size_t, Rng& trial_rng) {
      const double released = bench::Unwrap(mechanism.Release(data, &trial_rng), "release");
      return std::fabs(released - query.query(data));
    };
    Rng first_rng = rng.Split();
    double total_error = trial_body(0, first_rng);
    {
      obs::ScopedAuditPause pause;
      for (double err : bench::RunTrials<double>(utility_trials - 1, &rng, trial_body)) {
        total_error += err;
      }
    }
    const double mean_error = total_error / static_cast<double>(utility_trials);
    const double theory_error = mechanism.ExpectedAbsoluteError();

    const bool private_ok = !audit.unbounded && audit.max_log_ratio <= eps + 1e-9;
    const bool tight = audit.max_log_ratio > 0.95 * eps;
    all_ok = all_ok && private_ok;
    std::printf("%8.2f %14.6f %14.6f %12s %16.6f %16.6f\n", eps, audit.max_log_ratio, eps,
                tight ? "yes" : "no", mean_error, theory_error);

    char key[64];
    std::snprintf(key, sizeof(key), "measured_eps_star_at_eps_%.1f", eps);
    bench::RecordScalar(key, audit.max_log_ratio);
    std::snprintf(key, sizeof(key), "mean_abs_error_at_eps_%.1f", eps);
    bench::RecordScalar(key, mean_error);
  }

  bench::PrintSection("verdicts");
  bench::Verdict(all_ok, "measured eps* <= eps for every epsilon (Theorem 2.1)");
}

}  // namespace
}  // namespace dplearn

int main(int argc, char** argv) {
  return dplearn::bench::GuardedMain(argc, argv, [] { dplearn::Run(); });
}
