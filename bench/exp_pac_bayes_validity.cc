/// E4 — Theorem 3.1: Catoni's PAC-Bayes bound holds with probability
/// at least 1-δ over the draw of the sample.
///
/// Workload: Bernoulli mean estimation (true risk computable in closed
/// form), Θ = 21-point grid, squared loss. For each (n, δ) we resample Ẑ
/// 2000 times, evaluate the bound at the Gibbs posterior, and record the
/// violation rate (must be <= δ), the mean bound, and the mean true risk —
/// plus McAllester's bound for comparison (Catoni should be tighter at
/// well-chosen λ).

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/experiment_util.h"
#include "core/gibbs_estimator.h"
#include "core/pac_bayes.h"
#include "learning/generators.h"
#include "sampling/rng.h"

namespace dplearn {
namespace {

void Run() {
  bench::PrintHeader("E4 (Theorem 3.1)", "PAC-Bayes bound holds w.p. >= 1-delta");

  // Smoke keeps 200 resamples: with delta >= 0.01 and violation rates that
  // are essentially zero at these n, the viol_rate <= delta verdict retains
  // a wide margin.
  const std::size_t trials = bench::TrialCount(2000, 200);
  auto task = bench::Unwrap(BernoulliMeanTask::Create(0.3), "task");
  ClippedSquaredLoss loss(1.0);
  auto hclass = bench::Unwrap(FiniteHypothesisClass::ScalarGrid(0.0, 1.0, 21), "grid");
  const double kl_scale = std::log(static_cast<double>(hclass.size()));

  std::printf("task: Bernoulli(0.3), squared loss, |Theta|=%zu, %zu resamples per row\n",
              hclass.size(), trials);
  std::printf("Bayes risk = %.4f\n", task.BayesRisk());
  std::printf("\n%6s %7s %8s %12s %12s %12s %14s %14s\n", "n", "delta", "lambda",
              "viol. rate", "mean bound", "mean true R", "mean Catoni gap",
              "mean McAll gap");

  bool all_ok = true;
  Rng rng(404);
  for (std::size_t n : {50u, 200u, 800u}) {
    const double lambda = SuggestLambda(n, kl_scale);
    auto gibbs = bench::Unwrap(GibbsEstimator::CreateUniform(&loss, hclass, lambda),
                               "gibbs");
    for (double delta : {0.05, 0.01}) {
      // Each resample is an independent trial: map over the thread pool with
      // one split stream per trial and reduce in trial order, so every column
      // is bit-identical at any DPLEARN_THREADS setting.
      struct Trial {
        double bound = 0.0;
        double true_risk = 0.0;
        double mcallester = 0.0;
      };
      const std::vector<Trial> results = bench::RunTrials<Trial>(
          trials, &rng, [&](std::size_t, Rng& trial_rng) {
            Trial out;
            Dataset data = bench::Unwrap(task.Sample(n, &trial_rng), "sample");
            const double emp = bench::Unwrap(gibbs.ExpectedEmpiricalRisk(data), "emp");
            const double kl = bench::Unwrap(gibbs.KlToPrior(data), "kl");
            out.bound = bench::Unwrap(CatoniHighProbabilityBound(emp, kl, lambda, n, delta),
                                      "catoni");
            out.mcallester = bench::Unwrap(McAllesterBound(emp, kl, n, delta), "mcallester");
            auto posterior = bench::Unwrap(gibbs.Posterior(data), "posterior");
            for (std::size_t i = 0; i < posterior.size(); ++i) {
              out.true_risk += posterior[i] * task.TrueRisk(hclass.at(i)[0]);
            }
            return out;
          });
      std::size_t violations = 0;
      double total_bound = 0.0;
      double total_true = 0.0;
      double total_mcallester = 0.0;
      for (const Trial& t : results) {
        if (t.true_risk > t.bound) ++violations;
        total_bound += t.bound;
        total_true += t.true_risk;
        total_mcallester += t.mcallester;
      }
      const double viol_rate = static_cast<double>(violations) / static_cast<double>(trials);
      const double mean_bound = total_bound / static_cast<double>(trials);
      const double mean_true = total_true / static_cast<double>(trials);
      const double mean_mcallester = total_mcallester / static_cast<double>(trials);
      all_ok = all_ok && viol_rate <= delta;
      std::printf("%6zu %7.2f %8.1f %12.4f %12.4f %12.4f %14.4f %14.4f\n", n, delta,
                  lambda, viol_rate, mean_bound, mean_true, mean_bound - mean_true,
                  mean_mcallester - mean_true);
      char key[64];
      std::snprintf(key, sizeof key, "mean_bound_n%zu_delta%.2f", n, delta);
      bench::RecordScalar(key, mean_bound);
    }
  }

  // Equation (1) of the paper: the IN-EXPECTATION bound
  //   E_Z E_rho[R] <= (1 - e^{-(lambda/n) E_Z[E_rho R-hat + KL/lambda]})
  //                   / (1 - e^{-lambda/n}).
  // Estimate both sides by averaging over resamples; the bound must hold.
  bench::PrintSection("Equation (1): in-expectation bound");
  std::printf("%6s %8s %18s %18s %14s\n", "n", "lambda", "E_Z[true risk]",
              "Eq.(1) bound", "holds?");
  bool expectation_ok = true;
  for (std::size_t n : {50u, 200u, 800u}) {
    const double lambda = SuggestLambda(n, kl_scale);
    auto gibbs = bench::Unwrap(GibbsEstimator::CreateUniform(&loss, hclass, lambda),
                               "gibbs");
    double mean_true = 0.0;
    double mean_objective = 0.0;
    const std::size_t exp_trials = bench::TrialCount(1000, 100);
    struct ExpTrial {
      double objective = 0.0;
      double true_risk = 0.0;
    };
    for (const ExpTrial& t : bench::RunTrials<ExpTrial>(
             exp_trials, &rng, [&](std::size_t, Rng& trial_rng) {
               ExpTrial out;
               Dataset data = bench::Unwrap(task.Sample(n, &trial_rng), "sample");
               const double emp = bench::Unwrap(gibbs.ExpectedEmpiricalRisk(data), "emp");
               const double kl = bench::Unwrap(gibbs.KlToPrior(data), "kl");
               out.objective = emp + kl / lambda;
               auto posterior = bench::Unwrap(gibbs.Posterior(data), "posterior");
               for (std::size_t i = 0; i < posterior.size(); ++i) {
                 out.true_risk += posterior[i] * task.TrueRisk(hclass.at(i)[0]);
               }
               return out;
             })) {
      mean_objective += t.objective / static_cast<double>(exp_trials);
      mean_true += t.true_risk / static_cast<double>(exp_trials);
    }
    const double bound =
        bench::Unwrap(CatoniExpectationBound(mean_objective, lambda, n), "eq1");
    const bool holds = mean_true <= bound;
    expectation_ok = expectation_ok && holds;
    std::printf("%6zu %8.1f %18.4f %18.4f %14s\n", n, lambda, mean_true, bound,
                holds ? "yes" : "NO");
  }

  bench::PrintSection("verdicts");
  bench::Verdict(all_ok, "empirical violation rate <= delta for every (n, delta)");
  bench::Verdict(expectation_ok,
                 "Equation (1): E_Z[true risk] <= in-expectation bound at every n");
  std::printf("note: the bound gap shrinks with n — the bound is informative, not vacuous.\n");
}

}  // namespace
}  // namespace dplearn

int main(int argc, char** argv) {
  return dplearn::bench::GuardedMain(argc, argv, [] { dplearn::Run(); });
}
