/// E10 (paper §5 future work) — differentially-private density estimation
/// via PAC-Bayesian bounds.
///
/// Workload: 4-category distribution (0.45, 0.30, 0.15, 0.10); estimators
/// release an ε-DP density. We compare the Gibbs/exponential-mechanism
/// estimator over the quantized simplex against Laplace- and
/// geometric-histogram baselines and the non-private empirical histogram,
/// measuring expected KL(true || released) and total variation over
/// repeated trials. Expected shape: all private estimators converge to the
/// empirical floor as ε or n grows. On this low-dimensional task the
/// histogram baselines win on raw error (per-bin noise is cheap at 4 bins);
/// the Gibbs estimator pays the PAC-Bayes price ln|Θ|/λ plus quantization
/// but is the one that generalizes to structured candidate families and
/// ships a risk certificate.

#include <cmath>
#include <cstdio>
#include <optional>
#include <vector>

#include "bench/experiment_util.h"
#include "core/private_density.h"
#include "infotheory/entropy.h"
#include "learning/dataset.h"
#include "obs/config.h"
#include "sampling/distributions.h"
#include "sampling/rng.h"

namespace dplearn {
namespace {

const std::vector<double> kTrueDensity = {0.45, 0.30, 0.15, 0.10};

StatusOr<Dataset> SampleCategorical(std::size_t n, Rng* rng) {
  Dataset d;
  for (std::size_t i = 0; i < n; ++i) {
    DPLEARN_ASSIGN_OR_RETURN(std::size_t bin, SampleDiscrete(rng, kTrueDensity));
    d.Add(Example{Vector{1.0}, static_cast<double>(bin)});
  }
  return d;
}

double TotalVariation(const std::vector<double>& p, const std::vector<double>& q) {
  double tv = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) tv += 0.5 * std::fabs(p[i] - q[i]);
  return tv;
}

/// KL(true || estimate) with the estimate floored to keep it finite.
double KlToTruth(const std::vector<double>& estimate) {
  double kl = 0.0;
  for (std::size_t i = 0; i < kTrueDensity.size(); ++i) {
    kl += kTrueDensity[i] * std::log(kTrueDensity[i] / std::max(estimate[i], 1e-4));
  }
  return std::max(0.0, kl);
}

void Run() {
  bench::PrintHeader("E10 (§5 future work)",
                     "DP density estimation via PAC-Bayes vs histogram baselines");

  const std::size_t trials = 400;
  Rng rng(909);
  std::printf("true density: (0.45, 0.30, 0.15, 0.10); metric: mean TV (mean KL)\n");
  std::printf("\n%6s %6s %20s %20s %20s %20s\n", "n", "eps", "gibbs", "laplace-hist",
              "geometric-hist", "empirical");

  double final_tv_gibbs = 1.0;
  double final_tv_laplace = 1.0;
  double final_tv_geometric = 1.0;
  double final_tv_empirical = 1.0;
  for (std::size_t n : {50u, 200u, 800u}) {
    for (double eps : {0.2, 1.0, 5.0}) {
      double tv_gibbs = 0.0;
      double kl_gibbs = 0.0;
      double tv_laplace = 0.0;
      double kl_laplace = 0.0;
      double tv_geometric = 0.0;
      double kl_geometric = 0.0;
      double tv_empirical = 0.0;
      double kl_empirical = 0.0;
      for (std::size_t t = 0; t < trials; ++t) {
        // Audit the first trial per (n, eps); the rest are error measurement.
        std::optional<obs::ScopedAuditPause> pause;
        if (t > 0) pause.emplace();
        Dataset data = bench::Unwrap(SampleCategorical(n, &rng), "sample");

        GibbsDensityOptions gibbs_options;
        gibbs_options.epsilon = eps;
        gibbs_options.resolution = 10;
        auto gibbs =
            bench::Unwrap(GibbsDensityEstimate(data, 4, gibbs_options, &rng), "gibbs");
        tv_gibbs += TotalVariation(kTrueDensity, gibbs.density);
        kl_gibbs += KlToTruth(gibbs.density);

        auto laplace =
            bench::Unwrap(LaplaceHistogramEstimate(data, 4, eps, &rng), "laplace");
        tv_laplace += TotalVariation(kTrueDensity, laplace.density);
        kl_laplace += KlToTruth(laplace.density);

        auto geometric =
            bench::Unwrap(GeometricHistogramEstimate(data, 4, eps, &rng), "geometric");
        tv_geometric += TotalVariation(kTrueDensity, geometric.density);
        kl_geometric += KlToTruth(geometric.density);

        auto empirical = bench::Unwrap(EmpiricalHistogram(data, 4), "empirical");
        tv_empirical += TotalVariation(kTrueDensity, empirical);
        kl_empirical += KlToTruth(empirical);
      }
      const double scale = static_cast<double>(trials);
      std::printf("%6zu %6.1f %10.4f (%6.4f) %10.4f (%6.4f) %10.4f (%6.4f) %10.4f (%6.4f)\n",
                  n, eps, tv_gibbs / scale, kl_gibbs / scale, tv_laplace / scale,
                  kl_laplace / scale, tv_geometric / scale, kl_geometric / scale,
                  tv_empirical / scale, kl_empirical / scale);
      final_tv_gibbs = tv_gibbs / scale;
      final_tv_laplace = tv_laplace / scale;
      final_tv_geometric = tv_geometric / scale;
      final_tv_empirical = tv_empirical / scale;
    }
  }

  bench::PrintSection("verdicts");
  bench::RecordScalar("final_tv_gibbs", final_tv_gibbs);
  bench::RecordScalar("final_tv_empirical", final_tv_empirical);
  // At the easiest cell (n=800, eps=5) every private estimator should sit
  // near the non-private empirical floor.
  const double slack = 0.05;
  bench::Verdict(final_tv_gibbs <= final_tv_empirical + slack &&
                     final_tv_laplace <= final_tv_empirical + slack &&
                     final_tv_geometric <= final_tv_empirical + slack,
                 "all private estimators within 0.05 TV of the empirical floor at "
                 "n=800, eps=5");

  std::printf(
      "\nexpected shape: every private estimator approaches the empirical floor as eps\n"
      "or n grows; the Gibbs estimator's error is governed by the PAC-Bayes objective\n"
      "(quantization + (ln |Theta|)/lambda), the histograms' by per-bin noise ~ 1/(n*eps).\n");
}

}  // namespace
}  // namespace dplearn

int main() {
  dplearn::Run();
  return 0;
}
