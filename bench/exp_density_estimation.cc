/// E10 (paper §5 future work) — differentially-private density estimation
/// via PAC-Bayesian bounds.
///
/// Workload: 4-category distribution (0.45, 0.30, 0.15, 0.10); estimators
/// release an ε-DP density. We compare the Gibbs/exponential-mechanism
/// estimator over the quantized simplex against Laplace- and
/// geometric-histogram baselines and the non-private empirical histogram,
/// measuring expected KL(true || released) and total variation over
/// repeated trials. Expected shape: all private estimators converge to the
/// empirical floor as ε or n grows. On this low-dimensional task the
/// histogram baselines win on raw error (per-bin noise is cheap at 4 bins);
/// the Gibbs estimator pays the PAC-Bayes price ln|Θ|/λ plus quantization
/// but is the one that generalizes to structured candidate families and
/// ships a risk certificate.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/experiment_util.h"
#include "core/private_density.h"
#include "infotheory/entropy.h"
#include "learning/dataset.h"
#include "obs/config.h"
#include "sampling/distributions.h"
#include "sampling/rng.h"

namespace dplearn {
namespace {

const std::vector<double> kTrueDensity = {0.45, 0.30, 0.15, 0.10};

StatusOr<Dataset> SampleCategorical(std::size_t n, Rng* rng) {
  Dataset d;
  for (std::size_t i = 0; i < n; ++i) {
    DPLEARN_ASSIGN_OR_RETURN(std::size_t bin, SampleDiscrete(rng, kTrueDensity));
    d.Add(Example{Vector{1.0}, static_cast<double>(bin)});
  }
  return d;
}

double TotalVariation(const std::vector<double>& p, const std::vector<double>& q) {
  double tv = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) tv += 0.5 * std::fabs(p[i] - q[i]);
  return tv;
}

/// KL(true || estimate) with the estimate floored to keep it finite.
double KlToTruth(const std::vector<double>& estimate) {
  double kl = 0.0;
  for (std::size_t i = 0; i < kTrueDensity.size(); ++i) {
    kl += kTrueDensity[i] * std::log(kTrueDensity[i] / std::max(estimate[i], 1e-4));
  }
  return std::max(0.0, kl);
}

void Run() {
  bench::PrintHeader("E10 (§5 future work)",
                     "DP density estimation via PAC-Bayes vs histogram baselines");

  // Smoke keeps 80 trials: the verdict compares 0.05-TV slack at the easiest
  // cell, far wider than the Monte-Carlo noise at 80 trials.
  const std::size_t trials = bench::TrialCount(400, 80);
  Rng rng(909);
  std::printf("true density: (0.45, 0.30, 0.15, 0.10); metric: mean TV (mean KL)\n");
  std::printf("\n%6s %6s %20s %20s %20s %20s\n", "n", "eps", "gibbs", "laplace-hist",
              "geometric-hist", "empirical");

  double final_tv_gibbs = 1.0;
  double final_tv_laplace = 1.0;
  double final_tv_geometric = 1.0;
  double final_tv_empirical = 1.0;
  for (std::size_t n : {50u, 200u, 800u}) {
    for (double eps : {0.2, 1.0, 5.0}) {
      struct TrialErrors {
        double tv_gibbs = 0.0;
        double kl_gibbs = 0.0;
        double tv_laplace = 0.0;
        double kl_laplace = 0.0;
        double tv_geometric = 0.0;
        double kl_geometric = 0.0;
        double tv_empirical = 0.0;
        double kl_empirical = 0.0;
      };
      auto trial_body = [&](std::size_t, Rng& trial_rng) {
        TrialErrors out;
        Dataset data = bench::Unwrap(SampleCategorical(n, &trial_rng), "sample");

        GibbsDensityOptions gibbs_options;
        gibbs_options.epsilon = eps;
        gibbs_options.resolution = 10;
        auto gibbs =
            bench::Unwrap(GibbsDensityEstimate(data, 4, gibbs_options, &trial_rng), "gibbs");
        out.tv_gibbs = TotalVariation(kTrueDensity, gibbs.density);
        out.kl_gibbs = KlToTruth(gibbs.density);

        auto laplace =
            bench::Unwrap(LaplaceHistogramEstimate(data, 4, eps, &trial_rng), "laplace");
        out.tv_laplace = TotalVariation(kTrueDensity, laplace.density);
        out.kl_laplace = KlToTruth(laplace.density);

        auto geometric =
            bench::Unwrap(GeometricHistogramEstimate(data, 4, eps, &trial_rng), "geometric");
        out.tv_geometric = TotalVariation(kTrueDensity, geometric.density);
        out.kl_geometric = KlToTruth(geometric.density);

        auto empirical = bench::Unwrap(EmpiricalHistogram(data, 4), "empirical");
        out.tv_empirical = TotalVariation(kTrueDensity, empirical);
        out.kl_empirical = KlToTruth(empirical);
        return out;
      };
      // Audit the first trial per (n, eps) inline; the rest are error
      // measurement over the thread pool (auditing paused, one split stream
      // per trial, reduced in trial order — thread-count invariant).
      Rng first_rng = rng.Split();
      TrialErrors sums = trial_body(0, first_rng);
      {
        obs::ScopedAuditPause pause;
        for (const TrialErrors& r :
             bench::RunTrials<TrialErrors>(trials - 1, &rng, trial_body)) {
          sums.tv_gibbs += r.tv_gibbs;
          sums.kl_gibbs += r.kl_gibbs;
          sums.tv_laplace += r.tv_laplace;
          sums.kl_laplace += r.kl_laplace;
          sums.tv_geometric += r.tv_geometric;
          sums.kl_geometric += r.kl_geometric;
          sums.tv_empirical += r.tv_empirical;
          sums.kl_empirical += r.kl_empirical;
        }
      }
      const double tv_gibbs = sums.tv_gibbs;
      const double kl_gibbs = sums.kl_gibbs;
      const double tv_laplace = sums.tv_laplace;
      const double kl_laplace = sums.kl_laplace;
      const double tv_geometric = sums.tv_geometric;
      const double kl_geometric = sums.kl_geometric;
      const double tv_empirical = sums.tv_empirical;
      const double kl_empirical = sums.kl_empirical;
      const double scale = static_cast<double>(trials);
      std::printf("%6zu %6.1f %10.4f (%6.4f) %10.4f (%6.4f) %10.4f (%6.4f) %10.4f (%6.4f)\n",
                  n, eps, tv_gibbs / scale, kl_gibbs / scale, tv_laplace / scale,
                  kl_laplace / scale, tv_geometric / scale, kl_geometric / scale,
                  tv_empirical / scale, kl_empirical / scale);
      final_tv_gibbs = tv_gibbs / scale;
      final_tv_laplace = tv_laplace / scale;
      final_tv_geometric = tv_geometric / scale;
      final_tv_empirical = tv_empirical / scale;
    }
  }

  bench::PrintSection("verdicts");
  bench::RecordScalar("final_tv_gibbs", final_tv_gibbs);
  bench::RecordScalar("final_tv_empirical", final_tv_empirical);
  // At the easiest cell (n=800, eps=5) every private estimator should sit
  // near the non-private empirical floor.
  const double slack = 0.05;
  bench::Verdict(final_tv_gibbs <= final_tv_empirical + slack &&
                     final_tv_laplace <= final_tv_empirical + slack &&
                     final_tv_geometric <= final_tv_empirical + slack,
                 "all private estimators within 0.05 TV of the empirical floor at "
                 "n=800, eps=5");

  std::printf(
      "\nexpected shape: every private estimator approaches the empirical floor as eps\n"
      "or n grows; the Gibbs estimator's error is governed by the PAC-Bayes objective\n"
      "(quantization + (ln |Theta|)/lambda), the histograms' by per-bin noise ~ 1/(n*eps).\n");
}

}  // namespace
}  // namespace dplearn

int main(int argc, char** argv) {
  return dplearn::bench::GuardedMain(argc, argv, [] { dplearn::Run(); });
}
