/// Sampling-subsystem microbenchmarks: the raw RNG, the scalar noise
/// samplers, and the discrete samplers (Gumbel-max and alias) in both their
/// one-at-a-time and batched forms. The */Batch* pairs exist to keep the
/// batched fast paths honest: they must be bit-identical to the loops they
/// replace (tests/perf_cache_equivalence_test.cc), so any speedup shown
/// here is pure call/allocation overhead removed, not different math.

#include <cstddef>
#include <vector>

#include <benchmark/benchmark.h>
#include "bench/bench_common.h"
#include "sampling/alias_sampler.h"
#include "sampling/distributions.h"
#include "sampling/rng.h"

namespace dplearn {
namespace {

void BM_RngNextDouble(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextDouble());
  }
}
BENCHMARK(BM_RngNextDouble);

void BM_RngNextDoubleBatch(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<double> out(n);
  for (auto _ : state) {
    rng.NextDoubleBatch(out.data(), out.size());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_RngNextDoubleBatch)->Arg(64)->Arg(4096);

void BM_SampleLaplace(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleLaplace(&rng, 0.0, 1.0).value());
  }
}
BENCHMARK(BM_SampleLaplace);

void BM_SampleStandardNormal(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleStandardNormal(&rng));
  }
}
BENCHMARK(BM_SampleStandardNormal);

void BM_GumbelMaxSample(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  const std::vector<double> log_w = bench::MakeLogWeights(m);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleFromLogWeights(&rng, log_w).value());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(m));
}
BENCHMARK(BM_GumbelMaxSample)->Arg(16)->Arg(256)->Arg(4096);

void BM_GumbelMaxSampleScratch(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  const std::vector<double> log_w = bench::MakeLogWeights(m);
  Rng rng(4);
  std::vector<double> scratch;
  scratch.reserve(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleFromLogWeights(&rng, log_w, &scratch).value());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(m));
}
BENCHMARK(BM_GumbelMaxSampleScratch)->Arg(16)->Arg(256)->Arg(4096);

void BM_GumbelMaxBatch(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  const std::size_t k = 64;
  const std::vector<double> log_w = bench::MakeLogWeights(m);
  Rng rng(4);
  std::vector<std::size_t> out;
  for (auto _ : state) {
    const Status status = SampleFromLogWeightsBatch(&rng, log_w, k, &out);
    benchmark::DoNotOptimize(status.ok());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(m * k));
}
BENCHMARK(BM_GumbelMaxBatch)->Arg(16)->Arg(256)->Arg(4096);

void BM_AliasSample(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  std::vector<double> p(m, 1.0 / static_cast<double>(m));
  auto sampler = AliasSampler::Create(p).value();
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(&rng));
  }
}
BENCHMARK(BM_AliasSample)->Arg(16)->Arg(256)->Arg(4096);

void BM_AliasSampleBatch(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  const std::size_t k = 1024;
  std::vector<double> p(m, 1.0 / static_cast<double>(m));
  auto sampler = AliasSampler::Create(p).value();
  Rng rng(5);
  std::vector<std::size_t> out;
  for (auto _ : state) {
    sampler.SampleBatch(&rng, k, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(k));
}
BENCHMARK(BM_AliasSampleBatch)->Arg(16)->Arg(256)->Arg(4096);

}  // namespace
}  // namespace dplearn

BENCHMARK_MAIN();
