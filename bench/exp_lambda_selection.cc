/// E14 (extension/ablation) — end-to-end budgeted model selection.
///
/// Real pipelines tune λ; tuning on the data leaks. This ablation compares
/// three selection strategies at equal TOTAL privacy budget:
///   * "fixed": skip selection, spend everything on one Gibbs release at a
///     pre-registered λ (the heuristic SuggestLambda);
///   * "private-select": exponential-mechanism selection over a λ grid +
///     final release (core/lambda_selection — budget split & accounted);
///   * "oracle (leaks!)": non-private validation argmax — NOT private,
///     shown as the ceiling selection could reach if it were free.
/// Metric: expected TRUE risk of the released predictor on the Bernoulli
/// task (closed form). Expected shape: private-select approaches the
/// oracle as the budget grows and never beats it; at tiny budgets the
/// fixed pre-registered λ wins (selection noise isn't worth paying for).

#include <cstdio>

#include "bench/experiment_util.h"
#include "core/gibbs_estimator.h"
#include "core/lambda_selection.h"
#include "core/pac_bayes.h"
#include "learning/generators.h"
#include "obs/config.h"
#include "sampling/rng.h"

namespace dplearn {
namespace {

void Run() {
  bench::PrintHeader("E14 (ablation)",
                     "budgeted lambda selection: fixed vs private-select vs oracle");

  auto task = bench::Unwrap(BernoulliMeanTask::Create(0.3), "task");
  ClippedSquaredLoss loss(1.0);
  auto hclass = bench::Unwrap(FiniteHypothesisClass::ScalarGrid(0.0, 1.0, 21), "grid");
  const std::size_t n = 300;
  // No verdicts depend on these means (shape-only table), so smoke mode can
  // thin aggressively.
  const std::size_t trials = bench::TrialCount(300, 30);

  std::printf("task: Bernoulli(0.3), n=%zu, Bayes risk=%.4f, %zu trials per cell\n",
              n, task.BayesRisk(), trials);
  std::printf("\n%12s %14s %18s %18s\n", "total eps", "fixed", "private-select",
              "oracle (leaks)");

  Rng rng(1414);
  for (double total_eps : {0.2, 1.0, 5.0}) {
    struct TrialRisks {
      double fixed = 0.0;
      double select = 0.0;
      double oracle = 0.0;
    };
    auto trial_body = [&](std::size_t, Rng& trial_rng) {
      TrialRisks out;
      Dataset data = bench::Unwrap(task.Sample(n, &trial_rng), "sample");

      // Fixed: all budget on one release, lambda = eps*n/2.
      {
        const double lambda = total_eps * static_cast<double>(n) / 2.0;
        auto gibbs =
            bench::Unwrap(GibbsEstimator::CreateUniform(&loss, hclass, lambda), "gibbs");
        Vector theta = bench::Unwrap(gibbs.SampleTheta(data, &trial_rng), "theta");
        out.fixed = task.TrueRisk(theta[0]);
      }

      // Private selection: split the budget — half to selection, half
      // across the candidate+final draws (approximately; the routine
      // reports the exact spend).
      {
        LambdaSelectionOptions options;
        options.lambda_grid = {2.0, 8.0, 32.0, 128.0};
        options.selection_epsilon = total_eps / 2.0;
        options.training_epsilon = total_eps / 2.0;
        auto result = bench::Unwrap(
            SelectLambdaAndTrain(loss, hclass, data, options, &trial_rng), "select");
        out.select = task.TrueRisk(result.theta[0]);
      }

      // Oracle: same grid, non-private argmax (reported for scale only).
      {
        LambdaSelectionOptions options;
        options.lambda_grid = {2.0, 8.0, 32.0, 128.0};
        auto result = bench::Unwrap(
            SelectLambdaNonPrivate(loss, hclass, data, options, &trial_rng), "oracle");
        out.oracle = task.TrueRisk(result.theta[0]);
      }
      return out;
    };
    // Trial 0 inline with auditing live (one audited selection pipeline per
    // budget); the rest are measurement over the thread pool, auditing
    // paused, one split stream per trial.
    Rng first_rng = rng.Split();
    TrialRisks sums = trial_body(0, first_rng);
    {
      obs::ScopedAuditPause pause;
      for (const TrialRisks& r :
           bench::RunTrials<TrialRisks>(trials - 1, &rng, trial_body)) {
        sums.fixed += r.fixed;
        sums.select += r.select;
        sums.oracle += r.oracle;
      }
    }
    const double scale = static_cast<double>(trials);
    std::printf("%12.1f %14.4f %18.4f %18.4f\n", total_eps, sums.fixed / scale,
                sums.select / scale, sums.oracle / scale);
    char key[48];
    std::snprintf(key, sizeof key, "select_risk_eps%.1f", total_eps);
    bench::RecordScalar(key, sums.select / scale);
  }

  std::printf(
      "\nexpected shape: the oracle is the floor; private selection closes the gap as\n"
      "the budget grows; the pre-registered fixed lambda is the right call at strict\n"
      "budgets (selection has overhead: candidate draws + selection noise). The\n"
      "private column is the only one with a valid end-to-end guarantee.\n");
}

}  // namespace
}  // namespace dplearn

int main(int argc, char** argv) {
  return dplearn::bench::GuardedMain(argc, argv, [] { dplearn::Run(); });
}
