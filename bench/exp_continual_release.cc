/// E-CR (continual release) — streamed Gibbs draws get cheaper as the
/// stream grows.
///
/// One Gibbs draw at inverse temperature λ is 2λΔ(R̂)-DP with Δ ≤ B/n
/// (Theorem 4.1), so on a LIVE stream the per-draw charge is 2λB/n_live:
/// appends are free and every append strictly shrinks the cost of the next
/// draw. For the natural continual-release schedule — one posterior draw
/// after every append — the cumulative ε is the harmonic tail
/// 2λB·Σ_{n=n0+1..N} 1/n ≈ 2λB·ln(N/n0), versus the LINEAR n·2λB/n0 a
/// fixed-size accounting would charge. This experiment drives the schedule
/// through PrivacyAccountant, records the ε-vs-stream-length curve, and
/// checks the streamed risk profile never drifts from a full recompute
/// beyond the documented bound (DESIGN.md §15).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/experiment_util.h"
#include "core/gibbs_estimator.h"
#include "learning/dataset.h"
#include "learning/generators.h"
#include "learning/hypothesis.h"
#include "learning/loss.h"
#include "learning/risk.h"
#include "learning/streaming_risk.h"
#include "mechanisms/privacy_budget.h"
#include "sampling/rng.h"

namespace dplearn {
namespace {

void Run() {
  bench::PrintHeader("E-CR (continual release)",
                     "streamed Gibbs accounting: per-draw eps decays as 1/n, "
                     "cumulative eps grows harmonically, profile drift stays bounded");

  const std::uint64_t seed = bench::BaseSeed(20260809);
  Rng rng(seed);

  const double lambda = 2.0;
  const std::size_t n0 = 100;  // seed batch
  const std::size_t total_appends = bench::TrialCount(4000, 400);

  ClippedSquaredLoss loss(1.0);
  const double bound = loss.UpperBound();
  auto grid = bench::Unwrap(FiniteHypothesisClass::ScalarGrid(0.0, 1.0, 101), "grid");
  auto gibbs = bench::Unwrap(GibbsEstimator::CreateUniform(&loss, grid, lambda), "gibbs");
  const auto task = bench::Unwrap(BernoulliMeanTask::Create(0.3), "task");
  Dataset seed_batch = bench::Unwrap(task.Sample(n0, &rng), "seed sample");

  auto profile = bench::Unwrap(
      StreamingRiskProfile::Create(&loss, grid.thetas(), StreamingRiskProfile::Options{}),
      "streaming profile");
  for (const Example& z : seed_batch.examples()) {
    bench::Check(profile.AddExample(z), "seed append");
  }

  bench::PrintSection("one draw per append: live-size vs fixed-size charging");
  auto accountant =
      bench::Unwrap(PrivacyAccountant::Create({1000.0, 0.0}), "accountant");
  double fixed_total = 0.0;  // what charging every draw at n0 would cost
  double first_per_draw = 0.0;
  std::printf("%10s %16s %16s %16s\n", "n_live", "per-draw eps", "streamed total",
              "fixed-n0 total");
  std::size_t next_report = n0;
  for (std::size_t i = 0; i < total_appends; ++i) {
    Example z = bench::Unwrap(task.Sample(1, &rng), "stream sample").at(0);
    bench::Check(profile.AddExample(z), "stream append");  // free: no spend
    const double per_draw = 2.0 * lambda * bound / static_cast<double>(profile.size());
    bench::Check(accountant.Spend({per_draw, 0.0}, "gibbs.streamed"), "spend");
    fixed_total += 2.0 * lambda * bound / static_cast<double>(n0);
    if (i == 0) first_per_draw = per_draw;
    const std::size_t draw =
        bench::Unwrap(gibbs.SampleStreaming(profile, &rng), "streamed draw");
    if (draw >= grid.size()) {
      bench::Verdict(false, "streamed draw returned a valid hypothesis index");
    }
    if (profile.size() >= next_report * 2) {
      next_report = profile.size();
      std::printf("%10zu %16.6f %16.4f %16.4f\n", profile.size(), per_draw,
                  accountant.spent().epsilon, fixed_total);
    }
  }
  const double streamed_total = accountant.spent().epsilon;
  std::printf("%10zu %16.6f %16.4f %16.4f\n", profile.size(),
              2.0 * lambda * bound / static_cast<double>(profile.size()),
              streamed_total, fixed_total);

  const std::size_t n_final = profile.size();
  const double last_per_draw = 2.0 * lambda * bound / static_cast<double>(n_final);
  bench::RecordScalar("per_draw_eps_first", first_per_draw);
  bench::RecordScalar("per_draw_eps_last", last_per_draw);
  bench::RecordScalar("streamed_total_eps", streamed_total);
  bench::RecordScalar("fixed_n0_total_eps", fixed_total);
  bench::RecordScalar("stream_length", static_cast<double>(n_final));

  bench::Verdict(last_per_draw < first_per_draw &&
                     std::abs(last_per_draw * static_cast<double>(n_final) -
                              2.0 * lambda * bound) < 1e-12,
                 "per-draw eps decays exactly as 2*lambda*B / n_live");
  // Harmonic tail: 2λB·ln((N+1)/(n0+1)) <= streamed total <= 2λB·ln(N/n0).
  const double harmonic_lo = 2.0 * lambda * bound *
                             std::log(static_cast<double>(n_final + 1) /
                                      static_cast<double>(n0 + 1));
  const double harmonic_hi =
      2.0 * lambda * bound *
      std::log(static_cast<double>(n_final) / static_cast<double>(n0));
  bench::Verdict(streamed_total >= harmonic_lo && streamed_total <= harmonic_hi,
                 "cumulative streamed eps sits in the harmonic-tail envelope");
  bench::Verdict(streamed_total < 0.5 * fixed_total,
                 "continual-release accounting beats fixed-size charging >=2x");

  bench::PrintSection("streamed profile vs full recompute at the final stream");
  std::vector<double> streamed(grid.size());
  bench::Check(profile.SnapshotInto(&streamed), "snapshot");
  const std::vector<double> full = bench::Unwrap(
      EmpiricalRiskProfile(loss, grid.thetas(), profile.LiveDataset()), "full recompute");
  double max_abs_drift = 0.0;
  for (std::size_t i = 0; i < full.size(); ++i) {
    max_abs_drift = std::max(max_abs_drift, std::abs(streamed[i] - full[i]));
  }
  // The documented contract is ULPs at sum scale (DESIGN.md §15); at B=1
  // and n_live examples that is well under 1e-9 absolute for any schedule
  // this experiment runs.
  std::printf("max |streamed - full| = %.3e over %zu hypotheses (n=%zu, "
              "%llu mutations, %llu resyncs)\n",
              max_abs_drift, full.size(), n_final,
              static_cast<unsigned long long>(profile.mutations()),
              static_cast<unsigned long long>(profile.resyncs()));
  bench::RecordScalar("max_abs_drift", max_abs_drift);
  bench::RecordScalar("resyncs", static_cast<double>(profile.resyncs()));
  bench::Verdict(max_abs_drift < 1e-9,
                 "streamed profile tracks the full recompute within the drift bound");

  // After an explicit Resync the snapshot is bitwise the batch profile.
  bench::Check(profile.Resync(), "resync");
  bench::Check(profile.SnapshotInto(&streamed), "post-resync snapshot");
  bool bitwise = true;
  for (std::size_t i = 0; i < full.size(); ++i) {
    bitwise = bitwise && streamed[i] == full[i] &&
              std::signbit(streamed[i]) == std::signbit(full[i]);
  }
  bench::Verdict(bitwise, "post-resync snapshot is bitwise the batch profile");
}

}  // namespace
}  // namespace dplearn

int main(int argc, char** argv) {
  return dplearn::bench::GuardedMain(argc, argv, dplearn::Run);
}
