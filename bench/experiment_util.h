#ifndef DPLEARN_BENCH_EXPERIMENT_UTIL_H_
#define DPLEARN_BENCH_EXPERIMENT_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/status.h"

namespace dplearn {
namespace bench {

/// Shared console helpers for the experiment binaries. Each binary prints
/// one or more paper-style tables; EXPERIMENTS.md records the expected
/// shapes.

inline void PrintHeader(const std::string& experiment_id, const std::string& claim) {
  std::printf("==============================================================================\n");
  std::printf("%s — %s\n", experiment_id.c_str(), claim.c_str());
  std::printf("==============================================================================\n");
}

inline void PrintSection(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

/// Unwraps a StatusOr in experiment code, aborting with a message on error.
/// Experiments are straight-line programs; an error here is a bug.
template <typename T>
T Unwrap(StatusOr<T> value, const char* what) {
  if (!value.ok()) {
    std::fprintf(stderr, "FATAL in %s: %s\n", what, value.status().ToString().c_str());
    std::abort();
  }
  return std::move(value).value();
}

inline void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL in %s: %s\n", what, status.ToString().c_str());
    std::abort();
  }
}

/// Prints PASS/FAIL with a claim description; experiments end with a
/// summary of these verdicts.
inline bool Verdict(bool ok, const std::string& claim) {
  std::printf("[%s] %s\n", ok ? "PASS" : "FAIL", claim.c_str());
  return ok;
}

}  // namespace bench
}  // namespace dplearn

#endif  // DPLEARN_BENCH_EXPERIMENT_UTIL_H_
