#ifndef DPLEARN_BENCH_EXPERIMENT_UTIL_H_
#define DPLEARN_BENCH_EXPERIMENT_UTIL_H_

#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "obs/audit_log.h"
#include "obs/config.h"
#include "obs/event_sink.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/telemetry_reporter.h"
#include "parallel/thread_pool.h"
#include "parallel/trial_runner.h"
#include "perf/risk_profile_cache.h"
#include "robustness/failpoint.h"
#include "robustness/retry.h"
#include "sampling/rng.h"
#include "util/status.h"

namespace dplearn {
namespace bench {

/// Shared helpers for the experiment binaries. Each binary prints one or
/// more paper-style console tables (EXPERIMENTS.md records the expected
/// shapes) AND emits one machine-readable JSON record per run:
///
///   results/<slug>.json         — the experiment record: id, claim,
///                                 per-section wall times, verdicts, named
///                                 scalars, the full privacy-budget audit
///                                 trail, and a metrics snapshot.
///   results/<slug>.events.jsonl — the live event stream (verdicts, audit
///                                 entries, trace spans) as JSONL.
///
/// The output directory is `results/` under the current working directory;
/// override with DPLEARN_RESULTS_DIR, or set it to the empty string to
/// disable file output entirely. PrintHeader() turns on metrics, tracing,
/// and budget auditing so the record is complete; the record is written by
/// an atexit hook so straight-line experiment code needs no teardown call.

inline bool SmokeMode();  // defined below; used by the record writer

/// Thrown (and caught by GuardCell / GuardedMain) when Unwrap or Check sees
/// a Status produced by robustness::Inject — an injected chaos fault, not a
/// real bug. Real errors still abort: the distinction is what lets the
/// failpoint-chaos CI job assert "sweeps complete with failure records"
/// while genuine failures keep failing loudly.
class FaultInjectedError : public std::runtime_error {
 public:
  FaultInjectedError(std::string what_arg, Status status)
      : std::runtime_error(what_arg + ": " + status.ToString()),
        context_(std::move(what_arg)),
        status_(std::move(status)) {}

  const std::string& context() const { return context_; }
  const Status& status() const { return status_; }

 private:
  std::string context_;
  Status status_;
};

namespace internal {

struct SectionRecord {
  std::string title;
  double seconds = 0.0;
};

struct VerdictRecord {
  std::string claim;
  bool pass = false;
};

struct ScalarRecord {
  std::string name;
  double value = 0.0;
};

/// One grid cell (or whole section) abandoned because a fail point fired.
struct FailureRecord {
  std::string cell;     // caller-supplied label, e.g. "parta:n=30,eps=0.10"
  std::string context;  // the Unwrap/Check site that saw the fault
  std::string status;   // the injected Status, rendered
};

struct ExperimentState {
  bool initialized = false;
  std::string id;
  std::string claim;
  std::string slug;
  std::string results_dir;
  bool seed_recorded = false;
  std::uint64_t seed = 0;
  std::int64_t started_unix_ms = 0;
  std::chrono::steady_clock::time_point start;
  bool section_open = false;
  std::string current_section;
  std::chrono::steady_clock::time_point section_start;
  std::vector<SectionRecord> sections;
  std::vector<VerdictRecord> verdicts;
  std::vector<ScalarRecord> scalars;
  std::vector<FailureRecord> failures;
  std::unique_ptr<obs::JsonlFileSink> event_sink;
};

inline ExperimentState& State() {
  static ExperimentState state;
  return state;
}

/// "E5 (Theorem 4.1)" -> "e5-theorem-4-1": lowercase alphanumerics with
/// runs of anything else collapsed to single dashes.
inline std::string Slugify(const std::string& id) {
  std::string slug;
  bool pending_dash = false;
  for (const char c : id) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      if (pending_dash && !slug.empty()) slug += '-';
      pending_dash = false;
      slug += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else {
      pending_dash = true;
    }
  }
  return slug.empty() ? "experiment" : slug;
}

inline std::string ResultsDir() {
  const char* env = std::getenv("DPLEARN_RESULTS_DIR");
  if (env == nullptr) return "results";
  return env;  // "" disables output
}

/// --trials=N override parsed by ParseFlags; 0 means "not set".
inline std::size_t& TrialsOverride() {
  static std::size_t value = 0;
  return value;
}

/// --seed=N override parsed by ParseFlags (DPLEARN_SEED is the env
/// equivalent; the flag wins). Resolved by BaseSeed().
inline bool& SeedOverrideSet() {
  static bool value = false;
  return value;
}

inline std::uint64_t& SeedOverride() {
  static std::uint64_t value = 0;
  return value;
}

/// --smoke parsed by ParseFlags (DPLEARN_SMOKE=1 is the env equivalent).
inline bool& SmokeFlag() {
  static bool value = false;
  return value;
}

inline void CloseSection() {
  ExperimentState& state = State();
  if (!state.section_open) return;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - state.section_start)
          .count();
  state.sections.push_back({state.current_section, seconds});
  state.section_open = false;
}

/// atexit hook: finalizes sections and writes results/<slug>.json.
inline void WriteRecord() {
  ExperimentState& state = State();
  if (!state.initialized) return;
  CloseSection();
  if (state.event_sink != nullptr) {
    obs::RemoveGlobalSink(state.event_sink.get());
    state.event_sink->Flush();
  }
  // Deterministic telemetry shutdown: stop the periodic flush thread and
  // write DPLEARN_METRICS_FILE / DPLEARN_TRACE_FILE one final time, so the
  // on-disk exposition and Chrome trace cover the whole run.
  obs::ShutdownGlobalTelemetry();
  if (state.results_dir.empty()) return;

  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - state.start).count();
  bool all_pass = true;
  for (const VerdictRecord& v : state.verdicts) all_pass = all_pass && v.pass;

  obs::JsonWriter w;
  w.BeginObject();
  w.Key("experiment_id").Value(state.id);
  w.Key("claim").Value(state.claim);
  w.Key("started_unix_ms").Value(static_cast<std::int64_t>(state.started_unix_ms));
  w.Key("wall_time_seconds").Value(wall_seconds);
  // Parallel-engine provenance: scalars/verdicts are thread-count invariant
  // by the src/parallel determinism contract, but section wall times are
  // not — CI's speedup assertions divide timings across records with
  // different "threads" values.
  w.Key("threads").Value(static_cast<std::uint64_t>(parallel::DefaultThreadCount()));
  w.Key("smoke").Value(SmokeMode());
  // Replay provenance: the master RNG seed the run resolved via BaseSeed()
  // (absent when the binary has not adopted seed plumbing yet). Re-running
  // with --seed=<this value> reproduces every scalar bit for bit.
  if (state.seed_recorded) w.Key("seed").Value(state.seed);
  // Chaos provenance: the armed fail-point configuration (empty string when
  // none) and every cell abandoned to an injected fault. A record with
  // failures and all_pass=true means the sweep degraded gracefully — the
  // failpoint-chaos CI job asserts exactly this shape.
  w.Key("failpoints").Value(robustness::FailPointRegistry::Global().ConfigString());
  w.Key("failures").BeginArray();
  for (const FailureRecord& f : state.failures) {
    w.BeginObject()
        .Key("cell").Value(f.cell)
        .Key("context").Value(f.context)
        .Key("status").Value(f.status)
        .EndObject();
  }
  w.EndArray();
  w.Key("failure_count").Value(static_cast<std::uint64_t>(state.failures.size()));
  w.Key("sections").BeginArray();
  for (const SectionRecord& s : state.sections) {
    w.BeginObject().Key("title").Value(s.title).Key("seconds").Value(s.seconds).EndObject();
  }
  w.EndArray();
  w.Key("verdicts").BeginArray();
  for (const VerdictRecord& v : state.verdicts) {
    w.BeginObject().Key("claim").Value(v.claim).Key("pass").Value(v.pass).EndObject();
  }
  w.EndArray();
  w.Key("all_pass").Value(all_pass);
  w.Key("scalars").BeginObject();
  for (const ScalarRecord& s : state.scalars) w.Key(s.name).Value(s.value);
  w.EndObject();
  // Hot-path provenance: how much of the sweep's risk-profile work the
  // process-wide cache absorbed (src/perf). A grid experiment whose hit
  // count stays 0 is re-deriving λ-invariant work and worth a look.
  {
    const perf::RiskProfileCache::Stats cache = perf::RiskProfileCache::Global().stats();
    w.Key("risk_cache").BeginObject();
    w.Key("enabled").Value(perf::RiskCacheEnabled());
    w.Key("hits").Value(static_cast<std::uint64_t>(cache.hits));
    w.Key("misses").Value(static_cast<std::uint64_t>(cache.misses));
    w.Key("evictions").Value(static_cast<std::uint64_t>(cache.evictions));
    w.EndObject();
  }
  w.Key("audit_trail").Raw(obs::GlobalAuditLog().ToJson());
  w.Key("audit_cumulative").BeginObject();
  w.Key("epsilon").Value(obs::GlobalAuditLog().cumulative_epsilon());
  w.Key("delta").Value(obs::GlobalAuditLog().cumulative_delta());
  w.EndObject();
  w.Key("metrics").Raw(obs::GlobalMetrics().ExportJson());
  w.EndObject();

  // The record is the experiment's one durable artifact, so its write gets
  // the same retry treatment as the event sink (fail point: record.write).
  const std::string path = state.results_dir + "/" + state.slug + ".json";
  std::FILE* file = nullptr;
  robustness::RetryPolicy retry;
  const Status open_status = retry.Run([&file, &path] {
    DPLEARN_RETURN_IF_ERROR(robustness::Inject("record.write"));
    file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
      return UnavailableError("cannot open record file");
    }
    return Status::Ok();
  });
  if (!open_status.ok()) {
    std::fprintf(stderr, "warning: cannot write %s: %s\n", path.c_str(),
                 open_status.ToString().c_str());
    return;
  }
  std::fwrite(w.str().data(), 1, w.str().size(), file);
  std::fputc('\n', file);
  std::fclose(file);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace internal

/// Fast mode for CI smoke runs: DPLEARN_SMOKE=1 (any non-"0" value) or the
/// --smoke flag switches every experiment to its reduced trial counts so
/// the whole suite finishes in minutes instead of hours.
inline bool SmokeMode() {
  static const bool env_smoke = [] {
    const char* env = std::getenv("DPLEARN_SMOKE");
    return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
  }();
  return env_smoke || internal::SmokeFlag();
}

/// The trial count an experiment loop should run: `full` normally, `smoke`
/// in SmokeMode(), or the explicit --trials=N override when one was given.
inline std::size_t TrialCount(std::size_t full, std::size_t smoke) {
  if (internal::TrialsOverride() > 0) return internal::TrialsOverride();
  return SmokeMode() ? smoke : full;
}

/// The master RNG seed an experiment should construct its Rng from: the
/// --seed=N flag when given, else the DPLEARN_SEED env var, else the
/// experiment's own hard-coded default. The resolved value is written into
/// the JSON record's "seed" field, so every record names the seed that
/// reproduces it. Experiments with several RNG sites should call this once
/// and derive the rest via Rng::Split() so one flag re-seeds the whole run.
inline std::uint64_t BaseSeed(std::uint64_t default_seed) {
  std::uint64_t resolved = default_seed;
  if (internal::SeedOverrideSet()) {
    resolved = internal::SeedOverride();
  } else {
    const char* env = std::getenv("DPLEARN_SEED");
    if (env != nullptr && *env != '\0') {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(env, &end, 10);
      if (end != env && *end == '\0') resolved = static_cast<std::uint64_t>(parsed);
    }
  }
  internal::ExperimentState& state = internal::State();
  if (!state.seed_recorded) {  // first resolution wins, like PrintHeader
    state.seed_recorded = true;
    state.seed = resolved;
  }
  return resolved;
}

/// Parses the flags every experiment binary shares (--smoke, --trials=N,
/// --seed=N). Call at the top of main(); anything unrecognized aborts with
/// usage, so a typo cannot silently run the full-size experiment.
inline void ParseFlags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--trials=", 9) == 0) {
      const long parsed = std::strtol(arg + 9, nullptr, 10);
      if (parsed <= 0) {
        std::fprintf(stderr, "%s: --trials expects a positive integer, got '%s'\n",
                     argv[0], arg + 9);
        std::exit(2);
      }
      internal::TrialsOverride() = static_cast<std::size_t>(parsed);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(arg + 7, &end, 10);
      if (end == arg + 7 || *end != '\0') {
        std::fprintf(stderr, "%s: --seed expects an unsigned integer, got '%s'\n",
                     argv[0], arg + 7);
        std::exit(2);
      }
      internal::SeedOverrideSet() = true;
      internal::SeedOverride() = static_cast<std::uint64_t>(parsed);
    } else if (std::strcmp(arg, "--smoke") == 0) {
      internal::SmokeFlag() = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--trials=N] [--seed=N]\n", argv[0]);
      std::exit(2);
    }
  }
}

/// Maps `trials` Monte-Carlo trials over the global thread pool
/// (src/parallel): trial t consumes the t-th Split() of *rng and results
/// come back in trial order, so every number an experiment derives from the
/// returned vector is bit-identical at any DPLEARN_THREADS setting. The
/// body must not touch shared mutable state (obs counters/sinks are safe);
/// audit self-reports inside trial bodies should be paused by the caller —
/// parallel trials are measurement, not releases (see ScopedAuditPause).
template <typename T, typename Body>
std::vector<T> RunTrials(std::size_t trials, Rng* rng, Body&& body) {
  parallel::ParallelTrialRunner runner;
  return runner.MapTrials<T>(trials, rng, std::forward<Body>(body));
}

inline void PrintHeader(const std::string& experiment_id, const std::string& claim) {
  std::printf("==============================================================================\n");
  std::printf("%s — %s\n", experiment_id.c_str(), claim.c_str());
  std::printf("[threads=%zu%s]\n", parallel::DefaultThreadCount(),
              SmokeMode() ? ", smoke mode" : "");
  std::printf("==============================================================================\n");

  internal::ExperimentState& state = internal::State();
  if (state.initialized) return;  // one record per process; first header wins

  // Experiments always run fully observed: the JSON record must contain the
  // audit trail and span timings regardless of ambient env defaults.
  obs::SetMetricsEnabled(true);
  obs::SetTracingEnabled(true);
  obs::SetAuditEnabled(true);
  // Force construction of the global singletons BEFORE registering the
  // atexit hook, so the hook (run in reverse registration order) can still
  // read them.
  obs::GlobalMetrics();
  obs::GlobalAuditLog().Clear();
  // Start the env-configured telemetry reporter (DPLEARN_METRICS_FILE /
  // DPLEARN_TRACE_FILE): a no-op when neither variable is set. The record
  // writer below shuts it down.
  obs::GlobalTelemetryReporter();

  state.initialized = true;
  state.id = experiment_id;
  state.claim = claim;
  state.slug = internal::Slugify(experiment_id);
  state.results_dir = internal::ResultsDir();
  state.started_unix_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::system_clock::now().time_since_epoch())
                              .count();
  state.start = std::chrono::steady_clock::now();
  // Time before the first PrintSection is attributed to an implicit "main"
  // section so every experiment phase lands in the record.
  state.section_open = true;
  state.current_section = "main";
  state.section_start = state.start;

  if (!state.results_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(state.results_dir, ec);
    if (!ec) {
      auto sink =
          obs::JsonlFileSink::Open(state.results_dir + "/" + state.slug + ".events.jsonl");
      if (sink.ok()) {
        state.event_sink = std::move(sink).value();
        obs::AddGlobalSink(state.event_sink.get());
      } else {
        std::fprintf(stderr, "warning: %s\n", sink.status().ToString().c_str());
      }
    }
  }
  std::atexit(internal::WriteRecord);
}

inline void PrintSection(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
  internal::ExperimentState& state = internal::State();
  if (!state.initialized) return;
  internal::CloseSection();
  state.section_open = true;
  state.current_section = title;
  state.section_start = std::chrono::steady_clock::now();
}

/// Unwraps a StatusOr in experiment code. A *real* error aborts with a
/// message — experiments are straight-line programs, so it is a bug. An
/// *injected* fault (robustness::Inject) instead throws FaultInjectedError,
/// which GuardCell / GuardedMain convert into a structured failure record so
/// the sweep continues — the crash-vs-degrade distinction the chaos CI job
/// is built on.
template <typename T>
T Unwrap(StatusOr<T> value, const char* what) {
  if (!value.ok()) {
    if (robustness::IsInjectedFault(value.status())) {
      throw FaultInjectedError(what, value.status());
    }
    std::fprintf(stderr, "FATAL in %s: %s\n", what, value.status().ToString().c_str());
    std::abort();
  }
  return std::move(value).value();
}

inline void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    if (robustness::IsInjectedFault(status)) {
      throw FaultInjectedError(what, status);
    }
    std::fprintf(stderr, "FATAL in %s: %s\n", what, status.ToString().c_str());
    std::abort();
  }
}

/// Appends a structured failure record (and a "failure" event on the sinks)
/// for a grid cell abandoned to an injected fault.
inline void RecordFailure(const std::string& cell, const std::string& context,
                          const Status& status) {
  internal::ExperimentState& state = internal::State();
  if (state.initialized) {
    state.failures.push_back({cell, context, status.ToString()});
  }
  if (obs::HasGlobalSinks()) {
    obs::Event event;
    event.type = "failure";
    event.name = cell;
    event.With("context", obs::EventValue::Str(context))
        .With("status", obs::EventValue::Str(status.ToString()));
    obs::EmitEvent(event);
  }
  std::printf("[FAULT] cell '%s' abandoned (%s: %s)\n", cell.c_str(), context.c_str(),
              status.ToString().c_str());
}

/// Runs one grid cell under fault isolation: returns true when `body`
/// completed, false when an injected fault (from any depth — mechanism
/// sample, accountant spend, a trial on the pool) unwound it, in which case
/// the failure is recorded and the caller moves to the next cell. Real
/// errors are not caught; they abort inside Unwrap/Check as before.
template <typename Body>
bool GuardCell(const std::string& cell, Body&& body) {
  try {
    body();
    return true;
  } catch (const FaultInjectedError& fault) {
    RecordFailure(cell, fault.context(), fault.status());
    return false;
  } catch (const std::runtime_error& error) {
    // The thread-pool `pool.task` hook cannot return Status, so it throws a
    // runtime_error carrying the injected-fault prefix; anything else is a
    // real bug and keeps propagating.
    if (!robustness::IsInjectedFaultMessage(error.what())) throw;
    RecordFailure(cell, "pool.task", UnavailableError(error.what()));
    return false;
  }
}

/// The shared main() wrapper: parses flags, runs the experiment, and turns
/// an injected fault that escapes every GuardCell into a final failure
/// record plus a clean exit — with fail points armed, a chaos run must end
/// with "record written, exit 0", never a crash. The atexit record writer
/// still runs on this path.
template <typename RunFn>
int GuardedMain(int argc, char** argv, RunFn&& run) {
  ParseFlags(argc, argv);
  try {
    run();
  } catch (const FaultInjectedError& fault) {
    RecordFailure("main", fault.context(), fault.status());
    std::printf("\nexperiment interrupted by injected fault; record still written\n");
  } catch (const std::runtime_error& error) {
    if (!robustness::IsInjectedFaultMessage(error.what())) throw;
    RecordFailure("main", "pool.task", UnavailableError(error.what()));
    std::printf("\nexperiment interrupted by injected fault; record still written\n");
  }
  return 0;
}

/// Prints PASS/FAIL with a claim description; experiments end with a
/// summary of these verdicts. The single bool drives the console line, the
/// JSON record, AND the "verdict" event on the sink, so the three can never
/// disagree.
inline bool Verdict(bool ok, const std::string& claim) {
  std::printf("[%s] %s\n", ok ? "PASS" : "FAIL", claim.c_str());
  internal::ExperimentState& state = internal::State();
  if (state.initialized) state.verdicts.push_back({claim, ok});
  if (obs::HasGlobalSinks()) {
    obs::Event event;
    event.type = "verdict";
    event.name = claim;
    event.With("pass", obs::EventValue::Bool(ok));
    if (state.initialized) event.With("experiment_id", obs::EventValue::Str(state.id));
    obs::EmitEvent(event);
  }
  return ok;
}

/// Records a named scalar into the JSON record's "scalars" object (and the
/// event stream) — the experiment's key numbers, machine-readable.
inline void RecordScalar(const std::string& name, double value) {
  internal::ExperimentState& state = internal::State();
  if (state.initialized) state.scalars.push_back({name, value});
  if (obs::HasGlobalSinks()) {
    obs::Event event;
    event.type = "scalar";
    event.name = name;
    event.With("value", obs::EventValue::Num(value));
    obs::EmitEvent(event);
  }
}

}  // namespace bench
}  // namespace dplearn

#endif  // DPLEARN_BENCH_EXPERIMENT_UTIL_H_
