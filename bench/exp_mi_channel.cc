/// E6 — Figure 1 / Section 4.1: differentially-private learning as an
/// information channel Ẑ -> θ, with I(Ẑ;θ) governed by the privacy level.
///
/// The exact Gibbs channel is built for the Bernoulli task (input alphabet
/// = the sufficient statistic k, marginal Binomial(n,p)). For a λ sweep the
/// table reports: measured privacy ε*, exact I(Ẑ;θ), the channel capacity,
/// the input entropy H(Ẑ) (both upper bounds), and a sampled plug-in MI
/// estimate validating the estimator stack against the exact value.
/// Expected shape: I grows monotonically with ε* and is crushed to 0 at
/// high privacy — the paper's trade-off made quantitative.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/experiment_util.h"
#include "core/finite_domain_channel.h"
#include "core/gibbs_estimator.h"
#include "core/learning_channel.h"
#include "infotheory/entropy.h"
#include "infotheory/mutual_information.h"
#include "learning/generators.h"
#include "sampling/distributions.h"
#include "sampling/rng.h"

namespace dplearn {
namespace {

void Run() {
  bench::PrintHeader("E6 (Figure 1 / Thm 4.2)",
                     "the DP-learning channel: I(Z;theta) vs privacy level");

  const std::size_t n = 12;
  const double p = 0.4;
  auto task = bench::Unwrap(BernoulliMeanTask::Create(p), "task");
  ClippedSquaredLoss loss(1.0);
  auto hclass = bench::Unwrap(FiniteHypothesisClass::ScalarGrid(0.0, 1.0, 13), "grid");

  const std::size_t mi_samples = bench::TrialCount(200000, 5000);
  Rng rng(bench::BaseSeed(606));

  std::printf("channel: Z=(k ones of %zu) ~ Binomial(%zu, %.1f) -> theta (|Theta|=%zu)\n",
              n, n, p, hclass.size());

  double input_entropy = 0.0;
  std::printf("\n%8s %14s %12s %12s %12s %14s\n", "lambda", "measured eps*",
              "I(Z;theta)", "capacity", "H(Z)", "sampled MI");

  bool monotone = true;
  bool bounded = true;
  double previous_mi = -1.0;
  for (double lambda : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    // Guarded cell: an injected fault records a failure for this lambda and
    // the sweep moves on (ParallelTrialRunner rethrows worker faults here,
    // on the main thread, so the guard sees them too).
    char cell[48];
    std::snprintf(cell, sizeof cell, "binary_lambda%.1f", lambda);
    bench::GuardCell(cell, [&] {
    auto channel = bench::Unwrap(
        BuildBernoulliGibbsChannel(task, n, loss, hclass, hclass.UniformPrior(), lambda),
        "channel");
    input_entropy = bench::Unwrap(Entropy(channel.input_marginal), "H(Z)");
    const double eps = ChannelPrivacyLevel(channel);
    const double mi = bench::Unwrap(ChannelMutualInformation(channel), "MI");
    const double capacity = bench::Unwrap(channel.channel.Capacity(1e-8), "capacity");

    // Validate the estimator stack: draw (k, theta) pairs through the
    // actual estimator and compare plug-in MI to the exact channel MI.
    std::vector<std::size_t> ks(mi_samples);
    std::vector<std::size_t> thetas(mi_samples);
    auto gibbs =
        bench::Unwrap(GibbsEstimator::CreateUniform(&loss, hclass, lambda), "gibbs");
    // Pre-build one representative dataset per k; sampling theta given k
    // only needs the sufficient statistic.
    std::vector<Dataset> representatives;
    for (std::size_t k = 0; k <= n; ++k) {
      Dataset d;
      for (std::size_t i = 0; i < n; ++i) d.Add(Example{Vector{1.0}, i < k ? 1.0 : 0.0});
      representatives.push_back(d);
    }
    // The MI sampling loop is the hot path of this experiment: each draw
    // pushes a fresh Ẑ through the actual estimator. Draws are independent
    // Monte-Carlo trials, so they map over the thread pool — draw s always
    // uses the s-th Split() of rng and lands in slot s, making the plug-in
    // estimate bit-identical at any DPLEARN_THREADS setting.
    struct Draw {
      std::size_t k = 0;
      std::size_t theta = 0;
    };
    const std::vector<Draw> draws = bench::RunTrials<Draw>(
        mi_samples, &rng, [&](std::size_t, Rng& draw_rng) {
          Draw draw;
          for (std::size_t i = 0; i < n; ++i) {
            draw.k +=
                static_cast<std::size_t>(bench::Unwrap(SampleBernoulli(&draw_rng, p), "bit"));
          }
          draw.theta =
              bench::Unwrap(gibbs.Sample(representatives[draw.k], &draw_rng), "theta");
          return draw;
        });
    for (std::size_t s = 0; s < mi_samples; ++s) {
      ks[s] = draws[s].k;
      thetas[s] = draws[s].theta;
    }
    double sampled_mi = bench::Unwrap(PluginMiFromSamples(ks, thetas), "plug-in MI");
    sampled_mi -= MillerMadowCorrection(n + 1, hclass.size(), (n + 1) * hclass.size(),
                                        mi_samples);

    monotone = monotone && mi >= previous_mi - 1e-9;
    bounded = bounded && mi <= capacity + 1e-9 && mi <= input_entropy + 1e-9;
    previous_mi = mi;

    std::printf("%8.1f %14.6f %12.6f %12.6f %12.6f %14.6f\n", lambda, eps, mi, capacity,
                input_entropy, std::max(0.0, sampled_mi));
    // The sampled MI is the Monte-Carlo product of the parallel loop above;
    // CI's determinism gate asserts it is bit-identical for 1 vs 8 threads.
    char key[48];
    std::snprintf(key, sizeof key, "sampled_mi_lambda%.1f", lambda);
    bench::RecordScalar(key, sampled_mi);
    });
  }

  // Beyond-Bernoulli: the same channel construction on a TERNARY example
  // domain (ratings {0, 1/2, 1}), exact via the multinomial sufficient
  // statistic — Figure 1 is not a binary-data artifact.
  bench::PrintSection("generalized channel: ternary domain {0, 0.5, 1}, n = 8");
  std::vector<Example> ternary = {Example{Vector{1.0}, 0.0}, Example{Vector{1.0}, 0.5},
                                  Example{Vector{1.0}, 1.0}};
  std::vector<double> ternary_probs = {0.5, 0.3, 0.2};
  std::printf("%8s %14s %12s %12s\n", "lambda", "measured eps*", "I(Z;theta)",
              "inputs |Z|");
  bool ternary_monotone = true;
  double ternary_previous = -1.0;
  for (double lambda : {0.5, 2.0, 8.0, 32.0}) {
    char cell[48];
    std::snprintf(cell, sizeof cell, "ternary_lambda%.1f", lambda);
    bench::GuardCell(cell, [&] {
    auto tchannel = bench::Unwrap(
        BuildFiniteDomainGibbsChannel(ternary, ternary_probs, 8, loss, hclass,
                                      hclass.UniformPrior(), lambda),
        "ternary channel");
    const double tmi =
        bench::Unwrap(FiniteDomainChannelMutualInformation(tchannel), "ternary MI");
    ternary_monotone = ternary_monotone && tmi >= ternary_previous - 1e-9;
    ternary_previous = tmi;
    std::printf("%8.1f %14.6f %12.6f %12zu\n", lambda,
                FiniteDomainChannelPrivacyLevel(tchannel), tmi,
                tchannel.channel.num_inputs());
    });
  }

  bench::PrintSection("verdicts");
  bench::Verdict(monotone, "I(Z;theta) is monotone in lambda (less privacy => more MI)");
  bench::Verdict(bounded, "I(Z;theta) <= min(channel capacity, H(Z)) at every lambda");
  bench::Verdict(ternary_monotone,
                 "the same monotone trade-off holds on the generalized ternary channel");
  std::printf(
      "note: at lambda=0 the channel releases nothing (I=0, eps*=0); as lambda grows the\n"
      "      predictor reveals more about the sample — Figure 1's channel, quantified.\n");
}

}  // namespace
}  // namespace dplearn

int main(int argc, char** argv) {
  return dplearn::bench::GuardedMain(argc, argv, [] { dplearn::Run(); });
}
