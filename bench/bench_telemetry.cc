/// Telemetry-subsystem microbenchmarks: the headline pair —
/// BM_GibbsSampleTelemetryOff vs BM_GibbsSampleTelemetryOn run the SAME
/// Gibbs posterior sampling workload with all telemetry (metrics, tracing,
/// span ring buffers) disabled and fully armed. ISSUE budget: the armed run
/// costs <3% over the dark one; scripts/check_bench_json.py gates the
/// merged snapshot on exactly that ratio (scripts/run_bench.sh passes
/// --overhead-pair). The rest are component micro-costs: HDR record, span
/// open/close into the ring, tenant spend, and the two export paths.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>
#include "bench/bench_common.h"
#include "core/gibbs_estimator.h"
#include "learning/loss.h"
#include "mechanisms/privacy_budget.h"
#include "obs/config.h"
#include "obs/hdr_histogram.h"
#include "obs/metrics.h"
#include "obs/tenant_budget.h"
#include "obs/trace.h"
#include "obs/trace_buffer.h"
#include "sampling/rng.h"

namespace dplearn {
namespace {

/// Saves the three telemetry switches, forces them to `on`, restores on
/// destruction — so a benchmark's setting never leaks into the next one.
class ScopedTelemetry {
 public:
  explicit ScopedTelemetry(bool on)
      : metrics_(obs::MetricsEnabled()),
        tracing_(obs::TracingEnabled()),
        buffer_(obs::TraceBufferEnabled()) {
    obs::SetMetricsEnabled(on);
    obs::SetTracingEnabled(on);
    obs::SetTraceBufferEnabled(on);
  }
  ~ScopedTelemetry() {
    obs::SetMetricsEnabled(metrics_);
    obs::SetTracingEnabled(tracing_);
    obs::SetTraceBufferEnabled(buffer_);
  }

 private:
  bool metrics_;
  bool tracing_;
  bool buffer_;
};

/// The shared workload for the overhead pair: one SampleBatch of 64
/// posterior draws under a traced span — the shape exp_gibbs_privacy and
/// the DP verifier run in production, including the span the release path
/// opens.
void RunGibbsSampleWorkload(benchmark::State& state, bool telemetry_on) {
  ClippedSquaredLoss loss(1.0);
  const FiniteHypothesisClass hclass = bench::MakeScalarGrid(101);
  auto gibbs = GibbsEstimator::CreateUniform(&loss, hclass, 10.0).value();
  Dataset data = bench::MakeBernoulliData(1000, 6);
  Rng rng(14);
  std::vector<std::size_t> out;

  ScopedTelemetry telemetry(telemetry_on);
  for (auto _ : state) {
    obs::TraceSpan span("bench.gibbs_sample");
    const Status status = gibbs.SampleBatch(data, &rng, 64, &out);
    benchmark::DoNotOptimize(status.ok());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 64);
}

void BM_GibbsSampleTelemetryOff(benchmark::State& state) {
  RunGibbsSampleWorkload(state, false);
}
BENCHMARK(BM_GibbsSampleTelemetryOff);

void BM_GibbsSampleTelemetryOn(benchmark::State& state) {
  RunGibbsSampleWorkload(state, true);
}
BENCHMARK(BM_GibbsSampleTelemetryOn);

void BM_HdrHistogramRecord(benchmark::State& state) {
  obs::HdrHistogram histogram;
  double value = 1.0;
  for (auto _ : state) {
    histogram.Record(value);
    value = value < 1.0e6 ? value * 1.001 : 1.0;
  }
  benchmark::DoNotOptimize(histogram.GetSnapshot().count);
}
BENCHMARK(BM_HdrHistogramRecord);

/// Full span lifecycle with recording armed: id assignment, stack push/pop,
/// ring append, duration histogram. This is the marginal cost every traced
/// call site pays when DPLEARN_TRACE_FILE is set.
void BM_TraceSpanRecorded(benchmark::State& state) {
  ScopedTelemetry telemetry(true);
  obs::ClearTraceBuffers();
  for (auto _ : state) {
    obs::TraceSpan span("bench.span_recorded");
    benchmark::DoNotOptimize(span.span_id());
  }
  obs::ClearTraceBuffers();
}
BENCHMARK(BM_TraceSpanRecorded);

/// One granted tenant spend: shard lock, Kahan accountant update, ledger
/// append, three gauge stores. The telemetry object is recycled every 64k
/// iterations so the per-tenant ledger cannot grow without bound across a
/// long benchmark run; the amortized re-registration cost is in the noise.
void BM_TenantSpendGranted(benchmark::State& state) {
  ScopedTelemetry telemetry(true);
  constexpr std::uint64_t kRecycleEvery = 1 << 16;
  auto tenants = std::make_unique<obs::TenantBudgetTelemetry>();
  (void)tenants->RegisterTenant("bench_tenant", PrivacyBudget{1.0e18, 0.0});
  std::uint64_t spends = 0;
  for (auto _ : state) {
    if (++spends % kRecycleEvery == 0) {
      tenants = std::make_unique<obs::TenantBudgetTelemetry>();
      (void)tenants->RegisterTenant("bench_tenant", PrivacyBudget{1.0e18, 0.0});
    }
    const Status status =
        tenants->Spend("bench_tenant", PrivacyBudget{1.0e-6, 0.0}, "bench");
    benchmark::DoNotOptimize(status.ok());
  }
}
BENCHMARK(BM_TenantSpendGranted);

/// Chrome-trace export over a ring holding `range(0)` retained spans — the
/// cost of one periodic TelemetryReporter trace flush.
void BM_ChromeTraceExport(benchmark::State& state) {
  ScopedTelemetry telemetry(true);
  obs::ClearTraceBuffers();
  const int spans = static_cast<int>(state.range(0));
  for (int i = 0; i < spans; ++i) {
    obs::TraceSpan span("bench.export_fill");
  }
  for (auto _ : state) {
    const std::string json = obs::ChromeTraceJson();
    benchmark::DoNotOptimize(json.size());
  }
  obs::ClearTraceBuffers();
}
BENCHMARK(BM_ChromeTraceExport)->Arg(1024)->Arg(8192);

/// Prometheus exposition render of the whole global registry — the cost of
/// one periodic TelemetryReporter metrics flush.
void BM_WriteExposition(benchmark::State& state) {
  ScopedTelemetry telemetry(true);
  for (auto _ : state) {
    const std::string text = obs::GlobalMetrics().WriteExposition();
    benchmark::DoNotOptimize(text.size());
  }
}
BENCHMARK(BM_WriteExposition);

}  // namespace
}  // namespace dplearn

BENCHMARK_MAIN();
