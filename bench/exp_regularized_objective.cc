/// E8 — Theorem 4.2: minimizing expected empirical risk plus the
/// (1/λ)-regularized mutual information yields the Gibbs estimator.
///
/// Workload: the exact Bernoulli learning channel (all quantities closed
/// form). For each λ we minimize G(W) = E[R̂] + (1/λ) I(Ẑ;θ) over ALL
/// channels by alternating minimization, then tabulate G at: the optimum,
/// the uniform-prior Gibbs channel, the deterministic ERM channel, the
/// constant (maximally private) channel, and tempered Gibbs channels.
/// Expected shape: the optimizer's value is attained by a Gibbs channel
/// (fixed point), the uniform-prior Gibbs channel is within its
/// prior-mismatch KL gap, and every non-Gibbs competitor is strictly worse.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/experiment_util.h"
#include "core/gibbs_estimator.h"
#include "core/learning_channel.h"
#include "core/regularized_objective.h"
#include "learning/generators.h"

namespace dplearn {
namespace {

void Run() {
  bench::PrintHeader("E8 (Theorem 4.2)",
                     "min E[risk] + (1/lambda) I(Z;theta) == the Gibbs estimator");

  const std::size_t n = 10;
  auto task = bench::Unwrap(BernoulliMeanTask::Create(0.4), "task");
  ClippedSquaredLoss loss(1.0);
  auto hclass = bench::Unwrap(FiniteHypothesisClass::ScalarGrid(0.0, 1.0, 11), "grid");

  std::printf("channel: k ~ Binomial(%zu, 0.4) -> theta (|Theta|=%zu); all values exact\n",
              n, hclass.size());
  std::printf("\n%8s %12s %14s %12s %12s %14s %14s\n", "lambda", "optimum G*",
              "gibbs(unif)", "ERM det.", "constant", "gibbs(l/4)", "gibbs(4l)");

  bool gibbs_wins = true;
  for (double lambda : {0.5, 2.0, 8.0, 32.0}) {
    auto reference = bench::Unwrap(
        BuildBernoulliGibbsChannel(task, n, loss, hclass, hclass.UniformPrior(), lambda),
        "reference channel");
    const auto& marginal = reference.input_marginal;
    const auto& risks = reference.risk_matrix;

    auto optimum =
        bench::Unwrap(MinimizeRegularizedObjective(marginal, risks, lambda), "optimum");

    auto value_of = [&](const std::vector<std::vector<double>>& rows) {
      return bench::Unwrap(RegularizedObjective(rows, marginal, risks, lambda), "G");
    };

    const double gibbs_uniform = value_of(reference.channel.transition());

    // Deterministic ERM channel.
    std::vector<std::vector<double>> erm_rows(
        n + 1, std::vector<double>(hclass.size(), 0.0));
    for (std::size_t k = 0; k <= n; ++k) {
      std::size_t argmin = 0;
      for (std::size_t i = 1; i < hclass.size(); ++i) {
        if (risks[k][i] < risks[k][argmin]) argmin = i;
      }
      erm_rows[k][argmin] = 1.0;
    }
    const double erm_value = value_of(erm_rows);

    // Constant channel (data-independent: perfect privacy, zero MI).
    std::vector<std::vector<double>> constant_rows(
        n + 1, std::vector<double>(hclass.size(), 1.0 / static_cast<double>(hclass.size())));
    const double constant_value = value_of(constant_rows);

    // Tempered Gibbs channels (wrong temperature, uniform prior).
    auto tempered = [&](double temp) {
      std::vector<std::vector<double>> rows(n + 1);
      for (std::size_t k = 0; k <= n; ++k) {
        rows[k] = bench::Unwrap(
            GibbsPosteriorFromRisks(risks[k], hclass.UniformPrior(), temp), "tempered");
      }
      return value_of(rows);
    };
    const double cold = tempered(lambda / 4.0);
    const double hot = tempered(4.0 * lambda);

    gibbs_wins = gibbs_wins && optimum.objective <= gibbs_uniform + 1e-9 &&
                 optimum.objective <= erm_value + 1e-9 &&
                 optimum.objective <= constant_value + 1e-9 &&
                 optimum.objective <= cold + 1e-9 && optimum.objective <= hot + 1e-9;

    std::printf("%8.1f %12.6f %14.6f %12.6f %12.6f %14.6f %14.6f\n", lambda,
                optimum.objective, gibbs_uniform, erm_value, constant_value, cold, hot);
  }

  bench::PrintSection("verdicts");
  bench::Verdict(gibbs_wins,
                 "the Gibbs-channel optimum undercuts every competitor at every lambda");
  std::printf(
      "note: the alternating minimizer's fixed point has Gibbs rows with prior\n"
      "      pi_OPT = E_Z[posterior] — exactly Catoni's bound-optimal prior, and the\n"
      "      differentially-private estimator of Theorem 4.2.\n");
}

}  // namespace
}  // namespace dplearn

int main(int argc, char** argv) {
  return dplearn::bench::GuardedMain(argc, argv, [] { dplearn::Run(); });
}
