// Closed-loop load generator and invariant checker for the DP release
// service (DESIGN.md §13).
//
// Drives a DpReleaseServer — in-process by default, or an external one via
// --socket — with one thread + one connection per tenant, a deterministic
// request mix (~55% Laplace mean releases, ~20% Gibbs draws, ~10% stream
// appends feeding each tenant's live StreamingRiskProfile, ~15% budget
// queries), and a per-repetition "probe" tenant registered with a tiny
// budget and deliberately overdrawn, so every run exercises the
// RESOURCE_EXHAUSTED admission path.
//
// Latencies of OK responses land in obs::HdrHistogram; the output is
// google-benchmark-shaped JSON whose aggregate entries
//   BM_ServiceReleaseLatencyP50_median   BM_ServiceReleaseLatencyP99_median
//   BM_ServiceGibbsLatencyP50_median     BM_ServiceGibbsLatencyP99_median
// are medians across --repetitions, suitable for bench_merge.py /
// bench_compare.py --strict, plus a "service" block with the invariant
// verdicts.
//
// The process exits non-zero if any invariant fails — and the invariants
// are chosen to hold even under the chaos fail points the service-chaos CI
// leg arms (service.accept / service.dispatch / budget.spend / sink.write):
//   * zero client-side protocol errors (every frame decodes);
//   * server-side ReplayVerifyAll reports clean ledgers;
//   * budget conservation: the Kahan sum of charged_epsilon over each
//     tenant's OK responses, in response order, is BITWISE equal to the
//     server's spent_epsilon for that tenant (same adds, same order), and
//     client-observed denials match the server's denial count;
//   * at least one RESOURCE_EXHAUSTED denial per repetition (the probe);
//   * every request eventually completes (UNAVAILABLE rejections are
//     retried — they fire before any ledger mutation, so retry is safe).

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/hdr_histogram.h"
#include "sampling/rng.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"
#include "util/math_util.h"
#include "util/status.h"

namespace {

using dplearn::KahanSum;
using dplearn::Rng;
using dplearn::Status;
using dplearn::StatusCode;
using dplearn::StatusOr;
using dplearn::obs::HdrHistogram;
using dplearn::service::DpReleaseClient;
using dplearn::service::DpReleaseServer;
using dplearn::service::MechanismKind;
using dplearn::service::Opcode;
using dplearn::service::QueryKind;
using dplearn::service::Request;
using dplearn::service::Response;

struct Flags {
  std::string socket;       // empty => in-process server
  std::string out;          // empty => stdout
  bool smoke = false;
  std::size_t tenants = 6;
  std::size_t requests = 300;  // per tenant per repetition
  std::size_t repetitions = 3;
  std::uint64_t seed = 42;
  std::size_t threads = 0;  // in-process server workers; 0 = default
};

/// Per-tenant tallies a worker thread accumulates; merged after join.
struct TenantStats {
  std::uint64_t ok = 0;
  std::uint64_t resource_exhausted = 0;
  std::uint64_t unavailable_responses = 0;  // structured, later retried
  std::uint64_t invalid_argument = 0;
  std::uint64_t other_errors = 0;
  std::uint64_t transport_retries = 0;
  std::uint64_t protocol_errors = 0;  // client-side decode failures
  std::uint64_t gave_up = 0;          // retry budget exhausted
  std::uint64_t stream_appends = 0;   // OK kStreamAppend responses
  KahanSum charged_epsilon;
  KahanSum charged_delta;
  std::uint64_t denials_seen = 0;  // RESOURCE_EXHAUSTED responses
};

constexpr int kMaxAttempts = 200;

/// Call() with reconnect-and-retry on transport failures, unsolicited
/// accept rejections (request_id 0) and structured UNAVAILABLE responses —
/// all of which happen strictly before any ledger mutation, so re-sending
/// the same request cannot double-charge.
StatusOr<Response> CallWithRetry(std::unique_ptr<DpReleaseClient>* client,
                                 const std::string& socket_path, const Request& request,
                                 TenantStats* stats) {
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    if (*client == nullptr || !(*client)->connected()) {
      StatusOr<DpReleaseClient> fresh = DpReleaseClient::ConnectWithRetry(
          socket_path, /*attempts=*/20, std::chrono::milliseconds(25));
      if (!fresh.ok()) {
        ++stats->transport_retries;
        continue;
      }
      *client = std::make_unique<DpReleaseClient>(std::move(*fresh));
    }
    StatusOr<Response> response = (*client)->Call(request);
    if (!response.ok()) {
      if (response.status().code() == StatusCode::kInvalidArgument) {
        // Undecodable response frame: a real protocol bug, never retried.
        ++stats->protocol_errors;
        return response;
      }
      ++stats->transport_retries;
      (*client)->Close();
      continue;
    }
    if (response->request_id == 0) {
      // Unsolicited server-level rejection (service.accept): the connection
      // is dead and the request was never consumed.
      ++stats->unavailable_responses;
      ++stats->transport_retries;
      (*client)->Close();
      continue;
    }
    if (response->code == StatusCode::kUnavailable) {
      // service.dispatch (or budget.spend) fired before admission: a
      // structured rejection with no charge. Count it, retry it.
      ++stats->unavailable_responses;
      continue;
    }
    return response;
  }
  ++stats->gave_up;
  return dplearn::UnavailableError("bench_service: retry budget exhausted");
}

void TallyTerminal(const Response& response, TenantStats* stats) {
  switch (response.code) {
    case StatusCode::kOk:
      ++stats->ok;
      stats->charged_epsilon.Add(response.charged_epsilon);
      stats->charged_delta.Add(response.charged_delta);
      break;
    case StatusCode::kResourceExhausted:
      ++stats->resource_exhausted;
      ++stats->denials_seen;
      break;
    case StatusCode::kInvalidArgument:
      ++stats->invalid_argument;
      break;
    default:
      ++stats->other_errors;
      break;
  }
}

double NowMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One tenant's closed loop for one repetition.
void RunTenant(const std::string& socket_path, const std::string& tenant_id,
               const Flags& flags, std::uint64_t stream_seed, HdrHistogram* release_lat,
               HdrHistogram* gibbs_lat, TenantStats* stats) {
  std::unique_ptr<DpReleaseClient> client;

  // A quota large enough that the deterministic mix never exhausts it —
  // admission denials are the probe tenant's job, not noise in the latency
  // numbers.
  Request reg;
  reg.opcode = Opcode::kRegisterTenant;
  reg.request_id = 1;
  reg.tenant_id = tenant_id;
  reg.epsilon = 1000.0;
  reg.delta = 1e-3;
  StatusOr<Response> registered = CallWithRetry(&client, socket_path, reg, stats);
  if (!registered.ok()) return;
  // FAILED_PRECONDITION (already registered) is fine on reconnect races.

  Rng rng(stream_seed);
  std::uint64_t next_id = 2;
  for (std::size_t i = 0; i < flags.requests; ++i) {
    const double pick = rng.NextDouble();
    Request request;
    request.request_id = next_id++;
    request.tenant_id = tenant_id;
    bool is_release = false;
    bool is_gibbs = false;
    bool is_append = false;
    if (pick < 0.55) {
      is_release = true;
      request.opcode = Opcode::kRelease;
      request.mechanism = MechanismKind::kLaplace;
      request.query = QueryKind::kMean;
      request.dataset = "bernoulli";
      request.epsilon = 0.01;
      request.delta = 0.0;
      request.count = 1 + static_cast<std::uint32_t>(rng.NextBounded(4));
    } else if (pick < 0.75) {
      is_gibbs = true;
      request.opcode = Opcode::kGibbsSample;
      request.dataset = "bernoulli";
      request.lambda = 1.0;
      request.count = 1 + static_cast<std::uint32_t>(rng.NextBounded(8));
    } else if (pick < 0.85) {
      // Free append to the tenant's live stream: later Gibbs draws in this
      // loop re-tilt from it and are charged at the live size, so the
      // budget-conservation invariant also covers the continual-release
      // accounting path.
      is_append = true;
      request.opcode = Opcode::kStreamAppend;
      request.dataset = "bernoulli";
      request.features = {1.0};
      request.label = rng.NextBounded(2) == 0 ? 0.0 : 1.0;
    } else {
      request.opcode = Opcode::kBudgetQuery;
    }
    const double start_us = NowMicros();
    StatusOr<Response> response = CallWithRetry(&client, socket_path, request, stats);
    if (!response.ok()) continue;  // tallied inside CallWithRetry
    const double elapsed_us = NowMicros() - start_us;
    TallyTerminal(*response, stats);
    if (response->code == StatusCode::kOk) {
      if (is_release) release_lat->Record(elapsed_us);
      if (is_gibbs) gibbs_lat->Record(elapsed_us);
      if (is_append) ++stats->stream_appends;
    }
  }
}

/// Registers a tiny-budget tenant and overdraws it, guaranteeing at least
/// one RESOURCE_EXHAUSTED denial this repetition.
void RunProbe(const std::string& socket_path, const std::string& tenant_id,
              TenantStats* stats) {
  std::unique_ptr<DpReleaseClient> client;
  Request reg;
  reg.opcode = Opcode::kRegisterTenant;
  reg.request_id = 1;
  reg.tenant_id = tenant_id;
  reg.epsilon = 0.05;
  reg.delta = 0.0;
  if (!CallWithRetry(&client, socket_path, reg, stats).ok()) return;

  for (int i = 0; i < 3; ++i) {
    Request release;
    release.opcode = Opcode::kRelease;
    release.request_id = static_cast<std::uint64_t>(2 + i);
    release.tenant_id = tenant_id;
    release.mechanism = MechanismKind::kLaplace;
    release.query = QueryKind::kMean;
    release.dataset = "bernoulli";
    release.epsilon = 0.03;
    release.count = 1;
    StatusOr<Response> response = CallWithRetry(&client, socket_path, release, stats);
    if (response.ok()) TallyTerminal(*response, stats);
  }
}

/// Fetches the server-side view of `tenant_id` and checks bitwise budget
/// conservation against the client-side Kahan sums. Returns false (and
/// prints why) on mismatch.
bool CheckTenantLedger(const std::string& socket_path, const std::string& tenant_id,
                       const TenantStats& stats) {
  std::unique_ptr<DpReleaseClient> client;
  TenantStats scratch;
  Request query;
  query.opcode = Opcode::kBudgetQuery;
  query.request_id = 1;
  query.tenant_id = tenant_id;
  StatusOr<Response> view = CallWithRetry(&client, socket_path, query, &scratch);
  if (!view.ok() || view->code != StatusCode::kOk) {
    std::fprintf(stderr, "bench_service: budget query for %s failed\n", tenant_id.c_str());
    return false;
  }
  const double client_epsilon = stats.charged_epsilon.Value();
  if (view->spent_epsilon != client_epsilon) {
    std::fprintf(stderr,
                 "bench_service: budget NOT conserved for %s: server spent %.17g, "
                 "client charged %.17g\n",
                 tenant_id.c_str(), view->spent_epsilon, client_epsilon);
    return false;
  }
  if (view->denials != stats.denials_seen) {
    std::fprintf(stderr,
                 "bench_service: denial count mismatch for %s: server %llu, client %llu\n",
                 tenant_id.c_str(), static_cast<unsigned long long>(view->denials),
                 static_cast<unsigned long long>(stats.denials_seen));
    return false;
  }
  return true;
}

bool CheckReplayVerify(const std::string& socket_path) {
  std::unique_ptr<DpReleaseClient> client;
  TenantStats scratch;
  Request verify;
  verify.opcode = Opcode::kReplayVerify;
  verify.request_id = 1;
  StatusOr<Response> verdict = CallWithRetry(&client, socket_path, verify, &scratch);
  if (!verdict.ok()) return false;
  if (verdict->code != StatusCode::kOk) {
    std::fprintf(stderr, "bench_service: ReplayVerifyAll dirty: %s\n",
                 verdict->message.c_str());
    return false;
  }
  return true;
}

double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  return n % 2 == 1 ? values[n / 2] : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

void Merge(const TenantStats& from, TenantStats* into) {
  into->ok += from.ok;
  into->resource_exhausted += from.resource_exhausted;
  into->unavailable_responses += from.unavailable_responses;
  into->invalid_argument += from.invalid_argument;
  into->other_errors += from.other_errors;
  into->transport_retries += from.transport_retries;
  into->protocol_errors += from.protocol_errors;
  into->gave_up += from.gave_up;
  into->stream_appends += from.stream_appends;
  into->denials_seen += from.denials_seen;
}

int Run(const Flags& flags) {
  std::string socket_path = flags.socket;
  std::unique_ptr<DpReleaseServer> server;
  if (socket_path.empty()) {
    socket_path = "/tmp/dplearn_bench_" + std::to_string(::getpid()) + ".sock";
    DpReleaseServer::Options options;
    options.socket_path = socket_path;
    options.seed = flags.seed;
    options.worker_threads = flags.threads;
    StatusOr<std::unique_ptr<DpReleaseServer>> started =
        DpReleaseServer::Start(std::move(options));
    if (!started.ok()) {
      std::fprintf(stderr, "bench_service: server start failed: %s\n",
                   started.status().ToString().c_str());
      return 1;
    }
    server = std::move(*started);
  }

  TenantStats totals;
  std::uint64_t exhausted_total = 0;
  std::vector<double> release_p50s, release_p99s, gibbs_p50s, gibbs_p99s;
  bool budget_conserved = true;
  const double wall_start_us = NowMicros();

  for (std::size_t rep = 0; rep < flags.repetitions; ++rep) {
    HdrHistogram release_lat;
    HdrHistogram gibbs_lat;
    std::vector<TenantStats> per_tenant(flags.tenants);
    std::vector<std::string> tenant_ids;
    tenant_ids.reserve(flags.tenants);
    for (std::size_t t = 0; t < flags.tenants; ++t) {
      tenant_ids.push_back("bench-r" + std::to_string(rep) + "-t" + std::to_string(t));
    }
    std::vector<std::thread> workers;
    workers.reserve(flags.tenants);
    for (std::size_t t = 0; t < flags.tenants; ++t) {
      workers.emplace_back(RunTenant, socket_path, tenant_ids[t], std::cref(flags),
                           flags.seed * 1000003ULL + rep * 1009ULL + t, &release_lat,
                           &gibbs_lat, &per_tenant[t]);
    }
    const std::string probe_id = "probe-r" + std::to_string(rep);
    TenantStats probe_stats;
    RunProbe(socket_path, probe_id, &probe_stats);
    for (auto& worker : workers) worker.join();

    for (std::size_t t = 0; t < flags.tenants; ++t) {
      budget_conserved =
          CheckTenantLedger(socket_path, tenant_ids[t], per_tenant[t]) && budget_conserved;
      Merge(per_tenant[t], &totals);
    }
    budget_conserved = CheckTenantLedger(socket_path, probe_id, probe_stats) &&
                       budget_conserved;
    Merge(probe_stats, &totals);
    exhausted_total += probe_stats.resource_exhausted;
    for (const auto& stats : per_tenant) exhausted_total += stats.resource_exhausted;

    const HdrHistogram::Snapshot release_snap = release_lat.GetSnapshot();
    const HdrHistogram::Snapshot gibbs_snap = gibbs_lat.GetSnapshot();
    release_p50s.push_back(release_snap.Quantile(0.50));
    release_p99s.push_back(release_snap.Quantile(0.99));
    gibbs_p50s.push_back(gibbs_snap.Quantile(0.50));
    gibbs_p99s.push_back(gibbs_snap.Quantile(0.99));
  }

  const bool replay_ok = CheckReplayVerify(socket_path);
  const double wall_us = NowMicros() - wall_start_us;
  if (server != nullptr) {
    totals.protocol_errors += server->protocol_errors();
    server->Stop();
  }

  const bool probe_exhausted = exhausted_total >= flags.repetitions;
  const bool all_completed = totals.gave_up == 0;
  const bool no_protocol_errors = totals.protocol_errors == 0;

  // google-benchmark-shaped output: medians across repetitions as
  // aggregate entries (bench_compare.py keeps aggregate rows only when
  // aggregate_name == "median"), plus the service invariant block.
  struct Entry {
    const char* name;
    double value_us;
  };
  const Entry entries[] = {
      {"BM_ServiceReleaseLatencyP50_median", Median(release_p50s)},
      {"BM_ServiceReleaseLatencyP99_median", Median(release_p99s)},
      {"BM_ServiceGibbsLatencyP50_median", Median(gibbs_p50s)},
      {"BM_ServiceGibbsLatencyP99_median", Median(gibbs_p99s)},
  };
  std::string json;
  json += "{\n  \"context\": {\n";
  json += "    \"executable\": \"bench_service\",\n";
  json += "    \"tenants\": " + std::to_string(flags.tenants) + ",\n";
  json += "    \"requests_per_tenant\": " + std::to_string(flags.requests) + ",\n";
  json += "    \"repetitions\": " + std::to_string(flags.repetitions) + ",\n";
  json += "    \"seed\": " + std::to_string(flags.seed) + ",\n";
  json += "    \"wall_time_us\": " + std::to_string(wall_us) + "\n";
  json += "  },\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < 4; ++i) {
    char buffer[320];
    std::snprintf(buffer, sizeof(buffer),
                  "    {\"name\": \"%s\", \"run_type\": \"aggregate\", "
                  "\"aggregate_name\": \"median\", \"repetitions\": %zu, "
                  "\"real_time\": %.6f, \"cpu_time\": %.6f, \"time_unit\": \"us\"}%s\n",
                  entries[i].name, flags.repetitions, entries[i].value_us,
                  entries[i].value_us, i + 1 < 4 ? "," : "");
    json += buffer;
  }
  json += "  ],\n  \"service\": {\n";
  json += "    \"requests_ok\": " + std::to_string(totals.ok) + ",\n";
  json += "    \"resource_exhausted\": " + std::to_string(totals.resource_exhausted) + ",\n";
  json += "    \"unavailable_responses\": " +
          std::to_string(totals.unavailable_responses) + ",\n";
  json += "    \"invalid_argument\": " + std::to_string(totals.invalid_argument) + ",\n";
  json += "    \"other_errors\": " + std::to_string(totals.other_errors) + ",\n";
  json += "    \"transport_retries\": " + std::to_string(totals.transport_retries) + ",\n";
  json += "    \"stream_appends\": " + std::to_string(totals.stream_appends) + ",\n";
  json += "    \"protocol_errors\": " + std::to_string(totals.protocol_errors) + ",\n";
  json += std::string("    \"replay_verify_ok\": ") + (replay_ok ? "true" : "false") + ",\n";
  json += std::string("    \"budget_conserved\": ") +
          (budget_conserved ? "true" : "false") + ",\n";
  json += std::string("    \"probe_exhausted\": ") +
          (probe_exhausted ? "true" : "false") + ",\n";
  json += std::string("    \"all_requests_completed\": ") +
          (all_completed ? "true" : "false") + "\n";
  json += "  }\n}\n";

  if (flags.out.empty()) {
    std::fputs(json.c_str(), stdout);
  } else {
    std::FILE* f = std::fopen(flags.out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_service: cannot open %s\n", flags.out.c_str());
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }

  int failures = 0;
  const auto require = [&failures](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "bench_service: INVARIANT FAILED: %s\n", what);
      ++failures;
    }
  };
  require(no_protocol_errors, "zero protocol errors");
  require(replay_ok, "ReplayVerifyAll clean");
  require(budget_conserved, "budget conservation (client charges == server ledger)");
  require(probe_exhausted, ">=1 RESOURCE_EXHAUSTED denial per repetition");
  require(all_completed, "every request completed within the retry budget");
  if (failures == 0) {
    std::fprintf(stderr,
                 "bench_service: OK (%llu ok, %llu denials, %llu structured "
                 "unavailable, %llu transport retries)\n",
                 static_cast<unsigned long long>(totals.ok),
                 static_cast<unsigned long long>(totals.resource_exhausted),
                 static_cast<unsigned long long>(totals.unavailable_responses),
                 static_cast<unsigned long long>(totals.transport_retries));
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_service: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      flags.socket = next();
    } else if (arg == "--out") {
      flags.out = next();
    } else if (arg == "--smoke") {
      flags.smoke = true;
    } else if (arg == "--tenants") {
      flags.tenants = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--requests") {
      flags.requests = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--repetitions") {
      flags.repetitions = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--seed") {
      flags.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--threads") {
      flags.threads = std::strtoul(next(), nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: bench_service [--socket PATH] [--out FILE] [--smoke]\n"
                   "                     [--tenants N] [--requests N] [--repetitions N]\n"
                   "                     [--seed S] [--threads N]\n");
      return 2;
    }
  }
  if (flags.smoke) {
    flags.tenants = std::min<std::size_t>(flags.tenants, 4);
    flags.requests = std::min<std::size_t>(flags.requests, 40);
    flags.repetitions = std::min<std::size_t>(flags.repetitions, 2);
  }
  if (flags.tenants == 0 || flags.requests == 0 || flags.repetitions == 0) {
    std::fprintf(stderr, "bench_service: tenants/requests/repetitions must be positive\n");
    return 2;
  }
  return Run(flags);
}
