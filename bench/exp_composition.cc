/// E12 (ablation) — privacy accounting methods for repeated releases.
///
/// A learning pipeline rarely touches the data once (candidate draws,
/// hyperparameter selection, the final release — see core/lambda_selection).
/// This ablation compares the total (ε, δ) charged for k repetitions of a
/// single mechanism under: basic sequential composition, advanced
/// composition (DRV'10), and Rényi-DP accounting (Mironov'17) optimized
/// over orders — for both the Gaussian mechanism (where RDP shines) and a
/// pure-ε Laplace release. Expected shape: basic is linear in k, advanced
/// ~ sqrt(k log(1/δ)), RDP tightest for Gaussian at every k.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/experiment_util.h"
#include "infotheory/renyi.h"
#include "mechanisms/privacy_budget.h"
#include "obs/audit_log.h"

namespace dplearn {
namespace {

void Run() {
  bench::PrintHeader("E12 (ablation)",
                     "privacy accounting: basic vs advanced vs RDP composition");

  const double delta = 1e-6;
  const double delta_prime = delta / 2.0;

  bench::PrintSection("Gaussian mechanism, sigma = 4, sensitivity 1, per-release "
                      "(eps0, delta/2k) classic calibration");
  std::printf("%8s %14s %14s %14s\n", "k", "basic eps", "advanced eps", "RDP eps");
  const double sigma = 4.0;
  bool rdp_wins = true;
  for (std::size_t k : {1u, 4u, 16u, 64u, 256u}) {
    // Classic per-release calibration at delta/(2k) so basic composition
    // lands at total delta.
    const double per_delta = delta / (2.0 * static_cast<double>(k));
    const double per_eps = std::sqrt(2.0 * std::log(1.25 / per_delta)) / sigma;
    const double basic = per_eps * static_cast<double>(k);

    auto advanced = bench::Unwrap(
        AdvancedComposition(PrivacyBudget{per_eps, per_delta}, k, delta_prime),
        "advanced");

    std::vector<RdpBudget> curve;
    for (double alpha : {1.5, 2.0, 3.0, 5.0, 8.0, 16.0, 32.0, 64.0, 128.0, 512.0}) {
      curve.push_back(bench::Unwrap(
          ComposeRdp(bench::Unwrap(GaussianMechanismRdp(sigma, 1.0, alpha), "rdp"), k),
          "compose"));
    }
    const double rdp = bench::Unwrap(BestEpsilonFromRdpCurve(curve, delta), "best");
    rdp_wins = rdp_wins && (k == 1 || rdp <= advanced.epsilon + 1e-9);
    std::printf("%8zu %14.4f %14.4f %14.4f\n", k, basic, advanced.epsilon, rdp);
  }

  bench::PrintSection("Laplace mechanism, scale 2, sensitivity 1 (pure eps0 = 0.5 each)");
  std::printf("%8s %14s %14s %14s\n", "k", "basic eps", "advanced eps", "RDP eps");
  const double scale = 2.0;
  const double eps0 = 1.0 / scale;
  bool advanced_wins_eventually = false;
  for (std::size_t k : {1u, 4u, 16u, 64u, 256u}) {
    const double basic = eps0 * static_cast<double>(k);
    auto advanced = bench::Unwrap(
        AdvancedComposition(PrivacyBudget{eps0, 0.0}, k, delta), "advanced");
    std::vector<RdpBudget> curve;
    for (double alpha : {1.5, 2.0, 3.0, 5.0, 8.0, 16.0, 32.0, 64.0, 128.0, 512.0}) {
      curve.push_back(bench::Unwrap(
          ComposeRdp(bench::Unwrap(LaplaceMechanismRdp(scale, 1.0, alpha), "rdp"), k),
          "compose"));
    }
    const double rdp = bench::Unwrap(BestEpsilonFromRdpCurve(curve, delta), "best");
    if (advanced.epsilon < basic) advanced_wins_eventually = true;
    std::printf("%8zu %14.4f %14.4f %14.4f\n", k, basic, advanced.epsilon, rdp);
  }

  bench::PrintSection("accountant audit trail (total budget eps=2, named spend stream)");
  obs::BudgetAuditLog audit;
  auto accountant = bench::Unwrap(PrivacyAccountant::Create({2.0, 1e-6}), "accountant");
  accountant.set_audit_log(&audit);
  bench::Check(accountant.Spend({0.5, 0.0}, "laplace"), "spend laplace");
  bench::Check(accountant.Spend({0.5, 0.0}, "exponential"), "spend exponential");
  bench::Check(accountant.Spend({0.75, 1e-7}, "gaussian"), "spend gaussian");
  const Status denied = accountant.Spend({0.5, 0.0}, "laplace");  // 2.25 > 2.0
  std::printf("%6s %20s %10s %10s %12s %12s\n", "seq", "mechanism", "eps", "granted",
              "cum eps", "cum delta");
  for (const auto& entry : audit.Entries()) {
    std::printf("%6llu %20s %10.3f %10s %12.3f %12.2e\n",
                static_cast<unsigned long long>(entry.sequence), entry.mechanism.c_str(),
                entry.epsilon, entry.granted ? "yes" : "DENIED",
                entry.cumulative_epsilon, entry.cumulative_delta);
  }
  const bool audit_ok = audit.ReplayVerify().ok() && !denied.ok() &&
                        audit.cumulative_epsilon() == accountant.spent().epsilon &&
                        audit.cumulative_delta() == accountant.spent().delta;
  bench::RecordScalar("audit_cumulative_epsilon", audit.cumulative_epsilon());

  bench::PrintSection("verdicts");
  bench::Verdict(audit_ok,
                 "audit-log replay matches the accountant's sequential composition; "
                 "over-budget spend denied and logged");
  bench::Verdict(rdp_wins, "RDP accounting <= advanced composition for Gaussian at k > 1");
  bench::Verdict(advanced_wins_eventually,
                 "advanced composition beats basic at large k (sqrt(k) vs k)");
  std::printf(
      "note: for a SINGLE release basic composition is optimal (no slack term); the\n"
      "      crossover is the reason a pipeline should account with the method matched\n"
      "      to its release count.\n");
}

}  // namespace
}  // namespace dplearn

int main(int argc, char** argv) {
  return dplearn::bench::GuardedMain(argc, argv, [] { dplearn::Run(); });
}
